package copse_test

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"copse"
	"copse/internal/chaos"
	"copse/internal/he/heclear"
)

// chaosService builds a clear-backend service whose he.Backend is
// wrapped in a seeded fault-injection schedule. The schedule starts
// disarmed so registration (which encodes model plaintexts through the
// backend) stays clean; tests arm it when ready.
func chaosService(t *testing.T, seed uint64, cfg chaos.Config, opts ...copse.Option) (*copse.Forest, *copse.Service, *chaos.Schedule) {
	t.Helper()
	f, c := trainedModel(t, 61, 256)
	cfg.Seed = seed
	sched := chaos.NewSchedule(cfg)
	backend := chaos.WrapBackend(heclear.New(256, 65537), sched)
	svc := copse.NewService(append([]copse.Option{copse.WithExternalBackend(backend)}, opts...)...)
	if err := svc.Register("m", c); err != nil {
		t.Fatal(err)
	}
	return f, svc, sched
}

// TestServicePanicIsolation: a panicking backend op must surface as a
// typed *copse.InternalError on the one request that hit it — never
// crash the process or poison the service for later requests.
func TestServicePanicIsolation(t *testing.T) {
	f, svc, sched := chaosService(t, 7, chaos.Config{Default: chaos.Rates{Panic: 1}})
	defer svc.Close()

	sched.Arm(true)
	_, err := svc.ClassifyBatch(context.Background(), "m", [][]uint64{{1, 2, 3}})
	var ie *copse.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("classify under injected panic returned %v, want *copse.InternalError", err)
	}
	if st := svc.Stats(); st.PanicsRecovered == 0 {
		t.Error("recovered panic not counted in stats")
	}

	// The service must be fully usable once the faults stop.
	sched.Arm(false)
	feats := [][]uint64{{1, 2, 3}, {4, 5, 6}}
	results, err := svc.ClassifyBatch(context.Background(), "m", feats)
	if err != nil {
		t.Fatalf("classify after disarm: %v", err)
	}
	for i, q := range feats {
		want := f.Classify(q)
		for ti, lbl := range results[i].PerTree {
			if lbl != want[ti] {
				t.Errorf("post-panic query %d tree %d: L%d, want L%d", i, ti, lbl, want[ti])
			}
		}
	}
}

// TestServiceDeadlineFastFail: once the latency model is warm, a
// request whose remaining deadline cannot cover even one pass is
// rejected up front with a typed *copse.DeadlineError instead of
// burning a slot on doomed work.
func TestServiceDeadlineFastFail(t *testing.T) {
	_, svc, _ := chaosService(t, 8, chaos.Config{})
	defer svc.Close()

	// Warm the pass-latency histogram past the estimator's threshold.
	for i := 0; i < 5; i++ {
		if _, err := svc.ClassifyBatch(context.Background(), "m", [][]uint64{{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := svc.ClassifyBatch(ctx, "m", [][]uint64{{1, 2, 3}})
	var de *copse.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("classify with exhausted deadline returned %v, want *copse.DeadlineError", err)
	}
	if st := svc.Stats(); st.DeadlineRejects == 0 {
		t.Error("deadline fast-fail not counted in stats")
	}
}

// TestServiceLoadShed: with one execution slot and a two-deep queue, a
// burst must shed the overflow with typed *copse.OverloadError (carrying
// a Retry-After hint) while admitted requests still complete correctly.
func TestServiceLoadShed(t *testing.T) {
	f, svc, sched := chaosService(t, 9,
		chaos.Config{Default: chaos.Rates{Latency: 1, LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond}},
		copse.WithMaxInFlight(1), copse.WithShedQueue(2))
	defer svc.Close()

	sched.Arm(true)
	const burst = 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shed, succeeded int
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			feats := [][]uint64{{1, 2, 3}}
			results, err := svc.ClassifyBatch(context.Background(), "m", feats)
			mu.Lock()
			defer mu.Unlock()
			var oe *copse.OverloadError
			switch {
			case err == nil:
				want := f.Classify(feats[0])
				for ti, lbl := range results[0].PerTree {
					if lbl != want[ti] {
						t.Errorf("admitted query tree %d: L%d, want L%d", ti, lbl, want[ti])
					}
				}
				succeeded++
			case errors.As(err, &oe):
				if oe.RetryAfter <= 0 {
					t.Errorf("OverloadError without Retry-After hint: %+v", oe)
				}
				shed++
			default:
				t.Errorf("burst classify returned unexpected error %v", err)
			}
		}()
	}
	wg.Wait()
	if shed == 0 {
		t.Errorf("burst of %d over capacity 1+2 shed nothing", burst)
	}
	if succeeded == 0 {
		t.Error("burst shed everything; admitted requests should finish")
	}
	if st := svc.Stats(); st.Shed != int64(shed) {
		t.Errorf("stats shed %d, observed %d", st.Shed, shed)
	}
}

// TestBatcherCancelUnderFault hammers the dynamic batcher with
// concurrent clients that randomly cancel mid-flight while the backend
// injects errors and panics: every waiter must get an answer or an
// error (no stranded goroutines, no deadlock), panics must surface
// typed, and the service must classify correctly once disarmed. In CI
// this runs under -race.
func TestBatcherCancelUnderFault(t *testing.T) {
	f, svc, sched := chaosService(t, 10,
		chaos.Config{Default: chaos.Rates{Error: 0.2, Panic: 0.05}},
		copse.WithBatchWindow(2*time.Millisecond), copse.WithWorkers(2))
	defer svc.Close()

	sched.Arm(true)
	const clients = 32
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(99, uint64(i)))
			for j := 0; j < 8; j++ {
				ctx, cancel := context.WithCancel(context.Background())
				if i%2 == 0 {
					// Half the clients race a cancel against the pass.
					delay := time.Duration(rng.Uint64N(3)) * time.Millisecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
				}
				feats := [][]uint64{{rng.Uint64N(16), rng.Uint64N(16), rng.Uint64N(16)}}
				results, err := svc.ClassifyBatch(ctx, "m", feats)
				if err == nil {
					want := f.Classify(feats[0])
					for ti, lbl := range results[0].PerTree {
						if lbl != want[ti] {
							t.Errorf("client %d tree %d: L%d, want L%d", i, ti, lbl, want[ti])
						}
					}
				}
				cancel()
			}
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("batcher deadlocked under fault injection")
	}

	// Recovery: disarmed, the same service answers correctly.
	sched.Arm(false)
	feats := [][]uint64{{3, 1, 4}}
	results, err := svc.ClassifyBatch(context.Background(), "m", feats)
	if err != nil {
		t.Fatalf("classify after disarm: %v", err)
	}
	want := f.Classify(feats[0])
	for ti, lbl := range results[0].PerTree {
		if lbl != want[ti] {
			t.Errorf("post-fault tree %d: L%d, want L%d", ti, lbl, want[ti])
		}
	}
	if st := svc.Stats(); st.InFlight != 0 {
		t.Errorf("in-flight %d after drain", st.InFlight)
	}
}
