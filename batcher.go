package copse

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// BatchPolicy governs the dynamic batcher: the in-process aggregator
// that coalesces concurrent Classify/ClassifyBatch calls for the same
// model into shared slot-packed homomorphic passes (DESIGN.md §11).
// A pass answers up to Meta.BatchCapacity queries for the price of one,
// and BENCH_serving shows per-pass cost is flat in batch size — so for
// uncoordinated traffic the batcher converts linger time directly into
// queries/sec: a request arriving alone waits up to Window for
// neighbours; a request arriving into a crowd shares its pass and
// never waits.
type BatchPolicy struct {
	// Window is the linger deadline: how long the first query of a
	// forming batch may wait for the batch to fill before the pass
	// fires anyway. Zero disables the batcher entirely (every call runs
	// its own passes, the pre-batcher behavior).
	Window time.Duration
	// MaxBatch caps how many queries one pass carries; 0 (or anything
	// larger) means the model's full Meta.BatchCapacity. Shrinking it
	// trades throughput for per-pass latency jitter under bursts.
	MaxBatch int
	// MinFill, when positive, fires a forming pass as soon as this many
	// queries are pending instead of waiting for MaxBatch or the
	// Window — a closed-loop fleet of N < capacity clients then runs
	// back-to-back full-fleet passes with no linger stalls. 0 means
	// fire only on MaxBatch or the deadline.
	MinFill int
}

// WithBatchWindow enables the dynamic batcher with the given linger
// window (shorthand for WithBatchPolicy(BatchPolicy{Window: d})).
// Concurrent ClassifyBatch/ClassifyBatchShuffled calls against the
// same model are then coalesced into shared slot-packed passes, with
// per-slot results (and, under WithShuffle, per-query codebooks)
// routed back to each caller. Zero (the default) disables coalescing.
func WithBatchWindow(d time.Duration) Option {
	return func(c *serviceConfig) { c.batch.Window = d }
}

// WithBatchPolicy enables the dynamic batcher with full policy control
// (see BatchPolicy). The batcher is active when the policy's Window is
// positive.
func WithBatchPolicy(p BatchPolicy) Option {
	return func(c *serviceConfig) { c.batch = p }
}

// aggWaiter is one caller blocked on the aggregator: its queries, the
// routing slots its per-query results (and codebooks) land in, and the
// channel its goroutine waits on. A waiter's queries may be spread
// over several passes (mixed-size requests split and overflow); the
// waiter completes when the last slot is delivered, or fails on the
// first pass error.
type aggWaiter struct {
	features  [][]uint64
	enqueued  time.Time
	results   []*Result
	codebooks []*ShuffledCodebook // routed only on shuffled services

	mu        sync.Mutex
	remaining int
	err       error
	finished  bool
	abandoned bool
	done      chan struct{}
}

// deliver routes one pass's decoded results into the waiter's slots
// [lo, lo+len(results)). Delivery to an abandoned waiter (its caller's
// context expired while the pass was in flight) is dropped: the pass
// proceeded for its neighbours, this caller already returned.
func (w *aggWaiter) deliver(lo int, results []*Result, codebooks []*ShuffledCodebook) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finished || w.abandoned {
		return
	}
	copy(w.results[lo:], results)
	if w.codebooks != nil && codebooks != nil {
		copy(w.codebooks[lo:], codebooks)
	}
	w.remaining -= len(results)
	if w.remaining == 0 {
		w.finished = true
		close(w.done)
	}
}

// fail completes the waiter with an error: one failed pass fails the
// whole request, even when other slots were (or would be) delivered.
func (w *aggWaiter) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finished || w.abandoned {
		return
	}
	w.err = err
	w.finished = true
	close(w.done)
}

// abandon marks the waiter cancelled, returning false when it already
// completed (the caller should then take the finished result instead).
// Abandoned slots in a forming batch are dropped at assembly; slots
// already assembled into an in-flight pass ride along harmlessly — the
// pass proceeds for the other waiters and the delivery is discarded.
func (w *aggWaiter) abandon() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finished {
		return false
	}
	w.abandoned = true
	return true
}

func (w *aggWaiter) isAbandoned() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.abandoned
}

// aggEntry is a queued waiter plus how many of its queries earlier
// passes already took (mixed-size requests split across passes).
type aggEntry struct {
	w    *aggWaiter
	next int
}

// aggSlice is one waiter's contribution to one pass: queries [lo, hi)
// of the waiter. Slot-block offsets within the pass are assigned at
// launch, after abandoned slices are dropped.
type aggSlice struct {
	w      *aggWaiter
	lo, hi int
}

// aggregator is the per-model dynamic batcher: one goroutine owning a
// FIFO of waiters, firing a slot-packed pass whenever the pending
// query count reaches the fire threshold or the linger window of the
// oldest arrival expires. Passes execute on their own goroutines (the
// service's in-flight semaphore provides the backpressure), so a slow
// pass never blocks the next batch from forming.
type aggregator struct {
	svc      *Service
	name     string
	window   time.Duration
	capacity int
	maxBatch int
	fireAt   int
	arrivals chan *aggWaiter

	queue []*aggEntry // owned by run()
}

func newAggregator(svc *Service, name string, capacity int) *aggregator {
	p := svc.cfg.batch
	maxBatch := capacity
	if p.MaxBatch > 0 && p.MaxBatch < capacity {
		maxBatch = p.MaxBatch
	}
	fireAt := maxBatch
	if p.MinFill > 0 && p.MinFill < maxBatch {
		fireAt = p.MinFill
	}
	a := &aggregator{
		svc:      svc,
		name:     name,
		window:   p.Window,
		capacity: capacity,
		maxBatch: maxBatch,
		fireAt:   fireAt,
		arrivals: make(chan *aggWaiter),
	}
	go a.run()
	return a
}

// submit enqueues one caller's queries and blocks until every slot is
// answered, the caller's context expires (the waiter abandons its
// slots; any shared pass proceeds for the rest), or the service
// closes.
func (a *aggregator) submit(ctx context.Context, batch [][]uint64) ([]*Result, []*ShuffledCodebook, error) {
	w := &aggWaiter{
		features:  batch,
		enqueued:  time.Now(),
		results:   make([]*Result, len(batch)),
		remaining: len(batch),
		done:      make(chan struct{}),
	}
	if a.svc.cfg.shuffle {
		w.codebooks = make([]*ShuffledCodebook, len(batch))
	}
	select {
	case a.arrivals <- w:
	case <-ctx.Done():
		a.svc.failures.Add(1)
		return nil, nil, ctx.Err()
	case <-a.svc.closing:
		return nil, nil, fmt.Errorf("copse: service closed")
	}
	select {
	case <-w.done:
	case <-ctx.Done():
		if w.abandon() {
			a.svc.failures.Add(1)
			return nil, nil, ctx.Err()
		}
		// Completed concurrently with the cancellation: the results are
		// already routed, hand them over.
		<-w.done
	}
	if w.err != nil {
		return nil, nil, w.err
	}
	return w.results, w.codebooks, nil
}

// run is the aggregator goroutine: enqueue arrivals, fire when full
// (or at MinFill), linger otherwise until the window expires.
func (a *aggregator) run() {
	var timer *time.Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
		}
		timerC = nil
	}
	for {
		select {
		case w := <-a.arrivals:
			a.queue = append(a.queue, &aggEntry{w: w})
			for a.pending() >= a.fireAt {
				a.fire()
			}
			if a.pending() > 0 {
				if timerC == nil {
					timer = time.NewTimer(a.window)
					timerC = timer.C
				}
			} else {
				stopTimer()
			}
		case <-timerC:
			timerC = nil
			// Deadline: flush everything queued. pending < fireAt ≤
			// maxBatch normally means one pass, but abandoned-entry
			// bookkeeping is settled at assembly, so loop to be exact.
			for a.pending() > 0 {
				a.fire()
			}
		case <-a.svc.closing:
			stopTimer()
			for _, e := range a.queue {
				e.w.fail(fmt.Errorf("copse: service closed"))
			}
			a.queue = nil
			return
		}
	}
}

// pending counts queued queries not yet assembled into a pass,
// dropping waiters whose callers abandoned them while lingering.
func (a *aggregator) pending() int {
	n := 0
	live := a.queue[:0]
	for _, e := range a.queue {
		if e.w.isAbandoned() {
			continue
		}
		live = append(live, e)
		n += len(e.w.features) - e.next
	}
	a.queue = live
	return n
}

// fire assembles up to maxBatch queries FIFO from the queue — splitting
// a waiter larger than the remaining capacity across passes, the
// overflow staying queued for the next one — and launches the pass.
func (a *aggregator) fire() {
	var slices []aggSlice
	taken := 0
	now := time.Now()
	for len(a.queue) > 0 && taken < a.maxBatch {
		e := a.queue[0]
		if e.w.isAbandoned() {
			a.queue = a.queue[1:]
			continue
		}
		n := min(a.maxBatch-taken, len(e.w.features)-e.next)
		slices = append(slices, aggSlice{w: e.w, lo: e.next, hi: e.next + n})
		a.svc.aggWaitNS.Add(int64(n) * now.Sub(e.w.enqueued).Nanoseconds())
		e.next += n
		taken += n
		if e.next == len(e.w.features) {
			a.queue = a.queue[1:]
		}
	}
	if taken == 0 {
		return
	}
	// The shuffle seed is reserved at fire time so seeded services
	// reproduce pass-for-pass regardless of pass goroutine scheduling.
	var seed uint64
	if a.svc.cfg.shuffle {
		seed = a.svc.nextShuffleSeed()
	}
	go a.runPass(slices, taken, seed)
}

// runPass executes one coalesced pass: slot-pack every live slice's
// queries, classify (through the service's in-flight limiter — the
// batcher inherits the WithMaxInFlight backpressure), decrypt, and
// route each waiter's window of results (and codebooks) back to it.
func (a *aggregator) runPass(slices []aggSlice, total int, seed uint64) {
	live := slices[:0]
	for _, sl := range slices {
		if !sl.w.isAbandoned() {
			live = append(live, sl)
		}
	}
	if len(live) == 0 {
		return // everyone left during assembly: skip the pass entirely
	}
	fail := func(err error) {
		for _, sl := range live {
			sl.w.fail(err)
		}
	}
	// Panic isolation: the pass runs on its own goroutine, so an
	// unrecovered panic (a poisoned batch, a backend bug) would kill the
	// process. Fail this pass's waiters with a typed *InternalError
	// instead; every other pass and waiter proceeds.
	defer func() {
		if r := recover(); r != nil {
			a.svc.panicsRecovered.Add(1)
			fail(&InternalError{Op: "batcher", Value: r, Stack: debug.Stack()})
		}
	}()
	feats := make([][]uint64, 0, total)
	for _, sl := range live {
		feats = append(feats, sl.w.features[sl.lo:sl.hi]...)
	}
	q, err := a.svc.EncryptQueryBatch(a.name, feats)
	if err != nil {
		fail(err)
		return
	}
	// The pass runs under the service's lifetime, not any one waiter's
	// context: a cancelled waiter abandons its slots, the pass proceeds
	// for the rest.
	enc, _, err := a.svc.classify(a.svc.runCtx, a.name, q, seed)
	if err != nil {
		fail(err)
		return
	}
	results, err := a.svc.DecryptResultBatch(a.name, enc)
	if err != nil {
		fail(err)
		return
	}
	codebooks := enc.Codebooks()
	a.svc.aggPasses.Add(1)
	a.svc.aggQueries.Add(int64(len(feats)))
	a.svc.aggFillNum.Add(int64(len(feats)))
	a.svc.aggFillDen.Add(int64(a.capacity))
	off := 0
	for _, sl := range live {
		n := sl.hi - sl.lo
		var cbs []*ShuffledCodebook
		if codebooks != nil {
			cbs = codebooks[off : off+n]
		}
		sl.w.deliver(sl.lo, results[off:off+n], cbs)
		off += n
	}
}

// aggregatorFor returns the model's dynamic batcher, creating it (and
// its goroutine) on first use; nil when batching is disabled or the
// service is closed.
func (s *Service) aggregatorFor(name string) (*aggregator, error) {
	if s.cfg.batch.Window <= 0 {
		return nil, nil
	}
	s.mu.RLock()
	a := s.aggregators[name]
	s.mu.RUnlock()
	if a != nil {
		return a, nil
	}
	capacity, err := s.BatchCapacity(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closing:
		return nil, fmt.Errorf("copse: service closed")
	default:
	}
	if a = s.aggregators[name]; a == nil {
		a = newAggregator(s, name, capacity)
		s.aggregators[name] = a
	}
	return a, nil
}
