// Quickstart: secure evaluation of the paper's Figure 1 decision tree.
//
// Maurice compiles and encrypts the model, Diane encrypts the feature
// vector (x, y) = (0, 5), Sally classifies it under encryption, and
// Diane decrypts the answer — which must be L4, the label the paper's §3
// walkthrough derives.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"copse"
)

func main() {
	log.SetFlags(0)

	// The running example from the paper's Figure 1: two features
	// (x, y), six labels, five branches.
	forest := copse.ExampleForest()
	fmt.Println("model (COPSE text format):")
	if err := copse.FormatModel(logWriter{}, forest); err != nil {
		log.Fatal(err)
	}

	// Maurice: stage the forest into its vectorizable form.
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled: %s\n", compiled.Meta.String())
	fmt.Printf("threshold vector padded to q̂=%d, branch vector to b̂=%d, %d levels\n",
		compiled.Meta.QPad, compiled.Meta.BPad, compiled.Meta.D)

	// Wire the three parties over real BGV ciphertexts. ScenarioOffload
	// encrypts both the model and the features; the server learns
	// neither.
	sys, err := copse.NewSystem(compiled, copse.SystemConfig{
		Backend:  copse.BackendBGV,
		Scenario: copse.ScenarioOffload,
		Security: copse.SecurityTest,
		Workers:  8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Diane: encrypt (x, y) = (0, 5) and query.
	features := []uint64{0, 5}
	query, err := sys.Diane.EncryptQuery(features)
	if err != nil {
		log.Fatal(err)
	}
	encrypted, trace, err := sys.Sally.Classify(query)
	if err != nil {
		log.Fatal(err)
	}
	result, err := sys.Diane.DecryptResult(encrypted)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nClassify(x=%d, y=%d) = %s (paper's walkthrough: L4)\n",
		features[0], features[1], forest.Labels[result.PerTree[0]])
	fmt.Printf("stages: compare=%v reshuffle=%v levels=%v accumulate=%v (total %v)\n",
		trace.Compare, trace.Reshuffle, trace.Levels, trace.Accumulate, trace.Total)
	fmt.Printf("FHE operations: %v\n", sys.Backend().Counts())
}

type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print("  " + string(p))
	return len(p), nil
}
