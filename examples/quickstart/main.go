// Quickstart: secure evaluation of the paper's Figure 1 decision tree
// through the copse.Service serving API.
//
// The service compiles and encrypts the model once, then answers a
// slot-packed batch of queries in a single homomorphic pass — the
// batch headroom COPSE's periodic replication leaves idle on a single
// query. The first query is the paper's §3 walkthrough input
// (x, y) = (0, 5), which must classify as L4.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"copse"
)

func main() {
	log.SetFlags(0)

	// The running example from the paper's Figure 1: two features
	// (x, y), six labels, five branches.
	forest := copse.ExampleForest()
	fmt.Println("model (COPSE text format):")
	if err := copse.FormatModel(logWriter{}, forest); err != nil {
		log.Fatal(err)
	}

	// Maurice: stage the forest into its vectorizable form.
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled: %s\n", compiled.Meta.String())
	fmt.Printf("threshold vector padded to q̂=%d, branch vector to b̂=%d, %d levels\n",
		compiled.Meta.QPad, compiled.Meta.BPad, compiled.Meta.D)
	fmt.Printf("batch capacity: %d queries per homomorphic pass\n", compiled.Meta.BatchCapacity())

	// Serve it over real BGV ciphertexts. ScenarioOffload encrypts both
	// the model and the features; the server learns neither.
	svc := copse.NewService(
		copse.WithBackend(copse.BackendBGV),
		copse.WithScenario(copse.ScenarioOffload),
		copse.WithSecurity(copse.SecurityTest),
		copse.WithWorkers(8),
	)
	if err := svc.Register("figure1", compiled); err != nil {
		log.Fatal(err)
	}

	// Diane: encrypt a batch of queries — one ciphertext set, one
	// homomorphic pass, one answer per query.
	batch := [][]uint64{{0, 5}, {7, 0}, {12, 3}, {6, 6}}
	results, err := svc.ClassifyBatch(context.Background(), "figure1", batch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for i, res := range results {
		fmt.Printf("Classify(x=%d, y=%d) = %s\n",
			batch[i][0], batch[i][1], forest.Labels[res.PerTree[0]])
	}
	fmt.Printf("(paper's §3 walkthrough: Classify(0, 5) = L4)\n")

	st := svc.Stats()
	fmt.Printf("\n%d queries answered in %d homomorphic pass(es), %v per pass\n",
		st.Queries, st.Requests, st.MeanLatency().Round(1e6))
	fmt.Printf("FHE operations: %v\n", svc.Backend().Counts())

	// Leakage-hardened serving: the raw leaf bitvector reveals the
	// order of the labels in the forest's trees, so a shuffled service
	// permutes every packed query's result — one block-diagonal pass
	// for the whole batch (DESIGN.md §10) — and hands back per-query
	// codebooks. Vote counts survive; per-tree labels don't. On BGV the
	// model must be compiled with PlanShuffle so the result keeps the
	// shuffle's level headroom.
	shuffledModel, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024, PlanShuffle: true})
	if err != nil {
		log.Fatal(err)
	}
	shuffledSvc := copse.NewService(
		copse.WithBackend(copse.BackendBGV),
		copse.WithScenario(copse.ScenarioOffload),
		copse.WithSecurity(copse.SecurityTest),
		copse.WithWorkers(8),
		copse.WithShuffle(true),
	)
	if err := shuffledSvc.Register("figure1", shuffledModel); err != nil {
		log.Fatal(err)
	}
	defer shuffledSvc.Close()
	sResults, codebooks, err := shuffledSvc.ClassifyBatchShuffled(context.Background(), "figure1", batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nshuffled serving (one permutation pass per batch):")
	for i, res := range sResults {
		fmt.Printf("Classify(x=%d, y=%d) votes %v → %s  (codebook %v)\n",
			batch[i][0], batch[i][1], res.Votes, forest.Labels[res.Plurality()], codebooks[i].Slots)
	}
}

type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print("  " + string(p))
	return len(p), nil
}
