// Microbench: the sensitivity study of the paper's §8.4 (Figure 10) —
// how the four pipeline stages respond to tree depth, branch count, and
// fixed-point precision, on the Table 6 microbenchmark models.
//
// Run with: go run ./examples/microbench [-backend bgv] [-queries N]
package main

import (
	"flag"
	"log"
	"os"

	"copse/internal/experiments"
)

func main() {
	log.SetFlags(0)
	backend := flag.String("backend", "clear", "clear (fast, structural timing) or bgv (real ciphertexts)")
	queries := flag.Int("queries", 9, "queries per model (median reported)")
	flag.Parse()

	cfg := experiments.Config{Backend: *backend, Queries: *queries, Seed: 1}

	tbl, err := experiments.Table6()
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	for _, variant := range []string{"a", "b", "c"} {
		tbl, err := experiments.Fig10(cfg, variant)
		if err != nil {
			log.Fatal(err)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
