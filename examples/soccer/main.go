// Soccer: the paper's second real-world workload, in the server-owned-
// model configuration (S = M, paper §7.1 case 2): the server keeps the
// trained match-predictor in plaintext and clients send encrypted match
// features. This is Figure 9's fast path — the example measures it
// against the fully encrypted configuration.
//
// Run with: go run ./examples/soccer
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"copse"
	"copse/internal/synth"
)

func main() {
	log.SetFlags(0)

	ds := synth.Soccer(2000, 3)
	trainSet, testSet := ds.Split(0.8, 4)
	tm, err := copse.Train(trainSet.X, trainSet.Y, ds.Labels, copse.TrainConfig{
		NumTrees: 3, MaxDepth: 4, MinLeaf: 20, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	acc, err := tm.Accuracy(testSet.X, testSet.Y)
	if err != nil {
		log.Fatal(err)
	}
	f := tm.Forest
	fmt.Printf("match predictor: %d trees, depth %d, %d branches; test accuracy %.3f\n",
		len(f.Trees), f.Depth(), f.Branches(), acc)

	compiled, err := copse.Compile(f, copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	timeScenario := func(name string, scenario copse.Scenario) time.Duration {
		sys, err := copse.NewSystem(compiled, copse.SystemConfig{
			Backend:  copse.BackendBGV,
			Scenario: scenario,
			Security: copse.SecurityTest,
			Workers:  workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		var total time.Duration
		const queries = 2
		for i := 0; i < queries; i++ {
			features, err := tm.QuantizeFeatures(testSet.X[i])
			if err != nil {
				log.Fatal(err)
			}
			query, err := sys.Diane.EncryptQuery(features)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			enc, _, err := sys.Sally.Classify(query)
			if err != nil {
				log.Fatal(err)
			}
			total += time.Since(start)
			res, err := sys.Diane.DecryptResult(enc)
			if err != nil {
				log.Fatal(err)
			}
			want, err := tm.Predict(testSet.X[i])
			if err != nil {
				log.Fatal(err)
			}
			if res.Plurality() != want {
				log.Fatalf("%s query %d: secure %d != plaintext %d", name, i, res.Plurality(), want)
			}
			fmt.Printf("  [%s] match %d → %s (per-tree votes %v)\n",
				name, i, ds.Labels[res.Plurality()], res.Votes)
		}
		avg := total / queries
		fmt.Printf("  [%s] average inference: %v\n", name, avg.Round(time.Millisecond))
		return avg
	}

	fmt.Println("server-owned plaintext model (S = M):")
	plain := timeScenario("plaintext model", copse.ScenarioServerModel)
	fmt.Println("fully encrypted model (M = D offloading):")
	encrypted := timeScenario("encrypted model", copse.ScenarioOffload)
	fmt.Printf("plaintext-model speedup: %.2fx (paper Figure 9: ~1.4x)\n",
		float64(encrypted)/float64(plain))
}
