// Multiparty: the security analysis of the paper's §7, executable. It
// prints the leakage tables (Tables 3–4), then demonstrates on a live
// system that the server really can infer exactly those quantities from
// ciphertext shapes — and that multiplicity padding (§7.2.1) hides the
// true K behind an upper bound.
//
// Run with: go run ./examples/multiparty
package main

import (
	"fmt"
	"log"
	"os"

	"copse"
	"copse/internal/experiments"
)

func main() {
	log.SetFlags(0)

	// The leakage model, straight from the paper's tables.
	if err := experiments.Table3().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := experiments.Table4().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	forest := copse.ExampleForest()
	fmt.Printf("model ground truth: K=%d q=%d b=%d d=%d\n\n",
		forest.MaxMultiplicity(), forest.QuantizedBranching(), forest.Branches(), forest.Depth())

	// Offloading scenario: the server sees only ciphertext collections,
	// yet recovers the padded structural quantities of Table 3 row 1.
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := copse.NewSystem(compiled, copse.SystemConfig{
		Backend:  copse.BackendClear,
		Scenario: copse.ScenarioOffload,
	})
	if err != nil {
		log.Fatal(err)
	}
	view := sys.Sally.ServerView()
	fmt.Printf("server view (offload, model fully encrypted): q̂=%d b̂=%d d=%d p=%d\n",
		view.QPad, view.BPad, view.D, view.P)
	fmt.Println("  → the server learns padded widths and depth, exactly Table 3's q, b, d")

	// Multiplicity padding (§7.2.1): compile with an upper bound so only
	// the bound — not the true K — reaches Diane.
	padded, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024, PadMultiplicityTo: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmultiplicity padding: true K=%d, revealed bound K=%d (q grows %d → %d)\n",
		forest.MaxMultiplicity(), padded.Meta.K, compiled.Meta.Q, padded.Meta.Q)

	// The padded model still classifies correctly, for every scenario.
	for _, sc := range []struct {
		name     string
		scenario copse.Scenario
	}{
		{"offload (M=D)", copse.ScenarioOffload},
		{"server model (S=M)", copse.ScenarioServerModel},
		{"client eval (S=D)", copse.ScenarioClientEval},
	} {
		s, err := copse.NewSystem(padded, copse.SystemConfig{
			Backend:  copse.BackendClear,
			Scenario: sc.scenario,
		})
		if err != nil {
			log.Fatal(err)
		}
		q, err := s.Diane.EncryptQuery([]uint64{0, 5})
		if err != nil {
			log.Fatal(err)
		}
		enc, _, err := s.Sally.Classify(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Diane.DecryptResult(enc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s Classify(0,5) = %s ✓\n", sc.name, forest.Labels[res.PerTree[0]])
	}
	fmt.Println("\n(three-party deployments need multi-key or threshold FHE wrappers — paper §7.1)")
}
