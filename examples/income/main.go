// Income: the paper's census-income workload end to end — train a
// random forest on (synthetic) census data, compile it with the COPSE
// staging compiler, and serve encrypted inference queries whose results
// are checked against plaintext evaluation.
//
// Run with: go run ./examples/income
package main

import (
	"fmt"
	"log"
	"runtime"

	"copse"
	"copse/internal/synth"
)

func main() {
	log.SetFlags(0)

	// Synthetic stand-in for the census-income dataset (DESIGN.md §4).
	ds := synth.Income(2000, 1)
	trainSet, testSet := ds.Split(0.8, 2)
	fmt.Printf("dataset: %d train / %d test rows, %d features, labels %v\n",
		len(trainSet.X), len(testSet.X), len(ds.FeatureNames), ds.Labels)

	// Train (our scikit-learn stand-in). Kept small so the fully
	// encrypted demo below stays fast; copse-train builds the paper's
	// income5/income15 scale.
	tm, err := copse.Train(trainSet.X, trainSet.Y, ds.Labels, copse.TrainConfig{
		NumTrees: 3, MaxDepth: 4, MinLeaf: 20, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	acc, err := tm.Accuracy(testSet.X, testSet.Y)
	if err != nil {
		log.Fatal(err)
	}
	f := tm.Forest
	fmt.Printf("trained: %d trees, depth %d, %d branches, K=%d; test accuracy %.3f\n",
		len(f.Trees), f.Depth(), f.Branches(), f.MaxMultiplicity(), acc)

	compiled, err := copse.Compile(f, copse.CompileOptions{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %s (recommended BGV levels: %d)\n",
		compiled.Meta.String(), compiled.Meta.RecommendedLevels)

	sys, err := copse.NewSystem(compiled, copse.SystemConfig{
		Backend:  copse.BackendBGV,
		Scenario: copse.ScenarioOffload,
		Security: copse.SecurityTest,
		Workers:  runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Classify three test rows under encryption; verify against the
	// plaintext forest.
	for i := 0; i < 3; i++ {
		features, err := tm.QuantizeFeatures(testSet.X[i])
		if err != nil {
			log.Fatal(err)
		}
		want, err := tm.Predict(testSet.X[i])
		if err != nil {
			log.Fatal(err)
		}
		query, err := sys.Diane.EncryptQuery(features)
		if err != nil {
			log.Fatal(err)
		}
		enc, trace, err := sys.Sally.Classify(query)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Diane.DecryptResult(enc)
		if err != nil {
			log.Fatal(err)
		}
		status := "MATCHES plaintext"
		if res.Plurality() != want {
			status = fmt.Sprintf("MISMATCH (plaintext %s)", ds.Labels[want])
		}
		fmt.Printf("row %d: encrypted inference → %-6s in %v; votes %v; %s\n",
			i, ds.Labels[res.Plurality()], trace.Total.Round(1e6), res.Votes, status)
	}
}
