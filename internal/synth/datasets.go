package synth

import (
	"math"
	"math/rand/v2"
)

// Dataset is a labelled tabular dataset for forest training.
type Dataset struct {
	Name         string
	FeatureNames []string
	Labels       []string
	X            [][]float64
	Y            []int
}

// Income generates a synthetic stand-in for the census-income dataset
// [15]: 8 numeric census-style features and a binary >50K label produced
// by a noisy nonlinear rule, so trained forests have realistic structure
// (deep trees, uneven feature multiplicities).
func Income(n int, seed uint64) *Dataset {
	r := rand.New(rand.NewPCG(seed, 0x1c0e))
	d := &Dataset{
		Name: "income",
		FeatureNames: []string{
			"age", "education_num", "hours_per_week", "capital_gain",
			"capital_loss", "workclass", "occupation", "marital",
		},
		Labels: []string{"<=50K", ">50K"},
	}
	for i := 0; i < n; i++ {
		age := 17 + r.Float64()*60
		edu := float64(1 + r.IntN(16))
		hours := 10 + r.Float64()*70
		gain := 0.0
		if r.Float64() < 0.15 {
			gain = r.Float64() * 20000
		}
		loss := 0.0
		if r.Float64() < 0.08 {
			loss = r.Float64() * 3000
		}
		workclass := float64(r.IntN(7))
		occupation := float64(r.IntN(14))
		marital := float64(r.IntN(7))

		score := 0.05*(age-38) + 0.5*(edu-9) + 0.06*(hours-40) +
			gain/4000 - loss/2000 + 0.3*math.Sin(occupation) +
			boolTo(marital < 2, 1.2, -0.4)
		score += r.NormFloat64() * 1.1
		label := 0
		if score > 1.0 {
			label = 1
		}
		d.X = append(d.X, []float64{age, edu, hours, gain, loss, workclass, occupation, marital})
		d.Y = append(d.Y, label)
	}
	return d
}

// Soccer generates a synthetic stand-in for the soccer international
// history dataset [16]: match-history features and a 3-class
// home-win/draw/away-win label.
func Soccer(n int, seed uint64) *Dataset {
	r := rand.New(rand.NewPCG(seed, 0x50cc))
	d := &Dataset{
		Name: "soccer",
		FeatureNames: []string{
			"home_rank", "away_rank", "home_goals_avg", "away_goals_avg",
			"home_form", "away_form", "h2h_balance", "neutral", "friendly",
		},
		Labels: []string{"home_win", "draw", "away_win"},
	}
	for i := 0; i < n; i++ {
		homeRank := 1 + r.Float64()*199
		awayRank := 1 + r.Float64()*199
		homeGoals := r.Float64() * 3
		awayGoals := r.Float64() * 3
		homeForm := r.Float64() * 15
		awayForm := r.Float64() * 15
		h2h := r.NormFloat64() * 2
		neutral := float64(r.IntN(2))
		friendly := float64(r.IntN(2))

		edge := 0.012*(awayRank-homeRank) + 0.5*(homeGoals-awayGoals) +
			0.06*(homeForm-awayForm) + 0.15*h2h +
			boolTo(neutral == 0, 0.45, 0)
		edge += r.NormFloat64() * 0.9
		var label int
		switch {
		case edge > 0.35:
			label = 0
		case edge < -0.35:
			label = 2
		default:
			label = 1
		}
		d.X = append(d.X, []float64{homeRank, awayRank, homeGoals, awayGoals,
			homeForm, awayForm, h2h, neutral, friendly})
		d.Y = append(d.Y, label)
	}
	return d
}

func boolTo(cond bool, yes, no float64) float64 {
	if cond {
		return yes
	}
	return no
}

// Split partitions a dataset into train/test halves with the given
// training fraction.
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, test *Dataset) {
	r := rand.New(rand.NewPCG(seed, 0x5917))
	perm := r.Perm(len(d.X))
	cut := int(float64(len(d.X)) * trainFrac)
	mk := func(idx []int) *Dataset {
		out := &Dataset{Name: d.Name, FeatureNames: d.FeatureNames, Labels: d.Labels}
		for _, i := range idx {
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
		return out
	}
	return mk(perm[:cut]), mk(perm[cut:])
}
