package synth

import (
	"testing"

	"copse/internal/model"
)

// TestMicrobenchmarksMatchTable6 verifies the generated suite hits the
// paper's Table 6 specifications exactly.
func TestMicrobenchmarksMatchTable6(t *testing.T) {
	for _, mb := range Microbenchmarks() {
		f, err := Generate(mb.Spec)
		if err != nil {
			t.Fatalf("%s: %v", mb.Name, err)
		}
		if got := f.Depth(); got != mb.WantMaxDepth {
			t.Errorf("%s: depth %d, want %d", mb.Name, got, mb.WantMaxDepth)
		}
		if got := f.Branches(); got != mb.WantBranches {
			t.Errorf("%s: branches %d, want %d", mb.Name, got, mb.WantBranches)
		}
		if got := len(f.Trees); got != mb.WantTrees {
			t.Errorf("%s: trees %d, want %d", mb.Name, got, mb.WantTrees)
		}
		if f.Precision != mb.WantPrecision {
			t.Errorf("%s: precision %d, want %d", mb.Name, f.Precision, mb.WantPrecision)
		}
		if f.NumFeatures != 2 || len(f.Labels) != 3 {
			t.Errorf("%s: features=%d labels=%d, want 2/3", mb.Name, f.NumFeatures, len(f.Labels))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := ForestSpec{NumFeatures: 3, NumLabels: 2, Precision: 8, MaxDepth: 4, BranchesPerTree: []int{9, 12}, Seed: 42}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := model.FormatString(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := model.FormatString(b)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Error("same seed produced different forests")
	}
	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := model.FormatString(c)
	if err != nil {
		t.Fatal(err)
	}
	if sa == sc {
		t.Error("different seeds produced identical forests")
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := []ForestSpec{
		{NumFeatures: 1, NumLabels: 2, Precision: 8, MaxDepth: 0, BranchesPerTree: []int{3}},
		{NumFeatures: 1, NumLabels: 2, Precision: 8, MaxDepth: 5, BranchesPerTree: []int{3}},
		{NumFeatures: 0, NumLabels: 2, Precision: 8, MaxDepth: 2, BranchesPerTree: []int{3}},
		{NumFeatures: 1, NumLabels: 2, Precision: 99, MaxDepth: 2, BranchesPerTree: []int{3}},
		{NumFeatures: 1, NumLabels: 2, Precision: 8, MaxDepth: 2, BranchesPerTree: []int{4}}, // over capacity
	}
	for i, spec := range bad {
		if _, err := Generate(spec); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
}

func TestGenerateValidForests(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		f, err := Generate(ForestSpec{
			NumFeatures: 2, NumLabels: 3, Precision: 6,
			MaxDepth: 3, BranchesPerTree: []int{5, 7}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f.Depth() != 3 || f.Branches() != 12 {
			t.Errorf("seed %d: depth=%d branches=%d", seed, f.Depth(), f.Branches())
		}
	}
}

func TestDatasets(t *testing.T) {
	for _, d := range []*Dataset{Income(500, 1), Soccer(500, 1)} {
		if len(d.X) != 500 || len(d.Y) != 500 {
			t.Fatalf("%s: %d rows", d.Name, len(d.X))
		}
		seen := map[int]int{}
		for i, row := range d.X {
			if len(row) != len(d.FeatureNames) {
				t.Fatalf("%s row %d: %d features, want %d", d.Name, i, len(row), len(d.FeatureNames))
			}
			if d.Y[i] < 0 || d.Y[i] >= len(d.Labels) {
				t.Fatalf("%s row %d: label %d out of range", d.Name, i, d.Y[i])
			}
			seen[d.Y[i]]++
		}
		// Every class should appear (the generators are tuned for
		// realistic class balance).
		for li := range d.Labels {
			if seen[li] == 0 {
				t.Errorf("%s: label %q never appears", d.Name, d.Labels[li])
			}
		}
		train, test := d.Split(0.8, 7)
		if len(train.X) != 400 || len(test.X) != 100 {
			t.Errorf("%s split: %d/%d", d.Name, len(train.X), len(test.X))
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := Income(50, 9), Income(50, 9)
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("same seed produced different datasets")
			}
		}
	}
}
