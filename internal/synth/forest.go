// Package synth generates synthetic decision forests and datasets: the
// randomly-generated microbenchmark models of the paper's Table 6, plus
// stand-ins for the census-income and soccer datasets used for the
// real-world benchmarks (see DESIGN.md §4 for the substitution rationale).
package synth

import (
	"fmt"
	"math/rand/v2"

	"copse/internal/model"
)

// ForestSpec describes a random forest to generate.
type ForestSpec struct {
	Name            string
	NumFeatures     int
	NumLabels       int
	Precision       int
	MaxDepth        int
	BranchesPerTree []int // one entry per tree
	Seed            uint64
}

// Generate builds a random forest with exactly the requested branch
// counts and maximum depth: each tree starts as a full-depth spine (so
// the depth target is met exactly) and then grows by expanding random
// eligible leaves.
func Generate(spec ForestSpec) (*model.Forest, error) {
	if spec.MaxDepth < 1 {
		return nil, fmt.Errorf("synth: max depth %d", spec.MaxDepth)
	}
	for ti, b := range spec.BranchesPerTree {
		if b < spec.MaxDepth {
			return nil, fmt.Errorf("synth: tree %d has %d branches, below max depth %d", ti, b, spec.MaxDepth)
		}
		if spec.MaxDepth < 63 && b > (1<<uint(spec.MaxDepth))-1 {
			return nil, fmt.Errorf("synth: tree %d wants %d branches, but depth %d holds at most %d",
				ti, b, spec.MaxDepth, (1<<uint(spec.MaxDepth))-1)
		}
	}
	if spec.NumFeatures < 1 || spec.NumLabels < 1 {
		return nil, fmt.Errorf("synth: need at least one feature and one label")
	}
	if spec.Precision < 1 || spec.Precision > 32 {
		return nil, fmt.Errorf("synth: precision %d out of range", spec.Precision)
	}
	r := rand.New(rand.NewPCG(spec.Seed, 0x5eed))
	f := &model.Forest{
		NumFeatures: spec.NumFeatures,
		Precision:   spec.Precision,
	}
	for i := 0; i < spec.NumLabels; i++ {
		f.Labels = append(f.Labels, fmt.Sprintf("C%d", i))
	}
	for _, branches := range spec.BranchesPerTree {
		f.Trees = append(f.Trees, &model.Tree{Root: growTree(r, spec, branches)})
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

type leafSlot struct {
	node  *model.Node
	depth int
}

func growTree(r *rand.Rand, spec ForestSpec, branches int) *model.Node {
	randBranch := func() *model.Node {
		return &model.Node{
			Feature:   r.IntN(spec.NumFeatures),
			Threshold: r.Uint64N(1 << uint(spec.Precision)),
		}
	}
	randLeaf := func() *model.Node {
		return &model.Node{Leaf: true, Label: r.IntN(spec.NumLabels)}
	}

	// Spine: a chain of MaxDepth branches guaranteeing the depth target.
	root := randBranch()
	cur := root
	var leaves []leafSlot
	for depth := 1; depth < spec.MaxDepth; depth++ {
		next := randBranch()
		if r.IntN(2) == 0 {
			cur.Left, cur.Right = next, randLeaf()
			leaves = append(leaves, leafSlot{cur.Right, depth + 1})
		} else {
			cur.Left, cur.Right = randLeaf(), next
			leaves = append(leaves, leafSlot{cur.Left, depth + 1})
		}
		cur = next
	}
	cur.Left, cur.Right = randLeaf(), randLeaf()
	leaves = append(leaves, leafSlot{cur.Left, spec.MaxDepth + 1}, leafSlot{cur.Right, spec.MaxDepth + 1})

	// Expand random eligible leaves (those not already at max depth)
	// until the branch budget is used.
	for n := spec.MaxDepth; n < branches; n++ {
		eligible := leaves[:0:0]
		for _, l := range leaves {
			if l.depth <= spec.MaxDepth {
				eligible = append(eligible, l)
			}
		}
		if len(eligible) == 0 {
			break // depth cap reached everywhere; can't place more branches
		}
		pick := eligible[r.IntN(len(eligible))]
		b := randBranch()
		*pick.node = *b
		pick.node.Left, pick.node.Right = randLeaf(), randLeaf()
		// Replace the picked slot with the two new leaves.
		replaced := leaves[:0]
		for _, l := range leaves {
			if l.node != pick.node {
				replaced = append(replaced, l)
			}
		}
		leaves = append(replaced,
			leafSlot{pick.node.Left, pick.depth + 1},
			leafSlot{pick.node.Right, pick.depth + 1})
	}
	return root
}

// Microbenchmark names the eight synthetic models of Table 6.
type Microbenchmark struct {
	Name string
	Spec ForestSpec
	// Table 6 columns for verification.
	WantMaxDepth  int
	WantPrecision int
	WantTrees     int
	WantBranches  int
}

// Microbenchmarks returns the paper's Table 6 model suite: depth4/5/6
// vary the maximum depth, width55/78/677 vary the branch counts (the
// name gives branches per tree), and prec8/16 vary the fixed-point
// precision. Every forest has 2 features and 3 distinct labels.
func Microbenchmarks() []Microbenchmark {
	mk := func(name string, maxDepth, precision int, perTree []int, seed uint64) Microbenchmark {
		total := 0
		for _, b := range perTree {
			total += b
		}
		return Microbenchmark{
			Name: name,
			Spec: ForestSpec{
				Name:            name,
				NumFeatures:     2,
				NumLabels:       3,
				Precision:       precision,
				MaxDepth:        maxDepth,
				BranchesPerTree: perTree,
				Seed:            seed,
			},
			WantMaxDepth:  maxDepth,
			WantPrecision: precision,
			WantTrees:     len(perTree),
			WantBranches:  total,
		}
	}
	return []Microbenchmark{
		mk("depth4", 4, 8, []int{7, 8}, 104),
		mk("depth5", 5, 8, []int{7, 8}, 105),
		mk("depth6", 6, 8, []int{7, 8}, 106),
		mk("width55", 5, 8, []int{5, 5}, 155),
		mk("width78", 5, 8, []int{7, 8}, 178),
		mk("width677", 5, 8, []int{6, 7, 7}, 677),
		mk("prec8", 5, 8, []int{7, 8}, 208),
		mk("prec16", 5, 16, []int{7, 8}, 216),
	}
}
