package seccomp

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"copse/internal/bgv"
	"copse/internal/bits"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/he/heclear"
)

// bitPlaneOperands transposes vals into MSB-first bit planes and wraps
// each plane as a cipher or plain operand.
func bitPlaneOperands(t *testing.T, b he.Backend, vals []uint64, p int, cipher bool) []he.Operand {
	t.Helper()
	planes, err := bits.Transpose(vals, p)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]he.Operand, p)
	for i, plane := range planes {
		if cipher {
			ct, err := b.Encrypt(plane)
			if err != nil {
				t.Fatal(err)
			}
			ops[i] = he.Cipher(ct)
		} else {
			ops[i], err = he.NewPlain(b, plane)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return ops
}

// TestCompareGTAllCombos: [x > y] over every cipher/plain combination
// and a range of precisions, against the plain comparison.
func TestCompareGTAllCombos(t *testing.T) {
	b := heclear.New(64, 65537)
	r := rand.New(rand.NewPCG(1, 1))
	for _, p := range []int{1, 2, 3, 4, 8, 16} {
		for _, xc := range []bool{true, false} {
			for _, yc := range []bool{true, false} {
				n := 64
				x := make([]uint64, n)
				y := make([]uint64, n)
				for i := range x {
					x[i] = r.Uint64N(1 << uint(p))
					y[i] = r.Uint64N(1 << uint(p))
				}
				// Force some equal pairs (boundary case: equal means NOT greater).
				x[0], y[0] = 5%(1<<uint(p)), 5%(1<<uint(p))
				xOps := bitPlaneOperands(t, b, x, p, xc)
				yOps := bitPlaneOperands(t, b, y, p, yc)
				res, err := CompareGT(b, xOps, yOps)
				if err != nil {
					t.Fatalf("p=%d cipher=(%v,%v): %v", p, xc, yc, err)
				}
				got, err := he.Reveal(b, res)
				if err != nil {
					t.Fatal(err)
				}
				for i := range x {
					want := uint64(0)
					if x[i] > y[i] {
						want = 1
					}
					if got[i] != want {
						t.Fatalf("p=%d cipher=(%v,%v) slot %d: %d>%d got %d want %d",
							p, xc, yc, i, x[i], y[i], got[i], want)
					}
				}
			}
		}
	}
}

// TestCompareGTQuick is the property form over random precisions/values.
func TestCompareGTQuick(t *testing.T) {
	b := heclear.New(32, 65537)
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%12) + 1
		r := rand.New(rand.NewPCG(seed, 9))
		x := make([]uint64, 32)
		y := make([]uint64, 32)
		for i := range x {
			x[i] = r.Uint64N(1 << uint(p))
			y[i] = r.Uint64N(1 << uint(p))
		}
		xOps := bitPlaneOperands(t, b, x, p, true)
		yOps := bitPlaneOperands(t, b, y, p, true)
		res, err := CompareGT(b, xOps, yOps)
		if err != nil {
			return false
		}
		got, err := he.Reveal(b, res)
		if err != nil {
			return false
		}
		for i := range x {
			want := uint64(0)
			if x[i] > y[i] {
				want = 1
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCompareDepthLogarithmic: the circuit depth must grow like log p,
// not linearly (the property that makes the comparison step scalable —
// paper Table 1a).
func TestCompareDepthLogarithmic(t *testing.T) {
	b := heclear.New(16, 65537)
	depthFor := func(p int) int {
		x := make([]uint64, 8)
		y := make([]uint64, 8)
		for i := range x {
			x[i] = uint64(i) % (1 << uint(p))
			y[i] = uint64(7-i) % (1 << uint(p))
		}
		res, err := CompareGT(b, bitPlaneOperands(t, b, x, p, true), bitPlaneOperands(t, b, y, p, true))
		if err != nil {
			t.Fatal(err)
		}
		return res.Ct.Depth()
	}
	d8 := depthFor(8)
	d16 := depthFor(16)
	if d8 > 6 {
		t.Errorf("depth at p=8 is %d, want ≤ 6 (≈ log2 p + 2)", d8)
	}
	if d16-d8 > 1 {
		t.Errorf("doubling precision added %d depth (8→16: %d→%d); want ≤ 1", d16-d8, d8, d16)
	}
}

// TestCompareMulCountSuperlinear: ciphertext multiplications should grow
// like p log p (Figure 10c's superlinear comparison cost).
func TestCompareMulCountSuperlinear(t *testing.T) {
	b := heclear.New(16, 65537)
	mulsFor := func(p int) int64 {
		x := make([]uint64, 8)
		y := make([]uint64, 8)
		xo := bitPlaneOperands(t, b, x, p, true)
		yo := bitPlaneOperands(t, b, y, p, true)
		b.ResetCounts()
		if _, err := CompareGT(b, xo, yo); err != nil {
			t.Fatal(err)
		}
		return b.Counts().Mul
	}
	m4, m8, m16 := mulsFor(4), mulsFor(8), mulsFor(16)
	if !(m4 < m8 && m8 < m16) {
		t.Fatalf("multiplication counts not increasing: %d, %d, %d", m4, m8, m16)
	}
	if m16 < 2*m8 {
		t.Errorf("expected superlinear growth: muls(16)=%d < 2·muls(8)=%d", m16, 2*m8)
	}
}

// TestCompareGTPlaintextSideIsCheap: with plaintext thresholds (the M=S
// scenario), per-bit terms are affine and only prefix products multiply.
func TestCompareGTPlaintextSideIsCheap(t *testing.T) {
	b := heclear.New(16, 65537)
	const p = 8
	x := []uint64{200, 3, 77, 255}
	y := []uint64{100, 30, 77, 0}
	xOps := bitPlaneOperands(t, b, x, p, false) // plaintext thresholds
	yOps := bitPlaneOperands(t, b, y, p, true)
	b.ResetCounts()
	if _, err := CompareGT(b, xOps, yOps); err != nil {
		t.Fatal(err)
	}
	cipherBoth := b.Counts()
	// All-cipher version for comparison.
	xc := bitPlaneOperands(t, b, x, p, true)
	b.ResetCounts()
	if _, err := CompareGT(b, xc, yOps); err != nil {
		t.Fatal(err)
	}
	allCipher := b.Counts()
	if cipherBoth.Mul >= allCipher.Mul {
		t.Errorf("plaintext side did not reduce ct-ct muls: %d vs %d", cipherBoth.Mul, allCipher.Mul)
	}
}

func TestCompareGTErrors(t *testing.T) {
	b := heclear.New(8, 65537)
	if _, err := CompareGT(b, nil, nil); err == nil {
		t.Error("empty bit planes accepted")
	}
	x := bitPlaneOperands(t, b, []uint64{1}, 2, true)
	y := bitPlaneOperands(t, b, []uint64{1}, 3, true)
	if _, err := CompareGT(b, x, y); err == nil {
		t.Error("mismatched precisions accepted")
	}
}

// TestCompareGTOnBGV runs the comparison on real ciphertexts and checks
// it against the clear backend (integration test).
func TestCompareGTOnBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV integration test")
	}
	const p = 4
	backend, err := hebgv.New(hebgv.Config{Params: bgv.TestParams(8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(5, 5))
	n := 32
	x := make([]uint64, n)
	y := make([]uint64, n)
	for i := range x {
		x[i] = r.Uint64N(1 << p)
		y[i] = r.Uint64N(1 << p)
	}
	res, err := CompareGT(backend,
		bitPlaneOperands(t, backend, x, p, true),
		bitPlaneOperands(t, backend, y, p, true))
	if err != nil {
		t.Fatal(err)
	}
	got, err := he.Reveal(backend, res)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want := uint64(0)
		if x[i] > y[i] {
			want = 1
		}
		if got[i] != want {
			t.Fatalf("slot %d: %d>%d got %d want %d", i, x[i], y[i], got[i], want)
		}
	}
}
