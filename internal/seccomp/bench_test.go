package seccomp

import (
	"fmt"
	"testing"

	"copse/internal/bits"
	"copse/internal/he"
	"copse/internal/he/heclear"
)

// BenchmarkCompareGT shows the comparison step's cost scaling with
// precision (superlinear, Figure 10c) and its independence from the
// packed width (the heart of COPSE's Step 1).
func BenchmarkCompareGT(b *testing.B) {
	backend := heclear.New(1024, 65537)
	for _, p := range []int{4, 8, 16} {
		x := make([]uint64, 1024)
		y := make([]uint64, 1024)
		for i := range x {
			x[i] = uint64(i) % (1 << uint(p))
			y[i] = uint64(1023-i) % (1 << uint(p))
		}
		xo := planes(b, backend, x, p)
		yo := planes(b, backend, y, p)
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CompareGT(backend, xo, yo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func planes(b *testing.B, backend he.Backend, vals []uint64, p int) []he.Operand {
	b.Helper()
	pl, err := bits.Transpose(vals, p)
	if err != nil {
		b.Fatal(err)
	}
	ops := make([]he.Operand, p)
	for i := range pl {
		ct, err := backend.Encrypt(pl[i])
		if err != nil {
			b.Fatal(err)
		}
		ops[i] = he.Cipher(ct)
	}
	return ops
}
