// Package seccomp implements the packed secure comparison primitive
// (Aloufi et al.'s SecComp, paper §4.1.2): given two vectors of p-bit
// values in bit-transposed form, it computes the slot-wise boolean
// [x > y] as a single vectorized circuit — the paper's Step 1, whose
// cost is independent of the number of decision nodes.
//
// The circuit over MSB-first bit planes is
//
//	gt = Σ_i  x_i · (1 − y_i) · Π_{j<i} eq_j,    eq_j = ¬(x_j ⊕ y_j)
//
// with the prefix products computed by a Sklansky parallel-prefix tree,
// so the multiplicative depth is O(log p) and the multiplication count
// O(p log p), matching the shape of the paper's Table 1a.
package seccomp

import (
	"fmt"

	"copse/internal/he"
)

// CompareGT returns the slot-wise [x > y] for values presented as
// MSB-first bit planes. Either side may be plaintext; when one side is
// plaintext, the per-bit equality and greater-than terms cost no
// ciphertext multiplications (they are affine), and only the prefix
// products consume depth.
func CompareGT(b he.Backend, xBits, yBits []he.Operand) (he.Operand, error) {
	return CompareGTScheduled(b, xBits, yBits, nil)
}

// CompareGTScheduled is CompareGT under a per-round level schedule for
// the Sklansky prefix tree: after round r every prefix operand is
// dropped to roundLevels[r] (no-op on backends without a modulus
// chain, and for operands already at or below the target). The compare
// stage is the single most expensive stage of the COPSE pipeline and
// its early rounds otherwise run 1–2 limbs above what their remaining
// circuit needs; the compiler derives the targets alongside the stage
// schedule (core's Meta.LevelPlan, StageLevels.CompareRounds). A nil or
// short slice leaves the uncovered rounds reactive.
func CompareGTScheduled(b he.Backend, xBits, yBits []he.Operand, roundLevels []int) (he.Operand, error) {
	p := len(xBits)
	if p == 0 || p != len(yBits) {
		return he.Operand{}, fmt.Errorf("seccomp: mismatched bit-plane counts %d vs %d", p, len(yBits))
	}

	// eq_j = ¬(x_j ⊕ y_j); gt_j = x_j · (1 − y_j).
	eqs := make([]he.Operand, p)
	gts := make([]he.Operand, p)
	for j := 0; j < p; j++ {
		x, err := he.Xor(b, xBits[j], yBits[j])
		if err != nil {
			return he.Operand{}, err
		}
		eqs[j], err = he.Not(b, x)
		if err != nil {
			return he.Operand{}, err
		}
		notY, err := he.Not(b, yBits[j])
		if err != nil {
			return he.Operand{}, err
		}
		gts[j], err = he.Mul(b, xBits[j], notY)
		if err != nil {
			return he.Operand{}, err
		}
	}

	// pre_j = Π_{k<j} eq_k (exclusive prefix products, log depth).
	inclusive, err := prefixProducts(b, eqs, roundLevels)
	if err != nil {
		return he.Operand{}, err
	}
	ones := make([]uint64, b.Slots())
	for i := range ones {
		ones[i] = 1
	}
	onesOp, err := he.NewPlain(b, ones)
	if err != nil {
		return he.Operand{}, err
	}

	// gt = Σ_j gt_j · pre_j. At most one term per slot is 1 (the first
	// differing bit), so the plain sum stays in {0,1}.
	var acc he.Operand
	for j := 0; j < p; j++ {
		pre := onesOp
		if j > 0 {
			pre = inclusive[j-1]
		}
		term, err := he.Mul(b, gts[j], pre)
		if err != nil {
			return he.Operand{}, err
		}
		if j == 0 {
			acc = term
			continue
		}
		acc, err = he.Add(b, acc, term)
		if err != nil {
			return he.Operand{}, err
		}
	}
	return acc, nil
}

// prefixProducts returns the inclusive prefix products out[i] = Π_{j≤i}
// ops[j] using the Sklansky construction: ceil(log2 n) multiplicative
// depth and at most (n/2)·log2 n multiplications. roundLevels, when
// non-nil, schedules a level drop of every element after each round:
// sound because an element at round r has absorbed at most r
// multiplications (no more level or noise than the schedule's carrier),
// and dropping only ever lowers a level the next round's multiply would
// have aligned away reactively — but on 1–2 extra limbs.
func prefixProducts(b he.Backend, ops []he.Operand, roundLevels []int) ([]he.Operand, error) {
	n := len(ops)
	out := make([]he.Operand, n)
	copy(out, ops)
	round := 0
	for span := 1; span < n; span <<= 1 {
		// Sklansky: blocks of 2·span; every element in the upper half of
		// a block multiplies by the top of the lower half.
		for blockStart := 0; blockStart < n; blockStart += 2 * span {
			pivot := blockStart + span - 1
			if pivot >= n {
				break
			}
			for i := pivot + 1; i <= pivot+span && i < n; i++ {
				prod, err := he.Mul(b, out[i], out[pivot])
				if err != nil {
					return nil, err
				}
				out[i] = prod
			}
		}
		if round < len(roundLevels) {
			for i := range out {
				dropped, err := he.DropToLevel(b, out[i], roundLevels[round])
				if err != nil {
					return nil, err
				}
				out[i] = dropped
			}
		}
		round++
	}
	return out, nil
}
