package hist

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundsMonotonic(t *testing.T) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds[%d]=%d not above bounds[%d]=%d", i, bounds[i], i-1, bounds[i-1])
		}
	}
	if got := bucketFor(0); got != 0 {
		t.Errorf("bucketFor(0) = %d", got)
	}
	if got := bucketFor(bounds[0]); got != 1 {
		t.Errorf("bucketFor(base) = %d, want 1", got)
	}
	if got := bucketFor(1 << 62); got != NumBuckets-1 {
		t.Errorf("bucketFor(huge) = %d, want last bucket", got)
	}
	// Every bound maps strictly into the bucket it opens.
	for i, b := range bounds {
		if got := bucketFor(b - 1); got != i {
			t.Errorf("bucketFor(bounds[%d]-1) = %d, want %d", i, got, i)
		}
		if got := bucketFor(b); got != i+1 {
			t.Errorf("bucketFor(bounds[%d]) = %d, want %d", i, got, i+1)
		}
	}
}

// TestQuantileAgainstExact checks interpolated quantiles stay within
// one bucket's relative error (×1.5 spacing → ≤50%) of the exact ones.
func TestQuantileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	h := New()
	samples := make([]int64, 5000)
	for i := range samples {
		// Log-uniform over ~1µs..1s.
		ns := int64(1000 * (1 << rng.IntN(20)))
		ns += rng.Int64N(ns)
		samples[i] = ns
		h.Observe(time.Duration(ns))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := h.Snapshot()
	if snap.Count != int64(len(samples)) {
		t.Fatalf("count %d, want %d", snap.Count, len(samples))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := snap.Quantile(q).Nanoseconds()
		if got < exact/2 || got > exact*2 {
			t.Errorf("q=%v: got %d, exact %d (outside one-bucket error)", q, got, exact)
		}
	}
	if p50, p99 := snap.Quantile(0.5), snap.Quantile(0.99); p99 < p50 {
		t.Errorf("p99 %v below p50 %v", p99, p50)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Snapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	h := New()
	h.Observe(10 * time.Microsecond)
	snap := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := snap.Quantile(q)
		if got <= 0 || got > 30*time.Microsecond {
			t.Errorf("single-sample quantile(%v) = %v", q, got)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count %d, want %d", snap.Count, workers*per)
	}
	var sum int64
	for _, c := range snap.Buckets {
		sum += c
	}
	if sum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", sum, snap.Count)
	}
}
