// Package hist provides a fixed-bucket, log-spaced latency histogram
// safe for concurrent observation: the serving layer's per-model
// latency distributions (p50/p95/p99 in Service.Stats and /v1/stats)
// and the gateway's fan-out/merge accounting both record into it.
//
// The bucket layout is fixed — not adaptive — so snapshots taken at
// different times (or on different nodes) are directly comparable and
// mergeable by bucket-wise addition.
package hist

import (
	"sync/atomic"
	"time"
)

// NumBuckets log-spaced buckets at ×1.5 spacing cover 1µs to ~25min;
// observations outside the range clamp into the end buckets.
const NumBuckets = 54

// baseNS is the upper bound of bucket 0 in nanoseconds (1µs); bucket i
// covers [baseNS·1.5^(i-1), baseNS·1.5^i).
const baseNS = 1000

// bounds[i] is the exclusive upper bound of bucket i; the last bucket
// is unbounded.
var bounds = func() [NumBuckets - 1]int64 {
	var b [NumBuckets - 1]int64
	f := float64(baseNS)
	for i := range b {
		b[i] = int64(f)
		f *= 1.5
	}
	return b
}()

// Histogram is a concurrency-safe fixed-bucket latency histogram.
// The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	total  atomic.Int64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketFor locates the bucket of a duration in nanoseconds.
func bucketFor(ns int64) int {
	lo, hi := 0, NumBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ns < bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketFor(ns)].Add(1)
	h.total.Add(1)
}

// Snapshot is a point-in-time copy of the histogram.
type Snapshot struct {
	Count   int64
	Buckets [NumBuckets]int64
}

// Snapshot copies the counters. Concurrent Observe calls may land in
// either side of the snapshot; the copy is never torn below the level
// of a single bucket.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.total.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the recorded
// distribution, linearly interpolated within the bucket the rank lands
// in. An empty snapshot reports 0.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := int64(2 * lo)
			if i < len(bounds) {
				hi = bounds[i]
			}
			frac := (rank - seen) / float64(c)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		seen += float64(c)
	}
	// Rank beyond the last non-empty bucket (rounding): report the top
	// bound of the highest occupied bucket.
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			if i < len(bounds) {
				return time.Duration(bounds[i])
			}
			return time.Duration(2 * bounds[len(bounds)-1])
		}
	}
	return 0
}
