package model

import (
	"strings"
	"testing"
)

func TestFigure1Statistics(t *testing.T) {
	f := Figure1()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := f.Branches(); got != 5 {
		t.Errorf("b = %d, want 5", got)
	}
	if got := f.Leaves(); got != 6 {
		t.Errorf("leaves = %d, want 6", got)
	}
	k := f.Multiplicities()
	if k[0] != 2 || k[1] != 3 {
		t.Errorf("multiplicities = %v, want [2 3]", k)
	}
	if got := f.MaxMultiplicity(); got != 3 {
		t.Errorf("K = %d, want 3", got)
	}
	if got := f.QuantizedBranching(); got != 6 {
		t.Errorf("q = %d, want 6", got)
	}
	if got := f.Depth(); got != 3 {
		t.Errorf("d = %d, want 3", got)
	}
}

// TestFigure1Classification reproduces the paper's walkthrough:
// (x, y) = (0, 5) classifies as L4.
func TestFigure1Classification(t *testing.T) {
	f := Figure1()
	votes := f.Classify([]uint64{0, 5})
	if len(votes) != 1 || votes[0] != 4 {
		t.Errorf("Classify(0,5) = %v, want [4]", votes)
	}
	cases := map[[2]uint64]int{
		{0, 0}: 0, // y≤3 false, x≤2 false, y≤1 false -> L0
		{0, 2}: 1, // y=2>1 -> L1
		{6, 0}: 2, // x=6>2, x>5 false? x=6>5 -> L3
		{3, 2}: 2, // x=3>2, x≤5 -> L2
		{0, 9}: 5, // y>3, y>7 -> L5
		{0, 5}: 4,
	}
	// fix case {6,0}: x=6 > 5 so it is L3.
	cases[[2]uint64{6, 0}] = 3
	for in, want := range cases {
		got := f.Classify(in[:])
		if got[0] != want {
			t.Errorf("Classify(%v) = L%d, want L%d", in, got[0], want)
		}
	}
}

func TestNodeLevels(t *testing.T) {
	f := Figure1()
	root := f.Trees[0].Root // d0
	if got := root.Level(); got != 3 {
		t.Errorf("level(d0) = %d, want 3", got)
	}
	if got := root.Left.Level(); got != 2 { // d1
		t.Errorf("level(d1) = %d, want 2", got)
	}
	if got := root.Right.Level(); got != 1 { // d4
		t.Errorf("level(d4) = %d, want 1", got)
	}
	if got := root.Left.Left.Level(); got != 1 { // d2
		t.Errorf("level(d2) = %d, want 1", got)
	}
	if got := root.Right.Left.Level(); got != 0 { // L4
		t.Errorf("level(L4) = %d, want 0", got)
	}
}

func TestWalkPreorder(t *testing.T) {
	f := Figure1()
	var branches []uint64
	var leaves []int
	f.Walk(func(_ int, n *Node) {
		if n.Leaf {
			leaves = append(leaves, n.Label)
		} else {
			branches = append(branches, n.Threshold)
		}
	})
	wantThresholds := []uint64{3, 2, 1, 5, 7} // d0 d1 d2 d3 d4
	if len(branches) != len(wantThresholds) {
		t.Fatalf("branch count %d, want %d", len(branches), len(wantThresholds))
	}
	for i := range wantThresholds {
		if branches[i] != wantThresholds[i] {
			t.Errorf("branch %d threshold %d, want %d", i, branches[i], wantThresholds[i])
		}
	}
	wantLeaves := []int{0, 1, 2, 3, 4, 5}
	for i := range wantLeaves {
		if leaves[i] != wantLeaves[i] {
			t.Errorf("leaf %d = L%d, want L%d", i, leaves[i], wantLeaves[i])
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f := Figure1()
	text, err := FormatString(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("ParseString: %v\ninput:\n%s", err, text)
	}
	text2, err := FormatString(back)
	if err != nil {
		t.Fatal(err)
	}
	if text != text2 {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", text, text2)
	}
	// Same classifications.
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			a := f.Classify([]uint64{x, y})
			b := back.Classify([]uint64{x, y})
			if a[0] != b[0] {
				t.Fatalf("(%d,%d): %d vs %d", x, y, a[0], b[0])
			}
		}
	}
}

func TestParseGolden(t *testing.T) {
	const text = `
# a two-tree forest
labels approve deny
features 3
precision 8

tree (0 130 (1 77 0 1) 1)
tree (2 40 0 (0 99 1 0))
`
	f, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 2 || f.NumFeatures != 3 || f.Precision != 8 {
		t.Errorf("parsed header wrong: %+v", f)
	}
	if f.Labels[0] != "approve" || f.Labels[1] != "deny" {
		t.Errorf("labels = %v", f.Labels)
	}
	if got := f.Classify([]uint64{131, 0, 0}); got[0] != 1 {
		t.Errorf("tree 0 with f0=131 -> %d, want 1", got[0])
	}
	if got := f.Classify([]uint64{0, 0, 0}); got[0] != 0 {
		t.Errorf("tree 0 with f0=0 -> %d, want 0", got[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus directive",
		"labels a b\nfeatures x\nprecision 8\ntree 0",
		"labels a b\nfeatures 1\nprecision 8\ntree (0 5 0",      // truncated
		"labels a b\nfeatures 1\nprecision 8\ntree (0 5 0 1) 7", // trailing
		"labels a b\nfeatures 1\nprecision 8\ntree (9 5 0 1)",   // bad feature
		"labels a b\nfeatures 1\nprecision 8\ntree (0 999 0 1)", // threshold > 2^8
		"labels a b\nfeatures 1\nprecision 8\ntree (0 5 0 9)",   // bad label
		"labels a b\nfeatures 1\nprecision 8",                   // no trees
		"labels a b\nfeatures 1\nprecision 99\ntree (0 5 0 1)",  // bad precision
	}
	for i, text := range bad {
		if _, err := ParseString(text); err == nil {
			t.Errorf("case %d: bad input accepted:\n%s", i, text)
		}
	}
}

func TestPlurality(t *testing.T) {
	if got := Plurality([]int{0, 1, 1, 2}, 3); got != 1 {
		t.Errorf("Plurality = %d, want 1", got)
	}
	if got := Plurality([]int{2, 0, 2, 0}, 3); got != 0 {
		t.Errorf("tie should break low: got %d", got)
	}
	if got := Plurality(nil, 3); got != 0 {
		t.Errorf("empty votes: got %d", got)
	}
}

func TestValidateCatchesBrokenTrees(t *testing.T) {
	f := Figure1()
	f.Trees[0].Root.Left.Right = nil
	if err := f.Validate(); err == nil {
		t.Error("missing child accepted")
	}
	if err := (&Forest{Labels: []string{"a"}, NumFeatures: 1, Precision: 8}).Validate(); err == nil {
		t.Error("empty forest accepted")
	}
}

func TestFormatRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	if err := Format(&sb, &Forest{}); err == nil {
		t.Error("Format accepted an invalid forest")
	}
}
