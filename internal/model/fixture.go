package model

// Figure1 reconstructs the running example of the paper's Figure 1: a
// single tree over features x (index 0) and y (index 1) with labels
// L0..L5 and branches d0..d4 in preorder,
//
//	        d0: y>3
//	       /       \
//	   d1: x>2    d4: y>7
//	   /     \     /    \
//	 d2:y>1 d3:x>5 L4    L5
//	 /  \   /  \
//	L0  L1 L2  L3
//
// so that κ_x = 2 (d1, d3), κ_y = 3 (d0, d2, d4), K = 3, b = 5, q = 6,
// and the input (x, y) = (0, 5) classifies as L4, exactly as the paper
// walks through in §3.
func Figure1() *Forest {
	leaf := func(l int) *Node { return &Node{Leaf: true, Label: l} }
	d2 := &Node{Feature: 1, Threshold: 1, Left: leaf(0), Right: leaf(1)}
	d3 := &Node{Feature: 0, Threshold: 5, Left: leaf(2), Right: leaf(3)}
	d1 := &Node{Feature: 0, Threshold: 2, Left: d2, Right: d3}
	d4 := &Node{Feature: 1, Threshold: 7, Left: leaf(4), Right: leaf(5)}
	d0 := &Node{Feature: 1, Threshold: 3, Left: d1, Right: d4}
	return &Forest{
		Labels:      []string{"L0", "L1", "L2", "L3", "L4", "L5"},
		NumFeatures: 2,
		Precision:   4,
		Trees:       []*Tree{{Root: d0}},
	}
}
