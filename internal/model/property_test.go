package model

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomForest builds an arbitrary valid forest directly (independent of
// the synth generator, to avoid testing the serializer against only one
// shape distribution).
func randomForest(r *rand.Rand) *Forest {
	numFeatures := 1 + r.IntN(5)
	numLabels := 1 + r.IntN(6)
	precision := 1 + r.IntN(16)
	f := &Forest{NumFeatures: numFeatures, Precision: precision}
	for i := 0; i < numLabels; i++ {
		f.Labels = append(f.Labels, "L"+string(rune('a'+i)))
	}
	var grow func(depth int) *Node
	grow = func(depth int) *Node {
		if depth >= 6 || r.IntN(3) == 0 {
			return &Node{Leaf: true, Label: r.IntN(numLabels)}
		}
		return &Node{
			Feature:   r.IntN(numFeatures),
			Threshold: r.Uint64N(1 << uint(precision)),
			Left:      grow(depth + 1),
			Right:     grow(depth + 1),
		}
	}
	for t := 0; t < 1+r.IntN(4); t++ {
		f.Trees = append(f.Trees, &Tree{Root: grow(0)})
	}
	return f
}

// TestSerializationRoundTripProperty: Format∘Parse is the identity on
// arbitrary forests, both structurally and behaviorally.
func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0x5e71a1))
		forest := randomForest(r)
		text, err := FormatString(forest)
		if err != nil {
			return false
		}
		back, err := ParseString(text)
		if err != nil {
			return false
		}
		text2, err := FormatString(back)
		if err != nil || text != text2 {
			return false
		}
		// Behavioral equality on random inputs.
		for trial := 0; trial < 5; trial++ {
			feats := make([]uint64, forest.NumFeatures)
			for i := range feats {
				feats[i] = r.Uint64N(1 << uint(forest.Precision))
			}
			a := forest.Classify(feats)
			b := back.Classify(feats)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStatisticsConsistency: structural invariants relating the §4.1.1
// quantities on arbitrary forests.
func TestStatisticsConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0x57a7))
		forest := randomForest(r)
		b := forest.Branches()
		leaves := forest.Leaves()
		// In a forest of binary trees, leaves = branches + #trees.
		if leaves != b+len(forest.Trees) {
			return false
		}
		// Branching equals the sum of multiplicities.
		sum := 0
		for _, k := range forest.Multiplicities() {
			sum += k
		}
		if sum != b {
			return false
		}
		// Quantized branching dominates branching.
		if forest.QuantizedBranching() < b && b > 0 {
			return false
		}
		// Depth is the max root level.
		d := 0
		for _, tr := range forest.Trees {
			d = max(d, tr.Root.Level())
		}
		return d == forest.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
