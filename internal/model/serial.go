package model

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text serialization format follows the paper's §5 description: a
// header naming the labels, then one line per tree. Branch nodes are
// written "(feature threshold left right)" and leaves are bare label
// indices:
//
//	# comments start with '#'
//	labels approve deny
//	features 3
//	precision 8
//	tree (0 130 (1 77 0 1) 1)
//	tree (2 40 0 (0 99 1 0))

// Format writes f in the text serialization format.
func Format(w io.Writer, f *Forest) error {
	if err := f.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "labels %s\n", strings.Join(f.Labels, " "))
	fmt.Fprintf(bw, "features %d\n", f.NumFeatures)
	fmt.Fprintf(bw, "precision %d\n", f.Precision)
	for _, tr := range f.Trees {
		bw.WriteString("tree ")
		writeNode(bw, tr.Root)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func writeNode(bw *bufio.Writer, n *Node) {
	if n.Leaf {
		fmt.Fprintf(bw, "%d", n.Label)
		return
	}
	fmt.Fprintf(bw, "(%d %d ", n.Feature, n.Threshold)
	writeNode(bw, n.Left)
	bw.WriteByte(' ')
	writeNode(bw, n.Right)
	bw.WriteByte(')')
}

// FormatString renders f to a string.
func FormatString(f *Forest) (string, error) {
	var sb strings.Builder
	if err := Format(&sb, f); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Parse reads a forest in the text serialization format.
func Parse(r io.Reader) (*Forest, error) {
	f := &Forest{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		field, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch field {
		case "labels":
			f.Labels = strings.Fields(rest)
		case "features":
			n, err := strconv.Atoi(rest)
			if err != nil {
				return nil, fmt.Errorf("model: line %d: bad feature count %q", lineNo, rest)
			}
			f.NumFeatures = n
		case "precision":
			n, err := strconv.Atoi(rest)
			if err != nil {
				return nil, fmt.Errorf("model: line %d: bad precision %q", lineNo, rest)
			}
			f.Precision = n
		case "tree":
			root, err := parseTree(rest)
			if err != nil {
				return nil, fmt.Errorf("model: line %d: %w", lineNo, err)
			}
			f.Trees = append(f.Trees, &Tree{Root: root})
		default:
			return nil, fmt.Errorf("model: line %d: unknown directive %q", lineNo, field)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// ParseString parses a forest from a string.
func ParseString(s string) (*Forest, error) {
	return Parse(strings.NewReader(s))
}

func parseTree(s string) (*Node, error) {
	toks := tokenize(s)
	node, rest, err := parseNode(toks)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trailing tokens after tree: %v", rest)
	}
	return node, nil
}

func tokenize(s string) []string {
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	return strings.Fields(s)
}

func parseNode(toks []string) (*Node, []string, error) {
	if len(toks) == 0 {
		return nil, nil, fmt.Errorf("unexpected end of tree")
	}
	if toks[0] != "(" {
		label, err := strconv.Atoi(toks[0])
		if err != nil {
			return nil, nil, fmt.Errorf("bad leaf label %q", toks[0])
		}
		return &Node{Leaf: true, Label: label}, toks[1:], nil
	}
	if len(toks) < 5 {
		return nil, nil, fmt.Errorf("truncated branch node")
	}
	feature, err := strconv.Atoi(toks[1])
	if err != nil {
		return nil, nil, fmt.Errorf("bad feature index %q", toks[1])
	}
	threshold, err := strconv.ParseUint(toks[2], 10, 64)
	if err != nil {
		return nil, nil, fmt.Errorf("bad threshold %q", toks[2])
	}
	left, rest, err := parseNode(toks[3:])
	if err != nil {
		return nil, nil, err
	}
	right, rest, err := parseNode(rest)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) == 0 || rest[0] != ")" {
		return nil, nil, fmt.Errorf("missing ')' after branch node")
	}
	return &Node{Feature: feature, Threshold: threshold, Left: left, Right: right}, rest[1:], nil
}
