// Package model defines decision-forest models: the tree structures, the
// paper's text serialization format, structural statistics (multiplicity,
// branching, levels — §4.1.1), and a plaintext reference evaluator that
// serves as ground truth for every secure-inference test.
package model

import (
	"fmt"
)

// Node is a decision-tree node. A branch node compares
// feature[Feature] > Threshold: false descends Left, true descends
// Right. A leaf node (Leaf=true) yields Label.
type Node struct {
	// Branch fields.
	Feature   int
	Threshold uint64
	Left      *Node
	Right     *Node

	// Leaf fields.
	Leaf  bool
	Label int
}

// Tree is a single decision tree.
type Tree struct {
	Root *Node
}

// Forest is a decision-forest model over a shared feature space. All
// thresholds are fixed-point values with Precision bits (§4.1.2).
type Forest struct {
	Labels      []string
	NumFeatures int
	Precision   int
	Trees       []*Tree
}

// Validate checks structural invariants: label/feature indices in range,
// thresholds within precision, complete branch nodes.
func (f *Forest) Validate() error {
	if len(f.Trees) == 0 {
		return fmt.Errorf("model: forest has no trees")
	}
	if f.NumFeatures < 1 {
		return fmt.Errorf("model: forest has %d features", f.NumFeatures)
	}
	if len(f.Labels) == 0 {
		return fmt.Errorf("model: forest has no labels")
	}
	if f.Precision < 1 || f.Precision > 32 {
		return fmt.Errorf("model: precision %d out of range [1,32]", f.Precision)
	}
	limit := uint64(1) << uint(f.Precision)
	for ti, tree := range f.Trees {
		if tree == nil || tree.Root == nil {
			return fmt.Errorf("model: tree %d is empty", ti)
		}
		var check func(n *Node) error
		check = func(n *Node) error {
			if n.Leaf {
				if n.Label < 0 || n.Label >= len(f.Labels) {
					return fmt.Errorf("model: tree %d: leaf label %d out of range", ti, n.Label)
				}
				return nil
			}
			if n.Feature < 0 || n.Feature >= f.NumFeatures {
				return fmt.Errorf("model: tree %d: feature %d out of range", ti, n.Feature)
			}
			if n.Threshold >= limit {
				return fmt.Errorf("model: tree %d: threshold %d exceeds %d-bit precision", ti, n.Threshold, f.Precision)
			}
			if n.Left == nil || n.Right == nil {
				return fmt.Errorf("model: tree %d: branch node missing a child", ti)
			}
			if err := check(n.Left); err != nil {
				return err
			}
			return check(n.Right)
		}
		if err := check(tree.Root); err != nil {
			return err
		}
	}
	return nil
}

// Level returns the node's level per §4.1.1: the number of branches on
// the longest path from the node to a leaf, including itself; leaves are
// level 0.
func (n *Node) Level() int {
	if n.Leaf {
		return 0
	}
	return 1 + max(n.Left.Level(), n.Right.Level())
}

// Branches returns the total number of branch nodes in the forest (the
// paper's b).
func (f *Forest) Branches() int {
	total := 0
	for _, tr := range f.Trees {
		total += countBranches(tr.Root)
	}
	return total
}

func countBranches(n *Node) int {
	if n.Leaf {
		return 0
	}
	return 1 + countBranches(n.Left) + countBranches(n.Right)
}

// Leaves returns the total number of leaf (label) nodes in the forest.
func (f *Forest) Leaves() int {
	total := 0
	for _, tr := range f.Trees {
		total += countLeaves(tr.Root)
	}
	return total
}

func countLeaves(n *Node) int {
	if n.Leaf {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Depth returns the forest's level count d: the maximum node level over
// all trees.
func (f *Forest) Depth() int {
	d := 0
	for _, tr := range f.Trees {
		d = max(d, tr.Root.Level())
	}
	return d
}

// Multiplicities returns κ_i for each feature: the number of branches
// thresholding on it across the whole forest (§4.1.1).
func (f *Forest) Multiplicities() []int {
	k := make([]int, f.NumFeatures)
	for _, tr := range f.Trees {
		addMultiplicities(tr.Root, k)
	}
	return k
}

func addMultiplicities(n *Node, k []int) {
	if n.Leaf {
		return
	}
	k[n.Feature]++
	addMultiplicities(n.Left, k)
	addMultiplicities(n.Right, k)
}

// MaxMultiplicity returns K, the maximum feature multiplicity — the only
// model statistic explicitly revealed to the data owner (§7.2.1).
func (f *Forest) MaxMultiplicity() int {
	m := 0
	for _, k := range f.Multiplicities() {
		m = max(m, k)
	}
	return m
}

// QuantizedBranching returns q = K · NumFeatures: the branching if every
// feature had maximum multiplicity (§4.1.1).
func (f *Forest) QuantizedBranching() int {
	return f.MaxMultiplicity() * f.NumFeatures
}

// ClassifyTree evaluates one tree on a quantized feature vector,
// returning the chosen label index.
func ClassifyTree(tr *Tree, features []uint64) int {
	n := tr.Root
	for !n.Leaf {
		if features[n.Feature] > n.Threshold {
			n = n.Right
		} else {
			n = n.Left
		}
	}
	return n.Label
}

// Classify evaluates every tree, returning the per-tree label indices —
// the same information COPSE's N-hot result bitvector carries (§4.1.2).
func (f *Forest) Classify(features []uint64) []int {
	out := make([]int, len(f.Trees))
	for i, tr := range f.Trees {
		out[i] = ClassifyTree(tr, features)
	}
	return out
}

// Plurality returns the label index chosen by the most trees (ties break
// toward the lower index), the conventional forest combining function.
func Plurality(votes []int, numLabels int) int {
	counts := make([]int, numLabels)
	for _, v := range votes {
		if v >= 0 && v < numLabels {
			counts[v]++
		}
	}
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

// Walk visits every node of the forest in preorder (paper §4.1.1: branch
// enumeration continues across trees), calling visit with the tree index
// and node.
func (f *Forest) Walk(visit func(tree int, n *Node)) {
	for ti, tr := range f.Trees {
		var rec func(n *Node)
		rec = func(n *Node) {
			visit(ti, n)
			if !n.Leaf {
				rec(n.Left)
				rec(n.Right)
			}
		}
		rec(tr.Root)
	}
}
