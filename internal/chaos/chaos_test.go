package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"copse/internal/he"
	"copse/internal/he/heclear"
)

// TestScheduleDeterministic: the same seed must produce the same fault
// stream, and a disarmed schedule must never inject.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{
		Seed:    42,
		Default: Rates{Latency: 0.3, LatencyMin: time.Millisecond, LatencyMax: 5 * time.Millisecond, Error: 0.2, Panic: 0.1},
	}
	draw := func() []Fault {
		s := NewSchedule(cfg)
		s.Arm(true)
		out := make([]Fault, 64)
		for i := range out {
			out[i] = s.Draw(OpMul)
		}
		return out
	}
	// Fault holds an error pointer, so compare the observable outcome
	// (latency, panic flag, injected-error sequence) rather than the
	// struct directly.
	sameFault := func(x, y Fault) bool {
		if x.Latency != y.Latency || x.Panic != y.Panic || (x.Err == nil) != (y.Err == nil) {
			return false
		}
		var xe, ye *InjectedError
		if errors.As(x.Err, &xe) != errors.As(y.Err, &ye) {
			return false
		}
		return xe == nil || (xe.Op == ye.Op && xe.Seq == ye.Seq)
	}
	a, b := draw(), draw()
	var injected int
	for i := range a {
		if !sameFault(a[i], b[i]) {
			t.Fatalf("draw %d differs between same-seed schedules: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Latency > 0 || a[i].Err != nil || a[i].Panic {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("64 draws at 30%/20%/10% rates injected nothing")
	}

	other := NewSchedule(Config{Seed: 43, Default: cfg.Default})
	other.Arm(true)
	same := true
	for i := range a {
		if !sameFault(other.Draw(OpMul), a[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("seed 43 produced the identical fault stream as seed 42")
	}

	disarmed := NewSchedule(cfg)
	for i := 0; i < 256; i++ {
		if f := disarmed.Draw(OpMul); f != (Fault{}) {
			t.Fatalf("disarmed schedule injected %+v", f)
		}
	}
}

// TestBackendInjection: error and panic draws surface through the
// wrapped backend; with the schedule disarmed the wrapper is
// transparent and capability forwarding works.
func TestBackendInjection(t *testing.T) {
	inner := heclear.New(8, 257)
	sched := NewSchedule(Config{Seed: 7, Default: Rates{Error: 1}})
	b := WrapBackend(inner, sched)

	ct, err := b.Encrypt([]uint64{1, 2, 3})
	if err != nil {
		t.Fatalf("disarmed Encrypt: %v", err)
	}
	if _, err := b.Add(ct, ct); err != nil {
		t.Fatalf("disarmed Add: %v", err)
	}

	sched.Arm(true)
	if _, err := b.Add(ct, ct); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Add at Error=1: got %v, want ErrInjected", err)
	}
	var inj *InjectedError
	if _, err := b.Mul(ct, ct); !errors.As(err, &inj) || inj.Op != OpMul {
		t.Fatalf("armed Mul: got %v, want *InjectedError{Op: mul}", err)
	}
	sched.Arm(false)

	// Capability forwarding: heclear has no level structure, so the
	// wrapper's LevelDropper must pass through.
	var ld he.LevelDropper = b
	out, err := ld.DropToLevel(ct, 0)
	if err != nil || out != ct {
		t.Fatalf("DropToLevel pass-through: ct=%v err=%v", out, err)
	}

	panicSched := NewSchedule(Config{Seed: 7, Default: Rates{Panic: 1}})
	panicSched.Arm(true)
	pb := WrapBackend(inner, panicSched)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Panic=1 draw did not panic")
			}
		}()
		pb.Rotate(ct, 1)
	}()
}

// TestRoundTripperFaults drives each transport fault class at rate 1
// against a live test server.
func TestRoundTripperFaults(t *testing.T) {
	const payload = "0123456789abcdef0123456789abcdef"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	get := func(rates Rates) (*http.Response, error) {
		sched := NewSchedule(Config{Seed: 11, Default: rates})
		sched.Arm(true)
		client := &http.Client{Transport: &RoundTripper{Sched: sched}}
		return client.Get(srv.URL)
	}

	if _, err := get(Rates{Reset: 1}); err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("Reset=1: got %v, want connection reset", err)
	}

	resp, err := get(Rates{ServerError: 1})
	if err != nil {
		t.Fatalf("ServerError=1: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ServerError=1: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = get(Rates{Truncate: 1})
	if err != nil {
		t.Fatalf("Truncate=1: %v", err)
	}
	short, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(short) != len(payload)/2 {
		t.Fatalf("Truncate=1: body length %d, want %d", len(short), len(payload)/2)
	}

	resp, err = get(Rates{Garble: 1})
	if err != nil {
		t.Fatalf("Garble=1: %v", err)
	}
	garbled, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(garbled) == payload {
		t.Fatal("Garble=1: body unchanged")
	}
	if len(garbled) != len(payload) {
		t.Fatalf("Garble=1: body length changed %d -> %d", len(payload), len(garbled))
	}
}
