package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// RoundTripper injects data-plane faults between a cluster gateway and
// its workers: latency before the request leaves, connection resets
// (before or — for response-phase draws — after the worker has done the
// work), synthesized 503 bursts, and garbled or truncated response
// bodies that exercise the CPSW frame decoder's malformed-input
// handling. The zero fault passes the request through untouched.
type RoundTripper struct {
	// Inner performs real round trips; http.DefaultTransport when nil.
	Inner http.RoundTripper
	// Sched supplies the OpNet fault stream.
	Sched *Schedule
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := rt.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	f := rt.Sched.Draw(OpNet)
	if f.Latency > 0 {
		select {
		case <-time.After(f.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch {
	case f.Err != nil:
		return nil, f.Err
	case f.Reset:
		// Model the peer dropping the connection mid-exchange; wrap both
		// ErrInjected (for test assertions) and ECONNRESET (so generic
		// transport-error classification treats it like the real thing).
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: fmt.Errorf("%w: %w", ErrInjected, syscall.ECONNRESET)}
	case f.ServerError:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(strings.NewReader("chaos: injected server error")),
			Request:    req,
		}, nil
	}
	resp, err := inner.RoundTrip(req)
	if err != nil || (!f.Garble && !f.Truncate) {
		return resp, err
	}
	// Corrupt the response body in memory so the client sees a complete
	// HTTP exchange carrying a damaged CPSW payload.
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if f.Truncate {
		body = body[:len(body)/2]
	} else if len(body) > 0 {
		// Deterministic corruption: flip bits at fixed strides so the
		// same draw always damages the same bytes of a same-size body.
		for i := 0; i < len(body); i += 251 {
			body[i] ^= 0x5a
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Encoding")
	resp.Header.Set("Content-Length", fmt.Sprint(len(body)))
	return resp, nil
}

// Listener wraps a net.Listener so accepted connections can be reset by
// the schedule: a Reset draw closes the connection immediately after
// accept, which the peer observes as a mid-handshake connection reset.
// Other fault classes do not apply at the listener.
type Listener struct {
	net.Listener
	Sched *Schedule
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		f := l.Sched.Draw(OpNet)
		if f.Latency > 0 {
			time.Sleep(f.Latency)
		}
		if f.Reset {
			conn.Close()
			continue
		}
		return conn, nil
	}
}
