// Package chaos is a deterministic fault-injection harness for the
// serving stack (DESIGN.md §15). It wraps the two surfaces where
// production failures enter the system — the homomorphic backend
// (he.Backend) and the cluster data plane (http.RoundTripper /
// net.Listener) — and injects latency spikes, errors, panics,
// connection resets, garbled/truncated CPSW frames, and 5xx bursts
// according to a seeded schedule, so every chaos test is reproducible
// from its seed.
//
// Determinism model: each individual fault draw is a pure function of
// (schedule seed, op class, draw sequence number), so a single-threaded
// test replays exactly and a concurrent soak keeps a seed-determined
// aggregate fault mix even though goroutine interleaving varies which
// call observes which draw.
package chaos

import (
	"errors"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Op classifies the call sites a Schedule can target with distinct
// fault rates. Backend wrappers draw with the homomorphic op classes;
// the transport wrappers draw with OpNet.
type Op string

const (
	// OpEncrypt covers Encrypt/EncryptAtLevel.
	OpEncrypt Op = "encrypt"
	// OpDecrypt covers Decrypt.
	OpDecrypt Op = "decrypt"
	// OpEncode covers EncodePlain/EncodePlainAtLevel.
	OpEncode Op = "encode"
	// OpAdd covers Add/Sub/Neg/AddPlain.
	OpAdd Op = "add"
	// OpMul covers Mul/MulLazy/MulPlain/Relinearize.
	OpMul Op = "mul"
	// OpRotate covers Rotate/RotateHoisted.
	OpRotate Op = "rotate"
	// OpNet covers data-plane HTTP round trips and accepted connections.
	OpNet Op = "net"
)

// ErrInjected is the sentinel wrapped by every error the harness
// injects; tests distinguish injected faults from organic failures with
// errors.Is(err, chaos.ErrInjected).
var ErrInjected = errors.New("chaos: injected fault")

// Rates is the per-op-class fault mix. Every probability is in [0, 1]
// and drawn independently per call; at most one fault fires per call,
// with precedence Panic > Error > Reset > ServerError > Garble >
// Truncate (latency composes with any of them).
type Rates struct {
	// Latency is the probability of an injected delay, uniform in
	// [LatencyMin, LatencyMax].
	Latency    float64
	LatencyMin time.Duration
	LatencyMax time.Duration
	// Error is the probability of a returned error wrapping ErrInjected.
	Error float64
	// Panic is the probability of an injected panic (backend ops only).
	Panic float64

	// The remaining rates apply only to OpNet draws.

	// Reset is the probability of a simulated connection reset.
	Reset float64
	// ServerError is the probability of a synthesized 503 response.
	ServerError float64
	// Garble is the probability of deterministic byte corruption in the
	// response body.
	Garble float64
	// Truncate is the probability of the response body being cut short.
	Truncate float64
}

// zero reports whether no fault can ever fire under r.
func (r Rates) zero() bool {
	return r.Latency == 0 && r.Error == 0 && r.Panic == 0 &&
		r.Reset == 0 && r.ServerError == 0 && r.Garble == 0 && r.Truncate == 0
}

// Config seeds a Schedule. Default applies to every op class without a
// PerOp override.
type Config struct {
	Seed    uint64
	Default Rates
	PerOp   map[Op]Rates
}

// Fault is the outcome of one draw: the injections the call site must
// apply before (or instead of) doing its real work.
type Fault struct {
	// Latency is an injected delay (0 = none). It composes with the
	// other fields: a call can be both slowed and failed.
	Latency time.Duration
	// Panic instructs the call site to panic (backend ops only).
	Panic bool
	// Err is a non-nil injected error wrapping ErrInjected.
	Err error
	// Reset, ServerError, Garble, Truncate are transport faults; the
	// RoundTripper maps them to a connection-reset error, a synthesized
	// 503, corrupted body bytes, and a short body respectively.
	Reset       bool
	ServerError bool
	Garble      bool
	Truncate    bool
}

// Schedule is a seeded, armable fault source shared by all chaos
// wrappers of one test. It starts disarmed so staging/warm-up traffic
// runs clean; Arm(true) starts injecting.
type Schedule struct {
	cfg   Config
	armed atomic.Bool
	seq   atomic.Uint64
	drawn atomic.Int64
}

// NewSchedule builds a disarmed schedule from cfg.
func NewSchedule(cfg Config) *Schedule {
	return &Schedule{cfg: cfg}
}

// Arm toggles injection. While disarmed every Draw returns a zero
// Fault without consuming sequence numbers, so the armed portion of a
// run is reproducible regardless of how much clean traffic preceded it.
func (s *Schedule) Arm(on bool) { s.armed.Store(on) }

// Armed reports whether the schedule is injecting.
func (s *Schedule) Armed() bool { return s.armed.Load() }

// Injected reports how many non-zero faults the schedule has produced.
func (s *Schedule) Injected() int64 { return s.drawn.Load() }

// hashOp folds an op class into the seed (FNV-1a, stable across
// processes) so each class has an independent deterministic stream.
func hashOp(op Op) uint64 {
	var v uint64 = 14695981039346656037
	for i := 0; i < len(op); i++ {
		v ^= uint64(op[i])
		v *= 1099511628211
	}
	return v
}

// rates resolves the mix for op.
func (s *Schedule) rates(op Op) Rates {
	if r, ok := s.cfg.PerOp[op]; ok {
		return r
	}
	return s.cfg.Default
}

// Draw produces the fault (possibly none) for the next call of class
// op. Each draw is a pure function of (Config.Seed, op, sequence
// number), so a run replays from its seed.
func (s *Schedule) Draw(op Op) Fault {
	if !s.armed.Load() {
		return Fault{}
	}
	r := s.rates(op)
	if r.zero() {
		return Fault{}
	}
	n := s.seq.Add(1)
	rng := rand.New(rand.NewPCG(s.cfg.Seed^hashOp(op), n))
	var f Fault
	if r.Latency > 0 && rng.Float64() < r.Latency {
		lo, hi := r.LatencyMin, r.LatencyMax
		if hi < lo {
			hi = lo
		}
		f.Latency = lo
		if span := hi - lo; span > 0 {
			f.Latency += time.Duration(rng.Int64N(int64(span) + 1))
		}
	}
	// One terminal fault per call, by precedence.
	switch p := rng.Float64(); {
	case r.Panic > 0 && p < r.Panic:
		f.Panic = true
	case r.Error > 0 && p < r.Panic+r.Error:
		f.Err = &InjectedError{Op: op, Seq: n}
	case op != OpNet:
		// Transport faults do not apply to backend ops.
	case r.Reset > 0 && p < r.Panic+r.Error+r.Reset:
		f.Reset = true
	case r.ServerError > 0 && p < r.Panic+r.Error+r.Reset+r.ServerError:
		f.ServerError = true
	case r.Garble > 0 && p < r.Panic+r.Error+r.Reset+r.ServerError+r.Garble:
		f.Garble = true
	case r.Truncate > 0 && p < r.Panic+r.Error+r.Reset+r.ServerError+r.Garble+r.Truncate:
		f.Truncate = true
	}
	if f.Latency > 0 || f.Panic || f.Err != nil || f.Reset || f.ServerError || f.Garble || f.Truncate {
		s.drawn.Add(1)
	}
	return f
}

// InjectedError is the concrete error the harness returns for Error
// draws; it wraps ErrInjected and records which draw produced it.
type InjectedError struct {
	Op  Op
	Seq uint64
}

func (e *InjectedError) Error() string {
	return "chaos: injected " + string(e.Op) + " fault"
}

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (e *InjectedError) Unwrap() error { return ErrInjected }
