package chaos

import (
	"fmt"
	"time"

	"copse/internal/he"
)

// Backend wraps an he.Backend with fault injection: every operation
// first draws from the schedule and applies the resulting latency,
// panic, or error before (or instead of) delegating. Capability
// interfaces (LevelDropper, LevelEncrypter, StageLimbHinter,
// NoiseMeter) are forwarded so a wrapped leveled backend keeps its
// scheduled-level fast paths; Counts/ResetCounts delegate to the inner
// backend so op accounting stays truthful.
type Backend struct {
	inner   he.Backend
	sched   *Schedule
	leveler he.LevelDropper // inner's level capability, nil when absent
}

var _ he.Backend = (*Backend)(nil)

// WrapBackend wraps b so its operations draw faults from sched.
func WrapBackend(b he.Backend, sched *Schedule) *Backend {
	c := &Backend{inner: b, sched: sched}
	c.leveler, _ = b.(he.LevelDropper)
	return c
}

// Inner returns the wrapped backend.
func (c *Backend) Inner() he.Backend { return c.inner }

// inject applies the drawn fault for op: sleeps injected latency,
// panics on a Panic draw, and returns a non-nil error on an Error draw.
func (c *Backend) inject(op Op) error {
	f := c.sched.Draw(op)
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Panic {
		panic("chaos: injected panic in " + string(op))
	}
	return f.Err
}

// Name implements he.Backend.
func (c *Backend) Name() string { return c.inner.Name() }

// Slots implements he.Backend.
func (c *Backend) Slots() int { return c.inner.Slots() }

// PlainModulus implements he.Backend.
func (c *Backend) PlainModulus() uint64 { return c.inner.PlainModulus() }

// Encrypt implements he.Backend.
func (c *Backend) Encrypt(vals []uint64) (he.Ciphertext, error) {
	if err := c.inject(OpEncrypt); err != nil {
		return nil, err
	}
	return c.inner.Encrypt(vals)
}

// Decrypt implements he.Backend.
func (c *Backend) Decrypt(ct he.Ciphertext) ([]uint64, error) {
	if err := c.inject(OpDecrypt); err != nil {
		return nil, err
	}
	return c.inner.Decrypt(ct)
}

// EncodePlain implements he.Backend.
func (c *Backend) EncodePlain(vals []uint64) (he.Plain, error) {
	if err := c.inject(OpEncode); err != nil {
		return nil, err
	}
	return c.inner.EncodePlain(vals)
}

// Add implements he.Backend.
func (c *Backend) Add(a, b he.Ciphertext) (he.Ciphertext, error) {
	if err := c.inject(OpAdd); err != nil {
		return nil, err
	}
	return c.inner.Add(a, b)
}

// Sub implements he.Backend.
func (c *Backend) Sub(a, b he.Ciphertext) (he.Ciphertext, error) {
	if err := c.inject(OpAdd); err != nil {
		return nil, err
	}
	return c.inner.Sub(a, b)
}

// Neg implements he.Backend.
func (c *Backend) Neg(a he.Ciphertext) (he.Ciphertext, error) {
	if err := c.inject(OpAdd); err != nil {
		return nil, err
	}
	return c.inner.Neg(a)
}

// AddPlain implements he.Backend.
func (c *Backend) AddPlain(a he.Ciphertext, p he.Plain) (he.Ciphertext, error) {
	if err := c.inject(OpAdd); err != nil {
		return nil, err
	}
	return c.inner.AddPlain(a, p)
}

// MulPlain implements he.Backend.
func (c *Backend) MulPlain(a he.Ciphertext, p he.Plain) (he.Ciphertext, error) {
	if err := c.inject(OpMul); err != nil {
		return nil, err
	}
	return c.inner.MulPlain(a, p)
}

// Mul implements he.Backend.
func (c *Backend) Mul(a, b he.Ciphertext) (he.Ciphertext, error) {
	if err := c.inject(OpMul); err != nil {
		return nil, err
	}
	return c.inner.Mul(a, b)
}

// MulLazy implements he.Backend.
func (c *Backend) MulLazy(a, b he.Ciphertext) (he.Ciphertext, error) {
	if err := c.inject(OpMul); err != nil {
		return nil, err
	}
	return c.inner.MulLazy(a, b)
}

// Relinearize implements he.Backend.
func (c *Backend) Relinearize(a he.Ciphertext) (he.Ciphertext, error) {
	if err := c.inject(OpMul); err != nil {
		return nil, err
	}
	return c.inner.Relinearize(a)
}

// Rotate implements he.Backend.
func (c *Backend) Rotate(a he.Ciphertext, k int) (he.Ciphertext, error) {
	if err := c.inject(OpRotate); err != nil {
		return nil, err
	}
	return c.inner.Rotate(a, k)
}

// RotateHoisted implements he.Backend.
func (c *Backend) RotateHoisted(a he.Ciphertext, steps []int) ([]he.Ciphertext, error) {
	if err := c.inject(OpRotate); err != nil {
		return nil, err
	}
	return c.inner.RotateHoisted(a, steps)
}

// Counts implements he.Backend via the inner backend.
func (c *Backend) Counts() he.OpCounts { return c.inner.Counts() }

// ResetCounts implements he.Backend via the inner backend.
func (c *Backend) ResetCounts() { c.inner.ResetCounts() }

// DropToLevel implements he.LevelDropper via the inner backend
// (pass-through when the inner backend has no level structure). Drops
// are bookkeeping, not serving ops, so no fault is drawn.
func (c *Backend) DropToLevel(ct he.Ciphertext, level int) (he.Ciphertext, error) {
	if c.leveler == nil {
		return ct, nil
	}
	return c.leveler.DropToLevel(ct, level)
}

// CiphertextLevel implements he.LevelDropper via the inner backend.
func (c *Backend) CiphertextLevel(ct he.Ciphertext) (int, error) {
	if c.leveler == nil {
		return 0, nil
	}
	return c.leveler.CiphertextLevel(ct)
}

// MaxLevel implements he.LevelDropper via the inner backend.
func (c *Backend) MaxLevel() int {
	if c.leveler == nil {
		return 0
	}
	return c.leveler.MaxLevel()
}

// EncryptAtLevel implements he.LevelEncrypter via the inner backend,
// falling back to Encrypt when the capability is absent.
func (c *Backend) EncryptAtLevel(vals []uint64, level int) (he.Ciphertext, error) {
	if err := c.inject(OpEncrypt); err != nil {
		return nil, err
	}
	return he.EncryptAtLevel(c.inner, vals, level)
}

// EncodePlainAtLevel implements he.LevelEncrypter via the inner backend
// (plain EncodePlain when the capability is absent).
func (c *Backend) EncodePlainAtLevel(vals []uint64, level int) (he.Plain, error) {
	if err := c.inject(OpEncode); err != nil {
		return nil, err
	}
	if le, ok := c.inner.(he.LevelEncrypter); ok && level >= 0 {
		return le.EncodePlainAtLevel(vals, level)
	}
	return c.inner.EncodePlain(vals)
}

// HintStageLimbs implements he.StageLimbHinter by forwarding to the
// inner backend (a no-op when the capability is absent).
func (c *Backend) HintStageLimbs(limbs int) { he.HintStageLimbs(c.inner, limbs) }

// NoiseBudget implements he.NoiseMeter via the inner backend.
func (c *Backend) NoiseBudget(ct he.Ciphertext) (int, error) {
	if nm, ok := c.inner.(he.NoiseMeter); ok {
		return nm.NoiseBudget(ct)
	}
	return 0, fmt.Errorf("chaos: backend %q cannot measure noise", c.inner.Name())
}

// Close forwards to the inner backend when it holds releasable
// resources.
func (c *Backend) Close() error {
	if cl, ok := c.inner.(interface{ Close() error }); ok {
		return cl.Close()
	}
	return nil
}
