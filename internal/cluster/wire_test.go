package cluster

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"copse/internal/bgv"
	"copse/internal/core"
	"copse/internal/he/hebgv"
	"copse/internal/model"
)

// -update regenerates the golden wire files from the current encoder.
var update = flag.Bool("update", false, "rewrite golden wire-format files")

// tinyParams is a deliberately minimal parameter set (N=16) so the
// committed golden key material stays a few kilobytes.
func tinyParams() bgv.Params {
	return bgv.Params{LogN: 4, T: 65537, PrimeBits: 40, Levels: 3, DigitBits: 30}
}

// tinyBackend builds a deterministic backend on the tiny parameters.
func tinyBackend(t *testing.T) *hebgv.Backend {
	t.Helper()
	b, err := hebgv.New(hebgv.Config{
		Params:             tinyParams(),
		RotationSteps:      []int{3, -2},
		RotationStepLevels: map[int]int{3: 1},
		Seed:               42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

// checkGolden compares got against the committed golden file (or
// rewrites it under -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoding differs from golden file (%d vs %d bytes); if the format change is intentional, bump WireVersion and regenerate with -update", name, len(got), len(want))
	}
}

// TestWireGoldenParams pins the parameter frame format.
func TestWireGoldenParams(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeParams(&buf, tinyParams()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "params.wire", buf.Bytes())

	got, err := DecodeParams(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != tinyParams() {
		t.Errorf("params round trip: got %+v, want %+v", got, tinyParams())
	}

	// Golden decode: the committed bytes must still decode and
	// re-encode byte-identically.
	golden, err := os.ReadFile(goldenPath("params.wire"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeParams(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("decoding golden params: %v", err)
	}
	var re bytes.Buffer
	if err := EncodeParams(&re, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), golden) {
		t.Error("golden params do not re-encode byte-identically")
	}
}

// TestWireGoldenKeyMaterial pins the key-material frame format and the
// full round trip: decoded material must carry identical polynomials
// and correctly rebuilt Shoup tables.
func TestWireGoldenKeyMaterial(t *testing.T) {
	b := tinyBackend(t)
	defer b.Close()
	mat := b.Material()

	var buf bytes.Buffer
	if err := EncodeKeyMaterial(&buf, mat); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "keys.wire", buf.Bytes())

	got, err := DecodeKeyMaterial(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Params != mat.Params {
		t.Errorf("params: got %+v, want %+v", got.Params, mat.Params)
	}
	if !reflect.DeepEqual(got.Public, mat.Public) {
		t.Error("public key lost in round trip")
	}
	if !reflect.DeepEqual(got.Secret, mat.Secret) {
		t.Error("secret key lost in round trip")
	}
	if got.Keys == nil || got.Keys.Relin == nil {
		t.Fatal("relin key lost in round trip")
	}
	if !reflect.DeepEqual(got.Keys.Relin.B, mat.Keys.Relin.B) || !reflect.DeepEqual(got.Keys.Relin.A, mat.Keys.Relin.A) {
		t.Error("relin key polys lost in round trip")
	}
	// Shoup companions are rebuilt, not shipped — they must still match.
	if !reflect.DeepEqual(got.Keys.Relin.BS, mat.Keys.Relin.BS) || !reflect.DeepEqual(got.Keys.Relin.AS, mat.Keys.Relin.AS) {
		t.Error("rebuilt Shoup tables differ from originals")
	}
	if len(got.Keys.Galois) != len(mat.Keys.Galois) {
		t.Fatalf("Galois key count %d, want %d", len(got.Keys.Galois), len(mat.Keys.Galois))
	}
	for elt, k := range mat.Keys.Galois {
		gk, ok := got.Keys.Galois[elt]
		if !ok {
			t.Errorf("Galois elt %d lost", elt)
			continue
		}
		if !reflect.DeepEqual(gk.B, k.B) || !reflect.DeepEqual(gk.BS, k.BS) {
			t.Errorf("Galois key %d differs after round trip", elt)
		}
	}

	// Public scope: no secret key on the wire, decode still works, and
	// the fingerprint matches the full material's.
	var pub bytes.Buffer
	if err := EncodeKeyMaterial(&pub, b.PublicMaterial()); err != nil {
		t.Fatal(err)
	}
	gotPub, err := DecodeKeyMaterial(bytes.NewReader(pub.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotPub.Secret != nil {
		t.Error("public material leaked a secret key")
	}
	fpFull, err := KeyFingerprint(mat)
	if err != nil {
		t.Fatal(err)
	}
	fpPub, err := KeyFingerprint(gotPub)
	if err != nil {
		t.Fatal(err)
	}
	if fpFull != fpPub || len(fpFull) != 64 {
		t.Errorf("fingerprint mismatch: full %s, public %s", fpFull, fpPub)
	}

	// The decoded material must be usable: encrypt with a from-material
	// backend, decrypt with the original.
	fromMat, err := hebgv.NewFromMaterial(hebgv.Config{Seed: 7}, got)
	if err != nil {
		t.Fatal(err)
	}
	defer fromMat.Close()
	vals := []uint64{1, 2, 3, 4, 5, 6, 7, 0}
	ct, err := fromMat.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fromMat.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if dec[i] != v {
			t.Fatalf("from-material decrypt slot %d = %d, want %d", i, dec[i], v)
		}
	}
}

// TestWireGoldenCiphertexts pins the ciphertext-batch frame format and
// cross-backend transport.
func TestWireGoldenCiphertexts(t *testing.T) {
	b := tinyBackend(t)
	defer b.Close()
	vals := []uint64{5, 0, 1, 3, 2, 7, 6, 4}
	ct, err := b.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	raw, depth, err := b.ExportCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCiphertexts(&buf, []WireCiphertext{{Ct: raw, Depth: depth}}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cts.wire", buf.Bytes())

	got, err := DecodeCiphertexts(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Depth != depth {
		t.Fatalf("decoded %d cts (depth %d), want 1 (depth %d)", len(got), got[0].Depth, depth)
	}
	// Transport into a second backend built from the same wire
	// material: the ciphertext must decrypt there.
	var keyBuf bytes.Buffer
	if err := EncodeKeyMaterial(&keyBuf, b.Material()); err != nil {
		t.Fatal(err)
	}
	mat, err := DecodeKeyMaterial(bytes.NewReader(keyBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	other, err := hebgv.NewFromMaterial(hebgv.Config{}, mat)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	dec, err := other.Decrypt(other.ImportCiphertext(got[0].Ct, got[0].Depth))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if dec[i] != v {
			t.Fatalf("transported ciphertext slot %d = %d, want %d", i, dec[i], v)
		}
	}
}

// TestWireGoldenMeta pins the Meta frame (gob payload) round trip.
func TestWireGoldenMeta(t *testing.T) {
	c, err := core.Compile(model.Figure1(), core.Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeMeta(&buf, &c.Meta); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "meta.wire", buf.Bytes())

	got, err := DecodeMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, &c.Meta) {
		t.Errorf("meta round trip:\n got %+v\nwant %+v", got, &c.Meta)
	}
	if got.LevelPlan == nil {
		t.Error("level plan lost on the wire")
	}
}

// TestWireVersionError pins the typed future-version error: a frame
// stamped with a newer wire version must fail with *WireVersionError on
// every decoder, not decode into garbage.
func TestWireVersionError(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeParams(&buf, tinyParams()); err != nil {
		t.Fatal(err)
	}
	future := bytes.Clone(buf.Bytes())
	binary.LittleEndian.PutUint16(future[4:6], WireVersion+1)

	decoders := map[string]func([]byte) error{
		"params": func(b []byte) error { _, err := DecodeParams(bytes.NewReader(b)); return err },
		"keys":   func(b []byte) error { _, err := DecodeKeyMaterial(bytes.NewReader(b)); return err },
		"cts":    func(b []byte) error { _, err := DecodeCiphertexts(bytes.NewReader(b)); return err },
		"meta":   func(b []byte) error { _, err := DecodeMeta(bytes.NewReader(b)); return err },
	}
	for name, dec := range decoders {
		err := dec(future)
		var ve *WireVersionError
		if !errors.As(err, &ve) {
			t.Errorf("%s: future version error = %v, want *WireVersionError", name, err)
			continue
		}
		if ve.Got != WireVersion+1 || ve.Supported != WireVersion {
			t.Errorf("%s: version error %+v", name, ve)
		}
	}
}

// TestWireFrameErrors pins the non-version failure modes: bad magic,
// wrong kind, truncation, and trailing garbage.
func TestWireFrameErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeParams(&buf, tinyParams()); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	bad := bytes.Clone(frame)
	copy(bad[:4], "NOPE")
	if _, err := DecodeParams(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeCiphertexts(bytes.NewReader(frame)); err == nil {
		t.Error("params frame accepted as ciphertexts")
	}
	if _, err := DecodeParams(bytes.NewReader(frame[:len(frame)-2])); err == nil {
		t.Error("truncated frame accepted")
	}
	long := bytes.Clone(frame)
	binary.LittleEndian.PutUint32(long[8:12], uint32(len(frame))) // claims more payload than present
	if _, err := DecodeParams(bytes.NewReader(long)); err == nil {
		t.Error("overlong length prefix accepted")
	}
}

// TestWireSizeLimits pins the typed size and truncation errors, the
// configurable frame budget, and the decompressed-size bound on key
// material.
func TestWireSizeLimits(t *testing.T) {
	defer SetMaxFrameBytes(0)
	var buf bytes.Buffer
	if err := EncodeParams(&buf, tinyParams()); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	// Declared payload over the configured limit fails typed, before
	// any allocation proportional to the claim.
	SetMaxFrameBytes(8)
	var fse *FrameSizeError
	if _, err := DecodeParams(bytes.NewReader(frame)); !errors.As(err, &fse) {
		t.Errorf("over-limit frame error = %v, want *FrameSizeError", err)
	} else if fse.Limit != 8 {
		t.Errorf("FrameSizeError limit = %d, want 8", fse.Limit)
	}
	SetMaxFrameBytes(0)
	if MaxFrameBytes() != DefaultMaxFrameBytes {
		t.Errorf("SetMaxFrameBytes(0) left limit %d, want default %d", MaxFrameBytes(), DefaultMaxFrameBytes)
	}

	// A stream shorter than its header's promise fails typed too.
	var tfe *TruncatedFrameError
	if _, err := DecodeParams(bytes.NewReader(frame[:len(frame)-2])); !errors.As(err, &tfe) {
		t.Errorf("truncated stream error = %v, want *TruncatedFrameError", err)
	} else if tfe.Got >= tfe.Want {
		t.Errorf("TruncatedFrameError got %d >= want %d", tfe.Got, tfe.Want)
	}

	// An implausible level count fails at the wire layer, before the
	// decoder pays prime generation proportional to the lie.
	deep := tinyParams()
	deep.Levels = maxWireLevels + 1
	var db bytes.Buffer
	if err := EncodeParams(&db, deep); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeParams(bytes.NewReader(db.Bytes())); err == nil {
		t.Error("implausible level count accepted")
	}

	// Decompression bomb: a small gzipped key-material frame expanding
	// past the budget must fail with *FrameSizeError, not balloon.
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	var bomb bytes.Buffer
	if err := writeFrame(&bomb, KindKeyMaterial, zbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	SetMaxFrameBytes(1 << 12)
	if _, err := DecodeKeyMaterial(bytes.NewReader(bomb.Bytes())); !errors.As(err, &fse) {
		t.Errorf("decompression bomb error = %v, want *FrameSizeError", err)
	}
}
