// Package cluster implements sharded multi-node serving (DESIGN.md
// §12): worker nodes own (model shard, key set) pairs and expose the
// classification pass over a versioned wire protocol; a stateless
// gateway routes queries by model name and key fingerprint, fans each
// batch to the shard-holding workers, and merges the encrypted
// per-shard vote sums with plain ciphertext additions.
//
// The control plane is HTTP/JSON (health, shard inventory, stats); the
// data plane moves ciphertexts as length-prefixed binary frames
// (wire.go). Workers hold the secret key; the gateway holds only
// public material and never sees a plaintext result.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"copse"
	"copse/internal/bgv"
	"copse/internal/core"
	"copse/internal/he"
	"copse/internal/he/hebgv"
)

// ParamsForSlots maps a packing width to the BGV preset providing it,
// sized to the given chain length — the lookup a worker performs when
// deriving its key set from a shard manifest.
func ParamsForSlots(slots, levels int) (bgv.Params, error) {
	switch slots {
	case 1024:
		return bgv.TestParams(levels), nil
	case 2048:
		return bgv.DemoParams(levels), nil
	case 16384:
		return bgv.Secure128Params(levels), nil
	}
	return bgv.Params{}, fmt.Errorf("cluster: no BGV preset with %d slots (want 1024, 2048 or 16384)", slots)
}

// WorkerConfig configures a worker node.
type WorkerConfig struct {
	// Seed derives the key set deterministically from the shard
	// manifest's key contract. Every worker of one cluster must use the
	// same seed (or the same Material) so all nodes hold identical
	// keys; a query encrypted against one worker's public key then
	// decrypts on any of them.
	Seed uint64
	// Material, when non-nil, supplies the key set directly (decoded
	// from a key-material wire frame) instead of deriving it from
	// Seed. It must carry the secret key and evaluation keys.
	Material *hebgv.Material
	// Workers is the intra-query stage parallelism (copse.WithWorkers).
	Workers int
	// IntraOpWorkers is the ring-layer limb parallelism.
	IntraOpWorkers int
	// MaxInFlight caps concurrent classification passes (0 =
	// unlimited).
	MaxInFlight int
	// ShedQueue bounds how many passes may queue for an in-flight slot
	// before the worker sheds load with a typed 429 + Retry-After
	// (copse.WithShedQueue); 0 queues without bound.
	ShedQueue int
}

// Worker is one cluster node: a copse.Service staging shard artifacts
// onto a manifest-derived backend, plus the HTTP control/data planes.
type Worker struct {
	cfg WorkerConfig

	mu          sync.RWMutex
	backend     *hebgv.Backend
	svc         *copse.Service
	fingerprint string
	forests     map[string]*workerForest
}

// workerForest is one forest family the worker holds shards of.
type workerForest struct {
	manifest *core.ShardManifest
	shards   map[int]string // shard index → service registry name
}

// NewWorker returns an empty worker; AddShard stages models onto it.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg, forests: map[string]*workerForest{}}
}

// AddShard stages one shard of a forest under a model name. The first
// shard fixes the worker's backend: built from cfg.Material when set,
// otherwise derived from the manifest's key contract (chain length,
// rotation-step union, step levels) and cfg.Seed — identical across
// every worker sharing the seed, because key generation is
// deterministic in the contract. Later shards (of this or other
// forests) share the backend; their rotation steps must be covered by
// the first manifest's union or fall back to composed power-of-two
// hops.
func (w *Worker) AddShard(name string, manifest *core.ShardManifest, shard *core.Compiled) error {
	if name == "" {
		return fmt.Errorf("cluster: empty model name")
	}
	if manifest == nil || shard == nil {
		return fmt.Errorf("cluster: AddShard needs a manifest and a shard artifact")
	}
	if shard.Shard == nil {
		return fmt.Errorf("cluster: model %q artifact is not a shard (compile with ShardForest)", name)
	}
	info := *shard.Shard
	if info.Count != manifest.Shards || info.Index < 0 || info.Index >= manifest.Shards {
		return fmt.Errorf("cluster: model %q shard %d/%d does not match manifest with %d shards",
			name, info.Index, info.Count, manifest.Shards)
	}
	if shard.Meta.Slots != manifest.Meta.Slots {
		return fmt.Errorf("cluster: model %q shard staged for %d slots, manifest says %d",
			name, shard.Meta.Slots, manifest.Meta.Slots)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.backend == nil {
		if err := w.initLocked(manifest); err != nil {
			return err
		}
	}
	wf := w.forests[name]
	if wf == nil {
		wf = &workerForest{manifest: manifest, shards: map[int]string{}}
		w.forests[name] = wf
	} else if wf.manifest.Shards != manifest.Shards {
		return fmt.Errorf("cluster: model %q already staged with %d shards, manifest says %d",
			name, wf.manifest.Shards, manifest.Shards)
	}
	if _, dup := wf.shards[info.Index]; dup {
		return fmt.Errorf("cluster: model %q shard %d already staged", name, info.Index)
	}
	reg := fmt.Sprintf("%s/%d", name, info.Index)
	if err := w.svc.Register(reg, shard); err != nil {
		return err
	}
	wf.shards[info.Index] = reg
	return nil
}

// initLocked builds the backend and service from the first manifest.
func (w *Worker) initLocked(manifest *core.ShardManifest) error {
	var backend *hebgv.Backend
	var err error
	if m := w.cfg.Material; m != nil {
		if m.Secret == nil || m.Keys == nil {
			return fmt.Errorf("cluster: worker key material needs the secret key and evaluation keys")
		}
		backend, err = hebgv.NewFromMaterial(hebgv.Config{
			Seed:           w.cfg.Seed,
			IntraOpWorkers: w.cfg.IntraOpWorkers,
		}, m)
	} else {
		if w.cfg.Seed == 0 {
			return fmt.Errorf("cluster: worker needs a non-zero shared seed (or explicit key material) so every node derives the same key set")
		}
		var params bgv.Params
		params, err = ParamsForSlots(manifest.Meta.Slots, manifest.ChainLevels)
		if err != nil {
			return err
		}
		params.IntraOpWorkers = w.cfg.IntraOpWorkers
		backend, err = hebgv.New(hebgv.Config{
			Params:             params,
			RotationSteps:      manifest.RotationSteps,
			RotationStepLevels: manifest.RotationStepLevels,
			Seed:               w.cfg.Seed,
		})
	}
	if err != nil {
		return err
	}
	fp, err := KeyFingerprint(backend.Material())
	if err != nil {
		backend.Close()
		return err
	}
	w.backend = backend
	w.fingerprint = fp
	// Shard artifacts carry plaintext model operands (the server-model
	// configuration): the privacy boundary of the cluster is the query
	// and result ciphertexts, and plaintext models keep the per-shard
	// depth at CtDepthPlainModel — matching manifest.ChainLevels.
	w.svc = copse.NewService(
		copse.WithExternalBackend(backend),
		copse.WithScenario(copse.ScenarioServerModel),
		copse.WithWorkers(w.cfg.Workers),
		copse.WithMaxInFlight(w.cfg.MaxInFlight),
		copse.WithShedQueue(w.cfg.ShedQueue),
	)
	return nil
}

// Fingerprint returns the worker's key-set fingerprint (empty before
// the first AddShard).
func (w *Worker) Fingerprint() string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.fingerprint
}

// Material returns the worker's full key material (secret key
// included) for distribution to sibling workers, or nil before the
// first AddShard. Handle with the same care as the secret key itself.
func (w *Worker) Material() *hebgv.Material {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.backend == nil {
		return nil
	}
	return w.backend.Material()
}

// Service exposes the underlying serving layer (stats, diagnostics).
func (w *Worker) Service() *copse.Service {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.svc
}

// Close releases the backend and service.
func (w *Worker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.svc != nil {
		return w.svc.Close() // closes the external backend too
	}
	return nil
}

// WorkerInfo is the control-plane inventory of one worker.
type WorkerInfo struct {
	Fingerprint string        `json:"fingerprint"`
	Slots       int           `json:"slots"`
	Models      []WorkerShard `json:"models"`
}

// WorkerShard describes one staged shard.
type WorkerShard struct {
	Name          string         `json:"name"`
	Shard         core.ShardInfo `json:"shard"`
	Shards        int            `json:"shards"`
	NumFeatures   int            `json:"numFeatures"`
	Precision     int            `json:"precision"`
	BatchCapacity int            `json:"batchCapacity"`
}

// DecodedResult is one decrypted classification, as the worker decode
// endpoint reports it to the gateway. LeafBits is the raw N-hot leaf
// bitvector — the gateway's bit-exactness checks compare it against
// single-node serving.
type DecodedResult struct {
	Label     int      `json:"label"`
	LabelName string   `json:"labelName,omitempty"`
	Votes     []int    `json:"votes"`
	PerTree   []int    `json:"perTree"`
	LeafBits  []uint64 `json:"leafBits"`
}

// maxDataPlaneBytes bounds a data-plane request body; a query batch is
// Precision ciphertexts, far below this.
const maxDataPlaneBytes = 256 << 20

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("GET /v1/cluster/info", w.handleInfo)
	mux.HandleFunc("GET /v1/cluster/keys", w.handleKeys)
	mux.HandleFunc("GET /v1/cluster/meta", w.handleMeta)
	mux.HandleFunc("POST /v1/cluster/classify", w.handleClassify)
	mux.HandleFunc("POST /v1/cluster/decode", w.handleDecode)
	mux.HandleFunc("GET /v1/stats", w.handleStats)
	return mux
}

func (w *Worker) handleInfo(rw http.ResponseWriter, _ *http.Request) {
	w.mu.RLock()
	info := WorkerInfo{Fingerprint: w.fingerprint}
	if w.backend != nil {
		info.Slots = w.backend.Slots()
	}
	for name, wf := range w.forests {
		gm := &wf.manifest.Meta
		for idx := range wf.shards {
			info.Models = append(info.Models, WorkerShard{
				Name:          name,
				Shard:         wf.manifest.Ranges[idx],
				Shards:        wf.manifest.Shards,
				NumFeatures:   gm.NumFeatures,
				Precision:     gm.Precision,
				BatchCapacity: gm.BatchCapacity(),
			})
		}
	}
	w.mu.RUnlock()
	sort.Slice(info.Models, func(i, j int) bool {
		if info.Models[i].Name != info.Models[j].Name {
			return info.Models[i].Name < info.Models[j].Name
		}
		return info.Models[i].Shard.Index < info.Models[j].Shard.Index
	})
	writeJSON(rw, info)
}

func (w *Worker) handleKeys(rw http.ResponseWriter, _ *http.Request) {
	w.mu.RLock()
	backend := w.backend
	w.mu.RUnlock()
	if backend == nil {
		httpError(rw, http.StatusServiceUnavailable, fmt.Errorf("cluster: no key set yet"))
		return
	}
	// Buffer the frame: once streaming to rw starts, an encode error
	// could no longer become a clean HTTP error.
	var buf bytes.Buffer
	if err := EncodeKeyMaterial(&buf, backend.PublicMaterial()); err != nil {
		httpError(rw, http.StatusInternalServerError, err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	_, _ = rw.Write(buf.Bytes())
}

func (w *Worker) handleMeta(rw http.ResponseWriter, r *http.Request) {
	wf, err := w.forest(r.URL.Query().Get("model"))
	if err != nil {
		httpError(rw, http.StatusNotFound, err)
		return
	}
	var buf bytes.Buffer
	if err := EncodeMeta(&buf, &wf.manifest.Meta); err != nil {
		httpError(rw, http.StatusInternalServerError, err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	_, _ = rw.Write(buf.Bytes())
}

func (w *Worker) forest(name string) (*workerForest, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	wf := w.forests[name]
	if wf == nil {
		return nil, fmt.Errorf("cluster: model %q not staged on this worker", name)
	}
	return wf, nil
}

// handleClassify is the data plane: Precision query bit-plane
// ciphertexts in, one shard-result ciphertext out.
func (w *Worker) handleClassify(rw http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	name := qv.Get("model")
	shardIdx, err := strconv.Atoi(qv.Get("shard"))
	if err != nil {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("cluster: bad shard index: %w", err))
		return
	}
	batch, err := strconv.Atoi(qv.Get("batch"))
	if err != nil || batch < 1 {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("cluster: bad batch count %q", qv.Get("batch")))
		return
	}
	wf, err := w.forest(name)
	if err != nil {
		httpError(rw, http.StatusNotFound, err)
		return
	}
	reg, ok := wf.shards[shardIdx]
	if !ok {
		httpError(rw, http.StatusNotFound, fmt.Errorf("cluster: shard %d of model %q not on this worker", shardIdx, name))
		return
	}
	gm := &wf.manifest.Meta
	if cap := gm.BatchCapacity(); batch > cap {
		httpError(rw, http.StatusBadRequest, &core.BatchCapacityError{Index: batch, Capacity: cap})
		return
	}
	cts, err := DecodeCiphertexts(http.MaxBytesReader(rw, r.Body, maxDataPlaneBytes))
	if err != nil {
		httpError(rw, http.StatusBadRequest, err)
		return
	}
	if len(cts) != gm.Precision {
		httpError(rw, http.StatusBadRequest,
			fmt.Errorf("cluster: query has %d bit planes, model %q wants %d", len(cts), name, gm.Precision))
		return
	}
	w.mu.RLock()
	backend, svc := w.backend, w.svc
	w.mu.RUnlock()
	bits := make([]he.Operand, len(cts))
	for i, wc := range cts {
		bits[i] = he.Cipher(backend.ImportCiphertext(wc.Ct, wc.Depth))
	}
	q := &copse.Query{
		Bits:        bits,
		Batch:       batch,
		NumFeatures: gm.NumFeatures,
		K:           gm.K,
		QPad:        gm.QPad,
		Block:       gm.BatchBlock(),
	}
	enc, _, err := svc.Classify(r.Context(), reg, q)
	if err != nil {
		classifyError(rw, err)
		return
	}
	op, _, err := enc.Operand()
	if err == nil && !op.IsCipher() {
		err = fmt.Errorf("cluster: shard result is not a ciphertext")
	}
	if err != nil {
		httpError(rw, http.StatusInternalServerError, err)
		return
	}
	raw, depth, err := backend.ExportCiphertext(op.Ct)
	if err != nil {
		httpError(rw, http.StatusInternalServerError, err)
		return
	}
	var buf bytes.Buffer
	if err := EncodeCiphertexts(&buf, []WireCiphertext{{Ct: raw, Depth: depth}}); err != nil {
		httpError(rw, http.StatusInternalServerError, err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	_, _ = rw.Write(buf.Bytes())
}

// handleDecode decrypts a merged result ciphertext and decodes it
// against the forest's global meta — the only place cluster results
// become plaintext, on a node holding the secret key.
func (w *Worker) handleDecode(rw http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	wf, err := w.forest(qv.Get("model"))
	if err != nil {
		httpError(rw, http.StatusNotFound, err)
		return
	}
	count, err := strconv.Atoi(qv.Get("count"))
	if err != nil || count < 1 {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("cluster: bad result count %q", qv.Get("count")))
		return
	}
	cts, err := DecodeCiphertexts(http.MaxBytesReader(rw, r.Body, maxDataPlaneBytes))
	if err != nil {
		httpError(rw, http.StatusBadRequest, err)
		return
	}
	if len(cts) != 1 {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("cluster: decode wants 1 merged ciphertext, got %d", len(cts)))
		return
	}
	w.mu.RLock()
	backend := w.backend
	w.mu.RUnlock()
	slots, err := backend.Decrypt(backend.ImportCiphertext(cts[0].Ct, cts[0].Depth))
	if err != nil {
		httpError(rw, http.StatusInternalServerError, err)
		return
	}
	gm := &wf.manifest.Meta
	results, err := core.DecodeResultBatch(gm, slots, count)
	if err != nil {
		httpError(rw, http.StatusInternalServerError, err)
		return
	}
	out := make([]DecodedResult, len(results))
	for i, res := range results {
		out[i] = DecodedResult{
			Label:    res.Plurality(),
			Votes:    res.Votes,
			PerTree:  res.PerTree,
			LeafBits: res.LeafBits,
		}
		if out[i].Label < len(gm.LabelNames) {
			out[i].LabelName = gm.LabelNames[out[i].Label]
		}
	}
	writeJSON(rw, out)
}

func (w *Worker) handleStats(rw http.ResponseWriter, _ *http.Request) {
	w.mu.RLock()
	svc := w.svc
	w.mu.RUnlock()
	if svc == nil {
		writeJSON(rw, struct{}{})
		return
	}
	writeJSON(rw, statsJSON(svc.Stats()))
}

// modelLatencyJSON is one model's latency summary in milliseconds.
type modelLatencyJSON struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50MS"`
	P95MS float64 `json:"p95MS"`
	P99MS float64 `json:"p99MS"`
}

// serviceStatsJSON mirrors copse.ServiceStats with durations in
// milliseconds.
type serviceStatsJSON struct {
	Requests        int64                       `json:"requests"`
	Queries         int64                       `json:"queries"`
	Failures        int64                       `json:"failures"`
	InFlight        int64                       `json:"inFlight"`
	Shed            int64                       `json:"shed"`
	DeadlineRejects int64                       `json:"deadlineRejects"`
	PanicsRecovered int64                       `json:"panicsRecovered"`
	MeanLatencyMS   float64                     `json:"meanLatencyMS"`
	ModelLatency    map[string]modelLatencyJSON `json:"modelLatency,omitempty"`
}

func statsJSON(st copse.ServiceStats) serviceStatsJSON {
	out := serviceStatsJSON{
		Requests:        st.Requests,
		Queries:         st.Queries,
		Failures:        st.Failures,
		InFlight:        st.InFlight,
		Shed:            st.Shed,
		DeadlineRejects: st.DeadlineRejects,
		PanicsRecovered: st.PanicsRecovered,
		MeanLatencyMS:   ms(st.MeanLatency()),
	}
	if len(st.ModelLatency) > 0 {
		out.ModelLatency = make(map[string]modelLatencyJSON, len(st.ModelLatency))
		for name, l := range st.ModelLatency {
			out.ModelLatency[name] = modelLatencyJSON{
				Count: l.Count,
				P50MS: ms(l.P50),
				P95MS: ms(l.P95),
				P99MS: ms(l.P99),
			}
		}
	}
	return out
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(v)
}

func httpError(rw http.ResponseWriter, status int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()})
}

// classifyError maps the serving error taxonomy (DESIGN.md §15) onto
// HTTP: overload is a typed 429 with a Retry-After hint — distinct
// from 503 model-unavailable — deadline exhaustion is 504, and
// recovered panics surface as 500.
func classifyError(rw http.ResponseWriter, err error) {
	var overload *copse.OverloadError
	var deadline *copse.DeadlineError
	switch {
	case errors.As(err, &overload):
		retryAfter := max(int64(overload.RetryAfter/time.Second), 1)
		rw.Header().Set("Retry-After", strconv.FormatInt(retryAfter, 10))
		httpError(rw, http.StatusTooManyRequests, err)
	case errors.As(err, &deadline), errors.Is(err, context.DeadlineExceeded):
		httpError(rw, http.StatusGatewayTimeout, err)
	default:
		httpError(rw, http.StatusInternalServerError, err)
	}
}
