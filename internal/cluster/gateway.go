package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copse"
	"copse/internal/core"
	"copse/internal/he/hebgv"
	"copse/internal/hist"
)

// ModelUnavailableError reports a model whose shard set is not fully
// covered by healthy workers (or whose workers disagree on keys): the
// gateway cannot merge a partial vote sum, so the model is down even
// though some of its shards are reachable.
type ModelUnavailableError struct {
	Model string
	// Missing lists the shard indices with no healthy holder.
	Missing []int
	// Problem describes a configuration conflict (key-fingerprint or
	// shard-count mismatch across workers), empty if the model is
	// merely under-covered.
	Problem string
}

func (e *ModelUnavailableError) Error() string {
	if e.Problem != "" {
		return fmt.Sprintf("cluster: model %q unavailable: %s", e.Model, e.Problem)
	}
	return fmt.Sprintf("cluster: model %q unavailable: no healthy worker holds shards %v", e.Model, e.Missing)
}

// ShardError reports a shard request that failed on every holder — the
// typed mid-request degradation error (a dead worker yields this, not
// a hang).
type ShardError struct {
	Model string
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: model %q shard %d failed on every holder: %v", e.Model, e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// GatewayConfig configures a gateway.
type GatewayConfig struct {
	// Workers lists the worker base URLs (http://host:port).
	Workers []string
	// ProbeInterval is the health-prober period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 5s).
	ProbeTimeout time.Duration
	// RequestTimeout bounds one data-plane round trip (default 2min).
	RequestTimeout time.Duration
	// Breaker tunes the per-worker circuit breakers (DESIGN.md §15).
	Breaker BreakerConfig
	// Retries is the number of extra rounds a failed shard/decode call
	// makes over its holders, with exponential backoff + jitter between
	// rounds. 0 means the default (2); negative disables retries.
	Retries int
	// RetryBackoff is the base inter-round backoff (default 50ms,
	// doubling per round, capped at 2s, jittered ±50%).
	RetryBackoff time.Duration
	// HedgeDelay launches a hedged attempt on the next holder when the
	// first has not answered within this delay (replicated shards only);
	// 0 disables hedging.
	HedgeDelay time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Gateway is the stateless routing tier: it holds public key material
// and routing state only — every secret stays on the workers — so any
// number of replicas can front one worker fleet.
type Gateway struct {
	cfg    GatewayConfig
	client *http.Client

	mu       sync.RWMutex
	workers  map[string]*workerState
	routes   map[string]*route
	backends map[string]*hebgv.Backend // public-material backends by fingerprint
	latency  map[string]*hist.Histogram
	breakers map[string]*breaker // per-worker circuit breakers, by URL

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	requests      atomic.Int64
	queries       atomic.Int64
	failures      atomic.Int64
	retries       atomic.Int64
	hedges        atomic.Int64
	panics        atomic.Int64
	deadlineFails atomic.Int64
	fanoutNS      atomic.Int64
	mergeNS       atomic.Int64
}

// workerState is the prober's view of one worker.
type workerState struct {
	up   bool
	err  string
	info WorkerInfo
}

// route is the computed routing entry for one model.
type route struct {
	shards      int
	fingerprint string
	meta        *core.Meta
	holders     [][]string // shard index → healthy worker URLs
	problem     string
}

// missing returns the shard indices with no healthy holder.
func (r *route) missing() []int {
	var out []int
	for i, h := range r.holders {
		if len(h) == 0 {
			out = append(out, i)
		}
	}
	return out
}

func (r *route) available() bool { return r.problem == "" && len(r.missing()) == 0 }

// NewGateway returns a gateway that knows its worker fleet but has not
// probed it yet; call Refresh (or Start) before serving.
func NewGateway(cfg GatewayConfig) *Gateway {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	cfg.Breaker = cfg.Breaker.withDefaults()
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 2
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Gateway{
		cfg:      cfg,
		client:   client,
		workers:  map[string]*workerState{},
		routes:   map[string]*route{},
		backends: map[string]*hebgv.Backend{},
		latency:  map[string]*hist.Histogram{},
		breakers: map[string]*breaker{},
		stop:     make(chan struct{}),
	}
}

// Start launches the background health prober.
func (g *Gateway) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		ticker := time.NewTicker(g.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-ticker.C:
				// No outer deadline: the info probes bound themselves
				// with ProbeTimeout, and the heavier first-contact
				// fetches (key material) with RequestTimeout.
				_ = g.Refresh(context.Background())
			}
		}
	}()
}

// Close stops the prober and releases the cached backends.
func (g *Gateway) Close() error {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, b := range g.backends {
		b.Close()
	}
	g.backends = map[string]*hebgv.Backend{}
	return nil
}

// Refresh probes every worker once (concurrently) and rebuilds the
// routing table. A worker that fails its probe is marked down; models
// it exclusively holds shards of become unavailable, every other model
// keeps serving.
func (g *Gateway) Refresh(ctx context.Context) error {
	type probeResult struct {
		url  string
		info WorkerInfo
		err  error
	}
	results := make(chan probeResult, len(g.cfg.Workers))
	for _, url := range g.cfg.Workers {
		go func(url string) {
			// A probe must answer fast even when the full request
			// timeout is generous: ProbeTimeout bounds it separately.
			pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
			defer cancel()
			var info WorkerInfo
			err := g.getJSON(pctx, url+"/v1/cluster/info", &info)
			results <- probeResult{url: url, info: info, err: err}
		}(url)
	}
	states := make(map[string]*workerState, len(g.cfg.Workers))
	for range g.cfg.Workers {
		r := <-results
		ws := &workerState{up: r.err == nil, info: r.info}
		if r.err != nil {
			ws.err = r.err.Error()
		}
		states[r.url] = ws
	}

	g.mu.Lock()
	g.workers = states
	g.rebuildLocked()
	routes := make(map[string]*route, len(g.routes))
	for name, r := range g.routes {
		routes[name] = r
	}
	g.mu.Unlock()

	// Fetch key material and metas for fingerprints/models we have not
	// seen yet (outside the lock: these are network calls).
	var firstErr error
	for name, r := range routes {
		if r.problem != "" {
			continue
		}
		if err := g.ensureBackend(ctx, r); err != nil {
			g.setProblem(name, fmt.Sprintf("fetching key material: %v", err))
			if firstErr == nil {
				firstErr = err
			}
		}
		if err := g.ensureMeta(ctx, name, r); err != nil {
			g.setProblem(name, fmt.Sprintf("fetching model meta: %v", err))
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// rebuildLocked recomputes the routing table from the current worker
// states. Metas and backends already fetched are carried over by
// fingerprint/model identity.
func (g *Gateway) rebuildLocked() {
	old := g.routes
	routes := map[string]*route{}
	for url, ws := range g.workers {
		if !ws.up {
			continue
		}
		for _, m := range ws.info.Models {
			r := routes[m.Name]
			if r == nil {
				r = &route{shards: m.Shards, fingerprint: ws.info.Fingerprint, holders: make([][]string, m.Shards)}
				if prev := old[m.Name]; prev != nil {
					r.meta = prev.meta
				}
				routes[m.Name] = r
			}
			if r.shards != m.Shards {
				r.problem = fmt.Sprintf("workers disagree on shard count (%d vs %d)", r.shards, m.Shards)
				continue
			}
			if r.fingerprint != ws.info.Fingerprint {
				r.problem = "workers disagree on key fingerprint"
				continue
			}
			if m.Shard.Index >= 0 && m.Shard.Index < len(r.holders) {
				r.holders[m.Shard.Index] = append(r.holders[m.Shard.Index], url)
			}
		}
	}
	// Deterministic holder order (probe arrival order is random).
	for _, r := range routes {
		for _, h := range r.holders {
			sort.Strings(h)
		}
	}
	g.routes = routes
}

func (g *Gateway) setProblem(model, problem string) {
	g.mu.Lock()
	if r := g.routes[model]; r != nil && r.problem == "" {
		r.problem = problem
	}
	g.mu.Unlock()
}

// breakerFor returns the worker's circuit breaker, creating it on
// first use. Breakers persist across Refresh cycles: they track the
// data path's view of worker health, while the probe tracks the
// control plane's — a worker is routed to only when both agree.
func (g *Gateway) breakerFor(url string) *breaker {
	g.mu.RLock()
	b := g.breakers[url]
	g.mu.RUnlock()
	if b != nil {
		return b
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if b = g.breakers[url]; b == nil {
		b = newBreaker(g.cfg.Breaker)
		g.breakers[url] = b
	}
	return b
}

// filterAdmitted drops holders whose breaker currently rejects traffic,
// so availability and routing reflect data-path health between probes
// (this replaces the old one-way markDown).
func (g *Gateway) filterAdmitted(holders []string) []string {
	out := holders[:0]
	for _, url := range holders {
		if g.breakerFor(url).allows() {
			out = append(out, url)
		}
	}
	return out
}

// ensureBackend builds (once per fingerprint) the encrypt/merge
// backend from a holder's public key material. The material has no
// evaluation keys — the gateway's only homomorphic op is addition,
// which needs none.
func (g *Gateway) ensureBackend(ctx context.Context, r *route) error {
	g.mu.RLock()
	_, ok := g.backends[r.fingerprint]
	g.mu.RUnlock()
	if ok {
		return nil
	}
	var lastErr error
	for _, holders := range r.holders {
		for _, url := range holders {
			body, err := g.getRaw(ctx, url+"/v1/cluster/keys")
			if err != nil {
				lastErr = err
				continue
			}
			mat, err := DecodeKeyMaterial(bytes.NewReader(body))
			if err != nil {
				lastErr = err
				continue
			}
			fp, err := KeyFingerprint(mat)
			if err != nil {
				lastErr = err
				continue
			}
			if fp != r.fingerprint {
				lastErr = fmt.Errorf("cluster: worker %s served key material with fingerprint %.12s, advertised %.12s", url, fp, r.fingerprint)
				continue
			}
			backend, err := hebgv.NewFromMaterial(hebgv.Config{}, mat)
			if err != nil {
				lastErr = err
				continue
			}
			g.mu.Lock()
			if _, dup := g.backends[r.fingerprint]; dup {
				g.mu.Unlock()
				backend.Close()
			} else {
				g.backends[r.fingerprint] = backend
				g.mu.Unlock()
			}
			return nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no healthy holder to fetch keys from")
	}
	return lastErr
}

// ensureMeta fetches (once per model) the forest's global Meta.
func (g *Gateway) ensureMeta(ctx context.Context, name string, r *route) error {
	if r.meta != nil {
		return nil
	}
	var lastErr error
	for _, holders := range r.holders {
		for _, url := range holders {
			body, err := g.getRaw(ctx, url+"/v1/cluster/meta?model="+name)
			if err != nil {
				lastErr = err
				continue
			}
			meta, err := DecodeMeta(bytes.NewReader(body))
			if err != nil {
				lastErr = err
				continue
			}
			g.mu.Lock()
			if cur := g.routes[name]; cur != nil {
				cur.meta = meta
			}
			g.mu.Unlock()
			r.meta = meta
			return nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no healthy holder to fetch meta from")
	}
	return lastErr
}

// snapshot returns a consistent copy of one model's route.
func (g *Gateway) snapshot(name string) (*route, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.routes[name]
	if !ok {
		return nil, fmt.Errorf("cluster: model %q not served by any worker", name)
	}
	cp := &route{shards: r.shards, fingerprint: r.fingerprint, meta: r.meta, problem: r.problem}
	cp.holders = make([][]string, len(r.holders))
	for i, h := range r.holders {
		cp.holders[i] = append([]string(nil), h...)
	}
	return cp, nil
}

// Classify fans one query batch across the model's shard holders and
// merges the encrypted per-shard vote sums. The merge is plain
// ciphertext addition: shard results occupy disjoint leaf-slot
// supports within each query's block, so the sum is bit-identical to
// the unsharded classification (DESIGN.md §12).
func (g *Gateway) Classify(ctx context.Context, model string, queries [][]uint64) ([]DecodedResult, *FanoutTrace, error) {
	r, err := g.snapshot(model)
	if err != nil {
		return nil, nil, err
	}
	// Availability reflects both the probe's view (snapshot holders) and
	// the data path's (breaker state), so a worker that died between
	// probes stops receiving traffic as soon as its breaker opens.
	for i, h := range r.holders {
		r.holders[i] = g.filterAdmitted(h)
	}
	if !r.available() {
		return nil, nil, &ModelUnavailableError{Model: model, Missing: r.missing(), Problem: r.problem}
	}
	g.mu.RLock()
	backend := g.backends[r.fingerprint]
	g.mu.RUnlock()
	if backend == nil || r.meta == nil {
		return nil, nil, &ModelUnavailableError{Model: model, Problem: "key material or meta not yet fetched"}
	}

	trace := &FanoutTrace{Shards: r.shards}
	capacity := r.meta.BatchCapacity()
	out := make([]DecodedResult, 0, len(queries))
	for lo := 0; lo < len(queries); lo += capacity {
		hi := min(lo+capacity, len(queries))
		results, err := g.classifyChunk(ctx, model, r, backend, queries[lo:hi], trace)
		if err != nil {
			g.failures.Add(1)
			return nil, nil, err
		}
		out = append(out, results...)
		trace.Passes++
	}
	g.requests.Add(1)
	g.queries.Add(int64(len(queries)))
	return out, trace, nil
}

// FanoutTrace is the per-request cluster timing breakdown.
type FanoutTrace struct {
	Shards  int
	Passes  int
	Encrypt time.Duration // query encryption + encoding on the gateway
	Fanout  time.Duration // wall time of the slowest shard round trip
	Merge   time.Duration // vote-sum additions
	Decode  time.Duration // decode round trip to a worker
}

// classifyChunk runs one capacity-bounded pass. With a caller deadline,
// each stage runs under its share of the remaining budget (stageBudget)
// and an exhausted budget fails fast with a typed *copse.DeadlineError
// before the stage spends work it cannot finish.
func (g *Gateway) classifyChunk(ctx context.Context, model string, r *route, backend *hebgv.Backend, chunk [][]uint64, trace *FanoutTrace) ([]DecodedResult, error) {
	if _, cancel, err := g.stageBudget(ctx, "encrypt"); err != nil {
		return nil, err
	} else {
		cancel() // encryption is local compute; the check alone gates it
	}
	mark := time.Now()
	q, err := core.PrepareQueryBatch(backend, r.meta, chunk, true)
	if err != nil {
		return nil, err
	}
	wcs := make([]WireCiphertext, len(q.Bits))
	for i, op := range q.Bits {
		raw, depth, err := backend.ExportCiphertext(op.Ct)
		if err != nil {
			return nil, err
		}
		wcs[i] = WireCiphertext{Ct: raw, Depth: depth}
	}
	var queryFrame bytes.Buffer
	if err := EncodeCiphertexts(&queryFrame, wcs); err != nil {
		return nil, err
	}
	trace.Encrypt += time.Since(mark)

	// Fan out: one request per shard, concurrently; each shard hedges
	// and fails over across its holders (hedgedCall). A panic in a shard
	// goroutine fails the request, not the process.
	fctx, fcancel, err := g.stageBudget(ctx, "fanout")
	if err != nil {
		return nil, err
	}
	mark = time.Now()
	shardCts := make([]WireCiphertext, r.shards)
	errs := make([]error, r.shards)
	var wg sync.WaitGroup
	for shard := 0; shard < r.shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					g.panics.Add(1)
					errs[shard] = &copse.InternalError{Op: "shard fan-out", Value: rec, Stack: debug.Stack()}
				}
			}()
			shardCts[shard], errs[shard] = g.classifyShard(fctx, model, shard, r.holders[shard], queryFrame.Bytes(), len(chunk))
		}(shard)
	}
	wg.Wait()
	fcancel()
	for shard, err := range errs {
		if err != nil {
			var de *copse.DeadlineError
			var ie *copse.InternalError
			if errors.As(err, &de) || errors.As(err, &ie) {
				return nil, err
			}
			return nil, &ShardError{Model: model, Shard: shard, Err: err}
		}
	}
	elapsed := time.Since(mark)
	trace.Fanout += elapsed
	g.fanoutNS.Add(elapsed.Nanoseconds())

	// Merge: per-shard vote sums have disjoint slot supports — plain
	// additions at the (low) result level, no keys involved.
	if _, cancel, err := g.stageBudget(ctx, "merge"); err != nil {
		return nil, err
	} else {
		cancel() // the merge is local adds; the check alone gates it
	}
	mark = time.Now()
	sum := backend.ImportCiphertext(shardCts[0].Ct, shardCts[0].Depth)
	for _, wc := range shardCts[1:] {
		sum, err = backend.Add(sum, backend.ImportCiphertext(wc.Ct, wc.Depth))
		if err != nil {
			return nil, fmt.Errorf("cluster: merging shard results: %w", err)
		}
	}
	raw, depth, err := backend.ExportCiphertext(sum)
	if err != nil {
		return nil, err
	}
	var mergedFrame bytes.Buffer
	if err := EncodeCiphertexts(&mergedFrame, []WireCiphertext{{Ct: raw, Depth: depth}}); err != nil {
		return nil, err
	}
	elapsed = time.Since(mark)
	trace.Merge += elapsed
	g.mergeNS.Add(elapsed.Nanoseconds())

	// Decode on any healthy holder (all hold the same secret key).
	dctx, dcancel, err := g.stageBudget(ctx, "decode")
	if err != nil {
		return nil, err
	}
	defer dcancel()
	mark = time.Now()
	results, err := g.decode(dctx, model, r, mergedFrame.Bytes(), len(chunk))
	trace.Decode += time.Since(mark)
	if err != nil {
		return nil, err
	}
	g.observeLatency(model, trace.Fanout+trace.Merge+trace.Decode)
	return results, nil
}

// classifyShard posts one shard request through the hedged-retry
// machinery: holders with closed breakers are tried first, a hedge
// launches after HedgeDelay, failures fail over immediately, and
// exhausted rounds back off and retry.
func (g *Gateway) classifyShard(ctx context.Context, model string, shard int, holders []string, frame []byte, batch int) (WireCiphertext, error) {
	return hedgedCall(g, ctx, holders, func(ctx context.Context, url string) (WireCiphertext, error) {
		target := fmt.Sprintf("%s/v1/cluster/classify?model=%s&shard=%d&batch=%d", url, model, shard, batch)
		body, err := g.postRaw(ctx, target, frame)
		if err != nil {
			return WireCiphertext{}, err
		}
		cts, err := DecodeCiphertexts(bytes.NewReader(body))
		if err == nil && len(cts) != 1 {
			err = fmt.Errorf("cluster: worker returned %d ciphertexts, want 1", len(cts))
		}
		if err != nil {
			return WireCiphertext{}, err
		}
		return cts[0], nil
	})
}

// decode posts the merged ciphertext to any holder of the model,
// retrying alternates through the hedged-call machinery — a single
// holder failure after a successful merge must not waste the whole
// fan-out. If every breaker refuses admission, it bypasses them for
// one sequential last-resort pass: the merge is already paid for, so
// one more attempt per holder is cheap against redoing the pass.
func (g *Gateway) decode(ctx context.Context, model string, r *route, frame []byte, count int) ([]DecodedResult, error) {
	var urls []string
	seen := map[string]bool{}
	for _, holders := range r.holders {
		for _, url := range holders {
			if !seen[url] {
				seen[url] = true
				urls = append(urls, url)
			}
		}
	}
	call := func(ctx context.Context, url string) ([]DecodedResult, error) {
		target := fmt.Sprintf("%s/v1/cluster/decode?model=%s&count=%d", url, model, count)
		body, err := g.postRaw(ctx, target, frame)
		if err != nil {
			return nil, err
		}
		var results []DecodedResult
		if err := json.Unmarshal(body, &results); err != nil {
			return nil, err
		}
		return results, nil
	}
	results, err := hedgedCall(g, ctx, urls, call)
	if errors.Is(err, errAllBreakersOpen) {
		for _, url := range urls {
			if results, lerr := call(ctx, url); lerr == nil {
				return results, nil
			} else {
				err = lerr
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: decoding merged result: %w", err)
	}
	return results, nil
}

func (g *Gateway) observeLatency(model string, d time.Duration) {
	g.mu.Lock()
	h := g.latency[model]
	if h == nil {
		h = hist.New()
		g.latency[model] = h
	}
	g.mu.Unlock()
	h.Observe(d)
}

// HTTP plumbing.

func (g *Gateway) getJSON(ctx context.Context, url string, v any) error {
	body, err := g.getRaw(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func (g *Gateway) getRaw(ctx context.Context, url string) ([]byte, error) {
	return g.roundTrip(ctx, http.MethodGet, url, nil)
}

func (g *Gateway) postRaw(ctx context.Context, url string, body []byte) ([]byte, error) {
	return g.roundTrip(ctx, http.MethodPost, url, body)
}

func (g *Gateway) roundTrip(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxDataPlaneBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		var je struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &je) == nil && je.Error != "" {
			msg = je.Error
		}
		// Typed, so breaker accounting can tell worker faults (5xx)
		// from request faults (4xx).
		return nil, &httpStatusError{
			Status:     resp.StatusCode,
			StatusLine: resp.Status,
			Msg:        msg,
			RetryAfter: resp.Header.Get("Retry-After"),
		}
	}
	return data, nil
}

// HTTP surface.

// GatewayModel is one /v1/models entry: the shard-aware availability
// view of a served forest.
type GatewayModel struct {
	Name          string     `json:"name"`
	Shards        int        `json:"shards"`
	Available     bool       `json:"available"`
	MissingShards []int      `json:"missingShards,omitempty"`
	Problem       string     `json:"problem,omitempty"`
	Workers       [][]string `json:"workers"`
	NumFeatures   int        `json:"numFeatures,omitempty"`
	Precision     int        `json:"precision,omitempty"`
	BatchCapacity int        `json:"batchCapacity,omitempty"`
}

// Models returns the shard-aware model inventory. Availability is the
// serving truth — it reflects the probe view and the per-worker breaker
// state, exactly like Classify's admission check.
func (g *Gateway) Models() []GatewayModel {
	g.mu.RLock()
	names := make([]string, 0, len(g.routes))
	for name := range g.routes {
		names = append(names, name)
	}
	g.mu.RUnlock()
	out := make([]GatewayModel, 0, len(names))
	for _, name := range names {
		// snapshot + filter outside the read lock: filterAdmitted takes
		// the gateway lock itself when it must create a breaker.
		r, err := g.snapshot(name)
		if err != nil {
			continue
		}
		for i, h := range r.holders {
			r.holders[i] = g.filterAdmitted(h)
		}
		m := GatewayModel{
			Name:          name,
			Shards:        r.shards,
			Available:     r.available() && r.meta != nil,
			MissingShards: r.missing(),
			Problem:       r.problem,
			Workers:       r.holders,
		}
		if r.meta != nil {
			m.NumFeatures = r.meta.NumFeatures
			m.Precision = r.meta.Precision
			m.BatchCapacity = r.meta.BatchCapacity()
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Handler returns the gateway's public HTTP surface.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("POST /v1/classify", g.handleClassify)
	mux.HandleFunc("GET /v1/models", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, g.Models())
	})
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	return mux
}

// maxGatewayRequestBytes bounds a JSON classify request body.
const maxGatewayRequestBytes = 8 << 20

type gatewayClassifyRequest struct {
	Model   string     `json:"model"`
	Queries [][]uint64 `json:"queries"`
}

type gatewayClassifyResponse struct {
	Model     string          `json:"model"`
	Results   []DecodedResult `json:"results"`
	Shards    int             `json:"shards"`
	Passes    int             `json:"passes"`
	LatencyMS float64         `json:"latencyMS"`
	FanoutMS  float64         `json:"fanoutMS"`
	MergeMS   float64         `json:"mergeMS"`
}

func (g *Gateway) handleClassify(rw http.ResponseWriter, r *http.Request) {
	var req gatewayClassifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxGatewayRequestBytes)).Decode(&req); err != nil {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	if req.Model == "" || len(req.Queries) == 0 {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("need model and at least one query"))
		return
	}
	start := time.Now()
	results, trace, err := g.Classify(r.Context(), req.Model, req.Queries)
	if err != nil {
		var unavailable *ModelUnavailableError
		var shardErr *ShardError
		var deadlineErr *copse.DeadlineError
		var statusErr *httpStatusError
		status := http.StatusNotFound
		switch {
		case errors.As(err, &deadlineErr), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.As(err, &statusErr) && statusErr.Status == http.StatusTooManyRequests:
			// A worker shed the request (typed 429): surface the
			// overload verbatim so clients back off rather than retry
			// into a saturated fleet.
			status = http.StatusTooManyRequests
			if statusErr.RetryAfter != "" {
				rw.Header().Set("Retry-After", statusErr.RetryAfter)
			}
		case errors.As(err, &unavailable):
			status = http.StatusServiceUnavailable
		case errors.As(err, &shardErr):
			status = http.StatusBadGateway
		case strings.Contains(err.Error(), "not served"):
			status = http.StatusNotFound
		default:
			status = http.StatusInternalServerError
		}
		httpError(rw, status, err)
		return
	}
	writeJSON(rw, gatewayClassifyResponse{
		Model:     req.Model,
		Results:   results,
		Shards:    trace.Shards,
		Passes:    trace.Passes,
		LatencyMS: ms(time.Since(start)),
		FanoutMS:  ms(trace.Fanout),
		MergeMS:   ms(trace.Merge),
	})
}

type gatewayWorkerJSON struct {
	URL     string           `json:"url"`
	Up      bool             `json:"up"`
	Error   string           `json:"error,omitempty"`
	Breaker *BreakerSnapshot `json:"breaker,omitempty"`
}

type gatewayStatsJSON struct {
	Requests         int64                       `json:"requests"`
	Queries          int64                       `json:"queries"`
	Failures         int64                       `json:"failures"`
	Retries          int64                       `json:"retries"`
	Hedges           int64                       `json:"hedges"`
	PanicsRecovered  int64                       `json:"panicsRecovered"`
	DeadlineFailures int64                       `json:"deadlineFailures"`
	FanoutMS         float64                     `json:"fanoutMS"`
	MergeMS          float64                     `json:"mergeMS"`
	Workers          []gatewayWorkerJSON         `json:"workers"`
	ModelLatency     map[string]modelLatencyJSON `json:"modelLatency,omitempty"`
}

func (g *Gateway) handleStats(rw http.ResponseWriter, _ *http.Request) {
	st := gatewayStatsJSON{
		Requests:         g.requests.Load(),
		Queries:          g.queries.Load(),
		Failures:         g.failures.Load(),
		Retries:          g.retries.Load(),
		Hedges:           g.hedges.Load(),
		PanicsRecovered:  g.panics.Load(),
		DeadlineFailures: g.deadlineFails.Load(),
		FanoutMS:         ms(time.Duration(g.fanoutNS.Load())),
		MergeMS:          ms(time.Duration(g.mergeNS.Load())),
	}
	g.mu.RLock()
	for url, ws := range g.workers {
		wj := gatewayWorkerJSON{URL: url, Up: ws.up, Error: ws.err}
		if b := g.breakers[url]; b != nil {
			snap := b.snapshot()
			wj.Breaker = &snap
		}
		st.Workers = append(st.Workers, wj)
	}
	if len(g.latency) > 0 {
		st.ModelLatency = make(map[string]modelLatencyJSON, len(g.latency))
		for name, h := range g.latency {
			snap := h.Snapshot()
			st.ModelLatency[name] = modelLatencyJSON{
				Count: snap.Count,
				P50MS: ms(snap.Quantile(0.50)),
				P95MS: ms(snap.Quantile(0.95)),
				P99MS: ms(snap.Quantile(0.99)),
			}
		}
	}
	g.mu.RUnlock()
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].URL < st.Workers[j].URL })
	writeJSON(rw, st)
}
