// Command gencorpus regenerates the FuzzWireDecode seed corpus under
// internal/cluster/testdata/fuzz/FuzzWireDecode: one valid frame of
// every wire kind plus truncated, garbled and oversized variants, so
// fuzzing (and the seed-only CI run) starts with coverage past the
// frame-header checks. Run from the repository root:
//
//	go run ./internal/cluster/testdata/gencorpus
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"copse/internal/bgv"
	"copse/internal/cluster"
	"copse/internal/core"
	"copse/internal/he/hebgv"
	"copse/internal/model"
)

func main() {
	dir := filepath.Join("internal", "cluster", "testdata", "fuzz", "FuzzWireDecode")
	if _, err := os.Stat(filepath.Join("internal", "cluster")); err != nil {
		log.Fatalf("run from the repository root: %v", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Same deliberately tiny parameter set as the golden wire tests
	// (N=16) so the corpus stays a few kilobytes per file.
	params := bgv.Params{LogN: 4, T: 65537, PrimeBits: 40, Levels: 3, DigitBits: 30}
	backend, err := hebgv.New(hebgv.Config{Params: params, RotationSteps: []int{3, -2}, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()

	seeds := map[string][]byte{}

	var pb bytes.Buffer
	must(cluster.EncodeParams(&pb, params))
	seeds["params"] = pb.Bytes()

	var kb bytes.Buffer
	must(cluster.EncodeKeyMaterial(&kb, backend.PublicMaterial()))
	seeds["keymaterial"] = kb.Bytes()

	ct, err := backend.Encrypt([]uint64{5, 0, 1, 3, 2, 7, 6, 4})
	if err != nil {
		log.Fatal(err)
	}
	raw, depth, err := backend.ExportCiphertext(ct)
	if err != nil {
		log.Fatal(err)
	}
	var cb bytes.Buffer
	must(cluster.EncodeCiphertexts(&cb, []cluster.WireCiphertext{{Ct: raw, Depth: depth}}))
	seeds["ciphertexts"] = cb.Bytes()

	compiled, err := core.Compile(model.Figure1(), core.Options{Slots: 1024})
	if err != nil {
		log.Fatal(err)
	}
	var mb bytes.Buffer
	must(cluster.EncodeMeta(&mb, &compiled.Meta))
	seeds["meta"] = mb.Bytes()

	// Hostile variants of the params frame: decoders must fail these
	// with typed errors, never a panic or a large allocation.
	frame := bytes.Clone(seeds["params"])
	seeds["truncated"] = frame[:len(frame)-2]

	bad := bytes.Clone(frame)
	copy(bad[:4], "NOPE")
	seeds["badmagic"] = bad

	future := bytes.Clone(frame)
	binary.LittleEndian.PutUint16(future[4:6], cluster.WireVersion+1)
	seeds["badversion"] = future

	huge := bytes.Clone(frame)
	binary.LittleEndian.PutUint32(huge[8:12], 1<<30) // lying length prefix
	seeds["hugelen"] = huge

	garbled := bytes.Clone(seeds["ciphertexts"])
	for i := 12; i < len(garbled); i += 97 {
		garbled[i] ^= 0x5a
	}
	seeds["garbled"] = garbled

	for name, data := range seeds {
		path := filepath.Join(dir, name)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
