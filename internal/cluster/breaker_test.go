package cluster

import (
	"sync"
	"testing"
	"time"
)

// TestBreakerTransitions walks the state machine deterministically:
// closed → open at Threshold consecutive failures, rejecting during
// cooldown, half-open trial after cooldown, success closing / failure
// re-opening, and a success streak resetting the failure count. Run
// under -race in CI together with the concurrent hammer below.
func TestBreakerTransitions(t *testing.T) {
	cfg := BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond, HalfOpenMax: 1}
	b := newBreaker(cfg)

	fail := func() {
		t.Helper()
		release, ok := b.Admit()
		if !ok {
			t.Fatal("closed breaker refused admission")
		}
		release(false)
	}
	succeed := func() {
		t.Helper()
		release, ok := b.Admit()
		if !ok {
			t.Fatal("breaker refused admission")
		}
		release(true)
	}

	// A success between failures resets the consecutive count.
	fail()
	fail()
	succeed()
	fail()
	fail()
	if state, _ := b.peek(); state != breakerClosed {
		t.Fatalf("state after 2 consecutive failures = %v, want closed", state)
	}
	fail()
	if state, _ := b.peek(); state != breakerOpen {
		t.Fatalf("state after %d consecutive failures = %v, want open", cfg.Threshold, state)
	}
	if _, ok := b.Admit(); ok {
		t.Fatal("open breaker admitted during cooldown")
	}

	// After cooldown the next Admit is a half-open trial; its failure
	// re-opens with a fresh cooldown.
	time.Sleep(cfg.Cooldown + 10*time.Millisecond)
	release, ok := b.Admit()
	if !ok {
		t.Fatal("cooled-down breaker refused trial")
	}
	if state, _ := b.peek(); state != breakerHalfOpen {
		t.Fatalf("state during trial = %v, want half-open", state)
	}
	// HalfOpenMax=1: a second concurrent trial must be refused.
	if _, ok := b.Admit(); ok {
		t.Fatal("half-open breaker exceeded HalfOpenMax")
	}
	release(false)
	if state, _ := b.peek(); state != breakerOpen {
		t.Fatalf("state after failed trial = %v, want open", state)
	}
	if _, ok := b.Admit(); ok {
		t.Fatal("re-opened breaker admitted during fresh cooldown")
	}

	// A successful trial closes the breaker and traffic resumes.
	time.Sleep(cfg.Cooldown + 10*time.Millisecond)
	succeed()
	if state, allows := b.peek(); state != breakerClosed || !allows {
		t.Fatalf("state after successful trial = %v (allows %v), want closed", state, allows)
	}
	succeed()

	if snap := b.snapshot(); snap.Opens != 2 || snap.State != "closed" {
		t.Errorf("snapshot = %+v, want 2 opens, closed", snap)
	}
}

// TestBreakerConcurrent hammers one breaker from many goroutines with
// mixed outcomes while others poll peek/snapshot — the state machine's
// invariants (never more than HalfOpenMax concurrent trials, release
// callbacks safe after state changes) must hold under the race
// detector.
func TestBreakerConcurrent(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Millisecond, HalfOpenMax: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if release, ok := b.Admit(); ok {
					release(i%3 != 0)
				}
				b.peek()
				if i%50 == 0 {
					b.snapshot()
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()

	// Whatever state the hammer left it in, the breaker must recover:
	// wait out a cooldown and drive successful trials until closed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if release, ok := b.Admit(); ok {
			release(true)
		}
		if state, _ := b.peek(); state == breakerClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker did not recover to closed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
