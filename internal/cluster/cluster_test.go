package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"copse"
	"copse/internal/core"
	"copse/internal/model"
	"copse/internal/synth"
)

// clusterForest builds a forest with enough trees to split.
func clusterForest(t *testing.T, seed uint64) *model.Forest {
	t.Helper()
	f, err := synth.Generate(synth.ForestSpec{
		NumFeatures:     3,
		NumLabels:       3,
		Precision:       4,
		MaxDepth:        3,
		BranchesPerTree: []int{5, 3, 6, 3, 4},
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// testCluster is a 2-worker in-process cluster plus the gateway
// fronting it.
type testCluster struct {
	workers []*Worker
	servers []*httptest.Server
	gateway *Gateway
}

func (tc *testCluster) close() {
	if tc.gateway != nil {
		tc.gateway.Close()
	}
	for _, s := range tc.servers {
		s.Close()
	}
	for _, w := range tc.workers {
		w.Close()
	}
}

// startCluster stages each shards[i] list on its own worker and fronts
// them with a refreshed gateway.
func startCluster(t *testing.T, seed uint64, stage func(workers []*Worker)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{Seed: seed, MaxInFlight: 2})
		tc.workers = append(tc.workers, w)
	}
	stage(tc.workers)
	var urls []string
	for _, w := range tc.workers {
		srv := httptest.NewServer(w.Handler())
		tc.servers = append(tc.servers, srv)
		urls = append(urls, srv.URL)
	}
	// Generous round-trip budget: BGV passes run ~10× slower under the
	// race detector, and a premature client timeout would read as a
	// routing failure.
	tc.gateway = NewGateway(GatewayConfig{Workers: urls, RequestTimeout: 10 * time.Minute})
	if err := tc.gateway.Refresh(context.Background()); err != nil {
		tc.close()
		t.Fatalf("gateway refresh: %v", err)
	}
	return tc
}

// TestClusterEndToEnd checks the tentpole contract: a 2-worker sharded
// BGV classification is bit-identical to single-node serving — same
// leaf bits, votes, and per-tree labels — through both the Go API and
// the HTTP surface.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV cluster round trip is slow")
	}
	f := clusterForest(t, 51)
	c, err := core.Compile(f, core.Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	shards, manifest, err := core.ShardForest(c, 2)
	if err != nil {
		t.Fatal(err)
	}

	tc := startCluster(t, 61, func(workers []*Worker) {
		for i, s := range shards {
			if err := workers[i].AddShard("forest", manifest, s); err != nil {
				t.Fatalf("worker %d AddShard: %v", i, err)
			}
		}
	})
	defer tc.close()

	if fp0, fp1 := tc.workers[0].Fingerprint(), tc.workers[1].Fingerprint(); fp0 != fp1 || fp0 == "" {
		t.Fatalf("seeded workers derived different key sets: %q vs %q", fp0, fp1)
	}

	// Single-node reference on its own (differently-seeded) service:
	// leaf bits are determined by the model and queries, not the keys.
	ref := copse.NewService(copse.WithScenario(copse.ScenarioServerModel), copse.WithSeed(7))
	defer ref.Close()
	if err := ref.Register("forest", c); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(3, 4))
	limit := uint64(1) << uint(c.Meta.Precision)
	batch := make([][]uint64, 3)
	for i := range batch {
		q := make([]uint64, c.Meta.NumFeatures)
		for j := range q {
			q[j] = rng.Uint64N(limit)
		}
		batch[i] = q
	}
	want, err := ref.ClassifyBatch(context.Background(), "forest", batch)
	if err != nil {
		t.Fatal(err)
	}

	got, trace, err := tc.gateway.Classify(context.Background(), "forest", batch)
	if err != nil {
		t.Fatalf("gateway classify: %v", err)
	}
	if len(got) != len(batch) || trace.Shards != 2 || trace.Passes != 1 {
		t.Fatalf("got %d results, %d shards, %d passes", len(got), trace.Shards, trace.Passes)
	}
	for i, res := range got {
		if !reflect.DeepEqual(res.LeafBits, want[i].LeafBits) {
			t.Errorf("query %d: sharded leaf bits %v != single-node %v", i, res.LeafBits, want[i].LeafBits)
		}
		if !reflect.DeepEqual(res.Votes, want[i].Votes) || !reflect.DeepEqual(res.PerTree, want[i].PerTree) {
			t.Errorf("query %d: votes/perTree diverge: %v/%v vs %v/%v",
				i, res.Votes, res.PerTree, want[i].Votes, want[i].PerTree)
		}
		if res.Label != want[i].Plurality() {
			t.Errorf("query %d: label %d, want %d", i, res.Label, want[i].Plurality())
		}
	}

	// Same through the HTTP surface.
	gw := httptest.NewServer(tc.gateway.Handler())
	defer gw.Close()
	body, _ := json.Marshal(gatewayClassifyRequest{Model: "forest", Queries: batch})
	resp, err := http.Post(gw.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway HTTP classify: %s", resp.Status)
	}
	var httpResp gatewayClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&httpResp); err != nil {
		t.Fatal(err)
	}
	if len(httpResp.Results) != len(batch) || httpResp.Shards != 2 {
		t.Fatalf("HTTP response: %d results, %d shards", len(httpResp.Results), httpResp.Shards)
	}
	for i, res := range httpResp.Results {
		if !reflect.DeepEqual(res.LeafBits, want[i].LeafBits) {
			t.Errorf("HTTP query %d: leaf bits diverge", i)
		}
	}

	// The shard-aware inventory reports full coverage.
	models := tc.gateway.Models()
	if len(models) != 1 || !models[0].Available || models[0].Shards != 2 {
		t.Fatalf("gateway models: %+v", models)
	}
	// Worker stats carry per-model latency histograms.
	st := tc.workers[0].Service().Stats()
	if lat, ok := st.ModelLatency["forest/0"]; !ok || lat.Count == 0 || lat.P99 < lat.P50 {
		t.Errorf("worker latency stats: %+v", st.ModelLatency)
	}
}

// TestClusterDegradation checks the failure contract: a dead worker
// yields a typed error mid-request (not a hang), takes exactly the
// models it exclusively holds out of /v1/models, and replicated shards
// keep serving through holder retry.
func TestClusterDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV cluster round trip is slow")
	}
	f := clusterForest(t, 52)
	c, err := core.Compile(f, core.Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	wide, wideManifest, err := core.ShardForest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	solo, soloManifest, err := core.ShardForest(c, 1)
	if err != nil {
		t.Fatal(err)
	}

	tc := startCluster(t, 62, func(workers []*Worker) {
		// "wide" spans both workers; "solo" lives on worker 0 only;
		// "both" is a 1-shard forest replicated on both workers.
		if err := workers[0].AddShard("wide", wideManifest, wide[0]); err != nil {
			t.Fatal(err)
		}
		if err := workers[1].AddShard("wide", wideManifest, wide[1]); err != nil {
			t.Fatal(err)
		}
		if err := workers[0].AddShard("solo", soloManifest, solo[0]); err != nil {
			t.Fatal(err)
		}
		for i := range workers {
			if err := workers[i].AddShard("both", soloManifest, solo[0]); err != nil {
				t.Fatalf("worker %d: %v", i, err)
			}
		}
	})
	defer tc.close()

	query := [][]uint64{{3, 9, 14}}
	for _, name := range []string{"wide", "solo", "both"} {
		if _, _, err := tc.gateway.Classify(context.Background(), name, query); err != nil {
			t.Fatalf("healthy cluster: classify %q: %v", name, err)
		}
	}

	// Kill worker 1 without telling the gateway: the next "wide"
	// request hits the dead holder mid-request.
	tc.servers[1].Close()
	_, _, err = tc.gateway.Classify(context.Background(), "wide", query)
	var shardErr *ShardError
	if !errors.As(err, &shardErr) {
		t.Fatalf("classify against dead worker: got %v, want *ShardError", err)
	}
	if shardErr.Model != "wide" || shardErr.Shard != 1 {
		t.Errorf("shard error names %q/%d, want wide/1", shardErr.Model, shardErr.Shard)
	}

	// The data-path failure marked the worker down: "wide" is now
	// unavailable with shard 1 missing, "solo" keeps serving, and the
	// replicated "both" survives via its remaining holder.
	byName := map[string]GatewayModel{}
	for _, m := range tc.gateway.Models() {
		byName[m.Name] = m
	}
	if m := byName["wide"]; m.Available || !reflect.DeepEqual(m.MissingShards, []int{1}) {
		t.Errorf("wide after worker death: %+v", m)
	}
	if m := byName["solo"]; !m.Available {
		t.Errorf("solo after worker death: %+v", m)
	}
	if m := byName["both"]; !m.Available {
		t.Errorf("both after worker death: %+v", m)
	}
	if _, _, err := tc.gateway.Classify(context.Background(), "solo", query); err != nil {
		t.Errorf("solo classify after worker death: %v", err)
	}
	if _, _, err := tc.gateway.Classify(context.Background(), "both", query); err != nil {
		t.Errorf("replicated classify after worker death: %v", err)
	}

	// An unavailable model fails with the typed error, immediately.
	_, _, err = tc.gateway.Classify(context.Background(), "wide", query)
	var unavailable *ModelUnavailableError
	if !errors.As(err, &unavailable) {
		t.Fatalf("unavailable model: got %v, want *ModelUnavailableError", err)
	}

	// A probe refresh against the dead worker keeps the same view.
	if err := tc.gateway.Refresh(context.Background()); err != nil {
		t.Logf("refresh with dead worker (expected partial): %v", err)
	}
	for _, m := range tc.gateway.Models() {
		if m.Name == "wide" && m.Available {
			t.Errorf("wide available again after refresh against dead worker")
		}
	}
}

// TestClusterFingerprintMismatch checks that workers with divergent
// key sets are refused: the model is marked unavailable with a
// fingerprint problem rather than silently merging undecryptable
// results.
func TestClusterFingerprintMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV key generation is slow")
	}
	f := clusterForest(t, 53)
	c, err := core.Compile(f, core.Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	shards, manifest, err := core.ShardForest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	w0 := NewWorker(WorkerConfig{Seed: 100})
	defer w0.Close()
	w1 := NewWorker(WorkerConfig{Seed: 200}) // different seed → different keys
	defer w1.Close()
	if err := w0.AddShard("forest", manifest, shards[0]); err != nil {
		t.Fatal(err)
	}
	if err := w1.AddShard("forest", manifest, shards[1]); err != nil {
		t.Fatal(err)
	}
	s0, s1 := httptest.NewServer(w0.Handler()), httptest.NewServer(w1.Handler())
	defer s0.Close()
	defer s1.Close()
	g := NewGateway(GatewayConfig{Workers: []string{s0.URL, s1.URL}})
	defer g.Close()
	if err := g.Refresh(context.Background()); err != nil {
		t.Logf("refresh: %v", err)
	}
	models := g.Models()
	if len(models) != 1 || models[0].Available || models[0].Problem == "" {
		t.Fatalf("mismatched-key model should be unavailable with a problem: %+v", models)
	}
	_, _, err = g.Classify(context.Background(), "forest", [][]uint64{{1, 2, 3}})
	var unavailable *ModelUnavailableError
	if !errors.As(err, &unavailable) {
		t.Fatalf("got %v, want *ModelUnavailableError", err)
	}
}

// TestWorkerErrors pins the worker staging error surface.
func TestWorkerErrors(t *testing.T) {
	f := clusterForest(t, 54)
	c, err := core.Compile(f, core.Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	shards, manifest, err := core.ShardForest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(WorkerConfig{}) // no seed, no material
	defer w.Close()
	if err := w.AddShard("m", manifest, shards[0]); err == nil {
		t.Error("seedless worker accepted a shard")
	}
	w2 := NewWorker(WorkerConfig{Seed: 5})
	defer w2.Close()
	if err := w2.AddShard("m", manifest, c); err == nil {
		t.Error("unsharded artifact accepted as a shard")
	}
	if err := w2.AddShard("", manifest, shards[0]); err == nil {
		t.Error("empty model name accepted")
	}
}

// TestParamsForSlots pins the preset lookup.
func TestParamsForSlots(t *testing.T) {
	for _, slots := range []int{1024, 2048, 16384} {
		p, err := ParamsForSlots(slots, 10)
		if err != nil {
			t.Fatalf("slots %d: %v", slots, err)
		}
		if got := 1 << (p.LogN - 1); got != slots {
			t.Errorf("slots %d: preset provides %d", slots, got)
		}
		if p.Levels != 10 {
			t.Errorf("slots %d: levels %d", slots, p.Levels)
		}
	}
	if _, err := ParamsForSlots(512, 10); err == nil {
		t.Error("bogus slot count accepted")
	}
}
