package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"copse/internal/bgv"
)

// FuzzWireDecode drives every frame decoder with arbitrary bytes: the
// wire layer's contract is that hostile input fails with a typed error
// — never a panic, and never an allocation proportional to a lying
// length prefix (the fuzz body pins MaxFrameBytes to 1 MiB so a
// violation shows up as an OOM-scale allocation the engine catches).
//
// The committed seed corpus under testdata/fuzz/FuzzWireDecode holds a
// valid frame of every kind plus truncated, garbled and oversized
// variants, so coverage starts past the header checks even in the
// seed-only CI run. Regenerate it with:
//
//	go run ./internal/cluster/testdata/gencorpus
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CPSW"))
	f.Fuzz(func(t *testing.T, data []byte) {
		SetMaxFrameBytes(1 << 20)
		// A frame carrying valid-but-large parameters (LogN 15, 64
		// levels) makes DecodeKeyMaterial legitimately pay seconds of
		// prime generation; veto those so the engine keeps mutating
		// instead of grinding one input.
		wireParamsHook = func(p bgv.Params) error {
			if p.LogN > 8 || p.Levels > 8 {
				return fmt.Errorf("fuzz: parameters too expensive (LogN %d, Levels %d)", p.LogN, p.Levels)
			}
			return nil
		}
		defer func() {
			SetMaxFrameBytes(0)
			wireParamsHook = nil
		}()
		_, _ = DecodeParams(bytes.NewReader(data))
		_, _ = DecodeKeyMaterial(bytes.NewReader(data))
		_, _ = DecodeCiphertexts(bytes.NewReader(data))
		_, _ = DecodeMeta(bytes.NewReader(data))
	})
}
