package cluster

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-worker circuit breakers guarding the
// gateway's data plane (DESIGN.md §15).
type BreakerConfig struct {
	// Threshold is the number of consecutive data-path failures that
	// opens the breaker (default 3).
	Threshold int
	// Cooldown is how long an open breaker rejects traffic before
	// admitting half-open trial requests (default 5s).
	Cooldown time.Duration
	// HalfOpenMax bounds how many trial requests may probe a half-open
	// worker concurrently (default 1).
	HalfOpenMax int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenMax <= 0 {
		c.HalfOpenMax = 1
	}
	return c
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-worker circuit breaker: closed (normal traffic) →
// open after Threshold consecutive data-path failures (reject
// immediately, sparing the fleet doomed round trips and the worker a
// retry storm) → half-open after Cooldown (admit up to HalfOpenMax
// concurrent trials; one success closes, one failure re-opens). It
// replaces the old one-way markDown-until-next-Refresh: a worker that
// recovers gets traffic back at the next cooldown without waiting for
// a probe cycle or a manual Refresh.
type breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       breakerState
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // last transition into open
	trials      int       // in-flight half-open trials
	opens       int64     // cumulative open transitions (stats)
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// openLocked transitions to open (from any state) stamping now.
func (b *breaker) openLocked(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.consecutive = 0
	b.trials = 0
	b.opens++
}

// Admit asks to send one request through the breaker. When admitted it
// returns a release callback the caller MUST invoke with the request's
// health outcome (ok=true for success — or for failures that say
// nothing about worker health, like a cancelled hedge loser or a 4xx).
func (b *breaker) Admit() (release func(ok bool), admitted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return b.releaseClosed, true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			return nil, false
		}
		b.state = breakerHalfOpen
		b.trials = 1
		return b.releaseTrial, true
	default: // half-open
		if b.trials >= b.cfg.HalfOpenMax {
			return nil, false
		}
		b.trials++
		return b.releaseTrial, true
	}
}

// releaseClosed settles a request admitted while closed. The state may
// have moved on (another request opened the breaker, a trial closed it
// again); outcomes only count against the state they were admitted in.
func (b *breaker) releaseClosed(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		return
	}
	if ok {
		b.consecutive = 0
		return
	}
	if b.consecutive++; b.consecutive >= b.cfg.Threshold {
		b.openLocked(time.Now())
	}
}

// releaseTrial settles a half-open trial: success closes the breaker,
// failure re-opens it with a fresh cooldown.
func (b *breaker) releaseTrial(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.trials > 0 {
		b.trials--
	}
	if b.state != breakerHalfOpen {
		return
	}
	if ok {
		b.state = breakerClosed
		b.consecutive = 0
		b.trials = 0
	} else {
		b.openLocked(time.Now())
	}
}

// peek reports the current state and whether a request would currently
// be admitted, without mutating anything — the routing layer uses it
// to compute model availability and holder preference order.
func (b *breaker) peek() (state breakerState, allows bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return breakerClosed, true
	case breakerOpen:
		return breakerOpen, time.Since(b.openedAt) >= b.cfg.Cooldown
	default:
		return breakerHalfOpen, b.trials < b.cfg.HalfOpenMax
	}
}

// allows reports whether a request would currently be admitted.
func (b *breaker) allows() bool {
	_, ok := b.peek()
	return ok
}

// BreakerSnapshot is one worker's breaker state for stats reporting.
type BreakerSnapshot struct {
	State string `json:"state"`
	// ConsecutiveFailures is the current closed-state failure streak.
	ConsecutiveFailures int `json:"consecutiveFailures,omitempty"`
	// Opens counts closed/half-open → open transitions since startup.
	Opens int64 `json:"opens,omitempty"`
}

func (b *breaker) snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:               b.state.String(),
		ConsecutiveFailures: b.consecutive,
		Opens:               b.opens,
	}
}
