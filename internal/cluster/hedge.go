package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"runtime/debug"
	"sort"
	"time"

	"copse"
)

// errAllBreakersOpen reports a call that could not be attempted at all:
// every holder's circuit breaker refused admission. Distinct from a
// call whose attempts all failed — the decode path uses the distinction
// to decide whether a breaker-bypassing last resort is worth it.
var errAllBreakersOpen = errors.New("cluster: every holder's circuit breaker is open")

// httpStatusError is a non-200 data-plane response, typed so the
// breaker layer can classify it: 5xx says the worker is unhealthy, 4xx
// says the request was at fault (and must not trip the breaker).
type httpStatusError struct {
	Status     int
	StatusLine string // e.g. "503 Service Unavailable"
	Msg        string
	RetryAfter string // Retry-After header of a 429, if the worker sent one
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("%s: %s", e.StatusLine, e.Msg)
}

// breakerSuccess classifies an attempt outcome for breaker accounting:
// only failures that indict the worker count. A cancelled attempt (the
// round was won by a hedge sibling, or the caller gave up) and a 4xx
// response say nothing about worker health.
func breakerSuccess(err error, rctx context.Context) bool {
	if err == nil {
		return true
	}
	if rctx != nil && rctx.Err() != nil {
		return true
	}
	var hs *httpStatusError
	if errors.As(err, &hs) {
		return hs.Status < http.StatusInternalServerError
	}
	return false
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitteredBackoff spreads a base backoff uniformly over [b/2, 3b/2) so
// concurrent retriers do not re-converge on the recovering worker in
// lockstep.
func jitteredBackoff(b time.Duration) time.Duration {
	return b/2 + time.Duration(rand.Int64N(int64(b)))
}

// attemptOutcome is one holder attempt's result.
type attemptOutcome[T any] struct {
	val T
	err error
}

// hedgedCall runs call against the holders in urls with the gateway's
// full resilience policy: per-worker breaker admission (closed-breaker
// holders preferred), hedged fan-out (a second attempt launches on the
// next holder after HedgeDelay without waiting for the first to fail),
// immediate failover on error, and up to cfg.Retries extra rounds with
// exponential backoff + jitter between them. The first success wins and
// cancels its losing siblings; losers cancelled this way do not count
// against their worker's breaker.
func hedgedCall[T any](g *Gateway, ctx context.Context, urls []string, call func(ctx context.Context, url string) (T, error)) (T, error) {
	var zero T
	if len(urls) == 0 {
		return zero, fmt.Errorf("no holders")
	}
	backoff := g.cfg.RetryBackoff
	var lastErr error
	admittedAny := false
	for round := 0; round <= g.cfg.Retries; round++ {
		if round > 0 {
			g.retries.Add(1)
			if err := sleepCtx(ctx, jitteredBackoff(backoff)); err != nil {
				return zero, err
			}
			backoff = min(2*backoff, 2*time.Second)
		}
		val, err, admitted := hedgedRound(g, ctx, urls, call)
		if admitted {
			admittedAny = true
			if err == nil {
				return val, nil
			}
			lastErr = err
		}
		if ctx.Err() != nil {
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			break
		}
	}
	if !admittedAny {
		return zero, errAllBreakersOpen
	}
	return zero, lastErr
}

// hedgedRound makes one pass over the admitted holders. It reports
// admitted=false when every breaker refused (nothing was attempted).
func hedgedRound[T any](g *Gateway, ctx context.Context, urls []string, call func(ctx context.Context, url string) (T, error)) (T, error, bool) {
	var zero T
	// Candidate order: healthy (closed-breaker) holders first, then
	// half-open/cooldown-elapsed ones as fallbacks for hedges and
	// failover.
	type candidate struct {
		url  string
		b    *breaker
		rank int
	}
	var candidates []candidate
	for _, url := range urls {
		b := g.breakerFor(url)
		state, allowed := b.peek()
		if !allowed {
			continue
		}
		rank := 0
		if state != breakerClosed {
			rank = 1
		}
		candidates = append(candidates, candidate{url: url, b: b, rank: rank})
	}
	sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].rank < candidates[j].rank })
	if len(candidates) == 0 {
		return zero, nil, false
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the full candidate set: losers finishing after the
	// winner returns must not block (goroutine leak).
	results := make(chan attemptOutcome[T], len(candidates))
	inflight := 0
	launch := func(c candidate) bool {
		release, ok := c.b.Admit()
		if !ok {
			return false
		}
		inflight++
		go func() {
			defer func() {
				if r := recover(); r != nil {
					g.panics.Add(1)
					release(false)
					results <- attemptOutcome[T]{err: &copse.InternalError{Op: "holder attempt", Value: r, Stack: debug.Stack()}}
				}
			}()
			val, err := call(rctx, c.url)
			release(breakerSuccess(err, rctx))
			results <- attemptOutcome[T]{val: val, err: err}
		}()
		return true
	}
	next := 0
	launchNext := func() bool {
		for next < len(candidates) {
			c := candidates[next]
			next++
			if launch(c) {
				return true
			}
		}
		return false
	}
	attempted := launchNext()
	if !attempted {
		return zero, nil, false
	}

	var hedgeC <-chan time.Time
	var hedgeTimer *time.Timer
	armHedge := func() {
		if hedgeTimer != nil {
			hedgeTimer.Stop()
			hedgeTimer, hedgeC = nil, nil
		}
		if g.cfg.HedgeDelay > 0 && next < len(candidates) {
			hedgeTimer = time.NewTimer(g.cfg.HedgeDelay)
			hedgeC = hedgeTimer.C
		}
	}
	armHedge()
	defer func() {
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
	}()

	var lastErr error
	for inflight > 0 {
		select {
		case out := <-results:
			inflight--
			if out.err == nil {
				return out.val, nil, true
			}
			lastErr = out.err
			if inflight == 0 && ctx.Err() == nil {
				// Immediate failover: the round still has untried
				// holders and nothing in flight.
				if launchNext() {
					g.retries.Add(1)
					armHedge()
				}
			}
		case <-hedgeC:
			if launchNext() {
				g.hedges.Add(1)
			}
			armHedge()
		case <-ctx.Done():
			return zero, ctx.Err(), true
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no holders")
	}
	return zero, lastErr, true
}

// stageWeights apportions a request's remaining deadline across the
// pipeline stages of one pass (DESIGN.md §15). Shares are recomputed
// from the live remaining budget at each stage boundary, so slack left
// by a fast stage flows to the stages after it.
var stageWeights = []struct {
	name string
	w    float64
}{
	{"encrypt", 0.15},
	{"fanout", 0.55},
	{"merge", 0.05},
	{"decode", 0.25},
}

// stageBudget derives stage's share of ctx's remaining deadline budget:
// remaining × w(stage) / Σ w(stage..last). Without a deadline it
// returns ctx unchanged. An exhausted budget fails fast with a typed
// *copse.DeadlineError instead of starting work that cannot finish.
func (g *Gateway) stageBudget(ctx context.Context, stage string) (context.Context, context.CancelFunc, error) {
	deadline, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}, nil
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		g.deadlineFails.Add(1)
		return nil, nil, &copse.DeadlineError{Stage: stage, Remaining: remaining}
	}
	var w, sum float64
	seen := false
	for _, s := range stageWeights {
		if s.name == stage {
			seen = true
			w = s.w
		}
		if seen {
			sum += s.w
		}
	}
	if !seen || sum == 0 {
		return ctx, func() {}, nil
	}
	share := time.Duration(float64(remaining) * w / sum)
	sctx, cancel := context.WithDeadline(ctx, time.Now().Add(share))
	return sctx, cancel, nil
}
