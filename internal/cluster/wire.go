// Package cluster implements COPSE's horizontal scale-out subsystem:
// worker nodes that own (model shard, key set) pairs and evaluate the
// classify pass, and a stateless gateway that routes by model name and
// key fingerprint, fans queries out to the workers holding a forest's
// shards, and merges the encrypted per-shard vote sums with plain
// level-2 adds (see core.ShardForest and DESIGN.md §12).
//
// This file is the wire layer: every object that crosses a process
// boundary — parameters, key material, ciphertext batches, model
// metadata — travels as a versioned, length-prefixed binary frame.
// The control plane (HTTP/JSON) carries frames base64-less as raw
// bodies; the data plane streams them directly over the socket.
package cluster

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"copse/internal/bgv"
	"copse/internal/core"
	"copse/internal/he/hebgv"
	"copse/internal/ring"
)

// Frame header: magic, version, kind, payload length. Little-endian
// throughout.
const (
	wireMagic   = "CPSW"
	WireVersion = 1

	// DefaultMaxFrameBytes bounds a frame so a corrupt or hostile
	// length prefix cannot drive an allocation: large enough for a
	// Security128 evaluation-key set, small enough to fail fast on
	// garbage. Override with SetMaxFrameBytes.
	DefaultMaxFrameBytes = 1 << 31

	// maxWireLevels supplements bgv.Params.Validate with a wire-level
	// sanity bound: Validate leaves Levels unbounded above (a local
	// caller can legitimately ask for a deep chain), but a frame
	// claiming hundreds of levels is certainly garbage, and the decoder
	// would pay prime generation and NTT table precomputation
	// proportional to the lie before any later check could catch it.
	maxWireLevels = 64
)

// maxFrameBytes is the live frame-size limit (see SetMaxFrameBytes).
var maxFrameBytes atomic.Int64

func init() { maxFrameBytes.Store(DefaultMaxFrameBytes) }

// MaxFrameBytes reports the current frame payload size limit.
func MaxFrameBytes() int64 { return maxFrameBytes.Load() }

// SetMaxFrameBytes bounds the payload size every frame decoder will
// accept (and the decompressed size of a key-material frame).
// Non-positive restores DefaultMaxFrameBytes. Safe for concurrent use.
func SetMaxFrameBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxFrameBytes
	}
	maxFrameBytes.Store(n)
}

// FrameSizeError is the typed error a decoder returns when a frame's
// declared (or decompressed) size exceeds the configured limit.
type FrameSizeError struct {
	Size, Limit int64
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("cluster: frame payload %d bytes exceeds limit %d", e.Size, e.Limit)
}

// TruncatedFrameError is the typed error a decoder returns when the
// stream or payload ends before the bytes its own header promised.
type TruncatedFrameError struct {
	What      string
	Want, Got int64
}

func (e *TruncatedFrameError) Error() string {
	return fmt.Sprintf("cluster: truncated %s: want %d bytes, got %d", e.What, e.Want, e.Got)
}

// Frame kinds.
const (
	KindParams uint16 = iota + 1
	KindKeyMaterial
	KindCiphertexts
	KindMeta
)

// WireVersionError is the typed error a decoder returns when a frame
// was produced by a newer wire version than this process understands.
type WireVersionError struct {
	Got, Supported uint16
}

func (e *WireVersionError) Error() string {
	return fmt.Sprintf("cluster: wire version %d not supported (max %d)", e.Got, e.Supported)
}

// writeFrame wraps a payload in the versioned header.
func writeFrame(w io.Writer, kind uint16, payload []byte) error {
	var hdr [12]byte
	copy(hdr[:4], wireMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], WireVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], kind)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, enforcing magic, version and kind.
func readFrame(r io.Reader, wantKind uint16) ([]byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("cluster: reading frame header: %w", err)
	}
	if string(hdr[:4]) != wireMagic {
		return nil, fmt.Errorf("cluster: bad frame magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v > WireVersion {
		return nil, &WireVersionError{Got: v, Supported: WireVersion}
	}
	if k := binary.LittleEndian.Uint16(hdr[6:8]); k != wantKind {
		return nil, fmt.Errorf("cluster: frame kind %d, want %d", k, wantKind)
	}
	n := int64(binary.LittleEndian.Uint32(hdr[8:12]))
	if limit := MaxFrameBytes(); n > limit {
		return nil, &FrameSizeError{Size: n, Limit: limit}
	}
	// Read incrementally (bytes.Buffer.ReadFrom grows as data arrives)
	// rather than allocating n bytes up front: a lying length prefix
	// then costs only as much memory as bytes actually received.
	var buf bytes.Buffer
	if got, err := io.CopyN(&buf, r, n); err != nil {
		return nil, fmt.Errorf("cluster: reading frame payload: %w",
			&TruncatedFrameError{What: "frame payload", Want: n, Got: got})
	}
	return buf.Bytes(), nil
}

// --- primitive writers/readers over a bytes.Buffer ---

func putU8(b *bytes.Buffer, v uint8) { b.WriteByte(v) }
func putU16(b *bytes.Buffer, v uint16) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	b.Write(t[:])
}
func putU32(b *bytes.Buffer, v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.Write(t[:])
}
func putU64(b *bytes.Buffer, v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.Write(t[:])
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = &TruncatedFrameError{
			What: fmt.Sprintf("payload (offset %d)", r.off),
			Want: int64(n),
			Got:  int64(len(r.b) - r.off),
		}
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("cluster: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return nil
}

// --- polynomials ---

// putPoly writes limbs, ring degree, NTT flag and raw residues.
func putPoly(b *bytes.Buffer, p *ring.Poly) {
	flags := uint8(0)
	if p.IsNTT {
		flags = 1
	}
	putU8(b, flags)
	putU16(b, uint16(len(p.Coeffs)))
	putU32(b, uint32(len(p.Coeffs[0])))
	for _, limb := range p.Coeffs {
		for _, c := range limb {
			putU64(b, c)
		}
	}
}

func (r *reader) poly() *ring.Poly {
	flags := r.u8()
	limbs := int(r.u16())
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if limbs < 1 || limbs > 64 || n < 1 || n > 1<<16 {
		r.err = fmt.Errorf("cluster: implausible poly shape (%d limbs, N=%d)", limbs, n)
		return nil
	}
	p := &ring.Poly{Coeffs: make([][]uint64, limbs), IsNTT: flags&1 != 0}
	for i := range p.Coeffs {
		raw := r.take(n * 8)
		if raw == nil {
			return nil
		}
		limb := make([]uint64, n)
		for j := range limb {
			limb[j] = binary.LittleEndian.Uint64(raw[j*8:])
		}
		p.Coeffs[i] = limb
	}
	return p
}

// --- parameters ---

func putParams(b *bytes.Buffer, p bgv.Params) {
	putU8(b, uint8(p.LogN))
	putU64(b, p.T)
	putU8(b, uint8(p.PrimeBits))
	putU16(b, uint16(p.Levels))
	putU8(b, uint8(p.DigitBits))
	// IntraOpWorkers is a local execution knob, not key material — it
	// deliberately does not travel.
}

func (r *reader) params() bgv.Params {
	return bgv.Params{
		LogN:      int(r.u8()),
		T:         r.u64(),
		PrimeBits: int(r.u8()),
		Levels:    int(r.u16()),
		DigitBits: int(r.u8()),
	}
}

// EncodeParams frames a parameter set. The prime chain itself never
// travels: bgv prime generation is deterministic, so Params alone
// reconstructs identical parameters on the far side.
func EncodeParams(w io.Writer, p bgv.Params) error {
	var b bytes.Buffer
	putParams(&b, p)
	return writeFrame(w, KindParams, b.Bytes())
}

// DecodeParams reads a parameter frame.
func DecodeParams(rd io.Reader) (bgv.Params, error) {
	payload, err := readFrame(rd, KindParams)
	if err != nil {
		return bgv.Params{}, err
	}
	r := &reader{b: payload}
	p := r.params()
	if err := r.done(); err != nil {
		return bgv.Params{}, err
	}
	if err := checkWireParams(p); err != nil {
		return bgv.Params{}, err
	}
	return p, p.Validate()
}

// wireParamsHook, when non-nil, gets a veto over decoded parameter
// sets before the decoder pays prime generation and NTT precompute.
// FuzzWireDecode installs one to keep per-input cost bounded; it is
// nil in production.
var wireParamsHook func(bgv.Params) error

// checkWireParams applies the wire-level sanity bounds a decoder must
// enforce on top of bgv.Params.Validate before paying the cost of
// parameter construction.
func checkWireParams(p bgv.Params) error {
	if p.Levels > maxWireLevels {
		return fmt.Errorf("cluster: implausible level count %d (wire max %d)", p.Levels, maxWireLevels)
	}
	if wireParamsHook != nil {
		return wireParamsHook(p)
	}
	return nil
}

// --- key material ---

func putSwitchingKey(b *bytes.Buffer, k *bgv.SwitchingKey) {
	putU16(b, uint16(len(k.B)))
	for d := range k.B {
		putPoly(b, k.B[d])
		putPoly(b, k.A[d])
	}
	// Shoup companion tables are derived data; the decoder rebuilds
	// them, halving the frame size.
}

func (r *reader) switchingKey(ctx *ring.Context) *bgv.SwitchingKey {
	digits := int(r.u16())
	if r.err != nil {
		return nil
	}
	if digits < 1 || digits > 64 {
		r.err = fmt.Errorf("cluster: implausible switching-key digit count %d", digits)
		return nil
	}
	k := &bgv.SwitchingKey{
		B:  make([]*ring.Poly, digits),
		A:  make([]*ring.Poly, digits),
		BS: make([]*ring.PolyShoup, digits),
		AS: make([]*ring.PolyShoup, digits),
	}
	for d := 0; d < digits; d++ {
		k.B[d] = r.poly()
		k.A[d] = r.poly()
		if r.err != nil {
			return nil
		}
		k.BS[d] = ctx.ShoupPoly(k.B[d])
		k.AS[d] = ctx.ShoupPoly(k.A[d])
	}
	return k
}

const (
	matHasSecret = 1 << iota
	matHasRelin
	matHasGalois
)

// EncodeKeyMaterial frames a key set. Secret and evaluation keys are
// optional — EncodeKeyMaterial(w, b.PublicMaterial()) produces the
// public scope a worker hands the gateway. The payload is gzipped: key
// polynomials are uniform mod q, but the frame is cold-path and the
// header overhead is negligible.
func EncodeKeyMaterial(w io.Writer, m *hebgv.Material) error {
	var b bytes.Buffer
	putParams(&b, m.Params)
	flags := uint8(0)
	if m.Secret != nil {
		flags |= matHasSecret
	}
	if m.Keys != nil && m.Keys.Relin != nil {
		flags |= matHasRelin
	}
	if m.Keys != nil && len(m.Keys.Galois) > 0 {
		flags |= matHasGalois
	}
	putU8(&b, flags)
	putPoly(&b, m.Public.B)
	putPoly(&b, m.Public.A)
	if flags&matHasSecret != 0 {
		putPoly(&b, m.Secret.S)
	}
	if flags&matHasRelin != 0 {
		putSwitchingKey(&b, m.Keys.Relin)
	}
	if flags&matHasGalois != 0 {
		putU32(&b, uint32(len(m.Keys.Galois)))
		for _, elt := range sortedElts(m.Keys.Galois) {
			putU64(&b, elt)
			putSwitchingKey(&b, m.Keys.Galois[elt])
		}
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(b.Bytes()); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return writeFrame(w, KindKeyMaterial, zbuf.Bytes())
}

// DecodeKeyMaterial reads a key-material frame, rebuilding the derived
// Shoup tables against the (deterministically regenerated) prime chain.
func DecodeKeyMaterial(rd io.Reader) (*hebgv.Material, error) {
	payload, err := readFrame(rd, KindKeyMaterial)
	if err != nil {
		return nil, err
	}
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("cluster: key material not gzipped: %w", err)
	}
	// Bound the decompressed size too: gzip can expand ~1000:1, so a
	// small in-limit frame could otherwise balloon far past the frame
	// budget (a classic decompression bomb).
	limit := MaxFrameBytes()
	raw, err := io.ReadAll(io.LimitReader(zr, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(raw)) > limit {
		return nil, &FrameSizeError{Size: int64(len(raw)), Limit: limit}
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}
	r := &reader{b: raw}
	p := r.params()
	if r.err != nil {
		return nil, r.err
	}
	if err := checkWireParams(p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	params, err := bgv.NewParameters(p)
	if err != nil {
		return nil, err
	}
	ctx := params.RingCtx
	m := &hebgv.Material{Params: p}
	flags := r.u8()
	m.Public = &bgv.PublicKey{B: r.poly(), A: r.poly()}
	if flags&matHasSecret != 0 {
		m.Secret = &bgv.SecretKey{S: r.poly()}
	}
	if flags&(matHasRelin|matHasGalois) != 0 {
		m.Keys = &bgv.EvaluationKeys{Galois: map[uint64]*bgv.SwitchingKey{}}
	}
	if flags&matHasRelin != 0 {
		m.Keys.Relin = r.switchingKey(ctx)
	}
	if flags&matHasGalois != 0 {
		n := int(r.u32())
		if r.err == nil && n > 1<<20 {
			r.err = fmt.Errorf("cluster: implausible Galois key count %d", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			elt := r.u64()
			m.Keys.Galois[elt] = r.switchingKey(ctx)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// sortedElts returns the Galois elements in ascending order so encoding
// is deterministic (map iteration is not).
func sortedElts(g map[uint64]*bgv.SwitchingKey) []uint64 {
	elts := make([]uint64, 0, len(g))
	for e := range g {
		elts = append(elts, e)
	}
	for i := 1; i < len(elts); i++ {
		for j := i; j > 0 && elts[j] < elts[j-1]; j-- {
			elts[j], elts[j-1] = elts[j-1], elts[j]
		}
	}
	return elts
}

// KeyFingerprint is the routing identity of a key set: the hex SHA-256
// of its encoded public key. Workers holding shards of the same forest
// must agree on it before the gateway fans a query out.
func KeyFingerprint(m *hebgv.Material) (string, error) {
	var b bytes.Buffer
	putParams(&b, m.Params)
	putPoly(&b, m.Public.B)
	putPoly(&b, m.Public.A)
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// --- ciphertext batches ---

// WireCiphertext is one ciphertext plus the backend bookkeeping that
// travels with it.
type WireCiphertext struct {
	Ct *bgv.Ciphertext
	// Depth is the accumulated multiplicative depth (he.Ciphertext's
	// Depth contract).
	Depth int
}

// EncodeCiphertexts frames a batch of ciphertexts — the data plane's
// payload for both query fan-out and result return.
func EncodeCiphertexts(w io.Writer, cts []WireCiphertext) error {
	var b bytes.Buffer
	putU32(&b, uint32(len(cts)))
	for _, wc := range cts {
		putU16(&b, uint16(wc.Depth))
		putU64(&b, math.Float64bits(wc.Ct.NoiseBits))
		putU8(&b, uint8(len(wc.Ct.C)))
		for _, p := range wc.Ct.C {
			putPoly(&b, p)
		}
	}
	return writeFrame(w, KindCiphertexts, b.Bytes())
}

// DecodeCiphertexts reads a ciphertext-batch frame.
func DecodeCiphertexts(rd io.Reader) ([]WireCiphertext, error) {
	payload, err := readFrame(rd, KindCiphertexts)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	n := int(r.u32())
	if r.err == nil && n > 1<<20 {
		return nil, fmt.Errorf("cluster: implausible ciphertext count %d", n)
	}
	out := make([]WireCiphertext, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		wc := WireCiphertext{Depth: int(r.u16())}
		noise := math.Float64frombits(r.u64())
		polys := int(r.u8())
		if r.err != nil {
			break
		}
		if polys < 2 || polys > 8 {
			return nil, fmt.Errorf("cluster: implausible ciphertext degree %d", polys-1)
		}
		wc.Ct = &bgv.Ciphertext{NoiseBits: noise, C: make([]*ring.Poly, polys)}
		for j := 0; j < polys; j++ {
			wc.Ct.C[j] = r.poly()
		}
		out = append(out, wc)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- model metadata ---

// EncodeMeta frames a model's Meta (including its level plan) for the
// control plane: what the gateway needs to encrypt query batches and
// decode merged results. Gob matches the artifact encoding, so every
// Meta evolution that keeps artifacts loadable keeps the wire loadable.
func EncodeMeta(w io.Writer, m *core.Meta) error {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(m); err != nil {
		return fmt.Errorf("cluster: encoding meta: %w", err)
	}
	return writeFrame(w, KindMeta, b.Bytes())
}

// DecodeMeta reads a Meta frame.
func DecodeMeta(rd io.Reader) (*core.Meta, error) {
	payload, err := readFrame(rd, KindMeta)
	if err != nil {
		return nil, err
	}
	m := &core.Meta{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(m); err != nil {
		return nil, fmt.Errorf("cluster: decoding meta: %w", err)
	}
	return m, nil
}
