package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"copse"
	"copse/internal/chaos"
	"copse/internal/core"
	"copse/internal/he/hebgv"
)

// TestChaosSoak is the fault-injection acceptance run (DESIGN.md §15):
// a 2-worker BGV cluster with both shards replicated on both workers,
// a seeded chaos transport injecting latency spikes, connection
// resets, 503 bursts and garbled frames, and one worker killed and
// restarted mid-run. Every request must either succeed bit-correct
// against a single-node reference or fail typed; the killed worker's
// breaker must reopen traffic after recovery without a manual Refresh;
// and no goroutines may leak. The 2× pre-chaos latency assertion is
// gated by COPSE_CHAOS_SOAK=1 — wall-clock bounds don't belong in the
// default unit run.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs full BGV passes")
	}
	f := clusterForest(t, 55)
	c, err := core.Compile(f, core.Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	shards, manifest, err := core.ShardForest(c, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Both workers hold BOTH shards: full replication, so the cluster
	// can serve every request throughout the kill window.
	var workers []*Worker
	var servers []*httptest.Server
	var killed atomic.Bool // worker 1's kill switch
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{Seed: 71, MaxInFlight: 4})
		for _, s := range shards {
			if err := w.AddShard("forest", manifest, s); err != nil {
				t.Fatalf("worker %d AddShard: %v", i, err)
			}
		}
		workers = append(workers, w)
		h := w.Handler()
		var wrapped http.Handler = h
		if i == 1 {
			wrapped = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
				if killed.Load() {
					panic(http.ErrAbortHandler) // drop the connection like a dead process
				}
				h.ServeHTTP(rw, r)
			})
		}
		srv := httptest.NewServer(wrapped)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, w := range workers {
			w.Close()
		}
	}()

	sched := chaos.NewSchedule(chaos.Config{
		Seed: 17,
		Default: chaos.Rates{
			Latency: 0.25, LatencyMin: 5 * time.Millisecond, LatencyMax: 20 * time.Millisecond,
			Reset: 0.08, ServerError: 0.03, Garble: 0.03,
		},
	})
	// Dedicated transport so the leak check can flush this test's idle
	// connection pool without touching other tests' clients.
	inner := http.DefaultTransport.(*http.Transport).Clone()
	gw := NewGateway(GatewayConfig{
		Workers:        []string{servers[0].URL, servers[1].URL},
		RequestTimeout: 10 * time.Minute,
		ProbeInterval:  time.Hour, // recovery must come from the breakers, not the prober
		Breaker:        BreakerConfig{Threshold: 3, Cooldown: 150 * time.Millisecond},
		Retries:        6,
		RetryBackoff:   20 * time.Millisecond,
		HedgeDelay:     150 * time.Millisecond,
		Client:         &http.Client{Transport: &chaos.RoundTripper{Inner: inner, Sched: sched}},
	})
	defer gw.Close()
	if err := gw.Refresh(context.Background()); err != nil {
		t.Fatalf("gateway refresh: %v", err)
	}

	// Fixed query pool with single-node reference answers.
	ref := copse.NewService(copse.WithScenario(copse.ScenarioServerModel), copse.WithSeed(7))
	defer ref.Close()
	if err := ref.Register("forest", c); err != nil {
		t.Fatal(err)
	}
	pool := [][]uint64{{3, 9, 14}, {0, 1, 2}, {15, 7, 11}, {8, 8, 8}, {1, 13, 5}, {12, 2, 9}}
	want, err := ref.ClassifyBatch(context.Background(), "forest", pool)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-chaos latency baseline (warm: keys fetched, histograms primed)
	// and the goroutine baseline at cluster steady state.
	warmStart := time.Now()
	if _, _, err := gw.Classify(context.Background(), "forest", pool[:1]); err != nil {
		t.Fatalf("warm classify: %v", err)
	}
	baseline := time.Since(warmStart)
	baseGoroutines := runtime.NumGoroutine()

	// Soak: concurrent clients under armed chaos, with worker 1 killed
	// and restarted mid-run.
	sched.Arm(true)
	const clients, perClient = 4, 2
	type outcome struct {
		query   int
		results []DecodedResult
		err     error
		elapsed time.Duration
	}
	outcomes := make(chan outcome, clients*perClient)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				qi := (i*perClient + j) % len(pool)
				start := time.Now()
				results, _, err := gw.Classify(context.Background(), "forest", pool[qi:qi+1])
				outcomes <- outcome{query: qi, results: results, err: err, elapsed: time.Since(start)}
			}
		}(i)
	}
	// Kill worker 1 while requests are in flight, then bring it back.
	time.Sleep(500 * time.Millisecond)
	killed.Store(true)
	time.Sleep(3 * time.Second)
	killed.Store(false)
	wg.Wait()
	close(outcomes)
	sched.Arm(false)

	var failures int
	var slowest time.Duration
	for out := range outcomes {
		if out.err != nil {
			failures++
			t.Errorf("soak classify of query %d failed: %v", out.query, out.err)
			continue
		}
		if len(out.results) != 1 {
			t.Fatalf("query %d: %d results", out.query, len(out.results))
		}
		res, exp := out.results[0], want[out.query]
		if !reflect.DeepEqual(res.Votes, exp.Votes) || !reflect.DeepEqual(res.PerTree, exp.PerTree) {
			t.Errorf("query %d answered WRONG under chaos: votes %v / perTree %v, want %v / %v",
				out.query, res.Votes, res.PerTree, exp.Votes, exp.PerTree)
		}
		slowest = max(slowest, out.elapsed)
	}
	if sched.Injected() == 0 {
		t.Error("soak ran without a single injected fault")
	}
	if gw.retries.Load() == 0 && gw.hedges.Load() == 0 {
		t.Error("soak survived the kill window without any retry or hedge")
	}
	if b := gw.breakerFor(servers[1].URL); b.snapshot().Opens == 0 {
		t.Error("killed worker never tripped its breaker")
	}
	t.Logf("soak: slowest request %v against pre-chaos baseline %v", slowest, baseline)

	// Recovery: with chaos disarmed and worker 1 back, the breaker must
	// reopen traffic on its own — no Refresh. Hedged attempts (the BGV
	// pass takes well over HedgeDelay) probe the half-open breaker until
	// a success closes it.
	recovered := false
	var healthyLatency time.Duration
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		start := time.Now()
		if _, _, err := gw.Classify(context.Background(), "forest", pool[:1]); err != nil {
			t.Fatalf("post-chaos classify: %v", err)
		}
		healthyLatency = time.Since(start)
		if snap := gw.breakerFor(servers[1].URL).snapshot(); snap.State == "closed" {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Error("restarted worker's breaker never closed without a manual Refresh")
	}
	// In-budget requests against the recovered cluster must be back
	// within 2x the pre-chaos latency (wall-clock assertions are gated:
	// they don't belong in the default unit run).
	if os.Getenv("COPSE_CHAOS_SOAK") == "1" && healthyLatency > 2*baseline {
		t.Errorf("post-recovery request %v exceeds 2x pre-chaos baseline %v", healthyLatency, baseline)
	}

	// No goroutine leaks: everything in flight (hedge losers, shard
	// fan-outs, batcher passes) must settle. Pooled idle connections
	// are not leaks — flush them first.
	inner.CloseIdleConnections()
	settleDeadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(settleDeadline) {
		if runtime.NumGoroutine() <= baseGoroutines+8 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutines leaked: %d at start, %d after settle\n%s",
		baseGoroutines, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestWorkerOverload429: a worker with one execution slot and a
// one-deep queue must shed a burst with HTTP 429 + Retry-After — the
// typed overload surface the gateway passes through to clients —
// while the admitted requests still answer.
func TestWorkerOverload429(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV worker round trip is slow")
	}
	f := clusterForest(t, 56)
	c, err := core.Compile(f, core.Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	shards, manifest, err := core.ShardForest(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(WorkerConfig{Seed: 72, MaxInFlight: 1, ShedQueue: 1})
	defer w.Close()
	if err := w.AddShard("forest", manifest, shards[0]); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	// Build a valid query frame with a client backend sharing the
	// worker's key material.
	client, err := hebgv.NewFromMaterial(hebgv.Config{Seed: 9}, w.Material())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	q, err := core.PrepareQueryBatch(client, &manifest.Meta, [][]uint64{{3, 9, 14}}, true)
	if err != nil {
		t.Fatal(err)
	}
	wcs := make([]WireCiphertext, len(q.Bits))
	for i, op := range q.Bits {
		raw, depth, err := client.ExportCiphertext(op.Ct)
		if err != nil {
			t.Fatal(err)
		}
		wcs[i] = WireCiphertext{Ct: raw, Depth: depth}
	}
	var frame bytes.Buffer
	if err := EncodeCiphertexts(&frame, wcs); err != nil {
		t.Fatal(err)
	}

	target := fmt.Sprintf("%s/v1/cluster/classify?model=forest&shard=0&batch=1", srv.URL)
	const burst = 8
	var wg sync.WaitGroup
	var okCount, shedCount atomic.Int64
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(target, "application/octet-stream", bytes.NewReader(frame.Bytes()))
			if err != nil {
				t.Errorf("burst post: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				okCount.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
				shedCount.Add(1)
			default:
				t.Errorf("burst got unexpected status %s", resp.Status)
			}
		}()
	}
	wg.Wait()
	if shedCount.Load() == 0 {
		t.Errorf("burst of %d over capacity 1+1 produced no 429", burst)
	}
	if okCount.Load() == 0 {
		t.Error("burst shed everything; admitted passes should answer")
	}
	if st := w.Service().Stats(); st.Shed != shedCount.Load() {
		t.Errorf("worker stats shed %d, observed %d", st.Shed, shedCount.Load())
	}
}
