package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"copse/internal/he"
	"copse/internal/he/heclear"
	"copse/internal/model"
)

// TestArtifactV1BackwardCompat: a v1 artifact (naive-kernel staging, no
// BSGS fields) must still load, and its zero-valued BSGS fields must
// select the naive kernel it was staged for.
func TestArtifactV1BackwardCompat(t *testing.T) {
	c, err := Compile(model.Figure1(), Options{Slots: 64, NoBSGS: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, c); err != nil {
		t.Fatal(err)
	}
	// Rewrite the header to the v1 magic: the payload encoding is the
	// same (gob), which is exactly what the compatibility claim rests on.
	raw := buf.Bytes()
	copy(raw, artifactMagicV1)
	back, err := ReadArtifact(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("reading v1-tagged artifact: %v", err)
	}
	if back.Meta.UseBSGS {
		t.Error("naive-staged artifact reports BSGS")
	}
	if back.Meta.B != c.Meta.B || len(back.Meta.RotationSteps) != len(c.Meta.RotationSteps) {
		t.Error("v1 round trip changed meta")
	}
}

func TestArtifactV2CarriesBSGSPlan(t *testing.T) {
	c, err := Compile(model.Figure1(), Options{Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), artifactMagic) {
		t.Errorf("artifact header = %q", buf.String()[:8])
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Meta.UseBSGS || len(back.Meta.BSGSPlans) == 0 {
		t.Error("BSGS staging lost in round trip")
	}
	baby, giant, ok := back.Meta.BSGSFor(back.Meta.BPad)
	if !ok || baby*giant != back.Meta.BPad {
		t.Errorf("BSGSFor(BPad=%d) = (%d, %d, %v)", back.Meta.BPad, baby, giant, ok)
	}
	// The BSGS step set must be strictly smaller than the naive one for
	// this model (q̂=8, b̂=8: 1..7 plus replication vs baby+giant steps).
	naive, err := Compile(model.Figure1(), Options{Slots: 64, NoBSGS: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Meta.RotationSteps) >= len(naive.Meta.RotationSteps) {
		t.Errorf("BSGS step set (%d) not smaller than naive (%d)",
			len(back.Meta.RotationSteps), len(naive.Meta.RotationSteps))
	}
}

// TestArtifactV3CarriesLevelPlan: the current format round-trips the
// static level schedule.
func TestArtifactV3CarriesLevelPlan(t *testing.T) {
	c, err := Compile(model.Figure1(), Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta.LevelPlan == nil {
		t.Fatal("no level plan compiled")
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.LevelPlan == nil {
		t.Fatal("level plan lost in round trip")
	}
	if !reflect.DeepEqual(back.Meta.LevelPlan, c.Meta.LevelPlan) {
		t.Errorf("level plan changed in round trip: %+v vs %+v", back.Meta.LevelPlan, c.Meta.LevelPlan)
	}
}

// TestGoldenArtifactBackCompat: the committed golden v1 and v2 artifacts
// (written by the earlier format generations; see testdata) load, report
// no level plan — selecting the reactive fallback they were staged for —
// and classify correctly.
func TestGoldenArtifactBackCompat(t *testing.T) {
	forest := model.Figure1()
	for _, tc := range []struct {
		file    string
		useBSGS bool
	}{
		{"figure1_v1.copse", false},
		{"figure1_v2.copse", true},
	} {
		raw, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		c, err := ReadArtifact(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if c.Meta.LevelPlan != nil {
			t.Errorf("%s: pre-v3 artifact reports a level plan", tc.file)
		}
		if c.Meta.UseBSGS != tc.useBSGS {
			t.Errorf("%s: UseBSGS = %v, want %v", tc.file, c.Meta.UseBSGS, tc.useBSGS)
		}
		b := heclear.New(c.Meta.Slots, 65537)
		m, err := Prepare(b, c, true)
		if err != nil {
			t.Fatal(err)
		}
		if m.Plan != nil {
			t.Errorf("%s: reactive artifact staged with a plan", tc.file)
		}
		e := &Engine{Backend: b}
		for _, feats := range [][]uint64{{0, 5}, {6, 0}, {15, 15}} {
			want := forest.Classify(feats)
			q, err := PrepareQuery(b, &m.Meta, feats, true)
			if err != nil {
				t.Fatal(err)
			}
			out, _, err := e.Classify(m, q)
			if err != nil {
				t.Fatalf("%s: Classify(%v): %v", tc.file, feats, err)
			}
			slots, err := he.Reveal(b, out)
			if err != nil {
				t.Fatal(err)
			}
			res, err := DecodeResult(&m.Meta, slots)
			if err != nil {
				t.Fatal(err)
			}
			if res.PerTree[0] != want[0] {
				t.Errorf("%s: Classify(%v) = L%d, want L%d", tc.file, feats, res.PerTree[0], want[0])
			}
		}
	}
}
