package core

import (
	"bytes"
	"strings"
	"testing"

	"copse/internal/model"
)

// TestArtifactV1BackwardCompat: a v1 artifact (naive-kernel staging, no
// BSGS fields) must still load, and its zero-valued BSGS fields must
// select the naive kernel it was staged for.
func TestArtifactV1BackwardCompat(t *testing.T) {
	c, err := Compile(model.Figure1(), Options{Slots: 64, NoBSGS: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, c); err != nil {
		t.Fatal(err)
	}
	// Rewrite the header to the v1 magic: the payload encoding is the
	// same (gob), which is exactly what the compatibility claim rests on.
	raw := buf.Bytes()
	copy(raw, artifactMagicV1)
	back, err := ReadArtifact(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("reading v1-tagged artifact: %v", err)
	}
	if back.Meta.UseBSGS {
		t.Error("naive-staged artifact reports BSGS")
	}
	if back.Meta.B != c.Meta.B || len(back.Meta.RotationSteps) != len(c.Meta.RotationSteps) {
		t.Error("v1 round trip changed meta")
	}
}

func TestArtifactV2CarriesBSGSPlan(t *testing.T) {
	c, err := Compile(model.Figure1(), Options{Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "COPSEv2\n") {
		t.Errorf("artifact header = %q", buf.String()[:8])
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Meta.UseBSGS || len(back.Meta.BSGSPlans) == 0 {
		t.Error("BSGS staging lost in round trip")
	}
	baby, giant, ok := back.Meta.BSGSFor(back.Meta.BPad)
	if !ok || baby*giant != back.Meta.BPad {
		t.Errorf("BSGSFor(BPad=%d) = (%d, %d, %v)", back.Meta.BPad, baby, giant, ok)
	}
	// The BSGS step set must be strictly smaller than the naive one for
	// this model (q̂=8, b̂=8: 1..7 plus replication vs baby+giant steps).
	naive, err := Compile(model.Figure1(), Options{Slots: 64, NoBSGS: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Meta.RotationSteps) >= len(naive.Meta.RotationSteps) {
		t.Errorf("BSGS step set (%d) not smaller than naive (%d)",
			len(back.Meta.RotationSteps), len(naive.Meta.RotationSteps))
	}
}
