package core

import (
	"fmt"
	"math/rand/v2"

	"copse/internal/bits"
	"copse/internal/he"
	"copse/internal/matrix"
)

// Result shuffling (paper §7.2.2). Returning the raw leaf bitvector
// reveals the order of the labels in the forest's trees; the paper
// proposes — but does not implement — having the server apply a random
// permutation to the result vector (a plaintext-matrix × ciphertext-
// vector product) and permute the codebook identically, optionally
// padding both with random extra labels so leaf-per-label counts are
// hidden too. This file implements that extension.

// ShuffledCodebook is the public decoding table for a shuffled result.
type ShuffledCodebook struct {
	// Slots maps each result slot to a label index. Real leaves and
	// padding slots are indistinguishable to the data owner.
	Slots []int
	// NumTrees lets the data owner sanity-check the vote count.
	NumTrees int
}

// ShuffleResult permutes the leaf slots of an inference result and
// returns the permuted operand along with the matching codebook. padTo
// (≥ NumLeaves, ≤ slots) adds indistinguishable padding slots carrying
// random labels; 0 means NumLeaves (no padding). The permutation is
// drawn fresh from seed for each call; servers should use a different
// seed per query.
func ShuffleResult(b he.Backend, meta *Meta, result he.Operand, padTo int, seed uint64) (he.Operand, *ShuffledCodebook, error) {
	n := meta.NumLeaves
	if padTo == 0 {
		padTo = n
	}
	if padTo < n || padTo > b.Slots() {
		return he.Operand{}, nil, fmt.Errorf("core: shuffle padding %d out of range [%d, %d]", padTo, n, b.Slots())
	}
	rng := rand.New(rand.NewPCG(seed, 0x5f17))
	perm := rng.Perm(padTo)

	// Under a level schedule the shuffle runs at its scheduled entry
	// level: results arriving above it (reactive pipelines) are dropped
	// first, so the permutation's rotations and multiplies touch a
	// fraction of the chain. A result below the entry level cannot be
	// raised — reserving that headroom is a staging decision
	// (Options.PlanShuffle).
	level := -1
	if meta.LevelPlan != nil && result.IsCipher() {
		level = meta.LevelPlan.ShuffleLevel()
		if ld, ok := b.(he.LevelDropper); ok {
			cur, err := ld.CiphertextLevel(result.Ct)
			if err == nil && cur < level {
				return he.Operand{}, nil, fmt.Errorf(
					"core: result at level %d is below the shuffle's scheduled entry level %d; recompile with Options.PlanShuffle to reserve the headroom",
					cur, level)
			}
		}
		var err error
		if result, err = he.DropToLevel(b, result, level); err != nil {
			return he.Operand{}, nil, err
		}
	}

	// Permutation matrix P: slot j of the result lands in slot perm[j].
	// The BSGS layout keeps the rotation count at ~2·√nPad; its baby and
	// giant steps are a subset of the staged rotation-step set whether
	// the model was compiled with BSGS or not.
	nPad := bits.NextPow2(n)
	p := matrix.NewBool(padTo, nPad)
	for j := 0; j < n; j++ {
		p.Set(perm[j], j, 1)
	}
	baby, giant := matrix.BSGSSplit(nPad)
	diag, err := matrix.PrepareDiagonalsBSGSSpanAt(b, p, nPad, baby, giant, b.Slots(), false, level)
	if err != nil {
		return he.Operand{}, nil, err
	}
	// ShuffleResult permutes one classification: under the slot-packed
	// batch layout (capacity > 1) the blocks beyond entry 0 carry other
	// queries' results or idle-block residue, which a whole-ciphertext
	// replicate would fold into the sum — so select entry 0's leaf slots
	// first. The selector is public shape information the server already
	// holds (it prepares the permutation from the same meta). With
	// capacity 1 the result is already zero outside [0, NumLeaves) and
	// the plaintext multiply (and its BGV noise) is skipped.
	if meta.BatchCapacity() > 1 {
		sel := make([]uint64, b.Slots())
		for i := 0; i < n; i++ {
			sel[i] = 1
		}
		selOp, err := he.NewPlain(b, sel)
		if err != nil {
			return he.Operand{}, nil, err
		}
		result, err = he.Mul(b, result, selOp)
		if err != nil {
			return he.Operand{}, nil, err
		}
	}
	replicated, err := matrix.Replicate(b, result, nPad)
	if err != nil {
		return he.Operand{}, nil, err
	}
	// The permutation is server-local plaintext: zero diagonals can be
	// skipped without leaking anything about the model.
	shuffled, err := matrix.MatVec(b, diag, replicated, true)
	if err != nil {
		return he.Operand{}, nil, err
	}

	cb := &ShuffledCodebook{Slots: make([]int, padTo), NumTrees: meta.NumTrees}
	for i := range cb.Slots {
		cb.Slots[i] = rng.IntN(len(meta.LabelNames)) // padding: random labels
	}
	for j := 0; j < n; j++ {
		cb.Slots[perm[j]] = meta.Codebook[j]
	}
	return shuffled, cb, nil
}

// DecodeShuffled tallies votes from a shuffled result. Per-tree labels
// are unrecoverable by design (the tree boundaries are hidden); only the
// label vote counts — what the data owner legitimately learns — remain.
func DecodeShuffled(cb *ShuffledCodebook, numLabels int, slots []uint64) (*Result, error) {
	if len(slots) < len(cb.Slots) {
		return nil, fmt.Errorf("core: result has %d slots, codebook has %d", len(slots), len(cb.Slots))
	}
	r := &Result{Votes: make([]int, numLabels)}
	total := 0
	for i, label := range cb.Slots {
		bit := slots[i]
		if bit > 1 {
			return nil, fmt.Errorf("core: slot %d holds %d, not a bit", i, bit)
		}
		if bit == 1 {
			if label < 0 || label >= numLabels {
				return nil, fmt.Errorf("core: codebook slot %d label %d out of range", i, label)
			}
			r.Votes[label]++
			total++
		}
	}
	if total != cb.NumTrees {
		return nil, fmt.Errorf("core: %d leaves selected, want one per tree (%d)", total, cb.NumTrees)
	}
	return r, nil
}
