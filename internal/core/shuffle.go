package core

import (
	"fmt"
	"math/rand/v2"

	"copse/internal/bits"
	"copse/internal/he"
	"copse/internal/matrix"
)

// Result shuffling (paper §7.2.2). Returning the raw leaf bitvector
// reveals the order of the labels in the forest's trees; the paper
// proposes — but does not implement — having the server apply a random
// permutation to the result vector (a plaintext-matrix × ciphertext-
// vector product) and permute the codebook identically, optionally
// padding both with random extra labels so leaf-per-label counts are
// hidden too. This file implements that extension, in two shapes: the
// single-query ShuffleResult, and ShuffleResultBatch, which permutes
// every packed query of a slot-packed batch in one block-diagonal
// kernel pass (DESIGN.md §10).

// ShuffledCodebook is the public decoding table for a shuffled result.
type ShuffledCodebook struct {
	// Slots maps each result slot to a label index. Real leaves and
	// padding slots are indistinguishable to the data owner.
	Slots []int
	// NumTrees lets the data owner sanity-check the vote count.
	NumTrees int
}

// shuffleRNG returns the deterministic permutation stream for one batch
// block under a base seed. Block 0's stream is exactly the single-query
// ShuffleResult stream, so batch entry 0 of ShuffleResultBatch
// reproduces the single-query shuffle bit for bit; later blocks get
// independent streams (distinct PCG sequence constants), so no
// cross-query linkage exists between the per-block permutations.
func shuffleRNG(seed uint64, block int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x5f17+uint64(block)*0x9e3779b97f4a7c15))
}

// blockPermutation draws one block's permutation and matching codebook
// from rng: a permutation of padTo slots, padding slots filled with
// random labels, real leaves mapped through the model codebook. Both
// shuffle paths share this, which pins their streams together.
func blockPermutation(rng *rand.Rand, meta *Meta, padTo int) ([]int, *ShuffledCodebook) {
	perm := rng.Perm(padTo)
	cb := &ShuffledCodebook{Slots: make([]int, padTo), NumTrees: meta.NumTrees}
	for i := range cb.Slots {
		cb.Slots[i] = rng.IntN(len(meta.LabelNames)) // padding: random labels
	}
	for j := 0; j < meta.NumLeaves; j++ {
		cb.Slots[perm[j]] = meta.Codebook[j]
	}
	return perm, cb
}

// shuffleEntryDrop lowers a classification result to the shuffle's
// scheduled entry level (DESIGN.md §8): results arriving above it
// (reactive pipelines) are dropped first, so the permutation's rotations
// and multiplies touch a fraction of the chain. A result below the entry
// level cannot be raised — reserving that headroom is a staging decision
// (Options.PlanShuffle). Returns the dropped operand and the level the
// permutation diagonals should be staged at (-1 without a plan).
func shuffleEntryDrop(b he.Backend, meta *Meta, result he.Operand) (he.Operand, int, error) {
	level := -1
	if meta.LevelPlan == nil || !result.IsCipher() {
		return result, level, nil
	}
	level = meta.LevelPlan.ShuffleLevel()
	if ld, ok := b.(he.LevelDropper); ok {
		cur, err := ld.CiphertextLevel(result.Ct)
		if err == nil && cur < level {
			return he.Operand{}, 0, fmt.Errorf(
				"core: result at level %d is below the shuffle's scheduled entry level %d; recompile with Options.PlanShuffle to reserve the headroom",
				cur, level)
		}
	}
	result, err := he.DropToLevel(b, result, level)
	if err != nil {
		return he.Operand{}, 0, err
	}
	return result, level, nil
}

// ShuffleResult permutes the leaf slots of an inference result and
// returns the permuted operand along with the matching codebook. padTo
// (≥ NumLeaves, ≤ slots) adds indistinguishable padding slots carrying
// random labels; 0 means NumLeaves (no padding). The permutation is
// drawn fresh from seed for each call; servers should use a different
// seed per query. This is the single-query path: it shuffles batch
// entry 0 and discards the other blocks; ShuffleResultBatch shuffles
// every packed query in one pass.
func ShuffleResult(b he.Backend, meta *Meta, result he.Operand, padTo int, seed uint64) (he.Operand, *ShuffledCodebook, error) {
	n := meta.NumLeaves
	if padTo == 0 {
		padTo = n
	}
	if padTo < n || padTo > b.Slots() {
		return he.Operand{}, nil, fmt.Errorf("core: shuffle padding %d out of range [%d, %d]", padTo, n, b.Slots())
	}
	perm, cb := blockPermutation(shuffleRNG(seed, 0), meta, padTo)

	result, level, err := shuffleEntryDrop(b, meta, result)
	if err != nil {
		return he.Operand{}, nil, err
	}

	// Permutation matrix P: slot j of the result lands in slot perm[j].
	// The BSGS layout keeps the rotation count at ~2·√nPad; its baby and
	// giant steps are a subset of the staged rotation-step set whether
	// the model was compiled with BSGS or not.
	nPad := bits.NextPow2(n)
	p := matrix.NewBool(padTo, nPad)
	for j := 0; j < n; j++ {
		p.Set(perm[j], j, 1)
	}
	baby, giant := matrix.BSGSSplit(nPad)
	diag, err := matrix.PrepareDiagonalsBSGSSpanAt(b, p, nPad, baby, giant, b.Slots(), false, level)
	if err != nil {
		return he.Operand{}, nil, err
	}
	// ShuffleResult permutes one classification: under the slot-packed
	// batch layout (capacity > 1) the blocks beyond entry 0 carry other
	// queries' results or idle-block residue, which a whole-ciphertext
	// replicate would fold into the sum — so select entry 0's leaf slots
	// first. The selector is public shape information the server already
	// holds (it prepares the permutation from the same meta). With
	// capacity 1 the result is already zero outside [0, NumLeaves) and
	// the plaintext multiply (and its BGV noise) is skipped.
	if meta.BatchCapacity() > 1 {
		sel := make([]uint64, b.Slots())
		for i := 0; i < n; i++ {
			sel[i] = 1
		}
		selOp, err := he.NewPlain(b, sel)
		if err != nil {
			return he.Operand{}, nil, err
		}
		result, err = he.Mul(b, result, selOp)
		if err != nil {
			return he.Operand{}, nil, err
		}
	}
	replicated, err := matrix.Replicate(b, result, nPad)
	if err != nil {
		return he.Operand{}, nil, err
	}
	// The permutation is server-local plaintext: zero diagonals can be
	// skipped without leaking anything about the model.
	shuffled, err := matrix.MatVec(b, diag, replicated, true)
	if err != nil {
		return he.Operand{}, nil, err
	}
	return shuffled, cb, nil
}

// ShuffleResultBatch permutes every packed query of a batched inference
// result in one homomorphic pass: each BatchBlock-wide slot block gets
// its own independently seeded permutation, staged together as a
// block-diagonal matrix through the span-blocked BSGS kernel, so one
// set of ≤ 2·√P+1 rotations shuffles all BatchCapacity blocks at once —
// the per-query shuffle cost drops by the batch factor. batch is the
// number of packed queries (Query.Batch); codebooks are returned for
// exactly those blocks, in packing order, with no cross-query linkage
// between their permutations. Idle blocks beyond the batch are permuted
// too (their residue stays hidden the same way), but their codebooks
// are discarded. padTo (0 means NumLeaves) may add padding slots up to
// Meta.SPad per block — the widest permutation one block can absorb
// without its diagonal reads crossing into the neighbouring query —
// or up to the full slot count when the layout is single-block. workers
// parallelizes the kernel's giant-step groups (1 = sequential).
//
// The result operand must come from the classification pipeline (each
// block zero outside its leaf slots); under a level schedule it is
// dropped to the shuffle's scheduled entry level first, exactly like
// ShuffleResult.
func ShuffleResultBatch(b he.Backend, meta *Meta, result he.Operand, batch, padTo int, seed uint64, workers int) (he.Operand, []*ShuffledCodebook, error) {
	n := meta.NumLeaves
	if padTo == 0 {
		padTo = n
	}
	capacity := meta.BatchCapacity()
	if batch < 1 || batch > capacity {
		return he.Operand{}, nil, &BatchCapacityError{Index: batch, Capacity: capacity}
	}
	span := meta.BatchBlock()
	maxPad := meta.SPad()
	if span == b.Slots() {
		maxPad = b.Slots() // single block: the rotation wrap covers wide paddings
	}
	if padTo < n || padTo > maxPad {
		return he.Operand{}, nil, fmt.Errorf("core: batched shuffle padding %d out of range [%d, %d]", padTo, n, maxPad)
	}

	result, level, err := shuffleEntryDrop(b, meta, result)
	if err != nil {
		return he.Operand{}, nil, err
	}

	// One permutation matrix per block, every block independently seeded.
	nPad := bits.NextPow2(n)
	mats := make([]*matrix.Bool, capacity)
	cbs := make([]*ShuffledCodebook, batch)
	for k := 0; k < capacity; k++ {
		perm, cb := blockPermutation(shuffleRNG(seed, k), meta, padTo)
		p := matrix.NewBool(padTo, nPad)
		for j := 0; j < n; j++ {
			p.Set(perm[j], j, 1)
		}
		mats[k] = p
		if k < batch {
			cbs[k] = cb
		}
	}
	baby, giant := matrix.BSGSSplit(nPad)
	diag, err := matrix.PrepareDiagonalsBSGSBlocksAt(b, mats, nPad, baby, giant, span, false, level)
	if err != nil {
		return he.Operand{}, nil, err
	}
	// Each block is zero outside its leaf slots, so the block-local
	// replication needs no selector mask: every query's payload is made
	// nPad-periodic within its own block (log2(span/nPad) rotations for
	// the whole batch), blocks never mix, and the block-diagonal kernel
	// then applies each block's own permutation. The permutations are
	// server-local plaintext, so zero diagonals are skippable.
	replicated, err := matrix.ReplicateWithin(b, result, nPad, span)
	if err != nil {
		return he.Operand{}, nil, err
	}
	shuffled, err := matrix.MatVecBSGS(b, diag, replicated, true, workers, true)
	if err != nil {
		return he.Operand{}, nil, err
	}
	return shuffled, cbs, nil
}

// DecodeShuffled tallies votes from a shuffled result. Per-tree labels
// are unrecoverable by design (the tree boundaries are hidden); only the
// label vote counts — what the data owner legitimately learns — remain.
func DecodeShuffled(cb *ShuffledCodebook, numLabels int, slots []uint64) (*Result, error) {
	if len(slots) < len(cb.Slots) {
		return nil, fmt.Errorf("core: result has %d slots, codebook has %d", len(slots), len(cb.Slots))
	}
	r := &Result{Votes: make([]int, numLabels)}
	total := 0
	for i, label := range cb.Slots {
		bit := slots[i]
		if bit > 1 {
			return nil, fmt.Errorf("core: slot %d holds %d, not a bit", i, bit)
		}
		if bit == 1 {
			if label < 0 || label >= numLabels {
				return nil, fmt.Errorf("core: codebook slot %d label %d out of range", i, label)
			}
			r.Votes[label]++
			total++
		}
	}
	if total != cb.NumTrees {
		return nil, fmt.Errorf("core: %d leaves selected, want one per tree (%d)", total, cb.NumTrees)
	}
	return r, nil
}

// DecodeShuffledBatch tallies votes for every packed query of a batched
// shuffled result: entry k decodes the window starting at slot k·block
// (block is Meta.BatchBlock) through its own codebook, in the order the
// batch was packed and the codebooks were returned.
func DecodeShuffledBatch(cbs []*ShuffledCodebook, numLabels int, slots []uint64, block int) ([]*Result, error) {
	if len(cbs) == 0 {
		return nil, fmt.Errorf("core: batch decode with no codebooks")
	}
	if block <= 0 {
		return nil, fmt.Errorf("core: batch decode with block width %d", block)
	}
	out := make([]*Result, len(cbs))
	for k, cb := range cbs {
		off := k * block
		if cb == nil {
			return nil, fmt.Errorf("core: batch entry %d has no codebook", k)
		}
		if len(slots) < off+len(cb.Slots) {
			return nil, fmt.Errorf("core: result has %d slots, batch entry %d needs %d", len(slots), k, off+len(cb.Slots))
		}
		r, err := DecodeShuffled(cb, numLabels, slots[off:])
		if err != nil {
			return nil, fmt.Errorf("core: batch entry %d: %w", k, err)
		}
		out[k] = r
	}
	return out, nil
}
