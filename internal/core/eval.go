package core

import (
	"context"
	"fmt"
	"time"

	"copse/internal/he"
	"copse/internal/matrix"
	"copse/internal/seccomp"
)

// ModelOperands is a compiled model loaded onto a backend: every
// component is an operand, either encrypted (Maurice keeps the model
// secret from Sally) or plaintext (Maurice *is* Sally, Figure 9's fast
// configuration).
type ModelOperands struct {
	Meta       Meta
	Thresholds []he.Operand // p bit planes, slot-periodic with period QPad
	Reshuffle  *matrix.Diagonals
	Levels     []*matrix.Diagonals
	Masks      []he.Operand
	Encrypted  bool
	// Plan is the scenario-resolved level schedule the operands were
	// staged at (thresholds at Plan.Compare, reshuffle diagonals at
	// Plan.Reshuffle, and so on); nil means reactive staging at the top
	// of the chain, and the engine then skips its boundary drops.
	Plan *StageLevels
	// Program is the specialized op program compiled from the artifact
	// at Prepare time (DESIGN.md §13); nil when the model's staging
	// falls outside the specializer's coverage, in which case the
	// engine keeps the generic interpreter.
	Program *Program
}

// Prepare loads c onto backend b. With encrypt=true all model components
// are encrypted; otherwise they are encoded plaintexts. Operands are
// staged at the compiled level schedule when the model carries one; use
// PrepareWithPlan to override (nil = reactive).
func Prepare(b he.Backend, c *Compiled, encrypt bool) (*ModelOperands, error) {
	return PrepareWithPlan(b, c, encrypt, c.Meta.LevelPlan)
}

// PrepareWithPlan is Prepare under an explicit level schedule: every
// model component is produced directly at the level its pipeline stage
// executes at — encrypted components via leveled encryption, plaintext
// components via eager pre-lifting — so no per-query work remains to put
// operands on schedule. A nil plan stages reactively at the chain top
// (the pre-level-scheduling behaviour, and the -nolevelplan ablation).
func PrepareWithPlan(b he.Backend, c *Compiled, encrypt bool, plan *LevelPlan) (*ModelOperands, error) {
	if c.Meta.Slots != b.Slots() {
		return nil, fmt.Errorf("core: model staged for %d slots but backend has %d", c.Meta.Slots, b.Slots())
	}
	m := &ModelOperands{Meta: c.Meta, Encrypted: encrypt}
	level := func(sel func(StageLevels) int) int { return -1 }
	// Queries are packed against this meta (PrepareQueryBatch reads its
	// QueryLevel), so the staged meta must advertise exactly the schedule
	// the operands follow — the override plan, or none.
	m.Meta.LevelPlan = plan
	if plan != nil {
		stage := plan.For(encrypt)
		m.Plan = &stage
		level = func(sel func(StageLevels) int) int { return sel(stage) }
	}

	// Thresholds stay fully periodic: every block of the batched layout
	// reads the same QPad-periodic plane (BatchBlock is a multiple of
	// QPad), and the single-query layout is the one-block special case.
	for _, plane := range c.ThresholdBits {
		periodic := replicatePlain(plane, c.Meta.QPad, b.Slots())
		op, err := makeOperand(b, periodic, encrypt, level(func(s StageLevels) int { return s.Compare }))
		if err != nil {
			return nil, err
		}
		m.Thresholds = append(m.Thresholds, op)
	}

	// Stage each matrix for the kernel the compiler planned: pre-rotated
	// BSGS diagonals when a split was staged, naive diagonals otherwise
	// (old artifacts). Diagonals are replicated into every BatchBlock-wide
	// slot block so the kernels evaluate one independent product per
	// packed query (DESIGN.md §7); with batch capacity 1 the block is the
	// whole ciphertext and this is the original layout.
	span := c.Meta.BatchBlock()
	prep := func(mtx *matrix.Bool, period, at int) (*matrix.Diagonals, error) {
		if baby, giant, ok := c.Meta.BSGSFor(period); c.Meta.UseBSGS && ok {
			return matrix.PrepareDiagonalsBSGSSpanAt(b, mtx, period, baby, giant, span, encrypt, at)
		}
		return matrix.PrepareDiagonalsSpanAt(b, mtx, period, span, encrypt, at)
	}
	var err error
	m.Reshuffle, err = prep(c.Reshuffle, c.Meta.QPad, level(func(s StageLevels) int { return s.Reshuffle }))
	if err != nil {
		return nil, err
	}
	lvlAt := level(func(s StageLevels) int { return s.Level })
	for _, lm := range c.Levels {
		d, err := prep(lm, c.Meta.BPad, lvlAt)
		if err != nil {
			return nil, err
		}
		m.Levels = append(m.Levels, d)
	}
	var maskVals [][]uint64
	for _, mask := range c.Masks {
		padded := make([]uint64, b.Slots())
		for base := 0; base < len(padded); base += span {
			copy(padded[base:base+len(mask)], mask)
		}
		op, err := makeOperand(b, padded, encrypt, lvlAt)
		if err != nil {
			return nil, err
		}
		m.Masks = append(m.Masks, op)
		maskVals = append(maskVals, padded)
	}

	// Compile the specialized op program from the staged shapes. A nil
	// program (coverage gap: naive-diagonal stagings from old artifacts,
	// degenerate matrices) is not an error — the engine falls back to
	// the generic interpreter.
	if err := m.buildSpecialized(b, c, encrypt, maskVals); err != nil {
		return nil, err
	}
	return m, nil
}

// buildSpecialized compiles and binds the op program for freshly
// prepared operands, then resolves a linked generated kernel if one is
// registered for this artifact.
func (m *ModelOperands) buildSpecialized(b he.Backend, c *Compiled, encrypt bool, maskVals [][]uint64) error {
	in := progInputs{
		meta:      m.Meta,
		plan:      m.Plan,
		encrypted: encrypt,
		slots:     b.Slots(),
		planes:    len(c.ThresholdBits),
	}
	var ok bool
	if in.reshuffle, ok = diagShapeOf(m.Reshuffle); !ok {
		return nil
	}
	for _, d := range m.Levels {
		sh, lok := diagShapeOf(d)
		if !lok {
			return nil
		}
		in.levels = append(in.levels, sh)
	}
	if !encrypt {
		for _, plane := range c.ThresholdBits {
			in.threshVals = append(in.threshVals, replicatePlain(plane, c.Meta.QPad, b.Slots()))
		}
		in.maskVals = maskVals
	}
	p := buildProgram(in)
	if p == nil {
		return nil
	}
	if err := p.bind(b); err != nil {
		return fmt.Errorf("core: binding specialized program: %w", err)
	}
	p.kernel = lookupKernel(c, encrypt, p)
	m.Program = p
	return nil
}

func makeOperand(b he.Backend, vals []uint64, encrypt bool, level int) (he.Operand, error) {
	if encrypt {
		ct, err := he.EncryptAtLevel(b, vals, level)
		if err != nil {
			return he.Operand{}, err
		}
		return he.Cipher(ct), nil
	}
	return he.NewPlainAtLevel(b, vals, level)
}

// replicatePlain lays vals (logical width `period`, zero-padded) out
// periodically across all slots.
func replicatePlain(vals []uint64, period, slots int) []uint64 {
	out := make([]uint64, slots)
	for i := range out {
		if i%period < len(vals) {
			out[i] = vals[i%period]
		}
	}
	return out
}

// Engine runs Algorithm 1. The zero value is not usable; construct with
// a backend. An Engine holds no per-call state: Classify may be invoked
// from many goroutines concurrently over the same ModelOperands, as long
// as the backend honours the he.Backend concurrency contract (both
// shipped backends do).
type Engine struct {
	Backend he.Backend
	// Workers is the number of goroutines used inside each stage.
	// 1 (or 0) means single-threaded — the paper's sequential runs.
	Workers int
	// SkipZeroDiagonals enables the plaintext-model optimization of
	// skipping all-zero matrix diagonals. It is ignored for encrypted
	// models, where skipping would leak structure (§7.1).
	SkipZeroDiagonals bool
	// ReuseRotations hoists the rotations of the branch vector out of
	// the per-level matrix products, computing them once (a COPSE-Go
	// ablation; the paper's Table 1b counts them per level). It only
	// applies to the naive kernel: BSGS-staged models always share the
	// baby-step rotations across levels.
	ReuseRotations bool
	// DisableHoisting turns off hoisted key switching, issuing each
	// rotation independently — the ablation for the RotateHoisted fast
	// path. Default (false) hoists wherever rotations share a ciphertext.
	DisableHoisting bool
	// DisableLevelPlan ignores the staged level schedule and leaves
	// noise management fully reactive — the -nolevelplan ablation
	// (DESIGN.md §8). Operands staged reactively (ModelOperands.Plan ==
	// nil) imply it.
	DisableLevelPlan bool
	// DisableSpecialization skips the model's compiled op program and
	// runs the generic interpreter — the ablation baseline for the
	// specialized executor (`WithSpecialization(false)` / `copse-bench
	// -nospecialize`). Default (false) dispatches to the program (or a
	// linked generated kernel) whenever the model carries one and the
	// engine configuration matches its build-time assumptions.
	DisableSpecialization bool
	// MeasureNoise records the decrypt-side measured noise budget of the
	// carrier ciphertext at every stage boundary in Trace.Noise — the
	// measured-margin complement of the planner's estimates (it grounds
	// the flat slack in core/levelplan.go against reality). Measurement
	// decrypts, so it needs the secret key and costs one decryption per
	// stage: a harness knob (copse-bench -leveljson), not a serving-path
	// default. Ignored on backends without noise (the clear reference).
	MeasureNoise bool
}

// Trace records the per-stage timing and operation counts that
// Figure 10's breakdowns report.
type Trace struct {
	Compare, Reshuffle, Levels, Accumulate time.Duration
	Total                                  time.Duration
	CompareOps, ReshuffleOps               he.OpCounts
	LevelOps, AccumulateOps                he.OpCounts
	// Shuffle is the optional result-shuffle pass (paper §7.2.2) the
	// serving layer runs after the engine when shuffling is enabled;
	// zero otherwise. Its time is included in Total.
	Shuffle    time.Duration
	ShuffleOps he.OpCounts
	// Limbs is the level plan's runtime footprint (zero-valued on
	// backends without a modulus chain).
	Limbs StageLimbs
	// Noise is the decrypt-side measured noise budget at each stage
	// boundary, filled only under Engine.MeasureNoise (all -1 otherwise,
	// and on backends without noise).
	Noise StageNoise
	// Executor names the classify path that ran: "generic" (the
	// structure-rederiving interpreter), "program" (the specialized op
	// program), or "kernel" (a linked generated kernel).
	Executor string
}

// StageNoise records the measured remaining noise budget (bits) of the
// carrier ciphertext at the same boundaries StageLimbs reports limb
// counts for: the margin each stage actually leaves, versus the slack
// the planner's noise model reserves. -1 where not measured.
type StageNoise struct {
	// Query is the budget of the first query bit plane feeding compare.
	Query int
	// Decisions enters the reshuffle mat-vec.
	Decisions int
	// BranchVec enters the per-level mat-vecs.
	BranchVec int
	// LevelResult enters the accumulation product tree.
	LevelResult int
	// Result is the classification output (what decrypt sees).
	Result int
}

// StageLimbs records the active RNS limb count of the pipeline's
// carrier ciphertext entering each stage (after the boundary drop) and
// leaving the pipeline — the per-stage complement of OpCounts.LimbOps.
type StageLimbs struct {
	// Query is the limb count of the query bit planes feeding compare.
	Query int
	// Decisions enters the reshuffle mat-vec.
	Decisions int
	// BranchVec enters the per-level mat-vecs.
	BranchVec int
	// LevelResult enters the accumulation product tree.
	LevelResult int
	// Result is the classification output (what decrypt sees).
	Result int
}

// Classify evaluates the model on an encrypted query, returning the
// result operand (the N-hot leaf bitvector of §4.1.2) and a stage trace.
// It is ClassifyCtx without cancellation.
func (e *Engine) Classify(m *ModelOperands, q *Query) (he.Operand, *Trace, error) {
	return e.ClassifyCtx(context.Background(), m, q)
}

// ClassifyCtx evaluates the model on an encrypted query (or slot-packed
// query batch — the dataflow is identical), returning the result operand
// and a stage trace. The context is checked between pipeline stages, so
// a cancelled request stops before starting its next (expensive) stage;
// an already-running stage finishes first.
func (e *Engine) ClassifyCtx(ctx context.Context, m *ModelOperands, q *Query) (he.Operand, *Trace, error) {
	if len(q.Bits) != len(m.Thresholds) {
		return he.Operand{}, nil, fmt.Errorf("core: query has %d bit planes, model wants %d", len(q.Bits), len(m.Thresholds))
	}
	// A query packed for one model silently misclassifies on another
	// whose layout differs (a registry makes that an easy mistake), so
	// reject layout mismatches up front — the full packing layout, since
	// models can share QPad while splitting it into different
	// features×multiplicity shapes. Hand-built queries (zero stamps) are
	// trusted.
	if q.QPad != 0 && (q.NumFeatures != m.Meta.NumFeatures || q.K != m.Meta.K ||
		q.QPad != m.Meta.QPad || q.Block != m.Meta.BatchBlock()) {
		return he.Operand{}, nil, fmt.Errorf("core: query packed for layout features=%d K=%d q̂=%d block=%d, model wants features=%d K=%d q̂=%d block=%d (query prepared for a different model?)",
			q.NumFeatures, q.K, q.QPad, q.Block,
			m.Meta.NumFeatures, m.Meta.K, m.Meta.QPad, m.Meta.BatchBlock())
	}
	if err := ctx.Err(); err != nil {
		return he.Operand{}, nil, err
	}
	workers := max(e.Workers, 1)
	skipZero := e.SkipZeroDiagonals && !m.Encrypted
	// Dispatch to the specialized op program when the model carries one
	// and the engine configuration matches its build-time assumptions:
	// same zero-skipping mode, level plan neither half-applied nor
	// half-disabled, no per-stage noise measurement (it decrypts between
	// stages), hoisting on (the program bakes hoisted rotations in), and
	// a ciphertext query (the plaintext-query scenario takes shortcut
	// paths the program does not mirror).
	if p := m.Program; p != nil && !e.DisableSpecialization && !e.MeasureNoise && !e.DisableHoisting &&
		!(e.DisableLevelPlan && p.planned) && skipZero == p.skipZero && q.Bits[0].IsCipher() {
		return e.runProgram(ctx, m, q, p)
	}
	// The staged level schedule: each stage boundary proactively drops
	// the carrier ciphertext to the level the compiler assigned the next
	// stage, so the back half of the pipeline runs on a fraction of the
	// modulus chain (DESIGN.md §8). stage == nil (reactive staging, or
	// the ablation knob) skips every drop.
	stage := m.Plan
	if e.DisableLevelPlan {
		stage = nil
	}
	stageLevel := func(sel func(StageLevels) int) int {
		if stage == nil {
			return -1
		}
		return sel(*stage)
	}
	trace := &Trace{Executor: "generic", Noise: StageNoise{Query: -1, Decisions: -1, BranchVec: -1, LevelResult: -1, Result: -1}}
	// measureNoise reads the carrier's decrypt-side budget at a stage
	// boundary (the -leveljson margin corpus); -1 when not measuring.
	// Measurement decrypts, so its elapsed time is tracked and excluded
	// from Trace.Total — measured and unmeasured runs report comparable
	// totals (the per-stage windows already exclude it).
	var noiseOverhead time.Duration
	measureNoise := func(op he.Operand) int {
		if !e.MeasureNoise {
			return -1
		}
		mark := time.Now()
		defer func() { noiseOverhead += time.Since(mark) }()
		return he.NoiseBudgetOf(e.Backend, op)
	}
	start := time.Now()
	// The stage op counts in the trace come from a per-call counting
	// wrapper, not deltas of the shared backend counter: under the
	// concurrent serving mode another goroutine's pass would otherwise
	// leak into this trace.
	b := he.WithCounts(e.Backend)
	base := b.Counts()

	// Step 1: comparison — all decision nodes at once (§3.3). Query
	// planes normally arrive at the scheduled compare level already
	// (PrepareQueryBatch encrypts them there); the drop here covers
	// hand-built and reactively packed queries.
	bits := q.Bits
	if stage != nil {
		bits = make([]he.Operand, len(q.Bits))
		for i, op := range q.Bits {
			var err error
			bits[i], err = he.DropToLevel(b, op, stage.Compare)
			if err != nil {
				return he.Operand{}, nil, fmt.Errorf("core: query level drop: %w", err)
			}
		}
	}
	trace.Limbs.Query = he.OperandLimbs(b, bits[0])
	// The Sklansky rounds inside the comparison carry their own level
	// schedule (StageLevels.CompareRounds): the most expensive stage
	// sheds limbs between prefix rounds, not just at its boundary.
	var compareRounds []int
	if stage != nil {
		compareRounds = stage.CompareRounds
	}
	decisions, err := seccomp.CompareGTScheduled(b, bits, m.Thresholds, compareRounds)
	if err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: comparison step: %w", err)
	}
	if decisions, err = he.DropToLevel(b, decisions, stageLevel(func(s StageLevels) int { return s.Reshuffle })); err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: reshuffle level drop: %w", err)
	}
	trace.Limbs.Decisions = he.OperandLimbs(b, decisions)
	trace.Compare = time.Since(start)
	snap := b.Counts()
	trace.CompareOps = snap.Minus(base)
	base = snap
	// Noise measurements decrypt, so they run outside the timing windows
	// (after each stage's duration is captured) to keep the -leveljson
	// stage medians comparable with unmeasured runs.
	trace.Noise.Query = measureNoise(bits[0])
	trace.Noise.Decisions = measureNoise(decisions)
	if err := ctx.Err(); err != nil {
		return he.Operand{}, nil, err
	}

	// Step 2: reshuffle into branch preorder and drop sentinels, then
	// restore the periodic layout for the level products — within each
	// query's own slot block, so packed queries never mix.
	mark := time.Now()
	var branchVec he.Operand
	if m.Reshuffle.IsBSGS() {
		branchVec, err = matrix.MatVecBSGS(b, m.Reshuffle, decisions, skipZero, workers, !e.DisableHoisting)
	} else {
		branchVec, err = matrix.MatVecParallel(b, m.Reshuffle, decisions, skipZero, workers)
	}
	if err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: reshuffle step: %w", err)
	}
	branchVec, err = matrix.ReplicateWithin(b, branchVec, m.Meta.BPad, m.Meta.BatchBlock())
	if err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: reshuffle replication: %w", err)
	}
	if branchVec, err = he.DropToLevel(b, branchVec, stageLevel(func(s StageLevels) int { return s.Level })); err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: level-stage drop: %w", err)
	}
	trace.Limbs.BranchVec = he.OperandLimbs(b, branchVec)
	trace.Reshuffle = time.Since(mark)
	snap = b.Counts()
	trace.ReshuffleOps = snap.Minus(base)
	base = snap
	trace.Noise.BranchVec = measureNoise(branchVec)
	if err := ctx.Err(); err != nil {
		return he.Operand{}, nil, err
	}

	// Step 3: level processing — every level independently (§3.3), each
	// a matrix product plus the mask XOR. With BSGS-staged levels the
	// baby-step rotations of the branch vector are computed once
	// (hoisted) and shared by every level product; only the per-group
	// giant-step rotations remain per level.
	mark = time.Now()
	bsgsLevels := len(m.Levels) > 0 && m.Levels[0].IsBSGS()
	var babyRots []he.Operand
	if bsgsLevels {
		babyRots, err = matrix.BabyRotations(b, branchVec, m.Levels[0].Baby, !e.DisableHoisting)
		if err != nil {
			return he.Operand{}, nil, fmt.Errorf("core: baby-step rotations: %w", err)
		}
	}
	var rotations []he.Operand
	if e.ReuseRotations && !bsgsLevels {
		rotations = make([]he.Operand, m.Meta.BPad)
		rotations[0] = branchVec
		err := matrix.ParallelFor(m.Meta.BPad-1, workers, func(i int) error {
			rot, err := he.Rotate(b, branchVec, i+1)
			if err != nil {
				return err
			}
			rotations[i+1] = rot
			return nil
		})
		if err != nil {
			return he.Operand{}, nil, fmt.Errorf("core: rotation hoisting: %w", err)
		}
	}
	lvlResults := make([]he.Operand, len(m.Levels))
	levelWorkers := 1
	diagWorkers := workers
	if len(m.Levels) > 1 && workers > 1 {
		levelWorkers = min(workers, len(m.Levels))
		diagWorkers = max(workers/levelWorkers, 1)
	}
	err = matrix.ParallelFor(len(m.Levels), levelWorkers, func(l int) error {
		var lvlDecisions he.Operand
		var err error
		switch {
		case bsgsLevels:
			lvlDecisions, err = matrix.MatVecBSGSWith(b, m.Levels[l], babyRots, skipZero, diagWorkers)
		case e.ReuseRotations:
			lvlDecisions, err = matVecWithRotations(b, m.Levels[l], rotations, skipZero)
		default:
			lvlDecisions, err = matrix.MatVecParallel(b, m.Levels[l], branchVec, skipZero, diagWorkers)
		}
		if err != nil {
			return err
		}
		res, err := he.Xor(b, lvlDecisions, m.Masks[l])
		if err != nil {
			return err
		}
		// Cool the level result down to the product tree's entry: the
		// tree's noise budget needs only a few limbs, and every tree
		// multiplication then tensors and key-switches over that
		// fraction of the chain.
		if res, err = he.DropToLevel(b, res, stageLevel(func(s StageLevels) int { return s.Accumulate })); err != nil {
			return err
		}
		lvlResults[l] = res
		return nil
	})
	if err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: level processing: %w", err)
	}
	trace.Limbs.LevelResult = he.OperandLimbs(b, lvlResults[0])
	trace.Levels = time.Since(mark)
	snap = b.Counts()
	trace.LevelOps = snap.Minus(base)
	base = snap
	trace.Noise.LevelResult = measureNoise(lvlResults[0])
	if err := ctx.Err(); err != nil {
		return he.Operand{}, nil, err
	}

	// Step 4: accumulate all level vectors into the final label mask.
	mark = time.Now()
	labels, err := mulAllParallel(b, lvlResults, workers)
	if err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: accumulation step: %w", err)
	}
	if labels, err = he.DropToLevel(b, labels, stageLevel(func(s StageLevels) int { return s.Final })); err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: final level drop: %w", err)
	}
	trace.Limbs.Result = he.OperandLimbs(b, labels)
	trace.Accumulate = time.Since(mark)
	snap = b.Counts()
	trace.AccumulateOps = snap.Minus(base)
	trace.Total = time.Since(start) - noiseOverhead
	trace.Noise.Result = measureNoise(labels)
	return labels, trace, nil
}

// matVecWithRotations is MatVec over pre-rotated copies of the vector.
func matVecWithRotations(b he.Backend, d *matrix.Diagonals, rotations []he.Operand, skipZero bool) (he.Operand, error) {
	var acc he.Operand
	accSet := false
	for i := 0; i < d.Period; i++ {
		if skipZero && d.Zero[i] {
			continue
		}
		term, err := he.MulLazy(b, d.Ops[i], rotations[i])
		if err != nil {
			return he.Operand{}, err
		}
		if !accSet {
			acc, accSet = term, true
			continue
		}
		acc, err = he.Add(b, acc, term)
		if err != nil {
			return he.Operand{}, err
		}
	}
	if !accSet {
		return he.NewPlain(b, make([]uint64, b.Slots()))
	}
	return he.Relinearize(b, acc)
}

// mulAllParallel is he.MulAll with each tree round's pair products
// computed concurrently.
func mulAllParallel(b he.Backend, ops []he.Operand, workers int) (he.Operand, error) {
	if len(ops) == 0 {
		return he.Operand{}, fmt.Errorf("core: no level results to accumulate")
	}
	for len(ops) > 1 {
		pairs := len(ops) / 2
		next := make([]he.Operand, pairs)
		err := matrix.ParallelFor(pairs, workers, func(i int) error {
			p, err := he.Mul(b, ops[2*i], ops[2*i+1])
			if err != nil {
				return err
			}
			next[i] = p
			return nil
		})
		if err != nil {
			return he.Operand{}, err
		}
		if len(ops)%2 == 1 {
			next = append(next, ops[len(ops)-1])
		}
		ops = next
	}
	return ops[0], nil
}
