package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// The kernel registry maps (artifact hash, model encryption) to a
// generated kernel linked into the binary. `copse-compile -gen` emits a
// package whose init() calls RegisterKernel; any binary importing that
// package then dispatches matching Prepare'd models to the unrolled
// kernel instead of the op-program interpreter (DESIGN.md §13).
//
// The hash is over the serialized artifact bytes, so a kernel can never
// silently run against a model it was not generated from; as a second
// guard the registration carries the program's structural fingerprint
// (op and register counts), which Prepare re-checks against the program
// it builds from the runtime artifact.

type kernelKey struct {
	hash      string
	encrypted bool
}

type kernelEntry struct {
	numOps, numRegs int
	fn              KernelFunc
}

var (
	kernelMu       sync.RWMutex
	kernelRegistry map[kernelKey]kernelEntry
)

// RegisterKernel installs a generated kernel for the artifact with the
// given hash (ArtifactHash) and model-encryption flag. numOps and
// numRegs are the generated program's structural fingerprint; a
// mismatch against the runtime-built program disables the kernel rather
// than risk running a stale one. Typically called from a generated
// package's init().
func RegisterKernel(hash string, encrypted bool, numOps, numRegs int, fn KernelFunc) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if kernelRegistry == nil {
		kernelRegistry = make(map[kernelKey]kernelEntry)
	}
	kernelRegistry[kernelKey{hash, encrypted}] = kernelEntry{numOps: numOps, numRegs: numRegs, fn: fn}
}

// unregisterKernel removes a registration. The registry is process
// lifetime for generated packages; this exists so tests that register
// stub kernels can restore the empty state they found.
func unregisterKernel(hash string, encrypted bool) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	delete(kernelRegistry, kernelKey{hash, encrypted})
}

// lookupKernel resolves a registered kernel for the compiled artifact,
// validating the structural fingerprint against the freshly built
// program. It returns nil (interpreter dispatch) when the registry is
// empty — the common case, which skips hashing entirely.
func lookupKernel(c *Compiled, encrypted bool, p *Program) KernelFunc {
	kernelMu.RLock()
	empty := len(kernelRegistry) == 0
	kernelMu.RUnlock()
	if empty {
		return nil
	}
	hash, err := ArtifactHash(c)
	if err != nil {
		return nil
	}
	kernelMu.RLock()
	entry, ok := kernelRegistry[kernelKey{hash, encrypted}]
	kernelMu.RUnlock()
	if !ok || entry.numOps != len(p.ops) || entry.numRegs != p.numReg {
		return nil
	}
	return entry.fn
}

// ArtifactHash returns the hex SHA-256 of the artifact's serialized
// bytes — the registry key tying a generated kernel to the exact model
// it was compiled from. WriteArtifact is deterministic (gob over
// map-free structs, fixed gzip header), so the hash is stable across
// processes.
func ArtifactHash(c *Compiled) (string, error) {
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, c); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}
