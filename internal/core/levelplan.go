package core

import (
	"math"

	"copse/internal/matrix"
)

// Static level scheduling ("Level Up", Mahdavi et al. 2309.06496, applied
// to the COPSE pipeline): every BGV operation's cost scales with the
// number of active RNS limbs, yet reactive noise management keeps
// ciphertexts as high on the modulus chain as the noise allows — so the
// deep, rotation-heavy back half of Algorithm 1 pays full-chain NTTs and
// key switches whose noise budget needs only one or two limbs. The
// compiler instead runs its per-op noise model forward over the whole
// pipeline at staging time and records a per-stage target level; the
// engine proactively drops ciphertexts at each stage boundary, model
// operands are encrypted (or pre-lifted) directly at their scheduled
// level, and the serving backend sizes its chain — and its switching
// keys — to the plan's top instead of the reactive recommendation.
//
// The noise model here MUST mirror internal/bgv/evaluator.go: the plan
// is only a schedule, the evaluator's own management still guards
// correctness, but a plan more aggressive than the evaluator's noise
// accounting would make Classify fail with "modulus chain exhausted".
// The regression tests in levelplan_test.go pin the two together.

// LevelPlan is a compile-time schedule assigning each pipeline stage the
// modulus-chain level it executes at. Levels are absolute: level 0 is
// the last prime of a chain of Levels primes, and a backend with a
// longer chain simply never uses the extra top primes (operands are
// produced at the scheduled levels directly). Old artifacts carry no
// plan (nil) and fall back to reactive noise management.
type LevelPlan struct {
	// Levels is the chain length (prime count) the plan was computed
	// for — the fraction of the reactive recommendation the scheduled
	// pipeline actually needs.
	Levels int
	// Cipher is the schedule for encrypted-model scenarios, Plain for
	// plaintext-model ones (the features are encrypted either way; the
	// all-plaintext configuration performs no homomorphic ops and
	// ignores the plan).
	Cipher, Plain StageLevels
}

// StageLevels is one scenario's schedule: the level each stage of
// Algorithm 1 enters at. Operands consumed by a stage are staged at its
// entry level.
type StageLevels struct {
	// Compare is where the query bit planes and threshold planes sit.
	Compare int
	// Reshuffle is the reshuffle mat-vec entry (reshuffle diagonals).
	Reshuffle int
	// Level is the per-level mat-vec entry (level diagonals and masks).
	Level int
	// Accumulate is the product-tree entry.
	Accumulate int
	// Final is the level the classification result lands at.
	Final int
	// Shuffle is the minimum level the optional result shuffle (§7.2.2)
	// needs at entry. With the default minimal schedule the result lands
	// below it; compile with Options.PlanShuffle to reserve the headroom.
	Shuffle int
	// CompareRounds schedules the Sklansky prefix-product tree inside
	// the compare stage: CompareRounds[r] is the level every prefix
	// operand is dropped to after round r, so the later rounds of the
	// single most expensive stage run on 1–2 fewer limbs than reactive
	// management would keep them at. Derived by lowering each round's
	// simulated level until the full-pipeline simulation breaks. Nil on
	// older artifacts (no per-round drops).
	CompareRounds []int
}

// For returns the schedule for a scenario.
func (p *LevelPlan) For(encryptedModel bool) StageLevels {
	if encryptedModel {
		return p.Cipher
	}
	return p.Plain
}

// QueryLevel is the level query bit planes are produced at. Diane does
// not know whether the model she queries is encrypted, so the planes
// land at the deeper of the two compare entries; the engine drops them
// the remaining step on the shallower path.
func (p *LevelPlan) QueryLevel() int {
	return max(p.Cipher.Compare, p.Plain.Compare)
}

// ChainLevels is the chain length a backend needs to serve the given
// scenario under this plan.
func (p *LevelPlan) ChainLevels(encryptedModel bool) int {
	return p.For(encryptedModel).Compare + 1
}

// ShuffleLevel is the entry level ShuffleResult needs, across scenarios.
func (p *LevelPlan) ShuffleLevel() int {
	return max(p.Cipher.Shuffle, p.Plain.Shuffle)
}

// noiseModel mirrors the constants of internal/bgv: all shipped
// parameter presets share the plaintext modulus, prime size and
// key-switch digit width; only the ring degree varies with the packing
// width. Estimates err on the safe side: the modulus bit length is
// rounded down, the digit count up, and per-stage slack bits are kept
// in hand on every headroom check.
type noiseModel struct {
	logN      int
	tBits     int
	primeBits int
	digitBits int
	// stageSlack is the safety margin (bits) held back on every
	// headroom check, indexed by the pipeline stage the simulator is
	// walking: 0 compare, 1 reshuffle, 2 level, 3 accumulate, 4 the
	// final decryptability check and the result shuffle.
	stageSlack [5]float64
}

// Per-stage slack defaults, calibrated against the measured noise
// margins in BENCH_levels.json: the model's estimates track the
// evaluator most loosely early in the pipeline, where the key-switch
// noise of the Sklansky rounds and the reshuffle mat-vec compounds
// through the longest remaining circuit — those stages keep 2 bits in
// hand. Downstream the measured margins run tens of bits wide, so the
// level mat-vec and the short accumulate/final tail hold less back,
// letting the schedule search shave entries the flat legacy slack
// forced it to keep.
var stageSlackDefaults = [5]float64{2, 2, 1.5, 1, 1}

const (
	// slackFloorDefault floors every stage's slack when
	// Options.SlackFloorBits is unset.
	slackFloorDefault = 1
	// flatSlackBits is the legacy uniform slack (Options.FlatSlack).
	flatSlackBits = 3
)

// slackConfig carries the compile-time slack knobs
// (Options.SlackFloorBits / Options.FlatSlack) into the planner; the
// zero value selects the calibrated per-stage defaults.
type slackConfig struct {
	floorBits float64
	flat      bool
}

// planNoiseModel returns the model for a packing width (slots = N/2)
// under the given slack profile.
func planNoiseModel(slots int, sl slackConfig) noiseModel {
	nm := noiseModel{
		logN:      log2Ceil(slots) + 1,
		tBits:     17, // t = 65537
		primeBits: 55,
		digitBits: 45,
	}
	nm.stageSlack = stageSlackDefaults
	if sl.flat {
		for i := range nm.stageSlack {
			nm.stageSlack[i] = flatSlackBits
		}
	}
	floor := sl.floorBits
	if floor <= 0 {
		floor = slackFloorDefault
	}
	for i := range nm.stageSlack {
		nm.stageSlack[i] = math.Max(nm.stageSlack[i], floor)
	}
	return nm
}

// qBits lower-bounds the modulus bit length at a level.
func (nm noiseModel) qBits(level int) float64 {
	return float64((level+1)*nm.primeBits - 1)
}

// digits upper-bounds the base-2^w digit count at a level.
func (nm noiseModel) digits(level int) int {
	return ((level+1)*nm.primeBits + nm.digitBits - 1) / nm.digitBits
}

// floor is the noise level right after a modulus switch.
func (nm noiseModel) floor() float64 {
	return float64(nm.tBits + nm.logN + 4)
}

// ks is the additive noise of one key switch at a level.
func (nm noiseModel) ks(level int) float64 {
	return float64(nm.digitBits+nm.logN+nm.tBits) + math.Log2(float64(nm.digits(level))) + 6
}

// fresh is the noise of a fresh public-key encryption.
func (nm noiseModel) fresh() float64 {
	return float64(nm.tBits) + float64(nm.logN)/2 + 8
}

// simCt is a simulated ciphertext: a (level, noise) pair plus the
// degree-2 flag of an unrelinearized product.
type simCt struct {
	level int
	noise float64
	deg2  bool
}

// simOp is a simulated operand: a ciphertext or a noiseless plaintext.
type simOp struct {
	cipher bool
	ct     simCt
}

func simPlain() simOp { return simOp{} }

func (nm noiseModel) simFresh(level int) simOp {
	return simOp{cipher: true, ct: simCt{level: level, noise: nm.fresh()}}
}

// Failure kinds drive the schedule search: a structural failure (the
// chain ran out of levels) is fixed by raising the failing stage's own
// entry, while a noise failure at a stage that entered hot is fixed by
// raising the *previous* stage — a deeper boundary drop then cools the
// carrier to the modulus-switch floor.
const (
	failNone = iota
	failLevel
	failNoise
)

// sim walks the evaluator's noise accounting over the pipeline's op
// sequence. The first infeasibility (noise past the evaluator's error
// threshold, or a multiplication/relinearization with no level left)
// sticks; callers inspect ok after a run.
type sim struct {
	nm   noiseModel
	ok   bool
	kind int

	// stage is the pipeline stage whose slack the headroom checks
	// consume (an index into nm.stageSlack); simulatePipeline advances
	// it across stage sections, shuffle simulations run at the final
	// stage's slack.
	stage int

	// compareTargets, when set, are per-round drop levels applied to the
	// prefix-product carrier inside compare (mirroring the engine's
	// CompareGTScheduled); compareLevels records the carrier's level
	// after each round either way.
	compareTargets []int
	compareLevels  []int
}

func newSim(nm noiseModel) *sim { return &sim{nm: nm, ok: true} }

// slack is the active stage's safety margin.
func (s *sim) slack() float64 { return s.nm.stageSlack[s.stage] }

func (s *sim) fail(kind int) {
	if s.ok {
		s.ok = false
		s.kind = kind
	}
}

func (s *sim) modSwitch(c *simCt) {
	if c.level == 0 {
		s.fail(failLevel)
		return
	}
	c.level--
	c.noise = math.Max(c.noise-float64(s.nm.primeBits), s.nm.floor())
}

// manage mirrors Evaluator.manage: switch down lazily, then verify the
// decryption margin (minus the active stage's slack).
func (s *sim) manage(c *simCt) {
	margin := float64(s.nm.tBits + 10)
	for c.level > 0 && c.noise > s.nm.qBits(c.level)-margin {
		s.modSwitch(c)
	}
	if c.noise > s.nm.qBits(c.level)-float64(s.nm.tBits)-2-s.slack() {
		s.fail(failNoise)
	}
}

func (s *sim) dropTo(c *simCt, level int) {
	for c.level > level {
		s.modSwitch(c)
	}
}

func (s *sim) dropOpTo(o simOp, level int) simOp {
	if o.cipher {
		s.dropTo(&o.ct, level)
	}
	return o
}

func (s *sim) align(a, b *simCt) {
	for a.level > b.level {
		s.modSwitch(a)
	}
	for b.level > a.level {
		s.modSwitch(b)
	}
}

// tensor mirrors tensorProduct + the manage call of MulNoRelin.
func (s *sim) tensor(a, b simCt) simCt {
	s.align(&a, &b)
	floor := s.nm.floor()
	for a.level > 0 && a.noise >= floor+float64(s.nm.primeBits) {
		s.modSwitch(&a)
	}
	for b.level > a.level {
		s.modSwitch(&b)
	}
	if a.level == 0 {
		s.fail(failLevel)
		return a
	}
	out := simCt{level: a.level, noise: a.noise + b.noise + float64(s.nm.logN) + 1, deg2: true}
	s.manage(&out)
	return out
}

// relin mirrors Relinearize: key-switch noise, one unconditional modulus
// switch, then management.
func (s *sim) relin(c simCt) simCt {
	if !c.deg2 {
		return c
	}
	c.noise = math.Max(c.noise, s.nm.ks(c.level)) + 1
	c.deg2 = false
	s.modSwitch(&c)
	s.manage(&c)
	return c
}

func (s *sim) mulCC(a, b simCt) simCt { return s.relin(s.tensor(a, b)) }

// rot mirrors checkGalois + galoisFromDigits + manage.
func (s *sim) rot(c simCt) simCt {
	if s.nm.qBits(c.level) < s.nm.ks(c.level)+float64(s.nm.tBits)+4+s.slack() {
		s.fail(failLevel)
		return c
	}
	c.noise = math.Max(c.noise, s.nm.ks(c.level)) + 1
	s.manage(&c)
	return c
}

func (s *sim) rotOp(o simOp) simOp {
	if o.cipher {
		o.ct = s.rot(o.ct)
	}
	return o
}

// mul mirrors he.Mul over operands.
func (s *sim) mul(x, y simOp) simOp {
	switch {
	case x.cipher && y.cipher:
		return simOp{cipher: true, ct: s.mulCC(x.ct, y.ct)}
	case x.cipher:
		return s.mulPlain(x)
	case y.cipher:
		return s.mulPlain(y)
	}
	return simPlain()
}

// mulLazy mirrors he.MulLazy: a cipher×cipher product stays degree 2.
func (s *sim) mulLazy(x, y simOp) simOp {
	if x.cipher && y.cipher {
		return simOp{cipher: true, ct: s.tensor(x.ct, y.ct)}
	}
	return s.mul(x, y)
}

func (s *sim) relinOp(o simOp) simOp {
	if o.cipher {
		o.ct = s.relin(o.ct)
	}
	return o
}

// mulPlain mirrors MulPlain's noise growth.
func (s *sim) mulPlain(x simOp) simOp {
	x.ct.noise += float64(s.nm.tBits) + float64(s.nm.logN)/2 + 1
	s.manage(&x.ct)
	return x
}

// add mirrors he.Add / AddPlain.
func (s *sim) add(x, y simOp) simOp {
	switch {
	case x.cipher && y.cipher:
		s.align(&x.ct, &y.ct)
		out := simCt{level: x.ct.level, noise: math.Max(x.ct.noise, y.ct.noise) + 1, deg2: x.ct.deg2 || y.ct.deg2}
		s.manage(&out)
		return simOp{cipher: true, ct: out}
	case x.cipher:
		x.ct.noise++
		s.manage(&x.ct)
		return x
	case y.cipher:
		y.ct.noise++
		s.manage(&y.ct)
		return y
	}
	return simPlain()
}

// not mirrors he.Not: Neg + AddPlain for ciphertexts.
func (s *sim) not(x simOp) simOp {
	if !x.cipher {
		return x
	}
	x.ct.noise++
	s.manage(&x.ct)
	return x
}

// xor mirrors he.Xor.
func (s *sim) xor(x, y simOp) simOp {
	switch {
	case x.cipher && y.cipher:
		prod := s.mulCC(x.ct, y.ct)
		sum := s.add(x, y)
		twice := s.add(simOp{cipher: true, ct: prod}, simOp{cipher: true, ct: prod})
		return s.add(sum, twice) // Sub has Add's noise shape
	case x.cipher:
		x = s.mulPlain(x)
		x.ct.noise++
		s.manage(&x.ct)
		return x
	case y.cipher:
		y = s.mulPlain(y)
		y.ct.noise++
		s.manage(&y.ct)
		return y
	}
	return simPlain()
}

// compare simulates seccomp.CompareGT over p bit planes. The carrier eq
// follows the most-multiplied prefix element (every other element has
// seen a subset of its multiplications, hence no more level or noise).
func (s *sim) compare(p int, x, y simOp) simOp {
	eq := s.not(s.xor(x, y))
	gt := s.mul(x, s.not(y))
	// Sklansky prefix products over the eq planes, with the optional
	// per-round boundary drops.
	for round := 0; round < log2Ceil(max(p, 1)); round++ {
		eq = s.mul(eq, eq)
		if round < len(s.compareTargets) {
			eq = s.dropOpTo(eq, s.compareTargets[round])
		}
		lvl := 0
		if eq.cipher {
			lvl = eq.ct.level
		}
		s.compareLevels = append(s.compareLevels, lvl)
	}
	out := s.mul(gt, eq)
	for j := 1; j < p; j++ {
		out = s.add(out, out)
	}
	return out
}

// matVec simulates the diagonal kernels of internal/matrix over a
// baby/giant split (the naive kernel is the split baby=period, giant=1).
func (s *sim) matVec(v, diag simOp, baby, giant int) simOp {
	vr := v
	if baby > 1 {
		vr = s.rotOp(v)
	}
	acc := s.mulLazy(diag, vr)
	for j := 1; j < baby; j++ {
		acc = s.add(acc, s.mulLazy(diag, vr))
	}
	acc = s.relinOp(acc)
	if giant > 1 {
		acc = s.rotOp(acc)
	}
	out := acc
	for g := 1; g < giant; g++ {
		out = s.add(out, acc)
	}
	return out
}

// replicate simulates `steps` rotate-and-add doublings.
func (s *sim) replicate(v simOp, steps int) simOp {
	for i := 0; i < steps; i++ {
		v = s.add(v, s.rotOp(v))
	}
	return v
}

// pipelineShape is the structural information the simulator needs,
// extracted from Meta.
type pipelineShape struct {
	precision  int
	qSplit     [2]int // reshuffle kernel baby/giant
	bSplit     [2]int // level-matrix kernel baby/giant
	nSplit     [2]int // shuffle kernel baby/giant
	levels     int    // D: number of level matrices
	reshufRep  int    // replicate doublings after the reshuffle
	shuffleRep int    // replicate doublings before the single-query shuffle
	// shuffleRepB is the block-local doubling count of the batched
	// shuffle (ReplicateWithin to the batch block instead of the full
	// ciphertext; it pays no selector mul). Always ≤ shuffleRep.
	shuffleRepB int
	batched     bool // batch capacity > 1 (single-query shuffle pays a selector mul)
}

func shapeOf(m *Meta) pipelineShape {
	split := func(period int) [2]int {
		if m.UseBSGS {
			if baby, giant, ok := m.BSGSFor(period); ok {
				return [2]int{baby, giant}
			}
			baby, giant := matrix.BSGSSplit(period)
			return [2]int{baby, giant}
		}
		return [2]int{period, 1}
	}
	nPad := m.LPad()
	// The shuffle kernel always stages BSGS diagonals (shuffle.go).
	nBaby, nGiant := matrix.BSGSSplit(nPad)
	return pipelineShape{
		precision:   m.Precision,
		qSplit:      split(m.QPad),
		bSplit:      split(m.BPad),
		nSplit:      [2]int{nBaby, nGiant},
		levels:      max(m.D, 1),
		reshufRep:   log2Ceil(m.BatchBlock() / m.BPad),
		shuffleRep:  log2Ceil(m.Slots / nPad),
		shuffleRepB: log2Ceil(m.BatchBlock() / nPad),
		batched:     m.BatchCapacity() > 1,
	}
}

// stageEntries is the candidate schedule the search refines.
type stageEntries struct {
	compare, reshuffle, level, accumulate, final int
}

// simFailure reports why a candidate schedule is infeasible: the stage
// to blame (0 = compare, 1 = reshuffle, 2 = level, 3 = accumulate), the
// failure kind, and whether the failing stage entered with noise well
// above the modulus-switch floor (a hot entry — fixed by a deeper
// boundary drop, i.e. by raising the previous stage).
type simFailure struct {
	stage    int
	kind     int
	hotEntry bool
}

// simulatePipeline runs the whole pipeline at the candidate entries,
// with the engine's boundary-drop semantics (including the optional
// per-round compare drops). It returns the achieved final state, the
// compare carrier's per-round levels, or the failure that makes the
// candidate infeasible.
func simulatePipeline(nm noiseModel, sh pipelineShape, encModel bool, e stageEntries, compareTargets []int) (final simCt, rounds []int, fail simFailure, ok bool) {
	s := newSim(nm)
	s.compareTargets = compareTargets
	hot := func(o simOp) bool { return o.cipher && o.ct.noise > nm.floor()+8 }
	model := simPlain()
	if encModel {
		model = nm.simFresh(e.compare)
	}
	query := nm.simFresh(e.compare)

	// Stage 0: compare.
	s.stage = 0
	decisions := s.compare(sh.precision, query, model)
	if !s.ok {
		return simCt{}, s.compareLevels, simFailure{stage: 0, kind: s.kind}, false
	}
	if decisions.cipher && decisions.ct.level < e.reshuffle {
		return simCt{}, s.compareLevels, simFailure{stage: 0, kind: failLevel}, false
	}
	decisions = s.dropOpTo(decisions, e.reshuffle)

	// Stage 1: reshuffle mat-vec + replication.
	s.stage = 1
	diag := simPlain()
	if encModel {
		diag = nm.simFresh(e.reshuffle)
	}
	entryHot := hot(decisions)
	branch := s.matVec(decisions, diag, sh.qSplit[0], sh.qSplit[1])
	branch = s.replicate(branch, sh.reshufRep)
	if !s.ok {
		return simCt{}, s.compareLevels, simFailure{stage: 1, kind: s.kind, hotEntry: entryHot}, false
	}
	if branch.cipher && branch.ct.level < e.level {
		return simCt{}, s.compareLevels, simFailure{stage: 1, kind: failLevel}, false
	}
	branch = s.dropOpTo(branch, e.level)

	// Stage 2: per-level mat-vecs + mask XOR.
	s.stage = 2
	lvlDiag, mask := simPlain(), simPlain()
	if encModel {
		lvlDiag = nm.simFresh(e.level)
		mask = nm.simFresh(e.level)
	}
	entryHot = hot(branch)
	lvl := s.xor(s.matVec(branch, lvlDiag, sh.bSplit[0], sh.bSplit[1]), mask)
	if !s.ok {
		return simCt{}, s.compareLevels, simFailure{stage: 2, kind: s.kind, hotEntry: entryHot}, false
	}
	if lvl.cipher && lvl.ct.level < e.accumulate {
		return simCt{}, s.compareLevels, simFailure{stage: 2, kind: failLevel}, false
	}
	lvl = s.dropOpTo(lvl, e.accumulate)

	// Stage 3: product-tree accumulation.
	s.stage = 3
	entryHot = hot(lvl)
	out := lvl
	for n := sh.levels; n > 1; n = (n + 1) / 2 {
		out = s.mul(out, out)
	}
	if !s.ok {
		return simCt{}, s.compareLevels, simFailure{stage: 3, kind: s.kind, hotEntry: entryHot}, false
	}
	if out.cipher && out.ct.level < e.final {
		return simCt{}, s.compareLevels, simFailure{stage: 3, kind: failLevel}, false
	}
	out = s.dropOpTo(out, e.final)
	if !out.cipher {
		return simCt{}, s.compareLevels, simFailure{}, s.ok
	}
	// Decryptability at the final level.
	s.stage = 4
	s.manage(&out.ct)
	if !s.ok {
		return simCt{}, s.compareLevels, simFailure{stage: 3, kind: s.kind, hotEntry: entryHot}, false
	}
	return out.ct, s.compareLevels, simFailure{}, true
}

// simulateShuffle runs the optional result shuffle from the given
// input, through both kernels that share the Shuffle entry level: the
// single-query one (selector mul when batched, whole-ciphertext
// replicate) and the block-local batched one (ReplicateWithin to the
// batch block, no selector, block-diagonal permutation). The batched
// kernel does strictly less work, but simulating both keeps the entry
// level sound if the shapes ever diverge.
func simulateShuffle(nm noiseModel, sh pipelineShape, in simCt) bool {
	single := func() bool {
		s := newSim(nm)
		s.stage = 4
		v := simOp{cipher: true, ct: in}
		if sh.batched {
			v = s.mulPlain(v)
		}
		v = s.replicate(v, sh.shuffleRep)
		v = s.matVec(v, simPlain(), sh.nSplit[0], sh.nSplit[1])
		if v.cipher {
			s.manage(&v.ct)
		}
		return s.ok
	}
	batched := func() bool {
		s := newSim(nm)
		s.stage = 4
		v := simOp{cipher: true, ct: in}
		v = s.replicate(v, sh.shuffleRepB)
		v = s.matVec(v, simPlain(), sh.nSplit[0], sh.nSplit[1])
		if v.cipher {
			s.manage(&v.ct)
		}
		return s.ok
	}
	return single() && batched()
}

// planCap bounds the schedule search: no realistic model needs a deeper
// chain (the reactive recommendation for the deepest supported forests
// stays well below it).
const planCap = 48

// scheduleScenario finds minimal stage entries for one scenario by
// repeatedly simulating and raising one entry per round: the failing
// stage's own on a structural failure (it ran out of levels), the
// previous stage's when the failure traces back to a hot entry — a
// deeper boundary drop then delivers the carrier at the modulus-switch
// floor instead of carrying key-switch noise into the next stage.
func scheduleScenario(nm noiseModel, sh pipelineShape, encModel bool, final int) (stageEntries, simCt, bool) {
	e := stageEntries{compare: final, reshuffle: final, level: final, accumulate: final, final: final}
	bump := func(stage int) {
		switch stage {
		case 0:
			e.compare++
		case 1:
			e.reshuffle++
		case 2:
			e.level++
		case 3:
			e.accumulate++
		}
	}
	for iter := 0; iter < 16*planCap; iter++ {
		out, _, fail, ok := simulatePipeline(nm, sh, encModel, e, nil)
		if ok {
			return e, out, true
		}
		if fail.hotEntry && fail.stage > 0 {
			// A hot entry means the boundary drop was too shallow to cool
			// the carrier; raising the previous stage deepens the drop.
			// If the stage stays infeasible once its entry is cold, the
			// next rounds raise the stage itself.
			bump(fail.stage - 1)
		} else {
			bump(fail.stage)
		}
		// Entries are non-increasing along the pipeline by construction.
		e.level = max(e.level, e.accumulate)
		e.reshuffle = max(e.reshuffle, e.level)
		e.compare = max(e.compare, e.reshuffle)
		if e.compare > planCap {
			break
		}
	}
	return e, simCt{}, false
}

// shuffleEntryLevel finds the minimal entry level of the result shuffle,
// assuming a modulus-switch-floored input (ShuffleResult drops inputs
// arriving above it).
func shuffleEntryLevel(nm noiseModel, sh pipelineShape) int {
	for level := 1; level <= planCap; level++ {
		if simulateShuffle(nm, sh, simCt{level: level, noise: nm.floor()}) {
			return level
		}
	}
	return planCap
}

// compareRoundPlan derives the per-round Sklansky drop levels for a
// feasible schedule: starting from the reactive per-round trajectory the
// simulator records, it lowers each round's level — last round first,
// where the remaining circuit is shortest — as far as the full-pipeline
// simulation stays feasible. The result is what the engine feeds
// seccomp.CompareGTScheduled; nil (no rounds, or a simulator
// disagreement) simply means no per-round drops.
func compareRoundPlan(nm noiseModel, sh pipelineShape, encModel bool, e stageEntries) []int {
	_, reactive, _, ok := simulatePipeline(nm, sh, encModel, e, nil)
	if !ok || len(reactive) == 0 {
		return nil
	}
	targets := append([]int(nil), reactive...)
	feasible := func(t []int) bool {
		_, _, _, ok := simulatePipeline(nm, sh, encModel, e, t)
		return ok
	}
	for r := len(targets) - 1; r >= 0; r-- {
		for targets[r] > e.reshuffle {
			targets[r]--
			if !feasible(targets) {
				targets[r]++
				break
			}
		}
	}
	// Tidy: a round target above its predecessor's can never bind (the
	// carrier only descends).
	for r := 1; r < len(targets); r++ {
		targets[r] = min(targets[r], targets[r-1])
	}
	if !feasible(targets) {
		return nil
	}
	return targets
}

// computeLevelPlan builds the static schedule for a compiled model, or
// nil when no feasible schedule exists within the search bound (the
// engine then falls back to reactive management). The slack profile
// (Options.SlackFloorBits / Options.FlatSlack) shapes how much noise
// headroom each stage's checks keep in hand.
func computeLevelPlan(m *Meta, planShuffle bool, sl slackConfig) *LevelPlan {
	nm := planNoiseModel(m.Slots, sl)
	sh := shapeOf(m)
	shuffleAt := shuffleEntryLevel(nm, sh)
	minFinal := 1
	if planShuffle {
		// Reserve headroom so the classification result can still feed
		// the result shuffle.
		minFinal = max(minFinal, shuffleAt)
	}
	plan := &LevelPlan{}
	for _, encModel := range []bool{true, false} {
		// The shuffle entry level assumes a modulus-switch-floored input,
		// but a result landing *exactly* at the entry level can arrive
		// hot (no switch left to cool it — depth-4 forests do). Raising
		// the final level by one puts a boundary drop between the
		// pipeline and the shuffle, which floors the carrier; search
		// upward until the shuffle simulates clean.
		var st StageLevels
		found := false
		for final := minFinal; final <= planCap && !found; final++ {
			e, out, ok := scheduleScenario(nm, sh, encModel, final)
			if !ok {
				break // deeper finals only make the pipeline harder
			}
			if planShuffle {
				s := newSim(nm)
				s.stage = 4
				s.dropTo(&out, shuffleAt) // ShuffleResult's entry drop
				if !s.ok || !simulateShuffle(nm, sh, out) {
					continue
				}
			}
			st = StageLevels{
				Compare:       e.compare,
				Reshuffle:     e.reshuffle,
				Level:         e.level,
				Accumulate:    e.accumulate,
				Final:         e.final,
				Shuffle:       shuffleAt,
				CompareRounds: compareRoundPlan(nm, sh, encModel, e),
			}
			found = true
		}
		if !found {
			return nil
		}
		if encModel {
			plan.Cipher = st
		} else {
			plan.Plain = st
		}
	}
	plan.Levels = plan.QueryLevel() + 1
	return plan
}
