package core

import (
	"fmt"

	"copse/internal/bits"
	"copse/internal/he"
)

// Query is a prepared feature vector: p MSB-first bit planes in the
// slot-periodic layout matching the model's padded threshold vector.
type Query struct {
	Bits []he.Operand
}

// PrepareQuery performs Diane's side of Step 0 (§3.3): replicate each
// quantized feature K times (so the feature vector and the padded
// threshold vector are in one-to-one correspondence), lay the result out
// periodically, bit-transpose it, and encrypt each bit plane. With
// encrypt=false the planes stay plaintext (the D=S configuration, where
// the evaluator owns the features).
func PrepareQuery(b he.Backend, meta *Meta, features []uint64, encrypt bool) (*Query, error) {
	if len(features) != meta.NumFeatures {
		return nil, fmt.Errorf("core: got %d features, model wants %d", len(features), meta.NumFeatures)
	}
	limit := uint64(1) << uint(meta.Precision)
	replicated := make([]uint64, meta.Q)
	for f, v := range features {
		if v >= limit {
			return nil, fmt.Errorf("core: feature %d value %d exceeds %d-bit precision", f, v, meta.Precision)
		}
		for j := 0; j < meta.K; j++ {
			replicated[f*meta.K+j] = v
		}
	}
	planes, err := bits.Transpose(replicated, meta.Precision)
	if err != nil {
		return nil, err
	}
	q := &Query{}
	for _, plane := range planes {
		padded := make([]uint64, meta.QPad)
		copy(padded, plane)
		periodic := replicatePlain(padded, meta.QPad, b.Slots())
		op, err := makeOperand(b, periodic, encrypt)
		if err != nil {
			return nil, err
		}
		q.Bits = append(q.Bits, op)
	}
	return q, nil
}

// Result is a decoded classification: the raw leaf bitvector plus its
// interpretations.
type Result struct {
	// LeafBits is the N-hot bitvector over leaf slots (§4.1.2).
	LeafBits []uint64
	// Votes counts, per label index, how many set leaf slots map to it
	// through the codebook — what Diane can compute (§7.2.2).
	Votes []int
	// PerTree gives each tree's chosen label index; deriving it needs
	// the tree boundaries, which only the model owner knows.
	PerTree []int
}

// DecodeResult interprets the decrypted label-mask slots.
func DecodeResult(meta *Meta, slots []uint64) (*Result, error) {
	if len(slots) < meta.NumLeaves {
		return nil, fmt.Errorf("core: result has %d slots, model has %d leaves", len(slots), meta.NumLeaves)
	}
	r := &Result{
		LeafBits: append([]uint64(nil), slots[:meta.NumLeaves]...),
		Votes:    make([]int, len(meta.LabelNames)),
	}
	for i, bit := range r.LeafBits {
		if bit > 1 {
			return nil, fmt.Errorf("core: leaf slot %d holds %d, not a bit", i, bit)
		}
		if bit == 1 {
			r.Votes[meta.Codebook[i]]++
		}
	}
	for t := 0; t < meta.NumTrees; t++ {
		lo, hi := meta.TreeLeafOffsets[t], meta.TreeLeafOffsets[t+1]
		chosen := -1
		for i := lo; i < hi; i++ {
			if r.LeafBits[i] == 1 {
				if chosen >= 0 {
					return nil, fmt.Errorf("core: tree %d selected more than one leaf", t)
				}
				chosen = meta.Codebook[i]
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("core: tree %d selected no leaf", t)
		}
		r.PerTree = append(r.PerTree, chosen)
	}
	return r, nil
}

// Plurality returns the label index with the most votes (ties break low).
func (r *Result) Plurality() int {
	best := 0
	for i, v := range r.Votes {
		if v > r.Votes[best] {
			best = i
		}
	}
	return best
}
