package core

import (
	"fmt"

	"copse/internal/bits"
	"copse/internal/he"
)

// Query is a prepared feature-vector batch: p MSB-first bit planes in
// the slot-blocked layout matching the model's padded threshold vector.
// Batch records how many independent feature vectors are packed (1 for
// PrepareQuery); query k occupies the span-aligned slot block
// [k·BatchBlock, (k+1)·BatchBlock). NumFeatures, K, QPad and Block
// record the packing layout the query was prepared for, so the engine
// can reject a query prepared for a different model (zero values —
// hand-built queries — skip the check).
type Query struct {
	Bits  []he.Operand
	Batch int

	NumFeatures int
	K           int
	QPad        int
	Block       int

	// Next chains an overflow continuation: a logical batch larger than
	// Meta.BatchCapacity is prepared as a linked list of capacity-sized
	// Query links, each packed from slot block 0 and classified in its
	// own pass. PrepareQueryBatch itself never chains (it keeps the
	// one-pass BatchCapacityError contract); the serving layer builds
	// and walks chains.
	Next *Query
}

// BatchCapacityError reports a batch index or size exceeding the staged
// batch capacity of a compiled model.
type BatchCapacityError struct {
	// Index is the offending batch index (or requested batch size).
	Index int
	// Capacity is the model's staged capacity (Meta.BatchCapacity).
	Capacity int
}

func (e *BatchCapacityError) Error() string {
	return fmt.Sprintf("core: batch index %d exceeds staged batch capacity %d", e.Index, e.Capacity)
}

// PrepareQuery performs Diane's side of Step 0 (§3.3) for a single
// feature vector: it is PrepareQueryBatch of a one-element batch.
func PrepareQuery(b he.Backend, meta *Meta, features []uint64, encrypt bool) (*Query, error) {
	return PrepareQueryBatch(b, meta, [][]uint64{features}, encrypt)
}

// PrepareQueryBatch packs up to Meta.BatchCapacity independent feature
// vectors into one ciphertext set: each vector is replicated to the
// model's maximum multiplicity K (so the feature vector and the padded
// threshold vector are in one-to-one correspondence), bit-transposed,
// laid out QPad-periodically within its own BatchBlock-wide slot block,
// and the combined planes are encrypted once — one homomorphic pass then
// classifies the whole batch. With encrypt=false the planes stay
// plaintext (the D=S configuration, where the evaluator owns the
// features). Unused blocks are zero; their decode output is garbage and
// DecodeResultBatch never reads them.
func PrepareQueryBatch(b he.Backend, meta *Meta, batch [][]uint64, encrypt bool) (*Query, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	if cap := meta.BatchCapacity(); len(batch) > cap {
		return nil, &BatchCapacityError{Index: len(batch), Capacity: cap}
	}
	block := meta.BatchBlock()
	limit := uint64(1) << uint(meta.Precision)
	planes := make([][]uint64, meta.Precision)
	for p := range planes {
		planes[p] = make([]uint64, b.Slots())
	}
	replicated := make([]uint64, meta.Q)
	for k, features := range batch {
		if len(features) != meta.NumFeatures {
			return nil, fmt.Errorf("core: query %d has %d features, model wants %d", k, len(features), meta.NumFeatures)
		}
		clear(replicated)
		for f, v := range features {
			if v >= limit {
				return nil, fmt.Errorf("core: query %d feature %d value %d exceeds %d-bit precision", k, f, v, meta.Precision)
			}
			for j := 0; j < meta.K; j++ {
				replicated[f*meta.K+j] = v
			}
		}
		qPlanes, err := bits.Transpose(replicated, meta.Precision)
		if err != nil {
			return nil, err
		}
		// QPad-periodic within the query's own block only.
		base := k * block
		for p, plane := range qPlanes {
			for off := 0; off < block; off += meta.QPad {
				copy(planes[p][base+off:base+off+len(plane)], plane)
			}
		}
	}
	q := &Query{
		Batch:       len(batch),
		NumFeatures: meta.NumFeatures,
		K:           meta.K,
		QPad:        meta.QPad,
		Block:       block,
	}
	// Under a level schedule the planes are encrypted directly at the
	// deeper of the two compare entry levels (Diane does not learn
	// whether the model is encrypted); the engine drops them the last
	// step on the shallower path. Without a plan they sit at the top.
	level := -1
	if meta.LevelPlan != nil {
		level = meta.LevelPlan.QueryLevel()
	}
	for _, plane := range planes {
		op, err := makeOperand(b, plane, encrypt, level)
		if err != nil {
			return nil, err
		}
		q.Bits = append(q.Bits, op)
	}
	return q, nil
}

// Result is a decoded classification: the raw leaf bitvector plus its
// interpretations.
type Result struct {
	// LeafBits is the N-hot bitvector over leaf slots (§4.1.2).
	LeafBits []uint64
	// Votes counts, per label index, how many set leaf slots map to it
	// through the codebook — what Diane can compute (§7.2.2).
	Votes []int
	// PerTree gives each tree's chosen label index; deriving it needs
	// the tree boundaries, which only the model owner knows.
	PerTree []int
}

// DecodeResult interprets the decrypted label-mask slots of a
// single-query classification (batch index 0).
func DecodeResult(meta *Meta, slots []uint64) (*Result, error) {
	return DecodeResultAt(meta, slots, 0)
}

// DecodeResultAt interprets the decrypted label-mask slots of batch
// entry k, reading the k-th BatchBlock-wide slot block. It returns a
// *BatchCapacityError when k exceeds the staged batch capacity.
func DecodeResultAt(meta *Meta, slots []uint64, k int) (*Result, error) {
	if k < 0 || k >= meta.BatchCapacity() {
		return nil, &BatchCapacityError{Index: k, Capacity: meta.BatchCapacity()}
	}
	off := k * meta.BatchBlock()
	if len(slots) < off+meta.NumLeaves {
		return nil, fmt.Errorf("core: result has %d slots, batch entry %d needs %d", len(slots), k, off+meta.NumLeaves)
	}
	window := slots[off : off+meta.NumLeaves]
	r := &Result{
		LeafBits: append([]uint64(nil), window...),
		Votes:    make([]int, len(meta.LabelNames)),
	}
	for i, bit := range r.LeafBits {
		if bit > 1 {
			return nil, fmt.Errorf("core: batch entry %d leaf slot %d holds %d, not a bit", k, i, bit)
		}
		if bit == 1 {
			r.Votes[meta.Codebook[i]]++
		}
	}
	for t := 0; t < meta.NumTrees; t++ {
		lo, hi := meta.TreeLeafOffsets[t], meta.TreeLeafOffsets[t+1]
		chosen := -1
		for i := lo; i < hi; i++ {
			if r.LeafBits[i] == 1 {
				if chosen >= 0 {
					return nil, fmt.Errorf("core: batch entry %d tree %d selected more than one leaf", k, t)
				}
				chosen = meta.Codebook[i]
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("core: batch entry %d tree %d selected no leaf", k, t)
		}
		r.PerTree = append(r.PerTree, chosen)
	}
	return r, nil
}

// DecodeResultBatch decodes the first count batch entries of the
// decrypted label-mask slots. It returns a *BatchCapacityError when
// count exceeds the staged batch capacity.
func DecodeResultBatch(meta *Meta, slots []uint64, count int) ([]*Result, error) {
	if count <= 0 {
		return nil, fmt.Errorf("core: batch decode of %d results", count)
	}
	if cap := meta.BatchCapacity(); count > cap {
		return nil, &BatchCapacityError{Index: count, Capacity: cap}
	}
	out := make([]*Result, count)
	for k := range out {
		r, err := DecodeResultAt(meta, slots, k)
		if err != nil {
			return nil, err
		}
		out[k] = r
	}
	return out, nil
}

// Plurality returns the label index with the most votes (ties break low).
func (r *Result) Plurality() int {
	best := 0
	for i, v := range r.Votes {
		if v > r.Votes[best] {
			best = i
		}
	}
	return best
}
