package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"copse/internal/bits"
	"copse/internal/matrix"
)

// Tree-wise forest sharding: ShardForest splits one compiled model into
// K self-contained shard artifacts whose encrypted results merge with
// plain ciphertext additions. Every shard keeps the parent's slot
// layout — same QPad/K/NumFeatures, same (Forced)SPad and therefore the
// same BatchBlock, global NumLeaves result window, and its own leaves
// at their global slot positions — so a query batch encrypted once
// against the parent layout evaluates unchanged on every shard, and
// each shard's result ciphertext carries the exact global leaf bits in
// its own trees' slots and zeros everywhere else. Disjoint supports
// make the merge a pure slot-wise add at the (cheap, ~2-limb) result
// level: the gateway needs no keys at all to combine shard results, and
// the merged plaintext is bit-identical to the single-node pipeline.
//
// Exactness of the per-shard level trim: the §4.2.3 selection rule is
// idempotent above a tree's depth — for ℓ ≥ depth(t) every leaf of t
// selects its root branch with an unchanged mask bit, so the global
// pipeline's factors at those levels are duplicates and the bit-valued
// product tree absorbs them. A shard therefore keeps only
// D_s = max depth over its trees level matrices and still reproduces
// the global bits.

// ShardInfo locates one shard inside its parent forest. All ranges are
// half-open global indices.
type ShardInfo struct {
	Index int `json:"index"`
	Count int `json:"count"`

	TreeStart   int `json:"tree_start"`
	TreeEnd     int `json:"tree_end"`
	BranchStart int `json:"branch_start"`
	BranchEnd   int `json:"branch_end"`
	LeafStart   int `json:"leaf_start"`
	LeafEnd     int `json:"leaf_end"`
}

// ShardManifest is the merge manifest accompanying a sharded model: the
// global (parent) Meta the gateway decodes merged results with, the
// per-shard ranges, and the key-material contract every worker of the
// cluster must honour so that one key set serves all shards — chain
// length, the sorted union of every shard's Galois steps, and the
// merged per-step level budget. Two workers constructing backends from
// the same manifest (and the same seed) generate identical keys.
type ShardManifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`

	// ChainLevels is the modulus-chain length cluster backends use for
	// plaintext-model (offload) serving — the parent plan's chain capped
	// at the parent recommendation, mirroring Service's sizing rule.
	ChainLevels int `json:"chain_levels"`
	// QueryLevel is the level the gateway encrypts query planes at (0
	// when the parent carries no plan; backends then encrypt at top).
	QueryLevel int `json:"query_level"`
	// RotationSteps is the sorted union of every shard's step set.
	RotationSteps []int `json:"rotation_steps"`
	// RotationStepLevels is the per-step Galois-key level budget merged
	// across shards (deepest need wins).
	RotationStepLevels map[int]int `json:"rotation_step_levels,omitempty"`

	// Meta is the parent model's metadata (including its level plan):
	// what the gateway uses to encrypt queries and decode merged
	// results.
	Meta Meta `json:"meta"`

	Ranges []ShardInfo `json:"ranges"`
}

// manifestMagic versions the manifest file format.
const manifestMagic = "COPSE-manifest-v1"

type manifestFile struct {
	Magic string `json:"magic"`
	ShardManifest
}

// WriteManifest serializes the manifest as JSON.
func (m *ShardManifest) WriteManifest(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&manifestFile{Magic: manifestMagic, ShardManifest: *m})
}

// ReadManifest deserializes a merge manifest.
func ReadManifest(r io.Reader) (*ShardManifest, error) {
	var f manifestFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding shard manifest: %w", err)
	}
	if f.Magic != manifestMagic {
		return nil, fmt.Errorf("core: not a COPSE shard manifest (magic %q)", f.Magic)
	}
	return &f.ShardManifest, nil
}

// ShardForest splits a compiled forest tree-wise into the given number
// of self-contained shards plus the merge manifest. Shards are
// contiguous tree ranges balanced by branch count. The input must be an
// unsharded model with at least `shards` trees.
func ShardForest(c *Compiled, shards int) ([]*Compiled, *ShardManifest, error) {
	m := &c.Meta
	if c.Shard != nil {
		return nil, nil, fmt.Errorf("core: cannot re-shard shard %d/%d", c.Shard.Index, c.Shard.Count)
	}
	if shards < 1 {
		return nil, nil, fmt.Errorf("core: shard count %d < 1", shards)
	}
	if shards > m.NumTrees {
		return nil, nil, fmt.Errorf("core: cannot split %d trees into %d shards", m.NumTrees, shards)
	}
	if len(m.TreeLeafOffsets) != m.NumTrees+1 {
		return nil, nil, fmt.Errorf("core: malformed TreeLeafOffsets (%d entries for %d trees)", len(m.TreeLeafOffsets), m.NumTrees)
	}

	branchTree, err := branchOwners(c)
	if err != nil {
		return nil, nil, err
	}
	// Branches are enumerated in tree preorder, so each tree's branches
	// form one contiguous range.
	treeBranchOffsets := make([]int, m.NumTrees+1)
	for b, t := range branchTree {
		treeBranchOffsets[t+1] = b + 1
	}
	for t := 1; t <= m.NumTrees; t++ {
		if treeBranchOffsets[t] < treeBranchOffsets[t-1] {
			return nil, nil, fmt.Errorf("core: tree %d has no branches", t-1)
		}
		if treeBranchOffsets[t] == 0 {
			treeBranchOffsets[t] = treeBranchOffsets[t-1]
		}
	}

	branchCol, err := branchColumns(c)
	if err != nil {
		return nil, nil, err
	}
	rootDepths := treeDepths(c, treeBranchOffsets)

	bounds := shardBounds(treeBranchOffsets, shards)
	planShuffle := false
	if m.LevelPlan != nil {
		// Compile does not record Options.PlanShuffle, but a plan built
		// with it reserves Final ≥ the shuffle entry in both scenarios;
		// re-plan shards with the same headroom.
		planShuffle = m.LevelPlan.Cipher.Final >= m.LevelPlan.ShuffleLevel() &&
			m.LevelPlan.Plain.Final >= m.LevelPlan.ShuffleLevel()
	}

	out := make([]*Compiled, shards)
	manifest := &ShardManifest{
		Version:            1,
		Shards:             shards,
		Meta:               *m,
		RotationStepLevels: map[int]int{},
	}
	stepSet := map[int]bool{}
	for i := range out {
		info := ShardInfo{
			Index:       i,
			Count:       shards,
			TreeStart:   bounds[i],
			TreeEnd:     bounds[i+1],
			BranchStart: treeBranchOffsets[bounds[i]],
			BranchEnd:   treeBranchOffsets[bounds[i+1]],
			LeafStart:   m.TreeLeafOffsets[bounds[i]],
			LeafEnd:     m.TreeLeafOffsets[bounds[i+1]],
		}
		sc, err := buildShard(c, info, branchCol, rootDepths, planShuffle)
		if err != nil {
			return nil, nil, fmt.Errorf("core: building shard %d/%d: %w", i, shards, err)
		}
		if m.LevelPlan != nil {
			// Queries are encrypted once against the parent plan and the
			// engine only ever drops levels, so every shard's compare
			// entry must sit at or below the parent's in both scenarios
			// (a smaller circuit schedules shallower; this guards the
			// invariant rather than establishing it).
			sp := sc.Meta.LevelPlan
			if sp == nil {
				return nil, nil, fmt.Errorf("core: shard %d/%d: no feasible level plan (parent has one)", i, shards)
			}
			if sp.Plain.Compare > m.LevelPlan.Plain.Compare || sp.Cipher.Compare > m.LevelPlan.Cipher.Compare {
				return nil, nil, fmt.Errorf("core: shard %d/%d schedules compare at (%d,%d) above the parent's (%d,%d)",
					i, shards, sp.Cipher.Compare, sp.Plain.Compare, m.LevelPlan.Cipher.Compare, m.LevelPlan.Plain.Compare)
			}
		}
		out[i] = sc
		manifest.Ranges = append(manifest.Ranges, info)
		for _, s := range sc.Meta.RotationSteps {
			stepSet[s] = true
		}
		for s, lvl := range sc.Meta.RotationStepLevels(false) {
			if cur, ok := manifest.RotationStepLevels[s]; !ok || lvl > cur {
				manifest.RotationStepLevels[s] = lvl
			}
		}
	}
	manifest.RotationSteps = sortedSteps(stepSet)
	manifest.ChainLevels = m.RecommendedLevels
	if m.LevelPlan != nil {
		manifest.ChainLevels = min(m.LevelPlan.ChainLevels(false), m.RecommendedLevels)
		manifest.QueryLevel = m.LevelPlan.QueryLevel()
	}
	// Steps assigned no budget entry stay at the chain top; drop
	// budgeted steps the union added back at top for another shard.
	for s := range manifest.RotationStepLevels {
		if !stepSet[s] {
			delete(manifest.RotationStepLevels, s)
		}
	}
	return out, manifest, nil
}

// buildShard constructs one shard's Compiled.
func buildShard(c *Compiled, info ShardInfo, branchCol []int, rootDepths []int, planShuffle bool) (*Compiled, error) {
	g := &c.Meta
	bS := info.BranchEnd - info.BranchStart
	if bS == 0 {
		return nil, fmt.Errorf("empty branch range")
	}
	dS := 1
	for t := info.TreeStart; t < info.TreeEnd; t++ {
		dS = max(dS, rootDepths[t])
	}

	// Threshold planes: the shard's own branch thresholds at their
	// global columns; every other column is the sentinel 0, exactly like
	// the parent's padding columns — the shard reshuffle never reads
	// them, and a worker holding this shard learns nothing about other
	// shards' thresholds.
	thresholdBits := make([][]uint64, g.Precision)
	for p := range thresholdBits {
		thresholdBits[p] = make([]uint64, g.QPad)
	}
	for r := info.BranchStart; r < info.BranchEnd; r++ {
		col := branchCol[r]
		for p := range thresholdBits {
			thresholdBits[p][col] = c.ThresholdBits[p][col]
		}
	}

	// Reshuffle: shard branches as rows (local indices), global columns.
	reshuffle := matrix.NewBool(bS, g.QPad)
	for r := info.BranchStart; r < info.BranchEnd; r++ {
		reshuffle.Set(r-info.BranchStart, branchCol[r], 1)
	}

	// Level matrices and masks: global leaf rows (so the result lands at
	// global slot positions), shard-local branch columns, rows outside
	// the shard's leaf range left zero (their product accumulates to 0),
	// trimmed to the shard's own depth.
	levels := make([]*matrix.Bool, dS)
	masks := make([][]uint64, dS)
	for l := 1; l <= dS; l++ {
		lm := matrix.NewBool(g.NumLeaves, bS)
		mask := make([]uint64, g.NumLeaves)
		src := c.Levels[l-1]
		for leaf := info.LeafStart; leaf < info.LeafEnd; leaf++ {
			for b := info.BranchStart; b < info.BranchEnd; b++ {
				if src.At(leaf, b) == 1 {
					lm.Set(leaf, b-info.BranchStart, 1)
				}
			}
			mask[leaf] = c.Masks[l-1][leaf]
		}
		levels[l-1] = lm
		masks[l-1] = mask
	}

	meta := *g
	meta.NumTrees = info.TreeEnd - info.TreeStart
	meta.B = bS
	meta.BPad = bits.NextPow2(bS)
	meta.D = dS
	meta.LabelNames = append([]string(nil), g.LabelNames...)
	meta.Codebook = append([]int(nil), g.Codebook...)
	meta.TreeLeafOffsets = append([]int(nil), g.TreeLeafOffsets[info.TreeStart:info.TreeEnd+1]...)
	meta.ForcedSPad = g.SPad()
	if meta.SPad() != g.SPad() || meta.BatchBlock() != g.BatchBlock() {
		return nil, fmt.Errorf("shard layout diverged from parent (SPad %d vs %d)", meta.SPad(), g.SPad())
	}

	nPad := bits.NextPow2(g.NumLeaves)
	meta.BSGSPlans = nil
	if meta.UseBSGS {
		seen := map[int]bool{}
		for _, period := range []int{g.QPad, meta.BPad, nPad} {
			if seen[period] {
				continue
			}
			seen[period] = true
			baby, giant := matrix.BSGSSplit(period)
			meta.BSGSPlans = append(meta.BSGSPlans, BSGSPlan{Period: period, Baby: baby, Giant: giant})
		}
	}
	meta.RotationSteps = rotationSteps(g.QPad, meta.BPad, nPad, g.Slots, meta.UseBSGS)

	logp := log2Ceil(g.Precision)
	logd := log2Ceil(max(dS, 1))
	meta.CtDepthCipherModel = (logp + 2) + 3 + logd
	meta.CtDepthPlainModel = (logp + 1) + logd
	meta.RecommendedLevels = meta.CtDepthCipherModel + 5 + log2Ceil(meta.BPad)/3
	meta.LevelPlan = nil
	if g.LevelPlan != nil {
		meta.LevelPlan = computeLevelPlan(&meta, planShuffle, slackConfig{})
	}

	return &Compiled{
		Meta:          meta,
		ThresholdBits: thresholdBits,
		Reshuffle:     reshuffle,
		Levels:        levels,
		Masks:         masks,
		Shard:         &info,
	}, nil
}

// branchOwners recovers each branch's tree from the level matrices:
// every branch is selected (at the level equal to its own) by at least
// one leaf below it, and leaves are tree-partitioned by
// TreeLeafOffsets.
func branchOwners(c *Compiled) ([]int, error) {
	m := &c.Meta
	owner := make([]int, m.B)
	for i := range owner {
		owner[i] = -1
	}
	for t := 0; t < m.NumTrees; t++ {
		for leaf := m.TreeLeafOffsets[t]; leaf < m.TreeLeafOffsets[t+1]; leaf++ {
			for _, lm := range c.Levels {
				for b := 0; b < m.B; b++ {
					if lm.At(leaf, b) != 1 {
						continue
					}
					if owner[b] >= 0 && owner[b] != t {
						return nil, fmt.Errorf("core: branch %d claimed by trees %d and %d", b, owner[b], t)
					}
					owner[b] = t
				}
			}
		}
	}
	for b, t := range owner {
		if t < 0 {
			return nil, fmt.Errorf("core: branch %d appears in no level matrix", b)
		}
	}
	return owner, nil
}

// branchColumns recovers each branch's threshold column from the
// reshuffle matrix (one 1 per row).
func branchColumns(c *Compiled) ([]int, error) {
	cols := make([]int, c.Meta.B)
	for r := 0; r < c.Meta.B; r++ {
		cols[r] = -1
		for col := 0; col < c.Meta.QPad; col++ {
			if c.Reshuffle.At(r, col) == 1 {
				if cols[r] >= 0 {
					return nil, fmt.Errorf("core: reshuffle row %d has multiple columns", r)
				}
				cols[r] = col
			}
		}
		if cols[r] < 0 {
			return nil, fmt.Errorf("core: reshuffle row %d is empty", r)
		}
	}
	return cols, nil
}

// treeDepths recovers each tree's depth from the level matrices: the
// root branch (the tree's first, in preorder) has level = depth, and
// for ℓ ≥ depth every leaf of the tree selects it — so the depth is one
// past the last level at which some leaf still selects a non-root
// ancestor (1 when even level 1 selects the root everywhere).
func treeDepths(c *Compiled, treeBranchOffsets []int) []int {
	m := &c.Meta
	depths := make([]int, m.NumTrees)
	for t := range depths {
		root := treeBranchOffsets[t]
		depth := 1
		for l := m.D; l >= 1; l-- {
			nonRoot := false
			for leaf := m.TreeLeafOffsets[t]; leaf < m.TreeLeafOffsets[t+1] && !nonRoot; leaf++ {
				for b := treeBranchOffsets[t]; b < treeBranchOffsets[t+1]; b++ {
					if b != root && c.Levels[l-1].At(leaf, b) == 1 {
						nonRoot = true
						break
					}
				}
			}
			if nonRoot {
				depth = l + 1
				break
			}
		}
		depths[t] = min(depth, m.D)
	}
	return depths
}

// shardBounds splits the trees into contiguous ranges balanced by
// branch count: bounds[i] is shard i's first tree, bounds[shards] is
// NumTrees. Every shard gets at least one tree.
func shardBounds(treeBranchOffsets []int, shards int) []int {
	numTrees := len(treeBranchOffsets) - 1
	bounds := make([]int, shards+1)
	bounds[shards] = numTrees
	t := 0
	for i := 0; i < shards; i++ {
		bounds[i] = t
		remainingShards := shards - i
		remainingBranches := treeBranchOffsets[numTrees] - treeBranchOffsets[t]
		target := (remainingBranches + remainingShards - 1) / remainingShards
		took := 0
		// Take trees until the branch target is met, always leaving one
		// tree per remaining shard.
		for t < numTrees-(remainingShards-1) {
			if took > 0 && took+branchesOf(treeBranchOffsets, t) > target {
				break
			}
			took += branchesOf(treeBranchOffsets, t)
			t++
			if took >= target {
				break
			}
		}
		if t == bounds[i] { // always advance
			t++
		}
	}
	return bounds
}

func branchesOf(treeBranchOffsets []int, t int) int {
	return treeBranchOffsets[t+1] - treeBranchOffsets[t]
}

func sortedSteps(set map[int]bool) []int {
	steps := make([]int, 0, len(set))
	for s := range set {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps
}
