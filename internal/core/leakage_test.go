package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"copse/internal/he"
	"copse/internal/he/heclear"
	"copse/internal/model"
)

// TestTable3LeakageTwoParty transcribes and checks the paper's Table 3.
func TestTable3LeakageTwoParty(t *testing.T) {
	type row struct {
		scenario Scenario
		party    Party
		want     Leakage
	}
	rows := []row{
		// S, M = D: revealed to S: q, b, d.
		{ScenarioOffload, PartyServer, Leakage{Q: true, B: true, D: true}},
		{ScenarioOffload, PartyModelOwner, Leakage{}},
		{ScenarioOffload, PartyDataOwner, Leakage{}},
		// S = M, D: revealed to D: K, b.
		{ScenarioServerModel, PartyServer, Leakage{}},
		{ScenarioServerModel, PartyModelOwner, Leakage{}},
		{ScenarioServerModel, PartyDataOwner, Leakage{K: true, B: true}},
		// S = D, M: revealed to S: q, b, K, d; to D: q, b, K.
		{ScenarioClientEval, PartyServer, Leakage{Q: true, B: true, K: true, D: true}},
		{ScenarioClientEval, PartyModelOwner, Leakage{}},
		{ScenarioClientEval, PartyDataOwner, Leakage{Q: true, B: true, K: true}},
	}
	for _, r := range rows {
		if got := Revealed(r.scenario, r.party); got != r.want {
			t.Errorf("Revealed(%d, %d) = %+v, want %+v", r.scenario, r.party, got, r.want)
		}
	}
}

// TestTable4LeakageThreeParty transcribes and checks the paper's Table 4.
func TestTable4LeakageThreeParty(t *testing.T) {
	// No collusion.
	if got := Revealed(ScenarioThreeParty, PartyServer); got != (Leakage{Q: true, B: true, D: true, K: true}) {
		t.Errorf("three-party S view: %+v", got)
	}
	if got := Revealed(ScenarioThreeParty, PartyModelOwner); got != (Leakage{}) {
		t.Errorf("three-party M view: %+v", got)
	}
	if got := Revealed(ScenarioThreeParty, PartyDataOwner); got != (Leakage{K: true, B: true}) {
		t.Errorf("three-party D view: %+v", got)
	}
	// Collusion with M: S and M learn everything, D still only K, b.
	for _, p := range []Party{PartyServer, PartyModelOwner} {
		if got := Revealed(ScenarioColludeSM, p); !got.Everything {
			t.Errorf("collude-SM party %d should learn everything: %+v", p, got)
		}
	}
	if got := Revealed(ScenarioColludeSM, PartyDataOwner); got.Everything {
		t.Errorf("collude-SM D should not learn everything: %+v", got)
	}
	// Collusion with D: S and D learn everything, M nothing.
	for _, p := range []Party{PartyServer, PartyDataOwner} {
		if got := Revealed(ScenarioColludeSD, p); !got.Everything {
			t.Errorf("collude-SD party %d should learn everything: %+v", p, got)
		}
	}
	if got := Revealed(ScenarioColludeSD, PartyModelOwner); got != (Leakage{}) {
		t.Errorf("collude-SD M view: %+v", got)
	}
}

// TestInferServerView shows the leakage is real: the quantities of
// Table 3 are recoverable from ciphertext collection shapes alone.
func TestInferServerView(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true) // fully encrypted model
	if err != nil {
		t.Fatal(err)
	}
	view := InferServerView(m)
	if view.QPad != c.Meta.QPad {
		t.Errorf("inferred q̂ = %d, want %d", view.QPad, c.Meta.QPad)
	}
	if view.BPad != c.Meta.BPad {
		t.Errorf("inferred b̂ = %d, want %d", view.BPad, c.Meta.BPad)
	}
	if view.D != c.Meta.D {
		t.Errorf("inferred d = %d, want %d", view.D, c.Meta.D)
	}
	if view.P != c.Meta.Precision {
		t.Errorf("inferred p = %d, want %d", view.P, c.Meta.Precision)
	}
	dv := InferDataOwnerView(&c.Meta)
	if dv.K != 3 || dv.NumLeaves != 6 {
		t.Errorf("data owner view: %+v", dv)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	c := compileFigure1(t)
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.String() != c.Meta.String() {
		t.Errorf("meta changed: %s vs %s", back.Meta.String(), c.Meta.String())
	}
	for i := 0; i < c.Reshuffle.Rows; i++ {
		for j := 0; j < c.Reshuffle.Cols; j++ {
			if back.Reshuffle.At(i, j) != c.Reshuffle.At(i, j) {
				t.Fatalf("reshuffle[%d][%d] changed", i, j)
			}
		}
	}
	if len(back.Levels) != len(c.Levels) || len(back.Masks) != len(c.Masks) {
		t.Fatal("levels/masks dropped")
	}
	// The round-tripped artifact must still classify correctly.
	b := heclear.New(64, 65537)
	m, err := Prepare(b, back, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	got := classifySecure(t, e, m, []uint64{0, 5}, true)
	if got[0] != 4 {
		t.Errorf("restored artifact Classify(0,5) = %v, want L4", got)
	}
}

func TestArtifactBadInput(t *testing.T) {
	if _, err := ReadArtifact(bytes.NewReader([]byte("not an artifact"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadArtifact(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// TestBatchedShuffleLeakage extends the shuffle leakage checks to the
// batched path: with the same query packed into every block (identical
// unshuffled leaf patterns), each block's hot slot must move across
// seeds, and within one seed the blocks must not share a permutation —
// the data owner cannot link one packed query's shuffled layout to
// another's. Shuffles run concurrently from several goroutines so the
// -race suite doubles as the concurrency check for the batched kernel.
func TestBatchedShuffleLeakage(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	capacity := m.Meta.BatchCapacity() // 4
	batch := make([][]uint64, capacity)
	for i := range batch {
		batch[i] = []uint64{0, 5} // every block classifies as L4
	}
	q, err := PrepareQueryBatch(b, &m.Meta, batch, true)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}

	const seeds = 8
	padTo := m.Meta.SPad()
	hot := make([][]int, seeds) // hot[seed][block]
	errCh := make(chan error, seeds)
	var mu sync.Mutex
	for seed := 0; seed < seeds; seed++ {
		go func(seed int) {
			shuffled, cbs, err := ShuffleResultBatch(b, &m.Meta, out, capacity, padTo, uint64(seed+1), 2)
			if err != nil {
				errCh <- err
				return
			}
			if len(cbs) != capacity {
				errCh <- fmt.Errorf("seed %d: %d codebooks", seed, len(cbs))
				return
			}
			slots, err := he.Reveal(b, shuffled)
			if err != nil {
				errCh <- err
				return
			}
			pos := make([]int, capacity)
			block := m.Meta.BatchBlock()
			for k := 0; k < capacity; k++ {
				pos[k] = -1
				for i := 0; i < padTo; i++ {
					if slots[k*block+i] == 1 {
						pos[k] = i
						break
					}
				}
				if pos[k] < 0 {
					errCh <- fmt.Errorf("seed %d block %d: no hot slot", seed, k)
					return
				}
			}
			mu.Lock()
			hot[seed] = pos
			mu.Unlock()
			errCh <- nil
		}(seed)
	}
	for i := 0; i < seeds; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	// Across seeds, each block's hot slot must move.
	for k := 0; k < capacity; k++ {
		positions := map[int]bool{}
		for seed := 0; seed < seeds; seed++ {
			positions[hot[seed][k]] = true
		}
		if len(positions) < 3 {
			t.Errorf("block %d: hot slot landed in only %d positions over %d seeds", k, len(positions), seeds)
		}
	}
	// Within a seed, identical inputs must not land identically in every
	// block (independent per-block permutations). A full coincidence is
	// possible by chance ((1/8)^3 per seed here), so assert over the
	// aggregate: most seeds must show differing blocks.
	coincidences := 0
	for seed := 0; seed < seeds; seed++ {
		allSame := true
		for k := 1; k < capacity; k++ {
			if hot[seed][k] != hot[seed][0] {
				allSame = false
				break
			}
		}
		if allSame {
			coincidences++
		}
	}
	if coincidences > seeds/2 {
		t.Errorf("identical packed queries shared one hot slot across all blocks in %d of %d seeds (linked permutations?)", coincidences, seeds)
	}
}

// TestBatchedShuffleLeakageBGV is the same property on real BGV
// ciphertexts (fewer seeds; the kernel is the slow part).
func TestBatchedShuffleLeakageBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV batched shuffle leakage is slow")
	}
	forest := model.Figure1()
	c, err := Compile(forest, Options{Slots: 1024, PlanShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	b := newBGVBackend(t, c)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b, Workers: 4}
	const packed = 3
	batch := make([][]uint64, packed)
	for i := range batch {
		batch[i] = []uint64{0, 5}
	}
	q, err := PrepareQueryBatch(b, &m.Meta, batch, true)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}
	block := m.Meta.BatchBlock()
	padTo := m.Meta.SPad()
	differs := false
	for seed := uint64(1); seed <= 3 && !differs; seed++ {
		shuffled, _, err := ShuffleResultBatch(b, &m.Meta, out, packed, padTo, seed, 2)
		if err != nil {
			t.Fatal(err)
		}
		slots, err := he.Reveal(b, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		hot := make([]int, packed)
		for k := 0; k < packed; k++ {
			hot[k] = -1
			for i := 0; i < padTo; i++ {
				if slots[k*block+i] == 1 {
					hot[k] = i
					break
				}
			}
			if hot[k] < 0 {
				t.Fatalf("seed %d block %d: no hot slot", seed, k)
			}
		}
		for k := 1; k < packed; k++ {
			if hot[k] != hot[0] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("identical packed queries always shared a hot slot across blocks")
	}
}
