package core

import (
	"bytes"
	"testing"

	"copse/internal/he/heclear"
)

// TestTable3LeakageTwoParty transcribes and checks the paper's Table 3.
func TestTable3LeakageTwoParty(t *testing.T) {
	type row struct {
		scenario Scenario
		party    Party
		want     Leakage
	}
	rows := []row{
		// S, M = D: revealed to S: q, b, d.
		{ScenarioOffload, PartyServer, Leakage{Q: true, B: true, D: true}},
		{ScenarioOffload, PartyModelOwner, Leakage{}},
		{ScenarioOffload, PartyDataOwner, Leakage{}},
		// S = M, D: revealed to D: K, b.
		{ScenarioServerModel, PartyServer, Leakage{}},
		{ScenarioServerModel, PartyModelOwner, Leakage{}},
		{ScenarioServerModel, PartyDataOwner, Leakage{K: true, B: true}},
		// S = D, M: revealed to S: q, b, K, d; to D: q, b, K.
		{ScenarioClientEval, PartyServer, Leakage{Q: true, B: true, K: true, D: true}},
		{ScenarioClientEval, PartyModelOwner, Leakage{}},
		{ScenarioClientEval, PartyDataOwner, Leakage{Q: true, B: true, K: true}},
	}
	for _, r := range rows {
		if got := Revealed(r.scenario, r.party); got != r.want {
			t.Errorf("Revealed(%d, %d) = %+v, want %+v", r.scenario, r.party, got, r.want)
		}
	}
}

// TestTable4LeakageThreeParty transcribes and checks the paper's Table 4.
func TestTable4LeakageThreeParty(t *testing.T) {
	// No collusion.
	if got := Revealed(ScenarioThreeParty, PartyServer); got != (Leakage{Q: true, B: true, D: true, K: true}) {
		t.Errorf("three-party S view: %+v", got)
	}
	if got := Revealed(ScenarioThreeParty, PartyModelOwner); got != (Leakage{}) {
		t.Errorf("three-party M view: %+v", got)
	}
	if got := Revealed(ScenarioThreeParty, PartyDataOwner); got != (Leakage{K: true, B: true}) {
		t.Errorf("three-party D view: %+v", got)
	}
	// Collusion with M: S and M learn everything, D still only K, b.
	for _, p := range []Party{PartyServer, PartyModelOwner} {
		if got := Revealed(ScenarioColludeSM, p); !got.Everything {
			t.Errorf("collude-SM party %d should learn everything: %+v", p, got)
		}
	}
	if got := Revealed(ScenarioColludeSM, PartyDataOwner); got.Everything {
		t.Errorf("collude-SM D should not learn everything: %+v", got)
	}
	// Collusion with D: S and D learn everything, M nothing.
	for _, p := range []Party{PartyServer, PartyDataOwner} {
		if got := Revealed(ScenarioColludeSD, p); !got.Everything {
			t.Errorf("collude-SD party %d should learn everything: %+v", p, got)
		}
	}
	if got := Revealed(ScenarioColludeSD, PartyModelOwner); got != (Leakage{}) {
		t.Errorf("collude-SD M view: %+v", got)
	}
}

// TestInferServerView shows the leakage is real: the quantities of
// Table 3 are recoverable from ciphertext collection shapes alone.
func TestInferServerView(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true) // fully encrypted model
	if err != nil {
		t.Fatal(err)
	}
	view := InferServerView(m)
	if view.QPad != c.Meta.QPad {
		t.Errorf("inferred q̂ = %d, want %d", view.QPad, c.Meta.QPad)
	}
	if view.BPad != c.Meta.BPad {
		t.Errorf("inferred b̂ = %d, want %d", view.BPad, c.Meta.BPad)
	}
	if view.D != c.Meta.D {
		t.Errorf("inferred d = %d, want %d", view.D, c.Meta.D)
	}
	if view.P != c.Meta.Precision {
		t.Errorf("inferred p = %d, want %d", view.P, c.Meta.Precision)
	}
	dv := InferDataOwnerView(&c.Meta)
	if dv.K != 3 || dv.NumLeaves != 6 {
		t.Errorf("data owner view: %+v", dv)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	c := compileFigure1(t)
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.String() != c.Meta.String() {
		t.Errorf("meta changed: %s vs %s", back.Meta.String(), c.Meta.String())
	}
	for i := 0; i < c.Reshuffle.Rows; i++ {
		for j := 0; j < c.Reshuffle.Cols; j++ {
			if back.Reshuffle.At(i, j) != c.Reshuffle.At(i, j) {
				t.Fatalf("reshuffle[%d][%d] changed", i, j)
			}
		}
	}
	if len(back.Levels) != len(c.Levels) || len(back.Masks) != len(c.Masks) {
		t.Fatal("levels/masks dropped")
	}
	// The round-tripped artifact must still classify correctly.
	b := heclear.New(64, 65537)
	m, err := Prepare(b, back, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	got := classifySecure(t, e, m, []uint64{0, 5}, true)
	if got[0] != 4 {
		t.Errorf("restored artifact Classify(0,5) = %v, want L4", got)
	}
}

func TestArtifactBadInput(t *testing.T) {
	if _, err := ReadArtifact(bytes.NewReader([]byte("not an artifact"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadArtifact(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
