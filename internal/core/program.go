package core

import (
	"sync"

	"copse/internal/he"
	"copse/internal/matrix"
)

// This file implements the model-specialized op program: at Prepare time
// the artifact plus its level plan is compiled into a flat, static
// schedule of primitive homomorphic ops (DESIGN.md §13). The engine then
// executes that schedule instead of re-deriving the pipeline structure —
// BSGS loop bounds, rotation steps, level-drop targets, XOR decomposition
// — on every Classify call, and the builder applies model-visible
// algebraic rewrites the generic interpreter cannot:
//
//   - gt_j = x_j·(1−y_j) = x_j − x_j·y_j reuses the product the XOR of
//     eq_j already computed, saving one ct-ct multiplication per bit
//     plane;
//   - the inclusive prefix product of the last bit plane is never read
//     by the gt sum, so its Sklansky chain (and the last plane's eq
//     chain) is dead code;
//   - the gt sum accumulates lazy (unrelinearized) products and pays for
//     a single relinearization instead of one per plane;
//   - the j=0 gt term's multiply-by-ones is the identity;
//   - the plaintext constants of ¬ and ⊕ (ones, XOR coefficient/offset
//     pairs) are encoded once at bind time instead of per call;
//   - with a plaintext model, eq_j = ¬(x_j ⊕ y_j) folds into a single
//     affine pair, gt_j into one plaintext multiplication, and an
//     all-zero level mask into the identity.
//
// Every rewrite preserves the decrypted result bit-for-bit (BGV
// arithmetic mod t is exact; only noise estimates differ), which the
// specialized-vs-generic property tests assert across the scenario
// corpus. Registers are SSA — each op writes a fresh register — so the
// block segments below parallelize without synchronization and the merge
// order stays deterministic.

// opCode enumerates the primitive ops of the program IR. The operand
// fields of progOp are interpreted per code; see KernelCtx for the
// runtime semantics (the interpreter and the generated kernels share its
// methods, so the two executors are bit-identical by construction).
type opCode uint8

const (
	opQuery   opCode = iota // R[Dst] = query bit plane Imm
	opThresh                // R[Dst] = model threshold plane Imm
	opMask                  // R[Dst] = level mask Imm
	opConst                 // R[Dst] = bound plaintext constant Imm
	opAdd                   // R[Dst] = R[A] + R[B]
	opSub                   // R[Dst] = R[A] − R[B] (both ciphertext)
	opMul                   // R[Dst] = R[A] · R[B]
	opMulLazy               // R[Dst] = R[A] ⊗ R[B] (unrelinearized)
	opMulDiag               // R[Dst] = diag(Imm, Imm2) ⊗ R[A] (lazy)
	opRelin                 // R[Dst] = relinearize(R[A])
	opNeg                   // R[Dst] = −R[A] (ciphertext)
	opRot                   // R[Dst] = rot(R[A], Imm)
	opHoist                 // R[Dst+i] = rot(R[A], hoists[Imm][i]) (hoisted)
	opDrop                  // R[Dst] = R[A] switched down to level Imm
)

// progOp is one op of the flat program. Dst/A/B are register indices;
// Imm/Imm2 carry per-code immediates (plane index, rotation step, level,
// matrix/diagonal index, hoist-table index).
type progOp struct {
	Code      opCode
	Dst, A, B int
	Imm, Imm2 int
}

// Pipeline stage tags, in execution order. Blocks carry them so the
// executor can keep the per-stage trace windows of the generic path, and
// generated kernels mark the same boundaries with KernelCtx.Stage.
const (
	stCompare = iota
	stReshuffle
	stLevels
	stAccumulate
	stDone
)

// progBlock is a run of contiguous ops split into segments. Blocks
// execute in order; within a block the segments are independent (SSA
// registers, disjoint writes) and run on the engine's worker pool. All
// cross-segment merges live in later single-segment blocks, in fixed
// index order, so the result is identical for any worker count.
type progBlock struct {
	Stage int
	Segs  [][2]int // [start, end) op index ranges
}

// constKind enumerates the bind-time plaintext constants. Their slot
// values are derived from the model's plaintext components and the
// backend's plaintext modulus when the program is bound, so the program
// itself is backend-agnostic (and the generated kernel source carries
// only indices).
type constKind uint8

const (
	ckOnes       constKind = iota // all-ones (the ¬ offset)
	ckThreshCoef                  // (2·y−1) mod t over threshold plane Index (eq fold)
	ckThreshNot                   // (1−y) mod t over threshold plane Index (eq offset and gt factor)
	ckMaskCoef                    // (1−2·m) mod t over padded mask Index
	ckMaskAdd                     // m mod t over padded mask Index
)

type constSpec struct {
	Kind  constKind
	Index int
}

// Program is the compiled op schedule for one prepared model. It is
// built by buildProgram at Prepare time, bound to a backend once
// (plaintext constants encoded), and executed by Engine.ClassifyCtx in
// place of the generic interpreter whenever the engine configuration
// matches the assumptions baked in at build time (see eval.go's
// dispatch).
type Program struct {
	ops    []progOp
	blocks []progBlock
	hoists [][]int
	consts []constSpec
	numReg int
	result int

	// Trace registers: the carrier operands whose limb counts the
	// per-stage trace reports, mirroring the generic path's boundaries.
	regQuery, regDecisions, regBranchVec, regLevelResult int

	// Build-time assumptions the dispatch gate checks against the
	// engine configuration.
	planned   bool // level-plan drops are baked in
	skipZero  bool // all-zero diagonals are skipped (plaintext models)
	encrypted bool

	// stageLimbs[stage] is the carrier limb count each pipeline stage
	// runs over under the baked-in level schedule (level+1), or 0 when
	// no schedule was compiled. The executor forwards it as an advisory
	// ring-dispatch hint at every stage transition (KernelCtx.StageLimbs).
	stageLimbs [stDone]int

	// Plaintext component values backing the bind-time constants
	// (plaintext models only; nil entries where unused).
	threshVals [][]uint64
	maskVals   [][]uint64

	bound   []he.Operand // staged constants, set by bind
	kernel  KernelFunc   // linked generated kernel, if one is registered
	scratch sync.Pool
}

// NumOps returns the op count — the registry's cheap structural
// fingerprint for validating that a linked kernel matches the program
// built from the runtime artifact.
func (p *Program) NumOps() int { return len(p.ops) }

// NumRegs returns the register file size.
func (p *Program) NumRegs() int { return p.numReg }

// progInputs is everything buildProgram needs. It is assembled either
// from freshly prepared operands (PrepareWithPlan) or from the compiled
// artifact alone (GenerateKernel), producing the same program.
type progInputs struct {
	meta      Meta
	plan      *StageLevels // nil = no scheduled drops
	encrypted bool
	slots     int
	planes    int
	reshuffle diagShape
	levels    []diagShape
	// Plaintext model components (nil when encrypted): the replicated
	// threshold planes and block-padded masks, exactly as staged.
	threshVals [][]uint64
	maskVals   [][]uint64
}

// diagShape is the structural skeleton of a staged diagonal matrix: the
// BSGS split and the plaintext-known zero diagonals. It carries no
// operands, so codegen can build programs straight from an artifact.
type diagShape struct {
	period, baby, giant int
	zero                []bool // per pre-rotated diagonal index
}

// shapeOf extracts the skeleton from staged diagonals; ok is false for
// non-BSGS layouts (old artifacts), which the specializer does not
// cover.
func diagShapeOf(d *matrix.Diagonals) (diagShape, bool) {
	if !d.IsBSGS() {
		return diagShape{}, false
	}
	return diagShape{period: d.Period, baby: d.Baby, giant: d.Giant, zero: d.BsgsZero}, true
}

// shapeFromMatrix computes the skeleton the staging of mtx would
// produce, without a backend: the same BSGS split decision as
// PrepareWithPlan and the same all-zero diagonal flags.
func shapeFromMatrix(m *Meta, mtx *matrix.Bool, period int) (diagShape, bool) {
	baby, giant, ok := m.BSGSFor(period)
	if !m.UseBSGS || !ok {
		return diagShape{}, false
	}
	raw, err := mtx.Diagonals(period)
	if err != nil {
		return diagShape{}, false
	}
	zero := make([]bool, period)
	for i, vec := range raw {
		z := true
		for _, v := range vec {
			if v != 0 {
				z = false
				break
			}
		}
		zero[i] = z
	}
	return diagShape{period: period, baby: baby, giant: giant, zero: zero}, true
}

// programInputsFromCompiled assembles build inputs from an artifact
// alone — the codegen entry point. ok is false when the model's staging
// is outside the specializer's coverage.
func programInputsFromCompiled(c *Compiled, encrypt bool, plan *LevelPlan) (progInputs, bool) {
	in := progInputs{
		meta:      c.Meta,
		encrypted: encrypt,
		slots:     c.Meta.Slots,
		planes:    len(c.ThresholdBits),
	}
	if plan != nil {
		st := plan.For(encrypt)
		in.plan = &st
	}
	var ok bool
	if in.reshuffle, ok = shapeFromMatrix(&c.Meta, c.Reshuffle, c.Meta.QPad); !ok {
		return progInputs{}, false
	}
	for _, lm := range c.Levels {
		sh, ok := shapeFromMatrix(&c.Meta, lm, c.Meta.BPad)
		if !ok {
			return progInputs{}, false
		}
		in.levels = append(in.levels, sh)
	}
	if !encrypt {
		span := c.Meta.BatchBlock()
		for _, plane := range c.ThresholdBits {
			in.threshVals = append(in.threshVals, replicatePlain(plane, c.Meta.QPad, in.slots))
		}
		for _, mask := range c.Masks {
			padded := make([]uint64, in.slots)
			for base := 0; base < len(padded); base += span {
				copy(padded[base:base+len(mask)], mask)
			}
			in.maskVals = append(in.maskVals, padded)
		}
	}
	return in, true
}

// progBuilder accumulates ops, blocks and constants while walking the
// pipeline symbolically.
type progBuilder struct {
	p       *Program
	constIx map[constSpec]int
	segs    [][2]int
	segOpen int
	stage   int
}

func (bl *progBuilder) emit(code opCode, a, b, imm, imm2 int) int {
	dst := bl.p.numReg
	bl.p.numReg++
	bl.p.ops = append(bl.p.ops, progOp{Code: code, Dst: dst, A: a, B: b, Imm: imm, Imm2: imm2})
	return dst
}

// seg runs fn and records the ops it emitted as one segment of the
// current block.
func (bl *progBuilder) seg(fn func()) {
	start := len(bl.p.ops)
	fn()
	if len(bl.p.ops) > start {
		bl.segs = append(bl.segs, [2]int{start, len(bl.p.ops)})
	}
}

// flush closes the current block (if any ops were recorded) under the
// given stage tag.
func (bl *progBuilder) flush(stage int) {
	if len(bl.segs) > 0 {
		bl.p.blocks = append(bl.p.blocks, progBlock{Stage: stage, Segs: bl.segs})
		bl.segs = nil
	}
}

// constReg returns the register of a bind-time constant, deduplicated.
// Loads are free at run time (a register alias), so each constant is
// loaded once in the program preamble block it first appears in.
func (bl *progBuilder) constReg(spec constSpec) int {
	if r, ok := bl.constIx[spec]; ok {
		return r
	}
	idx := len(bl.p.consts)
	bl.p.consts = append(bl.p.consts, spec)
	r := bl.emit(opConst, 0, 0, idx, 0)
	bl.constIx[spec] = r
	return r
}

// drop emits a scheduled level drop when the program is planned.
func (bl *progBuilder) drop(r, level int) int {
	if bl.p.planned && level >= 0 {
		return bl.emit(opDrop, r, 0, level, 0)
	}
	return r
}

// buildProgram compiles the pipeline into a Program, or returns nil when
// the model's staging falls outside the specializer's coverage (non-BSGS
// layouts, empty stages); the engine then keeps the generic interpreter.
func buildProgram(in progInputs) *Program {
	if in.planes == 0 || len(in.levels) == 0 || in.reshuffle.period == 0 {
		return nil
	}
	baby := in.levels[0].baby
	for _, sh := range in.levels {
		if sh.baby != baby || sh.period != in.levels[0].period {
			return nil
		}
	}
	skipZero := !in.encrypted
	// Degenerate stagings (an entirely skippable matrix) take plaintext
	// shortcut paths in the generic kernels; leave them there.
	if skipZero {
		if allZero(in.reshuffle.zero) {
			return nil
		}
		for _, sh := range in.levels {
			if allZero(sh.zero) {
				return nil
			}
		}
	}
	p := &Program{
		planned:    in.plan != nil,
		skipZero:   skipZero,
		encrypted:  in.encrypted,
		threshVals: in.threshVals,
		maskVals:   in.maskVals,
	}
	if in.plan != nil {
		p.stageLimbs[stCompare] = in.plan.Compare + 1
		p.stageLimbs[stReshuffle] = in.plan.Reshuffle + 1
		p.stageLimbs[stLevels] = in.plan.Level + 1
		p.stageLimbs[stAccumulate] = in.plan.Accumulate + 1
	}
	bl := &progBuilder{p: p, constIx: map[constSpec]int{}}
	L := in.plan

	// ---- Stage 1: compare -------------------------------------------
	// Preamble: query planes (dropped to the compare entry), shared
	// constants. Loads are register aliases; only the drops cost work.
	nPlanes := in.planes
	q := make([]int, nPlanes)
	ones := -1
	bl.seg(func() {
		for j := 0; j < nPlanes; j++ {
			q[j] = bl.emit(opQuery, 0, 0, j, 0)
			if L != nil {
				q[j] = bl.drop(q[j], L.Compare)
			}
		}
		if in.encrypted {
			ones = bl.constReg(constSpec{Kind: ckOnes})
		}
	})
	p.regQuery = q[0]
	bl.flush(stCompare)

	// Per-plane eq/gt terms, one independent segment per plane.
	eq := make([]int, nPlanes)
	gt := make([]int, nPlanes)
	for j := 0; j < nPlanes; j++ {
		j := j
		bl.seg(func() {
			if in.encrypted {
				th := bl.emit(opThresh, 0, 0, j, 0)
				prod := bl.emit(opMul, q[j], th, 0, 0)
				sum := bl.emit(opAdd, q[j], th, 0, 0)
				twice := bl.emit(opAdd, prod, prod, 0, 0)
				x := bl.emit(opSub, sum, twice, 0, 0)
				neg := bl.emit(opNeg, x, 0, 0, 0)
				eq[j] = bl.emit(opAdd, neg, ones, 0, 0)
				gt[j] = bl.emit(opSub, q[j], prod, 0, 0)
			} else {
				coef := bl.constReg(constSpec{Kind: ckThreshCoef, Index: j})
				not := bl.constReg(constSpec{Kind: ckThreshNot, Index: j})
				scaled := bl.emit(opMul, q[j], coef, 0, 0)
				eq[j] = bl.emit(opAdd, scaled, not, 0, 0)
				gt[j] = bl.emit(opMul, q[j], not, 0, 0)
			}
		})
	}
	bl.flush(stCompare)

	// Sklansky prefix products over eq, with the per-round level drops
	// of the generic schedule. Each round's multiplications are
	// independent (distinct targets, shared read-only pivots).
	incl := make([]int, nPlanes)
	copy(incl, eq)
	round := 0
	for span := 1; span < nPlanes; span <<= 1 {
		for blockStart := 0; blockStart < nPlanes; blockStart += 2 * span {
			pivot := blockStart + span - 1
			if pivot >= nPlanes {
				break
			}
			for i := pivot + 1; i <= pivot+span && i < nPlanes; i++ {
				i := i
				bl.seg(func() { incl[i] = bl.emit(opMul, incl[i], incl[pivot], 0, 0) })
			}
		}
		bl.flush(stCompare)
		if L != nil && round < len(L.CompareRounds) {
			bl.seg(func() {
				for i := range incl {
					incl[i] = bl.drop(incl[i], L.CompareRounds[round])
				}
			})
			bl.flush(stCompare)
		}
		round++
	}

	// gt = Σ_j gt_j · pre_j with lazy products and one relinearization.
	// pre_0 = 1, so the j=0 term is gt_0 itself.
	terms := make([]int, nPlanes)
	for j := 1; j < nPlanes; j++ {
		j := j
		bl.seg(func() { terms[j] = bl.emit(opMulLazy, gt[j], incl[j-1], 0, 0) })
	}
	bl.flush(stCompare)
	var decisions int
	bl.seg(func() {
		acc := gt[0]
		for j := 1; j < nPlanes; j++ {
			acc = bl.emit(opAdd, acc, terms[j], 0, 0)
		}
		if nPlanes > 1 {
			acc = bl.emit(opRelin, acc, 0, 0, 0)
		}
		if L != nil {
			acc = bl.drop(acc, L.Reshuffle)
		}
		decisions = acc
	})
	p.regDecisions = decisions
	bl.flush(stCompare)

	// ---- Stage 2: reshuffle -----------------------------------------
	branch, ok := bl.matVec(in.reshuffle, decisions, -1, skipZero, stReshuffle)
	if !ok {
		return nil
	}
	bl.seg(func() {
		for pw := in.meta.BPad; pw < in.meta.BatchBlock(); pw <<= 1 {
			rot := bl.emit(opRot, branch, 0, -pw, 0)
			branch = bl.emit(opAdd, branch, rot, 0, 0)
		}
		if L != nil {
			branch = bl.drop(branch, L.Level)
		}
	})
	p.regBranchVec = branch
	bl.flush(stReshuffle)

	// ---- Stage 3: levels --------------------------------------------
	// One shared set of baby rotations feeds every level product; under
	// skipZero only the union of steps some level actually reads is
	// computed (the generic path computes all of them).
	needed := make([]bool, baby)
	needed[0] = true
	for _, sh := range in.levels {
		for i := 0; i < sh.period; i++ {
			if !(skipZero && sh.zero[i]) {
				needed[i%sh.baby] = true
			}
		}
	}
	rots := bl.hoistRots(branch, needed, stLevels)

	lvlGroups := make([][]int, len(in.levels))
	for l, sh := range in.levels {
		lvlGroups[l] = bl.matVecGroups(sh, rots, l, skipZero)
	}
	bl.flush(stLevels)
	lvlRes := make([]int, len(in.levels))
	for l := range in.levels {
		l := l
		bl.seg(func() {
			lvl := bl.mergeGroups(lvlGroups[l])
			if in.encrypted {
				mask := bl.emit(opMask, 0, 0, l, 0)
				prod := bl.emit(opMul, lvl, mask, 0, 0)
				sum := bl.emit(opAdd, lvl, mask, 0, 0)
				twice := bl.emit(opAdd, prod, prod, 0, 0)
				lvl = bl.emit(opSub, sum, twice, 0, 0)
			} else if !allZero(in.maskVals[l]) {
				coef := bl.constReg(constSpec{Kind: ckMaskCoef, Index: l})
				add := bl.constReg(constSpec{Kind: ckMaskAdd, Index: l})
				scaled := bl.emit(opMul, lvl, coef, 0, 0)
				lvl = bl.emit(opAdd, scaled, add, 0, 0)
			}
			// An all-zero plaintext mask XORs to the identity: alias.
			if L != nil {
				lvl = bl.drop(lvl, L.Accumulate)
			}
			lvlRes[l] = lvl
		})
	}
	bl.flush(stLevels)
	p.regLevelResult = lvlRes[0]

	// ---- Stage 4: accumulate ----------------------------------------
	ops := lvlRes
	for len(ops) > 1 {
		pairs := len(ops) / 2
		next := make([]int, pairs)
		for i := 0; i < pairs; i++ {
			i := i
			bl.seg(func() { next[i] = bl.emit(opMul, ops[2*i], ops[2*i+1], 0, 0) })
		}
		bl.flush(stAccumulate)
		if len(ops)%2 == 1 {
			next = append(next, ops[len(ops)-1])
		}
		ops = next
	}
	res := ops[0]
	bl.seg(func() {
		if L != nil {
			res = bl.drop(res, L.Final)
		}
	})
	bl.flush(stAccumulate)
	p.result = res

	p.eliminateDeadOps()
	p.scratch.New = func() any {
		s := make([]he.Operand, p.numReg)
		return &s
	}
	return p
}

// hoistRots emits the hoisted rotations for the needed baby steps and
// returns one register per baby index (index 0 aliases the source).
func (bl *progBuilder) hoistRots(src int, needed []bool, stage int) []int {
	rots := make([]int, len(needed))
	rots[0] = src
	var steps []int
	for j := 1; j < len(needed); j++ {
		if needed[j] {
			steps = append(steps, j)
		}
	}
	if len(steps) > 0 {
		bl.seg(func() {
			bl.p.hoists = append(bl.p.hoists, steps)
			dst := bl.p.numReg
			bl.p.numReg += len(steps)
			bl.p.ops = append(bl.p.ops, progOp{Code: opHoist, Dst: dst, A: src, Imm: len(bl.p.hoists) - 1})
			for i, s := range steps {
				rots[s] = dst + i
			}
		})
		bl.flush(stage)
	}
	return rots
}

// matVecGroups emits the per-giant-group inner products of one BSGS
// matrix-vector product as independent segments of the current block,
// returning the group result registers (-1 for skipped groups).
func (bl *progBuilder) matVecGroups(sh diagShape, rots []int, mat int, skipZero bool) []int {
	groups := make([]int, sh.giant)
	for g := 0; g < sh.giant; g++ {
		g := g
		groups[g] = -1
		any := false
		for j := 0; j < sh.baby; j++ {
			if !(skipZero && sh.zero[g*sh.baby+j]) {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		bl.seg(func() {
			acc := -1
			for j := 0; j < sh.baby; j++ {
				i := g*sh.baby + j
				if skipZero && sh.zero[i] {
					continue
				}
				term := bl.emit(opMulDiag, rots[j], 0, mat, i)
				if acc < 0 {
					acc = term
				} else {
					acc = bl.emit(opAdd, acc, term, 0, 0)
				}
			}
			acc = bl.emit(opRelin, acc, 0, 0, 0)
			if g > 0 {
				acc = bl.emit(opRot, acc, 0, g*sh.baby, 0)
			}
			groups[g] = acc
		})
	}
	return groups
}

// mergeGroups sums group results in index order (the deterministic merge
// of the generic kernel).
func (bl *progBuilder) mergeGroups(groups []int) int {
	acc := -1
	for _, g := range groups {
		if g < 0 {
			continue
		}
		if acc < 0 {
			acc = g
		} else {
			acc = bl.emit(opAdd, acc, g, 0, 0)
		}
	}
	return acc
}

// matVec emits a full BSGS matrix-vector product: hoisted baby
// rotations, parallel group products, serial merge. ok is false when
// every diagonal is skippable (the generic path's plaintext-zeros
// shortcut; unsupported here).
func (bl *progBuilder) matVec(sh diagShape, vec, mat int, skipZero bool, stage int) (int, bool) {
	needed := make([]bool, sh.baby)
	needed[0] = true
	anyDiag := false
	for i := 0; i < sh.period; i++ {
		if !(skipZero && sh.zero[i]) {
			needed[i%sh.baby] = true
			anyDiag = true
		}
	}
	if !anyDiag {
		return 0, false
	}
	rots := bl.hoistRots(vec, needed, stage)
	groups := bl.matVecGroups(sh, rots, mat, skipZero)
	bl.flush(stage)
	var out int
	bl.seg(func() { out = bl.mergeGroups(groups) })
	bl.flush(stage)
	return out, true
}

// eliminateDeadOps removes ops whose results never reach the program
// result (or a trace register): with the gt sum reading only the first
// p−1 inclusive prefixes, the last bit plane's Sklansky chain and eq
// decomposition are dead, along with their scheduled drops.
func (p *Program) eliminateDeadOps() {
	live := make([]bool, p.numReg)
	live[p.result] = true
	live[p.regQuery] = true
	live[p.regDecisions] = true
	live[p.regBranchVec] = true
	live[p.regLevelResult] = true
	keep := make([]bool, len(p.ops))
	for i := len(p.ops) - 1; i >= 0; i-- {
		op := p.ops[i]
		isLive := false
		if op.Code == opHoist {
			for r := op.Dst; r < op.Dst+len(p.hoists[op.Imm]); r++ {
				if live[r] {
					isLive = true
					break
				}
			}
		} else {
			isLive = live[op.Dst]
		}
		keep[i] = isLive
		if !isLive {
			continue
		}
		switch op.Code {
		case opAdd, opSub, opMul, opMulLazy:
			live[op.A] = true
			live[op.B] = true
		case opMulDiag, opRelin, opNeg, opRot, opHoist, opDrop:
			live[op.A] = true
		}
	}
	// Rewrite the op list and remap block segment ranges. Deletions
	// preserve order, so segments stay contiguous.
	newIndex := make([]int, len(p.ops)+1)
	n := 0
	for i, k := range keep {
		newIndex[i] = n
		if k {
			n++
		}
	}
	newIndex[len(p.ops)] = n
	ops := make([]progOp, 0, n)
	for i, op := range p.ops {
		if keep[i] {
			ops = append(ops, op)
		}
	}
	p.ops = ops
	var blocks []progBlock
	for _, blk := range p.blocks {
		var segs [][2]int
		for _, s := range blk.Segs {
			ns, ne := newIndex[s[0]], newIndex[s[1]]
			if ne > ns {
				segs = append(segs, [2]int{ns, ne})
			}
		}
		if len(segs) > 0 {
			blocks = append(blocks, progBlock{Stage: blk.Stage, Segs: segs})
		}
	}
	p.blocks = blocks
}

// bind stages the program's plaintext constants on the backend —
// encoded once here instead of on every Classify call.
func (p *Program) bind(b he.Backend) error {
	t := b.PlainModulus()
	p.bound = make([]he.Operand, len(p.consts))
	for i, spec := range p.consts {
		vals := make([]uint64, b.Slots())
		switch spec.Kind {
		case ckOnes:
			for j := range vals {
				vals[j] = 1
			}
		case ckThreshCoef:
			for j, m := range p.threshVals[spec.Index] {
				vals[j] = (2*(m%t) + t - 1) % t
			}
		case ckThreshNot:
			for j, m := range p.threshVals[spec.Index] {
				vals[j] = (1 + t - m%t) % t
			}
		case ckMaskCoef:
			for j, m := range p.maskVals[spec.Index] {
				vals[j] = (1 + t - (2*m)%t) % t
			}
		case ckMaskAdd:
			for j, m := range p.maskVals[spec.Index] {
				vals[j] = m % t
			}
		}
		op, err := he.NewPlain(b, vals)
		if err != nil {
			return err
		}
		p.bound[i] = op
	}
	return nil
}

func allZero[T uint64 | bool](vals []T) bool {
	var zero T
	for _, v := range vals {
		if v != zero {
			return false
		}
	}
	return true
}
