package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"copse/internal/bgv"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/he/heclear"
	"copse/internal/model"
	"copse/internal/synth"
)

// TestBatchGeometry pins the derived slot-packing parameters: the
// Figure 1 model (QPad=8, BPad=8, LPad=8) packs Slots/16 queries.
func TestBatchGeometry(t *testing.T) {
	for _, tc := range []struct {
		slots              int
		wantBlock, wantCap int
	}{
		{16, 16, 1}, // 2·SPad == slots: one doubled block
		{64, 16, 4},
		{1024, 16, 64},
	} {
		c, err := Compile(model.Figure1(), Options{Slots: tc.slots})
		if err != nil {
			t.Fatalf("slots=%d: %v", tc.slots, err)
		}
		m := &c.Meta
		if m.SPad() != 8 {
			t.Errorf("slots=%d: SPad=%d, want 8", tc.slots, m.SPad())
		}
		if m.BatchBlock() != tc.wantBlock {
			t.Errorf("slots=%d: BatchBlock=%d, want %d", tc.slots, m.BatchBlock(), tc.wantBlock)
		}
		if m.BatchCapacity() != tc.wantCap {
			t.Errorf("slots=%d: BatchCapacity=%d, want %d", tc.slots, m.BatchCapacity(), tc.wantCap)
		}
	}
}

// randomFeatures draws a feature vector within the model's precision.
func randomFeatures(rng *rand.Rand, numFeatures, precision int) []uint64 {
	f := make([]uint64, numFeatures)
	for i := range f {
		f[i] = rng.Uint64N(1 << uint(precision))
	}
	return f
}

// runBatchVsSingle packs batch queries into one pass and checks every
// decoded entry against an independent single-query classification and
// against the plaintext forest walk.
func runBatchVsSingle(t *testing.T, b he.Backend, f *model.Forest, c *Compiled, batch [][]uint64, encryptModel, encryptQuery bool) {
	t.Helper()
	m, err := Prepare(b, c, encryptModel)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	e := &Engine{Backend: b, SkipZeroDiagonals: !encryptModel}

	q, err := PrepareQueryBatch(b, &m.Meta, batch, encryptQuery)
	if err != nil {
		t.Fatalf("PrepareQueryBatch(%d): %v", len(batch), err)
	}
	if q.Batch != len(batch) {
		t.Fatalf("query batch size %d, want %d", q.Batch, len(batch))
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatalf("batched Classify: %v", err)
	}
	slots, err := he.Reveal(b, out)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DecodeResultBatch(&m.Meta, slots, len(batch))
	if err != nil {
		t.Fatalf("DecodeResultBatch: %v", err)
	}

	for k, feats := range batch {
		want := f.Classify(feats)
		single, err := PrepareQuery(b, &m.Meta, feats, encryptQuery)
		if err != nil {
			t.Fatal(err)
		}
		sout, _, err := e.Classify(m, single)
		if err != nil {
			t.Fatalf("single Classify(%v): %v", feats, err)
		}
		sslots, err := he.Reveal(b, sout)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := DecodeResult(&m.Meta, sslots)
		if err != nil {
			t.Fatalf("single decode(%v): %v", feats, err)
		}
		for ti, lbl := range results[k].PerTree {
			if lbl != want[ti] {
				t.Errorf("batch[%d]=%v tree %d: batched label L%d, plaintext L%d", k, feats, ti, lbl, want[ti])
			}
			if lbl != sres.PerTree[ti] {
				t.Errorf("batch[%d]=%v tree %d: batched label L%d, single-query label L%d", k, feats, ti, lbl, sres.PerTree[ti])
			}
		}
		if results[k].Plurality() != sres.Plurality() {
			t.Errorf("batch[%d]=%v: plurality %d vs single %d", k, feats, results[k].Plurality(), sres.Plurality())
		}
	}
}

// TestBatchVsSingleEquivalenceClear is the batch-equivalence property
// test on the exact backend: for random forests and random query
// batches — including the B=1 and B=BatchCapacity edge cases — a
// slot-packed ClassifyBatch must equal B independent Classify runs.
func TestBatchVsSingleEquivalenceClear(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 4; trial++ {
		f, err := synth.Generate(synth.ForestSpec{
			NumFeatures:     2 + trial%3,
			NumLabels:       3,
			Precision:       4,
			MaxDepth:        3,
			BranchesPerTree: []int{4 + trial, 3 + trial%3},
			Seed:            uint64(100 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		b := heclear.New(256, 65537)
		c, err := Compile(f, Options{Slots: b.Slots()})
		if err != nil {
			t.Fatal(err)
		}
		capacity := c.Meta.BatchCapacity()
		if capacity < 2 {
			t.Fatalf("trial %d: batch capacity %d, test wants ≥ 2 (SPad=%d)", trial, capacity, c.Meta.SPad())
		}
		sizes := []int{1, 2, capacity}
		for _, encModel := range []bool{true, false} {
			for _, size := range sizes {
				batch := make([][]uint64, size)
				for i := range batch {
					batch[i] = randomFeatures(rng, f.NumFeatures, f.Precision)
				}
				runBatchVsSingle(t, b, f, c, batch, encModel, true)
			}
		}
	}
}

// TestBatchVsSingleEquivalenceBGV runs the same property on real BGV
// ciphertexts: a full-capacity batch on the Figure 1 model, plus the
// B=1 edge case, in the encrypted-model offload scenario.
func TestBatchVsSingleEquivalenceBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV batch equivalence is slow")
	}
	f := model.Figure1()
	c, err := Compile(f, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hebgv.New(hebgv.Config{
		Params:        bgv.TestParams(c.Meta.RecommendedLevels),
		RotationSteps: c.Meta.RotationSteps,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(23, 5))
	capacity := c.Meta.BatchCapacity()
	if capacity != 64 {
		t.Fatalf("capacity %d, want 64", capacity)
	}
	batch := make([][]uint64, capacity)
	for i := range batch {
		batch[i] = randomFeatures(rng, f.NumFeatures, f.Precision)
	}
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b, Workers: 4}
	q, err := PrepareQueryBatch(b, &m.Meta, batch, true)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := he.Reveal(b, out)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DecodeResultBatch(&m.Meta, slots, capacity)
	if err != nil {
		t.Fatal(err)
	}
	for k, feats := range batch {
		want := f.Classify(feats)
		if results[k].PerTree[0] != want[0] {
			t.Errorf("batch[%d]=%v: L%d, want L%d", k, feats, results[k].PerTree[0], want[0])
		}
	}
	// B=1 edge case on the same staged model.
	runBatchVsSingle(t, b, f, c, [][]uint64{{3, 9}}, true, true)
}

// TestBatchCapacityErrors pins the typed error: oversized batches and
// out-of-range decode indexes report the staged capacity.
func TestBatchCapacityErrors(t *testing.T) {
	b := heclear.New(64, 65537)
	c, err := Compile(model.Figure1(), Options{Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	meta := &c.Meta
	capacity := meta.BatchCapacity() // 4

	over := make([][]uint64, capacity+1)
	for i := range over {
		over[i] = []uint64{1, 2}
	}
	_, err = PrepareQueryBatch(b, meta, over, true)
	var bce *BatchCapacityError
	if !errors.As(err, &bce) {
		t.Fatalf("oversized batch: got %v, want *BatchCapacityError", err)
	}
	if bce.Index != capacity+1 || bce.Capacity != capacity {
		t.Errorf("error %+v, want index=%d capacity=%d", bce, capacity+1, capacity)
	}

	slots := make([]uint64, b.Slots())
	if _, err := DecodeResultAt(meta, slots, capacity); !errors.As(err, &bce) {
		t.Errorf("DecodeResultAt(%d): got %v, want *BatchCapacityError", capacity, err)
	}
	if _, err := DecodeResultAt(meta, slots, -1); !errors.As(err, &bce) {
		t.Errorf("DecodeResultAt(-1): got %v, want *BatchCapacityError", err)
	}
	if _, err := DecodeResultBatch(meta, slots, capacity+3); !errors.As(err, &bce) {
		t.Errorf("DecodeResultBatch over capacity: got %v, want *BatchCapacityError", err)
	}
	if _, err := PrepareQueryBatch(b, meta, nil, true); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := DecodeResultBatch(meta, slots, 0); err == nil {
		t.Error("zero-count decode accepted")
	}
}
