package core

import (
	"fmt"
	"sort"

	"copse/internal/bits"
	"copse/internal/matrix"
	"copse/internal/model"
)

// Options controls compilation.
type Options struct {
	// Slots is the packing width of the target backend (the staging
	// compiler specializes the generated structures to the encryption
	// parameters, §5). Defaults to 1024.
	Slots int
	// PadMultiplicityTo, when larger than the true maximum multiplicity
	// K, pads every feature's threshold group to this bound instead, so
	// only an upper bound on K is revealed (§7.2.1). Zero means exact K.
	PadMultiplicityTo int
	// NoBSGS stages the naive one-rotation-per-diagonal kernel instead
	// of the baby-step/giant-step one — an ablation and compatibility
	// escape hatch. The default (false) emits the reduced ~2·√period
	// rotation-step set and pre-rotated diagonals.
	NoBSGS bool
	// NoLevelPlan skips the static level schedule (Meta.LevelPlan),
	// staging a reactive-only model — the ablation knob for level
	// scheduling (DESIGN.md §8).
	NoLevelPlan bool
	// PlanShuffle reserves level headroom in the schedule so the
	// classification result can still feed the optional result shuffle
	// (§7.2.2). The default minimal schedule lands the result below the
	// shuffle's entry level.
	PlanShuffle bool
	// SlackFloorBits floors the level planner's per-stage noise slack:
	// no stage keeps fewer than this many bits in hand on its headroom
	// checks. Zero selects the default floor of 1 bit; raise it to
	// trade schedule depth for extra safety margin.
	SlackFloorBits float64
	// FlatSlack disables the per-stage slack calibration and restores
	// the legacy uniform 3-bit slack on every check — the ablation knob
	// for the calibrated profile.
	FlatSlack bool
}

// Compiled is the vectorized representation of a decision forest: the
// output of the COPSE compiler, ready to be encrypted (or encoded) for a
// target backend.
type Compiled struct {
	Meta Meta
	// ThresholdBits are the p MSB-first bit planes of the padded
	// threshold vector (§4.2.1), each of length QPad, grouped by feature
	// and padded with the sentinel S=0.
	ThresholdBits [][]uint64
	// Reshuffle is the B×QPad matrix rearranging comparison results into
	// branch preorder and dropping sentinels (§4.2.2).
	Reshuffle *matrix.Bool
	// Levels[ℓ-1] is the NumLeaves×B matrix selecting, for each leaf,
	// the branch above it at level ℓ (§4.2.3).
	Levels []*matrix.Bool
	// Masks[ℓ-1] is the level-ℓ mask: 1 where the leaf hangs off the
	// false branch (§4.2.4).
	Masks [][]uint64
	// Shard, when non-nil, marks this model as one shard of a tree-wise
	// split produced by ShardForest and locates it inside the parent
	// forest. Nil on unsharded models (and artifacts older than v4).
	Shard *ShardInfo
}

// branchInfo records one branch during the preorder walk.
type branchInfo struct {
	node  *model.Node
	level int
}

// pathStep records one ancestor on a leaf's root path.
type pathStep struct {
	branchIdx int
	level     int
	wentRight bool // leaf lies in the true (right) subtree of this branch
}

// Compile stages a forest into its vectorized form.
func Compile(f *model.Forest, opts Options) (*Compiled, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	for ti, tr := range f.Trees {
		if tr.Root.Leaf {
			return nil, fmt.Errorf("core: tree %d is a bare leaf; COPSE requires at least one branch per tree", ti)
		}
	}
	slots := opts.Slots
	if slots == 0 {
		slots = 1024
	}

	// Preorder enumeration of branches and leaves across the forest
	// (§4.1.1), tracking each leaf's root path.
	var branches []branchInfo
	var leafLabels []int
	var leafPaths [][]pathStep
	treeLeafOffsets := []int{0}
	levelOf := map[*model.Node]int{}
	var computeLevels func(n *model.Node) int
	computeLevels = func(n *model.Node) int {
		if n.Leaf {
			levelOf[n] = 0
			return 0
		}
		l := 1 + max(computeLevels(n.Left), computeLevels(n.Right))
		levelOf[n] = l
		return l
	}
	for _, tr := range f.Trees {
		computeLevels(tr.Root)
		var walk func(n *model.Node, path []pathStep)
		walk = func(n *model.Node, path []pathStep) {
			if n.Leaf {
				leafLabels = append(leafLabels, n.Label)
				leafPaths = append(leafPaths, append([]pathStep(nil), path...))
				return
			}
			idx := len(branches)
			branches = append(branches, branchInfo{node: n, level: levelOf[n]})
			walk(n.Left, append(path, pathStep{branchIdx: idx, level: levelOf[n], wentRight: false}))
			walk(n.Right, append(path, pathStep{branchIdx: idx, level: levelOf[n], wentRight: true}))
		}
		walk(tr.Root, nil)
		treeLeafOffsets = append(treeLeafOffsets, len(leafLabels))
	}

	b := len(branches)
	numLeaves := len(leafLabels)
	d := f.Depth()

	// Threshold vector grouped by feature, padded to multiplicity K with
	// the sentinel S=0 (§4.2.1).
	k := f.MaxMultiplicity()
	if opts.PadMultiplicityTo > 0 {
		if opts.PadMultiplicityTo < k {
			return nil, fmt.Errorf("core: PadMultiplicityTo %d below true maximum multiplicity %d", opts.PadMultiplicityTo, k)
		}
		k = opts.PadMultiplicityTo
	}
	q := k * f.NumFeatures
	qPad := bits.NextPow2(q)
	bPad := bits.NextPow2(b)
	if qPad > slots || bPad > slots || numLeaves > slots {
		return nil, fmt.Errorf("core: model needs %d-slot packing (q=%d b=%d leaves=%d) but backend has %d slots",
			max(qPad, bPad, numLeaves), q, b, numLeaves, slots)
	}

	thresholds := make([]uint64, q) // sentinel 0 everywhere by default
	colToBranch := make([]int, q)
	for c := range colToBranch {
		colToBranch[c] = -1
	}
	occ := make([]int, f.NumFeatures)
	for idx, br := range branches {
		feat := br.node.Feature
		if occ[feat] >= k {
			return nil, fmt.Errorf("core: feature %d multiplicity exceeds K=%d", feat, k)
		}
		col := feat*k + occ[feat]
		occ[feat]++
		thresholds[col] = br.node.Threshold
		colToBranch[col] = idx
	}

	planes, err := bits.Transpose(thresholds, f.Precision)
	if err != nil {
		return nil, err
	}
	thresholdBits := make([][]uint64, f.Precision)
	for i, plane := range planes {
		padded := make([]uint64, qPad)
		copy(padded, plane)
		thresholdBits[i] = padded
	}

	// Reshuffling matrix (§4.2.2): exactly one 1 per row; sentinel
	// columns stay empty.
	reshuffle := matrix.NewBool(b, qPad)
	for col, brIdx := range colToBranch {
		if brIdx >= 0 {
			reshuffle.Set(brIdx, col, 1)
		}
	}

	// Level matrices and masks (§4.2.3–4.2.4). For each level ℓ and each
	// leaf, select the ancestor branch with the greatest level not
	// exceeding ℓ; if every ancestor sits above ℓ, fall back to the
	// nearest (lowest-level) ancestor so each branch is represented.
	levels := make([]*matrix.Bool, d)
	masks := make([][]uint64, d)
	for l := 1; l <= d; l++ {
		lm := matrix.NewBool(numLeaves, b)
		mask := make([]uint64, numLeaves)
		for leaf, path := range leafPaths {
			step, ok := ancestorAtLevel(path, l)
			if !ok {
				continue // cannot happen for valid forests; paths are never empty
			}
			lm.Set(leaf, step.branchIdx, 1)
			if !step.wentRight {
				mask[leaf] = 1
			}
		}
		levels[l-1] = lm
		masks[l-1] = mask
	}

	meta := Meta{
		NumFeatures:     f.NumFeatures,
		Precision:       f.Precision,
		NumTrees:        len(f.Trees),
		K:               k,
		Q:               q,
		QPad:            qPad,
		B:               b,
		BPad:            bPad,
		D:               d,
		NumLeaves:       numLeaves,
		LabelNames:      append([]string(nil), f.Labels...),
		Codebook:        leafLabels,
		TreeLeafOffsets: treeLeafOffsets,
		Slots:           slots,
	}
	nPad := bits.NextPow2(numLeaves)
	meta.UseBSGS = !opts.NoBSGS
	if meta.UseBSGS {
		seen := map[int]bool{}
		for _, period := range []int{qPad, bPad, nPad} {
			if seen[period] {
				continue
			}
			seen[period] = true
			baby, giant := matrix.BSGSSplit(period)
			meta.BSGSPlans = append(meta.BSGSPlans, BSGSPlan{Period: period, Baby: baby, Giant: giant})
		}
	}
	meta.RotationSteps = rotationSteps(qPad, bPad, nPad, slots, meta.UseBSGS)
	logp := log2Ceil(f.Precision)
	logd := log2Ceil(max(d, 1))
	meta.CtDepthCipherModel = (logp + 2) + 3 + logd // SecComp + reshuffle + level + mask + accumulate
	meta.CtDepthPlainModel = (logp + 1) + logd
	// Beyond one prime per ciphertext multiplication, the chain must
	// absorb the key-switch noise that accumulates when a matrix product
	// sums b̂ rotated terms (roughly one extra modulus switch per
	// pipeline stage) plus slack for the plaintext-multiply noise of the
	// Z_t boolean encoding.
	meta.RecommendedLevels = meta.CtDepthCipherModel + 5 + log2Ceil(bPad)/3
	if !opts.NoLevelPlan {
		// The static level schedule (levelplan.go): per-stage target
		// levels from a forward run of the noise model, so the engine can
		// execute each stage on exactly the fraction of the modulus chain
		// its remaining circuit needs.
		meta.LevelPlan = computeLevelPlan(&meta, opts.PlanShuffle, slackConfig{floorBits: opts.SlackFloorBits, flat: opts.FlatSlack})
	}

	return &Compiled{
		Meta:          meta,
		ThresholdBits: thresholdBits,
		Reshuffle:     reshuffle,
		Levels:        levels,
		Masks:         masks,
	}, nil
}

// ancestorAtLevel implements the branch-selection rule of §4.2.3.
func ancestorAtLevel(path []pathStep, l int) (pathStep, bool) {
	if len(path) == 0 {
		return pathStep{}, false
	}
	best := -1
	for i, s := range path {
		if s.level <= l && (best < 0 || s.level > path[best].level) {
			best = i
		}
	}
	if best >= 0 {
		return path[best], true
	}
	// All ancestors exceed l: take the nearest one (smallest level).
	best = 0
	for i, s := range path {
		if s.level < path[best].level {
			best = i
		}
	}
	return path[best], true
}

// rotationSteps returns the Galois rotation amounts Algorithm 1 needs.
// With bsgs set, each matrix period P contributes only its baby steps
// 1..n1−1 and giant steps n1, 2n1, .. (n2−1)·n1 — ~2·√P keys instead of
// the naive kernel's P−1 steps. The replication between stages rotates by
// negated powers of two either way. nPad covers the optional
// result-shuffling step (§7.2.2).
func rotationSteps(qPad, bPad, nPad, slots int, bsgs bool) []int {
	set := map[int]bool{}
	if bsgs {
		for _, period := range []int{qPad, bPad, nPad} {
			baby, giant := matrix.BSGSSplit(period)
			for j := 1; j < baby; j++ {
				set[j] = true
			}
			for g := 1; g < giant; g++ {
				set[g*baby] = true
			}
		}
	} else {
		for i := 1; i < max(qPad, bPad, nPad); i++ {
			set[i] = true
		}
	}
	for p := min(bPad, nPad); p < slots; p <<= 1 {
		set[-p] = true
	}
	steps := make([]int, 0, len(set))
	for s := range set {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps
}
