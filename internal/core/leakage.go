package core

// This file encodes the information-leakage model of the paper's §7.1
// (Tables 3 and 4): which structural quantities each notional party
// learns under each configuration of physical parties, plus helpers that
// demonstrate the leakage is real by inferring those quantities from
// nothing but the *shape* of the encrypted artifacts.

// Party is one of the three notional parties.
type Party int

// The notional parties: Sally evaluates, Maurice owns the model, Diane
// owns the features.
const (
	PartyServer     Party = iota // Sally
	PartyModelOwner              // Maurice
	PartyDataOwner               // Diane
)

// Scenario is a configuration of physical parties (§7.1).
type Scenario int

const (
	// ScenarioOffload: M = D, separate server (the classic computation
	// offloading model benchmarked in Figures 6–8).
	ScenarioOffload Scenario = iota
	// ScenarioServerModel: S = M, the model lives in plaintext on the
	// server (Figure 9's fast configuration).
	ScenarioServerModel
	// ScenarioClientEval: S = D, the client evaluates an encrypted model.
	ScenarioClientEval
	// ScenarioThreeParty: all parties distinct, no collusion.
	ScenarioThreeParty
	// ScenarioColludeSM: three parties, server colludes with the model
	// owner.
	ScenarioColludeSM
	// ScenarioColludeSD: three parties, server colludes with the data
	// owner.
	ScenarioColludeSD
)

// Leakage lists what a party learns: the structural quantities of
// §4.1.1, or everything (on collusion, the colluders can decrypt the
// other party's ciphertexts).
type Leakage struct {
	Q, B, D, K bool
	Everything bool
}

// Revealed returns the leakage table entry for scenario s and party p,
// transcribing Tables 3 and 4.
func Revealed(s Scenario, p Party) Leakage {
	switch s {
	case ScenarioOffload: // Table 3 row 1: S learns q, b, d.
		if p == PartyServer {
			return Leakage{Q: true, B: true, D: true}
		}
		return Leakage{}
	case ScenarioServerModel: // Table 3 row 2: D learns K, b.
		if p == PartyDataOwner {
			return Leakage{K: true, B: true}
		}
		return Leakage{}
	case ScenarioClientEval: // Table 3 row 3.
		switch p {
		case PartyServer:
			return Leakage{Q: true, B: true, K: true, D: true}
		case PartyDataOwner:
			return Leakage{Q: true, B: true, K: true}
		}
		return Leakage{}
	case ScenarioThreeParty: // Table 4 row 1.
		switch p {
		case PartyServer:
			return Leakage{Q: true, B: true, D: true, K: true}
		case PartyDataOwner:
			return Leakage{K: true, B: true}
		}
		return Leakage{}
	case ScenarioColludeSM: // Table 4 row 2.
		switch p {
		case PartyServer, PartyModelOwner:
			return Leakage{Q: true, B: true, D: true, K: true, Everything: true}
		case PartyDataOwner:
			return Leakage{K: true, B: true}
		}
		return Leakage{}
	case ScenarioColludeSD: // Table 4 row 3.
		switch p {
		case PartyServer, PartyDataOwner:
			return Leakage{Q: true, B: true, D: true, K: true, Everything: true}
		}
		return Leakage{}
	}
	return Leakage{}
}

// ServerView is what the evaluator can read off an encrypted model
// without any key material: the shapes of the ciphertext collections.
// Matrices are sent as one ciphertext per (padded) diagonal, so the
// padded widths leak; level matrices and masks are stored separately, so
// the depth leaks (§7.1).
type ServerView struct {
	QPad int // columns of the reshuffling matrix
	BPad int // columns of each level matrix
	D    int // number of level matrices
	P    int // bit planes of the threshold vector (precision)
}

// InferServerView derives the view from artifact shapes only — the
// executable demonstration that Table 3's "revealed to S" column is
// real. It never touches plaintext or keys.
func InferServerView(m *ModelOperands) ServerView {
	return ServerView{
		QPad: m.Reshuffle.Period,
		BPad: periodOfLevels(m),
		D:    len(m.Levels),
		P:    len(m.Thresholds),
	}
}

func periodOfLevels(m *ModelOperands) int {
	if len(m.Levels) == 0 {
		return 0
	}
	return m.Levels[0].Period
}

// DataOwnerView is what the data owner learns from the protocol: the
// maximum multiplicity K (needed to pad her features, §3.3 step 0) and
// the result vector length, which reveals the leaf count.
type DataOwnerView struct {
	K         int
	NumLeaves int
}

// InferDataOwnerView derives Diane's view from the public query
// parameters.
func InferDataOwnerView(meta *Meta) DataOwnerView {
	return DataOwnerView{K: meta.K, NumLeaves: meta.NumLeaves}
}
