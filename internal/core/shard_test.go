package core

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"

	"copse/internal/bgv"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/he/heclear"
	"copse/internal/model"
	"copse/internal/synth"
)

// shardTestForest builds a forest with enough trees to split.
func shardTestForest(t *testing.T, seed uint64) *model.Forest {
	t.Helper()
	f, err := synth.Generate(synth.ForestSpec{
		NumFeatures:     3,
		NumLabels:       3,
		Precision:       4,
		MaxDepth:        3,
		BranchesPerTree: []int{5, 3, 6, 3, 4},
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// mergeShardResults adds the per-shard result operands slot-wise — the
// gateway's merge.
func mergeShardResults(t *testing.T, b he.Backend, outs []he.Operand) he.Operand {
	t.Helper()
	merged := outs[0]
	for _, o := range outs[1:] {
		var err error
		merged, err = he.Add(b, merged, o)
		if err != nil {
			t.Fatalf("merging shard results: %v", err)
		}
	}
	return merged
}

// TestShardForestLayout pins the structural invariants of a tree-wise
// split: ranges partition the forest, every shard keeps the parent's
// slot geometry, and branch/leaf totals are preserved.
func TestShardForestLayout(t *testing.T) {
	f := shardTestForest(t, 41)
	c, err := Compile(f, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5} {
		shards, manifest, err := ShardForest(c, k)
		if err != nil {
			t.Fatalf("ShardForest(%d): %v", k, err)
		}
		if len(shards) != k || manifest.Shards != k || len(manifest.Ranges) != k {
			t.Fatalf("ShardForest(%d): got %d shards, manifest %d/%d ranges", k, len(shards), manifest.Shards, len(manifest.Ranges))
		}
		trees, branches, leaves := 0, 0, 0
		for i, s := range shards {
			info := s.Shard
			if info == nil || info.Index != i || info.Count != k {
				t.Fatalf("k=%d shard %d: bad ShardInfo %+v", k, i, info)
			}
			if !reflect.DeepEqual(*info, manifest.Ranges[i]) {
				t.Errorf("k=%d shard %d: ShardInfo %+v != manifest range %+v", k, i, *info, manifest.Ranges[i])
			}
			if i == 0 && info.TreeStart != 0 {
				t.Errorf("k=%d: first shard starts at tree %d", k, info.TreeStart)
			}
			if i > 0 && info.TreeStart != shards[i-1].Shard.TreeEnd {
				t.Errorf("k=%d shard %d: tree gap %d..%d", k, i, shards[i-1].Shard.TreeEnd, info.TreeStart)
			}
			trees += info.TreeEnd - info.TreeStart
			branches += info.BranchEnd - info.BranchStart
			leaves += info.LeafEnd - info.LeafStart
			m := &s.Meta
			if m.SPad() != c.Meta.SPad() || m.BatchBlock() != c.Meta.BatchBlock() || m.BatchCapacity() != c.Meta.BatchCapacity() {
				t.Errorf("k=%d shard %d: layout (SPad=%d block=%d) diverged from parent (SPad=%d block=%d)",
					k, i, m.SPad(), m.BatchBlock(), c.Meta.SPad(), c.Meta.BatchBlock())
			}
			if m.QPad != c.Meta.QPad || m.K != c.Meta.K || m.NumFeatures != c.Meta.NumFeatures || m.NumLeaves != c.Meta.NumLeaves {
				t.Errorf("k=%d shard %d: query-facing meta diverged", k, i)
			}
			if m.B != info.BranchEnd-info.BranchStart || m.NumTrees != info.TreeEnd-info.TreeStart {
				t.Errorf("k=%d shard %d: B=%d trees=%d inconsistent with range %+v", k, i, m.B, m.NumTrees, info)
			}
			if m.D > c.Meta.D {
				t.Errorf("k=%d shard %d: depth %d exceeds parent %d", k, i, m.D, c.Meta.D)
			}
			if m.TreeLeafOffsets[0] != info.LeafStart || m.TreeLeafOffsets[len(m.TreeLeafOffsets)-1] != info.LeafEnd {
				t.Errorf("k=%d shard %d: TreeLeafOffsets %v not the global range %+v", k, i, m.TreeLeafOffsets, info)
			}
		}
		if trees != c.Meta.NumTrees || branches != c.Meta.B || leaves != c.Meta.NumLeaves {
			t.Errorf("k=%d: ranges cover %d trees %d branches %d leaves, want %d/%d/%d",
				k, trees, branches, leaves, c.Meta.NumTrees, c.Meta.B, c.Meta.NumLeaves)
		}
	}
}

// TestShardMergeEquivalenceClear is the tentpole correctness property on
// the exact backend: for random forests, shard counts and batch sizes,
// evaluating every shard on the same encrypted query batch and adding
// the result ciphertexts is bit-identical (leaf bits, votes, per-tree
// labels) to the single-node pipeline.
func TestShardMergeEquivalenceClear(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 3))
	for trial := 0; trial < 3; trial++ {
		f := shardTestForest(t, uint64(50+trial))
		b := heclear.New(512, 65537)
		c, err := Compile(f, Options{Slots: b.Slots()})
		if err != nil {
			t.Fatal(err)
		}
		single, err := Prepare(b, c, false)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Backend: b, SkipZeroDiagonals: true}
		for _, k := range []int{2, 3, 5} {
			shards, _, err := ShardForest(c, k)
			if err != nil {
				t.Fatalf("trial %d ShardForest(%d): %v", trial, k, err)
			}
			for _, batchSize := range []int{1, min(3, c.Meta.BatchCapacity())} {
				batch := make([][]uint64, batchSize)
				for i := range batch {
					batch[i] = randomFeatures(rng, f.NumFeatures, f.Precision)
				}
				// Single-node reference pass.
				q, err := PrepareQueryBatch(b, &c.Meta, batch, true)
				if err != nil {
					t.Fatal(err)
				}
				refOut, _, err := e.Classify(single, q)
				if err != nil {
					t.Fatalf("single-node Classify: %v", err)
				}
				refSlots, err := he.Reveal(b, refOut)
				if err != nil {
					t.Fatal(err)
				}
				refResults, err := DecodeResultBatch(&c.Meta, refSlots, batchSize)
				if err != nil {
					t.Fatal(err)
				}

				// Shard passes over the same encrypted queries, merged
				// with plain adds.
				outs := make([]he.Operand, len(shards))
				for i, sc := range shards {
					ops, err := Prepare(b, sc, false)
					if err != nil {
						t.Fatalf("preparing shard %d: %v", i, err)
					}
					outs[i], _, err = e.Classify(ops, q)
					if err != nil {
						t.Fatalf("shard %d Classify: %v", i, err)
					}
				}
				merged := mergeShardResults(t, b, outs)
				mergedSlots, err := he.Reveal(b, merged)
				if err != nil {
					t.Fatal(err)
				}
				// Bit-identity inside every query's result window.
				for qi := 0; qi < batchSize; qi++ {
					off := qi * c.Meta.BatchBlock()
					if !reflect.DeepEqual(mergedSlots[off:off+c.Meta.NumLeaves], refSlots[off:off+c.Meta.NumLeaves]) {
						t.Errorf("trial %d k=%d batch=%d query %d: merged leaf bits differ from single-node", trial, k, batchSize, qi)
					}
				}
				mergedResults, err := DecodeResultBatch(&c.Meta, mergedSlots, batchSize)
				if err != nil {
					t.Fatalf("decoding merged result: %v", err)
				}
				for qi := range batch {
					if !reflect.DeepEqual(mergedResults[qi], refResults[qi]) {
						t.Errorf("trial %d k=%d query %d: merged result %+v != single-node %+v", trial, k, qi, mergedResults[qi], refResults[qi])
					}
					want := f.Classify(batch[qi])
					for ti, lbl := range mergedResults[qi].PerTree {
						if lbl != want[ti] {
							t.Errorf("trial %d k=%d query %d tree %d: merged L%d, plaintext L%d", trial, k, qi, ti, lbl, want[ti])
						}
					}
				}

				// Each shard's result also decodes standalone against its
				// own meta, yielding exactly its trees' labels.
				for i, sc := range shards {
					slots, err := he.Reveal(b, outs[i])
					if err != nil {
						t.Fatal(err)
					}
					for qi := range batch {
						res, err := DecodeResultAt(&sc.Meta, slots, qi)
						if err != nil {
							t.Fatalf("trial %d k=%d shard %d query %d standalone decode: %v", trial, k, i, qi, err)
						}
						want := f.Classify(batch[qi])
						info := sc.Shard
						for ti, lbl := range res.PerTree {
							if lbl != want[info.TreeStart+ti] {
								t.Errorf("trial %d k=%d shard %d query %d tree %d: standalone L%d, plaintext L%d",
									trial, k, i, qi, ti, lbl, want[info.TreeStart+ti])
							}
						}
					}
				}
			}
		}
	}
}

// TestShardMergeEquivalenceBGV runs the merge property on real BGV
// ciphertexts: one key set (the manifest's union step budget) serves
// both shards, and the added result ciphertexts decrypt to the
// single-node bits.
func TestShardMergeEquivalenceBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV shard equivalence is slow")
	}
	f := shardTestForest(t, 77)
	c, err := Compile(f, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	shards, manifest, err := ShardForest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hebgv.New(hebgv.Config{
		Params:             bgv.TestParams(manifest.ChainLevels),
		RotationSteps:      manifest.RotationSteps,
		RotationStepLevels: manifest.RotationStepLevels,
		Seed:               9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	rng := rand.New(rand.NewPCG(31, 8))
	batch := make([][]uint64, min(3, c.Meta.BatchCapacity()))
	for i := range batch {
		batch[i] = randomFeatures(rng, f.NumFeatures, f.Precision)
	}
	q, err := PrepareQueryBatch(b, &c.Meta, batch, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b, Workers: 4, SkipZeroDiagonals: true}
	outs := make([]he.Operand, len(shards))
	for i, sc := range shards {
		ops, err := Prepare(b, sc, false)
		if err != nil {
			t.Fatalf("preparing shard %d: %v", i, err)
		}
		outs[i], _, err = e.Classify(ops, q)
		if err != nil {
			t.Fatalf("shard %d Classify: %v", i, err)
		}
	}
	merged := mergeShardResults(t, b, outs)
	slots, err := he.Reveal(b, merged)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DecodeResultBatch(&c.Meta, slots, len(batch))
	if err != nil {
		t.Fatalf("decoding merged BGV result: %v", err)
	}
	for qi, feats := range batch {
		want := f.Classify(feats)
		for ti, lbl := range results[qi].PerTree {
			if lbl != want[ti] {
				t.Errorf("query %d tree %d: merged L%d, plaintext L%d", qi, ti, lbl, want[ti])
			}
		}
	}
}

// TestShardManifestRoundTrip pins the manifest file format.
func TestShardManifestRoundTrip(t *testing.T) {
	f := shardTestForest(t, 63)
	c, err := Compile(f, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	_, manifest, err := ShardForest(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := manifest.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, manifest) {
		t.Errorf("manifest round trip:\n got %+v\nwant %+v", got, manifest)
	}
	if _, err := ReadManifest(bytes.NewReader([]byte(`{"magic":"nope"}`))); err == nil {
		t.Error("bad magic accepted")
	}
}

// TestShardArtifactRoundTrip checks that shard artifacts (v4: ForcedSPad
// + ShardInfo) survive serialization.
func TestShardArtifactRoundTrip(t *testing.T) {
	f := shardTestForest(t, 29)
	c, err := Compile(f, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	shards, _, err := ShardForest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, shards[1]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, shards[1]) {
		t.Error("shard artifact round trip lost data")
	}
	if got.Meta.ForcedSPad != c.Meta.SPad() {
		t.Errorf("ForcedSPad %d, want %d", got.Meta.ForcedSPad, c.Meta.SPad())
	}
	if got.Shard == nil || got.Shard.Index != 1 {
		t.Errorf("ShardInfo lost: %+v", got.Shard)
	}
}

// TestShardForestErrors pins the argument validation.
func TestShardForestErrors(t *testing.T) {
	f := shardTestForest(t, 11)
	c, err := Compile(f, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ShardForest(c, 0); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, _, err := ShardForest(c, c.Meta.NumTrees+1); err == nil {
		t.Error("more shards than trees accepted")
	}
	shards, _, err := ShardForest(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ShardForest(shards[0], 1); err == nil {
		t.Error("re-sharding a shard accepted")
	}
}
