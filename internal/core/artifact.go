package core

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
)

// Artifact serialization: the compiler's output (a Compiled model) can be
// written to disk and shipped to the party that will encrypt and serve
// it — the analogue of the paper's generated C++ being compiled and
// linked against the runtime (§5).

// Artifact versions: v2 added the BSGS staging fields (Meta.UseBSGS,
// Meta.BSGSPlans, the reduced RotationSteps); v3 added the static level
// schedule (Meta.LevelPlan); v4 added the sharding fields
// (Meta.ForcedSPad, Compiled.Shard). The payload encoding is unchanged —
// gob is self-describing — so older artifacts still load: their
// zero-valued fields select the naive kernel (v1), reactive noise
// management (v1/v2, LevelPlan == nil), and unsharded layout (v1–v3)
// they were staged for.
const (
	artifactMagic   = "COPSEv4\n"
	artifactMagicV3 = "COPSEv3\n"
	artifactMagicV2 = "COPSEv2\n"
	artifactMagicV1 = "COPSEv1\n"
)

// WriteArtifact serializes c.
func WriteArtifact(w io.Writer, c *Compiled) error {
	if _, err := io.WriteString(w, artifactMagic); err != nil {
		return err
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(c); err != nil {
		return fmt.Errorf("core: encoding artifact: %w", err)
	}
	return zw.Close()
}

// ReadArtifact deserializes a compiled model.
func ReadArtifact(r io.Reader) (*Compiled, error) {
	magic := make([]byte, len(artifactMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("core: reading artifact header: %w", err)
	}
	if string(magic) != artifactMagic && string(magic) != artifactMagicV3 && string(magic) != artifactMagicV2 && string(magic) != artifactMagicV1 {
		return nil, fmt.Errorf("core: not a COPSE artifact (bad magic %q)", magic)
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	c := &Compiled{}
	if err := gob.NewDecoder(zr).Decode(c); err != nil {
		return nil, fmt.Errorf("core: decoding artifact: %w", err)
	}
	return c, nil
}
