package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"copse/internal/he/heclear"
	"copse/internal/model"
)

// TestGenerateKernelGolden pins the emitted kernel source for the
// Figure 1 model: the registry keys kernels by artifact hash, so the
// emitter must be deterministic, and golden drift flags unintended
// changes to the op program or the codegen format. After an intentional
// change, regenerate with COPSE_UPDATE_GOLDEN=1.
func TestGenerateKernelGolden(t *testing.T) {
	c, err := Compile(model.Figure1(), Options{Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GenerateKernel(&buf, c, "kernels"); err != nil {
		t.Fatal(err)
	}
	// Emission is a pure function of the artifact.
	var again bytes.Buffer
	if err := GenerateKernel(&again, c, "kernels"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two emissions of the same artifact differ")
	}
	golden := filepath.Join("testdata", "kernel_figure1_gen.go.golden")
	if os.Getenv("COPSE_UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (COPSE_UPDATE_GOLDEN=1 regenerates): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got, exp := buf.String(), string(want)
		line := 1
		for i := 0; i < len(got) && i < len(exp); i++ {
			if got[i] != exp[i] {
				lo, hi := max(i-80, 0), min(i+80, min(len(got), len(exp)))
				t.Fatalf("emitted kernel drifts from golden at line %d:\n got: …%s…\nwant: …%s…\n(COPSE_UPDATE_GOLDEN=1 regenerates after intentional changes)",
					line, got[lo:hi], exp[lo:hi])
			}
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("emitted kernel and golden differ in length: %d vs %d bytes", len(got), len(exp))
	}
}

// TestKernelRegistryFingerprint: a registered kernel whose structural
// fingerprint (op/register counts) disagrees with the runtime-built
// program must not dispatch — the guard against running a stale
// generated kernel after the specializer changes.
func TestKernelRegistryFingerprint(t *testing.T) {
	c, err := Compile(model.Figure1(), Options{Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	in, ok := programInputsFromCompiled(c, true, c.Meta.LevelPlan)
	if !ok {
		t.Fatal("figure1 staging not coverable by the specializer")
	}
	p := buildProgram(in)
	if p == nil {
		t.Fatal("no program built for figure1")
	}
	hash, err := ArtifactHash(c)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(k *KernelCtx) error { return nil }
	// The registry is process-global: drop the stub registration so
	// later tests Preparing the same model don't dispatch to it.
	t.Cleanup(func() { unregisterKernel(hash, true) })
	RegisterKernel(hash, true, p.NumOps()+1, p.NumRegs(), fn)
	if lookupKernel(c, true, p) != nil {
		t.Error("kernel with stale op count dispatched")
	}
	RegisterKernel(hash, true, p.NumOps(), p.NumRegs()+1, fn)
	if lookupKernel(c, true, p) != nil {
		t.Error("kernel with stale register count dispatched")
	}
	if lookupKernel(c, false, p) != nil {
		t.Error("kernel registered for the encrypted model served the plain one")
	}
	RegisterKernel(hash, true, p.NumOps(), p.NumRegs(), fn)
	if lookupKernel(c, true, p) == nil {
		t.Error("matching kernel not found")
	}
}

// TestStubKernelFailsCleanly: a registered kernel that matches the
// structural fingerprint but never writes the result register (the
// worst a plausible-looking stale kernel can do) must surface as an
// error from Classify, not an empty operand handed downstream.
func TestStubKernelFailsCleanly(t *testing.T) {
	c, err := Compile(model.Figure1(), Options{Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	in, ok := programInputsFromCompiled(c, true, c.Meta.LevelPlan)
	if !ok {
		t.Fatal("figure1 staging not coverable by the specializer")
	}
	p := buildProgram(in)
	hash, err := ArtifactHash(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unregisterKernel(hash, true) })
	RegisterKernel(hash, true, p.NumOps(), p.NumRegs(), func(k *KernelCtx) error { return nil })

	b := heclear.New(64, 65537)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	q, err := PrepareQuery(b, &m.Meta, []uint64{0, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	if _, trace, err := e.Classify(m, q); err == nil {
		t.Fatalf("stub kernel classified without error (executor %q)", trace.Executor)
	} else if !strings.Contains(err.Error(), "result register not written") {
		t.Fatalf("stub kernel failed with %v, want result-register diagnostic", err)
	}
}
