package core

import (
	"testing"

	"copse/internal/bgv"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/model"
)

// newBGVBackend builds a BGV backend sized by the compiler's own
// parameter recommendation — the staging step of §5.
func newBGVBackend(t *testing.T, c *Compiled) *hebgv.Backend {
	t.Helper()
	b, err := hebgv.New(hebgv.Config{
		Params:        bgv.TestParams(c.Meta.RecommendedLevels),
		RotationSteps: c.Meta.RotationSteps,
		Seed:          21,
	})
	if err != nil {
		t.Fatalf("hebgv.New: %v", err)
	}
	return b
}

// TestPipelineOnBGVFigure1 runs the complete encrypted pipeline —
// encrypted model AND encrypted features — on real BGV ciphertexts and
// checks it against the plaintext walk for a grid of inputs.
func TestPipelineOnBGVFigure1(t *testing.T) {
	forest := model.Figure1()
	c, err := Compile(forest, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b := newBGVBackend(t, c)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b, Workers: 4}

	inputs := [][]uint64{{0, 5}, {0, 0}, {6, 0}, {3, 2}, {0, 9}, {15, 15}}
	for _, feats := range inputs {
		want := forest.Classify(feats)
		q, err := PrepareQuery(b, &m.Meta, feats, true)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := e.Classify(m, q)
		if err != nil {
			t.Fatalf("Classify(%v): %v", feats, err)
		}
		budget, err := b.NoiseBudget(out.Ct)
		if err != nil {
			t.Fatal(err)
		}
		if budget <= 0 {
			t.Fatalf("Classify(%v): result noise budget %d", feats, budget)
		}
		slots, err := he.Reveal(b, out)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DecodeResult(&m.Meta, slots)
		if err != nil {
			t.Fatalf("DecodeResult(%v): %v", feats, err)
		}
		if res.PerTree[0] != want[0] {
			t.Errorf("Classify(%v) = L%d, want L%d", feats, res.PerTree[0], want[0])
		}
	}
}

// TestPipelineOnBGVPlaintextModel covers the M=S configuration on real
// ciphertexts: plaintext model, encrypted features.
func TestPipelineOnBGVPlaintextModel(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV integration test")
	}
	forest := model.Figure1()
	c, err := Compile(forest, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b := newBGVBackend(t, c)
	m, err := Prepare(b, c, false)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b, Workers: 4, SkipZeroDiagonals: true}
	for _, feats := range [][]uint64{{0, 5}, {7, 1}, {2, 8}} {
		want := forest.Classify(feats)
		got := classifySecureBGV(t, e, m, feats)
		if got[0] != want[0] {
			t.Errorf("Classify(%v) = L%d, want L%d", feats, got[0], want[0])
		}
	}
}

func classifySecureBGV(t *testing.T, e *Engine, m *ModelOperands, feats []uint64) []int {
	t.Helper()
	q, err := PrepareQuery(e.Backend, &m.Meta, feats, true)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := he.Reveal(e.Backend, out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResult(&m.Meta, slots)
	if err != nil {
		t.Fatal(err)
	}
	return res.PerTree
}
