package core

import (
	"math"
	"math/rand/v2"
	"os"
	"testing"
	"time"

	"copse/internal/bgv"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/he/heclear"
	"copse/internal/model"
)

// TestShuffleResultPreservesVotes: shuffling must keep exactly the vote
// counts while moving the set bits.
func TestShuffleResultPreservesVotes(t *testing.T) {
	b := heclear.New(64, 65537)
	forest := model.Figure1()
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}

	feats := []uint64{0, 5} // classifies as L4
	q, err := PrepareQuery(b, &m.Meta, feats, true)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}

	for _, padTo := range []int{0, 10, 32} {
		for seed := uint64(1); seed <= 3; seed++ {
			shuffled, cb, err := ShuffleResult(b, &m.Meta, out, padTo, seed)
			if err != nil {
				t.Fatalf("padTo=%d seed=%d: %v", padTo, seed, err)
			}
			slots, err := he.Reveal(b, shuffled)
			if err != nil {
				t.Fatal(err)
			}
			res, err := DecodeShuffled(cb, len(forest.Labels), slots)
			if err != nil {
				t.Fatalf("padTo=%d seed=%d: %v", padTo, seed, err)
			}
			if res.Votes[4] != 1 {
				t.Errorf("padTo=%d seed=%d: votes %v, want one vote for L4", padTo, seed, res.Votes)
			}
			total := 0
			for _, v := range res.Votes {
				total += v
			}
			if total != 1 {
				t.Errorf("padTo=%d seed=%d: %d total votes, want 1", padTo, seed, total)
			}
			wantLen := padTo
			if padTo == 0 {
				wantLen = m.Meta.NumLeaves
			}
			if len(cb.Slots) != wantLen {
				t.Errorf("codebook has %d slots, want %d", len(cb.Slots), wantLen)
			}
		}
	}
}

// TestShuffleActuallyPermutes: different seeds must move the hot slot.
func TestShuffleActuallyPermutes(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	q, err := PrepareQuery(b, &m.Meta, []uint64{0, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}
	hot := func(seed uint64) int {
		shuffled, _, err := ShuffleResult(b, &m.Meta, out, 32, seed)
		if err != nil {
			t.Fatal(err)
		}
		slots, err := he.Reveal(b, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range slots {
			if v == 1 {
				return i
			}
		}
		t.Fatal("no hot slot after shuffle")
		return -1
	}
	positions := map[int]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		positions[hot(seed)] = true
	}
	if len(positions) < 3 {
		t.Errorf("hot slot landed in only %d positions over 8 seeds", len(positions))
	}
}

func TestShuffleErrors(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := he.NewPlain(b, make([]uint64, 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ShuffleResult(b, &m.Meta, zero, 3, 1); err == nil {
		t.Error("padding below leaf count accepted")
	}
	if _, _, err := ShuffleResult(b, &m.Meta, zero, 999, 1); err == nil {
		t.Error("padding beyond slots accepted")
	}
	cb := &ShuffledCodebook{Slots: []int{0, 1}, NumTrees: 1}
	if _, err := DecodeShuffled(cb, 2, []uint64{1}); err == nil {
		t.Error("short slot vector accepted")
	}
	if _, err := DecodeShuffled(cb, 2, []uint64{7, 0}); err == nil {
		t.Error("non-bit accepted")
	}
	if _, err := DecodeShuffled(cb, 2, []uint64{1, 1}); err == nil {
		t.Error("two votes for one tree accepted")
	}
	if _, err := DecodeShuffled(cb, 2, []uint64{0, 0}); err == nil {
		t.Error("zero votes accepted")
	}
}

// TestConcurrentClassify: one system, many goroutines classifying at
// once — the evaluator, plaintext caches, and counters must be
// race-free (run under -race in CI).
func TestConcurrentClassify(t *testing.T) {
	b := heclear.New(64, 65537)
	forest := model.Figure1()
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b, Workers: 2}
	inputs := [][]uint64{{0, 5}, {0, 0}, {6, 0}, {3, 2}, {0, 9}, {15, 15}, {8, 8}, {1, 7}}
	errCh := make(chan error, len(inputs))
	for _, feats := range inputs {
		go func(feats []uint64) {
			q, err := PrepareQuery(b, &m.Meta, feats, true)
			if err != nil {
				errCh <- err
				return
			}
			out, _, err := e.Classify(m, q)
			if err != nil {
				errCh <- err
				return
			}
			slots, err := he.Reveal(b, out)
			if err != nil {
				errCh <- err
				return
			}
			res, err := DecodeResult(&m.Meta, slots)
			if err != nil {
				errCh <- err
				return
			}
			want := forest.Classify(feats)
			if res.PerTree[0] != want[0] {
				errCh <- errMismatch(feats, res.PerTree[0], want[0])
				return
			}
			errCh <- nil
		}(feats)
	}
	for range inputs {
		if err := <-errCh; err != nil {
			t.Error(err)
		}
	}
}

type mismatchError struct {
	feats     []uint64
	got, want int
}

func errMismatch(feats []uint64, got, want int) error {
	return &mismatchError{feats, got, want}
}

func (e *mismatchError) Error() string {
	return "concurrent classify mismatch"
}

// classifyBatchRaw packs a batch, classifies it once and returns the
// result operand (for the shuffle tests, which consume it twice).
func classifyBatchRaw(t *testing.T, e *Engine, m *ModelOperands, batch [][]uint64) he.Operand {
	t.Helper()
	q, err := PrepareQueryBatch(e.Backend, &m.Meta, batch, true)
	if err != nil {
		t.Fatalf("PrepareQueryBatch: %v", err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	return out
}

// TestBatchedShuffleMatchesSingle is the batch-vs-single equivalence
// property: every block of a batched shuffle must decode to exactly the
// votes of the single-query shuffle path (and the plaintext walk), and
// block 0's shuffled slots must be bit-exact with ShuffleResult under
// the same seed. Covers the B=1 and B=BatchCapacity edge cases.
func TestBatchedShuffleMatchesSingle(t *testing.T) {
	b := heclear.New(64, 65537)
	forest := model.Figure1()
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	capacity := m.Meta.BatchCapacity()
	if capacity != 4 {
		t.Fatalf("capacity %d, want 4", capacity)
	}
	pool := [][]uint64{{0, 5}, {7, 0}, {3, 2}, {15, 15}, {0, 0}, {6, 9}}
	for _, size := range []int{1, 2, capacity} {
		for seed := uint64(1); seed <= 3; seed++ {
			batch := pool[:size]
			out := classifyBatchRaw(t, e, m, batch)
			shuffled, cbs, err := ShuffleResultBatch(b, &m.Meta, out, size, 0, seed, 2)
			if err != nil {
				t.Fatalf("size=%d seed=%d: %v", size, seed, err)
			}
			if len(cbs) != size {
				t.Fatalf("size=%d: %d codebooks", size, len(cbs))
			}
			slots, err := he.Reveal(b, shuffled)
			if err != nil {
				t.Fatal(err)
			}
			results, err := DecodeShuffledBatch(cbs, len(forest.Labels), slots, m.Meta.BatchBlock())
			if err != nil {
				t.Fatalf("size=%d seed=%d: %v", size, seed, err)
			}
			for k, feats := range batch {
				// Votes must match the plaintext walk...
				wantVotes := make([]int, len(forest.Labels))
				for _, lbl := range forest.Classify(feats) {
					wantVotes[lbl]++
				}
				for lbl, v := range results[k].Votes {
					if v != wantVotes[lbl] {
						t.Errorf("size=%d seed=%d block %d: votes %v, want %v", size, seed, k, results[k].Votes, wantVotes)
						break
					}
				}
				// ...and the single-query shuffle path, decoded.
				singleOut := classifyBatchRaw(t, e, m, [][]uint64{feats})
				sShuffled, sCb, err := ShuffleResult(b, &m.Meta, singleOut, 0, seed)
				if err != nil {
					t.Fatal(err)
				}
				sSlots, err := he.Reveal(b, sShuffled)
				if err != nil {
					t.Fatal(err)
				}
				sRes, err := DecodeShuffled(sCb, len(forest.Labels), sSlots)
				if err != nil {
					t.Fatal(err)
				}
				for lbl, v := range results[k].Votes {
					if v != sRes.Votes[lbl] {
						t.Errorf("size=%d seed=%d block %d: batched votes %v, single %v", size, seed, k, results[k].Votes, sRes.Votes)
						break
					}
				}
				if k == 0 {
					// Block 0 shares the single-query permutation stream:
					// its shuffled window is bit-exact with ShuffleResult.
					for i := 0; i < len(cbs[0].Slots); i++ {
						if slots[i] != sSlots[i] {
							t.Errorf("seed=%d: block-0 slot %d: batched %d, single %d", seed, i, slots[i], sSlots[i])
							break
						}
					}
				}
			}
		}
	}
}

// TestBatchedShuffleCodebookIndependence: every block must carry its own
// independently seeded permutation — distinct codebooks across blocks,
// deterministic per seed, different across seeds.
func TestBatchedShuffleCodebookIndependence(t *testing.T) {
	b := heclear.New(1024, 65537)
	forest := model.Figure1()
	c, err := Compile(forest, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	capacity := m.Meta.BatchCapacity() // 64
	batch := make([][]uint64, capacity)
	for i := range batch {
		batch[i] = []uint64{uint64(i % 16), uint64((i * 7) % 16)}
	}
	out := classifyBatchRaw(t, e, m, batch)

	// Padding tops out at SPad per block (8 here): 8! = 40320
	// permutations, and the fixed seed below draws 64 distinct ones.
	padTo := m.Meta.SPad()
	_, cbs, err := ShuffleResultBatch(b, &m.Meta, out, capacity, padTo, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	key := func(cb *ShuffledCodebook) string {
		s := make([]byte, len(cb.Slots))
		for i, v := range cb.Slots {
			s[i] = byte(v)
		}
		return string(s)
	}
	seen := map[string]int{}
	for k, cb := range cbs {
		if len(cb.Slots) != padTo {
			t.Fatalf("block %d codebook has %d slots", k, len(cb.Slots))
		}
		if prev, dup := seen[key(cb)]; dup {
			t.Errorf("blocks %d and %d share a codebook (cross-query linkage)", prev, k)
		}
		seen[key(cb)] = k
	}
	// Deterministic per seed, distinct across seeds.
	_, again, err := ShuffleResultBatch(b, &m.Meta, out, capacity, padTo, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, other, err := ShuffleResultBatch(b, &m.Meta, out, capacity, padTo, 43, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range cbs {
		if key(again[k]) != key(cbs[k]) {
			t.Errorf("block %d: same seed produced a different codebook", k)
		}
		if key(other[k]) == key(cbs[k]) {
			t.Errorf("block %d: different seed reproduced the codebook", k)
		}
	}
}

func TestBatchedShuffleErrors(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := he.NewPlain(b, make([]uint64, 64))
	if err != nil {
		t.Fatal(err)
	}
	capacity := m.Meta.BatchCapacity() // 4
	if _, _, err := ShuffleResultBatch(b, &m.Meta, zero, 0, 0, 1, 1); err == nil {
		t.Error("zero batch accepted")
	}
	if _, _, err := ShuffleResultBatch(b, &m.Meta, zero, capacity+1, 0, 1, 1); err == nil {
		t.Error("batch beyond capacity accepted")
	}
	if _, _, err := ShuffleResultBatch(b, &m.Meta, zero, 1, 3, 1, 1); err == nil {
		t.Error("padding below leaf count accepted")
	}
	// Block-local padding is bounded by SPad (8 for Figure 1): wider
	// permutations would read into the neighbouring query.
	if _, _, err := ShuffleResultBatch(b, &m.Meta, zero, 1, m.Meta.SPad()+1, 1, 1); err == nil {
		t.Error("padding beyond the block accepted")
	}
	if _, err := DecodeShuffledBatch(nil, 2, make([]uint64, 64), 16); err == nil {
		t.Error("empty codebook list accepted")
	}
	cb := &ShuffledCodebook{Slots: []int{0, 1}, NumTrees: 1}
	if _, err := DecodeShuffledBatch([]*ShuffledCodebook{cb}, 2, []uint64{1, 0}, 0); err == nil {
		t.Error("zero block width accepted")
	}
	if _, err := DecodeShuffledBatch([]*ShuffledCodebook{cb, cb}, 2, []uint64{1, 0, 0}, 16); err == nil {
		t.Error("short slot vector accepted")
	}
}

// TestBatchedShuffleSingleBlockLayout covers the degenerate capacity-1
// layout (2·SPad == slots): the batched path must behave exactly like
// the single-query one, including wide paddings past SPad.
func TestBatchedShuffleSingleBlockLayout(t *testing.T) {
	b := heclear.New(16, 65537)
	forest := model.Figure1()
	c, err := Compile(forest, Options{Slots: 16})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta.BatchCapacity() != 1 {
		t.Fatalf("capacity %d, want 1", m.Meta.BatchCapacity())
	}
	e := &Engine{Backend: b}
	out := classifyBatchRaw(t, e, m, [][]uint64{{0, 5}})
	for _, padTo := range []int{0, 10, 16} {
		shuffled, cbs, err := ShuffleResultBatch(b, &m.Meta, out, 1, padTo, 5, 1)
		if err != nil {
			t.Fatalf("padTo=%d: %v", padTo, err)
		}
		slots, err := he.Reveal(b, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DecodeShuffledBatch(cbs, len(forest.Labels), slots, m.Meta.BatchBlock())
		if err != nil {
			t.Fatalf("padTo=%d: %v", padTo, err)
		}
		if res[0].Votes[4] != 1 {
			t.Errorf("padTo=%d: votes %v, want one vote for L4", padTo, res[0].Votes)
		}
	}
}

// TestBatchedShufflePerfSmoke is the CI guardrail for the batched
// shuffle: one block-diagonal pass over a full batch must beat the
// sequential single-query shuffle loop on the clear backend (the
// batched kernel issues ~2·√P rotations once instead of per query).
// Gated behind COPSE_PERF_SMOKE=1 like the other wall-clock smokes.
func TestBatchedShufflePerfSmoke(t *testing.T) {
	if os.Getenv("COPSE_PERF_SMOKE") == "" {
		t.Skip("set COPSE_PERF_SMOKE=1 to run the batched-shuffle perf smoke")
	}
	b := heclear.New(1024, 65537)
	c, err := Compile(model.Figure1(), Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	capacity := m.Meta.BatchCapacity()
	batch := make([][]uint64, capacity)
	for i := range batch {
		batch[i] = []uint64{uint64(i % 16), uint64(i / 16)}
	}
	batchOut := classifyBatchRaw(t, e, m, batch)
	singleOut := classifyBatchRaw(t, e, m, batch[:1])

	const reps = 5
	start := time.Now()
	for r := 0; r < reps; r++ {
		for q := 0; q < capacity; q++ {
			if _, _, err := ShuffleResult(b, &m.Meta, singleOut, 0, uint64(r*capacity+q+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	single := time.Since(start) / reps

	start = time.Now()
	for r := 0; r < reps; r++ {
		if _, _, err := ShuffleResultBatch(b, &m.Meta, batchOut, capacity, 0, uint64(r+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	batched := time.Since(start) / reps

	t.Logf("full batch (%d queries): single-query loop %v, batched pass %v (%.1fx)",
		capacity, single, batched, float64(single)/float64(batched))
	if batched >= single {
		t.Fatalf("batched shuffle (%v) is not faster than %d sequential single-query shuffles (%v)",
			batched, capacity, single)
	}
}

// TestBatchedShuffleBGVLeveledKeys runs the batched shuffle on real BGV
// ciphertexts with the full leveled staging: a PlanShuffle-compiled
// model, chain sized to the plan, Galois keys generated at the
// level budget Meta.RotationStepLevels emits — proving the leveled key
// set covers the block-diagonal kernel — and asserts the rotation bill
// of the whole batch stays within 2·√P+1.
func TestBatchedShuffleBGVLeveledKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV batched shuffle is slow")
	}
	forest := model.Figure1()
	c, err := Compile(forest, Options{Slots: 1024, PlanShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := c.Meta.LevelPlan
	if plan == nil {
		t.Fatal("no level plan")
	}
	b, err := hebgv.New(hebgv.Config{
		Params:             bgv.TestParams(plan.ChainLevels(true)),
		RotationSteps:      c.Meta.RotationSteps,
		RotationStepLevels: c.Meta.RotationStepLevels(true),
		Seed:               17,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b, Workers: 4}
	capacity := m.Meta.BatchCapacity()
	rng := rand.New(rand.NewPCG(31, 7))
	batch := make([][]uint64, capacity)
	for i := range batch {
		batch[i] = []uint64{rng.Uint64N(16), rng.Uint64N(16)}
	}
	out := classifyBatchRaw(t, e, m, batch)

	counting := he.WithCounts(b)
	shuffled, cbs, err := ShuffleResultBatch(counting, &m.Meta, out, capacity, 0, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	nPad := m.Meta.LPad()
	bound := int64(2*int(math.Sqrt(float64(nPad)))) + 1
	if rots := counting.Counts().Rotate; rots > bound {
		t.Errorf("batched shuffle of %d queries used %d rotations, bound 2·√%d+1 = %d", capacity, rots, nPad, bound)
	}
	budget, err := b.NoiseBudget(shuffled.Ct)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 {
		t.Fatalf("shuffled result noise budget %d", budget)
	}
	slots, err := he.Reveal(b, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DecodeShuffledBatch(cbs, len(forest.Labels), slots, m.Meta.BatchBlock())
	if err != nil {
		t.Fatal(err)
	}
	for k, feats := range batch {
		wantVotes := make([]int, len(forest.Labels))
		for _, lbl := range forest.Classify(feats) {
			wantVotes[lbl]++
		}
		for lbl, v := range results[k].Votes {
			if v != wantVotes[lbl] {
				t.Errorf("block %d (%v): votes %v, want %v", k, feats, results[k].Votes, wantVotes)
				break
			}
		}
	}
}
