package core

import (
	"testing"

	"copse/internal/he"
	"copse/internal/he/heclear"
	"copse/internal/model"
)

// TestShuffleResultPreservesVotes: shuffling must keep exactly the vote
// counts while moving the set bits.
func TestShuffleResultPreservesVotes(t *testing.T) {
	b := heclear.New(64, 65537)
	forest := model.Figure1()
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}

	feats := []uint64{0, 5} // classifies as L4
	q, err := PrepareQuery(b, &m.Meta, feats, true)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}

	for _, padTo := range []int{0, 10, 32} {
		for seed := uint64(1); seed <= 3; seed++ {
			shuffled, cb, err := ShuffleResult(b, &m.Meta, out, padTo, seed)
			if err != nil {
				t.Fatalf("padTo=%d seed=%d: %v", padTo, seed, err)
			}
			slots, err := he.Reveal(b, shuffled)
			if err != nil {
				t.Fatal(err)
			}
			res, err := DecodeShuffled(cb, len(forest.Labels), slots)
			if err != nil {
				t.Fatalf("padTo=%d seed=%d: %v", padTo, seed, err)
			}
			if res.Votes[4] != 1 {
				t.Errorf("padTo=%d seed=%d: votes %v, want one vote for L4", padTo, seed, res.Votes)
			}
			total := 0
			for _, v := range res.Votes {
				total += v
			}
			if total != 1 {
				t.Errorf("padTo=%d seed=%d: %d total votes, want 1", padTo, seed, total)
			}
			wantLen := padTo
			if padTo == 0 {
				wantLen = m.Meta.NumLeaves
			}
			if len(cb.Slots) != wantLen {
				t.Errorf("codebook has %d slots, want %d", len(cb.Slots), wantLen)
			}
		}
	}
}

// TestShuffleActuallyPermutes: different seeds must move the hot slot.
func TestShuffleActuallyPermutes(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	q, err := PrepareQuery(b, &m.Meta, []uint64{0, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}
	hot := func(seed uint64) int {
		shuffled, _, err := ShuffleResult(b, &m.Meta, out, 32, seed)
		if err != nil {
			t.Fatal(err)
		}
		slots, err := he.Reveal(b, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range slots {
			if v == 1 {
				return i
			}
		}
		t.Fatal("no hot slot after shuffle")
		return -1
	}
	positions := map[int]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		positions[hot(seed)] = true
	}
	if len(positions) < 3 {
		t.Errorf("hot slot landed in only %d positions over 8 seeds", len(positions))
	}
}

func TestShuffleErrors(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := he.NewPlain(b, make([]uint64, 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ShuffleResult(b, &m.Meta, zero, 3, 1); err == nil {
		t.Error("padding below leaf count accepted")
	}
	if _, _, err := ShuffleResult(b, &m.Meta, zero, 999, 1); err == nil {
		t.Error("padding beyond slots accepted")
	}
	cb := &ShuffledCodebook{Slots: []int{0, 1}, NumTrees: 1}
	if _, err := DecodeShuffled(cb, 2, []uint64{1}); err == nil {
		t.Error("short slot vector accepted")
	}
	if _, err := DecodeShuffled(cb, 2, []uint64{7, 0}); err == nil {
		t.Error("non-bit accepted")
	}
	if _, err := DecodeShuffled(cb, 2, []uint64{1, 1}); err == nil {
		t.Error("two votes for one tree accepted")
	}
	if _, err := DecodeShuffled(cb, 2, []uint64{0, 0}); err == nil {
		t.Error("zero votes accepted")
	}
}

// TestConcurrentClassify: one system, many goroutines classifying at
// once — the evaluator, plaintext caches, and counters must be
// race-free (run under -race in CI).
func TestConcurrentClassify(t *testing.T) {
	b := heclear.New(64, 65537)
	forest := model.Figure1()
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b, Workers: 2}
	inputs := [][]uint64{{0, 5}, {0, 0}, {6, 0}, {3, 2}, {0, 9}, {15, 15}, {8, 8}, {1, 7}}
	errCh := make(chan error, len(inputs))
	for _, feats := range inputs {
		go func(feats []uint64) {
			q, err := PrepareQuery(b, &m.Meta, feats, true)
			if err != nil {
				errCh <- err
				return
			}
			out, _, err := e.Classify(m, q)
			if err != nil {
				errCh <- err
				return
			}
			slots, err := he.Reveal(b, out)
			if err != nil {
				errCh <- err
				return
			}
			res, err := DecodeResult(&m.Meta, slots)
			if err != nil {
				errCh <- err
				return
			}
			want := forest.Classify(feats)
			if res.PerTree[0] != want[0] {
				errCh <- errMismatch(feats, res.PerTree[0], want[0])
				return
			}
			errCh <- nil
		}(feats)
	}
	for range inputs {
		if err := <-errCh; err != nil {
			t.Error(err)
		}
	}
}

type mismatchError struct {
	feats     []uint64
	got, want int
}

func errMismatch(feats []uint64, got, want int) error {
	return &mismatchError{feats, got, want}
}

func (e *mismatchError) Error() string {
	return "concurrent classify mismatch"
}
