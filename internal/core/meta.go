// Package core implements the paper's primary contribution: the COPSE
// staging compiler (§5), which restructures a decision forest into the
// vectorizable primitives of §4.2 (padded threshold vector, reshuffling
// matrix, level matrices, level masks), and the vectorized evaluation
// engine running Algorithm 1 over any he.Backend.
package core

import (
	"fmt"

	"copse/internal/matrix"
)

// Meta carries the public and structural parameters of a compiled model.
// Which fields are revealed to which party depends on the scenario; see
// leakage.go (paper §7.1).
type Meta struct {
	NumFeatures int
	Precision   int // p: fixed-point bits
	NumTrees    int

	K    int // maximum feature multiplicity (revealed to the data owner)
	Q    int // quantized branching: K · NumFeatures
	QPad int // Q padded to a power of two (threshold-vector period)
	B    int // total branches
	BPad int // B padded to a power of two (branch-vector period)
	D    int // number of levels (max node level)

	NumLeaves  int      // label slots in the result bitvector
	LabelNames []string // public label names
	// Codebook maps each leaf slot to its label index — the map the
	// paper's §7.2.2 discusses revealing to Diane.
	Codebook []int
	// TreeLeafOffsets[i] is the first leaf slot of tree i (plus a final
	// sentinel). This is Maurice-private: revealing it would expose the
	// boundaries between trees.
	TreeLeafOffsets []int

	// Slots is the packing width the model was staged for.
	Slots int
	// RotationSteps are the Galois rotations the evaluation needs; the
	// model owner generates exactly these keys. With UseBSGS the set is
	// the reduced baby-step/giant-step one (~2·√period per matrix period
	// instead of period−1 steps).
	RotationSteps []int
	// UseBSGS records that the model was staged for the baby-step/
	// giant-step diagonal kernel: Prepare lays matrix diagonals out
	// pre-rotated by their giant step and RotationSteps holds only the
	// reduced step set. Zero-value (old artifacts) means the naive
	// one-rotation-per-diagonal kernel.
	UseBSGS bool
	// BSGSPlans is the staged baby/giant split for each matrix period
	// (QPad for the reshuffle, BPad for the level matrices, padded
	// NumLeaves for result shuffling).
	BSGSPlans []BSGSPlan

	// Circuit-shape estimates (ciphertext-ciphertext multiplicative
	// depth) used to choose encryption parameters — the staging
	// compiler's parameter selection (§5).
	CtDepthCipherModel int
	CtDepthPlainModel  int
	RecommendedLevels  int

	// LevelPlan is the static level schedule the compiler derived by
	// running its noise model forward over the pipeline (DESIGN.md §8):
	// per-stage target levels that let the back half of Algorithm 1 run
	// on a fraction of the modulus chain. Nil on artifacts older than v3
	// (and when no feasible schedule was found); the engine then falls
	// back to reactive noise management.
	LevelPlan *LevelPlan

	// ForcedSPad, when non-zero, pins SPad (and therefore BatchBlock /
	// BatchCapacity) to at least this value. Shard artifacts produced by
	// ShardForest set it to the parent forest's SPad so every shard keeps
	// the parent's slot layout: queries encrypted once against the global
	// layout evaluate on any shard, and per-shard result ciphertexts
	// occupy disjoint slot supports that merge with plain adds. Zero on
	// unsharded models (and artifacts older than v4).
	ForcedSPad int
}

// LPad returns the leaf count padded to a power of two — the period of
// the result vector (and of the optional result shuffle, §7.2.2).
func (m *Meta) LPad() int {
	return 1 << log2Ceil(max(m.NumLeaves, 1))
}

// SPad returns the widest per-query slot period of the pipeline: the
// padded threshold period (QPad), the padded branch period (BPad) and
// the padded leaf period (LPad) all have to fit inside one query's slot
// region for the batched layout. Shard artifacts pin it via ForcedSPad
// so a shard whose own periods shrank below the parent's keeps the
// parent's block layout.
func (m *Meta) SPad() int {
	return max(m.QPad, m.BPad, m.LPad(), m.ForcedSPad)
}

// BatchBlock returns the width W of one query's slot block under the
// slot-packed batching layout. Each block holds its query's data
// replicated twice over SPad slots (W = 2·SPad), so that every wrapped
// diagonal read r + i < 2·SPad of the matrix kernels lands on the
// block's own copy instead of the neighbouring query — the blocked
// equivalent of the wrap-around the fully periodic single-query layout
// gets from ciphertext rotation. When the model is too large for two
// queries (2·SPad > Slots) the block is the whole ciphertext and the
// layout degenerates to the original fully periodic one.
func (m *Meta) BatchBlock() int {
	return m.Slots / m.BatchCapacity()
}

// BatchCapacity returns how many independent queries one ciphertext set
// can carry: Slots / (2·SPad), at least 1. This is the headroom COPSE's
// periodic replication leaves idle on a single query — a model with
// SPad = 8 on a 1024-slot backend answers 64 queries per homomorphic
// pass.
func (m *Meta) BatchCapacity() int {
	if m.Slots <= 0 {
		return 1
	}
	return max(m.Slots/(2*m.SPad()), 1)
}

// RotationStepLevels returns, for the given scenario, the highest chain
// level each Galois rotation step is rotated at under the compiled
// level schedule — the per-step Galois-key budget that
// hebgv.Config.RotationStepLevels consumes. The compare stage rotates
// nothing, so every kernel step belongs to a scheduled-down back-half
// stage: the reshuffle kernel's steps (and the block-replication powers
// that follow it) cap at the reshuffle entry, the level kernel's at the
// level entry, and the result-shuffle kernel's (plus its replication
// powers) at the shuffle entry. Positive power-of-two steps are omitted:
// they double as the composed-rotation ladder, which must serve any
// level (second registered models, reactive callers). Steps assigned a
// level here are still safe for such callers — the evaluator falls back
// to the ladder when a rotation arrives above a key's level. Nil when
// the model carries no plan.
func (m *Meta) RotationStepLevels(encModel bool) map[int]int {
	if m.LevelPlan == nil {
		return nil
	}
	st := m.LevelPlan.For(encModel)
	out := map[int]int{}
	bump := func(step, level int) {
		if step > 0 && step&(step-1) == 0 {
			return // composition-ladder steps stay at the chain top
		}
		if cur, ok := out[step]; !ok || level > cur {
			out[step] = level
		}
	}
	kernel := func(baby, giant, level int) {
		for j := 1; j < baby; j++ {
			bump(j, level)
		}
		for g := 1; g < giant; g++ {
			bump(g*baby, level)
		}
	}
	split := func(period int) (int, int) {
		if !m.UseBSGS {
			return period, 1 // naive kernel: steps 1..period−1
		}
		if baby, giant, ok := m.BSGSFor(period); ok {
			return baby, giant
		}
		return matrix.BSGSSplit(period)
	}
	replicate := func(from, to, level int) {
		for p := from; p < to; p <<= 1 {
			bump(-p, level)
		}
	}

	qb, qg := split(m.QPad)
	kernel(qb, qg, st.Reshuffle)
	bb, bg := split(m.BPad)
	kernel(bb, bg, st.Level)
	replicate(m.BPad, m.BatchBlock(), st.Reshuffle)

	// The result shuffle always stages a BSGS kernel over the padded
	// leaf period; its entry level is scenario-independent (both
	// ShuffleResult and ShuffleResultBatch drop to it). The replication
	// steps cover the single-query whole-ciphertext replicate, whose
	// negated powers of two are a superset of the batched kernel's
	// block-local ReplicateWithin steps (LPad up to BatchBlock), and the
	// block-diagonal batched kernel reuses the same baby/giant steps —
	// so one leveled key budget serves both shuffle paths.
	nb, ng := matrix.BSGSSplit(m.LPad())
	shuffleAt := m.LevelPlan.ShuffleLevel()
	kernel(nb, ng, shuffleAt)
	replicate(m.LPad(), m.Slots, shuffleAt)
	return out
}

// BSGSPlan is the staged baby-step/giant-step split for one matrix
// period: Baby·Giant == Period.
type BSGSPlan struct {
	Period, Baby, Giant int
}

// BSGSFor returns the staged split for a period, if one was staged.
func (m *Meta) BSGSFor(period int) (baby, giant int, ok bool) {
	for _, p := range m.BSGSPlans {
		if p.Period == period {
			return p.Baby, p.Giant, true
		}
	}
	return 0, 0, false
}

// log2Ceil returns ceil(log2(n)) for n ≥ 1.
func log2Ceil(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}

func (m *Meta) String() string {
	return fmt.Sprintf("forest{trees=%d features=%d p=%d K=%d q=%d b=%d d=%d leaves=%d}",
		m.NumTrees, m.NumFeatures, m.Precision, m.K, m.Q, m.B, m.D, m.NumLeaves)
}
