package core

import (
	"testing"

	"copse/internal/bgv"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/model"
	"copse/internal/synth"
)

// planForests returns the scenario corpus the level-plan regression
// tests sweep: the Figure 1 running example plus synthetic micro models
// of varying depth and width.
func planForests(t *testing.T, short bool) map[string]*model.Forest {
	t.Helper()
	forests := map[string]*model.Forest{"figure1": model.Figure1()}
	if short {
		return forests
	}
	for _, name := range []string{"depth4", "width55"} {
		for _, mb := range synth.Microbenchmarks() {
			if mb.Name != name {
				continue
			}
			f, err := synth.Generate(mb.Spec)
			if err != nil {
				t.Fatal(err)
			}
			forests[name] = f
		}
	}
	return forests
}

// TestLevelPlanComputed: every compiled model carries a structurally
// sound schedule — monotone non-increasing along the pipeline, final
// level positive, and a chain no longer than the reactive
// recommendation.
func TestLevelPlanComputed(t *testing.T) {
	for name, f := range planForests(t, false) {
		c, err := Compile(f, Options{Slots: 1024})
		if err != nil {
			t.Fatal(err)
		}
		plan := c.Meta.LevelPlan
		if plan == nil {
			t.Fatalf("%s: no level plan computed", name)
		}
		if plan.Levels >= c.Meta.RecommendedLevels {
			t.Errorf("%s: planned chain %d not shorter than reactive %d", name, plan.Levels, c.Meta.RecommendedLevels)
		}
		for scenario, st := range map[string]StageLevels{"cipher": plan.Cipher, "plain": plan.Plain} {
			if st.Final < 1 {
				t.Errorf("%s/%s: final level %d below 1", name, scenario, st.Final)
			}
			if !(st.Compare >= st.Reshuffle && st.Reshuffle >= st.Level &&
				st.Level >= st.Accumulate && st.Accumulate >= st.Final) {
				t.Errorf("%s/%s: schedule not monotone: %+v", name, scenario, st)
			}
			// The deep stages must run on a small fraction of the chain.
			if st.Accumulate+1 > plan.Levels/2 {
				t.Errorf("%s/%s: product tree enters at %d limbs on a %d-prime chain", name, scenario, st.Accumulate+1, plan.Levels)
			}
			// The Sklansky rounds inside compare carry their own
			// schedule: one entry per round, non-increasing, bracketed by
			// the stage's own entry and exit, and actually shedding limbs
			// before the boundary (the compare stage is the expensive
			// one; per-round drops are its whole point).
			if len(st.CompareRounds) != log2Ceil(c.Meta.Precision) {
				t.Errorf("%s/%s: %d compare rounds scheduled, want %d", name, scenario, len(st.CompareRounds), log2Ceil(c.Meta.Precision))
			}
			prev := st.Compare
			for r, lvl := range st.CompareRounds {
				if lvl > prev || lvl < st.Reshuffle {
					t.Errorf("%s/%s: compare round %d level %d outside [%d, %d]", name, scenario, r, lvl, st.Reshuffle, prev)
				}
				prev = lvl
			}
			if n := len(st.CompareRounds); n > 0 && st.CompareRounds[n-1] > st.Reshuffle+1 {
				t.Errorf("%s/%s: last compare round still at level %d, reshuffle entry is %d", name, scenario, st.CompareRounds[n-1], st.Reshuffle)
			}
		}
	}
}

// TestRotationStepLevelsAgreeWithRotationSteps pins the Galois-key
// level budget to the compiler's step enumeration: RotationStepLevels
// and rotationSteps each enumerate the kernel and replication steps, so
// a divergence between them would either leave dead map entries
// (harmless but wrong) or silently forfeit key-material savings. The
// contract: every map entry names a staged step within the chain, and
// every staged step that is not a positive power of two (the
// composition ladder, deliberately kept at the top) carries a level.
func TestRotationStepLevelsAgreeWithRotationSteps(t *testing.T) {
	for name, f := range planForests(t, false) {
		for _, noBSGS := range []bool{false, true} {
			c, err := Compile(f, Options{Slots: 1024, NoBSGS: noBSGS})
			if err != nil {
				t.Fatal(err)
			}
			if c.Meta.LevelPlan == nil {
				t.Fatalf("%s: no level plan", name)
			}
			staged := map[int]bool{}
			for _, s := range c.Meta.RotationSteps {
				staged[s] = true
			}
			for _, encModel := range []bool{true, false} {
				levels := c.Meta.RotationStepLevels(encModel)
				top := c.Meta.LevelPlan.For(encModel).Compare
				for s, lvl := range levels {
					if !staged[s] {
						t.Errorf("%s noBSGS=%v enc=%v: leveled step %d is not in RotationSteps", name, noBSGS, encModel, s)
					}
					if lvl < 0 || lvl > top {
						t.Errorf("%s noBSGS=%v enc=%v: step %d level %d outside [0, %d]", name, noBSGS, encModel, s, lvl, top)
					}
				}
				for _, s := range c.Meta.RotationSteps {
					if s > 0 && s&(s-1) == 0 {
						continue // ladder steps stay at the top by design
					}
					if _, ok := levels[s]; !ok {
						t.Errorf("%s noBSGS=%v enc=%v: staged step %d has no level budget", name, noBSGS, encModel, s)
					}
				}
			}
		}
	}
}

// TestLevelPlanNoBSGSAndShuffleVariants: the ablation stagings also get
// feasible plans, and PlanShuffle reserves at least the shuffle's entry.
func TestLevelPlanNoBSGSAndShuffleVariants(t *testing.T) {
	f := model.Figure1()
	naive, err := Compile(f, Options{Slots: 1024, NoBSGS: true})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Meta.LevelPlan == nil {
		t.Fatal("naive staging: no level plan")
	}
	off, err := Compile(f, Options{Slots: 1024, NoLevelPlan: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Meta.LevelPlan != nil {
		t.Fatal("NoLevelPlan still produced a plan")
	}
	sh, err := Compile(f, Options{Slots: 1024, PlanShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := sh.Meta.LevelPlan
	if plan == nil {
		t.Fatal("PlanShuffle staging: no level plan")
	}
	if plan.Cipher.Final < plan.ShuffleLevel() || plan.Plain.Final < plan.ShuffleLevel() {
		t.Errorf("PlanShuffle did not reserve shuffle headroom: %+v", plan)
	}
}

// planBackend builds a BGV backend on the plan-sized chain, the way the
// serving layer does.
func planBackend(t *testing.T, c *Compiled, encModel bool) *hebgv.Backend {
	t.Helper()
	levels := c.Meta.RecommendedLevels
	if c.Meta.LevelPlan != nil {
		levels = c.Meta.LevelPlan.ChainLevels(encModel)
	}
	b, err := hebgv.New(hebgv.Config{
		Params:        bgv.TestParams(levels),
		RotationSteps: c.Meta.RotationSteps,
		Seed:          33,
	})
	if err != nil {
		t.Fatalf("hebgv.New: %v", err)
	}
	return b
}

// TestClassifyPlannedNoiseHeadroom is the noise-headroom regression over
// the scenario corpus: every BGV Classify under the static schedule must
// decrypt with positive noise budget, land exactly at the planned final
// level, and classify correctly — on the plan-sized (shortened) chain.
func TestClassifyPlannedNoiseHeadroom(t *testing.T) {
	scenarios := []struct {
		name     string
		encModel bool
	}{
		{"offload", true},
		{"servermodel", false},
	}
	for name, f := range planForests(t, testing.Short()) {
		for _, sc := range scenarios {
			c, err := Compile(f, Options{Slots: 1024})
			if err != nil {
				t.Fatal(err)
			}
			plan := c.Meta.LevelPlan
			if plan == nil {
				t.Fatalf("%s: no plan", name)
			}
			b := planBackend(t, c, sc.encModel)
			m, err := Prepare(b, c, sc.encModel)
			if err != nil {
				t.Fatal(err)
			}
			e := &Engine{Backend: b, Workers: 4, SkipZeroDiagonals: !sc.encModel}
			inputs := [][]uint64{{0, 5}, {3, 2}, {15, 15}}
			if f.NumFeatures != 2 {
				inputs = [][]uint64{make([]uint64, f.NumFeatures)}
				for i := range inputs[0] {
					inputs[0][i] = uint64(i % (1 << uint(f.Precision)))
				}
			}
			for _, feats := range inputs {
				want := f.Classify(feats)
				q, err := PrepareQuery(b, &m.Meta, feats, true)
				if err != nil {
					t.Fatal(err)
				}
				out, trace, err := e.Classify(m, q)
				if err != nil {
					t.Fatalf("%s/%s Classify(%v): %v", name, sc.name, feats, err)
				}
				budget, err := b.NoiseBudget(out.Ct)
				if err != nil {
					t.Fatal(err)
				}
				if budget <= 0 {
					t.Fatalf("%s/%s Classify(%v): noise budget %d", name, sc.name, feats, budget)
				}
				level, err := b.CiphertextLevel(out.Ct)
				if err != nil {
					t.Fatal(err)
				}
				if wantLevel := plan.For(sc.encModel).Final; level != wantLevel {
					t.Errorf("%s/%s: result at level %d, plan schedules %d", name, sc.name, level, wantLevel)
				}
				if trace.Limbs.Result != plan.For(sc.encModel).Final+1 {
					t.Errorf("%s/%s: trace reports %d result limbs", name, sc.name, trace.Limbs.Result)
				}
				slots, err := he.Reveal(b, out)
				if err != nil {
					t.Fatal(err)
				}
				res, err := DecodeResult(&m.Meta, slots)
				if err != nil {
					t.Fatalf("%s/%s DecodeResult(%v): %v", name, sc.name, feats, err)
				}
				for ti := range want {
					if res.PerTree[ti] != want[ti] {
						t.Errorf("%s/%s Classify(%v) tree %d = L%d, want L%d", name, sc.name, feats, ti, res.PerTree[ti], want[ti])
					}
				}
			}
		}
	}
}

// TestPlannedVsReactiveEquivalence is the property test: on one shared
// backend (reactive chain length), the level-scheduled and reactive
// evaluations of the same queries must decrypt to identical leaf
// vectors.
func TestPlannedVsReactiveEquivalence(t *testing.T) {
	f := model.Figure1()
	c, err := Compile(f, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta.LevelPlan == nil {
		t.Fatal("no plan")
	}
	b := newBGVBackend(t, c) // reactive chain: both stagings fit
	planned, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	reactive, err := PrepareWithPlan(b, c, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reactive.Plan != nil || reactive.Meta.LevelPlan != nil {
		t.Fatal("reactive staging still advertises a plan")
	}
	e := &Engine{Backend: b, Workers: 4}
	inputs := [][]uint64{{0, 5}, {6, 0}, {3, 2}, {15, 15}}
	if testing.Short() {
		inputs = inputs[:2]
	}
	for _, feats := range inputs {
		qPlanned, err := PrepareQuery(b, &planned.Meta, feats, true)
		if err != nil {
			t.Fatal(err)
		}
		qReactive, err := PrepareQuery(b, &reactive.Meta, feats, true)
		if err != nil {
			t.Fatal(err)
		}
		outP, traceP, err := e.Classify(planned, qPlanned)
		if err != nil {
			t.Fatalf("planned Classify(%v): %v", feats, err)
		}
		outR, traceR, err := e.Classify(reactive, qReactive)
		if err != nil {
			t.Fatalf("reactive Classify(%v): %v", feats, err)
		}
		if traceP.Limbs.Result == 0 || traceR.Limbs.Result != 0 &&
			traceR.Limbs.Result < traceP.Limbs.Result {
			t.Errorf("limb trace: planned %+v, reactive %+v", traceP.Limbs, traceR.Limbs)
		}
		slotsP, err := he.Reveal(b, outP)
		if err != nil {
			t.Fatal(err)
		}
		slotsR, err := he.Reveal(b, outR)
		if err != nil {
			t.Fatal(err)
		}
		window := planned.Meta.NumLeaves
		for i := 0; i < window; i++ {
			if slotsP[i] != slotsR[i] {
				t.Fatalf("Classify(%v): planned and reactive leaf vectors differ at slot %d (%d vs %d)",
					feats, i, slotsP[i], slotsR[i])
			}
		}
	}
}

// TestShuffleUnderLevelPlanBGV: the default minimal schedule lands the
// result below the shuffle's entry (clear error), and a PlanShuffle
// staging reserves the headroom so ShuffleResult works on real
// ciphertexts.
func TestShuffleUnderLevelPlanBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV integration test")
	}
	forest := model.Figure1()
	feats := []uint64{0, 5} // classifies as L4

	classify := func(c *Compiled) (he.Operand, *ModelOperands, *hebgv.Backend) {
		b := planBackend(t, c, true)
		m, err := Prepare(b, c, true)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Backend: b, Workers: 4}
		q, err := PrepareQuery(b, &m.Meta, feats, true)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := e.Classify(m, q)
		if err != nil {
			t.Fatal(err)
		}
		return out, m, b
	}

	minimal, err := Compile(forest, Options{Slots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	out, m, b := classify(minimal)
	if _, _, err := ShuffleResult(b, &m.Meta, out, 0, 7); err == nil {
		t.Error("minimal schedule: ShuffleResult should report missing headroom")
	}

	withShuffle, err := Compile(forest, Options{Slots: 1024, PlanShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	out, m, b = classify(withShuffle)
	shuffled, cb, err := ShuffleResult(b, &m.Meta, out, 0, 7)
	if err != nil {
		t.Fatalf("PlanShuffle staging: ShuffleResult: %v", err)
	}
	slots, err := he.Reveal(b, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeShuffled(cb, len(forest.Labels), slots)
	if err != nil {
		t.Fatal(err)
	}
	if res.Votes[4] != 1 {
		t.Errorf("shuffled votes %v, want one vote for L4", res.Votes)
	}
}
