package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"copse/internal/he"
	"copse/internal/he/heclear"
	"copse/internal/model"
	"copse/internal/synth"
)

func compileFigure1(t *testing.T) *Compiled {
	t.Helper()
	c, err := Compile(model.Figure1(), Options{Slots: 64})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestCompileFigure1Meta(t *testing.T) {
	c := compileFigure1(t)
	m := c.Meta
	if m.K != 3 || m.Q != 6 || m.QPad != 8 || m.B != 5 || m.BPad != 8 || m.D != 3 || m.NumLeaves != 6 {
		t.Errorf("meta = %+v", m)
	}
	// Threshold vector grouped by feature: x-group {d1=2, d3=5, S},
	// y-group {d0=3, d2=1, d4=7} (§4.2.1, Figure 3a).
	wantThresholds := []uint64{2, 5, 0, 3, 1, 7}
	var got []uint64
	for j := range wantThresholds {
		var v uint64
		for i := 0; i < m.Precision; i++ {
			v = v<<1 | c.ThresholdBits[i][j]
		}
		got = append(got, v)
	}
	for j := range wantThresholds {
		if got[j] != wantThresholds[j] {
			t.Errorf("threshold col %d = %d, want %d", j, got[j], wantThresholds[j])
		}
	}
	// Reshuffle: branch i ↔ its column (d0→3, d1→0, d2→4, d3→1, d4→5).
	wantCols := []int{3, 0, 4, 1, 5}
	for i, col := range wantCols {
		if c.Reshuffle.At(i, col) != 1 {
			t.Errorf("reshuffle[%d][%d] = 0, want 1", i, col)
		}
	}
	if len(c.Levels) != 3 || len(c.Masks) != 3 {
		t.Fatalf("levels/masks: %d/%d", len(c.Levels), len(c.Masks))
	}
	// Level 1 (paper Figure 4a): L0,L2,L4 under the false branch
	// (mask 1), L1,L3,L5 under the true branch (mask 0).
	wantMask1 := []uint64{1, 0, 1, 0, 1, 0}
	for i, w := range wantMask1 {
		if c.Masks[0][i] != w {
			t.Errorf("level-1 mask[%d] = %d, want %d", i, c.Masks[0][i], w)
		}
	}
	// Level 1 selects d2 for L0/L1, d3 for L2/L3, d4 for L4/L5.
	wantBranch1 := []int{2, 2, 3, 3, 4, 4}
	for leaf, br := range wantBranch1 {
		if c.Levels[0].At(leaf, br) != 1 {
			t.Errorf("level-1 matrix row %d: branch %d not selected", leaf, br)
		}
	}
	// Level 2 treats d4 as its own replacement (paper: "d4 is treated as
	// part of level 1 and 2").
	wantBranch2 := []int{1, 1, 1, 1, 4, 4}
	for leaf, br := range wantBranch2 {
		if c.Levels[1].At(leaf, br) != 1 {
			t.Errorf("level-2 matrix row %d: branch %d not selected", leaf, br)
		}
	}
}

// classifySecure runs the full pipeline for one query on the clear
// backend and returns the per-tree labels.
func classifySecure(t *testing.T, e *Engine, m *ModelOperands, feats []uint64, encryptFeats bool) []int {
	t.Helper()
	q, err := PrepareQuery(e.Backend, &m.Meta, feats, encryptFeats)
	if err != nil {
		t.Fatalf("PrepareQuery: %v", err)
	}
	out, _, err := e.Classify(m, q)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	slots, err := he.Reveal(e.Backend, out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResult(&m.Meta, slots)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	return res.PerTree
}

// TestFigure1Walkthrough reproduces the paper's §3 example: the input
// (x, y) = (0, 5) must classify as L4.
func TestFigure1Walkthrough(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	got := classifySecure(t, e, m, []uint64{0, 5}, true)
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("secure Classify(0,5) = %v, want [4]", got)
	}
}

// TestPipelineMatchesDirectEvaluation is the headline invariant: for
// every party configuration, the vectorized pipeline agrees with the
// plaintext tree walk on random forests and random inputs.
func TestPipelineMatchesDirectEvaluation(t *testing.T) {
	b := heclear.New(256, 65537)
	f := func(seed uint64, cfg uint8) bool {
		r := rand.New(rand.NewPCG(seed, 0xc0de))
		spec := synth.ForestSpec{
			NumFeatures:     1 + r.IntN(4),
			NumLabels:       2 + r.IntN(4),
			Precision:       1 + r.IntN(8),
			MaxDepth:        1 + r.IntN(4),
			Seed:            seed,
			BranchesPerTree: nil,
		}
		trees := 1 + r.IntN(3)
		capacity := 1<<uint(spec.MaxDepth) - 1
		for i := 0; i < trees; i++ {
			spec.BranchesPerTree = append(spec.BranchesPerTree, min(spec.MaxDepth+r.IntN(6), capacity))
		}
		forest, err := synth.Generate(spec)
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		c, err := Compile(forest, Options{Slots: b.Slots()})
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		encModel := cfg&1 != 0
		encFeats := cfg&2 != 0
		m, err := Prepare(b, c, encModel)
		if err != nil {
			t.Logf("prepare: %v", err)
			return false
		}
		e := &Engine{Backend: b, Workers: 1 + int(cfg%4), SkipZeroDiagonals: cfg&4 != 0, ReuseRotations: cfg&8 != 0}
		for trial := 0; trial < 4; trial++ {
			feats := make([]uint64, forest.NumFeatures)
			for i := range feats {
				feats[i] = r.Uint64N(1 << uint(forest.Precision))
			}
			want := forest.Classify(feats)
			got := classifySecure(t, e, m, feats, encFeats)
			for i := range want {
				if got[i] != want[i] {
					t.Logf("seed=%d cfg=%d feats=%v tree %d: got %d want %d", seed, cfg, feats, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCompilerInvariants checks the structural properties of §4.2 on
// random forests.
func TestCompilerInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0xfeed))
		spec := synth.ForestSpec{
			NumFeatures: 1 + r.IntN(5),
			NumLabels:   2 + r.IntN(3),
			Precision:   4,
			MaxDepth:    1 + r.IntN(5),
			Seed:        seed,
		}
		capacity := 1<<uint(spec.MaxDepth) - 1
		for i := 0; i < 1+r.IntN(3); i++ {
			spec.BranchesPerTree = append(spec.BranchesPerTree, min(spec.MaxDepth+r.IntN(8), capacity))
		}
		forest, err := synth.Generate(spec)
		if err != nil {
			return false
		}
		c, err := Compile(forest, Options{Slots: 1024})
		if err != nil {
			return false
		}
		// Reshuffle: exactly one 1 per row, at most one per column
		// (§4.2.2), and exactly QPad - B empty columns.
		colUsed := make([]int, c.Meta.QPad)
		for i := 0; i < c.Meta.B; i++ {
			rowSum := 0
			for j := 0; j < c.Meta.QPad; j++ {
				v := int(c.Reshuffle.At(i, j))
				rowSum += v
				colUsed[j] += v
			}
			if rowSum != 1 {
				return false
			}
		}
		empty := 0
		for _, u := range colUsed {
			if u > 1 {
				return false
			}
			if u == 0 {
				empty++
			}
		}
		if empty != c.Meta.QPad-c.Meta.B {
			return false
		}
		// Level matrices: each row has exactly one 1 (§4.2.3); every
		// branch appears in at least one level.
		branchSeen := make([]bool, c.Meta.B)
		for _, lm := range c.Levels {
			for i := 0; i < c.Meta.NumLeaves; i++ {
				rowSum := 0
				for j := 0; j < c.Meta.B; j++ {
					if lm.At(i, j) == 1 {
						rowSum++
						branchSeen[j] = true
					}
				}
				if rowSum != 1 {
					return false
				}
			}
		}
		for _, seen := range branchSeen {
			if !seen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReuseRotationsAblation: hoisting rotations must not change results
// and must reduce the rotation count for multi-level models. The
// ablation only applies to the naive kernel (BSGS-staged models always
// share the baby-step rotations), so compile without BSGS.
func TestReuseRotationsAblation(t *testing.T) {
	b := heclear.New(64, 65537)
	c, err := Compile(model.Figure1(), Options{Slots: 64, NoBSGS: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	feats := []uint64{6, 2}

	base := &Engine{Backend: b}
	b.ResetCounts()
	want := classifySecure(t, base, m, feats, true)
	baseRot := b.Counts().Rotate

	reuse := &Engine{Backend: b, ReuseRotations: true}
	b.ResetCounts()
	got := classifySecure(t, reuse, m, feats, true)
	reuseRot := b.Counts().Rotate

	if got[0] != want[0] {
		t.Errorf("results differ: %v vs %v", got, want)
	}
	if reuseRot >= baseRot {
		t.Errorf("rotation reuse did not help: %d vs %d rotations", reuseRot, baseRot)
	}
}

// TestPlaintextModelCheaper: the M=S configuration (plaintext model)
// must use strictly fewer ciphertext multiplications than M=D — the
// mechanism behind Figure 9's speedup.
func TestPlaintextModelCheaper(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	feats := []uint64{3, 9}
	direct := model.Figure1().Classify(feats)

	encM, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	b.ResetCounts()
	e := &Engine{Backend: b}
	gotEnc := classifySecure(t, e, encM, feats, true)
	encOps := b.Counts()

	plainM, err := Prepare(b, c, false)
	if err != nil {
		t.Fatal(err)
	}
	b.ResetCounts()
	ep := &Engine{Backend: b, SkipZeroDiagonals: true}
	gotPlain := classifySecure(t, ep, plainM, feats, true)
	plainOps := b.Counts()

	if gotEnc[0] != direct[0] || gotPlain[0] != direct[0] {
		t.Fatalf("results: enc=%v plain=%v want %v", gotEnc, gotPlain, direct)
	}
	if plainOps.Mul >= encOps.Mul {
		t.Errorf("plain model should need fewer ct-ct muls: %d vs %d", plainOps.Mul, encOps.Mul)
	}
	if plainOps.MaxDepth >= encOps.MaxDepth {
		t.Errorf("plain model should have lower depth: %d vs %d", plainOps.MaxDepth, encOps.MaxDepth)
	}
}

// TestDepthMatchesEstimate: the compiler's depth estimates must bound
// the measured multiplicative depth (they drive parameter selection).
func TestDepthMatchesEstimate(t *testing.T) {
	b := heclear.New(256, 65537)
	for _, mb := range synth.Microbenchmarks()[:3] {
		forest, err := synth.Generate(mb.Spec)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(forest, Options{Slots: b.Slots()})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Prepare(b, c, true)
		if err != nil {
			t.Fatal(err)
		}
		b.ResetCounts()
		e := &Engine{Backend: b}
		classifySecure(t, e, m, make([]uint64, forest.NumFeatures), true)
		measured := int(b.Counts().MaxDepth)
		if measured > c.Meta.CtDepthCipherModel {
			t.Errorf("%s: measured depth %d exceeds estimate %d", mb.Name, measured, c.Meta.CtDepthCipherModel)
		}
	}
}

func TestPadMultiplicityTo(t *testing.T) {
	b := heclear.New(64, 65537)
	forest := model.Figure1()
	c, err := Compile(forest, Options{Slots: 64, PadMultiplicityTo: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta.K != 5 || c.Meta.Q != 10 || c.Meta.QPad != 16 {
		t.Errorf("padded meta: K=%d Q=%d QPad=%d", c.Meta.K, c.Meta.Q, c.Meta.QPad)
	}
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	got := classifySecure(t, e, m, []uint64{0, 5}, true)
	if got[0] != 4 {
		t.Errorf("padded model Classify(0,5) = %v, want L4", got)
	}
	if _, err := Compile(forest, Options{Slots: 64, PadMultiplicityTo: 2}); err == nil {
		t.Error("bound below true K accepted")
	}
}

func TestTraceStages(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	m, err := Prepare(b, c, true)
	if err != nil {
		t.Fatal(err)
	}
	q, err := PrepareQuery(b, &m.Meta, []uint64{1, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	_, trace, err := e.Classify(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if trace.CompareOps.Mul == 0 {
		t.Error("comparison recorded no multiplications")
	}
	if trace.ReshuffleOps.Rotate == 0 {
		t.Error("reshuffle recorded no rotations")
	}
	if trace.LevelOps.Mul == 0 {
		t.Error("level processing recorded no multiplications")
	}
	if trace.AccumulateOps.Mul == 0 {
		t.Error("accumulation recorded no multiplications")
	}
	if trace.Total < trace.Compare {
		t.Error("total below compare time")
	}
}

func TestCompileErrors(t *testing.T) {
	leafOnly := &model.Forest{
		Labels:      []string{"a", "b"},
		NumFeatures: 1,
		Precision:   4,
		Trees:       []*model.Tree{{Root: &model.Node{Leaf: true, Label: 0}}},
	}
	if _, err := Compile(leafOnly, Options{}); err == nil {
		t.Error("bare-leaf tree accepted")
	}
	big, err := synth.Generate(synth.ForestSpec{
		NumFeatures: 2, NumLabels: 2, Precision: 4, MaxDepth: 6,
		BranchesPerTree: []int{40, 40}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(big, Options{Slots: 16}); err == nil {
		t.Error("model larger than slot count accepted")
	}
}

func TestDecodeResultErrors(t *testing.T) {
	c := compileFigure1(t)
	meta := &c.Meta
	if _, err := DecodeResult(meta, []uint64{1}); err == nil {
		t.Error("short slot vector accepted")
	}
	bad := make([]uint64, meta.NumLeaves)
	bad[0] = 2
	if _, err := DecodeResult(meta, bad); err == nil {
		t.Error("non-bit slot accepted")
	}
	none := make([]uint64, meta.NumLeaves)
	if _, err := DecodeResult(meta, none); err == nil {
		t.Error("no-leaf-selected accepted")
	}
	two := make([]uint64, meta.NumLeaves)
	two[0], two[1] = 1, 1
	if _, err := DecodeResult(meta, two); err == nil {
		t.Error("two-leaves-selected accepted")
	}
	good := make([]uint64, meta.NumLeaves)
	good[3] = 1
	res, err := DecodeResult(meta, good)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTree[0] != 3 || res.Plurality() != 3 {
		t.Errorf("decode: %+v", res)
	}
}

func TestPrepareQueryErrors(t *testing.T) {
	b := heclear.New(64, 65537)
	c := compileFigure1(t)
	if _, err := PrepareQuery(b, &c.Meta, []uint64{1}, true); err == nil {
		t.Error("wrong feature count accepted")
	}
	if _, err := PrepareQuery(b, &c.Meta, []uint64{1, 99}, true); err == nil {
		t.Error("out-of-precision feature accepted")
	}
}

func TestPrepareSlotMismatch(t *testing.T) {
	b := heclear.New(64, 65537)
	c, err := Compile(model.Figure1(), Options{Slots: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prepare(b, c, true); err == nil {
		t.Error("slot mismatch accepted")
	}
}
