package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"copse/internal/he"
	"copse/internal/matrix"
)

// KernelFunc is the signature of a generated specialized kernel: the
// body of one artifact's op program, unrolled to straight-line Go by
// `copse-compile -gen` and linked in via RegisterKernel.
type KernelFunc func(*KernelCtx) error

// KernelCtx is the execution context the op-program interpreter and the
// generated kernels share. Both route every homomorphic operation
// through the same methods below, so a generated kernel is
// bit-identical to the interpreter by construction — it is the same op
// sequence with the dispatch loop compiled away.
//
// Methods latch the first error in Err and become no-ops after it, so
// generated code stays straight-line with a single `return k.Err`.
type KernelCtx struct {
	// R is the SSA register file; generated kernels address it through
	// the op methods only.
	R []he.Operand
	// Err is the first failure; once set, all op methods are no-ops.
	Err error

	b       he.Backend
	m       *ModelOperands
	q       *Query
	p       *Program
	trace   *Trace
	ctx     context.Context
	workers int

	counts interface{ Counts() he.OpCounts }
	base   he.OpCounts
	mark   time.Time
	cur    int
}

// kernelRuns counts generated-kernel executions process-wide, letting
// harnesses assert that a linked kernel actually ran (the registry
// dispatch is otherwise invisible when outputs are bit-identical).
var kernelRuns atomic.Int64

// KernelRuns returns the number of generated-kernel executions so far
// in this process.
func KernelRuns() int64 { return kernelRuns.Load() }

// runProgram executes the model's specialized op program — via its
// linked generated kernel when one is registered, interpreting the op
// list otherwise — and fills a trace with the same stage windows as the
// generic path.
func (e *Engine) runProgram(ctx context.Context, m *ModelOperands, q *Query, p *Program) (he.Operand, *Trace, error) {
	trace := &Trace{Noise: StageNoise{Query: -1, Decisions: -1, BranchVec: -1, LevelResult: -1, Result: -1}}
	start := time.Now()
	b := he.WithCounts(e.Backend)
	regs := p.scratch.Get().(*[]he.Operand)
	defer func() {
		clear(*regs)
		p.scratch.Put(regs)
	}()
	k := &KernelCtx{
		R:       *regs,
		b:       b,
		m:       m,
		q:       q,
		p:       p,
		trace:   trace,
		ctx:     ctx,
		workers: max(e.Workers, 1),
		counts:  b,
		base:    b.Counts(),
		mark:    start,
		cur:     stCompare,
	}
	var err error
	if p.kernel != nil {
		trace.Executor = "kernel"
		kernelRuns.Add(1)
		err = p.kernel(k)
	} else {
		trace.Executor = "program"
		err = p.interpret(k)
	}
	if err == nil {
		err = k.Err
	}
	if err != nil {
		return he.Operand{}, nil, fmt.Errorf("core: specialized executor: %w", err)
	}
	if res := k.R[p.result]; res.Ct == nil && res.Pt == nil {
		// A registered kernel can pass the structural fingerprint yet
		// never write the result register (e.g. an empty stub); fail
		// here rather than hand an empty operand downstream.
		return he.Operand{}, nil, fmt.Errorf("core: specialized executor (%s): result register not written", trace.Executor)
	}
	k.Stage(stDone)
	k.StageLimbs(0)
	trace.Total = time.Since(start)
	return k.R[p.result], trace, nil
}

// interpret walks the block list, running multi-segment blocks on the
// worker pool and marking stage transitions exactly where a generated
// kernel would.
func (p *Program) interpret(k *KernelCtx) error {
	k.StageLimbs(p.stageLimbs[stCompare])
	for bi := range p.blocks {
		blk := &p.blocks[bi]
		if blk.Stage != k.cur {
			k.Stage(blk.Stage)
			k.StageLimbs(p.stageLimbs[blk.Stage])
		}
		if len(blk.Segs) == 1 || k.workers <= 1 {
			for _, seg := range blk.Segs {
				k.runSeg(seg)
				if k.Err != nil {
					return k.Err
				}
			}
			continue
		}
		segs := blk.Segs
		err := matrix.ParallelFor(len(segs), min(k.workers, len(segs)), func(i int) error {
			local := *k // private error latch; R is shared (disjoint SSA writes)
			local.Err = nil
			local.runSeg(segs[i])
			return local.Err
		})
		if err != nil {
			k.Err = err
			return err
		}
	}
	return k.Err
}

func (k *KernelCtx) runSeg(seg [2]int) {
	for i := seg[0]; i < seg[1]; i++ {
		op := k.p.ops[i]
		switch op.Code {
		case opQuery:
			k.Query(op.Dst, op.Imm)
		case opThresh:
			k.Thresh(op.Dst, op.Imm)
		case opMask:
			k.Mask(op.Dst, op.Imm)
		case opConst:
			k.Const(op.Dst, op.Imm)
		case opAdd:
			k.Add(op.Dst, op.A, op.B)
		case opSub:
			k.Sub(op.Dst, op.A, op.B)
		case opMul:
			k.Mul(op.Dst, op.A, op.B)
		case opMulLazy:
			k.MulLazy(op.Dst, op.A, op.B)
		case opMulDiag:
			k.MulDiag(op.Dst, op.A, op.Imm, op.Imm2)
		case opRelin:
			k.Relin(op.Dst, op.A)
		case opNeg:
			k.Neg(op.Dst, op.A)
		case opRot:
			k.Rot(op.Dst, op.A, op.Imm)
		case opHoist:
			k.Hoist(op.Dst, op.A, k.p.hoists[op.Imm]...)
		case opDrop:
			k.Drop(op.Dst, op.A, op.Imm)
		default:
			k.Err = fmt.Errorf("core: unknown op code %d", op.Code)
		}
		if k.Err != nil {
			return
		}
	}
}

// Par runs segment closures concurrently on the engine's worker pool,
// each with a private error latch. Segments write disjoint registers
// (SSA), so the result is deterministic for any worker count; generated
// kernels call this where the op program has a multi-segment block.
func (k *KernelCtx) Par(segs ...func(*KernelCtx)) {
	if k.Err != nil {
		return
	}
	if k.workers <= 1 || len(segs) <= 1 {
		for _, fn := range segs {
			fn(k)
			if k.Err != nil {
				return
			}
		}
		return
	}
	err := matrix.ParallelFor(len(segs), min(k.workers, len(segs)), func(i int) error {
		local := *k
		local.Err = nil
		segs[i](&local)
		return local.Err
	})
	if err != nil {
		k.Err = err
	}
}

// Stage closes the current pipeline stage's trace window (duration, op
// counts, carrier limb count) and opens the next. Generated kernels call
// it at every block-stage transition; the final stDone close comes
// from runProgram.
func (k *KernelCtx) Stage(s int) {
	now := time.Now()
	if k.trace != nil {
		counts := k.counts.Counts()
		delta := counts.Minus(k.base)
		dur := now.Sub(k.mark)
		switch k.cur {
		case stCompare:
			k.trace.Compare = dur
			k.trace.CompareOps = delta
			k.trace.Limbs.Query = he.OperandLimbs(k.b, k.R[k.p.regQuery])
			k.trace.Limbs.Decisions = he.OperandLimbs(k.b, k.R[k.p.regDecisions])
		case stReshuffle:
			k.trace.Reshuffle = dur
			k.trace.ReshuffleOps = delta
			k.trace.Limbs.BranchVec = he.OperandLimbs(k.b, k.R[k.p.regBranchVec])
		case stLevels:
			k.trace.Levels = dur
			k.trace.LevelOps = delta
			k.trace.Limbs.LevelResult = he.OperandLimbs(k.b, k.R[k.p.regLevelResult])
		case stAccumulate:
			k.trace.Accumulate = dur
			k.trace.AccumulateOps = delta
			k.trace.Limbs.Result = he.OperandLimbs(k.b, k.R[k.p.result])
		}
		k.base = counts
	}
	k.mark = now
	k.cur = s
	if k.Err == nil && k.ctx != nil {
		if err := k.ctx.Err(); err != nil {
			k.Err = err
		}
	}
}

// StageLimbs forwards the entered stage's exact carrier limb count to
// the backend as an advisory ring-dispatch hint (he.StageLimbHinter);
// limbs ≤ 0 clears the hint. Generated kernels call it alongside every
// Stage transition with the limb count baked in from the artifact's
// level schedule. The hint only short-circuits the ring layer's
// pool/tile dispatch decision for ops that match it — a stale or wrong
// hint can never change results — so it needs no error gating.
func (k *KernelCtx) StageLimbs(limbs int) {
	he.HintStageLimbs(k.b, limbs)
}

// Query loads query bit plane j (a register alias; the scheduled level
// drop is a separate op).
func (k *KernelCtx) Query(dst, j int) {
	if k.Err != nil {
		return
	}
	k.R[dst] = k.q.Bits[j]
}

// Thresh loads model threshold plane j.
func (k *KernelCtx) Thresh(dst, j int) {
	if k.Err != nil {
		return
	}
	k.R[dst] = k.m.Thresholds[j]
}

// Mask loads level mask l.
func (k *KernelCtx) Mask(dst, l int) {
	if k.Err != nil {
		return
	}
	k.R[dst] = k.m.Masks[l]
}

// Const loads bind-time plaintext constant c.
func (k *KernelCtx) Const(dst, c int) {
	if k.Err != nil {
		return
	}
	k.R[dst] = k.p.bound[c]
}

// Add stores R[a] + R[b].
func (k *KernelCtx) Add(dst, a, b int) {
	if k.Err != nil {
		return
	}
	r, err := he.Add(k.b, k.R[a], k.R[b])
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = r
}

// Sub stores R[a] − R[b]; both sides must be ciphertexts (the builder
// only emits Sub on the all-cipher paths).
func (k *KernelCtx) Sub(dst, a, b int) {
	if k.Err != nil {
		return
	}
	x, y := k.R[a], k.R[b]
	if !x.IsCipher() || !y.IsCipher() {
		k.Err = fmt.Errorf("core: specialized Sub on plaintext operand")
		return
	}
	ct, err := k.b.Sub(x.Ct, y.Ct)
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = he.Cipher(ct)
}

// Mul stores R[a] · R[b].
func (k *KernelCtx) Mul(dst, a, b int) {
	if k.Err != nil {
		return
	}
	r, err := he.Mul(k.b, k.R[a], k.R[b])
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = r
}

// MulLazy stores the unrelinearized product R[a] ⊗ R[b].
func (k *KernelCtx) MulLazy(dst, a, b int) {
	if k.Err != nil {
		return
	}
	r, err := he.MulLazy(k.b, k.R[a], k.R[b])
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = r
}

// MulDiag stores the lazy product of a pre-staged matrix diagonal with
// R[vec]: mat −1 selects the reshuffle matrix, l ≥ 0 the level-l matrix;
// diag indexes the pre-rotated BSGS diagonal.
func (k *KernelCtx) MulDiag(dst, vec, mat, diag int) {
	if k.Err != nil {
		return
	}
	var d he.Operand
	if mat < 0 {
		d = k.m.Reshuffle.BsgsOps[diag]
	} else {
		d = k.m.Levels[mat].BsgsOps[diag]
	}
	r, err := he.MulLazy(k.b, d, k.R[vec])
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = r
}

// Relin finalizes a lazily accumulated product.
func (k *KernelCtx) Relin(dst, a int) {
	if k.Err != nil {
		return
	}
	r, err := he.Relinearize(k.b, k.R[a])
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = r
}

// Neg stores −R[a] (ciphertext only; the builder folds plaintext
// negation into bind-time constants).
func (k *KernelCtx) Neg(dst, a int) {
	if k.Err != nil {
		return
	}
	x := k.R[a]
	if !x.IsCipher() {
		k.Err = fmt.Errorf("core: specialized Neg on plaintext operand")
		return
	}
	ct, err := k.b.Neg(x.Ct)
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = he.Cipher(ct)
}

// Rot stores R[a] rotated left by step slots.
func (k *KernelCtx) Rot(dst, a, step int) {
	if k.Err != nil {
		return
	}
	r, err := he.Rotate(k.b, k.R[a], step)
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = r
}

// Hoist stores the hoisted rotations of R[a] by each step into
// R[dst], R[dst+1], … (one register per step, in order).
func (k *KernelCtx) Hoist(dst, a int, steps ...int) {
	if k.Err != nil {
		return
	}
	outs, err := he.RotateHoisted(k.b, k.R[a], steps)
	if err != nil {
		k.Err = err
		return
	}
	copy(k.R[dst:dst+len(outs)], outs)
}

// Drop switches R[a] down to the scheduled level.
func (k *KernelCtx) Drop(dst, a, level int) {
	if k.Err != nil {
		return
	}
	r, err := he.DropToLevel(k.b, k.R[a], level)
	if err != nil {
		k.Err = err
		return
	}
	k.R[dst] = r
}
