// Package baseline reimplements the paper's comparison system: the
// polynomial-based secure decision-forest evaluation of Aloufi et al.
// [1] (paper §2.3.1, §8.2). Each tree is a boolean polynomial over the
// decision results: every leaf contributes a term multiplying the
// decisions (or their complements) along its root path, times the bits
// of its label; label bits are packed into SIMD slots so one operation
// handles all bits, but — crucially — every decision node is evaluated
// by its own comparison. Comparison cost is therefore linear in the
// branch count b, where COPSE's is constant (its packed comparison
// covers all branches at once). Both systems share the same SecComp
// circuit and the same FHE backend, exactly like the paper's evaluation
// methodology.
package baseline

import (
	"fmt"

	"copse/internal/bits"
	"copse/internal/he"
	"copse/internal/matrix"
	"copse/internal/model"
	"copse/internal/seccomp"
)

// Meta carries the public parameters of a prepared baseline model.
type Meta struct {
	NumFeatures int
	Precision   int
	NumTrees    int
	NumLabels   int
	LabelBits   int // slots used per tree result
	Branches    int
}

// branchOps is one decision node: the bit planes of its threshold
// (broadcast across slots) and its feature index.
type branchOps struct {
	feature int
	planes  []he.Operand
}

// leafOps is one polynomial term: the root path (branch index + side)
// and the label-bit vector.
type leafOps struct {
	path      []pathEdge
	labelBits he.Operand
	label     int
}

type pathEdge struct {
	branch int
	right  bool
}

// treeOps is one tree's polynomial.
type treeOps struct {
	branches []int // indices into Model.branches, preorder
	leaves   []leafOps
}

// Model is a forest prepared for baseline evaluation.
type Model struct {
	Meta      Meta
	Encrypted bool
	branches  []branchOps
	trees     []treeOps
}

// Query carries the data owner's features: p bit planes per feature,
// each broadcast across slots (the baseline packs label bits, not
// decisions, so features are scalar ciphertexts).
type Query struct {
	features [][]he.Operand
}

// broadcast fills all slots with the bits of v's plane i.
func broadcastPlanes(b he.Backend, v uint64, p int, encrypt bool) ([]he.Operand, error) {
	planes, err := bits.Transpose([]uint64{v}, p)
	if err != nil {
		return nil, err
	}
	ops := make([]he.Operand, p)
	for i := range planes {
		full := make([]uint64, b.Slots())
		for j := range full {
			full[j] = planes[i][0]
		}
		ops[i], err = makeOperand(b, full, encrypt)
		if err != nil {
			return nil, err
		}
	}
	return ops, nil
}

func makeOperand(b he.Backend, vals []uint64, encrypt bool) (he.Operand, error) {
	if encrypt {
		ct, err := b.Encrypt(vals)
		if err != nil {
			return he.Operand{}, err
		}
		return he.Cipher(ct), nil
	}
	return he.NewPlain(b, vals)
}

// Prepare loads a forest for baseline evaluation. With encrypt=true the
// thresholds and label bits are encrypted (model hidden from the
// server); otherwise they are plaintexts.
func Prepare(b he.Backend, f *model.Forest, encrypt bool) (*Model, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	labelBits := max(log2Ceil(len(f.Labels)), 1)
	m := &Model{
		Meta: Meta{
			NumFeatures: f.NumFeatures,
			Precision:   f.Precision,
			NumTrees:    len(f.Trees),
			NumLabels:   len(f.Labels),
			LabelBits:   labelBits,
			Branches:    f.Branches(),
		},
		Encrypted: encrypt,
	}
	for _, tr := range f.Trees {
		var t treeOps
		var walk func(n *model.Node, path []pathEdge) error
		walk = func(n *model.Node, path []pathEdge) error {
			if n.Leaf {
				lb := make([]uint64, b.Slots())
				for j := 0; j < labelBits; j++ {
					lb[j] = uint64(n.Label>>uint(j)) & 1
				}
				op, err := makeOperand(b, lb, encrypt)
				if err != nil {
					return err
				}
				t.leaves = append(t.leaves, leafOps{
					path:      append([]pathEdge(nil), path...),
					labelBits: op,
					label:     n.Label,
				})
				return nil
			}
			planes, err := broadcastPlanes(b, n.Threshold, f.Precision, encrypt)
			if err != nil {
				return err
			}
			idx := len(m.branches)
			m.branches = append(m.branches, branchOps{feature: n.Feature, planes: planes})
			t.branches = append(t.branches, idx)
			if err := walk(n.Left, append(path, pathEdge{idx, false})); err != nil {
				return err
			}
			return walk(n.Right, append(path, pathEdge{idx, true}))
		}
		if tr.Root.Leaf {
			return nil, fmt.Errorf("baseline: bare-leaf tree unsupported")
		}
		if err := walk(tr.Root, nil); err != nil {
			return nil, err
		}
		m.trees = append(m.trees, t)
	}
	return m, nil
}

// PrepareQuery encrypts (or encodes) a quantized feature vector.
func PrepareQuery(b he.Backend, meta *Meta, features []uint64, encrypt bool) (*Query, error) {
	if len(features) != meta.NumFeatures {
		return nil, fmt.Errorf("baseline: got %d features, model wants %d", len(features), meta.NumFeatures)
	}
	q := &Query{}
	limit := uint64(1) << uint(meta.Precision)
	for _, v := range features {
		if v >= limit {
			return nil, fmt.Errorf("baseline: feature value %d exceeds %d-bit precision", v, meta.Precision)
		}
		planes, err := broadcastPlanes(b, v, meta.Precision, encrypt)
		if err != nil {
			return nil, err
		}
		q.features = append(q.features, planes)
	}
	return q, nil
}

// Engine evaluates baseline models. Workers parallelizes across branch
// comparisons and leaf terms (the TBB-style parallelism of the paper's
// reimplementation); 1 means fully sequential.
type Engine struct {
	Backend he.Backend
	Workers int
}

// Classify evaluates every tree's polynomial, returning one operand per
// tree whose low LabelBits slots hold the chosen label's bits.
func (e *Engine) Classify(m *Model, q *Query) ([]he.Operand, error) {
	if len(q.features) != m.Meta.NumFeatures {
		return nil, fmt.Errorf("baseline: query features %d, model wants %d", len(q.features), m.Meta.NumFeatures)
	}
	workers := max(e.Workers, 1)

	// Every decision node gets its own comparison — the baseline's
	// sequential bottleneck (parallelized across branches only by
	// multithreading, never by packing).
	decisions := make([]he.Operand, len(m.branches))
	notDecisions := make([]he.Operand, len(m.branches))
	err := matrix.ParallelFor(len(m.branches), workers, func(i int) error {
		br := m.branches[i]
		d, err := seccomp.CompareGT(e.Backend, q.features[br.feature], br.planes)
		if err != nil {
			return err
		}
		decisions[i] = d
		notDecisions[i], err = he.Not(e.Backend, d)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: comparisons: %w", err)
	}

	out := make([]he.Operand, len(m.trees))
	for ti, tree := range m.trees {
		terms := make([]he.Operand, len(tree.leaves))
		err := matrix.ParallelFor(len(tree.leaves), workers, func(li int) error {
			leaf := tree.leaves[li]
			ops := make([]he.Operand, 0, len(leaf.path)+1)
			for _, edge := range leaf.path {
				if edge.right {
					ops = append(ops, decisions[edge.branch])
				} else {
					ops = append(ops, notDecisions[edge.branch])
				}
			}
			ops = append(ops, leaf.labelBits)
			// Pairwise products: depth logarithmic in the polynomial
			// order, as in Aloufi et al.
			term, err := he.MulAll(e.Backend, ops)
			if err != nil {
				return err
			}
			terms[li] = term
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("baseline: tree %d terms: %w", ti, err)
		}
		acc := terms[0]
		for _, term := range terms[1:] {
			acc, err = he.Add(e.Backend, acc, term)
			if err != nil {
				return nil, err
			}
		}
		out[ti] = acc
	}
	return out, nil
}

// DecodeResult turns decrypted per-tree slot vectors into label indices.
func DecodeResult(meta *Meta, perTree [][]uint64) ([]int, error) {
	if len(perTree) != meta.NumTrees {
		return nil, fmt.Errorf("baseline: %d tree results, want %d", len(perTree), meta.NumTrees)
	}
	out := make([]int, len(perTree))
	for ti, slots := range perTree {
		label := 0
		for j := 0; j < meta.LabelBits; j++ {
			bit := slots[j]
			if bit > 1 {
				return nil, fmt.Errorf("baseline: tree %d slot %d holds %d, not a bit", ti, j, bit)
			}
			label |= int(bit) << uint(j)
		}
		if label >= meta.NumLabels {
			return nil, fmt.Errorf("baseline: tree %d decoded label %d out of range", ti, label)
		}
		out[ti] = label
	}
	return out, nil
}

func log2Ceil(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}
