package baseline

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"copse/internal/he"
	"copse/internal/he/heclear"
	"copse/internal/model"
	"copse/internal/synth"
)

func classifyBaseline(t *testing.T, e *Engine, m *Model, feats []uint64, encFeats bool) []int {
	t.Helper()
	q, err := PrepareQuery(e.Backend, &m.Meta, feats, encFeats)
	if err != nil {
		t.Fatalf("PrepareQuery: %v", err)
	}
	outs, err := e.Classify(m, q)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	var perTree [][]uint64
	for _, op := range outs {
		slots, err := he.Reveal(e.Backend, op)
		if err != nil {
			t.Fatal(err)
		}
		perTree = append(perTree, slots)
	}
	got, err := DecodeResult(&m.Meta, perTree)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	return got
}

func TestBaselineFigure1(t *testing.T) {
	b := heclear.New(64, 65537)
	forest := model.Figure1()
	m, err := Prepare(b, forest, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Backend: b}
	for x := uint64(0); x < 16; x += 3 {
		for y := uint64(0); y < 16; y += 3 {
			want := forest.Classify([]uint64{x, y})
			got := classifyBaseline(t, e, m, []uint64{x, y}, true)
			if got[0] != want[0] {
				t.Errorf("(%d,%d): got L%d want L%d", x, y, got[0], want[0])
			}
		}
	}
}

// TestBaselineMatchesDirect is the baseline's correctness property test
// over random forests and all party configurations.
func TestBaselineMatchesDirect(t *testing.T) {
	b := heclear.New(128, 65537)
	f := func(seed uint64, cfg uint8) bool {
		r := rand.New(rand.NewPCG(seed, 0xba5e))
		spec := synth.ForestSpec{
			NumFeatures: 1 + r.IntN(3),
			NumLabels:   2 + r.IntN(4),
			Precision:   1 + r.IntN(6),
			MaxDepth:    1 + r.IntN(4),
			Seed:        seed,
		}
		capacity := 1<<uint(spec.MaxDepth) - 1
		for i := 0; i < 1+r.IntN(2); i++ {
			spec.BranchesPerTree = append(spec.BranchesPerTree, min(spec.MaxDepth+r.IntN(5), capacity))
		}
		forest, err := synth.Generate(spec)
		if err != nil {
			return false
		}
		m, err := Prepare(b, forest, cfg&1 != 0)
		if err != nil {
			return false
		}
		e := &Engine{Backend: b, Workers: 1 + int(cfg%4)}
		for trial := 0; trial < 3; trial++ {
			feats := make([]uint64, forest.NumFeatures)
			for i := range feats {
				feats[i] = r.Uint64N(1 << uint(forest.Precision))
			}
			want := forest.Classify(feats)
			got := classifyBaseline(t, e, m, feats, cfg&2 != 0)
			for i := range want {
				if got[i] != want[i] {
					t.Logf("seed=%d cfg=%d feats=%v tree %d: got %d want %d", seed, cfg, feats, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestBaselineComparisonCostLinearInBranches verifies the scaling
// contrast the paper exploits: baseline ct-ct multiplications grow
// linearly with branch count (COPSE's comparison step is constant).
func TestBaselineComparisonCostLinearInBranches(t *testing.T) {
	b := heclear.New(256, 65537)
	mulsFor := func(branches int) int64 {
		forest, err := synth.Generate(synth.ForestSpec{
			NumFeatures: 2, NumLabels: 3, Precision: 8,
			MaxDepth: 5, BranchesPerTree: []int{branches}, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Prepare(b, forest, true)
		if err != nil {
			t.Fatal(err)
		}
		q, err := PrepareQuery(b, &m.Meta, []uint64{100, 50}, true)
		if err != nil {
			t.Fatal(err)
		}
		b.ResetCounts()
		e := &Engine{Backend: b}
		if _, err := e.Classify(m, q); err != nil {
			t.Fatal(err)
		}
		return b.Counts().Mul
	}
	m10, m20 := mulsFor(10), mulsFor(20)
	if m20 < m10*3/2 {
		t.Errorf("baseline muls should grow ~linearly with branches: b=10→%d, b=20→%d", m10, m20)
	}
}

func TestBaselineParallelEquivalence(t *testing.T) {
	b := heclear.New(128, 65537)
	forest, err := synth.Generate(synth.ForestSpec{
		NumFeatures: 3, NumLabels: 4, Precision: 6,
		MaxDepth: 4, BranchesPerTree: []int{9, 11}, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Prepare(b, forest, true)
	if err != nil {
		t.Fatal(err)
	}
	feats := []uint64{10, 20, 30}
	seq := classifyBaseline(t, &Engine{Backend: b, Workers: 1}, m, feats, true)
	par := classifyBaseline(t, &Engine{Backend: b, Workers: 8}, m, feats, true)
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("tree %d: sequential %d vs parallel %d", i, seq[i], par[i])
		}
	}
}

func TestBaselineErrors(t *testing.T) {
	b := heclear.New(64, 65537)
	forest := model.Figure1()
	m, err := Prepare(b, forest, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareQuery(b, &m.Meta, []uint64{1}, true); err == nil {
		t.Error("wrong feature count accepted")
	}
	if _, err := PrepareQuery(b, &m.Meta, []uint64{1, 999}, true); err == nil {
		t.Error("out-of-precision feature accepted")
	}
	if _, err := DecodeResult(&m.Meta, nil); err == nil {
		t.Error("wrong tree count accepted")
	}
	bad := [][]uint64{{7, 7, 7}}
	if _, err := DecodeResult(&m.Meta, bad); err == nil {
		t.Error("non-bit slots accepted")
	}
	leafOnly := &model.Forest{
		Labels: []string{"x", "y"}, NumFeatures: 1, Precision: 2,
		Trees: []*model.Tree{{Root: &model.Node{Leaf: true}}},
	}
	if _, err := Prepare(b, leafOnly, true); err == nil {
		t.Error("bare-leaf tree accepted")
	}
}
