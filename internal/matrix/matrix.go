// Package matrix implements the boolean matrices and the Halevi–Shoup
// generalized-diagonal matrix/vector kernel of the paper's §4.1.2: a
// matrix is stored as its wrapped diagonals so that M·v becomes
// Σ_i d_i ⊙ rot(v, i) — a constant multiplicative depth of 1 regardless
// of the matrix size.
package matrix

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime/debug"

	"copse/internal/bits"
	"copse/internal/he"
)

// Bool is a dense 0/1 matrix.
type Bool struct {
	Rows, Cols int
	data       []uint64
}

// NewBool allocates a zero rows×cols matrix.
func NewBool(rows, cols int) *Bool {
	return &Bool{Rows: rows, Cols: cols, data: make([]uint64, rows*cols)}
}

// At returns entry (i, j).
func (m *Bool) At(i, j int) uint64 { return m.data[i*m.Cols+j] }

// GobEncode implements gob.GobEncoder (the entries are unexported).
func (m *Bool) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, v := range []any{m.Rows, m.Cols, m.data} {
		if err := enc.Encode(v); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Bool) GobDecode(p []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(p))
	if err := dec.Decode(&m.Rows); err != nil {
		return err
	}
	if err := dec.Decode(&m.Cols); err != nil {
		return err
	}
	if err := dec.Decode(&m.data); err != nil {
		return err
	}
	if len(m.data) != m.Rows*m.Cols {
		return fmt.Errorf("matrix: corrupt gob payload: %d entries for %dx%d", len(m.data), m.Rows, m.Cols)
	}
	return nil
}

// Set writes entry (i, j).
func (m *Bool) Set(i, j int, v uint64) { m.data[i*m.Cols+j] = v & 1 }

// MulVec computes M·v over plain integers (mod nothing; inputs are 0/1),
// the reference for the homomorphic kernel.
func (m *Bool) MulVec(v []uint64) ([]uint64, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("matrix: vector length %d != %d columns", len(v), m.Cols)
	}
	out := make([]uint64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s uint64
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Diagonals returns the generalized diagonals of m, padded to `period`
// columns (period must be a power of two ≥ Cols so that slot-row
// rotations implement the wrapped indexing — see DESIGN.md §6). Diagonal
// i has length Rows with d_i[r] = M[r][(r+i) mod period], where columns
// ≥ Cols read as zero.
func (m *Bool) Diagonals(period int) ([][]uint64, error) {
	if period < m.Cols {
		return nil, fmt.Errorf("matrix: period %d below %d columns", period, m.Cols)
	}
	if period&(period-1) != 0 {
		return nil, fmt.Errorf("matrix: period %d is not a power of two", period)
	}
	out := make([][]uint64, period)
	for i := range out {
		d := make([]uint64, m.Rows)
		for r := 0; r < m.Rows; r++ {
			c := (r + i) % period
			if c < m.Cols {
				d[r] = m.At(r, c)
			}
		}
		out[i] = d
	}
	return out, nil
}

// Diagonals is a matrix prepared for homomorphic multiplication: one
// operand per rotation amount. With a plaintext model the operands are
// plain and all-zero diagonals may be skipped; with an encrypted model
// every diagonal is a ciphertext and all must be processed (skipping
// would leak the branching structure — paper §7.1).
//
// Two layouts exist. The naive layout (PrepareDiagonals) stores diagonal
// i in Ops[i] and the kernel issues one rotation per diagonal. The
// baby-step/giant-step layout (PrepareDiagonalsBSGS) stores diagonal
// g·Baby+j pre-rotated right by g·Baby in BsgsOps[g·Baby+j], so the
// kernel needs only Baby−1 rotations of the vector plus Giant−1
// rotations of the partial sums — ~2·√Period instead of Period−1.
type Diagonals struct {
	Rows   int
	Period int
	Ops    []he.Operand
	Zero   []bool // plaintext-known zero diagonals

	// BSGS layout; Baby·Giant == Period when BsgsOps is populated.
	Baby, Giant int
	BsgsOps     []he.Operand
	BsgsZero    []bool
}

// IsBSGS reports whether d carries the baby-step/giant-step layout.
func (d *Diagonals) IsBSGS() bool { return d.BsgsOps != nil }

// BSGSSplit factors a power-of-two period into baby and giant step
// counts with baby·giant = period and baby = 2^ceil(log2(period)/2), the
// split minimizing baby+giant over powers of two.
func BSGSSplit(period int) (baby, giant int) {
	if period <= 1 {
		return 1, 1
	}
	log := 0
	for 1<<log < period {
		log++
	}
	baby = 1 << ((log + 1) / 2)
	return baby, period / baby
}

// PrepareDiagonals builds the operand form of m with a single copy of
// each diagonal in slots [0, Rows) — the single-query layout. It is
// PrepareDiagonalsSpan with span equal to the full slot count.
func PrepareDiagonals(b he.Backend, m *Bool, period int, encrypt bool) (*Diagonals, error) {
	return PrepareDiagonalsSpan(b, m, period, b.Slots(), encrypt)
}

// checkSpan validates a slot-block width for blocked staging: span must
// be a power of two dividing the slot count, wide enough to hold both the
// matrix rows and the rotation period.
func checkSpan(b he.Backend, m *Bool, period, span int) error {
	slots := b.Slots()
	if m.Rows > slots || period > slots {
		return fmt.Errorf("matrix: %dx%d (period %d) exceeds %d slots", m.Rows, m.Cols, period, slots)
	}
	if span <= 0 || span&(span-1) != 0 || slots%span != 0 {
		return fmt.Errorf("matrix: span %d must be a power of two dividing %d slots", span, slots)
	}
	if m.Rows > span || period > span {
		return fmt.Errorf("matrix: span %d cannot hold %d rows (period %d)", span, m.Rows, period)
	}
	// With span = slots the ciphertext-wide rotation wrap covers reads
	// past the block edge (the vector is globally periodic). Smaller
	// blocks have no wrap: every read r + i (r < Rows, i < period) must
	// land inside the block or it would touch the neighbouring query.
	if span < slots && m.Rows+period-2 >= span {
		return fmt.Errorf("matrix: span %d too narrow for %d rows with period %d (reads would cross blocks)",
			span, m.Rows, period)
	}
	return nil
}

// PrepareDiagonalsSpan builds the operand form of m with each diagonal
// replicated into every span-aligned slot block: slot k·span + r holds
// d_i[r] for every block k. Against a vector whose blocks each carry an
// independent period-periodic query (see DESIGN.md §7), the kernel then
// computes one independent matrix-vector product per block. Callers must
// guarantee every rotated read stays inside the block: Rows − 1 + the
// largest rotation step must be below span (COPSE stages span = 2·SPad
// for exactly this reason). If encrypt is true the diagonals are
// encrypted; otherwise they are encoded plaintexts.
func PrepareDiagonalsSpan(b he.Backend, m *Bool, period, span int, encrypt bool) (*Diagonals, error) {
	return PrepareDiagonalsSpanAt(b, m, period, span, encrypt, -1)
}

// PrepareDiagonalsSpanAt is PrepareDiagonalsSpan with the operands
// produced at the given scheme level (the stage level a compile-time
// plan assigned the matrix product; see Meta.LevelPlan): encrypted
// diagonals are encrypted there directly and plaintext diagonals are
// pre-lifted there. A negative level (or a backend without levels)
// stages at the top as before.
func PrepareDiagonalsSpanAt(b he.Backend, m *Bool, period, span int, encrypt bool, level int) (*Diagonals, error) {
	if err := checkSpan(b, m, period, span); err != nil {
		return nil, err
	}
	raw, err := m.Diagonals(period)
	if err != nil {
		return nil, err
	}
	slots := b.Slots()
	d := &Diagonals{Rows: m.Rows, Period: period, Zero: make([]bool, period)}
	ext := make([]uint64, slots)
	for i, vec := range raw {
		clear(ext)
		allZero := true
		for r, v := range vec {
			if v != 0 {
				allZero = false
			}
			for base := 0; base < slots; base += span {
				ext[base+r] = v
			}
		}
		d.Zero[i] = allZero
		op, err := makeDiagOperand(b, ext, encrypt, level)
		if err != nil {
			return nil, err
		}
		d.Ops = append(d.Ops, op)
	}
	return d, nil
}

func makeDiagOperand(b he.Backend, vals []uint64, encrypt bool, level int) (he.Operand, error) {
	if encrypt {
		ct, err := he.EncryptAtLevel(b, vals, level)
		if err != nil {
			return he.Operand{}, err
		}
		return he.Cipher(ct), nil
	}
	return he.NewPlainAtLevel(b, vals, level)
}

// PrepareDiagonalsBSGS builds the baby-step/giant-step operand form of
// m: diagonal i = g·baby+j is laid out over the full slot width and
// pre-rotated right by g·baby, so that
//
//	M·v = Σ_g rot( Σ_j d'_{g,j} ⊙ rot(v, j), g·baby )
//
// needs only (baby−1) + (giant−1) rotations. Pre-rotating happens on the
// plaintext diagonals before encryption/encoding, so it is free. Pass the
// split staged by the compiler (or BSGSSplit(period)).
func PrepareDiagonalsBSGS(b he.Backend, m *Bool, period, baby, giant int, encrypt bool) (*Diagonals, error) {
	return PrepareDiagonalsBSGSSpan(b, m, period, baby, giant, b.Slots(), encrypt)
}

// PrepareDiagonalsBSGSSpan is PrepareDiagonalsBSGS with each pre-rotated
// diagonal replicated into every span-aligned slot block (the batched
// layout of PrepareDiagonalsSpan): slot k·span + r + g·baby holds
// d_{g·baby+j}[r] for every block k, so the kernel evaluates one
// independent product per block. The caller guarantees the block absorbs
// every read: Rows − 1 + period − 1 < span.
func PrepareDiagonalsBSGSSpan(b he.Backend, m *Bool, period, baby, giant, span int, encrypt bool) (*Diagonals, error) {
	return PrepareDiagonalsBSGSSpanAt(b, m, period, baby, giant, span, encrypt, -1)
}

// PrepareDiagonalsBSGSSpanAt is PrepareDiagonalsBSGSSpan with the
// operands produced at the given scheme level (negative = top); see
// PrepareDiagonalsSpanAt.
func PrepareDiagonalsBSGSSpanAt(b he.Backend, m *Bool, period, baby, giant, span int, encrypt bool, level int) (*Diagonals, error) {
	if err := checkSpan(b, m, period, span); err != nil {
		return nil, err
	}
	if baby < 1 || giant < 1 || baby*giant != period {
		return nil, fmt.Errorf("matrix: BSGS split %d×%d does not factor period %d", baby, giant, period)
	}
	raw, err := m.Diagonals(period)
	if err != nil {
		return nil, err
	}
	slots := b.Slots()
	d := &Diagonals{Rows: m.Rows, Period: period, Baby: baby, Giant: giant, BsgsZero: make([]bool, period)}
	ext := make([]uint64, slots)
	for i, vec := range raw {
		shift := (i / baby) * baby
		clear(ext)
		allZero := true
		for r, v := range vec {
			if v != 0 {
				allZero = false
			}
			for base := 0; base < slots; base += span {
				ext[(base+r+shift)%slots] = v
			}
		}
		d.BsgsZero[i] = allZero
		op, err := makeDiagOperand(b, ext, encrypt, level)
		if err != nil {
			return nil, err
		}
		d.BsgsOps = append(d.BsgsOps, op)
	}
	return d, nil
}

// PrepareDiagonalsBSGSBlocksAt is the block-diagonal variant of
// PrepareDiagonalsBSGSSpanAt: instead of replicating one matrix into
// every span-aligned slot block, it stages an *independent* matrix per
// block — mats[k]'s pre-rotated diagonal values occupy block k's slots —
// so a single BSGS kernel pass evaluates a different matrix-vector
// product in every block. This is the staging behind the batched result
// shuffle (one permutation per packed query, one set of rotations for
// the whole batch; DESIGN.md §10). len(mats) must equal slots/span and
// all matrices must share one shape; the span/period/read-containment
// rules of PrepareDiagonalsBSGSSpanAt apply unchanged. A diagonal is
// recorded zero (skippable) only when it is zero in every block.
func PrepareDiagonalsBSGSBlocksAt(b he.Backend, mats []*Bool, period, baby, giant, span int, encrypt bool, level int) (*Diagonals, error) {
	slots := b.Slots()
	if len(mats) == 0 {
		return nil, fmt.Errorf("matrix: no block matrices")
	}
	if err := checkSpan(b, mats[0], period, span); err != nil {
		return nil, err
	}
	if len(mats) != slots/span {
		return nil, fmt.Errorf("matrix: %d block matrices for %d blocks (%d slots / span %d)", len(mats), slots/span, slots, span)
	}
	rows, cols := mats[0].Rows, mats[0].Cols
	for k, m := range mats {
		if m.Rows != rows || m.Cols != cols {
			return nil, fmt.Errorf("matrix: block %d is %dx%d, block 0 is %dx%d", k, m.Rows, m.Cols, rows, cols)
		}
	}
	if baby < 1 || giant < 1 || baby*giant != period {
		return nil, fmt.Errorf("matrix: BSGS split %d×%d does not factor period %d", baby, giant, period)
	}
	raw := make([][][]uint64, len(mats))
	for k, m := range mats {
		var err error
		if raw[k], err = m.Diagonals(period); err != nil {
			return nil, err
		}
	}
	d := &Diagonals{Rows: rows, Period: period, Baby: baby, Giant: giant, BsgsZero: make([]bool, period)}
	ext := make([]uint64, slots)
	for i := 0; i < period; i++ {
		shift := (i / baby) * baby
		clear(ext)
		allZero := true
		for k := range mats {
			base := k * span
			for r, v := range raw[k][i] {
				if v != 0 {
					allZero = false
				}
				ext[(base+r+shift)%slots] = v
			}
		}
		d.BsgsZero[i] = allZero
		op, err := makeDiagOperand(b, ext, encrypt, level)
		if err != nil {
			return nil, err
		}
		d.BsgsOps = append(d.BsgsOps, op)
	}
	return d, nil
}

// MatVec computes M·v homomorphically: Σ_i d_i ⊙ rot(v, i). The vector
// operand must be slot-periodic with period d.Period (see Replicate).
// When skipZero is true, plaintext-known zero diagonals are skipped —
// only safe for plaintext models. The result holds M·v in slots
// [0, Rows) and zeros elsewhere. Diagonals in the BSGS layout are
// dispatched to the baby-step/giant-step kernel.
func MatVec(b he.Backend, d *Diagonals, v he.Operand, skipZero bool) (he.Operand, error) {
	if d.IsBSGS() {
		return MatVecBSGS(b, d, v, skipZero, 1, true)
	}
	var acc he.Operand
	accSet := false
	for i := 0; i < d.Period; i++ {
		if skipZero && d.Zero[i] {
			continue
		}
		rot := v
		if i != 0 {
			var err error
			rot, err = he.Rotate(b, v, i)
			if err != nil {
				return he.Operand{}, err
			}
		}
		term, err := he.MulLazy(b, d.Ops[i], rot)
		if err != nil {
			return he.Operand{}, err
		}
		if !accSet {
			acc, accSet = term, true
			continue
		}
		acc, err = he.Add(b, acc, term)
		if err != nil {
			return he.Operand{}, err
		}
	}
	if !accSet {
		return he.NewPlain(b, make([]uint64, b.Slots()))
	}
	return he.Relinearize(b, acc)
}

// MatVecParallel is MatVec with the per-diagonal terms computed by
// `workers` goroutines. Results are summed in index order, so the output
// is identical to MatVec.
func MatVecParallel(b he.Backend, d *Diagonals, v he.Operand, skipZero bool, workers int) (he.Operand, error) {
	if d.IsBSGS() {
		return MatVecBSGS(b, d, v, skipZero, workers, true)
	}
	if workers <= 1 {
		return MatVec(b, d, v, skipZero)
	}
	terms := make([]*he.Operand, d.Period)
	err := ParallelFor(d.Period, workers, func(i int) error {
		if skipZero && d.Zero[i] {
			return nil
		}
		rot := v
		if i != 0 {
			var err error
			rot, err = he.Rotate(b, v, i)
			if err != nil {
				return err
			}
		}
		term, err := he.MulLazy(b, d.Ops[i], rot)
		if err != nil {
			return err
		}
		terms[i] = &term
		return nil
	})
	if err != nil {
		return he.Operand{}, err
	}
	var acc he.Operand
	accSet := false
	for _, term := range terms {
		if term == nil {
			continue
		}
		if !accSet {
			acc, accSet = *term, true
			continue
		}
		acc, err = he.Add(b, acc, *term)
		if err != nil {
			return he.Operand{}, err
		}
	}
	if !accSet {
		return he.NewPlain(b, make([]uint64, b.Slots()))
	}
	return he.Relinearize(b, acc)
}

// BabyRotations computes rot(v, j) for j = 0..baby-1 (index 0 is v
// itself). With hoist set and a ciphertext operand, the backend's
// hoisted-rotation path shares one digit decomposition across all steps.
// The result can be fed to MatVecBSGSWith — and shared across every
// matrix product with the same period, e.g. all level matrices.
func BabyRotations(b he.Backend, v he.Operand, baby int, hoist bool) ([]he.Operand, error) {
	needed := make([]bool, baby)
	for j := range needed {
		needed[j] = true
	}
	return babyRotations(b, v, needed, hoist)
}

// babyRotations computes rot(v, j) for every needed index (j=0 is v
// itself); skipped indices are left as zero operands.
func babyRotations(b he.Backend, v he.Operand, needed []bool, hoist bool) ([]he.Operand, error) {
	rots := make([]he.Operand, len(needed))
	rots[0] = v
	var steps []int
	for j := 1; j < len(needed); j++ {
		if needed[j] {
			steps = append(steps, j)
		}
	}
	if len(steps) == 0 {
		return rots, nil
	}
	if hoist {
		outs, err := he.RotateHoisted(b, v, steps)
		if err != nil {
			return nil, err
		}
		for i, j := range steps {
			rots[j] = outs[i]
		}
		return rots, nil
	}
	for _, j := range steps {
		rot, err := he.Rotate(b, v, j)
		if err != nil {
			return nil, err
		}
		rots[j] = rot
	}
	return rots, nil
}

// MatVecBSGS is the baby-step/giant-step diagonal kernel over a BSGS
// Diagonals layout: it computes the baby rotations of v, forms each
// giant group's inner sum against the pre-rotated diagonals, then
// rotates and accumulates the group sums — (Baby−1) + (Giant−1)
// rotations total instead of Period−1. Under skipZero, only the baby
// rotations some group actually needs are computed.
func MatVecBSGS(b he.Backend, d *Diagonals, v he.Operand, skipZero bool, workers int, hoist bool) (he.Operand, error) {
	if !d.IsBSGS() {
		return he.Operand{}, fmt.Errorf("matrix: diagonals lack the BSGS layout")
	}
	needed := make([]bool, d.Baby)
	for i := 0; i < d.Period; i++ {
		if !(skipZero && d.BsgsZero[i]) {
			needed[i%d.Baby] = true
		}
	}
	babyRots, err := babyRotations(b, v, needed, hoist)
	if err != nil {
		return he.Operand{}, err
	}
	return MatVecBSGSWith(b, d, babyRots, skipZero, workers)
}

// MatVecBSGSWith is MatVecBSGS over precomputed baby rotations of the
// vector (see BabyRotations) — the way to share one set of baby
// rotations across several matrix products with the same period.
func MatVecBSGSWith(b he.Backend, d *Diagonals, babyRots []he.Operand, skipZero bool, workers int) (he.Operand, error) {
	if !d.IsBSGS() {
		return he.Operand{}, fmt.Errorf("matrix: diagonals lack the BSGS layout")
	}
	if len(babyRots) < d.Baby {
		return he.Operand{}, fmt.Errorf("matrix: got %d baby rotations, kernel needs %d", len(babyRots), d.Baby)
	}
	groups := make([]*he.Operand, d.Giant)
	err := ParallelFor(d.Giant, workers, func(g int) error {
		var acc he.Operand
		accSet := false
		for j := 0; j < d.Baby; j++ {
			i := g*d.Baby + j
			if skipZero && d.BsgsZero[i] {
				continue
			}
			// Lazy products: the group's inner sum accumulates degree-2
			// tensors and pays for one relinearization below, instead of
			// one per diagonal.
			term, err := he.MulLazy(b, d.BsgsOps[i], babyRots[j])
			if err != nil {
				return err
			}
			if !accSet {
				acc, accSet = term, true
				continue
			}
			acc, err = he.Add(b, acc, term)
			if err != nil {
				return err
			}
		}
		if !accSet {
			return nil
		}
		var err error
		acc, err = he.Relinearize(b, acc)
		if err != nil {
			return err
		}
		if g > 0 {
			acc, err = he.Rotate(b, acc, g*d.Baby)
			if err != nil {
				return err
			}
		}
		groups[g] = &acc
		return nil
	})
	if err != nil {
		return he.Operand{}, err
	}
	var acc he.Operand
	accSet := false
	for _, group := range groups {
		if group == nil {
			continue
		}
		if !accSet {
			acc, accSet = *group, true
			continue
		}
		acc, err = he.Add(b, acc, *group)
		if err != nil {
			return he.Operand{}, err
		}
	}
	if !accSet {
		return he.NewPlain(b, make([]uint64, b.Slots()))
	}
	return acc, nil
}

// elsewhere — periodically across all slots by rotate-and-add doubling.
// width must be a power of two dividing the slot count. This restores
// the periodic layout MatVec requires between pipeline stages.
func Replicate(b he.Backend, v he.Operand, width int) (he.Operand, error) {
	return ReplicateWithin(b, v, width, b.Slots())
}

// ReplicateWithin replicates v — width values at the base of every
// span-aligned slot block, zeros elsewhere in the block — periodically
// across its own block only, by rotate-and-add doubling (log2(span/width)
// rotations). Every block is replicated simultaneously; blocks never mix
// because each block's payload is zero outside [0, width) and the shifts
// stay below span. With span equal to the slot count this is Replicate.
// width and span must be powers of two with width | span | slots.
func ReplicateWithin(b he.Backend, v he.Operand, width, span int) (he.Operand, error) {
	slots := b.Slots()
	if width <= 0 || width&(width-1) != 0 || slots%width != 0 {
		return he.Operand{}, fmt.Errorf("matrix: replication width %d must be a power of two dividing %d slots", width, slots)
	}
	if span <= 0 || span&(span-1) != 0 || slots%span != 0 || span%width != 0 {
		return he.Operand{}, fmt.Errorf("matrix: replication span %d must be a power of two with %d | %d | %d", span, width, span, slots)
	}
	out := v
	for p := width; p < span; p <<= 1 {
		rot, err := he.Rotate(b, out, -p)
		if err != nil {
			return he.Operand{}, err
		}
		out, err = he.Add(b, out, rot)
		if err != nil {
			return he.Operand{}, err
		}
	}
	return out, nil
}

// Pad returns v zero-padded to the next power of two at least min.
func Pad(v []uint64, min int) []uint64 {
	n := bits.NextPow2(max(len(v), min))
	out := make([]uint64, n)
	copy(out, v)
	return out
}

// PanicError is a panic recovered inside a ParallelFor body and
// returned as an error: a worker goroutine that panicked would
// otherwise kill the whole process, taking every in-flight request
// down with one poisoned input. The serving layer unwraps it into its
// typed internal-error taxonomy.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("matrix: recovered panic in parallel body: %v", e.Value)
}

// safeCall runs fn(i), converting a panic into a *PanicError.
func safeCall(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// ParallelFor runs fn(0..n-1) on `workers` goroutines and returns the
// first error encountered. A panic in fn is recovered and reported as
// a *PanicError instead of crashing the process.
func ParallelFor(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := safeCall(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	work := make(chan int)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var firstErr error
			for i := range work {
				if firstErr != nil {
					continue
				}
				if err := safeCall(fn, i); err != nil {
					firstErr = err
				}
			}
			errs <- firstErr
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var firstErr error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
