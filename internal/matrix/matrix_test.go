package matrix

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"copse/internal/bits"
	"copse/internal/he"
	"copse/internal/he/heclear"
)

func randBool(r *rand.Rand, rows, cols int, density float64) *Bool {
	m := NewBool(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				m.Set(i, j, 1)
			}
		}
	}
	return m
}

// TestDiagonalsDefinition checks d_i[r] = M[r][(r+i) mod period].
func TestDiagonalsDefinition(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	m := randBool(r, 5, 3, 0.5)
	period := 4
	diags, err := m.Diagonals(period)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != period {
		t.Fatalf("got %d diagonals, want %d", len(diags), period)
	}
	for i := 0; i < period; i++ {
		for row := 0; row < m.Rows; row++ {
			c := (row + i) % period
			want := uint64(0)
			if c < m.Cols {
				want = m.At(row, c)
			}
			if diags[i][row] != want {
				t.Errorf("diag %d row %d: got %d want %d", i, row, diags[i][row], want)
			}
		}
	}
}

func TestDiagonalsErrors(t *testing.T) {
	m := NewBool(2, 5)
	if _, err := m.Diagonals(4); err == nil {
		t.Error("period below cols accepted")
	}
	if _, err := m.Diagonals(6); err == nil {
		t.Error("non-power-of-two period accepted")
	}
}

// replicatedPlain builds the slot-periodic layout of v (padded to
// period) that MatVec expects.
func replicatedPlain(v []uint64, period, slots int) []uint64 {
	out := make([]uint64, slots)
	for i := range out {
		if i%period < len(v) {
			out[i] = v[i%period]
		}
	}
	return out
}

// TestMatVecMatchesPlain: homomorphic MatVec equals the plain product,
// over random shapes, for both plain and encrypted matrices.
func TestMatVecMatchesPlain(t *testing.T) {
	b := heclear.New(64, 65537)
	f := func(seed uint64, rRaw, cRaw uint8, encryptMat, skipZero bool) bool {
		rows := int(rRaw%10) + 1
		cols := int(cRaw%10) + 1
		if skipZero && encryptMat {
			skipZero = false // skipping is only allowed for plaintext models
		}
		r := rand.New(rand.NewPCG(seed, 2))
		m := randBool(r, rows, cols, 0.4)
		v := make([]uint64, cols)
		for i := range v {
			v[i] = uint64(r.IntN(2))
		}
		period := bits.NextPow2(cols)
		d, err := PrepareDiagonals(b, m, period, encryptMat)
		if err != nil {
			return false
		}
		ct, err := b.Encrypt(replicatedPlain(v, period, b.Slots()))
		if err != nil {
			return false
		}
		got, err := MatVec(b, d, he.Cipher(ct), skipZero)
		if err != nil {
			return false
		}
		gotVals, err := he.Reveal(b, got)
		if err != nil {
			return false
		}
		want, err := m.MulVec(v)
		if err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			if gotVals[i] != want[i]%65537 {
				return false
			}
		}
		// Slots beyond rows must be clean zeros (the next pipeline stage
		// relies on this).
		for i := rows; i < b.Slots(); i++ {
			if gotVals[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMatVecTallMatrix checks the m > n cyclic-extension case from
// Halevi–Shoup (§4.1.2).
func TestMatVecTallMatrix(t *testing.T) {
	b := heclear.New(32, 65537)
	m := NewBool(7, 2) // 7 rows, 2 cols
	r := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 7; i++ {
		m.Set(i, r.IntN(2), 1)
	}
	v := []uint64{1, 0}
	period := 2
	d, err := PrepareDiagonals(b, m, period, false)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := b.Encrypt(replicatedPlain(v, period, 32))
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatVec(b, d, he.Cipher(ct), false)
	if err != nil {
		t.Fatal(err)
	}
	gotVals, err := he.Reveal(b, got)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if gotVals[i] != want[i] {
			t.Errorf("row %d: got %d want %d", i, gotVals[i], want[i])
		}
	}
}

func TestMatVecParallelMatchesSerial(t *testing.T) {
	b := heclear.New(64, 65537)
	r := rand.New(rand.NewPCG(4, 4))
	m := randBool(r, 20, 13, 0.3)
	v := make([]uint64, 13)
	for i := range v {
		v[i] = uint64(r.IntN(2))
	}
	period := bits.NextPow2(13)
	d, err := PrepareDiagonals(b, m, period, false)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := b.Encrypt(replicatedPlain(v, period, 64))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := MatVec(b, d, he.Cipher(ct), false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MatVecParallel(b, d, he.Cipher(ct), false, 8)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := he.Reveal(b, serial)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := he.Reveal(b, parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sv {
		if sv[i] != pv[i] {
			t.Fatalf("slot %d: serial %d vs parallel %d", i, sv[i], pv[i])
		}
	}
}

// TestSkipZeroSavesWork: the plaintext-model optimization must reduce
// rotations/multiplications without changing the result (this is the
// mechanism behind Figure 9).
func TestSkipZeroSavesWork(t *testing.T) {
	b := heclear.New(32, 65537)
	m := NewBool(8, 8) // permutation-like sparse matrix: most diagonals zero
	for i := 0; i < 8; i++ {
		m.Set(i, i, 1)
	}
	d, err := PrepareDiagonals(b, m, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	v := []uint64{1, 0, 1, 1, 0, 0, 1, 0}
	ct, err := b.Encrypt(replicatedPlain(v, 8, 32))
	if err != nil {
		t.Fatal(err)
	}

	b.ResetCounts()
	full, err := MatVec(b, d, he.Cipher(ct), false)
	if err != nil {
		t.Fatal(err)
	}
	fullCounts := b.Counts()

	b.ResetCounts()
	skipped, err := MatVec(b, d, he.Cipher(ct), true)
	if err != nil {
		t.Fatal(err)
	}
	skipCounts := b.Counts()

	if skipCounts.ConstMul >= fullCounts.ConstMul {
		t.Errorf("skipZero did not reduce multiplications: %d vs %d", skipCounts.ConstMul, fullCounts.ConstMul)
	}
	fv, err := he.Reveal(b, full)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := he.Reveal(b, skipped)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fv {
		if fv[i] != sv[i] {
			t.Fatalf("slot %d differs: %d vs %d", i, fv[i], sv[i])
		}
	}
}

func TestMatVecAllZeroMatrix(t *testing.T) {
	b := heclear.New(16, 65537)
	m := NewBool(4, 4)
	d, err := PrepareDiagonals(b, m, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := b.Encrypt([]uint64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := MatVec(b, d, he.Cipher(ct), true)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := he.Reveal(b, out)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 0 {
			t.Errorf("slot %d = %d, want 0", i, v)
		}
	}
}

func TestReplicate(t *testing.T) {
	b := heclear.New(32, 65537)
	v := []uint64{5, 6, 7, 0} // logical width 4, stored in [0,4)
	ct, err := b.Encrypt(v)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replicate(b, he.Cipher(ct), 4)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := he.Reveal(b, rep)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if vals[i] != v[i%4] {
			t.Errorf("slot %d: got %d want %d", i, vals[i], v[i%4])
		}
	}
	if _, err := Replicate(b, he.Cipher(ct), 3); err == nil {
		t.Error("non-power-of-two width accepted")
	}
	// width == slots is a no-op.
	same, err := Replicate(b, he.Cipher(ct), 32)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := he.Reveal(b, same)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := he.Reveal(b, he.Cipher(ct))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sv {
		if sv[i] != orig[i] {
			t.Errorf("full-width replicate changed slot %d", i)
		}
	}
}

func TestPad(t *testing.T) {
	got := Pad([]uint64{1, 2, 3}, 0)
	if len(got) != 4 || got[0] != 1 || got[3] != 0 {
		t.Errorf("Pad = %v", got)
	}
	got = Pad([]uint64{1}, 7)
	if len(got) != 8 {
		t.Errorf("Pad with min: len %d, want 8", len(got))
	}
}

func TestParallelFor(t *testing.T) {
	sum := make([]int, 100)
	if err := ParallelFor(100, 8, func(i int) error {
		sum[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range sum {
		if sum[i] != i*i {
			t.Fatalf("index %d not processed", i)
		}
	}
	wantErr := errors.New("boom")
	err := ParallelFor(50, 4, func(i int) error {
		if i == 17 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("got err %v, want boom", err)
	}
	// Serial path.
	if err := ParallelFor(3, 1, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecDimensionError(t *testing.T) {
	m := NewBool(2, 3)
	if _, err := m.MulVec([]uint64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestPrepareDiagonalsTooBig(t *testing.T) {
	b := heclear.New(8, 65537)
	if _, err := PrepareDiagonals(b, NewBool(9, 2), 2, false); err == nil {
		t.Error("matrix taller than slots accepted")
	}
	if _, err := PrepareDiagonals(b, NewBool(2, 9), 16, false); err == nil {
		t.Error("period wider than slots accepted")
	}
}
