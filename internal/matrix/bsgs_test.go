package matrix

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"copse/internal/bgv"
	"copse/internal/bits"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/he/heclear"
)

func TestBSGSSplit(t *testing.T) {
	cases := []struct{ period, baby, giant int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4},
		{32, 8, 4}, {64, 8, 8}, {1024, 32, 32},
	}
	for _, c := range cases {
		baby, giant := BSGSSplit(c.period)
		if baby != c.baby || giant != c.giant {
			t.Errorf("BSGSSplit(%d) = (%d, %d), want (%d, %d)", c.period, baby, giant, c.baby, c.giant)
		}
		if baby*giant != max(c.period, 1) {
			t.Errorf("BSGSSplit(%d): %d·%d != period", c.period, baby, giant)
		}
	}
}

// TestMatVecBSGSMatchesPlain: the BSGS kernel equals the plain product
// over random shapes, for plain and encrypted matrices, with and without
// zero skipping.
func TestMatVecBSGSMatchesPlain(t *testing.T) {
	b := heclear.New(64, 65537)
	f := func(seed uint64, rRaw, cRaw uint8, encryptMat, skipZero bool) bool {
		rows := int(rRaw%10) + 1
		cols := int(cRaw%10) + 1
		if skipZero && encryptMat {
			skipZero = false
		}
		r := rand.New(rand.NewPCG(seed, 2))
		m := randBool(r, rows, cols, 0.4)
		v := make([]uint64, cols)
		for i := range v {
			v[i] = uint64(r.IntN(2))
		}
		period := bits.NextPow2(cols)
		baby, giant := BSGSSplit(period)
		d, err := PrepareDiagonalsBSGS(b, m, period, baby, giant, encryptMat)
		if err != nil {
			return false
		}
		ct, err := b.Encrypt(replicatedPlain(v, period, b.Slots()))
		if err != nil {
			return false
		}
		got, err := MatVec(b, d, he.Cipher(ct), skipZero)
		if err != nil {
			return false
		}
		gotVals, err := he.Reveal(b, got)
		if err != nil {
			return false
		}
		want, err := m.MulVec(v)
		if err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			if gotVals[i] != want[i]%65537 {
				return false
			}
		}
		for i := rows; i < b.Slots(); i++ {
			if gotVals[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMatVecBSGSRotationBudget is the op-count regression test: the BSGS
// kernel must need at most 2·√Period + 1 rotations per mat-vec, versus
// Period−1 for the naive kernel.
func TestMatVecBSGSRotationBudget(t *testing.T) {
	b := heclear.New(256, 65537)
	for _, period := range []int{4, 16, 64, 256} {
		r := rand.New(rand.NewPCG(uint64(period), 5))
		m := randBool(r, period, period, 0.6) // dense: no zero diagonals to skip
		baby, giant := BSGSSplit(period)
		d, err := PrepareDiagonalsBSGS(b, m, period, baby, giant, true)
		if err != nil {
			t.Fatal(err)
		}
		v := make([]uint64, period)
		for i := range v {
			v[i] = uint64(r.IntN(2))
		}
		ct, err := b.Encrypt(replicatedPlain(v, period, b.Slots()))
		if err != nil {
			t.Fatal(err)
		}
		b.ResetCounts()
		out, err := MatVecParallel(b, d, he.Cipher(ct), false, 4)
		if err != nil {
			t.Fatal(err)
		}
		rotations := b.Counts().Rotate
		budget := int64(2*math.Sqrt(float64(period))) + 1
		if rotations > budget {
			t.Errorf("period %d: BSGS used %d rotations, budget 2·√P+1 = %d", period, rotations, budget)
		}
		// And it must still be the right answer.
		gotVals, err := he.Reveal(b, out)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if gotVals[i] != want[i]%65537 {
				t.Fatalf("period %d row %d: got %d want %d", period, i, gotVals[i], want[i])
			}
		}
	}
}

// TestMatVecBSGSRotationBudgetBGV is the same rotation-budget regression
// on real BGV ciphertexts, with keys generated for exactly the BSGS step
// set, and additionally checks that the rotations went through the
// hoisted path.
func TestMatVecBSGSRotationBudgetBGV(t *testing.T) {
	if testing.Short() {
		t.Skip("BGV kernel test in -short mode")
	}
	period := 16
	baby, giant := BSGSSplit(period)
	var steps []int
	for j := 1; j < baby; j++ {
		steps = append(steps, j)
	}
	for g := 1; g < giant; g++ {
		steps = append(steps, g*baby)
	}
	b, err := hebgv.New(hebgv.Config{Params: bgv.TestParams(4), RotationSteps: steps, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(8, 8))
	m := randBool(r, period, period, 0.6)
	d, err := PrepareDiagonalsBSGS(b, m, period, baby, giant, true)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]uint64, period)
	for i := range v {
		v[i] = uint64(r.IntN(2))
	}
	ct, err := b.Encrypt(replicatedPlain(v, period, b.Slots()))
	if err != nil {
		t.Fatal(err)
	}
	b.ResetCounts()
	out, err := MatVecBSGS(b, d, he.Cipher(ct), false, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	counts := b.Counts()
	budget := int64(2*math.Sqrt(float64(period))) + 1
	if counts.Rotate > budget {
		t.Errorf("BGV BSGS used %d rotations, budget 2·√P+1 = %d", counts.Rotate, budget)
	}
	if counts.RotateHoisted == 0 {
		t.Error("no rotations went through the hoisted path")
	}
	gotVals, err := he.Reveal(b, out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if gotVals[i] != want[i]%b.PlainModulus() {
			t.Fatalf("row %d: got %d want %d", i, gotVals[i], want[i])
		}
	}
}

// TestMatVecBSGSWithSharedBabyRotations: sharing one baby-rotation set
// across several matrices must give identical results to independent runs.
func TestMatVecBSGSWithSharedBabyRotations(t *testing.T) {
	b := heclear.New(64, 65537)
	r := rand.New(rand.NewPCG(9, 9))
	period := 16
	baby, giant := BSGSSplit(period)
	v := make([]uint64, period)
	for i := range v {
		v[i] = uint64(r.IntN(2))
	}
	ct, err := b.Encrypt(replicatedPlain(v, period, b.Slots()))
	if err != nil {
		t.Fatal(err)
	}
	babyRots, err := BabyRotations(b, he.Cipher(ct), baby, true)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		m := randBool(r, 12, period, 0.5)
		d, err := PrepareDiagonalsBSGS(b, m, period, baby, giant, true)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := MatVecBSGSWith(b, d, babyRots, false, 2)
		if err != nil {
			t.Fatal(err)
		}
		independent, err := MatVecBSGS(b, d, he.Cipher(ct), false, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := he.Reveal(b, shared)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := he.Reveal(b, independent)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sv {
			if sv[i] != iv[i] {
				t.Fatalf("trial %d slot %d: shared %d vs independent %d", trial, i, sv[i], iv[i])
			}
		}
	}
}

func TestPrepareDiagonalsBSGSBadSplit(t *testing.T) {
	b := heclear.New(16, 65537)
	if _, err := PrepareDiagonalsBSGS(b, NewBool(4, 4), 4, 3, 2, false); err == nil {
		t.Error("split not factoring period accepted")
	}
	if _, err := PrepareDiagonalsBSGS(b, NewBool(4, 4), 32, 8, 4, false); err == nil {
		t.Error("period wider than slots accepted")
	}
}

// TestPrepareDiagonalsBSGSBlocksMatchesPlain is the block-diagonal
// staging property test: with an independent random matrix per slot
// block and a block-periodic vector carrying an independent payload per
// block, one BSGS kernel pass must compute every block's own M_k·v_k.
func TestPrepareDiagonalsBSGSBlocksMatchesPlain(t *testing.T) {
	const slots, span = 64, 16
	b := heclear.New(slots, 65537)
	blocks := slots / span
	f := func(seed uint64, rRaw, cRaw uint8, skipZero bool) bool {
		r := rand.New(rand.NewPCG(seed, 9))
		rows := int(rRaw%5) + 1
		cols := int(cRaw%5) + 1
		period := bits.NextPow2(cols)
		if rows+period-2 >= span {
			rows = span - period + 1 // keep reads inside the block
		}
		mats := make([]*Bool, blocks)
		vecs := make([][]uint64, blocks)
		packed := make([]uint64, slots)
		for k := range mats {
			mats[k] = randBool(r, rows, cols, 0.4)
			v := make([]uint64, cols)
			for i := range v {
				v[i] = uint64(r.IntN(2))
			}
			vecs[k] = v
			// period-periodic within block k only.
			for off := 0; off < span; off += period {
				copy(packed[k*span+off:k*span+off+len(v)], v)
			}
		}
		baby, giant := BSGSSplit(period)
		d, err := PrepareDiagonalsBSGSBlocksAt(b, mats, period, baby, giant, span, false, -1)
		if err != nil {
			t.Logf("prepare: %v", err)
			return false
		}
		ct, err := b.Encrypt(packed)
		if err != nil {
			return false
		}
		got, err := MatVecBSGS(b, d, he.Cipher(ct), skipZero, 2, true)
		if err != nil {
			t.Logf("matvec: %v", err)
			return false
		}
		gotVals, err := he.Reveal(b, got)
		if err != nil {
			return false
		}
		for k := range mats {
			want, err := mats[k].MulVec(vecs[k])
			if err != nil {
				return false
			}
			for i := 0; i < rows; i++ {
				if gotVals[k*span+i] != want[i]%65537 {
					t.Logf("block %d row %d: got %d want %d", k, i, gotVals[k*span+i], want[i]%65537)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPrepareDiagonalsBSGSBlocksErrors(t *testing.T) {
	b := heclear.New(64, 65537)
	mk := func(n int, rows, cols int) []*Bool {
		out := make([]*Bool, n)
		for i := range out {
			out[i] = NewBool(rows, cols)
		}
		return out
	}
	if _, err := PrepareDiagonalsBSGSBlocksAt(b, mk(2, 4, 4), 4, 2, 2, 16, false, -1); err == nil {
		t.Error("block count not matching slots/span accepted")
	}
	if _, err := PrepareDiagonalsBSGSBlocksAt(b, nil, 4, 2, 2, 16, false, -1); err == nil {
		t.Error("empty block list accepted")
	}
	mixed := mk(4, 4, 4)
	mixed[2] = NewBool(3, 4)
	if _, err := PrepareDiagonalsBSGSBlocksAt(b, mixed, 4, 2, 2, 16, false, -1); err == nil {
		t.Error("mismatched block shapes accepted")
	}
	if _, err := PrepareDiagonalsBSGSBlocksAt(b, mk(4, 4, 4), 4, 3, 2, 16, false, -1); err == nil {
		t.Error("split not factoring period accepted")
	}
	if _, err := PrepareDiagonalsBSGSBlocksAt(b, mk(4, 15, 8), 8, 4, 2, 16, false, -1); err == nil {
		t.Error("reads crossing blocks accepted")
	}
}
