package ring

import (
	"math/rand"
	"testing"
)

// vectorTestModulus builds a Modulus over a fresh 55-bit prime for the
// given logN with the vector kernels force-enabled (skipping the test
// when the host has no vector backend).
func vectorTestModulus(t *testing.T, logN int) *Modulus {
	t.Helper()
	if !VectorKernelsAvailable() {
		t.Skip("no vector backend on this host/build")
	}
	n := 1 << logN
	primes, err := GeneratePrimes(55, uint64(2*n), 1)
	if err != nil {
		t.Fatalf("GeneratePrimes: %v", err)
	}
	m, err := NewModulus(primes[0], n)
	if err != nil {
		t.Fatalf("NewModulus: %v", err)
	}
	m.SetVectorKernels(true)
	if !m.VectorKernels() {
		t.Fatalf("vector kernels did not engage for q=%d n=%d", primes[0], n)
	}
	return m
}

func randRow(rng *rand.Rand, n int, q uint64) []uint64 {
	row := make([]uint64, n)
	for i := range row {
		row[i] = rng.Uint64() % q
	}
	return row
}

// TestVectorKernelsMatchScalar asserts bit-identity of the AVX2
// transform kernels against the fused scalar reference across sizes.
func TestVectorKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, logN := range []int{5, 6, 8, 11, 12, 13} {
		m := vectorTestModulus(t, logN)
		n := m.N
		for trial := 0; trial < 4; trial++ {
			a := randRow(rng, n, m.Q)
			want := append([]uint64(nil), a...)
			got := append([]uint64(nil), a...)
			m.nttScalar(want)
			m.nttVec(got)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("logN=%d NTT diverges at %d: scalar %d vector %d", logN, i, want[i], got[i])
				}
			}
			m.inttScalar(want)
			m.inttVec(got)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("logN=%d INTT diverges at %d: scalar %d vector %d", logN, i, want[i], got[i])
				}
			}
			if got[0] != a[0] {
				t.Fatalf("logN=%d round trip failed", logN)
			}
		}
	}
}

// TestVectorRowKernelsMatchScalar asserts bit-identity of every
// pointwise vector kernel against its scalar row, including ragged
// lengths that exercise the scalar tail in the wrappers.
func TestVectorRowKernelsMatchScalar(t *testing.T) {
	if !VectorKernelsAvailable() {
		t.Skip("no vector backend on this host/build")
	}
	rng := rand.New(rand.NewSource(11))
	primes, err := GeneratePrimes(55, 1<<13, 2)
	if err != nil {
		t.Fatalf("GeneratePrimes: %v", err)
	}
	for _, q := range primes {
		for _, n := range []int{16, 64, 67, 256, 1024} {
			a := randRow(rng, n, q)
			b := randRow(rng, n, q)
			bs := make([]uint64, n)
			for i := range bs {
				bs[i] = ShoupPrecomp(b[i], q)
			}
			acc := randRow(rng, n, q)
			c := rng.Uint64() % q
			cs := ShoupPrecomp(c, q)

			check := func(name string, scalar, vec func(out []uint64)) {
				t.Helper()
				want := make([]uint64, n)
				got := make([]uint64, n)
				scalar(want)
				vec(got)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s q=%d n=%d diverges at %d: scalar %d vector %d", name, q, n, i, want[i], got[i])
					}
				}
			}
			check("add",
				func(out []uint64) { addRowScalar(q, a, b, out) },
				func(out []uint64) { addVecAsm(q, a, b, out) })
			check("sub",
				func(out []uint64) { subRowScalar(q, a, b, out) },
				func(out []uint64) { subVecAsm(q, a, b, out) })
			check("neg",
				func(out []uint64) { negRowScalar(q, a, out) },
				func(out []uint64) { negVecAsm(q, a, out) })
			check("mul",
				func(out []uint64) { mulRowScalar(q, a, b, out) },
				func(out []uint64) { mulVecAsm(q, a, b, out) })
			check("mulAdd",
				func(out []uint64) { copy(out, acc); mulAddRowScalar(q, a, b, out) },
				func(out []uint64) { copy(out, acc); mulAddVecAsm(q, a, b, out) })
			check("mulShoupAdd",
				func(out []uint64) { copy(out, acc); mulShoupAddRowScalar(q, a, b, bs, out) },
				func(out []uint64) { copy(out, acc); mulShoupAddVecAsm(q, a, b, bs, out) })
			check("mulScalar",
				func(out []uint64) { mulScalarRowScalar(q, c, cs, a, out) },
				func(out []uint64) { mulScalarVecAsm(q, c, cs, a, out) })
		}
	}
}

// TestVectorNegZero pins the x=0 edge of the vectorized NegMod.
func TestVectorNegZero(t *testing.T) {
	if !VectorKernelsAvailable() {
		t.Skip("no vector backend on this host/build")
	}
	q := uint64(1)<<55 - 55
	a := []uint64{0, 1, q - 1, 0, 0, q / 2, 3, 0}
	want := make([]uint64, len(a))
	got := make([]uint64, len(a))
	negRowScalar(q, a, want)
	negVecAsm(q, a, got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("neg diverges at %d: scalar %d vector %d", i, want[i], got[i])
		}
	}
}

// TestModulusVectorGate checks that out-of-range primes and tiny
// transforms keep the scalar kernels.
func TestModulusVectorGate(t *testing.T) {
	if vectorOKForModulus(uint64(12289), 4096) {
		t.Fatal("q < 2^32 must not take the vector path")
	}
	if vectorOKForModulus(uint64(1)<<61+9, 4096) {
		t.Fatal("q >= 2^61 must not take the vector path")
	}
	if vectorOKForModulus(uint64(1)<<55-55, 16) {
		t.Fatal("n < 32 must not take the vector path")
	}
	if !vectorOKForModulus(uint64(1)<<55-55, 32) {
		t.Fatal("55-bit prime at n=32 should be vector-eligible")
	}
}
