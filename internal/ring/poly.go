package ring

import (
	"fmt"
	"sync/atomic"
)

// Poly is a polynomial in Z_Q[x]/(x^N+1) stored in RNS form: Coeffs[i][j]
// is coefficient j reduced modulo the i-th prime of the chain. A Poly
// "lives" at a level: level ℓ means primes 0..ℓ are active, so
// len(Coeffs) == ℓ+1. IsNTT records whether the coefficients are in
// evaluation (NTT) domain.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// Level returns the level of p (number of active primes minus one).
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// N returns the ring degree.
func (p *Poly) N() int { return len(p.Coeffs[0]) }

// Copy returns a deep copy of p.
func (p *Poly) Copy() *Poly {
	out := &Poly{Coeffs: make([][]uint64, len(p.Coeffs)), IsNTT: p.IsNTT}
	for i := range p.Coeffs {
		out.Coeffs[i] = make([]uint64, len(p.Coeffs[i]))
		copy(out.Coeffs[i], p.Coeffs[i])
	}
	return out
}

// DropLevel removes the top prime's residues, lowering the level by one.
// It does not rescale; callers wanting BGV modulus switching should use
// the scheme-level operation.
func (p *Poly) DropLevel() {
	p.Coeffs = p.Coeffs[:len(p.Coeffs)-1]
}

// Context bundles a ring degree, a chain of NTT-friendly primes and the
// plaintext modulus, along with the precomputation needed for CRT
// reconstruction at every level.
type Context struct {
	N      int
	LogN   int
	Moduli []*Modulus // prime chain q_0 .. q_L
	T      uint64     // plaintext modulus

	crt  []*crtLevel // per-level CRT reconstruction tables
	pool polyPools   // level-keyed polynomial recycling (pool.go)
	rows rowPool     // single-prime scratch rows

	// workers is the optional intra-op pool fanning per-limb work across
	// cores (workers.go). Atomic so attachment races with concurrent op
	// traffic are safe; nil means every op runs its serial loop.
	workers atomic.Pointer[Workers]

	// pointwiseCutoff is the tunable parallelism threshold for pointwise
	// ops (see SetPointwiseParCutoff); atomic for the same reason as
	// workers. Zero is never stored (NewContext seeds the default).
	pointwiseCutoff atomic.Int64

	// vecRows routes eligible pointwise rows to the vector backend
	// (vector.go); captured from the package default at construction,
	// retunable via SetVectorKernels. The transform kernels carry their
	// own per-Modulus selection.
	vecRows atomic.Bool

	// tileBytes is the cache-tiling target for the limb scheduler: Run
	// fan-outs hand each worker round-robin tiles of
	// ceil(tileBytes / rowBytes) limbs instead of one contiguous span,
	// so the limb→worker assignment is stable across consecutive ops of
	// a pass even as levels drop (workers.go). Zero is never stored.
	tileBytes atomic.Int64

	// limbHint is the advisory fixed-limb-count plan installed by
	// SetStageLimbHint (generated kernels hint their stage's exact limb
	// count); ops whose limb count matches skip the per-op dispatch
	// decision. Never load-bearing: a mismatched hint falls back to the
	// generic decision, so correctness cannot depend on it.
	limbHint atomic.Pointer[limbPlan]
}

// limbPlan is a precomputed dispatch decision for one exact limb count:
// the worker pool to fan to for transform-sized and pointwise ops (nil =
// serial) and the tile grain. See SetStageLimbHint.
type limbPlan struct {
	m           int
	transformWS *Workers
	pointwiseWS *Workers
	grain       int
}

// NewContext creates a ring context for degree n = 2^logN with the given
// prime chain and plaintext modulus. Every prime must be ≡ 1 mod 2n (for
// the NTT) and ≡ 1 mod t (so BGV modulus switching does not scale the
// plaintext).
func NewContext(logN int, primes []uint64, t uint64) (*Context, error) {
	if logN < 4 || logN > 16 {
		return nil, fmt.Errorf("ring: logN %d out of range [4,16]", logN)
	}
	n := 1 << logN
	ctx := &Context{N: n, LogN: logN, T: t}
	for _, q := range primes {
		if q%t != 1 {
			return nil, fmt.Errorf("ring: prime %d is not congruent to 1 mod t=%d", q, t)
		}
		m, err := NewModulus(q, n)
		if err != nil {
			return nil, err
		}
		ctx.Moduli = append(ctx.Moduli, m)
	}
	if len(ctx.Moduli) == 0 {
		return nil, fmt.Errorf("ring: empty prime chain")
	}
	ctx.pointwiseCutoff.Store(DefaultPointwiseParCutoff)
	ctx.tileBytes.Store(DefaultTileBytes)
	ctx.vecRows.Store(vectorDefault.Load())
	ctx.buildCRT()
	return ctx, nil
}

// SetVectorKernels selects the scalar or vector backend for this
// context's pointwise rows and for every Modulus of its chain
// (transforms). Enabling is a no-op on hosts without vector support.
// Results are bit-identical either way; this is the per-context ablation
// knob behind copse.WithVectorKernels / copse-bench -novec. Safe to call
// concurrently with op traffic.
func (ctx *Context) SetVectorKernels(on bool) {
	on = on && vectorAvailable()
	ctx.vecRows.Store(on)
	for _, m := range ctx.Moduli {
		m.SetVectorKernels(on)
	}
}

// VectorKernels reports whether this context routes eligible rows to the
// vector backend.
func (ctx *Context) VectorKernels() bool { return ctx.vecRows.Load() }

// SetWorkers attaches an intra-op worker pool: NTTs, key-switch inner
// products, modulus switches and (above a size cutoff) pointwise ops run
// their per-limb loops on the pool instead of serially. nil detaches.
// Results are bit-identical either way (each limb writes only its own
// row). Safe to call concurrently with op traffic.
func (ctx *Context) SetWorkers(ws *Workers) { ctx.workers.Store(ws) }

// WorkerCount reports the attached pool's concurrency (1 = serial).
func (ctx *Context) WorkerCount() int { return ctx.workers.Load().Size() }

// CloseWorkers detaches and closes the attached pool, releasing its
// resident goroutines; it blocks until in-flight fan-outs drain (ops
// racing the close fall back to their serial loops). A no-op when no
// pool is attached.
func (ctx *Context) CloseWorkers() {
	if ws := ctx.workers.Swap(nil); ws != nil {
		ws.Close()
	}
}

// DefaultPointwiseParCutoff is the default total element count
// (limbs × N) below which pointwise ops stay on the serial path: the
// small back-half ops of a level-scheduled pipeline (2 limbs at N=2048)
// finish faster than a dispatch round-trip. Tune per host with
// SetPointwiseParCutoff.
const DefaultPointwiseParCutoff = 1 << 14

// SetPointwiseParCutoff tunes the pointwise-parallelism threshold: ops
// touching fewer than n total elements (limbs × N) run their serial
// loop even with a worker pool attached. 1 (or any n ≤ N) parallelizes
// every multi-limb pointwise op; a huge n pins them all serial (the
// transform-sized ops — NTT, modulus switch, decompose — always
// parallelize and are not governed by this knob). Results are
// bit-identical at any cutoff; this trades dispatch overhead against
// fan-out, so the right value is a per-host measurement. Safe to call
// concurrently with op traffic; n ≤ 0 restores the default.
func (ctx *Context) SetPointwiseParCutoff(n int) {
	if n <= 0 {
		n = DefaultPointwiseParCutoff
	}
	ctx.pointwiseCutoff.Store(int64(n))
}

// PointwiseParCutoff reports the active pointwise-parallelism threshold.
func (ctx *Context) PointwiseParCutoff() int { return int(ctx.pointwiseCutoff.Load()) }

// DefaultTileBytes is the default cache-tiling target: tiles are sized
// so one tile's rows (~8·N bytes each) fit a mid-size L2 slice, keeping
// a limb's working set resident on the worker that owns it across the
// fused passes of consecutive ops. At Security128 (N=32768, 256 KiB per
// row) this yields 4-limb tiles; tune per host with SetTileBytes.
const DefaultTileBytes = 1 << 20

// SetTileBytes tunes the cache-tiling target for limb fan-outs; n ≤ 0
// restores the default. Results are bit-identical at any tile size (the
// scheduler executes every index exactly once; only the limb→worker
// placement changes). Safe to call concurrently with op traffic.
func (ctx *Context) SetTileBytes(n int) {
	if n <= 0 {
		n = DefaultTileBytes
	}
	ctx.tileBytes.Store(int64(n))
}

// TileBytes reports the active cache-tiling target.
func (ctx *Context) TileBytes() int { return int(ctx.tileBytes.Load()) }

// tileGrain is the number of limbs per scheduler tile: enough rows to
// fill the tile-bytes target, at least one. Independent of the limb
// count of any particular op, which is what makes the round-robin
// tile→worker assignment stable across the ops of a pass (workers.go).
func (ctx *Context) tileGrain() int {
	g := int(ctx.tileBytes.Load()) / (8 * ctx.N)
	if g < 1 {
		g = 1
	}
	return g
}

// SetStageLimbHint installs an advisory dispatch plan for ops over
// exactly m limbs: the per-op pool/cutoff/grain decision is precomputed
// once, and ops whose limb count matches use it directly. Generated
// specialized kernels hint each pipeline stage's exact limb count
// (KernelCtx.StageLimbs); m ≤ 0 clears the hint. The hint is advisory —
// ops at any other limb count take the generic decision path — so a
// stale or concurrent hint can never change results, only dispatch cost.
func (ctx *Context) SetStageLimbHint(m int) {
	if m <= 0 {
		ctx.limbHint.Store(nil)
		return
	}
	plan := &limbPlan{m: m, grain: ctx.tileGrain()}
	if m > 1 {
		ws := ctx.workers.Load()
		plan.transformWS = ws
		if int64(m*ctx.N) >= ctx.pointwiseCutoff.Load() {
			plan.pointwiseWS = ws
		}
	}
	ctx.limbHint.Store(plan)
}

// StageLimbHint reports the installed hint's limb count (0 = none).
func (ctx *Context) StageLimbHint() int {
	if p := ctx.limbHint.Load(); p != nil {
		return p.m
	}
	return 0
}

// limbWorkers returns the pool to fan m limbs across (nil = serial) and
// the tile grain for the fan-out. Pointwise ops (a few ns per element)
// additionally require the total element count to clear the pointwise
// cutoff; the transform-sized ops (NTT, modulus switch, decompose)
// parallelize whenever more than one limb is active. A matching stage
// limb hint short-circuits the whole decision.
func (ctx *Context) limbWorkers(m int, pointwise bool) (*Workers, int) {
	if p := ctx.limbHint.Load(); p != nil && p.m == m {
		if pointwise {
			return p.pointwiseWS, p.grain
		}
		return p.transformWS, p.grain
	}
	if m <= 1 || (pointwise && int64(m*ctx.N) < ctx.pointwiseCutoff.Load()) {
		return nil, 1
	}
	return ctx.workers.Load(), ctx.tileGrain()
}

// MaxLevel returns the highest level supported by the chain.
func (ctx *Context) MaxLevel() int { return len(ctx.Moduli) - 1 }

// NewPoly allocates a zero polynomial at the given level.
func (ctx *Context) NewPoly(level int) *Poly {
	p := &Poly{Coeffs: make([][]uint64, level+1)}
	for i := range p.Coeffs {
		p.Coeffs[i] = make([]uint64, ctx.N)
	}
	return p
}

// NTT converts p to evaluation domain in place, transforming limbs
// concurrently when a worker pool is attached.
func (ctx *Context) NTT(p *Poly) {
	if p.IsNTT {
		panic("ring: NTT of a poly already in NTT domain")
	}
	m := len(p.Coeffs)
	if ws, grain := ctx.limbWorkers(m, false); ws != nil {
		ws.RunTiled(m, grain, func(i int) { ctx.Moduli[i].NTT(p.Coeffs[i]) })
	} else {
		for i := 0; i < m; i++ {
			ctx.Moduli[i].NTT(p.Coeffs[i])
		}
	}
	p.IsNTT = true
}

// INTT converts p to coefficient domain in place, transforming limbs
// concurrently when a worker pool is attached.
func (ctx *Context) INTT(p *Poly) {
	if !p.IsNTT {
		panic("ring: INTT of a poly already in coefficient domain")
	}
	m := len(p.Coeffs)
	if ws, grain := ctx.limbWorkers(m, false); ws != nil {
		ws.RunTiled(m, grain, func(i int) { ctx.Moduli[i].INTT(p.Coeffs[i]) })
	} else {
		for i := 0; i < m; i++ {
			ctx.Moduli[i].INTT(p.Coeffs[i])
		}
	}
	p.IsNTT = false
}

// Per-limb pointwise kernels. Free functions over plain rows keep the
// serial paths closure-free (no allocation) and give the parallel paths
// one shared body. Each has a scalar body plus a dispatcher that routes
// eligible rows (rowVecOK) to the vector backend; the two paths are
// bit-identical (vector.go).

func addRowScalar(q uint64, a, b, out []uint64) {
	for j := range out {
		out[j] = AddMod(a[j], b[j], q)
	}
}

func addRow(vec bool, q uint64, a, b, out []uint64) {
	if rowVecOK(vec, q, len(out)) {
		addVecAsm(q, a, b, out)
		return
	}
	addRowScalar(q, a, b, out)
}

func subRowScalar(q uint64, a, b, out []uint64) {
	for j := range out {
		out[j] = SubMod(a[j], b[j], q)
	}
}

func subRow(vec bool, q uint64, a, b, out []uint64) {
	if rowVecOK(vec, q, len(out)) {
		subVecAsm(q, a, b, out)
		return
	}
	subRowScalar(q, a, b, out)
}

func negRowScalar(q uint64, a, out []uint64) {
	for j := range out {
		out[j] = NegMod(a[j], q)
	}
}

func negRow(vec bool, q uint64, a, out []uint64) {
	if rowVecOK(vec, q, len(out)) {
		negVecAsm(q, a, out)
		return
	}
	negRowScalar(q, a, out)
}

func mulRowScalar(q uint64, a, b, out []uint64) {
	for j := range out {
		out[j] = MulMod(a[j], b[j], q)
	}
}

func mulRow(vec bool, q uint64, a, b, out []uint64) {
	if rowVecOK(vec, q, len(out)) {
		mulVecAsm(q, a, b, out)
		return
	}
	mulRowScalar(q, a, b, out)
}

func mulAddRowScalar(q uint64, a, b, out []uint64) {
	for j := range out {
		out[j] = AddMod(out[j], MulMod(a[j], b[j], q), q)
	}
}

func mulAddRow(vec bool, q uint64, a, b, out []uint64) {
	if rowVecOK(vec, q, len(out)) {
		mulAddVecAsm(q, a, b, out)
		return
	}
	mulAddRowScalar(q, a, b, out)
}

func mulShoupAddRowScalar(q uint64, a, b, bs, out []uint64) {
	for j := range out {
		out[j] = AddMod(out[j], MulModShoup(a[j], b[j], bs[j], q), q)
	}
}

func mulShoupAddRow(vec bool, q uint64, a, b, bs, out []uint64) {
	if rowVecOK(vec, q, len(out)) {
		mulShoupAddVecAsm(q, a, b, bs, out)
		return
	}
	mulShoupAddRowScalar(q, a, b, bs, out)
}

func mulScalarRowScalar(q, c, cs uint64, a, out []uint64) {
	for j := range out {
		out[j] = MulModShoup(a[j], c, cs, q)
	}
}

func mulScalarRow(vec bool, q, c, cs uint64, a, out []uint64) {
	if rowVecOK(vec, q, len(out)) {
		mulScalarVecAsm(q, c, cs, a, out)
		return
	}
	mulScalarRowScalar(q, c, cs, a, out)
}

// Add sets out = a + b. All three must share a level and domain.
func (ctx *Context) Add(a, b, out *Poly) {
	m := len(out.Coeffs)
	vec := ctx.vecRows.Load()
	if ws, grain := ctx.limbWorkers(m, true); ws != nil {
		ws.RunTiled(m, grain, func(i int) { addRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := 0; i < m; i++ {
			addRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// Sub sets out = a - b.
func (ctx *Context) Sub(a, b, out *Poly) {
	m := len(out.Coeffs)
	vec := ctx.vecRows.Load()
	if ws, grain := ctx.limbWorkers(m, true); ws != nil {
		ws.RunTiled(m, grain, func(i int) { subRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := 0; i < m; i++ {
			subRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// Neg sets out = -a.
func (ctx *Context) Neg(a, out *Poly) {
	m := len(out.Coeffs)
	vec := ctx.vecRows.Load()
	if ws, grain := ctx.limbWorkers(m, true); ws != nil {
		ws.RunTiled(m, grain, func(i int) { negRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := 0; i < m; i++ {
			negRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// MulCoeffs sets out = a ⊙ b (pointwise). Both inputs must be in NTT
// domain, where the pointwise product realizes negacyclic convolution.
func (ctx *Context) MulCoeffs(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffs requires NTT-domain operands")
	}
	m := len(out.Coeffs)
	vec := ctx.vecRows.Load()
	if ws, grain := ctx.limbWorkers(m, true); ws != nil {
		ws.RunTiled(m, grain, func(i int) { mulRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := 0; i < m; i++ {
			mulRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = true
}

// MulCoeffsAdd sets out += a ⊙ b (pointwise, NTT domain).
func (ctx *Context) MulCoeffsAdd(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffsAdd requires NTT-domain operands")
	}
	m := len(out.Coeffs)
	vec := ctx.vecRows.Load()
	if ws, grain := ctx.limbWorkers(m, true); ws != nil {
		ws.RunTiled(m, grain, func(i int) { mulAddRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := 0; i < m; i++ {
			mulAddRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = true
}

// PolyShoup is the per-coefficient Shoup companion table of a fixed
// NTT-domain polynomial, enabling division-free pointwise products
// against it. Key-switching keys are the intended use: they are
// multiplied against every digit of every key switch, so the one-time
// precomputation pays for itself immediately.
type PolyShoup struct {
	S [][]uint64
}

// ShoupPoly precomputes the companion table of p (which must be fully
// reduced; NTT domain in practice).
func (ctx *Context) ShoupPoly(p *Poly) *PolyShoup {
	s := make([][]uint64, len(p.Coeffs))
	for i := range p.Coeffs {
		q := ctx.Moduli[i].Q
		row := make([]uint64, len(p.Coeffs[i]))
		for j, w := range p.Coeffs[i] {
			row[j] = ShoupPrecomp(w, q)
		}
		s[i] = row
	}
	return &PolyShoup{S: s}
}

// MulCoeffsShoupAdd sets out += a ⊙ b (pointwise, NTT domain), where bs
// is b's Shoup companion table. b may live at a higher level than out;
// only out's active primes are touched. This is the key-switch inner
// product, the hottest pointwise loop of the evaluator.
func (ctx *Context) MulCoeffsShoupAdd(a, b *Poly, bs *PolyShoup, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffsShoupAdd requires NTT-domain operands")
	}
	m := len(out.Coeffs)
	vec := ctx.vecRows.Load()
	if ws, grain := ctx.limbWorkers(m, true); ws != nil {
		ws.RunTiled(m, grain, func(i int) {
			mulShoupAddRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], bs.S[i], out.Coeffs[i])
		})
	} else {
		for i := 0; i < m; i++ {
			mulShoupAddRow(vec, ctx.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], bs.S[i], out.Coeffs[i])
		}
	}
	out.IsNTT = true
}

// MulScalar sets out = a * c for a word-sized scalar c.
func (ctx *Context) MulScalar(a *Poly, c uint64, out *Poly) {
	m := len(out.Coeffs)
	vec := ctx.vecRows.Load()
	if ws, grain := ctx.limbWorkers(m, true); ws != nil {
		ws.RunTiled(m, grain, func(i int) {
			q := ctx.Moduli[i].Q
			cq := c % q
			mulScalarRow(vec, q, cq, ShoupPrecomp(cq, q), a.Coeffs[i], out.Coeffs[i])
		})
	} else {
		for i := 0; i < m; i++ {
			q := ctx.Moduli[i].Q
			cq := c % q
			mulScalarRow(vec, q, cq, ShoupPrecomp(cq, q), a.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// Automorphism applies the Galois map x -> x^g (g odd) to a
// coefficient-domain polynomial: out_k = ±a_j where j*g ≡ k (mod 2N) and
// the sign accounts for x^N = -1.
func (ctx *Context) Automorphism(a *Poly, g uint64, out *Poly) {
	if a.IsNTT {
		panic("ring: Automorphism requires coefficient-domain input")
	}
	if a == out {
		panic("ring: Automorphism cannot run in place")
	}
	n := uint64(ctx.N)
	mask := 2*n - 1
	for i := range out.Coeffs {
		q := ctx.Moduli[i].Q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			k := (j * g) & mask
			if k < n {
				oi[k] = ai[j]
			} else {
				oi[k-n] = NegMod(ai[j], q)
			}
		}
	}
	out.IsNTT = false
}

// CopyInto copies src into dst, which must share src's level. Together
// with GetPoly this replaces Copy on hot paths.
func (ctx *Context) CopyInto(src, dst *Poly) {
	for i := range src.Coeffs {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
	dst.IsNTT = src.IsNTT
}

// SetLift fills p (coefficient domain) with the given small signed
// coefficients, reducing each into every active prime.
func (ctx *Context) SetLift(coeffs []int64, p *Poly) {
	for i := range p.Coeffs {
		q := ctx.Moduli[i].Q
		pi := p.Coeffs[i]
		for j, c := range coeffs {
			if c >= 0 {
				pi[j] = uint64(c) % q
			} else {
				pi[j] = q - (uint64(-c) % q)
				if pi[j] == q {
					pi[j] = 0
				}
			}
		}
	}
	p.IsNTT = false
}
