//go:build !amd64 || purego

package ring

// Portable fallback: no vector backend. The scalar fused kernels in
// ntt.go and the scalar rows in poly.go are the implementation. The
// stubs below are never reached (vectorAvailable is false, so no
// Modulus or row dispatch ever selects them); they exist to keep the
// call sites build-tag-free.

func vectorAvailable() bool { return false }

func (m *Modulus) nttVec(a []uint64)  { m.nttScalar(a) }
func (m *Modulus) inttVec(a []uint64) { m.inttScalar(a) }

func addVecAsm(q uint64, a, b, out []uint64)    { addRowScalar(q, a, b, out) }
func subVecAsm(q uint64, a, b, out []uint64)    { subRowScalar(q, a, b, out) }
func negVecAsm(q uint64, a, out []uint64)       { negRowScalar(q, a, out) }
func mulVecAsm(q uint64, a, b, out []uint64)    { mulRowScalar(q, a, b, out) }
func mulAddVecAsm(q uint64, a, b, out []uint64) { mulAddRowScalar(q, a, b, out) }
func mulShoupAddVecAsm(q uint64, a, b, bs, out []uint64) {
	mulShoupAddRowScalar(q, a, b, bs, out)
}
func mulScalarVecAsm(q, c, cs uint64, a, out []uint64) { mulScalarRowScalar(q, c, cs, a, out) }
