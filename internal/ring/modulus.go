// Package ring implements arithmetic over RNS polynomial rings
// Z_Q[x]/(x^N+1) with N a power of two and Q a product of word-sized
// NTT-friendly primes. It provides the negacyclic number-theoretic
// transform, modular arithmetic primitives, polynomial samplers, and CRT
// reconstruction. It is the lattice substrate for the BGV scheme in
// package bgv.
package ring

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Modulus holds a single NTT-friendly prime together with the precomputed
// tables needed to run negacyclic NTTs of size N over Z_q.
type Modulus struct {
	Q    uint64 // the prime
	N    int    // transform size (power of two)
	LogN int

	psi    uint64 // primitive 2N-th root of unity mod Q
	psiInv uint64 // psi^{-1} mod Q
	nInv   uint64 // N^{-1} mod Q
	nInvS  uint64 // Shoup precomputation for nInv

	// Powers of psi (resp. psi^{-1}) in bit-reversed order, with Shoup
	// companions, as used by the iterative Cooley-Tukey / Gentleman-Sande
	// butterflies.
	psiRev     []uint64
	psiRevS    []uint64
	psiInvRev  []uint64
	psiInvRevS []uint64

	// vec selects the AVX2 transform kernels for this modulus. Captured
	// once at construction from the package default (and the per-modulus
	// eligibility gate, vectorOKForModulus); SetVectorKernels retunes it.
	vec bool
}

// SetVectorKernels enables or disables the vector transform kernels for
// this modulus. Enabling is a no-op when the host lacks the backend or
// the modulus fails the eligibility gate. Not safe to call concurrently
// with transforms on the same modulus.
func (m *Modulus) SetVectorKernels(on bool) {
	m.vec = on && vectorAvailable() && vectorOKForModulus(m.Q, m.N)
}

// VectorKernels reports whether this modulus transforms via the vector
// kernels.
func (m *Modulus) VectorKernels() bool { return m.vec }

// AddMod returns x+y mod q. Inputs must be fully reduced.
func AddMod(x, y, q uint64) uint64 {
	r := x + y
	if r >= q {
		r -= q
	}
	return r
}

// SubMod returns x-y mod q. Inputs must be fully reduced.
func SubMod(x, y, q uint64) uint64 {
	r := x - y
	if x < y {
		r += q
	}
	return r
}

// NegMod returns -x mod q. Input must be fully reduced.
func NegMod(x, q uint64) uint64 {
	if x == 0 {
		return 0
	}
	return q - x
}

// MulMod returns x*y mod q via a 128-bit product. Inputs must be fully
// reduced and q < 2^63.
func MulMod(x, y, q uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	_, rem := bits.Div64(hi, lo, q)
	return rem
}

// ShoupPrecomp returns floor(w * 2^64 / q), the companion constant for
// MulModShoup. Requires w < q.
func ShoupPrecomp(w, q uint64) uint64 {
	quo, _ := bits.Div64(w, 0, q)
	return quo
}

// MulModShoup returns x*w mod q using the Shoup trick: ws must be
// ShoupPrecomp(w, q). Requires q < 2^63. The result is fully reduced.
func MulModShoup(x, w, ws, q uint64) uint64 {
	hi, _ := bits.Mul64(x, ws)
	r := x*w - hi*q
	if r >= q {
		r -= q
	}
	return r
}

// MulModShoupLazy is MulModShoup without the final conditional
// subtraction: the result lies in [0, 2q). It accepts any x (not just
// fully reduced values), which is what allows the NTT butterflies to
// defer reduction.
func MulModShoupLazy(x, w, ws, q uint64) uint64 {
	hi, _ := bits.Mul64(x, ws)
	return x*w - hi*q
}

// PowMod returns x^e mod q.
func PowMod(x, e, q uint64) uint64 {
	r := uint64(1)
	base := x % q
	for e > 0 {
		if e&1 == 1 {
			r = MulMod(r, base, q)
		}
		base = MulMod(base, base, q)
		e >>= 1
	}
	return r
}

// InvMod returns x^{-1} mod q for prime q.
func InvMod(x, q uint64) uint64 {
	return PowMod(x, q-2, q)
}

// bitrev reverses the low `bits` bits of x.
func bitrev(x uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// GeneratePrimes returns `count` distinct primes of roughly bitLen bits,
// each congruent to 1 modulo step. It scans downward from 2^bitLen so the
// largest suitable primes are found first.
func GeneratePrimes(bitLen int, step uint64, count int) ([]uint64, error) {
	if bitLen < 20 || bitLen > 61 {
		return nil, fmt.Errorf("ring: prime bit length %d out of range [20,61]", bitLen)
	}
	primes := make([]uint64, 0, count)
	upper := uint64(1) << uint(bitLen)
	// Largest multiple of step at or below upper, plus one.
	cand := (upper/step)*step + 1
	b := new(big.Int)
	// Cap the scan: by prime density a legitimate request finds each
	// prime within ~bitLen candidates, so a search still short after a
	// million is an impossible request (step too close to 2^bitLen) —
	// fail it instead of grinding Miller-Rabin to the bottom of the
	// range. Decoded wire parameters reach here, so this must not spin.
	scanned := 0
	const scanBudget = 1 << 20
	for cand > step && len(primes) < count {
		if scanned++; scanned > scanBudget {
			return nil, fmt.Errorf("ring: found only %d/%d primes of %d bits with step %d within scan budget", len(primes), count, bitLen, step)
		}
		if cand <= upper {
			b.SetUint64(cand)
			if b.ProbablyPrime(20) {
				primes = append(primes, cand)
			}
		}
		if cand < step {
			break
		}
		cand -= step
	}
	if len(primes) < count {
		return nil, fmt.Errorf("ring: found only %d/%d primes of %d bits with step %d", len(primes), count, bitLen, step)
	}
	return primes, nil
}

// NewModulus builds the NTT tables for prime q and transform size n (a
// power of two). q must satisfy q ≡ 1 (mod 2n).
func NewModulus(q uint64, n int) (*Modulus, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: transform size %d is not a power of two", n)
	}
	if (q-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("ring: prime %d is not congruent to 1 mod %d", q, 2*n)
	}
	if q >= 1<<62 {
		return nil, fmt.Errorf("ring: prime %d exceeds 62 bits (lazy NTT reduction bound)", q)
	}
	logN := bits.TrailingZeros(uint(n))
	psi, err := primitiveRoot2N(q, uint64(n))
	if err != nil {
		return nil, err
	}
	m := &Modulus{
		Q:    q,
		N:    n,
		LogN: logN,
		psi:  psi,
		vec:  vectorDefault.Load() && vectorOKForModulus(q, n),
	}
	m.psiInv = InvMod(psi, q)
	m.nInv = InvMod(uint64(n), q)
	m.nInvS = ShoupPrecomp(m.nInv, q)

	m.psiRev = make([]uint64, n)
	m.psiRevS = make([]uint64, n)
	m.psiInvRev = make([]uint64, n)
	m.psiInvRevS = make([]uint64, n)
	fwd := uint64(1)
	inv := uint64(1)
	pows := make([]uint64, n)
	powsInv := make([]uint64, n)
	for i := 0; i < n; i++ {
		pows[i] = fwd
		powsInv[i] = inv
		fwd = MulMod(fwd, psi, q)
		inv = MulMod(inv, m.psiInv, q)
	}
	for i := 0; i < n; i++ {
		r := bitrev(uint64(i), logN)
		m.psiRev[i] = pows[r]
		m.psiRevS[i] = ShoupPrecomp(pows[r], q)
		m.psiInvRev[i] = powsInv[r]
		m.psiInvRevS[i] = ShoupPrecomp(powsInv[r], q)
	}
	return m, nil
}

// primitiveRoot2N finds a primitive 2n-th root of unity modulo prime q,
// i.e. psi with psi^n ≡ -1 (mod q). The search is deterministic so that
// parameter generation is reproducible.
func primitiveRoot2N(q, n uint64) (uint64, error) {
	exp := (q - 1) / (2 * n)
	for h := uint64(2); h < 1<<20; h++ {
		psi := PowMod(h, exp, q)
		if PowMod(psi, n, q) == q-1 {
			return psi, nil
		}
	}
	return 0, fmt.Errorf("ring: no primitive 2*%d-th root of unity mod %d", n, q)
}
