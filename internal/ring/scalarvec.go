package ring

// MulScalarVec sets out = a * c where c gives one scalar per active prime
// (already reduced modulo that prime). It is used for gadget factors
// 2^{kw} mod q_i that exceed 64 bits as integers.
func (ctx *Context) MulScalarVec(a *Poly, c []uint64, out *Poly) {
	m := len(out.Coeffs)
	if ws := ctx.limbWorkers(m, true); ws != nil {
		ws.Run(m, func(i int) {
			q := ctx.Moduli[i].Q
			mulScalarRow(q, c[i], ShoupPrecomp(c[i], q), a.Coeffs[i], out.Coeffs[i])
		})
	} else {
		for i := 0; i < m; i++ {
			q := ctx.Moduli[i].Q
			mulScalarRow(q, c[i], ShoupPrecomp(c[i], q), a.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}
