package ring

// MulScalarVec sets out = a * c where c gives one scalar per active prime
// (already reduced modulo that prime). It is used for gadget factors
// 2^{kw} mod q_i that exceed 64 bits as integers.
func (ctx *Context) MulScalarVec(a *Poly, c []uint64, out *Poly) {
	m := len(out.Coeffs)
	vec := ctx.vecRows.Load()
	if ws, grain := ctx.limbWorkers(m, true); ws != nil {
		ws.RunTiled(m, grain, func(i int) {
			q := ctx.Moduli[i].Q
			mulScalarRow(vec, q, c[i], ShoupPrecomp(c[i], q), a.Coeffs[i], out.Coeffs[i])
		})
	} else {
		for i := 0; i < m; i++ {
			q := ctx.Moduli[i].Q
			mulScalarRow(vec, q, c[i], ShoupPrecomp(c[i], q), a.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}
