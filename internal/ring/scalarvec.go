package ring

// MulScalarVec sets out = a * c where c gives one scalar per active prime
// (already reduced modulo that prime). It is used for gadget factors
// 2^{kw} mod q_i that exceed 64 bits as integers.
func (ctx *Context) MulScalarVec(a *Poly, c []uint64, out *Poly) {
	for i := range out.Coeffs {
		q := ctx.Moduli[i].Q
		cs := ShoupPrecomp(c[i], q)
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = MulModShoup(ai[j], c[i], cs, q)
		}
	}
	out.IsNTT = a.IsNTT
}
