//go:build amd64 && !purego

package ring

// AVX2 vector backend. The assembly kernels in ntt_amd64.s evaluate
// exactly the same uint64 formulas as the scalar kernels — the same
// Harvey lazy-reduction butterflies with the same [0, 4q) intermediate
// bounds — four lanes at a time, so the outputs are bit-identical to
// the scalar path (asserted by TestVectorKernelsMatchScalar and
// FuzzVectorVsScalar).
//
// AVX2 has neither an unsigned 64-bit compare nor a 64×64→128 multiply,
// so the kernels:
//
//   - substitute signed VPCMPGTQ for the conditional subtractions,
//     which is sound because vectorOKForModulus gates q < 2^61 and
//     every compared intermediate stays below 2^63 (see DESIGN.md §14);
//   - build the 64×64 high/low products from 32-bit VPMULUDQ halves
//     (4 multiplies + carry combine for the high word, 3 for the low).
//
// The fully-reduced MulMod rows additionally gate q > 2^32 so the
// 2^32-radix split reduction below stays inside the lazy bounds.

// vectorAvailable reports whether the host CPU supports the AVX2
// kernels (AVX2 + OS-enabled YMM state). Computed once at init — the
// result feeds the package default that NewModulus/NewContext capture.
var vectorAvailableCached = probeAVX2()

func vectorAvailable() bool { return vectorAvailableCached }

// probeAVX2 checks CPUID for AVX2 and XGETBV for OS support of the
// XMM+YMM register state. No external cpu-feature package is used; the
// two tiny assembly shims below are the whole probe.
func probeAVX2() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX state) must both be enabled by
	// the OS or the ymm registers are not preserved across context
	// switches.
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

//go:noescape
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

// Transform sweep kernels. All operate on full rows whose length is a
// multiple of 8 (vectorOKForModulus gates n ≥ 32).

//go:noescape
func nttFwdFused1AVX2(a []uint64, w1, w1s, w2, w2s, w3, w3s, q uint64)

//go:noescape
func nttLayerFwdAVX2(a, psiRev, psiRevS []uint64, grp, t int, q uint64)

//go:noescape
func nttFwdTailAVX2(a, psiRev, psiRevS []uint64, q uint64)

//go:noescape
func inttHeadAVX2(a, psiInvRev, psiInvRevS []uint64, q uint64)

//go:noescape
func inttLayerAVX2(a, psiInvRev, psiInvRevS []uint64, grp, t int, q uint64)

//go:noescape
func inttTailAVX2(a []uint64, w1, w1s, w2, w2s, w3, w3s, nInv, nInvS, q uint64)

// Pointwise kernels. Each processes len/4 vector steps; the Go wrappers
// below run the scalar kernel on the ragged tail.

//go:noescape
func addVecAVX2(q uint64, a, b, out []uint64)

//go:noescape
func subVecAVX2(q uint64, a, b, out []uint64)

//go:noescape
func negVecAVX2(q uint64, a, out []uint64)

//go:noescape
func mulVecAVX2(q, r32, r32s uint64, a, b, out []uint64)

//go:noescape
func mulAddVecAVX2(q, r32, r32s uint64, a, b, out []uint64)

//go:noescape
func mulShoupAddVecAVX2(q uint64, a, b, bs, out []uint64)

//go:noescape
func mulScalarVecAVX2(q, c, cs uint64, a, out []uint64)

// nttVec is the vector forward transform: the same fused pass
// structure as nttScalar (fused first double layer, per-layer middle
// sweeps, fused final double layer with the [0, q) reduction folded
// in), with each pass running the AVX2 kernel.
func (m *Modulus) nttVec(a []uint64) {
	n := m.N
	q := m.Q
	quarter := n >> 2
	nttFwdFused1AVX2(a,
		m.psiRev[1], m.psiRevS[1],
		m.psiRev[2], m.psiRevS[2],
		m.psiRev[3], m.psiRevS[3], q)
	t := n >> 3
	for grp := 4; grp < quarter; grp <<= 1 {
		nttLayerFwdAVX2(a, m.psiRev, m.psiRevS, grp, t, q)
		t >>= 1
	}
	nttFwdTailAVX2(a, m.psiRev, m.psiRevS, q)
}

// inttVec is the vector inverse transform, mirroring inttScalar: fused
// first double layer, per-layer middle sweeps, fused final double layer
// with the 1/N scaling and [0, q) reduction folded in.
func (m *Modulus) inttVec(a []uint64) {
	n := m.N
	q := m.Q
	inttHeadAVX2(a, m.psiInvRev, m.psiInvRevS, q)
	t := 4
	for grp := n >> 3; grp >= 4; grp >>= 1 {
		inttLayerAVX2(a, m.psiInvRev, m.psiInvRevS, grp, t, q)
		t <<= 1
	}
	inttTailAVX2(a,
		m.psiInvRev[1], m.psiInvRevS[1],
		m.psiInvRev[2], m.psiInvRevS[2],
		m.psiInvRev[3], m.psiInvRevS[3],
		m.nInv, m.nInvS, q)
}

// r32ModQ returns 2^32 mod q and its Shoup companion — the radix
// constants of the vectorized MulMod split reduction.
func r32ModQ(q uint64) (uint64, uint64) {
	r32 := (uint64(1) << 32) % q
	return r32, ShoupPrecomp(r32, q)
}

// The *VecAsm wrappers run the AVX2 kernel over the 4-aligned prefix
// and the scalar kernel over the ragged tail (rows in practice are
// power-of-two length, so the tail is empty).

func addVecAsm(q uint64, a, b, out []uint64) {
	n := len(out) &^ 3
	addVecAVX2(q, a[:n], b[:n], out[:n])
	if n < len(out) {
		addRowScalar(q, a[n:], b[n:], out[n:])
	}
}

func subVecAsm(q uint64, a, b, out []uint64) {
	n := len(out) &^ 3
	subVecAVX2(q, a[:n], b[:n], out[:n])
	if n < len(out) {
		subRowScalar(q, a[n:], b[n:], out[n:])
	}
}

func negVecAsm(q uint64, a, out []uint64) {
	n := len(out) &^ 3
	negVecAVX2(q, a[:n], out[:n])
	if n < len(out) {
		negRowScalar(q, a[n:], out[n:])
	}
}

func mulVecAsm(q uint64, a, b, out []uint64) {
	n := len(out) &^ 3
	r32, r32s := r32ModQ(q)
	mulVecAVX2(q, r32, r32s, a[:n], b[:n], out[:n])
	if n < len(out) {
		mulRowScalar(q, a[n:], b[n:], out[n:])
	}
}

func mulAddVecAsm(q uint64, a, b, out []uint64) {
	n := len(out) &^ 3
	r32, r32s := r32ModQ(q)
	mulAddVecAVX2(q, r32, r32s, a[:n], b[:n], out[:n])
	if n < len(out) {
		mulAddRowScalar(q, a[n:], b[n:], out[n:])
	}
}

func mulShoupAddVecAsm(q uint64, a, b, bs, out []uint64) {
	n := len(out) &^ 3
	mulShoupAddVecAVX2(q, a[:n], b[:n], bs[:n], out[:n])
	if n < len(out) {
		mulShoupAddRowScalar(q, a[n:], b[n:], bs[n:], out[n:])
	}
}

func mulScalarVecAsm(q, c, cs uint64, a, out []uint64) {
	n := len(out) &^ 3
	mulScalarVecAVX2(q, c, cs, a[:n], out[:n])
	if n < len(out) {
		mulScalarRowScalar(q, c, cs, a[n:], out[n:])
	}
}
