package ring

import "testing"

func benchContext(b *testing.B, logN int) *Context {
	b.Helper()
	const plainT = 65537
	primes, err := GeneratePrimes(55, uint64(2<<logN)*plainT, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := NewContext(logN, primes, plainT)
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

// BenchmarkNTT measures the core transform at the two deployed ring
// sizes.
func BenchmarkNTT(b *testing.B) {
	for _, logN := range []int{11, 12} {
		ctx := benchContext(b, logN)
		s := NewSeededSampler(ctx, 1)
		p := s.UniformPoly(0, false)
		b.Run(sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.Moduli[0].NTT(p.Coeffs[0])
				ctx.Moduli[0].INTT(p.Coeffs[0])
			}
		})
	}
}

// BenchmarkModSwitchDown measures the exact BGV rescale.
func BenchmarkModSwitchDown(b *testing.B) {
	ctx := benchContext(b, 12)
	s := NewSeededSampler(ctx, 2)
	base := s.UniformPoly(ctx.MaxLevel(), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := base.Copy()
		ctx.ModSwitchDown(p)
	}
}

// BenchmarkDecomposeBase2w measures the key-switching digit
// decomposition (the CRT-reconstruction hot path).
func BenchmarkDecomposeBase2w(b *testing.B) {
	ctx := benchContext(b, 12)
	s := NewSeededSampler(ctx, 3)
	p := s.UniformPoly(ctx.MaxLevel(), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.DecomposeBase2w(p, 45)
	}
}

func sizeName(logN int) string {
	return map[int]string{11: "N=2048", 12: "N=4096"}[logN]
}
