package ring

import (
	"fmt"
	"testing"
)

// tilingTestContext builds a context over fresh 55-bit primes.
func tilingTestContext(t *testing.T, logN, limbs int) *Context {
	t.Helper()
	n := 1 << logN
	primes, err := GeneratePrimes(55, uint64(2*n)*65537, limbs)
	if err != nil {
		t.Fatalf("GeneratePrimes: %v", err)
	}
	ctx, err := NewContext(logN, primes, 65537)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return ctx
}

// TestRunTiledCoversAllIndices: every index in [0, m) is visited exactly
// once for any (m, grain, workers) combination, including grains larger
// than m and degenerate pools.
func TestRunTiledCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 5} {
		var ws *Workers
		if workers >= 2 {
			ws = NewWorkers(workers)
		}
		for _, m := range []int{1, 2, 3, 7, 12, 64} {
			for _, grain := range []int{-1, 0, 1, 2, 5, 64, 100} {
				hits := make([]int32, m)
				ws.RunTiled(m, grain, func(i int) {
					hits[i]++ // goroutine-racy only if sharding overlaps; asserted below
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d m=%d grain=%d: index %d visited %d times", workers, m, grain, i, h)
					}
				}
			}
		}
		ws.Close()
	}
}

// TestSpanTiledOpsDeterministic: every tiled ring op is bit-identical
// between the serial path and the span-tiled worker pool, across tile
// sizes (including grains that split a single limb into many tiles) and
// worker counts. Run under -race this also checks the tile fan-out for
// data races.
func TestSpanTiledOpsDeterministic(t *testing.T) {
	const logN, limbs = 8, 6
	level := limbs - 1
	serialCtx := tilingTestContext(t, logN, limbs)
	s := NewSeededSampler(serialCtx, 99)
	a0 := s.UniformPoly(level, true)
	b0 := s.UniformPoly(level, true)
	c0 := s.UniformPoly(level, false) // coefficient domain, for the NTT case

	type opCase struct {
		name string
		run  func(ctx *Context, a, b *Poly, out *Poly)
	}
	ops := []opCase{
		{"NTT", func(ctx *Context, a, b, out *Poly) { ctx.CopyInto(c0, out); ctx.NTT(out) }},
		{"INTT", func(ctx *Context, a, b, out *Poly) { ctx.CopyInto(a, out); ctx.INTT(out) }},
		{"Add", func(ctx *Context, a, b, out *Poly) { ctx.Add(a, b, out) }},
		{"Sub", func(ctx *Context, a, b, out *Poly) { ctx.Sub(a, b, out) }},
		{"Neg", func(ctx *Context, a, b, out *Poly) { ctx.Neg(a, out) }},
		{"MulCoeffs", func(ctx *Context, a, b, out *Poly) { ctx.MulCoeffs(a, b, out) }},
		{"MulCoeffsAdd", func(ctx *Context, a, b, out *Poly) { ctx.CopyInto(a, out); ctx.MulCoeffsAdd(a, b, out) }},
		{"MulCoeffsShoupAdd", func(ctx *Context, a, b, out *Poly) {
			bs := ctx.ShoupPoly(b)
			ctx.CopyInto(a, out)
			ctx.MulCoeffsShoupAdd(a, b, bs, out)
		}},
		{"MulScalar", func(ctx *Context, a, b, out *Poly) { ctx.MulScalar(a, 12345, out) }},
	}

	want := make(map[string]*Poly)
	for _, op := range ops {
		out := serialCtx.NewPoly(level)
		op.run(serialCtx, a0, b0, out)
		want[op.name] = out
	}

	// 64 bytes/tile splits each 256-coeff limb row into 32 tiles; the
	// larger grains cover one-tile-per-limb and everything-in-one-tile.
	for _, tileBytes := range []int{64, 2048, 1 << 20} {
		for _, workers := range []int{2, 3, 5} {
			t.Run(fmt.Sprintf("tile=%d/workers=%d", tileBytes, workers), func(t *testing.T) {
				ctx := tilingTestContext(t, logN, limbs)
				ctx.SetWorkers(NewWorkers(workers))
				ctx.SetTileBytes(tileBytes)
				ctx.SetPointwiseParCutoff(1) // force the pool onto every op
				defer ctx.CloseWorkers()
				a := ctx.NewPoly(level)
				b := ctx.NewPoly(level)
				ctx.CopyInto(a0, a)
				ctx.CopyInto(b0, b)
				for _, op := range ops {
					out := ctx.NewPoly(level)
					op.run(ctx, a, b, out)
					for i := range out.Coeffs {
						for j := range out.Coeffs[i] {
							if out.Coeffs[i][j] != want[op.name].Coeffs[i][j] {
								t.Fatalf("%s diverges from serial at limb %d coeff %d", op.name, i, j)
							}
						}
					}
				}
			})
		}
	}
}

// TestStageLimbHintBitIdentical: ops run identically whether the
// advisory stage limb hint matches the operand, mismatches it, or is
// absent — the hint may only change dispatch, never results.
func TestStageLimbHintBitIdentical(t *testing.T) {
	const logN, limbs = 8, 6
	level := limbs - 1
	base := tilingTestContext(t, logN, limbs)
	s := NewSeededSampler(base, 7)
	a0 := s.UniformPoly(level, true)
	b0 := s.UniformPoly(level, true)
	c0 := s.UniformPoly(level, false)
	ref := base.NewPoly(level)
	base.MulCoeffs(a0, b0, ref)
	refT := base.NewPoly(level)
	base.CopyInto(c0, refT)
	base.NTT(refT)

	for _, hint := range []int{0, limbs, limbs + 3, 1} {
		ctx := tilingTestContext(t, logN, limbs)
		ctx.SetWorkers(NewWorkers(3))
		ctx.SetPointwiseParCutoff(1)
		defer ctx.CloseWorkers()
		ctx.SetStageLimbHint(hint)
		if hint > 0 && ctx.StageLimbHint() != hint {
			t.Fatalf("hint %d not installed", hint)
		}
		a := ctx.NewPoly(level)
		b := ctx.NewPoly(level)
		ctx.CopyInto(a0, a)
		ctx.CopyInto(b0, b)
		out := ctx.NewPoly(level)
		ctx.MulCoeffs(a, b, out)
		tr := ctx.NewPoly(level)
		ctx.CopyInto(c0, tr)
		ctx.NTT(tr)
		for i := range out.Coeffs {
			for j := range out.Coeffs[i] {
				if out.Coeffs[i][j] != ref.Coeffs[i][j] {
					t.Fatalf("hint=%d: MulCoeffs diverges at limb %d coeff %d", hint, i, j)
				}
				if tr.Coeffs[i][j] != refT.Coeffs[i][j] {
					t.Fatalf("hint=%d: NTT diverges at limb %d coeff %d", hint, i, j)
				}
			}
		}
		ctx.SetStageLimbHint(0)
		if ctx.StageLimbHint() != 0 {
			t.Fatal("hint not cleared")
		}
	}
}
