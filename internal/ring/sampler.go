package ring

import (
	crand "crypto/rand"
	"encoding/binary"
	"math/bits"
	"math/rand/v2"
)

// Sampler draws the random polynomials used by the BGV scheme: uniform
// masks, ternary secrets, and centered-binomial errors. It is
// deterministic given a seed, which keeps tests and benchmarks
// reproducible; NewSampler seeds from crypto/rand.
type Sampler struct {
	ctx *Context
	rng *rand.Rand
	cbd int // centered binomial parameter: sum of cbd bits minus cbd bits
}

// NewSampler returns a sampler seeded from the operating system's entropy
// source.
func NewSampler(ctx *Context) *Sampler {
	var seed [32]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// crypto/rand failing is unrecoverable; fall back would silently
		// weaken keys, so crash loudly instead.
		panic("ring: cannot read entropy: " + err.Error())
	}
	return newSamplerFromSeed(ctx, seed)
}

// NewSeededSampler returns a deterministic sampler for tests and
// reproducible experiments.
func NewSeededSampler(ctx *Context, seed uint64) *Sampler {
	var s [32]byte
	binary.LittleEndian.PutUint64(s[:8], seed)
	return newSamplerFromSeed(ctx, s)
}

func newSamplerFromSeed(ctx *Context, seed [32]byte) *Sampler {
	return &Sampler{
		ctx: ctx,
		rng: rand.New(rand.NewChaCha8(seed)),
		cbd: 21, // sigma = sqrt(21/2) ≈ 3.24, the conventional RLWE width
	}
}

// UniformPoly samples a uniformly random polynomial at the given level in
// the requested domain. Because CRT is a bijection, sampling each residue
// independently yields a uniform element of Z_Q.
func (s *Sampler) UniformPoly(level int, ntt bool) *Poly {
	p := s.ctx.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := s.ctx.Moduli[i].Q
		bound := ^uint64(0) - (^uint64(0) % q) // rejection threshold
		pi := p.Coeffs[i]
		for j := range pi {
			for {
				v := s.rng.Uint64()
				if v < bound {
					pi[j] = v % q
					break
				}
			}
		}
	}
	p.IsNTT = ntt
	return p
}

// TernaryPoly samples a uniform ternary polynomial (coefficients in
// {-1,0,1}) at the given level, in coefficient domain.
func (s *Sampler) TernaryPoly(level int) *Poly {
	coeffs := make([]int64, s.ctx.N)
	for j := range coeffs {
		coeffs[j] = int64(s.rng.IntN(3)) - 1
	}
	p := s.ctx.NewPoly(level)
	s.ctx.SetLift(coeffs, p)
	return p
}

// ErrorPoly samples a centered-binomial error polynomial at the given
// level, in coefficient domain.
func (s *Sampler) ErrorPoly(level int) *Poly {
	coeffs := make([]int64, s.ctx.N)
	for j := range coeffs {
		coeffs[j] = s.cbdSample()
	}
	p := s.ctx.NewPoly(level)
	s.ctx.SetLift(coeffs, p)
	return p
}

// cbdSample draws one centered-binomial value: popcount(a)-popcount(b)
// over s.cbd bit pairs.
func (s *Sampler) cbdSample() int64 {
	mask := uint64(1)<<uint(s.cbd) - 1
	a := s.rng.Uint64() & mask
	b := s.rng.Uint64() & mask
	return int64(bits.OnesCount64(a)) - int64(bits.OnesCount64(b))
}
