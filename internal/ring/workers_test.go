package ring

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"
)

// testContexts returns two identical contexts (same primes), one serial
// and one with an n-way worker pool attached. The caller must
// CloseWorkers on the parallel one.
func testContexts(t *testing.T, logN, levels, workers int) (serial, parallel *Context) {
	t.Helper()
	n := 1 << logN
	primes, err := GeneratePrimes(55, uint64(2*n)*65537, levels)
	if err != nil {
		t.Fatalf("GeneratePrimes: %v", err)
	}
	serial, err = NewContext(logN, primes, 65537)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	parallel, err = NewContext(logN, primes, 65537)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	parallel.SetWorkers(NewWorkers(workers))
	return serial, parallel
}

func polysEqual(a, b *Poly) bool {
	if len(a.Coeffs) != len(b.Coeffs) || a.IsNTT != b.IsNTT {
		return false
	}
	for i := range a.Coeffs {
		for j := range a.Coeffs[i] {
			if a.Coeffs[i][j] != b.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// TestParallelOpsDeterministic asserts that every ring op produces
// bit-identical polynomials on the serial and the worker-pool path, at
// every level of the chain. Run under -race (the short CI suite covers
// it) this doubles as the data-race check for the pool.
func TestParallelOpsDeterministic(t *testing.T) {
	const levels = 6
	serial, par := testContexts(t, 11, levels, 4)
	defer par.CloseWorkers()

	for level := 0; level < levels; level++ {
		level := level
		t.Run(fmt.Sprintf("level=%d", level), func(t *testing.T) {
			smp := NewSeededSampler(serial, uint64(1000+level))
			a := smp.UniformPoly(level, false)
			b := smp.UniformPoly(level, false)
			c := smp.UniformPoly(level, false)
			scalars := make([]uint64, level+1)
			for i := range scalars {
				scalars[i] = uint64(12345+i) % serial.Moduli[i].Q
			}

			type opCase struct {
				name string
				run  func(ctx *Context, a, b, c *Poly) *Poly
			}
			cases := []opCase{
				{"NTT", func(ctx *Context, a, b, c *Poly) *Poly {
					out := a.Copy()
					ctx.NTT(out)
					return out
				}},
				{"INTT", func(ctx *Context, a, b, c *Poly) *Poly {
					out := a.Copy()
					ctx.NTT(out)
					ctx.INTT(out)
					return out
				}},
				{"Add", func(ctx *Context, a, b, c *Poly) *Poly {
					out := ctx.NewPoly(level)
					ctx.Add(a, b, out)
					return out
				}},
				{"Sub", func(ctx *Context, a, b, c *Poly) *Poly {
					out := ctx.NewPoly(level)
					ctx.Sub(a, b, out)
					return out
				}},
				{"Neg", func(ctx *Context, a, b, c *Poly) *Poly {
					out := ctx.NewPoly(level)
					ctx.Neg(a, out)
					return out
				}},
				{"MulCoeffs", func(ctx *Context, a, b, c *Poly) *Poly {
					x, y := a.Copy(), b.Copy()
					ctx.NTT(x)
					ctx.NTT(y)
					out := ctx.NewPoly(level)
					ctx.MulCoeffs(x, y, out)
					return out
				}},
				{"MulCoeffsAdd", func(ctx *Context, a, b, c *Poly) *Poly {
					x, y := a.Copy(), b.Copy()
					ctx.NTT(x)
					ctx.NTT(y)
					out := c.Copy()
					out.IsNTT = true
					ctx.MulCoeffsAdd(x, y, out)
					return out
				}},
				{"MulCoeffsShoupAdd", func(ctx *Context, a, b, c *Poly) *Poly {
					x, y := a.Copy(), b.Copy()
					ctx.NTT(x)
					ctx.NTT(y)
					ys := ctx.ShoupPoly(y)
					out := c.Copy()
					out.IsNTT = true
					ctx.MulCoeffsShoupAdd(x, y, ys, out)
					return out
				}},
				{"MulScalar", func(ctx *Context, a, b, c *Poly) *Poly {
					out := ctx.NewPoly(level)
					ctx.MulScalar(a, 4242, out)
					return out
				}},
				{"MulScalarVec", func(ctx *Context, a, b, c *Poly) *Poly {
					out := ctx.NewPoly(level)
					ctx.MulScalarVec(a, scalars, out)
					return out
				}},
				{"DecomposeBase2wCoeff", func(ctx *Context, a, b, c *Poly) *Poly {
					digits := ctx.DecomposeBase2wCoeff(a, 45)
					out := digits[0]
					for _, d := range digits[1:] {
						ctx.Add(out, d, out)
					}
					return out
				}},
				{"DecomposeBase2w", func(ctx *Context, a, b, c *Poly) *Poly {
					digits := ctx.DecomposeBase2w(a, 45)
					out := digits[0]
					for _, d := range digits[1:] {
						ctx.Add(out, d, out)
					}
					return out
				}},
			}
			if level >= 1 {
				cases = append(cases, opCase{"ModSwitchDown", func(ctx *Context, a, b, c *Poly) *Poly {
					out := a.Copy()
					ctx.NTT(out)
					ctx.ModSwitchDown(out)
					return out
				}})
			}
			// Sweep the pointwise cutoff across its extremes: 1 forces
			// every multi-limb pointwise op onto the pool, 1<<30 pins
			// them all serial, and the default exercises the shipped
			// threshold. Bit-identical results at every setting.
			for _, cutoff := range []int{1, DefaultPointwiseParCutoff, 1 << 30} {
				par.SetPointwiseParCutoff(cutoff)
				for _, tc := range cases {
					got := tc.run(par, a.Copy(), b.Copy(), c.Copy())
					want := tc.run(serial, a.Copy(), b.Copy(), c.Copy())
					if !polysEqual(got, want) {
						t.Errorf("%s (cutoff %d): parallel result differs from serial", tc.name, cutoff)
					}
				}
			}
			par.SetPointwiseParCutoff(0) // restore the default
		})
	}
}

// TestPointwiseCutoffTunable pins the cutoff knob's semantics: the
// shipped default, explicit settings, the reset-to-default rule, and
// retunes racing live op traffic (the -race suite runs this).
func TestPointwiseCutoffTunable(t *testing.T) {
	_, par := testContexts(t, 9, 3, 2)
	defer par.CloseWorkers()
	if got := par.PointwiseParCutoff(); got != DefaultPointwiseParCutoff {
		t.Errorf("default cutoff %d, want %d", got, DefaultPointwiseParCutoff)
	}
	par.SetPointwiseParCutoff(64)
	if got := par.PointwiseParCutoff(); got != 64 {
		t.Errorf("cutoff %d after Set(64)", got)
	}
	par.SetPointwiseParCutoff(-1)
	if got := par.PointwiseParCutoff(); got != DefaultPointwiseParCutoff {
		t.Errorf("cutoff %d after reset, want default", got)
	}

	smp := NewSeededSampler(par, 7)
	a := smp.UniformPoly(2, false)
	b := smp.UniformPoly(2, false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			par.SetPointwiseParCutoff(1 + (i%2)*(1<<30))
		}
	}()
	want := par.NewPoly(2)
	addRowAll := func(out *Poly) {
		for i := range out.Coeffs {
			addRow(false, par.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
	}
	addRowAll(want)
	for i := 0; i < 200; i++ {
		out := par.NewPoly(2)
		par.Add(a, b, out)
		if !polysEqual(out, want) {
			t.Fatalf("iteration %d: Add result changed under a racing cutoff retune", i)
		}
	}
	<-done
}

// TestFusedNTTMatchesGeneric pins the fused radix-4-style kernels to the
// reference layer-at-a-time sweeps across transform sizes.
func TestFusedNTTMatchesGeneric(t *testing.T) {
	for _, logN := range []int{4, 5, 6, 8, 11, 13} {
		n := 1 << logN
		primes, err := GeneratePrimes(55, uint64(2*n), 1)
		if err != nil {
			t.Fatalf("GeneratePrimes(logN=%d): %v", logN, err)
		}
		m, err := NewModulus(primes[0], n)
		if err != nil {
			t.Fatalf("NewModulus(logN=%d): %v", logN, err)
		}
		a := make([]uint64, n)
		for j := range a {
			a[j] = (uint64(j)*0x9e3779b97f4a7c15 + 12345) % m.Q
		}
		fused := append([]uint64(nil), a...)
		generic := append([]uint64(nil), a...)
		m.NTT(fused)
		m.NTTGeneric(generic)
		for j := range fused {
			if fused[j] != generic[j] {
				t.Fatalf("logN=%d: fused NTT differs from generic at %d", logN, j)
			}
		}
		m.INTT(fused)
		m.INTTGeneric(generic)
		for j := range fused {
			if fused[j] != generic[j] {
				t.Fatalf("logN=%d: fused INTT differs from generic at %d", logN, j)
			}
			if fused[j] != a[j] {
				t.Fatalf("logN=%d: NTT/INTT roundtrip broke at %d", logN, j)
			}
		}
	}
}

// TestWorkersRunCoverage checks the span partition covers every index
// exactly once for awkward m/worker combinations.
func TestWorkersRunCoverage(t *testing.T) {
	ws := NewWorkers(3)
	defer ws.Close()
	for _, m := range []int{1, 2, 3, 4, 7, 16, 31} {
		hits := make([]int32, m)
		done := make(chan struct{})
		go func() {
			ws.Run(m, func(i int) { hits[i]++ })
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("Run(%d) deadlocked", m)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("Run(%d): index %d executed %d times", m, i, h)
			}
		}
	}
}

// TestWorkersCloseDuringRun: Close must serialize against in-flight
// Runs (no send-on-closed-channel panic) and later Runs must fall back
// to the serial loop.
func TestWorkersCloseDuringRun(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		ws := NewWorkers(4)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for r := 0; r < 50; r++ {
				ws.Run(8, func(int) {})
			}
		}()
		ws.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Run after Close deadlocked")
		}
		// Post-close Runs still execute every index, serially.
		hits := make([]int32, 5)
		ws.Run(5, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("post-close Run: index %d executed %d times", i, h)
			}
		}
	}
}

// TestIntraOpPerfSmoke is the CI perf gate for the intra-op pool: at a
// full-chain LogN≥13 transform, the pool-attached NTT path must not be
// slower than the serial path (within tolerance — on a single-core
// runner the pool short-circuits to the serial loop and the two paths
// should tie). Enabled with COPSE_PERF_SMOKE=1, like the level-plan
// gate.
func TestIntraOpPerfSmoke(t *testing.T) {
	if os.Getenv("COPSE_PERF_SMOKE") == "" {
		t.Skip("set COPSE_PERF_SMOKE=1 to run the perf gate")
	}
	const logN, levels = 13, 8
	serial, par := testContexts(t, logN, levels, runtime.NumCPU())
	defer par.CloseWorkers()
	smp := NewSeededSampler(serial, 7)
	src := smp.UniformPoly(levels-1, false)

	measure := func(ctx *Context) time.Duration {
		const reps = 7
		times := make([]time.Duration, reps)
		for r := 0; r < reps; r++ {
			p := src.Copy()
			start := time.Now()
			ctx.NTT(p)
			ctx.INTT(p)
			times[r] = time.Since(start)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[reps/2]
	}
	measure(serial) // warm up
	ts := measure(serial)
	tp := measure(par)
	t.Logf("logN=%d limbs=%d: serial %v, parallel(%d workers) %v", logN, levels, ts, par.WorkerCount(), tp)
	if float64(tp) > 1.25*float64(ts) {
		t.Errorf("parallel NTT path slower than serial: %v vs %v (workers=%d, cpus=%d)",
			tp, ts, par.WorkerCount(), runtime.NumCPU())
	}
}
