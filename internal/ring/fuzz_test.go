package ring

import (
	"math/rand"
	"testing"
)

// fuzzModulus derives a transform-sized Modulus from the fuzzed
// selectors: LogN ∈ {11..15} and one of several fresh 55-bit NTT
// primes for that size.
func fuzzModulus(t *testing.T, logNSel, primeSel uint64) *Modulus {
	t.Helper()
	logN := 11 + int(logNSel%5)
	n := 1 << logN
	const menu = 4
	primes, err := GeneratePrimes(55, uint64(2*n), menu)
	if err != nil {
		t.Fatalf("GeneratePrimes: %v", err)
	}
	m, err := NewModulus(primes[primeSel%menu], n)
	if err != nil {
		t.Fatalf("NewModulus: %v", err)
	}
	return m
}

// FuzzNTTRoundTrip: NTT→INTT must be the identity on any input row,
// for any LogN ∈ {11..15} and any 55-bit NTT prime, on whichever
// kernel variant the host selects.
func FuzzNTTRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0))
	f.Add(uint64(42), uint64(2), uint64(1))
	f.Add(uint64(0xfeed), uint64(4), uint64(3))
	f.Fuzz(func(t *testing.T, seed, logNSel, primeSel uint64) {
		m := fuzzModulus(t, logNSel, primeSel)
		rng := rand.New(rand.NewSource(int64(seed)))
		a := make([]uint64, m.N)
		for i := range a {
			a[i] = rng.Uint64() % m.Q
		}
		orig := append([]uint64(nil), a...)
		m.NTT(a)
		m.INTT(a)
		for i := range a {
			if a[i] != orig[i] {
				t.Fatalf("round trip broken at %d: got %d want %d (q=%d n=%d vec=%v)",
					i, a[i], orig[i], m.Q, m.N, m.VectorKernels())
			}
		}
	})
}

// FuzzVectorVsScalar: the vector transform and pointwise kernels must
// be bit-identical to the scalar ones on any input. On hosts without a
// vector backend the target degenerates to scalar-vs-scalar (still a
// valid round-trip exercise).
func FuzzVectorVsScalar(f *testing.F) {
	f.Add(uint64(7), uint64(0), uint64(0))
	f.Add(uint64(99), uint64(1), uint64(2))
	f.Add(uint64(0xabcd), uint64(3), uint64(1))
	f.Fuzz(func(t *testing.T, seed, logNSel, primeSel uint64) {
		if !VectorKernelsAvailable() {
			t.Skip("no vector backend on this host/build")
		}
		m := fuzzModulus(t, logNSel, primeSel)
		m.SetVectorKernels(true)
		rng := rand.New(rand.NewSource(int64(seed)))
		q := m.Q
		a := make([]uint64, m.N)
		b := make([]uint64, m.N)
		bs := make([]uint64, m.N)
		for i := range a {
			a[i] = rng.Uint64() % q
			b[i] = rng.Uint64() % q
			bs[i] = ShoupPrecomp(b[i], q)
		}

		want := append([]uint64(nil), a...)
		got := append([]uint64(nil), a...)
		m.nttScalar(want)
		m.nttVec(got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("NTT diverges at %d: scalar %d vector %d (q=%d n=%d)", i, want[i], got[i], q, m.N)
			}
		}
		m.inttScalar(want)
		m.inttVec(got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("INTT diverges at %d: scalar %d vector %d (q=%d n=%d)", i, want[i], got[i], q, m.N)
			}
		}

		n := m.N
		ws := make([]uint64, n)
		gs := make([]uint64, n)
		mulRowScalar(q, a, b, ws)
		mulVecAsm(q, a, b, gs)
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("MulMod row diverges at %d: scalar %d vector %d (q=%d)", i, ws[i], gs[i], q)
			}
		}
		copy(ws, a)
		copy(gs, a)
		mulShoupAddRowScalar(q, b, b, bs, ws)
		mulShoupAddVecAsm(q, b, b, bs, gs)
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("Shoup mul-add row diverges at %d: scalar %d vector %d (q=%d)", i, ws[i], gs[i], q)
			}
		}
	})
}
