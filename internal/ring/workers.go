package ring

import (
	"sync"
)

// Workers is a sharded pool of resident goroutines that fans independent
// per-limb work across cores. RNS arithmetic is embarrassingly parallel
// across the prime chain — every limb of an NTT, key-switch inner
// product or modulus switch touches only its own residue row — yet the
// serial loops in Context process limbs one after another. A Context
// with an attached pool runs those loops concurrently instead.
//
// Determinism is structural: Run partitions the index space into
// contiguous spans and every index writes only its own output row, so
// the result is bit-identical to the serial loop no matter how the
// spans are scheduled. The pool adds no locks to the data path; the only
// synchronization is the per-call WaitGroup.
//
// The pool is sharded: each resident goroutine owns its own job channel,
// so concurrent Runs (the serving layer classifies from many goroutines
// over one shared Context) never contend on a single queue. The calling
// goroutine always executes the first span itself — a Run on an
// otherwise idle pool of n goroutines uses n+1 threads' worth of work
// only when the caller would otherwise sit blocked, which is why
// NewWorkers(n) spawns n−1 residents for a concurrency of n.
type Workers struct {
	n    int        // total concurrency, calling goroutine included
	jobs []chan job // one channel per resident goroutine (n-1 of them)

	// mu serializes Close against in-flight Runs: Run holds the read
	// side across its dispatch + wait, Close takes the write side, so
	// closing the job channels can never race a pending span send.
	mu     sync.RWMutex
	closed bool
}

// job is one shard's worth of a Run or RunTiled: a closure over the
// index spans the shard owns.
type job struct {
	run func()
	wg  *sync.WaitGroup
}

// NewWorkers returns a pool of total concurrency n (the calling
// goroutine plus n−1 resident goroutines). n ≤ 1 returns nil — the nil
// pool is valid and means "serial", so callers can thread a Workers
// through unconditionally. Callers that outlive their pool should
// Close it to release the resident goroutines.
func NewWorkers(n int) *Workers {
	if n <= 1 {
		return nil
	}
	ws := &Workers{n: n, jobs: make([]chan job, n-1)}
	for i := range ws.jobs {
		ch := make(chan job, 1)
		ws.jobs[i] = ch
		go func() {
			for j := range ch {
				j.run()
				j.wg.Done()
			}
		}()
	}
	return ws
}

// Size returns the pool's total concurrency (1 for the nil pool).
func (ws *Workers) Size() int {
	if ws == nil {
		return 1
	}
	return ws.n
}

// Close releases the resident goroutines, blocking until every
// in-flight Run has drained. Runs issued after Close fall back to the
// serial loop; closing twice (or closing the nil pool) is a no-op.
func (ws *Workers) Close() {
	if ws == nil {
		return
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return
	}
	ws.closed = true
	for _, ch := range ws.jobs {
		close(ch)
	}
}

// Run executes fn(i) for every i in [0, m), fanning contiguous index
// spans across the pool. fn must be safe to call concurrently for
// distinct indices (the ring kernels are: each index owns its row).
// The calling goroutine executes the first span itself. Safe for
// concurrent use from many goroutines, and against Close (a Run that
// loses the race to Close runs serially).
func (ws *Workers) Run(m int, fn func(int)) {
	shards := ws.Size()
	if shards > m {
		shards = m
	}
	if ws != nil && shards > 1 {
		ws.mu.RLock()
		if !ws.closed {
			defer ws.mu.RUnlock()
			var wg sync.WaitGroup
			wg.Add(shards - 1)
			for s := 1; s < shards; s++ {
				lo, hi := s*m/shards, (s+1)*m/shards
				ws.jobs[s-1] <- job{run: func() {
					for i := lo; i < hi; i++ {
						fn(i)
					}
				}, wg: &wg}
			}
			for i := 0; i < m/shards; i++ {
				fn(i)
			}
			wg.Wait()
			return
		}
		ws.mu.RUnlock()
	}
	for i := 0; i < m; i++ {
		fn(i)
	}
}

// RunTiled executes fn(i) for every i in [0, m), partitioned into tiles
// of `grain` consecutive indices with tile t assigned to shard t mod S.
// Two properties follow:
//
//   - Cache residency: grain is sized by the Context so one tile's rows
//     fit the L2 slice a core owns (tileGrain), instead of Run's m/S
//     contiguous spans whose working set scales with the limb count.
//   - Stable limb→worker mapping: the tile→shard assignment depends only
//     on (grain, S), not on m, so as long as consecutive ops share a
//     pool and grain, limb i lands on the same shard in every op — the
//     rows it just wrote are still warm in that core's cache when the
//     next op in a fused pass reads them.
//
// Like Run, the calling goroutine executes shard 0 and the result is
// bit-identical to the serial loop (each index writes only its own
// row). grain ≤ 0 is treated as 1; a nil/closed pool runs serially.
func (ws *Workers) RunTiled(m, grain int, fn func(int)) {
	if grain <= 0 {
		grain = 1
	}
	tiles := (m + grain - 1) / grain
	shards := ws.Size()
	if shards > tiles {
		shards = tiles
	}
	if ws != nil && shards > 1 {
		ws.mu.RLock()
		if !ws.closed {
			defer ws.mu.RUnlock()
			var wg sync.WaitGroup
			wg.Add(shards - 1)
			for s := 1; s < shards; s++ {
				s := s
				ws.jobs[s-1] <- job{run: func() {
					for t := s; t < tiles; t += shards {
						lo := t * grain
						hi := lo + grain
						if hi > m {
							hi = m
						}
						for i := lo; i < hi; i++ {
							fn(i)
						}
					}
				}, wg: &wg}
			}
			for t := 0; t < tiles; t += shards {
				lo := t * grain
				hi := lo + grain
				if hi > m {
					hi = m
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
			wg.Wait()
			return
		}
		ws.mu.RUnlock()
	}
	for i := 0; i < m; i++ {
		fn(i)
	}
}
