package ring

import (
	"sync"
)

// Workers is a sharded pool of resident goroutines that fans independent
// per-limb work across cores. RNS arithmetic is embarrassingly parallel
// across the prime chain — every limb of an NTT, key-switch inner
// product or modulus switch touches only its own residue row — yet the
// serial loops in Context process limbs one after another. A Context
// with an attached pool runs those loops concurrently instead.
//
// Determinism is structural: Run partitions the index space into
// contiguous spans and every index writes only its own output row, so
// the result is bit-identical to the serial loop no matter how the
// spans are scheduled. The pool adds no locks to the data path; the only
// synchronization is the per-call WaitGroup.
//
// The pool is sharded: each resident goroutine owns its own job channel,
// so concurrent Runs (the serving layer classifies from many goroutines
// over one shared Context) never contend on a single queue. The calling
// goroutine always executes the first span itself — a Run on an
// otherwise idle pool of n goroutines uses n+1 threads' worth of work
// only when the caller would otherwise sit blocked, which is why
// NewWorkers(n) spawns n−1 residents for a concurrency of n.
type Workers struct {
	n    int        // total concurrency, calling goroutine included
	jobs []chan job // one channel per resident goroutine (n-1 of them)

	// mu serializes Close against in-flight Runs: Run holds the read
	// side across its dispatch + wait, Close takes the write side, so
	// closing the job channels can never race a pending span send.
	mu     sync.RWMutex
	closed bool
}

// job is one contiguous index span of a Run.
type job struct {
	fn     func(int)
	lo, hi int
	wg     *sync.WaitGroup
}

// NewWorkers returns a pool of total concurrency n (the calling
// goroutine plus n−1 resident goroutines). n ≤ 1 returns nil — the nil
// pool is valid and means "serial", so callers can thread a Workers
// through unconditionally. Callers that outlive their pool should
// Close it to release the resident goroutines.
func NewWorkers(n int) *Workers {
	if n <= 1 {
		return nil
	}
	ws := &Workers{n: n, jobs: make([]chan job, n-1)}
	for i := range ws.jobs {
		ch := make(chan job, 1)
		ws.jobs[i] = ch
		go func() {
			for j := range ch {
				for i := j.lo; i < j.hi; i++ {
					j.fn(i)
				}
				j.wg.Done()
			}
		}()
	}
	return ws
}

// Size returns the pool's total concurrency (1 for the nil pool).
func (ws *Workers) Size() int {
	if ws == nil {
		return 1
	}
	return ws.n
}

// Close releases the resident goroutines, blocking until every
// in-flight Run has drained. Runs issued after Close fall back to the
// serial loop; closing twice (or closing the nil pool) is a no-op.
func (ws *Workers) Close() {
	if ws == nil {
		return
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return
	}
	ws.closed = true
	for _, ch := range ws.jobs {
		close(ch)
	}
}

// Run executes fn(i) for every i in [0, m), fanning contiguous index
// spans across the pool. fn must be safe to call concurrently for
// distinct indices (the ring kernels are: each index owns its row).
// The calling goroutine executes the first span itself. Safe for
// concurrent use from many goroutines, and against Close (a Run that
// loses the race to Close runs serially).
func (ws *Workers) Run(m int, fn func(int)) {
	shards := ws.Size()
	if shards > m {
		shards = m
	}
	if ws != nil && shards > 1 {
		ws.mu.RLock()
		if !ws.closed {
			defer ws.mu.RUnlock()
			var wg sync.WaitGroup
			wg.Add(shards - 1)
			for s := 1; s < shards; s++ {
				ws.jobs[s-1] <- job{fn: fn, lo: s * m / shards, hi: (s + 1) * m / shards, wg: &wg}
			}
			for i := 0; i < m/shards; i++ {
				fn(i)
			}
			wg.Wait()
			return
		}
		ws.mu.RUnlock()
	}
	for i := 0; i < m; i++ {
		fn(i)
	}
}
