package ring

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// testContext builds a small ring for unit tests: N=64, three ~45-bit
// primes, plaintext modulus 257.
func testContext(t *testing.T) *Context {
	t.Helper()
	const logN = 6
	const plainT = 257
	primes, err := GeneratePrimes(45, uint64(2*(1<<logN))*plainT, 3)
	if err != nil {
		t.Fatalf("GeneratePrimes: %v", err)
	}
	ctx, err := NewContext(logN, primes, plainT)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return ctx
}

func TestModArithAgainstBigInt(t *testing.T) {
	const q = 576460752308273153 // any large prime-ish modulus works here
	f := func(x, y uint64) bool {
		x %= q
		y %= q
		sum := new(big.Int).Add(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
		sum.Mod(sum, big.NewInt(q))
		if AddMod(x, y, q) != sum.Uint64() {
			return false
		}
		diff := new(big.Int).Sub(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
		diff.Mod(diff, big.NewInt(q))
		if SubMod(x, y, q) != diff.Uint64() {
			return false
		}
		prod := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
		prod.Mod(prod, big.NewInt(q))
		return MulMod(x, y, q) == prod.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulModShoupMatchesMulMod(t *testing.T) {
	const q = 1152921504606830593
	f := func(x, w uint64) bool {
		x %= q
		w %= q
		ws := ShoupPrecomp(w, q)
		return MulModShoup(x, w, ws, q) == MulMod(x, w, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowAndInvMod(t *testing.T) {
	const q = 65537
	for x := uint64(1); x < 100; x++ {
		inv := InvMod(x, q)
		if MulMod(x, inv, q) != 1 {
			t.Fatalf("InvMod(%d) = %d is not an inverse", x, inv)
		}
	}
	if PowMod(3, 0, q) != 1 {
		t.Error("x^0 != 1")
	}
	if PowMod(3, 32768, q) != 65536 { // 3 generates Z_65537^*, 3^(phi/2) = -1
		t.Errorf("PowMod(3,32768,65537) = %d, want 65536", PowMod(3, 32768, q))
	}
}

func TestGeneratePrimes(t *testing.T) {
	const step = 2 * 2048 * 65537
	primes, err := GeneratePrimes(55, step, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, p := range primes {
		if seen[p] {
			t.Fatalf("duplicate prime %d", p)
		}
		seen[p] = true
		if (p-1)%step != 0 {
			t.Errorf("prime %d not ≡ 1 mod %d", p, step)
		}
		if !new(big.Int).SetUint64(p).ProbablyPrime(30) {
			t.Errorf("%d is not prime", p)
		}
		if p >= 1<<55 {
			t.Errorf("prime %d exceeds 2^55", p)
		}
	}
}

func TestGeneratePrimesErrors(t *testing.T) {
	if _, err := GeneratePrimes(10, 4096, 1); err == nil {
		t.Error("expected error for tiny bit length")
	}
	if _, err := GeneratePrimes(21, 1<<20, 1000); err == nil {
		t.Error("expected error when not enough primes exist")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	ctx := testContext(t)
	s := NewSeededSampler(ctx, 1)
	for trial := 0; trial < 20; trial++ {
		p := s.UniformPoly(ctx.MaxLevel(), false)
		orig := p.Copy()
		ctx.NTT(p)
		ctx.INTT(p)
		for i := range p.Coeffs {
			for j := range p.Coeffs[i] {
				if p.Coeffs[i][j] != orig.Coeffs[i][j] {
					t.Fatalf("trial %d: round trip mismatch at [%d][%d]", trial, i, j)
				}
			}
		}
	}
}

// TestNTTNegacyclicConvolution checks that the pointwise product in NTT
// domain equals the schoolbook negacyclic convolution.
func TestNTTNegacyclicConvolution(t *testing.T) {
	ctx := testContext(t)
	s := NewSeededSampler(ctx, 2)
	a := s.UniformPoly(0, false)
	b := s.UniformPoly(0, false)
	q := ctx.Moduli[0].Q
	n := ctx.N

	want := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prod := MulMod(a.Coeffs[0][i], b.Coeffs[0][j], q)
			k := i + j
			if k < n {
				want[k] = AddMod(want[k], prod, q)
			} else {
				want[k-n] = SubMod(want[k-n], prod, q)
			}
		}
	}

	ctx.NTT(a)
	ctx.NTT(b)
	out := ctx.NewPoly(0)
	ctx.MulCoeffs(a, b, out)
	ctx.INTT(out)
	for j := 0; j < n; j++ {
		if out.Coeffs[0][j] != want[j] {
			t.Fatalf("negacyclic convolution mismatch at %d: got %d want %d", j, out.Coeffs[0][j], want[j])
		}
	}
}

func TestAddSubNegMulScalar(t *testing.T) {
	ctx := testContext(t)
	s := NewSeededSampler(ctx, 3)
	a := s.UniformPoly(ctx.MaxLevel(), false)
	b := s.UniformPoly(ctx.MaxLevel(), false)
	sum := ctx.NewPoly(ctx.MaxLevel())
	ctx.Add(a, b, sum)
	diff := ctx.NewPoly(ctx.MaxLevel())
	ctx.Sub(sum, b, diff)
	for i := range diff.Coeffs {
		for j := range diff.Coeffs[i] {
			if diff.Coeffs[i][j] != a.Coeffs[i][j] {
				t.Fatal("a+b-b != a")
			}
		}
	}
	neg := ctx.NewPoly(ctx.MaxLevel())
	ctx.Neg(a, neg)
	ctx.Add(a, neg, sum)
	for i := range sum.Coeffs {
		for j := range sum.Coeffs[i] {
			if sum.Coeffs[i][j] != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}
	tripled := ctx.NewPoly(ctx.MaxLevel())
	ctx.MulScalar(a, 3, tripled)
	ctx.Add(a, a, sum)
	ctx.Add(sum, a, sum)
	for i := range sum.Coeffs {
		for j := range sum.Coeffs[i] {
			if sum.Coeffs[i][j] != tripled.Coeffs[i][j] {
				t.Fatal("3a != a+a+a")
			}
		}
	}
}

// TestAutomorphism verifies x -> x^g against direct monomial mapping and
// the composition law.
func TestAutomorphism(t *testing.T) {
	ctx := testContext(t)
	n := ctx.N
	q := ctx.Moduli[0].Q

	// sigma_g(x^j) = ± x^{jg mod n}: check every monomial for g=3.
	for j := 0; j < n; j++ {
		p := ctx.NewPoly(0)
		p.Coeffs[0][j] = 1
		out := ctx.NewPoly(0)
		ctx.Automorphism(p, 3, out)
		k := (j * 3) % (2 * n)
		wantIdx := k % n
		wantVal := uint64(1)
		if k >= n {
			wantVal = q - 1
		}
		for idx, v := range out.Coeffs[0] {
			want := uint64(0)
			if idx == wantIdx {
				want = wantVal
			}
			if v != want {
				t.Fatalf("sigma_3(x^%d): coeff %d = %d, want %d", j, idx, v, want)
			}
		}
	}

	// Composition: sigma_5(sigma_3(p)) == sigma_15(p).
	s := NewSeededSampler(ctx, 4)
	p := s.UniformPoly(0, false)
	t1 := ctx.NewPoly(0)
	t2 := ctx.NewPoly(0)
	ctx.Automorphism(p, 3, t1)
	ctx.Automorphism(t1, 5, t2)
	want := ctx.NewPoly(0)
	ctx.Automorphism(p, 15, want)
	for j := range want.Coeffs[0] {
		if t2.Coeffs[0][j] != want.Coeffs[0][j] {
			t.Fatalf("composition mismatch at %d", j)
		}
	}
}

func TestSetLiftAndToCenteredMod(t *testing.T) {
	ctx := testContext(t)
	coeffs := make([]int64, ctx.N)
	r := rand.New(rand.NewPCG(7, 7))
	for j := range coeffs {
		coeffs[j] = int64(r.IntN(int(ctx.T))) - int64(ctx.T)/2
	}
	p := ctx.NewPoly(ctx.MaxLevel())
	ctx.SetLift(coeffs, p)
	got := ctx.ToCenteredMod(p, ctx.T)
	for j, c := range coeffs {
		want := ((c % int64(ctx.T)) + int64(ctx.T)) % int64(ctx.T)
		if got[j] != uint64(want) {
			t.Fatalf("coeff %d: got %d want %d", j, got[j], want)
		}
	}
}

// TestModSwitchDown checks that switching m + t*e down a level preserves
// the plaintext and shrinks the noise.
func TestModSwitchDown(t *testing.T) {
	ctx := testContext(t)
	s := NewSeededSampler(ctx, 5)
	level := ctx.MaxLevel()

	msg := make([]int64, ctx.N)
	r := rand.New(rand.NewPCG(8, 8))
	for j := range msg {
		msg[j] = int64(r.IntN(int(ctx.T)))
	}
	p := ctx.NewPoly(level)
	ctx.SetLift(msg, p)

	e := s.ErrorPoly(level)
	te := ctx.NewPoly(level)
	ctx.MulScalar(e, ctx.T, te)
	ctx.Add(p, te, p)

	before := ctx.MaxCenteredBits(p)
	ctx.NTT(p)
	ctx.ModSwitchDown(p)
	ctx.INTT(p)
	after := ctx.MaxCenteredBits(p)

	got := ctx.ToCenteredMod(p, ctx.T)
	for j, m := range msg {
		if got[j] != uint64(m) {
			t.Fatalf("plaintext changed at %d: got %d want %d", j, got[j], m)
		}
	}
	if after >= before {
		t.Errorf("noise bits did not shrink: before=%d after=%d", before, after)
	}
	if p.Level() != level-1 {
		t.Errorf("level = %d, want %d", p.Level(), level-1)
	}
}

// TestDecomposeBase2w verifies Σ digits[k]·2^{kw} == p in every residue.
func TestDecomposeBase2w(t *testing.T) {
	ctx := testContext(t)
	s := NewSeededSampler(ctx, 6)
	for _, w := range []int{13, 20, 30} {
		p := s.UniformPoly(ctx.MaxLevel(), false)
		digits := ctx.DecomposeBase2w(p, w)
		if len(digits) != ctx.NumDigits(ctx.MaxLevel(), w) {
			t.Fatalf("w=%d: got %d digits, want %d", w, len(digits), ctx.NumDigits(ctx.MaxLevel(), w))
		}
		// Work in NTT domain (linearity).
		ref := p.Copy()
		ctx.NTT(ref)
		acc := ctx.NewPoly(ctx.MaxLevel())
		acc.IsNTT = true
		scaled := ctx.NewPoly(ctx.MaxLevel())
		for k, d := range digits {
			factor := new(big.Int).Lsh(big.NewInt(1), uint(k*w))
			for i := range acc.Coeffs {
				q := ctx.Moduli[i].Q
				f := new(big.Int).Mod(factor, new(big.Int).SetUint64(q)).Uint64()
				for j := range acc.Coeffs[i] {
					scaled.Coeffs[i][j] = MulMod(d.Coeffs[i][j], f, q)
				}
			}
			scaled.IsNTT = true
			ctx.Add(acc, scaled, acc)
		}
		for i := range acc.Coeffs {
			for j := range acc.Coeffs[i] {
				if acc.Coeffs[i][j] != ref.Coeffs[i][j] {
					t.Fatalf("w=%d: reconstruction mismatch at [%d][%d]", w, i, j)
				}
			}
		}
	}
}

func TestExtractBitsWords(t *testing.T) {
	v := new(big.Int).SetUint64(0xDEADBEEFCAFEF00D)
	v.Lsh(v, 64)
	v.Or(v, new(big.Int).SetUint64(0x0123456789ABCDEF))
	words := toWords(v, 2)
	cases := []struct {
		start, width int
		want         uint64
	}{
		{0, 16, 0xCDEF},
		{4, 16, 0xBCDE},
		{60, 8, 0xD0},
		{64, 32, 0xCAFEF00D},
		{120, 8, 0xDE},
		{124, 8, 0x0D},
		{128, 16, 0},
	}
	for _, c := range cases {
		if got := extractBitsWords(words, c.start, c.width); got != c.want {
			t.Errorf("extractBitsWords(%d,%d) = %#x, want %#x", c.start, c.width, got, c.want)
		}
	}
	if w := toWords(v, 3); w[2] != 0 || w[1] != 0xDEADBEEFCAFEF00D {
		t.Errorf("toWords padding: %#x", w)
	}
}

func TestSamplerDistributions(t *testing.T) {
	ctx := testContext(t)
	s := NewSeededSampler(ctx, 9)

	tern := s.TernaryPoly(0)
	q := ctx.Moduli[0].Q
	for _, c := range tern.Coeffs[0] {
		if c != 0 && c != 1 && c != q-1 {
			t.Fatalf("ternary coefficient %d not in {-1,0,1}", c)
		}
	}

	e := s.ErrorPoly(0)
	for _, c := range e.Coeffs[0] {
		centered := int64(c)
		if c > q/2 {
			centered = int64(c) - int64(q)
		}
		if centered < -21 || centered > 21 {
			t.Fatalf("error coefficient %d outside CBD(21) range", centered)
		}
	}

	// Deterministic for equal seeds, different for different seeds.
	a := NewSeededSampler(ctx, 42).UniformPoly(0, false)
	b := NewSeededSampler(ctx, 42).UniformPoly(0, false)
	c := NewSeededSampler(ctx, 43).UniformPoly(0, false)
	same, diff := true, false
	for j := range a.Coeffs[0] {
		if a.Coeffs[0][j] != b.Coeffs[0][j] {
			same = false
		}
		if a.Coeffs[0][j] != c.Coeffs[0][j] {
			diff = true
		}
	}
	if !same {
		t.Error("equal seeds produced different polys")
	}
	if !diff {
		t.Error("different seeds produced identical polys")
	}
}
