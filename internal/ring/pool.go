package ring

import "sync"

// Polynomial memory pooling. The evaluator's hot path (key switching,
// rotations, modulus switching) allocates several level-sized polynomials
// per operation; recycling them through a level-keyed pool keeps the
// steady-state allocation rate near zero instead of thrashing the GC.
//
// Discipline: a poly obtained from GetPoly/GetPolyZero is owned by the
// caller until PutPoly. Polys that escape into long-lived structures
// (ciphertexts returned to the user) are simply never Put — the pool is
// an optimization, not a lifetime tracker.

// polyPools lazily builds one sync.Pool per level.
type polyPools struct {
	mu    sync.Mutex
	pools []*sync.Pool
}

func (pp *polyPools) forLevel(level int, n int) *sync.Pool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for len(pp.pools) <= level {
		lvl := len(pp.pools)
		pp.pools = append(pp.pools, &sync.Pool{New: func() any {
			p := &Poly{Coeffs: make([][]uint64, lvl+1)}
			for i := range p.Coeffs {
				p.Coeffs[i] = make([]uint64, n)
			}
			return p
		}})
	}
	return pp.pools[level]
}

// GetPoly returns a polynomial at the given level from the pool. Its
// coefficients are arbitrary (callers that fully overwrite every residue
// should prefer this over GetPolyZero); IsNTT is reset to false.
func (ctx *Context) GetPoly(level int) *Poly {
	p := ctx.pool.forLevel(level, ctx.N).Get().(*Poly)
	p.IsNTT = false
	return p
}

// GetPolyZero returns a zeroed polynomial at the given level.
func (ctx *Context) GetPolyZero(level int) *Poly {
	p := ctx.GetPoly(level)
	for i := range p.Coeffs {
		row := p.Coeffs[i]
		for j := range row {
			row[j] = 0
		}
	}
	return p
}

// PutPoly returns p to the pool for its current level. p must not be used
// after the call. Polys whose rows were re-sliced away from length N
// (never produced by this package) must not be Put.
func (ctx *Context) PutPoly(p *Poly) {
	if p == nil {
		return
	}
	ctx.pool.forLevel(p.Level(), ctx.N).Put(p)
}

// PutPolys returns every poly in ps to the pool.
func (ctx *Context) PutPolys(ps []*Poly) {
	for _, p := range ps {
		ctx.PutPoly(p)
	}
}

// rowPool recycles single-prime scratch rows ([]uint64 of length N) used
// by modulus switching.
type rowPool struct{ pool sync.Pool }

func (ctx *Context) getRow() []uint64 {
	if r := ctx.rows.pool.Get(); r != nil {
		return r.([]uint64)
	}
	return make([]uint64, ctx.N)
}

func (ctx *Context) putRow(r []uint64) { ctx.rows.pool.Put(r) }
