package ring

import "sync/atomic"

// Vector kernel selection. On amd64 hosts with AVX2 the butterfly sweeps
// of NTT/INTT and the pointwise workhorses (MulCoeffsShoupAdd,
// MulCoeffs[Add], Add/Sub/Neg, MulScalar[Vec]) run 4-lane assembly
// kernels (ntt_amd64.s); everywhere else — and under the `purego` build
// tag — the scalar Go kernels are the implementation. Selection happens
// once per Modulus/Context at construction from the package default,
// which a capability probe seeds at init; SetVectorKernels overrides the
// default for tests and ablation benches (copse-bench -novec).
//
// The vector kernels are bit-identical to the scalar ones: the
// butterflies and Shoup multiplies evaluate exactly the same uint64
// formulas lane-wise (same lazy-reduction bounds), and the fully-reduced
// kernels (MulMod) produce canonical residues on both paths. The
// property is asserted by TestVectorKernelsMatchScalar and
// FuzzVectorVsScalar.
//
// Eligibility is gated per modulus: q must fit in (2^32, 2^61) so that
// every lazy intermediate stays below 2^63 (signed 64-bit lane compares
// stand in for the unsigned compares AVX2 lacks — see DESIGN.md §14 for
// the bound proof) and so that the MulMod split-reduction's carry terms
// stay below q. The 55-bit production prime menu sits comfortably inside
// the gate; out-of-range primes silently keep the scalar kernels.

// vectorDefault is the package-wide default captured by NewModulus /
// NewContext. Seeded by the capability probe at init; SetVectorKernels
// overrides it.
var vectorDefault atomic.Bool

func init() {
	vectorDefault.Store(vectorAvailable())
}

// SetVectorKernels sets the package default for vector kernel selection.
// Contexts and Moduli built afterwards capture the new default; existing
// ones are unaffected (use Context.SetVectorKernels or
// Modulus.SetVectorKernels to retune those). Enabling is a no-op on
// hosts without the required CPU features.
func SetVectorKernels(on bool) {
	vectorDefault.Store(on && vectorAvailable())
}

// VectorKernelsEnabled reports the current package default.
func VectorKernelsEnabled() bool { return vectorDefault.Load() }

// VectorKernelsAvailable reports whether the host supports the vector
// kernels at all (amd64 with AVX2, not built with `purego`).
func VectorKernelsAvailable() bool { return vectorAvailable() }

// KernelVariant names the transform kernel the package default selects:
// "avx2" when the vector backend is active, "scalar-fused" otherwise.
// Benchmark provenance headers record it.
func KernelVariant() string {
	if vectorDefault.Load() {
		return "avx2"
	}
	return "scalar-fused"
}

// vectorOKForModulus reports whether the vector kernels may serve prime
// q at transform size n: the lazy-reduction intermediates must stay
// below 2^63 (q < 2^61), the MulMod split reduction needs 2^32 < q, and
// the fused head/tail kernels process two 4-element blocks per step
// (n ≥ 32).
func vectorOKForModulus(q uint64, n int) bool {
	return q > 1<<32 && q < 1<<61 && n >= 32
}

// rowVecOK reports whether a pointwise row of length n over prime q may
// take the vector path: same modulus gate, plus a length that covers at
// least one full 4-lane step. The kernels handle any n ≥ 4 (a scalar
// tail loop covers n % 4), but tiny rows are not worth the call.
func rowVecOK(vec bool, q uint64, n int) bool {
	return vec && n >= 16 && q > 1<<32 && q < 1<<61
}
