package ring

import (
	"math/big"
	"math/bits"
)

// crtLevel holds the constants for reconstructing integers from their RNS
// residues at one level of the prime chain.
type crtLevel struct {
	bigQ  *big.Int   // product of active primes
	halfQ *big.Int   // bigQ / 2, for centering
	qiHat []*big.Int // bigQ / q_i
	inv   []uint64   // (bigQ/q_i)^{-1} mod q_i

	// Word-level mirrors of the constants above, for the allocation-free
	// reconstruction used on the hot decomposition path.
	words  int        // 64-bit words covering bigQ
	qWords []uint64   // bigQ, little-endian, length `words`
	qiHatW [][]uint64 // bigQ / q_i, little-endian, length `words`
}

func (ctx *Context) buildCRT() {
	ctx.crt = make([]*crtLevel, len(ctx.Moduli))
	for level := range ctx.Moduli {
		cl := &crtLevel{bigQ: big.NewInt(1)}
		for i := 0; i <= level; i++ {
			cl.bigQ = new(big.Int).Mul(cl.bigQ, new(big.Int).SetUint64(ctx.Moduli[i].Q))
		}
		cl.halfQ = new(big.Int).Rsh(cl.bigQ, 1)
		for i := 0; i <= level; i++ {
			q := ctx.Moduli[i].Q
			hat := new(big.Int).Div(cl.bigQ, new(big.Int).SetUint64(q))
			cl.qiHat = append(cl.qiHat, hat)
			hatModQ := new(big.Int).Mod(hat, new(big.Int).SetUint64(q)).Uint64()
			cl.inv = append(cl.inv, InvMod(hatModQ, q))
		}
		cl.words = (cl.bigQ.BitLen() + 63) / 64
		cl.qWords = toWords(cl.bigQ, cl.words)
		for _, hat := range cl.qiHat {
			cl.qiHatW = append(cl.qiHatW, toWords(hat, cl.words))
		}
		ctx.crt[level] = cl
	}
}

// toWords returns the little-endian 64-bit words of x, padded to n,
// independent of the platform's big.Word size (32 or 64, both of which
// divide 64, so each big.Word lands in exactly one output word).
func toWords(x *big.Int, n int) []uint64 {
	out := make([]uint64, n)
	const wordBits = bits.UintSize
	for i, w := range x.Bits() {
		bit := i * wordBits
		out[bit/64] |= uint64(w) << uint(bit%64)
	}
	return out
}

// reconstructWords computes (Σ_i res_i·inv_i·qiHat_i) mod Q into acc,
// a little-endian word vector of length words+1 — the same value
// reconstructCoeff produces, without big.Int allocations. The sum is at
// most (level+1)·Q, so the reduction is a short subtract loop.
func (cl *crtLevel) reconstructWords(res []uint64, moduli []*Modulus, acc []uint64) {
	clear(acc)
	w := cl.words
	for i, r := range res {
		v := MulMod(r, cl.inv[i], moduli[i].Q)
		hat := cl.qiHatW[i]
		var carry uint64
		for k := 0; k < w; k++ {
			hi, lo := bits.Mul64(v, hat[k])
			s, c1 := bits.Add64(acc[k], lo, 0)
			s, c2 := bits.Add64(s, carry, 0)
			acc[k] = s
			carry = hi + c1 + c2 // v < 2^62, so hi + 2 cannot wrap
		}
		acc[w] += carry
	}
	for wordsGE(acc, cl.qWords) {
		wordsSub(acc, cl.qWords)
	}
}

// wordsGE reports acc ≥ q, where acc has one extra top word.
func wordsGE(acc, q []uint64) bool {
	if acc[len(q)] != 0 {
		return true
	}
	for k := len(q) - 1; k >= 0; k-- {
		if acc[k] != q[k] {
			return acc[k] > q[k]
		}
	}
	return true
}

// wordsSub sets acc -= q in place.
func wordsSub(acc, q []uint64) {
	var borrow uint64
	for k := range q {
		acc[k], borrow = bits.Sub64(acc[k], q[k], borrow)
	}
	acc[len(q)] -= borrow
}

// BigQ returns the full modulus at the given level.
func (ctx *Context) BigQ(level int) *big.Int { return ctx.crt[level].bigQ }

// reconstructCoeff writes the CRT reconstruction of residues res (one per
// active prime) into out, reduced into [0, Q).
func (cl *crtLevel) reconstructCoeff(res []uint64, moduli []*Modulus, out, scratch *big.Int) {
	out.SetUint64(0)
	for i, r := range res {
		v := MulMod(r, cl.inv[i], moduli[i].Q)
		scratch.SetUint64(v)
		scratch.Mul(scratch, cl.qiHat[i])
		out.Add(out, scratch)
	}
	out.Mod(out, cl.bigQ)
}

// ToCenteredMod reconstructs each coefficient of p (coefficient domain),
// centers it in (-Q/2, Q/2], and reduces modulo m. This is the final step
// of BGV decryption.
func (ctx *Context) ToCenteredMod(p *Poly, m uint64) []uint64 {
	if p.IsNTT {
		panic("ring: ToCenteredMod requires coefficient-domain input")
	}
	cl := ctx.crt[p.Level()]
	out := make([]uint64, ctx.N)
	acc := new(big.Int)
	scratch := new(big.Int)
	mBig := new(big.Int).SetUint64(m)
	res := make([]uint64, p.Level()+1)
	for j := 0; j < ctx.N; j++ {
		for i := range res {
			res[i] = p.Coeffs[i][j]
		}
		cl.reconstructCoeff(res, ctx.Moduli, acc, scratch)
		if acc.Cmp(cl.halfQ) > 0 {
			acc.Sub(acc, cl.bigQ)
		}
		acc.Mod(acc, mBig) // big.Int Mod is Euclidean: result in [0, m)
		out[j] = acc.Uint64()
	}
	return out
}

// MaxCenteredBits returns the bit length of the largest centered
// coefficient of p. It is used to measure ciphertext noise.
func (ctx *Context) MaxCenteredBits(p *Poly) int {
	if p.IsNTT {
		panic("ring: MaxCenteredBits requires coefficient-domain input")
	}
	cl := ctx.crt[p.Level()]
	acc := new(big.Int)
	scratch := new(big.Int)
	res := make([]uint64, p.Level()+1)
	maxBits := 0
	for j := 0; j < ctx.N; j++ {
		for i := range res {
			res[i] = p.Coeffs[i][j]
		}
		cl.reconstructCoeff(res, ctx.Moduli, acc, scratch)
		if acc.Cmp(cl.halfQ) > 0 {
			acc.Sub(acc, cl.bigQ)
			acc.Neg(acc)
		}
		if bl := acc.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	return maxBits
}

// DecomposeBase2w decomposes a coefficient-domain polynomial into base-2^w
// digit polynomials: p = Σ_k digits[k] · 2^{kw}, with every digit
// coefficient in [0, 2^w). The digits are returned in NTT domain, ready
// for key switching. Because the digits are level-independent, a single
// key-switching key (generated at the top level) serves every level.
//
// The digit polynomials come from the context's pool; callers done with
// them may PutPoly them back (or simply drop them).
//
// With a worker pool attached the digit NTTs are fanned out as one flat
// digits × limbs task set — the largest single batch of independent
// transforms in the evaluator (a key switch at level ℓ runs
// NumDigits(ℓ)·(ℓ+1) of them).
func (ctx *Context) DecomposeBase2w(p *Poly, w int) []*Poly {
	digits := ctx.DecomposeBase2wCoeff(p, w)
	limbs := p.Level() + 1
	if ws, _ := ctx.limbWorkers(len(digits)*limbs, false); ws != nil {
		ws.Run(len(digits)*limbs, func(t int) {
			ctx.Moduli[t%limbs].NTT(digits[t/limbs].Coeffs[t%limbs])
		})
		for _, d := range digits {
			d.IsNTT = true
		}
		return digits
	}
	for k := range digits {
		ctx.NTT(digits[k])
	}
	return digits
}

// DecomposeBase2wCoeff is DecomposeBase2w without the final NTT: the
// digits are returned in coefficient domain. Hoisted key switching needs
// this form so a Galois automorphism can be applied to the shared digits
// before each per-rotation NTT.
func (ctx *Context) DecomposeBase2wCoeff(p *Poly, w int) []*Poly {
	if p.IsNTT {
		panic("ring: DecomposeBase2w requires coefficient-domain input")
	}
	level := p.Level()
	cl := ctx.crt[level]
	numDigits := (cl.bigQ.BitLen() + w - 1) / w
	digits := make([]*Poly, numDigits)
	for k := range digits {
		digits[k] = ctx.GetPoly(level)
	}
	// The per-coefficient reconstruction dominates; with a pool attached
	// the coefficient range is split into one contiguous block per worker
	// (each with private scratch — coefficient j writes only column j of
	// every digit, so blocks never interfere and the result is
	// bit-identical to the serial order).
	if ws, _ := ctx.limbWorkers(level+1, false); ws != nil {
		shards := min(ws.Size(), ctx.N)
		ws.Run(shards, func(s int) {
			ctx.decomposeRange(p, cl, digits, w, numDigits, s*ctx.N/shards, (s+1)*ctx.N/shards)
		})
	} else {
		ctx.decomposeRange(p, cl, digits, w, numDigits, 0, ctx.N)
	}
	return digits
}

// decomposeRange runs the base-2^w digit extraction for coefficients
// [lo, hi) with private scratch.
func (ctx *Context) decomposeRange(p *Poly, cl *crtLevel, digits []*Poly, w, numDigits, lo, hi int) {
	level := p.Level()
	acc := make([]uint64, cl.words+1)
	res := make([]uint64, level+1)
	for j := lo; j < hi; j++ {
		for i := range res {
			res[i] = p.Coeffs[i][j]
		}
		cl.reconstructWords(res, ctx.Moduli, acc)
		for k := 0; k < numDigits; k++ {
			d := extractBitsWords(acc, k*w, w)
			for i := 0; i <= level; i++ {
				q := ctx.Moduli[i].Q
				if d < q {
					digits[k].Coeffs[i][j] = d
				} else {
					digits[k].Coeffs[i][j] = d % q
				}
			}
		}
	}
}

// extractBitsWords reads `width` bits starting at bit offset `start` from
// a little-endian []uint64. width must be at most 63.
func extractBitsWords(words []uint64, start, width int) uint64 {
	wordIdx := start >> 6
	bitIdx := start & 63
	if wordIdx >= len(words) {
		return 0
	}
	v := words[wordIdx] >> uint(bitIdx)
	if got := 64 - bitIdx; got < width && wordIdx+1 < len(words) {
		v |= words[wordIdx+1] << uint(got)
	}
	return v & (uint64(1)<<uint(width) - 1)
}

// NumDigits returns the number of base-2^w digits needed at the given
// level.
func (ctx *Context) NumDigits(level, w int) int {
	return (ctx.crt[level].bigQ.BitLen() + w - 1) / w
}

// ModSwitchDown performs the exact BGV modulus switch, dropping the top
// prime q_l: it replaces c by (c - δ)/q_l where δ ≡ c (mod q_l) and
// δ ≡ 0 (mod t), with δ centered so the added noise is minimal. Because
// every prime is ≡ 1 mod t, the plaintext is preserved without scaling.
// The input must be in NTT domain and at level ≥ 1.
func (ctx *Context) ModSwitchDown(p *Poly) {
	if !p.IsNTT {
		panic("ring: ModSwitchDown requires NTT-domain input")
	}
	l := p.Level()
	if l < 1 {
		panic("ring: ModSwitchDown at level 0")
	}
	ql := ctx.Moduli[l].Q
	t := ctx.T

	// Recover the dropped component in coefficient domain.
	top := ctx.getRow()
	defer ctx.putRow(top)
	copy(top, p.Coeffs[l])
	ctx.Moduli[l].INTT(top)

	// v = centered([c * t^{-1}]_{q_l}); δ = t * v. The centered value is
	// carried shifted by +q_l (vu = v + q_l ∈ (q_l/2, 3q_l/2]) so the
	// per-prime loop below is branch-free: δ ≡ t·vu − t·q_l (mod q_i).
	tInv := InvMod(t%ql, ql)
	half := ql >> 1
	vu := ctx.getRow()
	defer ctx.putRow(vu)
	for j := range vu[:ctx.N] {
		v := MulMod(top[j], tInv, ql)
		if v > half {
			vu[j] = v
		} else {
			vu[j] = v + ql
		}
	}

	// Each remaining prime's work — build δ mod q_i, forward-NTT it, and
	// rescale p's residue row — is independent of every other prime's, so
	// it fans out across the worker pool (each limb takes a private
	// scratch row from the pool; rowPool is a sync.Pool and safe for
	// concurrent use).
	perPrime := func(i int) {
		delta := ctx.getRow()
		qi := ctx.Moduli[i].Q
		invQl := InvMod(ql%qi, qi)
		invQlS := ShoupPrecomp(invQl, qi)
		tq := t % qi
		tqS := ShoupPrecomp(tq, qi)
		tql := MulMod(tq, ql%qi, qi) // t·q_l mod q_i, the shift correction
		for j, u := range vu[:ctx.N] {
			delta[j] = SubMod(MulModShoup(u, tq, tqS, qi), tql, qi)
		}
		ctx.Moduli[i].NTT(delta)
		pi := p.Coeffs[i]
		for j := range pi {
			pi[j] = MulModShoup(SubMod(pi[j], delta[j], qi), invQl, invQlS, qi)
		}
		ctx.putRow(delta)
	}
	if ws, _ := ctx.limbWorkers(l, false); ws != nil {
		ws.Run(l, perPrime)
	} else {
		for i := 0; i < l; i++ {
			perPrime(i)
		}
	}
	p.Coeffs = p.Coeffs[:l]
}
