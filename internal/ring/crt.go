package ring

import (
	"math/big"
	"math/bits"
)

// crtLevel holds the constants for reconstructing integers from their RNS
// residues at one level of the prime chain.
type crtLevel struct {
	bigQ  *big.Int   // product of active primes
	halfQ *big.Int   // bigQ / 2, for centering
	qiHat []*big.Int // bigQ / q_i
	inv   []uint64   // (bigQ/q_i)^{-1} mod q_i
}

func (ctx *Context) buildCRT() {
	ctx.crt = make([]*crtLevel, len(ctx.Moduli))
	for level := range ctx.Moduli {
		cl := &crtLevel{bigQ: big.NewInt(1)}
		for i := 0; i <= level; i++ {
			cl.bigQ = new(big.Int).Mul(cl.bigQ, new(big.Int).SetUint64(ctx.Moduli[i].Q))
		}
		cl.halfQ = new(big.Int).Rsh(cl.bigQ, 1)
		for i := 0; i <= level; i++ {
			q := ctx.Moduli[i].Q
			hat := new(big.Int).Div(cl.bigQ, new(big.Int).SetUint64(q))
			cl.qiHat = append(cl.qiHat, hat)
			hatModQ := new(big.Int).Mod(hat, new(big.Int).SetUint64(q)).Uint64()
			cl.inv = append(cl.inv, InvMod(hatModQ, q))
		}
		ctx.crt[level] = cl
	}
}

// BigQ returns the full modulus at the given level.
func (ctx *Context) BigQ(level int) *big.Int { return ctx.crt[level].bigQ }

// reconstructCoeff writes the CRT reconstruction of residues res (one per
// active prime) into out, reduced into [0, Q).
func (cl *crtLevel) reconstructCoeff(res []uint64, moduli []*Modulus, out, scratch *big.Int) {
	out.SetUint64(0)
	for i, r := range res {
		v := MulMod(r, cl.inv[i], moduli[i].Q)
		scratch.SetUint64(v)
		scratch.Mul(scratch, cl.qiHat[i])
		out.Add(out, scratch)
	}
	out.Mod(out, cl.bigQ)
}

// ToCenteredMod reconstructs each coefficient of p (coefficient domain),
// centers it in (-Q/2, Q/2], and reduces modulo m. This is the final step
// of BGV decryption.
func (ctx *Context) ToCenteredMod(p *Poly, m uint64) []uint64 {
	if p.IsNTT {
		panic("ring: ToCenteredMod requires coefficient-domain input")
	}
	cl := ctx.crt[p.Level()]
	out := make([]uint64, ctx.N)
	acc := new(big.Int)
	scratch := new(big.Int)
	mBig := new(big.Int).SetUint64(m)
	res := make([]uint64, p.Level()+1)
	for j := 0; j < ctx.N; j++ {
		for i := range res {
			res[i] = p.Coeffs[i][j]
		}
		cl.reconstructCoeff(res, ctx.Moduli, acc, scratch)
		if acc.Cmp(cl.halfQ) > 0 {
			acc.Sub(acc, cl.bigQ)
		}
		acc.Mod(acc, mBig) // big.Int Mod is Euclidean: result in [0, m)
		out[j] = acc.Uint64()
	}
	return out
}

// MaxCenteredBits returns the bit length of the largest centered
// coefficient of p. It is used to measure ciphertext noise.
func (ctx *Context) MaxCenteredBits(p *Poly) int {
	if p.IsNTT {
		panic("ring: MaxCenteredBits requires coefficient-domain input")
	}
	cl := ctx.crt[p.Level()]
	acc := new(big.Int)
	scratch := new(big.Int)
	res := make([]uint64, p.Level()+1)
	maxBits := 0
	for j := 0; j < ctx.N; j++ {
		for i := range res {
			res[i] = p.Coeffs[i][j]
		}
		cl.reconstructCoeff(res, ctx.Moduli, acc, scratch)
		if acc.Cmp(cl.halfQ) > 0 {
			acc.Sub(acc, cl.bigQ)
			acc.Neg(acc)
		}
		if bl := acc.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	return maxBits
}

// DecomposeBase2w decomposes a coefficient-domain polynomial into base-2^w
// digit polynomials: p = Σ_k digits[k] · 2^{kw}, with every digit
// coefficient in [0, 2^w). The digits are returned in NTT domain, ready
// for key switching. Because the digits are level-independent, a single
// key-switching key (generated at the top level) serves every level.
func (ctx *Context) DecomposeBase2w(p *Poly, w int) []*Poly {
	if p.IsNTT {
		panic("ring: DecomposeBase2w requires coefficient-domain input")
	}
	level := p.Level()
	cl := ctx.crt[level]
	numDigits := (cl.bigQ.BitLen() + w - 1) / w
	digits := make([]*Poly, numDigits)
	for k := range digits {
		digits[k] = ctx.NewPoly(level)
	}
	acc := new(big.Int)
	scratch := new(big.Int)
	res := make([]uint64, level+1)
	for j := 0; j < ctx.N; j++ {
		for i := range res {
			res[i] = p.Coeffs[i][j]
		}
		cl.reconstructCoeff(res, ctx.Moduli, acc, scratch)
		words := acc.Bits()
		for k := 0; k < numDigits; k++ {
			d := extractBits(words, k*w, w)
			for i := 0; i <= level; i++ {
				q := ctx.Moduli[i].Q
				if d < q {
					digits[k].Coeffs[i][j] = d
				} else {
					digits[k].Coeffs[i][j] = d % q
				}
			}
		}
	}
	for k := range digits {
		ctx.NTT(digits[k])
	}
	return digits
}

// NumDigits returns the number of base-2^w digits needed at the given
// level.
func (ctx *Context) NumDigits(level, w int) int {
	return (ctx.crt[level].bigQ.BitLen() + w - 1) / w
}

// extractBits reads `width` bits starting at bit offset `start` from a
// little-endian big.Word slice. width must be at most 63.
func extractBits(words []big.Word, start, width int) uint64 {
	const ws = bits.UintSize
	wordIdx := start / ws
	bitIdx := start % ws
	if wordIdx >= len(words) {
		return 0
	}
	v := uint64(words[wordIdx]) >> uint(bitIdx)
	got := ws - bitIdx
	for got < width {
		wordIdx++
		if wordIdx >= len(words) {
			break
		}
		v |= uint64(words[wordIdx]) << uint(got)
		got += ws
	}
	return v & (uint64(1)<<uint(width) - 1)
}

// ModSwitchDown performs the exact BGV modulus switch, dropping the top
// prime q_l: it replaces c by (c - δ)/q_l where δ ≡ c (mod q_l) and
// δ ≡ 0 (mod t), with δ centered so the added noise is minimal. Because
// every prime is ≡ 1 mod t, the plaintext is preserved without scaling.
// The input must be in NTT domain and at level ≥ 1.
func (ctx *Context) ModSwitchDown(p *Poly) {
	if !p.IsNTT {
		panic("ring: ModSwitchDown requires NTT-domain input")
	}
	l := p.Level()
	if l < 1 {
		panic("ring: ModSwitchDown at level 0")
	}
	ql := ctx.Moduli[l].Q
	t := ctx.T

	// Recover the dropped component in coefficient domain.
	top := make([]uint64, ctx.N)
	copy(top, p.Coeffs[l])
	ctx.Moduli[l].INTT(top)

	// v = centered([c * t^{-1}]_{q_l}); δ = t * v.
	tInv := InvMod(t%ql, ql)
	half := ql >> 1
	vs := make([]int64, ctx.N)
	for j := range vs {
		v := MulMod(top[j], tInv, ql)
		if v > half {
			vs[j] = int64(v) - int64(ql)
		} else {
			vs[j] = int64(v)
		}
	}

	delta := make([]uint64, ctx.N)
	for i := 0; i < l; i++ {
		qi := ctx.Moduli[i].Q
		invQl := InvMod(ql%qi, qi)
		invQlS := ShoupPrecomp(invQl, qi)
		for j, v := range vs {
			var d uint64
			if v >= 0 {
				d = MulMod(uint64(v)%qi, t%qi, qi)
			} else {
				d = NegMod(MulMod(uint64(-v)%qi, t%qi, qi), qi)
			}
			delta[j] = d
		}
		ctx.Moduli[i].NTT(delta)
		pi := p.Coeffs[i]
		for j := range pi {
			pi[j] = MulModShoup(SubMod(pi[j], delta[j], qi), invQl, invQlS, qi)
		}
	}
	p.Coeffs = p.Coeffs[:l]
}
