//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernels for the ring layer. Shared register conventions:
//
//   Y15 = LO32 (0x00000000FFFFFFFF per lane)
//   Y14 = Q    (modulus broadcast)
//
// and, in the transform kernels only:
//
//   Y13 = 2Q
//   Y12 = 2Q-1
//
// AVX2 has no unsigned 64-bit compare and no 64x64->128 multiply, so:
//   - conditional subtractions use signed VPCMPGTQ, sound because
//     vectorOKForModulus gates q < 2^61 and every compared value stays
//     below 2^63;
//   - wide products are assembled from 32-bit VPMULUDQ halves (4 muls
//     plus a carry combine for the high word, 3 for the low word).
//
// LAZYMUL computes OUT = X*W - hi64(X*WS)*Q per lane — exactly
// MulModShoupLazy, result in [0, 2q). XS must hold X>>32. Clobbers
// T0..T3; preserves X, XS, W, WS. Uses Y15 (LO32) and Y14 (Q).
#define LAZYMUL(X, XS, W, WS, T0, T1, T2, T3, OUT) \
	VPSRLQ $32, WS, T3    \
	VPMULUDQ T3, X, T1    \
	VPMULUDQ T3, XS, T3   \
	VPMULUDQ WS, X, T0    \
	VPMULUDQ WS, XS, T2   \
	VPSRLQ $32, T0, T0    \
	VPAND Y15, T1, OUT    \
	VPADDQ OUT, T0, T0    \
	VPAND Y15, T2, OUT    \
	VPADDQ OUT, T0, T0    \
	VPSRLQ $32, T0, T0    \
	VPSRLQ $32, T1, T1    \
	VPSRLQ $32, T2, T2    \
	VPADDQ T1, T3, T3     \
	VPADDQ T2, T3, T3     \
	VPADDQ T0, T3, T3     \
	VPSRLQ $32, W, T1     \
	VPMULUDQ T1, X, T1    \
	VPMULUDQ W, XS, T2    \
	VPADDQ T2, T1, T1     \
	VPSLLQ $32, T1, T1    \
	VPMULUDQ W, X, T0     \
	VPADDQ T1, T0, T0     \
	VPSRLQ $32, T3, T1    \
	VPMULUDQ Y14, T1, T1  \
	VPSRLQ $32, Y14, T2   \
	VPMULUDQ T2, T3, T2   \
	VPADDQ T2, T1, T1     \
	VPSLLQ $32, T1, T1    \
	VPMULUDQ Y14, T3, T3  \
	VPADDQ T3, T1, T1     \
	VPSUBQ T1, T0, OUT

// CONDSUB2Q: X -= 2q if X >= 2q. Uses Y13 (2q), Y12 (2q-1).
#define CONDSUB2Q(X, T) \
	VPCMPGTQ Y12, X, T \
	VPAND Y13, T, T    \
	VPSUBQ T, X, X

// CONDSUBQ: X -= q if X >= q. Uses Y14 (Q) only.
#define CONDSUBQ(X, T) \
	VPCMPGTQ X, Y14, T \
	VPANDN Y14, T, T   \
	VPSUBQ T, X, X

// LOADCONSTS: broadcast Q/2Q/2Q-1/LO32 from the GP register holding q.
// Clobbers QR and X0.
#define LOADCONSTS(QR) \
	MOVQ QR, X0            \
	VPBROADCASTQ X0, Y14   \
	LEAQ (QR)(QR*1), QR    \
	MOVQ QR, X0            \
	VPBROADCASTQ X0, Y13   \
	DECQ QR                \
	MOVQ QR, X0            \
	VPBROADCASTQ X0, Y12   \
	VPCMPEQD Y15, Y15, Y15 \
	VPSRLQ $32, Y15, Y15

// LOADQLO32: broadcast Q and LO32 only (pointwise kernels).
#define LOADQLO32(QR) \
	MOVQ QR, X0            \
	VPBROADCASTQ X0, Y14   \
	VPCMPEQD Y15, Y15, Y15 \
	VPSRLQ $32, Y15, Y15

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func nttLayerFwdAVX2(a, psiRev, psiRevS []uint64, grp, t int, q uint64)
//
// One forward butterfly layer: for each group i, twiddle w=psiRev[grp+i],
// spans x/y of length t (t >= 4, multiple of 4):
//   u = condsub2q(x[j]); v = lazymul(y[j], w); x[j] = u+v; y[j] = u-v+2q
TEXT ·nttLayerFwdAVX2(SB), NOSPLIT, $0-96
	MOVQ a_base+0(FP), SI
	MOVQ psiRev_base+24(FP), R8
	MOVQ psiRevS_base+48(FP), R9
	MOVQ grp+72(FP), CX
	MOVQ t+80(FP), R10
	MOVQ q+88(FP), AX
	LOADCONSTS(AX)
	LEAQ (R8)(CX*8), R8
	LEAQ (R9)(CX*8), R9
	SHLQ $3, R10

fwdlayer_outer:
	VPBROADCASTQ (R8), Y11
	VPBROADCASTQ (R9), Y10
	ADDQ $8, R8
	ADDQ $8, R9
	MOVQ SI, DX
	LEAQ (SI)(R10*1), DI
	MOVQ R10, BX

fwdlayer_inner:
	VMOVDQU (DX), Y0
	VMOVDQU (DI), Y1
	CONDSUB2Q(Y0, Y8)
	VPSRLQ $32, Y1, Y2
	LAZYMUL(Y1, Y2, Y11, Y10, Y3, Y4, Y5, Y6, Y7)
	VPADDQ Y7, Y0, Y8
	VMOVDQU Y8, (DX)
	VPSUBQ Y7, Y0, Y8
	VPADDQ Y13, Y8, Y8
	VMOVDQU Y8, (DI)
	ADDQ $32, DX
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ fwdlayer_inner

	LEAQ (SI)(R10*2), SI
	DECQ CX
	JNZ fwdlayer_outer
	VZEROUPPER
	RET

// func nttFwdFused1AVX2(a []uint64, w1, w1s, w2, w2s, w3, w3s, q uint64)
//
// Fused first double layer of the forward transform: the strided
// quarter-slices x0..x3 meet in layers grp=1 and grp=2; every lane is
// an independent j, so no shuffles are needed.
TEXT ·nttFwdFused1AVX2(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), BX
	MOVQ q+72(FP), AX
	LOADCONSTS(AX)
	SHRQ $2, BX
	SHLQ $3, BX
	MOVQ SI, R8
	LEAQ (SI)(BX*1), R9
	LEAQ (R9)(BX*1), R10
	LEAQ (R10)(BX*1), R11

fused1_loop:
	VMOVDQU (R8), Y0
	VMOVDQU (R9), Y1
	VMOVDQU (R10), Y2
	VMOVDQU (R11), Y3
	CONDSUB2Q(Y0, Y8)
	CONDSUB2Q(Y1, Y8)
	VPBROADCASTQ w1+24(FP), Y11
	VPBROADCASTQ w1s+32(FP), Y10
	VPSRLQ $32, Y2, Y4
	LAZYMUL(Y2, Y4, Y11, Y10, Y5, Y6, Y7, Y8, Y9)
	VPADDQ Y9, Y0, Y2
	VPSUBQ Y9, Y0, Y4
	VPADDQ Y13, Y4, Y4
	VPSRLQ $32, Y3, Y5
	LAZYMUL(Y3, Y5, Y11, Y10, Y6, Y7, Y8, Y0, Y9)
	VPADDQ Y9, Y1, Y3
	VPSUBQ Y9, Y1, Y5
	VPADDQ Y13, Y5, Y5
	CONDSUB2Q(Y2, Y8)
	VPBROADCASTQ w2+40(FP), Y11
	VPBROADCASTQ w2s+48(FP), Y10
	VPSRLQ $32, Y3, Y6
	LAZYMUL(Y3, Y6, Y11, Y10, Y7, Y8, Y9, Y0, Y1)
	VPADDQ Y1, Y2, Y0
	VMOVDQU Y0, (R8)
	VPSUBQ Y1, Y2, Y0
	VPADDQ Y13, Y0, Y0
	VMOVDQU Y0, (R9)
	CONDSUB2Q(Y4, Y8)
	VPBROADCASTQ w3+56(FP), Y11
	VPBROADCASTQ w3s+64(FP), Y10
	VPSRLQ $32, Y5, Y6
	LAZYMUL(Y5, Y6, Y11, Y10, Y7, Y8, Y9, Y0, Y1)
	VPADDQ Y1, Y4, Y0
	VMOVDQU Y0, (R10)
	VPSUBQ Y1, Y4, Y0
	VPADDQ Y13, Y0, Y0
	VMOVDQU Y0, (R11)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $32, BX
	JNZ fused1_loop
	VZEROUPPER
	RET

// func nttFwdTailAVX2(a, psiRev, psiRevS []uint64, q uint64)
//
// Fused final double layer (t=2 then t=1) of the forward transform with
// the [0, q) reduction folded in. Processes two 4-element blocks per
// iteration so every lane carries a distinct butterfly:
//
//   t=2: pairs (a0,a2),(a1,a3) per block against psiRev[quarter+i]
//   t=1: pairs (b0,b1),(b2,b3) against psiRev[half+2i], psiRev[half+2i+1]
TEXT ·nttFwdTailAVX2(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), BX
	MOVQ psiRev_base+24(FP), R8
	MOVQ psiRevS_base+48(FP), R9
	MOVQ q+72(FP), AX
	LOADCONSTS(AX)
	MOVQ BX, CX
	SHRQ $2, CX
	LEAQ (R8)(CX*8), R10
	LEAQ (R9)(CX*8), R11
	MOVQ BX, DX
	SHRQ $1, DX
	LEAQ (R8)(DX*8), R12
	LEAQ (R9)(DX*8), R13
	SHLQ $3, BX

fwdtail_loop:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPERM2I128 $0x20, Y1, Y0, Y2
	VPERM2I128 $0x31, Y1, Y0, Y3
	VPERMQ $0x50, (R10), Y10
	VPERMQ $0x50, (R11), Y9
	ADDQ $16, R10
	ADDQ $16, R11
	CONDSUB2Q(Y2, Y8)
	VPSRLQ $32, Y3, Y4
	LAZYMUL(Y3, Y4, Y10, Y9, Y5, Y6, Y7, Y8, Y0)
	VPADDQ Y0, Y2, Y1
	VPSUBQ Y0, Y2, Y2
	VPADDQ Y13, Y2, Y2
	VPUNPCKLQDQ Y2, Y1, Y3
	VPUNPCKHQDQ Y2, Y1, Y4
	VMOVDQU (R12), Y10
	VMOVDQU (R13), Y9
	ADDQ $32, R12
	ADDQ $32, R13
	CONDSUB2Q(Y3, Y8)
	VPSRLQ $32, Y4, Y5
	LAZYMUL(Y4, Y5, Y10, Y9, Y6, Y7, Y8, Y0, Y1)
	VPADDQ Y1, Y3, Y0
	VPSUBQ Y1, Y3, Y2
	VPADDQ Y13, Y2, Y2
	CONDSUB2Q(Y0, Y8)
	CONDSUB2Q(Y2, Y8)
	CONDSUBQ(Y0, Y8)
	CONDSUBQ(Y2, Y8)
	VPUNPCKLQDQ Y2, Y0, Y3
	VPUNPCKHQDQ Y2, Y0, Y4
	VPERM2I128 $0x20, Y4, Y3, Y0
	VPERM2I128 $0x31, Y4, Y3, Y1
	VMOVDQU Y0, (SI)
	VMOVDQU Y1, 32(SI)
	ADDQ $64, SI
	SUBQ $64, BX
	JNZ fwdtail_loop
	VZEROUPPER
	RET

// func inttHeadAVX2(a, psiInvRev, psiInvRevS []uint64, q uint64)
//
// Fused first double layer (t=1 then t=2) of the inverse transform.
// Two blocks per iteration, outputs stay lazy in [0, 2q).
TEXT ·inttHeadAVX2(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), BX
	MOVQ psiInvRev_base+24(FP), R8
	MOVQ psiInvRevS_base+48(FP), R9
	MOVQ q+72(FP), AX
	LOADCONSTS(AX)
	MOVQ BX, CX
	SHRQ $2, CX
	LEAQ (R8)(CX*8), R10
	LEAQ (R9)(CX*8), R11
	MOVQ BX, DX
	SHRQ $1, DX
	LEAQ (R8)(DX*8), R12
	LEAQ (R9)(DX*8), R13
	SHLQ $3, BX

intthead_loop:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPUNPCKLQDQ Y1, Y0, Y2
	VPUNPCKHQDQ Y1, Y0, Y3
	VPADDQ Y3, Y2, Y0
	CONDSUB2Q(Y0, Y8)
	VPSUBQ Y3, Y2, Y1
	VPADDQ Y13, Y1, Y1
	VPERMQ $0xD8, (R12), Y10
	VPERMQ $0xD8, (R13), Y9
	ADDQ $32, R12
	ADDQ $32, R13
	VPSRLQ $32, Y1, Y4
	LAZYMUL(Y1, Y4, Y10, Y9, Y5, Y6, Y7, Y8, Y2)
	VPUNPCKLQDQ Y2, Y0, Y3
	VPUNPCKHQDQ Y2, Y0, Y4
	VPERM2I128 $0x20, Y4, Y3, Y0
	VPERM2I128 $0x31, Y4, Y3, Y1
	VPERMQ $0x50, (R10), Y10
	VPERMQ $0x50, (R11), Y9
	ADDQ $16, R10
	ADDQ $16, R11
	VPADDQ Y1, Y0, Y2
	CONDSUB2Q(Y2, Y8)
	VPSUBQ Y1, Y0, Y3
	VPADDQ Y13, Y3, Y3
	VPSRLQ $32, Y3, Y4
	LAZYMUL(Y3, Y4, Y10, Y9, Y5, Y6, Y7, Y8, Y0)
	VPERM2I128 $0x20, Y0, Y2, Y1
	VPERM2I128 $0x31, Y0, Y2, Y3
	VMOVDQU Y1, (SI)
	VMOVDQU Y3, 32(SI)
	ADDQ $64, SI
	SUBQ $64, BX
	JNZ intthead_loop
	VZEROUPPER
	RET

// func inttLayerAVX2(a, psiInvRev, psiInvRevS []uint64, grp, t int, q uint64)
//
// One inverse butterfly layer: r = condsub2q(u+v) -> x[j];
// y[j] = lazymul(u-v+2q, w).
TEXT ·inttLayerAVX2(SB), NOSPLIT, $0-96
	MOVQ a_base+0(FP), SI
	MOVQ psiInvRev_base+24(FP), R8
	MOVQ psiInvRevS_base+48(FP), R9
	MOVQ grp+72(FP), CX
	MOVQ t+80(FP), R10
	MOVQ q+88(FP), AX
	LOADCONSTS(AX)
	LEAQ (R8)(CX*8), R8
	LEAQ (R9)(CX*8), R9
	SHLQ $3, R10

invlayer_outer:
	VPBROADCASTQ (R8), Y11
	VPBROADCASTQ (R9), Y10
	ADDQ $8, R8
	ADDQ $8, R9
	MOVQ SI, DX
	LEAQ (SI)(R10*1), DI
	MOVQ R10, BX

invlayer_inner:
	VMOVDQU (DX), Y0
	VMOVDQU (DI), Y1
	VPADDQ Y1, Y0, Y2
	CONDSUB2Q(Y2, Y8)
	VMOVDQU Y2, (DX)
	VPSUBQ Y1, Y0, Y2
	VPADDQ Y13, Y2, Y2
	VPSRLQ $32, Y2, Y3
	LAZYMUL(Y2, Y3, Y11, Y10, Y4, Y5, Y6, Y7, Y8)
	VMOVDQU Y8, (DI)
	ADDQ $32, DX
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ invlayer_inner

	LEAQ (SI)(R10*2), SI
	DECQ CX
	JNZ invlayer_outer
	VZEROUPPER
	RET

// func inttTailAVX2(a []uint64, w1, w1s, w2, w2s, w3, w3s, nInv, nInvS, q uint64)
//
// Fused final double layer of the inverse transform (grp=2 then grp=1)
// over the strided quarter-slices, with the 1/N scaling and [0, q)
// reduction folded in. Lane-parallel, no shuffles.
TEXT ·inttTailAVX2(SB), NOSPLIT, $0-96
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), BX
	MOVQ q+88(FP), AX
	LOADCONSTS(AX)
	SHRQ $2, BX
	SHLQ $3, BX
	MOVQ SI, R8
	LEAQ (SI)(BX*1), R9
	LEAQ (R9)(BX*1), R10
	LEAQ (R10)(BX*1), R11

intttail_loop:
	VMOVDQU (R8), Y0
	VMOVDQU (R9), Y1
	VPADDQ Y1, Y0, Y2
	CONDSUB2Q(Y2, Y8)
	VPSUBQ Y1, Y0, Y3
	VPADDQ Y13, Y3, Y3
	VMOVDQU (R10), Y0
	VMOVDQU (R11), Y1
	VPADDQ Y1, Y0, Y4
	CONDSUB2Q(Y4, Y8)
	VPSUBQ Y1, Y0, Y5
	VPADDQ Y13, Y5, Y5
	VPADDQ Y4, Y2, Y0
	CONDSUB2Q(Y0, Y8)
	VPSUBQ Y4, Y2, Y2
	VPADDQ Y13, Y2, Y2
	VPBROADCASTQ nInv+72(FP), Y10
	VPBROADCASTQ nInvS+80(FP), Y9
	VPSRLQ $32, Y0, Y1
	LAZYMUL(Y0, Y1, Y10, Y9, Y4, Y6, Y7, Y8, Y11)
	CONDSUBQ(Y11, Y4)
	VMOVDQU Y11, (R8)
	VPBROADCASTQ w1+24(FP), Y10
	VPBROADCASTQ w1s+32(FP), Y9
	VPSRLQ $32, Y2, Y1
	LAZYMUL(Y2, Y1, Y10, Y9, Y0, Y4, Y6, Y7, Y8)
	VPBROADCASTQ nInv+72(FP), Y10
	VPBROADCASTQ nInvS+80(FP), Y9
	VPSRLQ $32, Y8, Y1
	LAZYMUL(Y8, Y1, Y10, Y9, Y0, Y2, Y4, Y6, Y7)
	CONDSUBQ(Y7, Y0)
	VMOVDQU Y7, (R10)
	VPBROADCASTQ w2+40(FP), Y10
	VPBROADCASTQ w2s+48(FP), Y9
	VPSRLQ $32, Y3, Y1
	LAZYMUL(Y3, Y1, Y10, Y9, Y0, Y2, Y4, Y6, Y7)
	VPBROADCASTQ w3+56(FP), Y10
	VPBROADCASTQ w3s+64(FP), Y9
	VPSRLQ $32, Y5, Y1
	LAZYMUL(Y5, Y1, Y10, Y9, Y0, Y2, Y4, Y6, Y8)
	VPADDQ Y8, Y7, Y0
	CONDSUB2Q(Y0, Y2)
	VPSUBQ Y8, Y7, Y3
	VPADDQ Y13, Y3, Y3
	VPBROADCASTQ nInv+72(FP), Y10
	VPBROADCASTQ nInvS+80(FP), Y9
	VPSRLQ $32, Y0, Y1
	LAZYMUL(Y0, Y1, Y10, Y9, Y2, Y4, Y6, Y7, Y8)
	CONDSUBQ(Y8, Y0)
	VMOVDQU Y8, (R9)
	VPBROADCASTQ w1+24(FP), Y10
	VPBROADCASTQ w1s+32(FP), Y9
	VPSRLQ $32, Y3, Y1
	LAZYMUL(Y3, Y1, Y10, Y9, Y0, Y2, Y4, Y6, Y7)
	VPBROADCASTQ nInv+72(FP), Y10
	VPBROADCASTQ nInvS+80(FP), Y9
	VPSRLQ $32, Y7, Y1
	LAZYMUL(Y7, Y1, Y10, Y9, Y0, Y2, Y4, Y6, Y8)
	CONDSUBQ(Y8, Y0)
	VMOVDQU Y8, (R11)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $32, BX
	JNZ intttail_loop
	VZEROUPPER
	RET

// func addVecAVX2(q uint64, a, b, out []uint64)
TEXT ·addVecAVX2(SB), NOSPLIT, $0-80
	MOVQ q+0(FP), AX
	LOADQLO32(AX)
	MOVQ a_base+8(FP), SI
	MOVQ b_base+32(FP), DX
	MOVQ out_base+56(FP), DI
	MOVQ out_len+64(FP), BX
	SHLQ $3, BX
	TESTQ BX, BX
	JZ addvec_done

addvec_loop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	VPADDQ Y1, Y0, Y0
	CONDSUBQ(Y0, Y1)
	VMOVDQU Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ addvec_loop

addvec_done:
	VZEROUPPER
	RET

// func subVecAVX2(q uint64, a, b, out []uint64)
TEXT ·subVecAVX2(SB), NOSPLIT, $0-80
	MOVQ q+0(FP), AX
	LOADQLO32(AX)
	MOVQ a_base+8(FP), SI
	MOVQ b_base+32(FP), DX
	MOVQ out_base+56(FP), DI
	MOVQ out_len+64(FP), BX
	SHLQ $3, BX
	TESTQ BX, BX
	JZ subvec_done

subvec_loop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	VPSUBQ Y1, Y0, Y0
	VPADDQ Y14, Y0, Y0
	CONDSUBQ(Y0, Y1)
	VMOVDQU Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ subvec_loop

subvec_done:
	VZEROUPPER
	RET

// func negVecAVX2(q uint64, a, out []uint64)
TEXT ·negVecAVX2(SB), NOSPLIT, $0-56
	MOVQ q+0(FP), AX
	LOADQLO32(AX)
	MOVQ a_base+8(FP), SI
	MOVQ out_base+32(FP), DI
	MOVQ out_len+40(FP), BX
	SHLQ $3, BX
	TESTQ BX, BX
	JZ negvec_done
	VPXOR Y2, Y2, Y2

negvec_loop:
	VMOVDQU (SI), Y0
	VPSUBQ Y0, Y14, Y1
	VPCMPEQQ Y2, Y0, Y3
	VPANDN Y1, Y3, Y1
	VMOVDQU Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ negvec_loop

negvec_done:
	VZEROUPPER
	RET

// MULMODCORE: canonical x*y mod q for Y0=x, Y1=y via the full 128-bit
// product and a 2^32-radix split reduction: with R32 = 2^32 mod q
// (Y13, Shoup companion Y12),
//   c = lazymul(P_hi, R32); d = c + hi32(P_lo); e = lazymul(d, R32);
//   f = e + lo32(P_lo) < 3q; two conditional subtractions by q.
// Result in Y6. Clobbers Y0..Y9. Requires 2^32 < q < 2^61.
#define MULMODCORE \
	VPSRLQ $32, Y0, Y2   \
	VPSRLQ $32, Y1, Y3   \
	VPMULUDQ Y1, Y0, Y4  \
	VPMULUDQ Y3, Y0, Y5  \
	VPMULUDQ Y1, Y2, Y6  \
	VPMULUDQ Y3, Y2, Y7  \
	VPADDQ Y6, Y5, Y8    \
	VPSLLQ $32, Y8, Y8   \
	VPADDQ Y4, Y8, Y8    \
	VPSRLQ $32, Y4, Y4   \
	VPAND Y15, Y5, Y9    \
	VPADDQ Y9, Y4, Y4    \
	VPAND Y15, Y6, Y9    \
	VPADDQ Y9, Y4, Y4    \
	VPSRLQ $32, Y4, Y4   \
	VPSRLQ $32, Y5, Y5   \
	VPSRLQ $32, Y6, Y6   \
	VPADDQ Y5, Y7, Y7    \
	VPADDQ Y6, Y7, Y7    \
	VPADDQ Y4, Y7, Y7    \
	VPSRLQ $32, Y7, Y0   \
	LAZYMUL(Y7, Y0, Y13, Y12, Y1, Y2, Y3, Y4, Y5) \
	VPSRLQ $32, Y8, Y0   \
	VPADDQ Y0, Y5, Y5    \
	VPSRLQ $32, Y5, Y0   \
	LAZYMUL(Y5, Y0, Y13, Y12, Y1, Y2, Y3, Y4, Y6) \
	VPAND Y15, Y8, Y0    \
	VPADDQ Y0, Y6, Y6    \
	CONDSUBQ(Y6, Y0)     \
	CONDSUBQ(Y6, Y0)

// func mulVecAVX2(q, r32, r32s uint64, a, b, out []uint64)
TEXT ·mulVecAVX2(SB), NOSPLIT, $0-96
	MOVQ q+0(FP), AX
	LOADQLO32(AX)
	VPBROADCASTQ r32+8(FP), Y13
	VPBROADCASTQ r32s+16(FP), Y12
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), DX
	MOVQ out_base+72(FP), DI
	MOVQ out_len+80(FP), BX
	SHLQ $3, BX
	TESTQ BX, BX
	JZ mulvec_done

mulvec_loop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	MULMODCORE
	VMOVDQU Y6, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ mulvec_loop

mulvec_done:
	VZEROUPPER
	RET

// func mulAddVecAVX2(q, r32, r32s uint64, a, b, out []uint64)
TEXT ·mulAddVecAVX2(SB), NOSPLIT, $0-96
	MOVQ q+0(FP), AX
	LOADQLO32(AX)
	VPBROADCASTQ r32+8(FP), Y13
	VPBROADCASTQ r32s+16(FP), Y12
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), DX
	MOVQ out_base+72(FP), DI
	MOVQ out_len+80(FP), BX
	SHLQ $3, BX
	TESTQ BX, BX
	JZ muladdvec_done

muladdvec_loop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	MULMODCORE
	VMOVDQU (DI), Y0
	VPADDQ Y6, Y0, Y0
	CONDSUBQ(Y0, Y1)
	VMOVDQU Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ muladdvec_loop

muladdvec_done:
	VZEROUPPER
	RET

// func mulShoupAddVecAVX2(q uint64, a, b, bs, out []uint64)
TEXT ·mulShoupAddVecAVX2(SB), NOSPLIT, $0-104
	MOVQ q+0(FP), AX
	LOADQLO32(AX)
	MOVQ a_base+8(FP), SI
	MOVQ b_base+32(FP), DX
	MOVQ bs_base+56(FP), R8
	MOVQ out_base+80(FP), DI
	MOVQ out_len+88(FP), BX
	SHLQ $3, BX
	TESTQ BX, BX
	JZ mulshoupadd_done

mulshoupadd_loop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y10
	VMOVDQU (R8), Y9
	VPSRLQ $32, Y0, Y1
	LAZYMUL(Y0, Y1, Y10, Y9, Y2, Y3, Y4, Y5, Y6)
	CONDSUBQ(Y6, Y0)
	VMOVDQU (DI), Y0
	VPADDQ Y6, Y0, Y0
	CONDSUBQ(Y0, Y1)
	VMOVDQU Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, R8
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ mulshoupadd_loop

mulshoupadd_done:
	VZEROUPPER
	RET

// func mulScalarVecAVX2(q, c, cs uint64, a, out []uint64)
TEXT ·mulScalarVecAVX2(SB), NOSPLIT, $0-72
	MOVQ q+0(FP), AX
	LOADQLO32(AX)
	VPBROADCASTQ c+8(FP), Y10
	VPBROADCASTQ cs+16(FP), Y9
	MOVQ a_base+24(FP), SI
	MOVQ out_base+48(FP), DI
	MOVQ out_len+56(FP), BX
	SHLQ $3, BX
	TESTQ BX, BX
	JZ mulscalar_done

mulscalar_loop:
	VMOVDQU (SI), Y0
	VPSRLQ $32, Y0, Y1
	LAZYMUL(Y0, Y1, Y10, Y9, Y2, Y3, Y4, Y5, Y6)
	CONDSUBQ(Y6, Y0)
	VMOVDQU Y6, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, BX
	JNZ mulscalar_loop

mulscalar_done:
	VZEROUPPER
	RET
