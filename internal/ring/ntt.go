package ring

// NTT transforms a in place from coefficient to evaluation (NTT) domain.
// The output is in bit-reversed order, following the standard iterative
// Cooley-Tukey decimation-in-time negacyclic transform.
//
// The butterflies use Harvey-style lazy reduction: intermediate values
// live in [0, 4q) and only the final pass reduces into [0, q), removing
// the data-dependent branches from the inner loops. This requires
// q < 2^62, which NewModulus guarantees (prime bit length ≤ 61).
func (m *Modulus) NTT(a []uint64) {
	n := m.N
	q := m.Q
	twoQ := 2 * q
	t := n
	for grp := 1; grp < n; grp <<= 1 {
		t >>= 1
		for i := 0; i < grp; i++ {
			j1 := 2 * i * t
			w := m.psiRev[grp+i]
			ws := m.psiRevS[grp+i]
			// Equal-length subslices let the compiler drop the bounds
			// checks in the butterfly loop.
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			for j, u := range x {
				if u >= twoQ {
					u -= twoQ
				}
				v := MulModShoupLazy(y[j], w, ws, q)
				x[j] = u + v
				y[j] = u - v + twoQ
			}
		}
	}
	for i, r := range a {
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		a[i] = r
	}
}

// INTT transforms a in place from NTT (bit-reversed) back to coefficient
// domain, including the 1/N scaling. It is the exact inverse of NTT and
// uses the same lazy-reduction butterflies (values stay in [0, 2q) and
// the scaling pass reduces fully).
func (m *Modulus) INTT(a []uint64) {
	n := m.N
	q := m.Q
	twoQ := 2 * q
	t := 1
	for grp := n >> 1; grp >= 1; grp >>= 1 {
		j1 := 0
		for i := 0; i < grp; i++ {
			w := m.psiInvRev[grp+i]
			ws := m.psiInvRevS[grp+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			for j, u := range x {
				v := y[j]
				r := u + v
				if r >= twoQ {
					r -= twoQ
				}
				x[j] = r
				y[j] = MulModShoupLazy(u-v+twoQ, w, ws, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range a {
		r := MulModShoupLazy(a[i], m.nInv, m.nInvS, q)
		if r >= q {
			r -= q
		}
		a[i] = r
	}
}
