package ring

// Negacyclic NTT kernels. Two implementations share the Harvey
// lazy-reduction butterflies (intermediates in [0, 4q), a single final
// reduction into [0, q), requiring q < 2^62 which NewModulus
// guarantees):
//
//   - NTTGeneric/INTTGeneric: the reference layer-at-a-time sweeps, one
//     pass over the array per butterfly layer plus a final reduction
//     sweep. Kept for tiny transforms (n < 16), for correctness tests,
//     and as the "serial" baseline of the copse-bench -nttjson ablation.
//   - NTT/INTT: the production kernels. The first two and last two
//     butterfly layers are each merged into one fused radix-4-style
//     pass that keeps four elements in registers across both layers,
//     and the final full-reduction (forward) / 1/N-scaling (inverse)
//     sweep is folded into the last fused pass. A logN-layer transform
//     therefore makes logN−2 passes over the array instead of logN+1,
//     cutting memory traffic where the serial kernel is bound by it.

// NTT transforms a in place from coefficient to evaluation (NTT) domain.
// The output is in bit-reversed order, following the standard iterative
// Cooley-Tukey decimation-in-time negacyclic transform.
func (m *Modulus) NTT(a []uint64) {
	if m.vec {
		m.nttVec(a)
		return
	}
	m.nttScalar(a)
}

// nttScalar is the fused scalar forward transform — the portable
// implementation and the bit-identity reference for the vector backend.
func (m *Modulus) nttScalar(a []uint64) {
	n := m.N
	if n < 16 {
		m.NTTGeneric(a)
		return
	}
	q := m.Q
	twoQ := 2 * q

	// Fused pass 1: layers grp=1 (t=n/2) and grp=2 (t=n/4). Elements
	// (j, j+n/4, j+n/2, j+3n/4) meet in both layers, so one sweep over
	// [0, n/4) covers both.
	quarter := n >> 2
	w1, w1s := m.psiRev[1], m.psiRevS[1]
	w2, w2s := m.psiRev[2], m.psiRevS[2]
	w3, w3s := m.psiRev[3], m.psiRevS[3]
	{
		x0 := a[0:quarter:quarter]
		x1 := a[quarter : 2*quarter : 2*quarter]
		x2 := a[2*quarter : 3*quarter : 3*quarter]
		x3 := a[3*quarter : n : n]
		for j, u0 := range x0 {
			// grp=1: (a0,a2) and (a1,a3) against w1.
			if u0 >= twoQ {
				u0 -= twoQ
			}
			v0 := MulModShoupLazy(x2[j], w1, w1s, q)
			b0, b2 := u0+v0, u0-v0+twoQ
			u1 := x1[j]
			if u1 >= twoQ {
				u1 -= twoQ
			}
			v1 := MulModShoupLazy(x3[j], w1, w1s, q)
			b1, b3 := u1+v1, u1-v1+twoQ
			// grp=2: (b0,b1) against w2, (b2,b3) against w3.
			if b0 >= twoQ {
				b0 -= twoQ
			}
			v0 = MulModShoupLazy(b1, w2, w2s, q)
			x0[j], x1[j] = b0+v0, b0-v0+twoQ
			if b2 >= twoQ {
				b2 -= twoQ
			}
			v1 = MulModShoupLazy(b3, w3, w3s, q)
			x2[j], x3[j] = b2+v1, b2-v1+twoQ
		}
	}

	// Middle layers grp=4 .. n/8 (t = n/8 .. 4), the reference sweep.
	t := n >> 3
	for grp := 4; grp < quarter; grp <<= 1 {
		for i := 0; i < grp; i++ {
			j1 := 2 * i * t
			w := m.psiRev[grp+i]
			ws := m.psiRevS[grp+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			for j, u := range x {
				if u >= twoQ {
					u -= twoQ
				}
				v := MulModShoupLazy(y[j], w, ws, q)
				x[j] = u + v
				y[j] = u - v + twoQ
			}
		}
		t >>= 1
	}

	// Fused pass 2: layers grp=n/4 (t=2) and grp=n/2 (t=1), with the
	// final reduction into [0, q) folded in. Block i covers elements
	// 4i..4i+3.
	half := n >> 1
	for i := 0; i < quarter; i++ {
		j1 := 4 * i
		w, ws := m.psiRev[quarter+i], m.psiRevS[quarter+i]
		// t=2: (a0,a2) and (a1,a3) against w.
		u0 := a[j1]
		if u0 >= twoQ {
			u0 -= twoQ
		}
		v0 := MulModShoupLazy(a[j1+2], w, ws, q)
		b0, b2 := u0+v0, u0-v0+twoQ
		u1 := a[j1+1]
		if u1 >= twoQ {
			u1 -= twoQ
		}
		v1 := MulModShoupLazy(a[j1+3], w, ws, q)
		b1, b3 := u1+v1, u1-v1+twoQ
		// t=1: (b0,b1) against psiRev[n/2+2i], (b2,b3) against the next.
		wa, was := m.psiRev[half+2*i], m.psiRevS[half+2*i]
		if b0 >= twoQ {
			b0 -= twoQ
		}
		v0 = MulModShoupLazy(b1, wa, was, q)
		c0, c1 := b0+v0, b0-v0+twoQ
		wb, wbs := m.psiRev[half+2*i+1], m.psiRevS[half+2*i+1]
		if b2 >= twoQ {
			b2 -= twoQ
		}
		v1 = MulModShoupLazy(b3, wb, wbs, q)
		c2, c3 := b2+v1, b2-v1+twoQ
		a[j1] = reduce4Q(c0, q, twoQ)
		a[j1+1] = reduce4Q(c1, q, twoQ)
		a[j1+2] = reduce4Q(c2, q, twoQ)
		a[j1+3] = reduce4Q(c3, q, twoQ)
	}
}

// reduce4Q reduces r ∈ [0, 4q) into [0, q).
func reduce4Q(r, q, twoQ uint64) uint64 {
	if r >= twoQ {
		r -= twoQ
	}
	if r >= q {
		r -= q
	}
	return r
}

// INTT transforms a in place from NTT (bit-reversed) back to coefficient
// domain, including the 1/N scaling. It is the exact inverse of NTT.
func (m *Modulus) INTT(a []uint64) {
	if m.vec {
		m.inttVec(a)
		return
	}
	m.inttScalar(a)
}

// inttScalar is the fused scalar inverse transform — the portable
// implementation and the bit-identity reference for the vector backend.
func (m *Modulus) inttScalar(a []uint64) {
	n := m.N
	if n < 16 {
		m.INTTGeneric(a)
		return
	}
	q := m.Q
	twoQ := 2 * q

	// Fused pass 1: layers grp=n/2 (t=1) and grp=n/4 (t=2). Block i
	// covers elements 4i..4i+3.
	quarter := n >> 2
	half := n >> 1
	for i := 0; i < quarter; i++ {
		j1 := 4 * i
		// t=1: (a0,a1) against psiInvRev[n/2+2i], (a2,a3) against the next.
		wa, was := m.psiInvRev[half+2*i], m.psiInvRevS[half+2*i]
		u0, v0 := a[j1], a[j1+1]
		b0 := u0 + v0
		if b0 >= twoQ {
			b0 -= twoQ
		}
		b1 := MulModShoupLazy(u0-v0+twoQ, wa, was, q)
		wb, wbs := m.psiInvRev[half+2*i+1], m.psiInvRevS[half+2*i+1]
		u1, v1 := a[j1+2], a[j1+3]
		b2 := u1 + v1
		if b2 >= twoQ {
			b2 -= twoQ
		}
		b3 := MulModShoupLazy(u1-v1+twoQ, wb, wbs, q)
		// t=2: (b0,b2) and (b1,b3) against psiInvRev[n/4+i].
		w2, w2s := m.psiInvRev[quarter+i], m.psiInvRevS[quarter+i]
		c0 := b0 + b2
		if c0 >= twoQ {
			c0 -= twoQ
		}
		a[j1] = c0
		a[j1+2] = MulModShoupLazy(b0-b2+twoQ, w2, w2s, q)
		c1 := b1 + b3
		if c1 >= twoQ {
			c1 -= twoQ
		}
		a[j1+1] = c1
		a[j1+3] = MulModShoupLazy(b1-b3+twoQ, w2, w2s, q)
	}

	// Middle layers grp=n/8 .. 4 (t = 4 .. n/16), the reference sweep.
	t := 4
	for grp := n >> 3; grp >= 4; grp >>= 1 {
		j1 := 0
		for i := 0; i < grp; i++ {
			w := m.psiInvRev[grp+i]
			ws := m.psiInvRevS[grp+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			for j, u := range x {
				v := y[j]
				r := u + v
				if r >= twoQ {
					r -= twoQ
				}
				x[j] = r
				y[j] = MulModShoupLazy(u-v+twoQ, w, ws, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}

	// Fused pass 2: layers grp=2 (t=n/4) and grp=1 (t=n/2), with the
	// 1/N scaling and final reduction folded in. Elements
	// (j, j+n/4, j+n/2, j+3n/4) meet in both layers.
	w1, w1s := m.psiInvRev[1], m.psiInvRevS[1]
	w2, w2s := m.psiInvRev[2], m.psiInvRevS[2]
	w3, w3s := m.psiInvRev[3], m.psiInvRevS[3]
	nInv, nInvS := m.nInv, m.nInvS
	{
		x0 := a[0:quarter:quarter]
		x1 := a[quarter : 2*quarter : 2*quarter]
		x2 := a[2*quarter : 3*quarter : 3*quarter]
		x3 := a[3*quarter : n : n]
		for j, u0 := range x0 {
			// grp=2: (a0,a1) against w2, (a2,a3) against w3.
			v0 := x1[j]
			b0 := u0 + v0
			if b0 >= twoQ {
				b0 -= twoQ
			}
			b1 := MulModShoupLazy(u0-v0+twoQ, w2, w2s, q)
			u1, v1 := x2[j], x3[j]
			b2 := u1 + v1
			if b2 >= twoQ {
				b2 -= twoQ
			}
			b3 := MulModShoupLazy(u1-v1+twoQ, w3, w3s, q)
			// grp=1: (b0,b2) and (b1,b3) against w1, then scale by 1/N.
			c0 := b0 + b2
			if c0 >= twoQ {
				c0 -= twoQ
			}
			x0[j] = scaleReduce(c0, nInv, nInvS, q)
			x2[j] = scaleReduce(MulModShoupLazy(b0-b2+twoQ, w1, w1s, q), nInv, nInvS, q)
			c1 := b1 + b3
			if c1 >= twoQ {
				c1 -= twoQ
			}
			x1[j] = scaleReduce(c1, nInv, nInvS, q)
			x3[j] = scaleReduce(MulModShoupLazy(b1-b3+twoQ, w1, w1s, q), nInv, nInvS, q)
		}
	}
}

// scaleReduce multiplies by 1/N (Shoup) and reduces into [0, q).
func scaleReduce(x, nInv, nInvS, q uint64) uint64 {
	r := MulModShoupLazy(x, nInv, nInvS, q)
	if r >= q {
		r -= q
	}
	return r
}

// NTTGeneric is the reference layer-at-a-time forward transform: one
// sweep per butterfly layer plus a final reduction sweep. It computes
// exactly what NTT computes.
func (m *Modulus) NTTGeneric(a []uint64) {
	n := m.N
	q := m.Q
	twoQ := 2 * q
	t := n
	for grp := 1; grp < n; grp <<= 1 {
		t >>= 1
		for i := 0; i < grp; i++ {
			j1 := 2 * i * t
			w := m.psiRev[grp+i]
			ws := m.psiRevS[grp+i]
			// Equal-length subslices let the compiler drop the bounds
			// checks in the butterfly loop.
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			for j, u := range x {
				if u >= twoQ {
					u -= twoQ
				}
				v := MulModShoupLazy(y[j], w, ws, q)
				x[j] = u + v
				y[j] = u - v + twoQ
			}
		}
	}
	for i, r := range a {
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		a[i] = r
	}
}

// INTTGeneric is the reference layer-at-a-time inverse transform,
// including the 1/N scaling. It computes exactly what INTT computes.
func (m *Modulus) INTTGeneric(a []uint64) {
	n := m.N
	q := m.Q
	twoQ := 2 * q
	t := 1
	for grp := n >> 1; grp >= 1; grp >>= 1 {
		j1 := 0
		for i := 0; i < grp; i++ {
			w := m.psiInvRev[grp+i]
			ws := m.psiInvRevS[grp+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			for j, u := range x {
				v := y[j]
				r := u + v
				if r >= twoQ {
					r -= twoQ
				}
				x[j] = r
				y[j] = MulModShoupLazy(u-v+twoQ, w, ws, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range a {
		r := MulModShoupLazy(a[i], m.nInv, m.nInvS, q)
		if r >= q {
			r -= q
		}
		a[i] = r
	}
}
