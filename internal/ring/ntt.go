package ring

// NTT transforms a in place from coefficient to evaluation (NTT) domain.
// The output is in bit-reversed order, following the standard iterative
// Cooley-Tukey decimation-in-time negacyclic transform. len(a) must equal
// the modulus transform size.
func (m *Modulus) NTT(a []uint64) {
	n := m.N
	q := m.Q
	t := n
	for grp := 1; grp < n; grp <<= 1 {
		t >>= 1
		for i := 0; i < grp; i++ {
			j1 := 2 * i * t
			j2 := j1 + t
			w := m.psiRev[grp+i]
			ws := m.psiRevS[grp+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := MulModShoup(a[j+t], w, ws, q)
				a[j] = AddMod(u, v, q)
				a[j+t] = SubMod(u, v, q)
			}
		}
	}
}

// INTT transforms a in place from NTT (bit-reversed) back to coefficient
// domain, including the 1/N scaling. It is the exact inverse of NTT.
func (m *Modulus) INTT(a []uint64) {
	n := m.N
	q := m.Q
	t := 1
	for grp := n >> 1; grp >= 1; grp >>= 1 {
		j1 := 0
		for i := 0; i < grp; i++ {
			j2 := j1 + t
			w := m.psiInvRev[grp+i]
			ws := m.psiInvRevS[grp+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = AddMod(u, v, q)
				a[j+t] = MulModShoup(SubMod(u, v, q), w, ws, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range a {
		a[i] = MulModShoup(a[i], m.nInv, m.nInvS, q)
	}
}
