package train

import (
	"bytes"
	"strings"
	"testing"

	"copse/internal/synth"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := synth.Income(50, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds.X, ds.Y, ds.FeatureNames, ds.Labels); err != nil {
		t.Fatal(err)
	}
	x, y, names, labels, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != len(ds.X) || len(names) != len(ds.FeatureNames) {
		t.Fatalf("shape changed: %dx%d", len(x), len(names))
	}
	for i := range x {
		for j := range x[i] {
			if x[i][j] != ds.X[i][j] {
				t.Fatalf("row %d col %d: %g vs %g", i, j, x[i][j], ds.X[i][j])
			}
		}
		if labels[y[i]] != ds.Labels[ds.Y[i]] {
			t.Fatalf("row %d label mismatch", i)
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	bad := []string{
		"",
		"only_one_column\n1\n",
		"a,label\nnot_a_number,x\n",
		"a,label\n",               // no rows
		"a,b,label\n1,2,x\n1,2\n", // ragged (csv catches)
	}
	for i, s := range bad {
		if _, _, _, _, err := LoadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, s)
		}
	}
}

func TestLoadCSVTrainsEndToEnd(t *testing.T) {
	const data = `f1,f2,label
1,0,no
2,0,no
3,0,no
8,0,yes
9,0,yes
10,0,yes
`
	x, y, names, labels, err := LoadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "f1" || labels[0] != "no" || labels[1] != "yes" {
		t.Fatalf("parsed: names=%v labels=%v", names, labels)
	}
	tr, err := Fit(x, y, labels, Config{NumTrees: 1, MaxDepth: 2, MinLeaf: 1, FeatureFraction: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("accuracy %g on separable CSV data", acc)
	}
}
