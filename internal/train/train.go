// Package train implements CART decision trees (Gini impurity) and
// bagged random forests over tabular float data, plus the fixed-point
// quantization that turns a trained float model into the integer
// thresholds COPSE compiles. It replaces the paper's use of
// scikit-learn's RandomForestClassifier (§8.1); the structural statistics
// that drive COPSE's cost model (trees, depth, branches, multiplicities)
// come out comparable.
package train

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"copse/internal/bits"
	"copse/internal/model"
)

// Config controls forest training.
type Config struct {
	// NumTrees is the forest size (the paper's -5/-15 suffixes).
	NumTrees int
	// MaxDepth bounds every tree's branch depth.
	MaxDepth int
	// MinLeaf is the minimum sample count in a leaf.
	MinLeaf int
	// FeatureFraction is the fraction of features considered per split;
	// 0 means sqrt(F)/F, the random-forest default.
	FeatureFraction float64
	// MaxThresholds caps the candidate split points per feature per
	// node; 0 means 32.
	MaxThresholds int
	// Precision is the fixed-point width of the quantized model.
	Precision int
	// Seed makes training deterministic.
	Seed uint64
}

func (c *Config) withDefaults(numFeatures int) Config {
	out := *c
	if out.NumTrees == 0 {
		out.NumTrees = 5
	}
	if out.MaxDepth == 0 {
		out.MaxDepth = 8
	}
	if out.MinLeaf == 0 {
		out.MinLeaf = 2
	}
	if out.FeatureFraction == 0 {
		out.FeatureFraction = math.Sqrt(float64(numFeatures)) / float64(numFeatures)
	}
	if out.MaxThresholds == 0 {
		out.MaxThresholds = 32
	}
	if out.Precision == 0 {
		out.Precision = 8
	}
	return out
}

// Trained is a quantized random forest ready for COPSE compilation,
// together with the per-feature quantizers the data owner uses to encode
// queries (the quantizer parameters are public, like the feature names).
type Trained struct {
	Forest     *model.Forest
	Quantizers []*bits.Quantizer
}

// Fit trains a random forest on X (rows of features) and Y (label
// indices into labels).
func Fit(x [][]float64, y []int, labels []string, cfg Config) (*Trained, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("train: %d rows vs %d labels", len(x), len(y))
	}
	numFeatures := len(x[0])
	if numFeatures == 0 {
		return nil, fmt.Errorf("train: rows have no features")
	}
	for i, yi := range y {
		if yi < 0 || yi >= len(labels) {
			return nil, fmt.Errorf("train: row %d label %d out of range", i, yi)
		}
	}
	c := cfg.withDefaults(numFeatures)

	// Per-feature quantizers over the observed range (slightly widened so
	// boundary values do not clamp).
	quantizers := make([]*bits.Quantizer, numFeatures)
	for f := 0; f < numFeatures; f++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range x {
			lo = math.Min(lo, row[f])
			hi = math.Max(hi, row[f])
		}
		if !(lo < hi) {
			hi = lo + 1 // constant feature
		}
		span := hi - lo
		q, err := bits.NewQuantizer(lo-0.001*span, hi+0.001*span, c.Precision)
		if err != nil {
			return nil, err
		}
		quantizers[f] = q
	}

	r := rand.New(rand.NewPCG(c.Seed, 0x7ea1))
	forest := &model.Forest{
		Labels:      append([]string(nil), labels...),
		NumFeatures: numFeatures,
		Precision:   c.Precision,
	}
	for ti := 0; ti < c.NumTrees; ti++ {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = r.IntN(len(x)) // bootstrap sample
		}
		tr := &treeBuilder{
			x: x, y: y, cfg: c,
			numLabels: len(labels),
			rng:       rand.New(rand.NewPCG(c.Seed, uint64(ti)+1)),
		}
		rootF := tr.build(idx, 0)
		root := quantizeNode(rootF, quantizers)
		if root.Leaf {
			// COPSE needs at least one branch per tree; degenerate
			// trees get a trivial always-same-label split.
			root = &model.Node{
				Feature: 0, Threshold: 0,
				Left:  &model.Node{Leaf: true, Label: root.Label},
				Right: &model.Node{Leaf: true, Label: root.Label},
			}
		}
		forest.Trees = append(forest.Trees, &model.Tree{Root: root})
	}
	if err := forest.Validate(); err != nil {
		return nil, err
	}
	return &Trained{Forest: forest, Quantizers: quantizers}, nil
}

// floatNode is the pre-quantization tree node.
type floatNode struct {
	feature   int
	threshold float64
	left      *floatNode
	right     *floatNode
	leaf      bool
	label     int
}

type treeBuilder struct {
	x         [][]float64
	y         []int
	cfg       Config
	numLabels int
	rng       *rand.Rand
}

func (t *treeBuilder) build(idx []int, depth int) *floatNode {
	counts := make([]int, t.numLabels)
	for _, i := range idx {
		counts[t.y[i]]++
	}
	majority, pure := argmaxPure(counts, len(idx))
	if pure || depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf {
		return &floatNode{leaf: true, label: majority}
	}

	numFeatures := len(t.x[0])
	k := max(1, int(math.Round(t.cfg.FeatureFraction*float64(numFeatures))))
	features := t.rng.Perm(numFeatures)[:k]

	bestGini := math.Inf(1)
	bestFeature, bestThreshold := -1, 0.0
	parentGini := gini(counts, len(idx))
	for _, f := range features {
		thresholds := t.candidateThresholds(idx, f)
		for _, thr := range thresholds {
			g, ok := t.splitGini(idx, f, thr)
			if ok && g < bestGini {
				bestGini, bestFeature, bestThreshold = g, f, thr
			}
		}
	}
	if bestFeature < 0 || bestGini >= parentGini-1e-12 {
		return &floatNode{leaf: true, label: majority}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if t.x[i][bestFeature] > bestThreshold {
			rightIdx = append(rightIdx, i)
		} else {
			leftIdx = append(leftIdx, i)
		}
	}
	return &floatNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      t.build(leftIdx, depth+1),
		right:     t.build(rightIdx, depth+1),
	}
}

// candidateThresholds returns up to MaxThresholds split midpoints for
// feature f over the sample.
func (t *treeBuilder) candidateThresholds(idx []int, f int) []float64 {
	vals := make([]float64, 0, len(idx))
	for _, i := range idx {
		vals = append(vals, t.x[i][f])
	}
	sort.Float64s(vals)
	var mids []float64
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			mids = append(mids, (vals[i]+vals[i-1])/2)
		}
	}
	if len(mids) <= t.cfg.MaxThresholds {
		return mids
	}
	out := make([]float64, t.cfg.MaxThresholds)
	for i := range out {
		out[i] = mids[i*len(mids)/t.cfg.MaxThresholds]
	}
	return out
}

// splitGini returns the weighted Gini impurity of splitting at
// (f, thr); ok is false when a side violates MinLeaf.
func (t *treeBuilder) splitGini(idx []int, f int, thr float64) (float64, bool) {
	leftCounts := make([]int, t.numLabels)
	rightCounts := make([]int, t.numLabels)
	nl, nr := 0, 0
	for _, i := range idx {
		if t.x[i][f] > thr {
			rightCounts[t.y[i]]++
			nr++
		} else {
			leftCounts[t.y[i]]++
			nl++
		}
	}
	if nl < t.cfg.MinLeaf || nr < t.cfg.MinLeaf {
		return 0, false
	}
	n := float64(nl + nr)
	return float64(nl)/n*gini(leftCounts, nl) + float64(nr)/n*gini(rightCounts, nr), true
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func argmaxPure(counts []int, n int) (int, bool) {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best, counts[best] == n
}

func quantizeNode(n *floatNode, quantizers []*bits.Quantizer) *model.Node {
	if n.leaf {
		return &model.Node{Leaf: true, Label: n.label}
	}
	return &model.Node{
		Feature:   n.feature,
		Threshold: quantizers[n.feature].Quantize(n.threshold),
		Left:      quantizeNode(n.left, quantizers),
		Right:     quantizeNode(n.right, quantizers),
	}
}

// QuantizeFeatures encodes a float feature vector on the model's
// fixed-point grid (Diane's preprocessing).
func (tr *Trained) QuantizeFeatures(x []float64) ([]uint64, error) {
	if len(x) != len(tr.Quantizers) {
		return nil, fmt.Errorf("train: %d features, model wants %d", len(x), len(tr.Quantizers))
	}
	out := make([]uint64, len(x))
	for i, v := range x {
		out[i] = tr.Quantizers[i].Quantize(v)
	}
	return out, nil
}

// Predict returns the plurality label for a float feature vector, using
// the same quantized inference path the secure pipeline implements.
func (tr *Trained) Predict(x []float64) (int, error) {
	q, err := tr.QuantizeFeatures(x)
	if err != nil {
		return 0, err
	}
	votes := tr.Forest.Classify(q)
	return model.Plurality(votes, len(tr.Forest.Labels)), nil
}

// Accuracy evaluates the forest on a labelled set.
func (tr *Trained) Accuracy(x [][]float64, y []int) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("train: empty evaluation set")
	}
	correct := 0
	for i := range x {
		p, err := tr.Predict(x[i])
		if err != nil {
			return 0, err
		}
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}
