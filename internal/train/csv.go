package train

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// LoadCSV reads a labelled dataset: a header row, float feature columns,
// and the label as the final column (string labels are enumerated in
// order of first appearance).
func LoadCSV(r io.Reader) (x [][]float64, y []int, featureNames, labels []string, err error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("train: reading CSV header: %w", err)
	}
	if len(header) < 2 {
		return nil, nil, nil, nil, fmt.Errorf("train: CSV needs at least one feature and a label column")
	}
	featureNames = header[:len(header)-1]
	labelIdx := map[string]int{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("train: CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, nil, nil, nil, fmt.Errorf("train: CSV line %d: %d columns, want %d", line, len(rec), len(header))
		}
		row := make([]float64, len(featureNames))
		for i := range featureNames {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, nil, nil, nil, fmt.Errorf("train: CSV line %d column %q: %w", line, header[i], err)
			}
			row[i] = v
		}
		lbl := rec[len(rec)-1]
		idx, ok := labelIdx[lbl]
		if !ok {
			idx = len(labels)
			labelIdx[lbl] = idx
			labels = append(labels, lbl)
		}
		x = append(x, row)
		y = append(y, idx)
	}
	if len(x) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("train: CSV has no data rows")
	}
	return x, y, featureNames, labels, nil
}

// WriteCSV writes a labelled dataset in the format LoadCSV reads.
func WriteCSV(w io.Writer, x [][]float64, y []int, featureNames, labels []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append(append([]string{}, featureNames...), "label")); err != nil {
		return err
	}
	for i, row := range x {
		rec := make([]string, 0, len(row)+1)
		for _, v := range row {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if y[i] < 0 || y[i] >= len(labels) {
			return fmt.Errorf("train: row %d label %d out of range", i, y[i])
		}
		rec = append(rec, labels[y[i]])
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
