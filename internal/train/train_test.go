package train

import (
	"testing"

	"copse/internal/model"
	"copse/internal/synth"
)

func TestFitOnSeparableData(t *testing.T) {
	// Trivially separable: label = x0 > 5.
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		v := float64(i % 11)
		x = append(x, []float64{v, float64(i % 3)})
		if v > 5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tr, err := Fit(x, y, []string{"lo", "hi"}, Config{NumTrees: 3, MaxDepth: 4, Seed: 1, FeatureFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("accuracy on separable data = %.3f, want ≈ 1", acc)
	}
}

func TestFitIncomeAndSoccer(t *testing.T) {
	cases := []struct {
		ds       *synth.Dataset
		minAcc   float64
		numTrees int
	}{
		{synth.Income(2000, 1), 0.70, 5},
		{synth.Soccer(2000, 1), 0.55, 5},
	}
	for _, c := range cases {
		trainSet, testSet := c.ds.Split(0.8, 2)
		tr, err := Fit(trainSet.X, trainSet.Y, c.ds.Labels, Config{NumTrees: c.numTrees, MaxDepth: 8, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", c.ds.Name, err)
		}
		acc, err := tr.Accuracy(testSet.X, testSet.Y)
		if err != nil {
			t.Fatal(err)
		}
		// Must beat the majority-class baseline.
		counts := map[int]int{}
		for _, yi := range testSet.Y {
			counts[yi]++
		}
		maxCount := 0
		for _, n := range counts {
			maxCount = max(maxCount, n)
		}
		baseline := float64(maxCount) / float64(len(testSet.Y))
		if acc <= baseline {
			t.Errorf("%s: accuracy %.3f does not beat majority baseline %.3f", c.ds.Name, acc, baseline)
		}
		if acc < c.minAcc {
			t.Errorf("%s: accuracy %.3f below floor %.3f", c.ds.Name, acc, c.minAcc)
		}
		if got := len(tr.Forest.Trees); got != c.numTrees {
			t.Errorf("%s: %d trees, want %d", c.ds.Name, got, c.numTrees)
		}
		if err := tr.Forest.Validate(); err != nil {
			t.Errorf("%s: invalid forest: %v", c.ds.Name, err)
		}
		if d := tr.Forest.Depth(); d > 8 {
			t.Errorf("%s: depth %d exceeds MaxDepth", c.ds.Name, d)
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	ds := synth.Income(300, 5)
	cfg := Config{NumTrees: 3, MaxDepth: 5, Seed: 11}
	a, err := Fit(ds.X, ds.Y, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(ds.X, ds.Y, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := model.FormatString(a.Forest)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := model.FormatString(b.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Error("same seed produced different forests")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, []string{"a"}, Config{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Fit([][]float64{{1}}, []int{0, 1}, []string{"a", "b"}, Config{}); err == nil {
		t.Error("row/label mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}}, []int{5}, []string{"a"}, Config{}); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := Fit([][]float64{{}}, []int{0}, []string{"a"}, Config{}); err == nil {
		t.Error("featureless rows accepted")
	}
}

func TestDegenerateDataStillCompilable(t *testing.T) {
	// All rows identical: trees collapse to leaves, which Fit must
	// expand into trivial branches so COPSE can compile them.
	x := [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2}}
	y := []int{1, 1, 1, 1}
	tr, err := Fit(x, y, []string{"a", "b"}, Config{NumTrees: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for ti, tree := range tr.Forest.Trees {
		if tree.Root.Leaf {
			t.Errorf("tree %d is a bare leaf", ti)
		}
	}
	p, err := tr.Predict([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("Predict = %d, want 1", p)
	}
}

func TestQuantizeFeaturesErrors(t *testing.T) {
	ds := synth.Income(100, 7)
	tr, err := Fit(ds.X, ds.Y, ds.Labels, Config{NumTrees: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.QuantizeFeatures([]float64{1}); err == nil {
		t.Error("wrong feature count accepted")
	}
	if _, err := tr.Accuracy(nil, nil); err == nil {
		t.Error("empty eval set accepted")
	}
}
