package bits

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestTransposeRoundTrip(t *testing.T) {
	f := func(seed uint64, pRaw uint8, nRaw uint8) bool {
		p := int(pRaw%16) + 1
		n := int(nRaw%20) + 1
		r := rand.New(rand.NewPCG(seed, 1))
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = r.Uint64N(1 << uint(p))
		}
		planes, err := Transpose(vals, p)
		if err != nil {
			return false
		}
		if len(planes) != p {
			return false
		}
		back := FromPlanes(planes)
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransposeMSBFirst(t *testing.T) {
	planes, err := Transpose([]uint64{0b101}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if planes[0][0] != 1 || planes[1][0] != 0 || planes[2][0] != 1 {
		t.Errorf("planes = %v, want [1 0 1] (MSB first)", planes)
	}
}

func TestTransposeErrors(t *testing.T) {
	if _, err := Transpose([]uint64{4}, 2); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := Transpose([]uint64{1}, 0); err == nil {
		t.Error("zero precision accepted")
	}
	if _, err := Transpose([]uint64{1}, 64); err == nil {
		t.Error("precision 64 accepted")
	}
}

func TestFromPlanesEmpty(t *testing.T) {
	if got := FromPlanes(nil); got != nil {
		t.Errorf("FromPlanes(nil) = %v", got)
	}
}

func TestQuantizer(t *testing.T) {
	q, err := NewQuantizer(0, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Quantize(0); got != 0 {
		t.Errorf("Quantize(0) = %d", got)
	}
	if got := q.Quantize(100); got != 255 {
		t.Errorf("Quantize(100) = %d", got)
	}
	if got := q.Quantize(-5); got != 0 {
		t.Errorf("Quantize(-5) = %d, want clamp to 0", got)
	}
	if got := q.Quantize(200); got != 255 {
		t.Errorf("Quantize(200) = %d, want clamp to 255", got)
	}
	// Monotonicity property.
	f := func(a, b float64) bool {
		if a != a || b != b { // NaN
			return true
		}
		if a > b {
			a, b = b, a
		}
		return q.Quantize(a) <= q.Quantize(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Round trip stays within one grid cell.
	for _, x := range []float64{0, 12.5, 50, 99.9} {
		v := q.Quantize(x)
		back := q.Dequantize(v)
		if diff := back - x; diff > 0.5 || diff < -0.5 {
			t.Errorf("Dequantize(Quantize(%g)) = %g, off by %g", x, back, diff)
		}
	}
}

func TestQuantizerErrors(t *testing.T) {
	if _, err := NewQuantizer(1, 1, 8); err == nil {
		t.Error("degenerate range accepted")
	}
	if _, err := NewQuantizer(0, 1, 0); err == nil {
		t.Error("zero precision accepted")
	}
	if _, err := NewQuantizer(0, 1, 40); err == nil {
		t.Error("precision 40 accepted")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 15: 16, 16: 16, 17: 32, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
