// Package bits implements the fixed-point, bit-transposed data
// representation of the paper's §4.1.2: a vector of k values with
// precision p becomes p bitvectors of length k, bitvector i holding bit i
// (MSB first) of every element. The transposed layout is what lets the
// comparison step operate on all decision nodes in parallel.
package bits

import (
	"fmt"
	"math"
)

// Transpose packs vals into precision bit-planes, MSB first:
// out[i][j] = bit (precision-1-i) of vals[j].
func Transpose(vals []uint64, precision int) ([][]uint64, error) {
	if precision < 1 || precision > 63 {
		return nil, fmt.Errorf("bits: precision %d out of range [1,63]", precision)
	}
	limit := uint64(1) << uint(precision)
	out := make([][]uint64, precision)
	for i := range out {
		out[i] = make([]uint64, len(vals))
	}
	for j, v := range vals {
		if v >= limit {
			return nil, fmt.Errorf("bits: value %d at index %d exceeds %d-bit precision", v, j, precision)
		}
		for i := 0; i < precision; i++ {
			out[i][j] = (v >> uint(precision-1-i)) & 1
		}
	}
	return out, nil
}

// FromPlanes inverts Transpose.
func FromPlanes(planes [][]uint64) []uint64 {
	if len(planes) == 0 {
		return nil
	}
	p := len(planes)
	out := make([]uint64, len(planes[0]))
	for j := range out {
		var v uint64
		for i := 0; i < p; i++ {
			v = v<<1 | (planes[i][j] & 1)
		}
		out[j] = v
	}
	return out
}

// Quantizer maps real-valued features and thresholds onto the p-bit
// fixed-point grid the secure comparison operates on. Model owner and
// data owner must share the same quantizer (its parameters are public,
// like the feature names).
type Quantizer struct {
	Min, Max  float64
	Precision int
}

// NewQuantizer builds a quantizer over [min, max] with p-bit output.
func NewQuantizer(min, max float64, precision int) (*Quantizer, error) {
	if precision < 1 || precision > 32 {
		return nil, fmt.Errorf("bits: precision %d out of range [1,32]", precision)
	}
	if !(min < max) {
		return nil, fmt.Errorf("bits: invalid range [%g, %g]", min, max)
	}
	return &Quantizer{Min: min, Max: max, Precision: precision}, nil
}

// Quantize maps x into [0, 2^p-1], clamping out-of-range inputs.
func (q *Quantizer) Quantize(x float64) uint64 {
	levels := float64(uint64(1) << uint(q.Precision))
	scaled := (x - q.Min) / (q.Max - q.Min) * (levels - 1)
	if math.IsNaN(scaled) || scaled < 0 {
		return 0
	}
	if scaled > levels-1 {
		return uint64(levels - 1)
	}
	return uint64(math.Round(scaled))
}

// Dequantize maps a grid point back to the middle of its cell (for
// diagnostics and tests).
func (q *Quantizer) Dequantize(v uint64) float64 {
	levels := float64(uint64(1) << uint(q.Precision))
	return q.Min + float64(v)/(levels-1)*(q.Max-q.Min)
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
