package he_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"copse/internal/he"
	"copse/internal/he/heclear"
)

func bitsVec(r *rand.Rand, n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(r.IntN(2))
	}
	return v
}

// operandFor returns vals as either a cipher or plain operand.
func operandFor(t *testing.T, b he.Backend, vals []uint64, cipher bool) he.Operand {
	t.Helper()
	if cipher {
		ct, err := b.Encrypt(vals)
		if err != nil {
			t.Fatal(err)
		}
		return he.Cipher(ct)
	}
	op, err := he.NewPlain(b, vals)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestOperandAlgebra checks Add/Mul/Xor/Not over every cipher/plain
// combination against direct boolean arithmetic.
func TestOperandAlgebra(t *testing.T) {
	b := heclear.New(16, 65537)
	r := rand.New(rand.NewPCG(1, 1))
	for _, xCipher := range []bool{true, false} {
		for _, yCipher := range []bool{true, false} {
			x := bitsVec(r, 16)
			y := bitsVec(r, 16)
			ox := operandFor(t, b, x, xCipher)
			oy := operandFor(t, b, y, yCipher)

			check := func(name string, got he.Operand, f func(a, c uint64) uint64) {
				vals, err := he.Reveal(b, got)
				if err != nil {
					t.Fatalf("%s reveal: %v", name, err)
				}
				for i := range x {
					if vals[i] != f(x[i], y[i]) {
						t.Fatalf("%s (cipher=%v,%v) slot %d: got %d want %d",
							name, xCipher, yCipher, i, vals[i], f(x[i], y[i]))
					}
				}
			}

			sum, err := he.Add(b, ox, oy)
			if err != nil {
				t.Fatal(err)
			}
			check("add", sum, func(a, c uint64) uint64 { return a + c })

			prod, err := he.Mul(b, ox, oy)
			if err != nil {
				t.Fatal(err)
			}
			check("mul", prod, func(a, c uint64) uint64 { return a * c })

			xor, err := he.Xor(b, ox, oy)
			if err != nil {
				t.Fatal(err)
			}
			check("xor", xor, func(a, c uint64) uint64 { return a ^ c })

			not, err := he.Not(b, ox)
			if err != nil {
				t.Fatal(err)
			}
			vals, err := he.Reveal(b, not)
			if err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if vals[i] != 1-x[i] {
					t.Fatalf("not slot %d: got %d want %d", i, vals[i], 1-x[i])
				}
			}
		}
	}
}

// TestXorAffinePath: cipher ⊕ plain must not consume a ciphertext
// multiplication (it is the affine path the level masks rely on).
func TestXorAffinePath(t *testing.T) {
	b := heclear.New(8, 65537)
	x := operandFor(t, b, []uint64{0, 1, 0, 1}, true)
	y := operandFor(t, b, []uint64{0, 0, 1, 1}, false)
	b.ResetCounts()
	if _, err := he.Xor(b, x, y); err != nil {
		t.Fatal(err)
	}
	counts := b.Counts()
	if counts.Mul != 0 {
		t.Errorf("cipher⊕plain consumed %d ct-ct multiplications", counts.Mul)
	}
	if counts.ConstMul != 1 || counts.ConstAdd != 1 {
		t.Errorf("expected 1 ConstMul + 1 ConstAdd, got %v", counts)
	}
}

// TestMulAllDepth: the product of n operands must have depth
// ceil(log2 n), not n-1 (paper Table 1c).
func TestMulAllDepth(t *testing.T) {
	b := heclear.New(8, 65537)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		ops := make([]he.Operand, n)
		for i := range ops {
			ops[i] = operandFor(t, b, []uint64{1, 1, 1, 1}, true)
		}
		res, err := he.MulAll(b, ops)
		if err != nil {
			t.Fatal(err)
		}
		wantDepth := 0
		for 1<<wantDepth < n {
			wantDepth++
		}
		if res.Ct.Depth() != wantDepth {
			t.Errorf("n=%d: depth %d, want %d", n, res.Ct.Depth(), wantDepth)
		}
	}
	if _, err := he.MulAll(b, nil); err == nil {
		t.Error("MulAll of zero operands should fail")
	}
}

// TestMulAllCorrect: product of random bit vectors equals the AND.
func TestMulAllCorrect(t *testing.T) {
	b := heclear.New(32, 65537)
	f := func(seed uint64, nRaw uint8, cipherMask uint8) bool {
		n := int(nRaw%6) + 1
		r := rand.New(rand.NewPCG(seed, 7))
		want := make([]uint64, 32)
		for i := range want {
			want[i] = 1
		}
		ops := make([]he.Operand, n)
		for j := 0; j < n; j++ {
			v := bitsVec(r, 32)
			for i := range want {
				want[i] &= v[i]
			}
			ops[j] = operandFor(t, b, v, cipherMask&(1<<uint(j)) != 0)
		}
		res, err := he.MulAll(b, ops)
		if err != nil {
			return false
		}
		got, err := he.Reveal(b, res)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRotateOperand(t *testing.T) {
	b := heclear.New(8, 65537)
	vals := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, cipher := range []bool{true, false} {
		op := operandFor(t, b, vals, cipher)
		rot, err := he.Rotate(b, op, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := he.Reveal(b, rot)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			want := vals[(i+3)%8]
			if got[i] != want {
				t.Errorf("cipher=%v slot %d: got %d want %d", cipher, i, got[i], want)
			}
		}
	}
}

func TestOpCountsMinus(t *testing.T) {
	a := he.OpCounts{Encrypt: 5, Rotate: 4, Add: 10, ConstAdd: 2, Mul: 7, ConstMul: 3, MaxDepth: 4, RotateHoisted: 3, Relin: 2}
	b := he.OpCounts{Encrypt: 1, Rotate: 1, Add: 4, ConstAdd: 1, Mul: 2, ConstMul: 1, MaxDepth: 2, RotateHoisted: 1, Relin: 1}
	d := a.Minus(b)
	if d.Encrypt != 4 || d.Rotate != 3 || d.Add != 6 || d.ConstAdd != 1 || d.Mul != 5 || d.ConstMul != 2 {
		t.Errorf("Minus: %+v", d)
	}
	if d.RotateHoisted != 2 || d.Relin != 1 {
		t.Errorf("Minus new counters: %+v", d)
	}
	if d.MaxDepth != 4 {
		t.Errorf("Minus should keep the minuend depth, got %d", d.MaxDepth)
	}
	if s := d.String(); s == "" {
		t.Error("empty String()")
	}
}

// TestRotateHoistedOperand: the batched helper must agree with repeated
// single rotations for both cipher and plain operands.
func TestRotateHoistedOperand(t *testing.T) {
	b := heclear.New(8, 65537)
	vals := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	steps := []int{0, 1, 3, 5}
	for _, cipher := range []bool{true, false} {
		op := operandFor(t, b, vals, cipher)
		outs, err := he.RotateHoisted(b, op, steps)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != len(steps) {
			t.Fatalf("got %d outputs for %d steps", len(outs), len(steps))
		}
		for si, step := range steps {
			got, err := he.Reveal(b, outs[si])
			if err != nil {
				t.Fatal(err)
			}
			for i := range vals {
				if want := vals[(i+step)%8]; got[i] != want {
					t.Errorf("cipher=%v step %d slot %d: got %d want %d", cipher, step, i, got[i], want)
				}
			}
		}
	}
}

// TestMulLazyRelinearize: a sum of lazy products finalized once must
// equal the eager equivalent, and hoisted rotations must be counted.
func TestMulLazyRelinearize(t *testing.T) {
	b := heclear.New(8, 65537)
	x := operandFor(t, b, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, true)
	y := operandFor(t, b, []uint64{2, 2, 2, 2, 2, 2, 2, 2}, true)
	p1, err := he.MulLazy(b, x, y)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := he.MulLazy(b, x, x)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := he.Add(b, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	sum, err = he.Relinearize(b, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := he.Reveal(b, sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		v := i + 1
		if want := (2*v + v*v) % 65537; got[i] != want {
			t.Errorf("slot %d: got %d want %d", i, got[i], want)
		}
	}
	// Plain operands pass through Relinearize untouched.
	plain := operandFor(t, b, []uint64{9, 9, 9, 9, 9, 9, 9, 9}, false)
	back, err := he.Relinearize(b, plain)
	if err != nil {
		t.Fatal(err)
	}
	if back.IsCipher() {
		t.Error("Relinearize turned a plain operand into a ciphertext")
	}
}
