package heclear

import (
	"testing"

	"copse/internal/he"
)

func TestBasicOps(t *testing.T) {
	b := New(8, 65537)
	a, err := b.Encrypt([]uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Encrypt([]uint64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatal(err)
	}

	sum, err := b.Add(a, c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{11, 22, 33, 44, 50, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("add slot %d: got %d want %d", i, got[i], want[i])
		}
	}

	prod, err := b.Mul(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Depth() != 1 {
		t.Errorf("product depth = %d, want 1", prod.Depth())
	}
	got, err = b.Decrypt(prod)
	if err != nil {
		t.Fatal(err)
	}
	want = []uint64{10, 40, 90, 160, 0, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mul slot %d: got %d want %d", i, got[i], want[i])
		}
	}

	rot, err := b.Rotate(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = b.Decrypt(rot)
	if err != nil {
		t.Fatal(err)
	}
	want = []uint64{2, 3, 4, 0, 0, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rotate slot %d: got %d want %d", i, got[i], want[i])
		}
	}

	rotNeg, err := b.Rotate(a, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = b.Decrypt(rotNeg)
	if err != nil {
		t.Fatal(err)
	}
	want = []uint64{0, 1, 2, 3, 4, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rotate(-1) slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestCountsAndDepth(t *testing.T) {
	b := Default()
	a, _ := b.Encrypt([]uint64{1})
	c, _ := b.Encrypt([]uint64{1})
	p, _ := b.EncodePlain([]uint64{1})

	m1, err := b.Mul(a, c)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.Mul(m1, m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddPlain(m2, p); err != nil {
		t.Fatal(err)
	}
	if _, err := b.MulPlain(m2, p); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Rotate(m2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Sub(a, c); err != nil {
		t.Fatal(err)
	}

	counts := b.Counts()
	if counts.Encrypt != 2 || counts.Mul != 2 || counts.ConstAdd != 1 ||
		counts.ConstMul != 1 || counts.Rotate != 1 || counts.Add != 1 {
		t.Errorf("unexpected counts: %v", counts)
	}
	if counts.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", counts.MaxDepth)
	}
	b.ResetCounts()
	if c := b.Counts(); c != (he.OpCounts{}) {
		t.Errorf("counts after reset: %v", c)
	}
}

func TestRangeErrors(t *testing.T) {
	b := New(4, 257)
	if _, err := b.Encrypt(make([]uint64, 5)); err == nil {
		t.Error("oversized vector accepted")
	}
	if _, err := b.Encrypt([]uint64{257}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := b.EncodePlain([]uint64{300}); err == nil {
		t.Error("out-of-range plaintext accepted")
	}
}
