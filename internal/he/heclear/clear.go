// Package heclear implements the he.Backend interface with exact,
// noise-free arithmetic over plaintext vectors. It has identical
// semantics to the BGV backend (same slot count, same modulus, same
// rotation convention) and is used as the reference implementation for
// property tests, for leakage-model tests, and for algorithmic scaling
// studies where FHE constant factors would only add noise.
package heclear

import (
	"fmt"

	"copse/internal/he"
)

// Backend is a noise-free he.Backend.
type Backend struct {
	he.Counter
	slots int
	t     uint64
}

// New returns a clear backend with the given slot count and plaintext
// modulus.
func New(slots int, t uint64) *Backend {
	return &Backend{slots: slots, t: t}
}

// Default returns a clear backend matching the BGV test geometry:
// 1024 slots, t = 65537.
func Default() *Backend { return New(1024, 65537) }

type ciphertext struct {
	vals  []uint64
	depth int
}

func (c *ciphertext) Depth() int { return c.depth }

type plain struct {
	vals []uint64
}

// Name implements he.Backend.
func (b *Backend) Name() string { return "clear" }

// Slots implements he.Backend.
func (b *Backend) Slots() int { return b.slots }

// PlainModulus implements he.Backend.
func (b *Backend) PlainModulus() uint64 { return b.t }

func (b *Backend) pad(vals []uint64) ([]uint64, error) {
	if len(vals) > b.slots {
		return nil, fmt.Errorf("heclear: %d values exceed %d slots", len(vals), b.slots)
	}
	out := make([]uint64, b.slots)
	for i, v := range vals {
		if v >= b.t {
			return nil, fmt.Errorf("heclear: value %d at slot %d exceeds modulus %d", v, i, b.t)
		}
		out[i] = v
	}
	return out, nil
}

// Encrypt implements he.Backend.
func (b *Backend) Encrypt(vals []uint64) (he.Ciphertext, error) {
	v, err := b.pad(vals)
	if err != nil {
		return nil, err
	}
	b.CountEncrypt()
	return &ciphertext{vals: v}, nil
}

// Decrypt implements he.Backend.
func (b *Backend) Decrypt(ct he.Ciphertext) ([]uint64, error) {
	c, err := b.cast(ct)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, b.slots)
	copy(out, c.vals)
	return out, nil
}

// EncodePlain implements he.Backend.
func (b *Backend) EncodePlain(vals []uint64) (he.Plain, error) {
	v, err := b.pad(vals)
	if err != nil {
		return nil, err
	}
	return &plain{vals: v}, nil
}

func (b *Backend) cast(ct he.Ciphertext) (*ciphertext, error) {
	c, ok := ct.(*ciphertext)
	if !ok {
		return nil, fmt.Errorf("heclear: foreign ciphertext %T", ct)
	}
	return c, nil
}

func (b *Backend) castPlain(p he.Plain) (*plain, error) {
	pp, ok := p.(*plain)
	if !ok {
		return nil, fmt.Errorf("heclear: foreign plaintext %T", p)
	}
	return pp, nil
}

func (b *Backend) zipCt(a, c he.Ciphertext, f func(x, y uint64) uint64, depthBump int) (he.Ciphertext, error) {
	ca, err := b.cast(a)
	if err != nil {
		return nil, err
	}
	cc, err := b.cast(c)
	if err != nil {
		return nil, err
	}
	out := &ciphertext{vals: make([]uint64, b.slots), depth: max(ca.depth, cc.depth) + depthBump}
	for i := range out.vals {
		out.vals[i] = f(ca.vals[i], cc.vals[i])
	}
	b.NoteDepth(out.depth)
	return out, nil
}

// Add implements he.Backend.
func (b *Backend) Add(x, y he.Ciphertext) (he.Ciphertext, error) {
	b.CountAdd()
	return b.zipCt(x, y, func(a, c uint64) uint64 { return (a + c) % b.t }, 0)
}

// Sub implements he.Backend.
func (b *Backend) Sub(x, y he.Ciphertext) (he.Ciphertext, error) {
	b.CountAdd()
	return b.zipCt(x, y, func(a, c uint64) uint64 { return (a + b.t - c) % b.t }, 0)
}

// Neg implements he.Backend.
func (b *Backend) Neg(x he.Ciphertext) (he.Ciphertext, error) {
	c, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	b.CountAdd()
	out := &ciphertext{vals: make([]uint64, b.slots), depth: c.depth}
	for i, v := range c.vals {
		out.vals[i] = (b.t - v) % b.t
	}
	return out, nil
}

// Mul implements he.Backend.
func (b *Backend) Mul(x, y he.Ciphertext) (he.Ciphertext, error) {
	b.CountMul()
	return b.zipCt(x, y, func(a, c uint64) uint64 { return a * c % b.t }, 1)
}

// MulLazy implements he.Backend: the clear backend has no
// relinearization, so it is a plain Mul.
func (b *Backend) MulLazy(x, y he.Ciphertext) (he.Ciphertext, error) {
	return b.Mul(x, y)
}

// Relinearize implements he.Backend as the identity.
func (b *Backend) Relinearize(x he.Ciphertext) (he.Ciphertext, error) {
	if _, err := b.cast(x); err != nil {
		return nil, err
	}
	return x, nil
}

// AddPlain implements he.Backend.
func (b *Backend) AddPlain(x he.Ciphertext, p he.Plain) (he.Ciphertext, error) {
	c, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	pp, err := b.castPlain(p)
	if err != nil {
		return nil, err
	}
	b.CountConstAdd()
	out := &ciphertext{vals: make([]uint64, b.slots), depth: c.depth}
	for i := range out.vals {
		out.vals[i] = (c.vals[i] + pp.vals[i]) % b.t
	}
	return out, nil
}

// MulPlain implements he.Backend.
func (b *Backend) MulPlain(x he.Ciphertext, p he.Plain) (he.Ciphertext, error) {
	c, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	pp, err := b.castPlain(p)
	if err != nil {
		return nil, err
	}
	b.CountConstMul()
	out := &ciphertext{vals: make([]uint64, b.slots), depth: c.depth}
	for i := range out.vals {
		out.vals[i] = c.vals[i] * pp.vals[i] % b.t
	}
	return out, nil
}

// RotateHoisted implements he.Backend. The clear backend has no shared
// work to hoist, so it is a plain Rotate loop.
func (b *Backend) RotateHoisted(x he.Ciphertext, steps []int) ([]he.Ciphertext, error) {
	outs := make([]he.Ciphertext, len(steps))
	for i, k := range steps {
		out, err := b.Rotate(x, k)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

// Rotate implements he.Backend.
func (b *Backend) Rotate(x he.Ciphertext, k int) (he.Ciphertext, error) {
	c, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	b.CountRotate()
	out := &ciphertext{vals: make([]uint64, b.slots), depth: c.depth}
	for i := range out.vals {
		out.vals[i] = c.vals[(i+k%b.slots+b.slots)%b.slots]
	}
	return out, nil
}
