package hebgv

import (
	"fmt"

	"copse/internal/bgv"
	"copse/internal/he"
)

// Key-material portability: a cluster distributes one key set across
// processes — workers evaluate and decrypt with the full material, the
// stateless gateway encrypts queries and adds shard results with the
// public part only. Material is the in-memory form; internal/cluster
// puts it on the wire.

// Material is a backend's exportable key set. Secret and Keys may be
// nil: Public alone supports encrypt + keyless ops (add/sub), Keys adds
// rotations and multiplications, Secret adds decryption.
type Material struct {
	// Params is the seedable parameter set (prime generation is
	// deterministic, so the chain itself need not travel).
	Params bgv.Params
	Secret *bgv.SecretKey
	Public *bgv.PublicKey
	Keys   *bgv.EvaluationKeys
}

// Material exports the backend's key set. The returned structure shares
// the backend's key polynomials; callers must treat it as read-only.
func (b *Backend) Material() *Material {
	return &Material{
		Params: b.params.Params,
		Secret: b.sk,
		Public: b.pk,
		Keys:   b.keys,
	}
}

// PublicMaterial exports the key set without the secret key — what a
// worker hands the gateway.
func (b *Backend) PublicMaterial() *Material {
	m := b.Material()
	m.Secret = nil
	return m
}

// NewFromMaterial constructs a backend around existing key material
// instead of generating keys. cfg.Params is ignored (the material pins
// the parameters); cfg.Seed seeds the encryptor only; rotation-step
// fields are ignored (the material carries whatever keys were
// generated). A material without Secret yields a backend that encrypts
// and evaluates but fails Decrypt/NoiseBudget; without Keys it supports
// only additive workloads (Rotate/Mul fail inside the evaluator).
func NewFromMaterial(cfg Config, m *Material) (*Backend, error) {
	if m == nil || m.Public == nil {
		return nil, fmt.Errorf("hebgv: material needs at least a public key")
	}
	p := m.Params
	if cfg.IntraOpWorkers > p.IntraOpWorkers {
		p.IntraOpWorkers = cfg.IntraOpWorkers
	}
	params, err := bgv.NewParameters(p)
	if err != nil {
		return nil, err
	}
	encoder, err := bgv.NewEncoder(params)
	if err != nil {
		return nil, err
	}
	var encryptor *bgv.Encryptor
	if cfg.Seed != 0 {
		encryptor = bgv.NewSeededEncryptor(params, m.Public, cfg.Seed+1)
	} else {
		encryptor = bgv.NewEncryptor(params, m.Public)
	}
	b := &Backend{
		params:    params,
		encoder:   encoder,
		encryptor: encryptor,
		evaluator: bgv.NewEvaluator(params, m.Keys),
		keys:      m.Keys,
		sk:        m.Secret,
		pk:        m.Public,
	}
	if m.Secret != nil {
		b.decryptor = bgv.NewDecryptor(params, m.Secret)
	}
	return b, nil
}

// ExportCiphertext unwraps an operand ciphertext for the wire: the raw
// BGV ciphertext plus the accumulated multiplicative depth (which
// travels alongside so the receiving backend keeps honest Depth
// accounting).
func (b *Backend) ExportCiphertext(ct he.Ciphertext) (*bgv.Ciphertext, int, error) {
	c, err := b.cast(ct)
	if err != nil {
		return nil, 0, err
	}
	return c.ct, c.depth, nil
}

// ImportCiphertext wraps a wire ciphertext for this backend.
func (b *Backend) ImportCiphertext(ct *bgv.Ciphertext, depth int) he.Ciphertext {
	return &ciphertext{ct: ct, depth: depth}
}
