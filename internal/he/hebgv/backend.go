// Package hebgv adapts the BGV scheme (internal/bgv) to the he.Backend
// interface used by the COPSE runtime. It plays the role HElib plays in
// the paper: packed ciphertexts, Galois rotations, and automatic noise
// management via modulus switching.
package hebgv

import (
	"fmt"
	"sync"

	"copse/internal/bgv"
	"copse/internal/he"
)

// Backend is the BGV-backed he.Backend. It honours the he.Backend
// concurrency contract: the evaluator holds only read-only key
// material, per-operation scratch polynomials come from the ring
// context's sync.Pool (never from evaluator fields), plaintext lift
// caches are lock-free copy-on-write tables (populated up front by
// level-scheduled staging, see EncodePlainAtLevel), and the one
// genuinely stateful component — the encryptor's noise sampler — is
// serialized behind encMu. Concurrent Classify traffic over one shared
// Backend is the serving layer's normal mode (verified under -race by
// TestServiceConcurrentClassifyBGV).
type Backend struct {
	he.Counter

	params    *bgv.Parameters
	encoder   *bgv.Encoder
	encryptor *bgv.Encryptor
	evaluator *bgv.Evaluator
	decryptor *bgv.Decryptor // nil when constructed without the secret key
	keys      *bgv.EvaluationKeys
	sk        *bgv.SecretKey // nil when constructed without the secret key
	pk        *bgv.PublicKey

	encMu sync.Mutex // the encryptor owns a sampler and is not concurrency-safe
}

// Config controls backend construction.
type Config struct {
	// Params is the BGV parameter set.
	Params bgv.Params
	// RotationSteps lists the slot-rotation amounts needed by the
	// workload (the COPSE compiler computes these for a model). Galois
	// keys are generated for each step plus all power-of-two steps, so
	// uncovered rotations can still be composed.
	RotationSteps []int
	// PowerOfTwoOnly skips the per-step keys and generates only the
	// power-of-two ladder (smaller keys, slower rotations).
	PowerOfTwoOnly bool
	// RotationStepLevels assigns individual rotation steps a maximum
	// chain level: the step's Galois key is generated at that level
	// instead of the top, cutting key material for steps a static level
	// schedule proves are only rotated in the scheduled-down back half
	// (core.Meta.RotationStepLevels computes the map from a compiled
	// plan). Steps without an entry — including the whole power-of-two
	// composition ladder — stay at the top; rotations arriving above a
	// leveled key fall back to the composed ladder path.
	RotationStepLevels map[int]int
	// IntraOpWorkers is the ring-layer limb parallelism (see
	// bgv.Params.IntraOpWorkers); 0 or 1 is serial. Pools are released
	// by Close.
	IntraOpWorkers int
	// Seed, when non-zero, makes key generation and encryption
	// deterministic (tests and reproducible experiments only).
	Seed uint64
}

// New generates keys and returns a backend holding both the public and
// secret material (the two-party configurations of the paper share one
// key pair between model and data owner).
func New(cfg Config) (*Backend, error) {
	if cfg.IntraOpWorkers > cfg.Params.IntraOpWorkers {
		cfg.Params.IntraOpWorkers = cfg.IntraOpWorkers
	}
	params, err := bgv.NewParameters(cfg.Params)
	if err != nil {
		return nil, err
	}
	var kg *bgv.KeyGenerator
	if cfg.Seed != 0 {
		kg = bgv.NewSeededKeyGenerator(params, cfg.Seed)
	} else {
		kg = bgv.NewKeyGenerator(params)
	}
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	steps := bgv.PowerOfTwoSteps(params.Slots())
	if !cfg.PowerOfTwoOnly {
		steps = append(steps, cfg.RotationSteps...)
	}
	keys, err := kg.GenEvaluationKeysAt(sk, steps, cfg.RotationStepLevels)
	if err != nil {
		return nil, err
	}
	encoder, err := bgv.NewEncoder(params)
	if err != nil {
		return nil, err
	}
	var encryptor *bgv.Encryptor
	if cfg.Seed != 0 {
		encryptor = bgv.NewSeededEncryptor(params, pk, cfg.Seed+1)
	} else {
		encryptor = bgv.NewEncryptor(params, pk)
	}
	return &Backend{
		params:    params,
		encoder:   encoder,
		encryptor: encryptor,
		evaluator: bgv.NewEvaluator(params, keys),
		decryptor: bgv.NewDecryptor(params, sk),
		keys:      keys,
		sk:        sk,
		pk:        pk,
	}, nil
}

// Close releases the ring context's intra-op worker pool (a no-op when
// the backend was built serial). The backend must not be used after
// Close.
func (b *Backend) Close() error {
	b.params.RingCtx.CloseWorkers()
	return nil
}

// IntraOpWorkers reports the ring-layer limb concurrency in effect
// (1 = serial).
func (b *Backend) IntraOpWorkers() int { return b.params.RingCtx.WorkerCount() }

// HintStageLimbs implements he.StageLimbHinter: it installs the stage's
// exact limb count as the ring context's advisory dispatch plan, so the
// per-limb fan-out decision (pool, tile grain, cutoff) is made once per
// pipeline stage instead of per ring op. Generated specialized kernels
// emit the hints (core.KernelCtx.StageLimbs); limbs ≤ 0 clears the
// plan. Advisory only — ops at other limb counts take the generic
// dispatch path, so results never depend on the hint.
func (b *Backend) HintStageLimbs(limbs int) {
	b.params.RingCtx.SetStageLimbHint(limbs)
}

// KeyMaterial reports the in-memory evaluation-key bytes (relin plus
// Galois keys, Shoup companions included) and the bytes the same key
// set would occupy with every key generated at the chain top — the
// before/after gauge for the Galois-key level budget.
func (b *Backend) KeyMaterial() (actual, topLevel int64) {
	return b.keys.MaterialBytes(), b.keys.TopLevelBytes(b.params)
}

type ciphertext struct {
	ct    *bgv.Ciphertext
	depth int
}

func (c *ciphertext) Depth() int { return c.depth }

// Level exposes the BGV level for diagnostics.
func (c *ciphertext) Level() int { return c.ct.Level() }

// Name implements he.Backend.
func (b *Backend) Name() string { return "bgv" }

// Slots implements he.Backend.
func (b *Backend) Slots() int { return b.params.Slots() }

// PlainModulus implements he.Backend.
func (b *Backend) PlainModulus() uint64 { return b.params.T }

// Parameters exposes the underlying BGV parameters.
func (b *Backend) Parameters() *bgv.Parameters { return b.params }

// MaxLevel implements he.LevelDropper: the top of the modulus chain.
func (b *Backend) MaxLevel() int { return b.params.MaxLevel() }

// CiphertextLevel implements he.LevelDropper.
func (b *Backend) CiphertextLevel(ct he.Ciphertext) (int, error) {
	c, err := b.cast(ct)
	if err != nil {
		return 0, err
	}
	return c.ct.Level(), nil
}

// DropToLevel implements he.LevelDropper: it modulus-switches a copy of
// ct down to the given level (already-lower ciphertexts pass through
// unchanged), so a pipeline stage whose noise budget needs only a
// fraction of the chain can run every subsequent NTT and key switch over
// that fraction.
func (b *Backend) DropToLevel(ct he.Ciphertext, level int) (he.Ciphertext, error) {
	c, err := b.cast(ct)
	if err != nil {
		return nil, err
	}
	if level < 0 {
		level = 0
	}
	if c.ct.Level() <= level {
		return ct, nil
	}
	cp := c.ct.Copy()
	if err := b.evaluator.DropToLevel(cp, level); err != nil {
		return nil, err
	}
	return &ciphertext{ct: cp, depth: c.depth}, nil
}

// EncryptAtLevel implements he.LevelEncrypter: a fresh encryption landed
// directly at the scheduled level, skipping the modulus switches a
// top-level encryption followed by a drop would pay.
func (b *Backend) EncryptAtLevel(vals []uint64, level int) (he.Ciphertext, error) {
	pt, err := b.encoder.Encode(vals)
	if err != nil {
		return nil, err
	}
	b.encMu.Lock()
	ct := b.encryptor.EncryptAtLevel(pt, level)
	b.encMu.Unlock()
	b.CountEncrypt()
	b.CountLimbs(ct.Level() + 1)
	return &ciphertext{ct: ct}, nil
}

// EncodePlainAtLevel implements he.LevelEncrypter: the encoding is
// eagerly lifted into the ciphertext ring at the scheduled level and the
// level below it (where operands aligned by one modulus switch land), so
// serving-time plaintext multiplies and additions are cache hits.
func (b *Backend) EncodePlainAtLevel(vals []uint64, level int) (he.Plain, error) {
	pt, err := b.encoder.Encode(vals)
	if err != nil {
		return nil, err
	}
	if level > b.params.MaxLevel() {
		level = b.params.MaxLevel()
	}
	pt.PreLift(b.params.RingCtx, level, level-1)
	return pt, nil
}

// NoiseBudget reports the measured remaining noise budget of ct in bits.
func (b *Backend) NoiseBudget(ct he.Ciphertext) (int, error) {
	c, err := b.cast(ct)
	if err != nil {
		return 0, err
	}
	if b.decryptor == nil {
		return 0, fmt.Errorf("hebgv: no secret key")
	}
	return b.decryptor.NoiseBudget(c.ct), nil
}

func (b *Backend) cast(ct he.Ciphertext) (*ciphertext, error) {
	c, ok := ct.(*ciphertext)
	if !ok {
		return nil, fmt.Errorf("hebgv: foreign ciphertext %T", ct)
	}
	return c, nil
}

func (b *Backend) castPlain(p he.Plain) (*bgv.Plaintext, error) {
	pp, ok := p.(*bgv.Plaintext)
	if !ok {
		return nil, fmt.Errorf("hebgv: foreign plaintext %T", p)
	}
	return pp, nil
}

// Encrypt implements he.Backend.
func (b *Backend) Encrypt(vals []uint64) (he.Ciphertext, error) {
	pt, err := b.encoder.Encode(vals)
	if err != nil {
		return nil, err
	}
	b.encMu.Lock()
	ct := b.encryptor.Encrypt(pt)
	b.encMu.Unlock()
	b.CountEncrypt()
	b.CountLimbs(ct.Level() + 1)
	return &ciphertext{ct: ct}, nil
}

// Decrypt implements he.Backend.
func (b *Backend) Decrypt(ct he.Ciphertext) ([]uint64, error) {
	c, err := b.cast(ct)
	if err != nil {
		return nil, err
	}
	if b.decryptor == nil {
		return nil, fmt.Errorf("hebgv: no secret key")
	}
	return b.encoder.Decode(b.decryptor.Decrypt(c.ct)), nil
}

// EncodePlain implements he.Backend.
func (b *Backend) EncodePlain(vals []uint64) (he.Plain, error) {
	return b.encoder.Encode(vals)
}

// Add implements he.Backend.
func (b *Backend) Add(x, y he.Ciphertext) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	cy, err := b.cast(y)
	if err != nil {
		return nil, err
	}
	out, err := b.evaluator.Add(cx.ct, cy.ct)
	if err != nil {
		return nil, err
	}
	b.CountAdd()
	b.CountLimbs(out.Level() + 1)
	return &ciphertext{ct: out, depth: max(cx.depth, cy.depth)}, nil
}

// Sub implements he.Backend.
func (b *Backend) Sub(x, y he.Ciphertext) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	cy, err := b.cast(y)
	if err != nil {
		return nil, err
	}
	out, err := b.evaluator.Sub(cx.ct, cy.ct)
	if err != nil {
		return nil, err
	}
	b.CountAdd()
	b.CountLimbs(out.Level() + 1)
	return &ciphertext{ct: out, depth: max(cx.depth, cy.depth)}, nil
}

// Neg implements he.Backend.
func (b *Backend) Neg(x he.Ciphertext) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	out, err := b.evaluator.Neg(cx.ct)
	if err != nil {
		return nil, err
	}
	b.CountAdd()
	b.CountLimbs(out.Level() + 1)
	return &ciphertext{ct: out, depth: cx.depth}, nil
}

// AddPlain implements he.Backend.
func (b *Backend) AddPlain(x he.Ciphertext, p he.Plain) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	pp, err := b.castPlain(p)
	if err != nil {
		return nil, err
	}
	out, err := b.evaluator.AddPlain(cx.ct, pp)
	if err != nil {
		return nil, err
	}
	b.CountConstAdd()
	b.CountLimbs(out.Level() + 1)
	return &ciphertext{ct: out, depth: cx.depth}, nil
}

// MulPlain implements he.Backend.
func (b *Backend) MulPlain(x he.Ciphertext, p he.Plain) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	pp, err := b.castPlain(p)
	if err != nil {
		return nil, err
	}
	out, err := b.evaluator.MulPlain(cx.ct, pp)
	if err != nil {
		return nil, err
	}
	b.CountConstMul()
	b.CountLimbs(out.Level() + 1)
	return &ciphertext{ct: out, depth: cx.depth}, nil
}

// Mul implements he.Backend.
func (b *Backend) Mul(x, y he.Ciphertext) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	cy, err := b.cast(y)
	if err != nil {
		return nil, err
	}
	out, err := b.evaluator.Mul(cx.ct, cy.ct)
	if err != nil {
		return nil, err
	}
	b.CountMul()
	b.CountLimbs(out.Level() + 1)
	d := max(cx.depth, cy.depth) + 1
	b.NoteDepth(d)
	return &ciphertext{ct: out, depth: d}, nil
}

// MulLazy implements he.Backend: the degree-2 tensor product, deferring
// the relinearization key switch so sums of products pay for it once.
func (b *Backend) MulLazy(x, y he.Ciphertext) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	cy, err := b.cast(y)
	if err != nil {
		return nil, err
	}
	out, err := b.evaluator.MulNoRelin(cx.ct, cy.ct)
	if err != nil {
		return nil, err
	}
	b.CountMul()
	b.CountLimbs(out.Level() + 1)
	d := max(cx.depth, cy.depth) + 1
	b.NoteDepth(d)
	return &ciphertext{ct: out, depth: d}, nil
}

// Relinearize implements he.Backend.
func (b *Backend) Relinearize(x he.Ciphertext) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	if cx.ct.Degree() == 1 {
		return x, nil
	}
	out, err := b.evaluator.Relinearize(cx.ct)
	if err != nil {
		return nil, err
	}
	b.CountRelin()
	b.CountLimbs(out.Level() + 1)
	return &ciphertext{ct: out, depth: cx.depth}, nil
}

// RotateHoisted implements he.Backend: the ciphertext's key-switch digit
// decomposition is computed once and shared across all steps.
func (b *Backend) RotateHoisted(x he.Ciphertext, steps []int) ([]he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	cts, err := b.evaluator.RotateHoisted(cx.ct, steps)
	if err != nil {
		return nil, err
	}
	// Attribute each step where it actually went: step-0 copies rotate
	// nothing, keyless (or key-below-level) steps took the composed
	// per-step path.
	hoisted := 0
	level := cx.ct.Level()
	for _, step := range steps {
		rotates, viaHoist := b.evaluator.HoistableStepAt(step, level)
		switch {
		case !rotates:
		case viaHoist:
			hoisted++
		default:
			b.CountRotate()
		}
	}
	b.CountRotateHoisted(hoisted)
	outs := make([]he.Ciphertext, len(cts))
	limbSum := 0
	for i, ct := range cts {
		outs[i] = &ciphertext{ct: ct, depth: cx.depth}
		// Step-0 copies rotate nothing; like the rotation counters (and
		// the he.CountingBackend wrapper), they contribute no limb·ops.
		if rotates, _ := b.evaluator.HoistableStepAt(steps[i], level); rotates {
			limbSum += ct.Level() + 1
		}
	}
	b.CountLimbs(limbSum)
	return outs, nil
}

// Rotate implements he.Backend.
func (b *Backend) Rotate(x he.Ciphertext, k int) (he.Ciphertext, error) {
	cx, err := b.cast(x)
	if err != nil {
		return nil, err
	}
	out, err := b.evaluator.Rotate(cx.ct, k)
	if err != nil {
		return nil, err
	}
	b.CountRotate()
	b.CountLimbs(out.Level() + 1)
	return &ciphertext{ct: out, depth: cx.depth}, nil
}
