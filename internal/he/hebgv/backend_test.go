package hebgv

import (
	"math/rand/v2"
	"testing"

	"copse/internal/bgv"
	"copse/internal/he"
	"copse/internal/he/heclear"
)

func newBackend(t *testing.T, levels int, steps []int) *Backend {
	t.Helper()
	b, err := New(Config{Params: bgv.TestParams(levels), RotationSteps: steps, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func TestInterfaceCompliance(t *testing.T) {
	var _ he.Backend = (*Backend)(nil)
	var _ he.Backend = (*heclear.Backend)(nil)
}

// TestCrossBackendEquivalence runs the same random dataflow over the BGV
// backend and the clear backend and requires identical results. This is
// the conformance test that lets all higher-level COPSE properties be
// verified cheaply on the clear backend.
func TestCrossBackendEquivalence(t *testing.T) {
	bg := newBackend(t, 6, []int{1, 3})
	cl := heclear.New(bg.Slots(), bg.PlainModulus())
	r := rand.New(rand.NewPCG(11, 13))

	n := bg.Slots()
	mkBits := func() []uint64 {
		v := make([]uint64, n)
		for i := range v {
			v[i] = uint64(r.IntN(2))
		}
		return v
	}

	va, vb, vm := mkBits(), mkBits(), mkBits()
	encBoth := func(v []uint64) (he.Ciphertext, he.Ciphertext) {
		cb, err := bg.Encrypt(v)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := cl.Encrypt(v)
		if err != nil {
			t.Fatal(err)
		}
		return cb, cc
	}
	ab, ac := encBoth(va)
	bb, bc := encBoth(vb)
	pmB, err := bg.EncodePlain(vm)
	if err != nil {
		t.Fatal(err)
	}
	pmC, err := cl.EncodePlain(vm)
	if err != nil {
		t.Fatal(err)
	}

	type step struct {
		name string
		bgv  func() (he.Ciphertext, error)
		clr  func() (he.Ciphertext, error)
	}
	var curB, curC he.Ciphertext = ab, ac
	steps := []step{
		{"mul", func() (he.Ciphertext, error) { return bg.Mul(curB, bb) }, func() (he.Ciphertext, error) { return cl.Mul(curC, bc) }},
		{"addplain", func() (he.Ciphertext, error) { return bg.AddPlain(curB, pmB) }, func() (he.Ciphertext, error) { return cl.AddPlain(curC, pmC) }},
		{"rotate3", func() (he.Ciphertext, error) { return bg.Rotate(curB, 3) }, func() (he.Ciphertext, error) { return cl.Rotate(curC, 3) }},
		{"mulplain", func() (he.Ciphertext, error) { return bg.MulPlain(curB, pmB) }, func() (he.Ciphertext, error) { return cl.MulPlain(curC, pmC) }},
		{"sub", func() (he.Ciphertext, error) { return bg.Sub(curB, bb) }, func() (he.Ciphertext, error) { return cl.Sub(curC, bc) }},
		{"add", func() (he.Ciphertext, error) { return bg.Add(curB, bb) }, func() (he.Ciphertext, error) { return cl.Add(curC, bc) }},
		{"neg", func() (he.Ciphertext, error) { return bg.Neg(curB) }, func() (he.Ciphertext, error) { return cl.Neg(curC) }},
		{"mul2", func() (he.Ciphertext, error) { return bg.Mul(curB, curB) }, func() (he.Ciphertext, error) { return cl.Mul(curC, curC) }},
	}
	for _, s := range steps {
		nb, err := s.bgv()
		if err != nil {
			t.Fatalf("%s on bgv: %v", s.name, err)
		}
		nc, err := s.clr()
		if err != nil {
			t.Fatalf("%s on clear: %v", s.name, err)
		}
		curB, curC = nb, nc
		gb, err := bg.Decrypt(curB)
		if err != nil {
			t.Fatalf("%s decrypt: %v", s.name, err)
		}
		gc, err := cl.Decrypt(curC)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gb {
			if gb[i] != gc[i] {
				t.Fatalf("%s: backends disagree at slot %d: bgv=%d clear=%d", s.name, i, gb[i], gc[i])
			}
		}
	}
}

// TestXorViaOperandsOnBGV exercises the operand algebra end-to-end on
// real ciphertexts.
func TestXorViaOperandsOnBGV(t *testing.T) {
	b := newBackend(t, 4, nil)
	x := []uint64{0, 1, 0, 1}
	m := []uint64{0, 0, 1, 1}
	ct, err := b.Encrypt(x)
	if err != nil {
		t.Fatal(err)
	}
	ctm, err := b.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := he.NewPlain(b, m)
	if err != nil {
		t.Fatal(err)
	}

	ctXor, err := he.Xor(b, he.Cipher(ct), he.Cipher(ctm))
	if err != nil {
		t.Fatal(err)
	}
	ptXor, err := he.Xor(b, he.Cipher(ct), pm)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 1, 0}
	for name, op := range map[string]he.Operand{"cipher-cipher": ctXor, "cipher-plain": ptXor} {
		got, err := he.Reveal(b, op)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s xor slot %d: got %d want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestNoiseBudgetExposed(t *testing.T) {
	b := newBackend(t, 3, nil)
	ct, err := b.Encrypt([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	budget, err := b.NoiseBudget(ct)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 {
		t.Errorf("fresh budget %d", budget)
	}
	prod, err := b.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	budget2, err := b.NoiseBudget(prod)
	if err != nil {
		t.Fatal(err)
	}
	if budget2 <= 0 {
		t.Errorf("post-mul budget %d", budget2)
	}
}

func TestCountsOnBGV(t *testing.T) {
	b := newBackend(t, 3, []int{1})
	ct, _ := b.Encrypt([]uint64{1})
	b.ResetCounts()
	if _, err := b.Mul(ct, ct); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Rotate(ct, 1); err != nil {
		t.Fatal(err)
	}
	c := b.Counts()
	if c.Mul != 1 || c.Rotate != 1 {
		t.Errorf("counts: %v", c)
	}
	if c.MaxDepth != 1 {
		t.Errorf("depth: %d", c.MaxDepth)
	}
}

// TestLevelCapabilities: the BGV backend implements the optional level
// interfaces — proactive drops, leveled encryption, pre-lifted plaintext
// encoding — and the CountingBackend wrapper passes them through with
// limb accounting; the clear backend stays a no-op.
func TestLevelCapabilities(t *testing.T) {
	b := newBackend(t, 6, []int{2})
	var backend he.Backend = b
	ld, ok := backend.(he.LevelDropper)
	if !ok {
		t.Fatal("BGV backend does not implement he.LevelDropper")
	}
	if _, ok := backend.(he.LevelEncrypter); !ok {
		t.Fatal("BGV backend does not implement he.LevelEncrypter")
	}
	if ld.MaxLevel() != 5 {
		t.Fatalf("MaxLevel = %d, want 5", ld.MaxLevel())
	}

	vals := make([]uint64, b.Slots())
	for i := range vals {
		vals[i] = uint64(i % 17)
	}
	ct, err := he.EncryptAtLevel(backend, vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if level, err := ld.CiphertextLevel(ct); err != nil || level != 2 {
		t.Fatalf("CiphertextLevel = %d, %v; want 2", level, err)
	}
	got, err := b.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("slot %d = %d, want %d", i, got[i], vals[i])
		}
	}

	// DropToLevel is functional: the input keeps its level.
	top, err := b.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := ld.DropToLevel(top, 1)
	if err != nil {
		t.Fatal(err)
	}
	if level, _ := ld.CiphertextLevel(dropped); level != 1 {
		t.Fatalf("dropped level = %d, want 1", level)
	}
	if level, _ := ld.CiphertextLevel(top); level != 5 {
		t.Fatalf("DropToLevel mutated its input (level %d)", level)
	}
	if same, err := ld.DropToLevel(dropped, 3); err != nil || same != dropped {
		t.Fatalf("DropToLevel below target should pass through unchanged (%v)", err)
	}
	got, err = b.Decrypt(dropped)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("dropped slot %d = %d, want %d", i, got[i], vals[i])
		}
	}

	// Operand helpers + counting wrapper limb integral.
	cb := he.WithCounts(b)
	op, err := he.DropToLevel(cb, he.Cipher(top), 2)
	if err != nil {
		t.Fatal(err)
	}
	if limbs := he.OperandLimbs(cb, op); limbs != 3 {
		t.Fatalf("OperandLimbs = %d, want 3", limbs)
	}
	if _, err := cb.Add(op.Ct, op.Ct); err != nil {
		t.Fatal(err)
	}
	if counts := cb.Counts(); counts.LimbOps != 3 {
		t.Fatalf("counting wrapper LimbOps = %d, want 3", counts.LimbOps)
	}

	// The clear backend has no level structure: helpers are no-ops.
	clear := heclear.Default()
	cct, err := clear.Encrypt(vals[:clear.Slots()])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := interface{}(clear).(he.LevelDropper); ok {
		t.Fatal("clear backend unexpectedly leveled")
	}
	cop, err := he.DropToLevel(clear, he.Cipher(cct), 1)
	if err != nil || cop.Ct != cct {
		t.Fatalf("clear DropToLevel should pass through (%v)", err)
	}
	if limbs := he.OperandLimbs(clear, cop); limbs != 0 {
		t.Fatalf("clear OperandLimbs = %d, want 0", limbs)
	}
}
