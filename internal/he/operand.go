package he

import "fmt"

// Operand is either a ciphertext or a plaintext vector. The COPSE
// algorithm is written once over operands; which side is encrypted is
// decided by the party configuration (paper §7): M=D encrypts both model
// and features, M=S keeps the model plaintext, D=S keeps the features
// plaintext.
type Operand struct {
	Ct   Ciphertext // non-nil for ciphertext operands
	Pt   Plain      // encoded plaintext handle (non-nil for plaintext operands)
	Vals []uint64   // raw plaintext values backing Pt
}

// Cipher wraps a ciphertext as an operand.
func Cipher(ct Ciphertext) Operand { return Operand{Ct: ct} }

// NewPlain encodes vals (padding to Slots with zeros) as a plaintext
// operand.
func NewPlain(b Backend, vals []uint64) (Operand, error) {
	padded := make([]uint64, b.Slots())
	copy(padded, vals)
	pt, err := b.EncodePlain(padded)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Pt: pt, Vals: padded}, nil
}

// IsCipher reports whether the operand is encrypted.
func (o Operand) IsCipher() bool { return o.Ct != nil }

// Reveal decrypts a ciphertext operand or returns the plaintext values.
func Reveal(b Backend, o Operand) ([]uint64, error) {
	if o.IsCipher() {
		return b.Decrypt(o.Ct)
	}
	return o.Vals, nil
}

// Add returns x + y element-wise.
func Add(b Backend, x, y Operand) (Operand, error) {
	switch {
	case x.IsCipher() && y.IsCipher():
		ct, err := b.Add(x.Ct, y.Ct)
		return Operand{Ct: ct}, err
	case x.IsCipher():
		ct, err := b.AddPlain(x.Ct, y.Pt)
		return Operand{Ct: ct}, err
	case y.IsCipher():
		ct, err := b.AddPlain(y.Ct, x.Pt)
		return Operand{Ct: ct}, err
	default:
		t := b.PlainModulus()
		vals := make([]uint64, b.Slots())
		for i := range vals {
			vals[i] = (x.Vals[i] + y.Vals[i]) % t
		}
		return NewPlain(b, vals)
	}
}

// Mul returns x · y element-wise. This is boolean AND for 0/1 operands.
func Mul(b Backend, x, y Operand) (Operand, error) {
	switch {
	case x.IsCipher() && y.IsCipher():
		ct, err := b.Mul(x.Ct, y.Ct)
		return Operand{Ct: ct}, err
	case x.IsCipher():
		ct, err := b.MulPlain(x.Ct, y.Pt)
		return Operand{Ct: ct}, err
	case y.IsCipher():
		ct, err := b.MulPlain(y.Ct, x.Pt)
		return Operand{Ct: ct}, err
	default:
		t := b.PlainModulus()
		vals := make([]uint64, b.Slots())
		for i := range vals {
			vals[i] = x.Vals[i] * y.Vals[i] % t
		}
		return NewPlain(b, vals)
	}
}

// MulLazy is Mul that may leave a ciphertext×ciphertext product
// unrelinearized; sums of such products support Add and are finalized
// once with Relinearize. Products with a plaintext side need no
// relinearization and behave exactly like Mul.
func MulLazy(b Backend, x, y Operand) (Operand, error) {
	if x.IsCipher() && y.IsCipher() {
		ct, err := b.MulLazy(x.Ct, y.Ct)
		return Operand{Ct: ct}, err
	}
	return Mul(b, x, y)
}

// Relinearize finalizes an operand accumulated from MulLazy products.
// Plaintext and already-finalized operands pass through unchanged.
func Relinearize(b Backend, x Operand) (Operand, error) {
	if !x.IsCipher() {
		return x, nil
	}
	ct, err := b.Relinearize(x.Ct)
	return Operand{Ct: ct}, err
}

// Rotate rotates the operand's slots left by k.
func Rotate(b Backend, x Operand, k int) (Operand, error) {
	if x.IsCipher() {
		ct, err := b.Rotate(x.Ct, k)
		return Operand{Ct: ct}, err
	}
	slots := b.Slots()
	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = x.Vals[(i+k%slots+slots)%slots]
	}
	return NewPlain(b, vals)
}

// RotateHoisted rotates the operand's slots left by every step in steps,
// sharing per-ciphertext work across the batch where the backend supports
// hoisting. The result slice is parallel to steps.
func RotateHoisted(b Backend, x Operand, steps []int) ([]Operand, error) {
	if x.IsCipher() {
		cts, err := b.RotateHoisted(x.Ct, steps)
		if err != nil {
			return nil, err
		}
		outs := make([]Operand, len(cts))
		for i, ct := range cts {
			outs[i] = Operand{Ct: ct}
		}
		return outs, nil
	}
	outs := make([]Operand, len(steps))
	for i, k := range steps {
		out, err := Rotate(b, x, k)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

// Xor returns x ⊕ y for 0/1 operands, using the Z_t encoding
// a ⊕ b = a + b − 2ab. With one plaintext side this is the affine map
// a·(1−2m) + m and costs no ciphertext multiplication.
func Xor(b Backend, x, y Operand) (Operand, error) {
	switch {
	case x.IsCipher() && y.IsCipher():
		prod, err := b.Mul(x.Ct, y.Ct)
		if err != nil {
			return Operand{}, err
		}
		sum, err := b.Add(x.Ct, y.Ct)
		if err != nil {
			return Operand{}, err
		}
		twice, err := b.Add(prod, prod)
		if err != nil {
			return Operand{}, err
		}
		ct, err := b.Sub(sum, twice)
		return Operand{Ct: ct}, err
	case x.IsCipher():
		return xorCipherPlain(b, x.Ct, y.Vals)
	case y.IsCipher():
		return xorCipherPlain(b, y.Ct, x.Vals)
	default:
		t := b.PlainModulus()
		vals := make([]uint64, b.Slots())
		for i := range vals {
			vals[i] = plainXor(x.Vals[i], y.Vals[i], t)
		}
		return NewPlain(b, vals)
	}
}

func plainXor(a, m, t uint64) uint64 {
	sum := (a + m) % t
	prod2 := 2 * (a % t) * (m % t) % t
	return (sum + t - prod2) % t
}

func xorCipherPlain(b Backend, ct Ciphertext, mask []uint64) (Operand, error) {
	t := b.PlainModulus()
	coef := make([]uint64, b.Slots())
	add := make([]uint64, b.Slots())
	for i, m := range mask {
		coef[i] = (1 + t - (2*m)%t) % t // 1 - 2m
		add[i] = m % t
	}
	coefPt, err := b.EncodePlain(coef)
	if err != nil {
		return Operand{}, err
	}
	addPt, err := b.EncodePlain(add)
	if err != nil {
		return Operand{}, err
	}
	scaled, err := b.MulPlain(ct, coefPt)
	if err != nil {
		return Operand{}, err
	}
	out, err := b.AddPlain(scaled, addPt)
	return Operand{Ct: out}, err
}

// Not returns 1 − x for a 0/1 operand.
func Not(b Backend, x Operand) (Operand, error) {
	ones := make([]uint64, b.Slots())
	for i := range ones {
		ones[i] = 1
	}
	if !x.IsCipher() {
		t := b.PlainModulus()
		vals := make([]uint64, b.Slots())
		for i := range vals {
			vals[i] = (1 + t - x.Vals[i]%t) % t
		}
		return NewPlain(b, vals)
	}
	neg, err := b.Neg(x.Ct)
	if err != nil {
		return Operand{}, err
	}
	onesPt, err := b.EncodePlain(ones)
	if err != nil {
		return Operand{}, err
	}
	out, err := b.AddPlain(neg, onesPt)
	return Operand{Ct: out}, err
}

// MulAll multiplies all operands together with a balanced product tree,
// giving multiplicative depth ceil(log2(len(ops))) — the paper's
// accumulation step (§3.3 step 4, Table 1c).
func MulAll(b Backend, ops []Operand) (Operand, error) {
	if len(ops) == 0 {
		return Operand{}, fmt.Errorf("he: MulAll of zero operands")
	}
	for len(ops) > 1 {
		next := make([]Operand, 0, (len(ops)+1)/2)
		for i := 0; i+1 < len(ops); i += 2 {
			p, err := Mul(b, ops[i], ops[i+1])
			if err != nil {
				return Operand{}, err
			}
			next = append(next, p)
		}
		if len(ops)%2 == 1 {
			next = append(next, ops[len(ops)-1])
		}
		ops = next
	}
	return ops[0], nil
}
