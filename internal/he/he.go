// Package he defines the homomorphic-evaluation interface that the COPSE
// runtime targets, together with an operand algebra that lets the same
// algorithm code run over any mix of encrypted and plaintext data (the
// party configurations of the paper's §7). Implementations live in
// he/heclear (exact, noise-free reference) and he/hebgv (the BGV scheme).
package he

import (
	"fmt"
	"sync/atomic"
)

// Ciphertext is an opaque packed ciphertext: a vector of Slots() values
// in Z_t on which the backend evaluates element-wise operations. Depth
// reports the ciphertext-ciphertext multiplicative depth accumulated so
// far (the paper's complexity metric, Table 1/2).
type Ciphertext interface {
	Depth() int
}

// Plain is an opaque encoded plaintext vector. Pre-encoding lets
// backends cache expensive embeddings (the staging compiler encodes every
// plaintext model component exactly once).
type Plain interface{}

// Backend evaluates element-wise arithmetic over packed vectors mod the
// plaintext modulus. All operations are functional (inputs are never
// mutated) and safe for concurrent use: this is a contract, not a
// convention — the serving layer issues Classify traffic against one
// shared Backend from many goroutines. Implementations must keep
// per-call scratch out of shared state (pool it or stack it) and guard
// any caches; both shipped backends are exercised under -race by the
// concurrent-classify stress tests.
type Backend interface {
	// Name identifies the backend ("clear", "bgv").
	Name() string
	// Slots is the packing width.
	Slots() int
	// PlainModulus is t; bits are encoded as {0,1} ⊂ Z_t.
	PlainModulus() uint64

	// Encrypt packs and encrypts up to Slots() values.
	Encrypt(vals []uint64) (Ciphertext, error)
	// Decrypt recovers all Slots() values. It fails on backends
	// constructed without the secret key.
	Decrypt(ct Ciphertext) ([]uint64, error)
	// EncodePlain prepares a plaintext vector for repeated use.
	EncodePlain(vals []uint64) (Plain, error)

	Add(a, b Ciphertext) (Ciphertext, error)
	Sub(a, b Ciphertext) (Ciphertext, error)
	Neg(a Ciphertext) (Ciphertext, error)
	AddPlain(a Ciphertext, p Plain) (Ciphertext, error)
	MulPlain(a Ciphertext, p Plain) (Ciphertext, error)
	Mul(a, b Ciphertext) (Ciphertext, error)
	// MulLazy multiplies without finalizing the result: backends with an
	// expensive relinearization step may return an expanded ciphertext
	// that still supports Add/Sub, letting a sum of products be
	// accumulated first and Relinearize'd once. Rotate does not accept
	// lazy results.
	MulLazy(a, b Ciphertext) (Ciphertext, error)
	// Relinearize finalizes a (sum of) MulLazy result(s); finalized
	// ciphertexts pass through unchanged.
	Relinearize(a Ciphertext) (Ciphertext, error)
	// Rotate rotates slots left by k: out[i] = in[(i+k) mod Slots()].
	Rotate(a Ciphertext, k int) (Ciphertext, error)
	// RotateHoisted rotates a by every step in steps at once, letting the
	// backend amortize per-ciphertext work (e.g. the key-switch digit
	// decomposition) across the whole batch. The result slice is parallel
	// to steps. Backends without hoisting fall back to a Rotate loop.
	RotateHoisted(a Ciphertext, steps []int) ([]Ciphertext, error)

	// Counts returns a snapshot of the operation counters.
	Counts() OpCounts
	// ResetCounts zeroes the counters.
	ResetCounts()
}

// LevelDropper is an optional Backend capability implemented by leveled
// schemes (BGV's RNS modulus chain): every operation's cost scales with
// the number of active limbs, so a caller that knows a ciphertext's
// remaining circuit can proactively switch it down to a fraction of the
// chain. The COPSE engine uses this to execute each pipeline stage at
// the level a compile-time plan assigned it (Meta.LevelPlan). Backends
// without a level structure simply do not implement the interface; the
// package helpers treat that as a no-op.
type LevelDropper interface {
	// DropToLevel returns ct switched down to the given level. A
	// ciphertext already at or below the level passes through unchanged;
	// the input is never mutated.
	DropToLevel(ct Ciphertext, level int) (Ciphertext, error)
	// CiphertextLevel reports ct's current level (active limbs − 1).
	CiphertextLevel(ct Ciphertext) (int, error)
	// MaxLevel is the top level of the backend's modulus chain.
	MaxLevel() int
}

// LevelEncrypter is an optional Backend capability for producing
// operands directly at a scheduled level: encrypting below the top of
// the chain skips the modulus switches a post-hoc drop would pay, and
// pre-lifting a plaintext at its consumption level moves the embedding
// cost from the serving hot path to model-load time.
type LevelEncrypter interface {
	// EncryptAtLevel packs and encrypts vals at the given level (clamped
	// to the chain top).
	EncryptAtLevel(vals []uint64, level int) (Ciphertext, error)
	// EncodePlainAtLevel encodes vals and eagerly lifts the encoding at
	// the given level (and the level below, where operands aligned by one
	// modulus switch land), so serving-time uses are cache hits.
	EncodePlainAtLevel(vals []uint64, level int) (Plain, error)
}

// StageLimbHinter is an optional Backend capability implemented by
// leveled schemes whose kernel layer can exploit a fixed limb count:
// generated specialized kernels know each pipeline stage's exact level
// at compile time, and hinting it lets the ring layer precompute its
// per-op dispatch (worker pool, tile grain) once per stage instead of
// per op. The hint is strictly advisory — operations at any other limb
// count must behave identically — so results never depend on it.
type StageLimbHinter interface {
	// HintStageLimbs declares that upcoming operations run over exactly
	// limbs active RNS limbs; limbs ≤ 0 clears the hint.
	HintStageLimbs(limbs int)
}

// HintStageLimbs forwards a stage limb-count hint to backends with the
// capability; a no-op elsewhere.
func HintStageLimbs(b Backend, limbs int) {
	if h, ok := b.(StageLimbHinter); ok {
		h.HintStageLimbs(limbs)
	}
}

// NoiseMeter is an optional Backend capability for reading the measured
// decrypt-side noise budget of a ciphertext (requires the secret key).
// The BGV backend implements it; the exact clear backend has no noise
// and does not. Measurement is a diagnostic, not an evaluation op: the
// harness uses it to record per-stage noise margins (BENCH_levels.json)
// that ground the planner's slack.
type NoiseMeter interface {
	// NoiseBudget reports the remaining noise budget of ct in bits.
	NoiseBudget(ct Ciphertext) (int, error)
}

// NoiseBudgetOf measures a ciphertext operand's remaining noise budget
// in bits; plaintext operands and backends without measurement (or
// without the secret key) report -1.
func NoiseBudgetOf(b Backend, op Operand) int {
	if !op.IsCipher() {
		return -1
	}
	nm, ok := b.(NoiseMeter)
	if !ok {
		return -1
	}
	bits, err := nm.NoiseBudget(op.Ct)
	if err != nil {
		return -1
	}
	return bits
}

// DropToLevel switches a ciphertext operand down to the given level on
// backends with a modulus chain. Plaintext operands, negative levels and
// non-leveled backends pass through unchanged.
func DropToLevel(b Backend, op Operand, level int) (Operand, error) {
	if level < 0 || !op.IsCipher() {
		return op, nil
	}
	ld, ok := b.(LevelDropper)
	if !ok {
		return op, nil
	}
	ct, err := ld.DropToLevel(op.Ct, level)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Ct: ct}, nil
}

// OperandLimbs reports the active limb count (level + 1) of a ciphertext
// operand on a leveled backend, and 0 for plaintext operands or backends
// without a level structure.
func OperandLimbs(b Backend, op Operand) int {
	if !op.IsCipher() {
		return 0
	}
	ld, ok := b.(LevelDropper)
	if !ok {
		return 0
	}
	level, err := ld.CiphertextLevel(op.Ct)
	if err != nil {
		return 0
	}
	return level + 1
}

// EncryptAtLevel encrypts vals directly at the given level where the
// backend supports leveled encryption; otherwise (or with a negative
// level) it falls back to a top-level Encrypt.
func EncryptAtLevel(b Backend, vals []uint64, level int) (Ciphertext, error) {
	if le, ok := b.(LevelEncrypter); ok && level >= 0 {
		return le.EncryptAtLevel(vals, level)
	}
	return b.Encrypt(vals)
}

// NewPlainAtLevel encodes vals (padding to Slots with zeros) as a
// plaintext operand pre-lifted at the given level where the backend
// supports it; otherwise it is NewPlain.
func NewPlainAtLevel(b Backend, vals []uint64, level int) (Operand, error) {
	le, ok := b.(LevelEncrypter)
	if !ok || level < 0 {
		return NewPlain(b, vals)
	}
	padded := make([]uint64, b.Slots())
	copy(padded, vals)
	pt, err := le.EncodePlainAtLevel(padded, level)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Pt: pt, Vals: padded}, nil
}

// OpCounts tallies primitive FHE operations in the categories of the
// paper's Table 1: Encrypt, Rotate, Add (ciphertext-ciphertext additions,
// including subtractions and negations), ConstAdd (plaintext additions),
// Mul (ciphertext-ciphertext multiplications — the only depth-consuming
// op) and ConstMul (plaintext multiplications, an artifact of encoding
// GF(2) in Z_t; see DESIGN.md §3).
type OpCounts struct {
	Encrypt  int64
	Rotate   int64
	Add      int64
	ConstAdd int64
	Mul      int64
	ConstMul int64
	MaxDepth int64
	// RotateHoisted is the subset of Rotate performed through hoisted
	// key switching (shared digit decomposition); it measures how much of
	// the rotation bill was amortized, not an additional op category.
	RotateHoisted int64
	// Relin counts explicit relinearizations of lazily accumulated
	// products. Plain Mul relinearizes internally and does not count
	// here; Relin/Mul therefore measures how much of the
	// relinearization bill lazy accumulation saved.
	Relin int64
	// LimbOps is the limb·op integral on leveled backends: every counted
	// ciphertext operation contributes its result's active RNS limb
	// count. Two runs with identical op counts can differ hugely in this
	// column — it is the gauge for level scheduling (DESIGN.md §8).
	// Backends without a level structure contribute zero.
	LimbOps int64
}

// Plus returns c + o field-wise (MaxDepth takes the larger); useful
// for aggregating the op bills of multi-pass classifications.
func (c OpCounts) Plus(o OpCounts) OpCounts {
	return OpCounts{
		Encrypt:       c.Encrypt + o.Encrypt,
		Rotate:        c.Rotate + o.Rotate,
		Add:           c.Add + o.Add,
		ConstAdd:      c.ConstAdd + o.ConstAdd,
		Mul:           c.Mul + o.Mul,
		ConstMul:      c.ConstMul + o.ConstMul,
		MaxDepth:      max(c.MaxDepth, o.MaxDepth),
		RotateHoisted: c.RotateHoisted + o.RotateHoisted,
		Relin:         c.Relin + o.Relin,
		LimbOps:       c.LimbOps + o.LimbOps,
	}
}

// Minus returns c - o field-wise (MaxDepth keeps c's value); useful for
// measuring a single phase.
func (c OpCounts) Minus(o OpCounts) OpCounts {
	return OpCounts{
		Encrypt:       c.Encrypt - o.Encrypt,
		Rotate:        c.Rotate - o.Rotate,
		Add:           c.Add - o.Add,
		ConstAdd:      c.ConstAdd - o.ConstAdd,
		Mul:           c.Mul - o.Mul,
		ConstMul:      c.ConstMul - o.ConstMul,
		MaxDepth:      c.MaxDepth,
		RotateHoisted: c.RotateHoisted - o.RotateHoisted,
		Relin:         c.Relin - o.Relin,
		LimbOps:       c.LimbOps - o.LimbOps,
	}
}

func (c OpCounts) String() string {
	return fmt.Sprintf("enc=%d rot=%d(hoisted=%d) add=%d cadd=%d mul=%d(relin=%d) cmul=%d depth=%d limbops=%d",
		c.Encrypt, c.Rotate, c.RotateHoisted, c.Add, c.ConstAdd, c.Mul, c.Relin, c.ConstMul, c.MaxDepth, c.LimbOps)
}

// CountingBackend wraps a Backend with its own operation counter, so a
// single logical task (one classification pass) can be metered even
// while other goroutines drive the same inner backend — the inner
// backend's global counters see everything, the wrapper sees only the
// operations issued through it. Counts mirrors the inner backends'
// accounting, with one approximation: RotateHoisted attributes every
// non-zero step to the hoisted path (the BGV backend checks per-step
// key availability, which the wrapper cannot see).
type CountingBackend struct {
	Counter
	inner   Backend
	leveler LevelDropper // inner's level capability, nil when absent
}

// WithCounts wraps b with a fresh per-wrapper counter.
func WithCounts(b Backend) *CountingBackend {
	c := &CountingBackend{inner: b}
	c.leveler, _ = b.(LevelDropper)
	return c
}

// NoiseBudget implements NoiseMeter via the inner backend (an error when
// the inner backend cannot measure). Measurement is free of charge in
// the op counters.
func (c *CountingBackend) NoiseBudget(ct Ciphertext) (int, error) {
	nm, ok := c.inner.(NoiseMeter)
	if !ok {
		return 0, fmt.Errorf("he: backend %q cannot measure noise", c.inner.Name())
	}
	return nm.NoiseBudget(ct)
}

// limbs reports ct's active limb count on leveled inner backends, 0
// elsewhere — the per-op contribution to OpCounts.LimbOps.
func (c *CountingBackend) limbs(ct Ciphertext) int {
	if c.leveler == nil || ct == nil {
		return 0
	}
	level, err := c.leveler.CiphertextLevel(ct)
	if err != nil {
		return 0
	}
	return level + 1
}

// DropToLevel implements LevelDropper by delegating to the inner
// backend; it passes ciphertexts through unchanged when the inner
// backend has no level structure. Drops are bookkeeping, not metered
// ops, so nothing is counted.
func (c *CountingBackend) DropToLevel(ct Ciphertext, level int) (Ciphertext, error) {
	if c.leveler == nil {
		return ct, nil
	}
	return c.leveler.DropToLevel(ct, level)
}

// CiphertextLevel implements LevelDropper via the inner backend.
func (c *CountingBackend) CiphertextLevel(ct Ciphertext) (int, error) {
	if c.leveler == nil {
		return 0, fmt.Errorf("he: backend %q has no level structure", c.inner.Name())
	}
	return c.leveler.CiphertextLevel(ct)
}

// MaxLevel implements LevelDropper via the inner backend (0 when the
// inner backend has no level structure).
func (c *CountingBackend) MaxLevel() int {
	if c.leveler == nil {
		return 0
	}
	return c.leveler.MaxLevel()
}

// EncryptAtLevel implements LevelEncrypter by delegating to the inner
// backend, falling back to a top-level Encrypt when the inner backend
// has no leveled encryption — so staging through a counting wrapper
// keeps the scheduled-level fast path.
func (c *CountingBackend) EncryptAtLevel(vals []uint64, level int) (Ciphertext, error) {
	le, ok := c.inner.(LevelEncrypter)
	if !ok || level < 0 {
		return c.Encrypt(vals)
	}
	ct, err := le.EncryptAtLevel(vals, level)
	if err == nil {
		c.CountEncrypt()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// EncodePlainAtLevel implements LevelEncrypter via the inner backend
// (plain EncodePlain when the capability is absent).
func (c *CountingBackend) EncodePlainAtLevel(vals []uint64, level int) (Plain, error) {
	le, ok := c.inner.(LevelEncrypter)
	if !ok || level < 0 {
		return c.inner.EncodePlain(vals)
	}
	return le.EncodePlainAtLevel(vals, level)
}

// HintStageLimbs implements StageLimbHinter by forwarding to the inner
// backend (a no-op when the capability is absent). Hints are
// bookkeeping, not metered ops.
func (c *CountingBackend) HintStageLimbs(limbs int) {
	HintStageLimbs(c.inner, limbs)
}

// Name implements Backend.
func (c *CountingBackend) Name() string { return c.inner.Name() }

// Slots implements Backend.
func (c *CountingBackend) Slots() int { return c.inner.Slots() }

// PlainModulus implements Backend.
func (c *CountingBackend) PlainModulus() uint64 { return c.inner.PlainModulus() }

// Encrypt implements Backend.
func (c *CountingBackend) Encrypt(vals []uint64) (Ciphertext, error) {
	ct, err := c.inner.Encrypt(vals)
	if err == nil {
		c.CountEncrypt()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// Decrypt implements Backend.
func (c *CountingBackend) Decrypt(ct Ciphertext) ([]uint64, error) { return c.inner.Decrypt(ct) }

// EncodePlain implements Backend.
func (c *CountingBackend) EncodePlain(vals []uint64) (Plain, error) {
	return c.inner.EncodePlain(vals)
}

// Add implements Backend.
func (c *CountingBackend) Add(a, b Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Add(a, b)
	if err == nil {
		c.CountAdd()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// Sub implements Backend.
func (c *CountingBackend) Sub(a, b Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Sub(a, b)
	if err == nil {
		c.CountAdd()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// Neg implements Backend.
func (c *CountingBackend) Neg(a Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Neg(a)
	if err == nil {
		c.CountAdd()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// AddPlain implements Backend.
func (c *CountingBackend) AddPlain(a Ciphertext, p Plain) (Ciphertext, error) {
	ct, err := c.inner.AddPlain(a, p)
	if err == nil {
		c.CountConstAdd()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// MulPlain implements Backend.
func (c *CountingBackend) MulPlain(a Ciphertext, p Plain) (Ciphertext, error) {
	ct, err := c.inner.MulPlain(a, p)
	if err == nil {
		c.CountConstMul()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// Mul implements Backend.
func (c *CountingBackend) Mul(a, b Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Mul(a, b)
	if err == nil {
		c.CountMul()
		c.CountLimbs(c.limbs(ct))
		c.NoteDepth(ct.Depth())
	}
	return ct, err
}

// MulLazy implements Backend.
func (c *CountingBackend) MulLazy(a, b Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.MulLazy(a, b)
	if err == nil {
		c.CountMul()
		c.CountLimbs(c.limbs(ct))
		c.NoteDepth(ct.Depth())
	}
	return ct, err
}

// Relinearize implements Backend. Pass-through results (already degree
// 1, or backends without relinearization) are not counted, matching the
// inner backends.
func (c *CountingBackend) Relinearize(a Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Relinearize(a)
	if err == nil && ct != a {
		c.CountRelin()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// Rotate implements Backend.
func (c *CountingBackend) Rotate(a Ciphertext, k int) (Ciphertext, error) {
	ct, err := c.inner.Rotate(a, k)
	if err == nil {
		c.CountRotate()
		c.CountLimbs(c.limbs(ct))
	}
	return ct, err
}

// RotateHoisted implements Backend.
func (c *CountingBackend) RotateHoisted(a Ciphertext, steps []int) ([]Ciphertext, error) {
	cts, err := c.inner.RotateHoisted(a, steps)
	if err == nil {
		slots := c.inner.Slots()
		n, limbSum := 0, 0
		for i, s := range steps {
			if ((s%slots)+slots)%slots != 0 {
				n++
				limbSum += c.limbs(cts[i])
			}
		}
		c.CountRotateHoisted(n)
		c.CountLimbs(limbSum)
	}
	return cts, err
}

// Counter is an embeddable atomic operation counter for backends.
type Counter struct {
	encrypt, rotate, add, constAdd, mul, constMul atomic.Int64
	maxDepth, rotateHoisted, relin, limbOps       atomic.Int64
}

// CountEncrypt records one encryption.
func (c *Counter) CountEncrypt() { c.encrypt.Add(1) }

// CountRotate records one rotation.
func (c *Counter) CountRotate() { c.rotate.Add(1) }

// CountRotateHoisted records n rotations performed through hoisted key
// switching. They count toward the Rotate total and are additionally
// tracked in RotateHoisted.
func (c *Counter) CountRotateHoisted(n int) {
	c.rotate.Add(int64(n))
	c.rotateHoisted.Add(int64(n))
}

// CountAdd records one ciphertext addition.
func (c *Counter) CountAdd() { c.add.Add(1) }

// CountConstAdd records one plaintext addition.
func (c *Counter) CountConstAdd() { c.constAdd.Add(1) }

// CountMul records one ciphertext multiplication.
func (c *Counter) CountMul() { c.mul.Add(1) }

// CountRelin records one explicit relinearization.
func (c *Counter) CountRelin() { c.relin.Add(1) }

// CountConstMul records one plaintext multiplication.
func (c *Counter) CountConstMul() { c.constMul.Add(1) }

// CountLimbs adds n to the limb·op integral (the active-limb count of
// the ciphertext an operation just produced; see OpCounts.LimbOps).
func (c *Counter) CountLimbs(n int) {
	if n > 0 {
		c.limbOps.Add(int64(n))
	}
}

// NoteDepth records an observed multiplicative depth.
func (c *Counter) NoteDepth(d int) {
	for {
		cur := c.maxDepth.Load()
		if int64(d) <= cur || c.maxDepth.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Counts snapshots the counters.
func (c *Counter) Counts() OpCounts {
	return OpCounts{
		Encrypt:       c.encrypt.Load(),
		Rotate:        c.rotate.Load(),
		Add:           c.add.Load(),
		ConstAdd:      c.constAdd.Load(),
		Mul:           c.mul.Load(),
		ConstMul:      c.constMul.Load(),
		MaxDepth:      c.maxDepth.Load(),
		RotateHoisted: c.rotateHoisted.Load(),
		Relin:         c.relin.Load(),
		LimbOps:       c.limbOps.Load(),
	}
}

// ResetCounts zeroes all counters.
func (c *Counter) ResetCounts() {
	c.encrypt.Store(0)
	c.rotate.Store(0)
	c.add.Store(0)
	c.constAdd.Store(0)
	c.mul.Store(0)
	c.constMul.Store(0)
	c.maxDepth.Store(0)
	c.rotateHoisted.Store(0)
	c.relin.Store(0)
	c.limbOps.Store(0)
}
