// Package he defines the homomorphic-evaluation interface that the COPSE
// runtime targets, together with an operand algebra that lets the same
// algorithm code run over any mix of encrypted and plaintext data (the
// party configurations of the paper's §7). Implementations live in
// he/heclear (exact, noise-free reference) and he/hebgv (the BGV scheme).
package he

import (
	"fmt"
	"sync/atomic"
)

// Ciphertext is an opaque packed ciphertext: a vector of Slots() values
// in Z_t on which the backend evaluates element-wise operations. Depth
// reports the ciphertext-ciphertext multiplicative depth accumulated so
// far (the paper's complexity metric, Table 1/2).
type Ciphertext interface {
	Depth() int
}

// Plain is an opaque encoded plaintext vector. Pre-encoding lets
// backends cache expensive embeddings (the staging compiler encodes every
// plaintext model component exactly once).
type Plain interface{}

// Backend evaluates element-wise arithmetic over packed vectors mod the
// plaintext modulus. All operations are functional (inputs are never
// mutated) and safe for concurrent use: this is a contract, not a
// convention — the serving layer issues Classify traffic against one
// shared Backend from many goroutines. Implementations must keep
// per-call scratch out of shared state (pool it or stack it) and guard
// any caches; both shipped backends are exercised under -race by the
// concurrent-classify stress tests.
type Backend interface {
	// Name identifies the backend ("clear", "bgv").
	Name() string
	// Slots is the packing width.
	Slots() int
	// PlainModulus is t; bits are encoded as {0,1} ⊂ Z_t.
	PlainModulus() uint64

	// Encrypt packs and encrypts up to Slots() values.
	Encrypt(vals []uint64) (Ciphertext, error)
	// Decrypt recovers all Slots() values. It fails on backends
	// constructed without the secret key.
	Decrypt(ct Ciphertext) ([]uint64, error)
	// EncodePlain prepares a plaintext vector for repeated use.
	EncodePlain(vals []uint64) (Plain, error)

	Add(a, b Ciphertext) (Ciphertext, error)
	Sub(a, b Ciphertext) (Ciphertext, error)
	Neg(a Ciphertext) (Ciphertext, error)
	AddPlain(a Ciphertext, p Plain) (Ciphertext, error)
	MulPlain(a Ciphertext, p Plain) (Ciphertext, error)
	Mul(a, b Ciphertext) (Ciphertext, error)
	// MulLazy multiplies without finalizing the result: backends with an
	// expensive relinearization step may return an expanded ciphertext
	// that still supports Add/Sub, letting a sum of products be
	// accumulated first and Relinearize'd once. Rotate does not accept
	// lazy results.
	MulLazy(a, b Ciphertext) (Ciphertext, error)
	// Relinearize finalizes a (sum of) MulLazy result(s); finalized
	// ciphertexts pass through unchanged.
	Relinearize(a Ciphertext) (Ciphertext, error)
	// Rotate rotates slots left by k: out[i] = in[(i+k) mod Slots()].
	Rotate(a Ciphertext, k int) (Ciphertext, error)
	// RotateHoisted rotates a by every step in steps at once, letting the
	// backend amortize per-ciphertext work (e.g. the key-switch digit
	// decomposition) across the whole batch. The result slice is parallel
	// to steps. Backends without hoisting fall back to a Rotate loop.
	RotateHoisted(a Ciphertext, steps []int) ([]Ciphertext, error)

	// Counts returns a snapshot of the operation counters.
	Counts() OpCounts
	// ResetCounts zeroes the counters.
	ResetCounts()
}

// OpCounts tallies primitive FHE operations in the categories of the
// paper's Table 1: Encrypt, Rotate, Add (ciphertext-ciphertext additions,
// including subtractions and negations), ConstAdd (plaintext additions),
// Mul (ciphertext-ciphertext multiplications — the only depth-consuming
// op) and ConstMul (plaintext multiplications, an artifact of encoding
// GF(2) in Z_t; see DESIGN.md §3).
type OpCounts struct {
	Encrypt  int64
	Rotate   int64
	Add      int64
	ConstAdd int64
	Mul      int64
	ConstMul int64
	MaxDepth int64
	// RotateHoisted is the subset of Rotate performed through hoisted
	// key switching (shared digit decomposition); it measures how much of
	// the rotation bill was amortized, not an additional op category.
	RotateHoisted int64
	// Relin counts explicit relinearizations of lazily accumulated
	// products. Plain Mul relinearizes internally and does not count
	// here; Relin/Mul therefore measures how much of the
	// relinearization bill lazy accumulation saved.
	Relin int64
}

// Minus returns c - o field-wise (MaxDepth keeps c's value); useful for
// measuring a single phase.
func (c OpCounts) Minus(o OpCounts) OpCounts {
	return OpCounts{
		Encrypt:       c.Encrypt - o.Encrypt,
		Rotate:        c.Rotate - o.Rotate,
		Add:           c.Add - o.Add,
		ConstAdd:      c.ConstAdd - o.ConstAdd,
		Mul:           c.Mul - o.Mul,
		ConstMul:      c.ConstMul - o.ConstMul,
		MaxDepth:      c.MaxDepth,
		RotateHoisted: c.RotateHoisted - o.RotateHoisted,
		Relin:         c.Relin - o.Relin,
	}
}

func (c OpCounts) String() string {
	return fmt.Sprintf("enc=%d rot=%d(hoisted=%d) add=%d cadd=%d mul=%d(relin=%d) cmul=%d depth=%d",
		c.Encrypt, c.Rotate, c.RotateHoisted, c.Add, c.ConstAdd, c.Mul, c.Relin, c.ConstMul, c.MaxDepth)
}

// CountingBackend wraps a Backend with its own operation counter, so a
// single logical task (one classification pass) can be metered even
// while other goroutines drive the same inner backend — the inner
// backend's global counters see everything, the wrapper sees only the
// operations issued through it. Counts mirrors the inner backends'
// accounting, with one approximation: RotateHoisted attributes every
// non-zero step to the hoisted path (the BGV backend checks per-step
// key availability, which the wrapper cannot see).
type CountingBackend struct {
	Counter
	inner Backend
}

// WithCounts wraps b with a fresh per-wrapper counter.
func WithCounts(b Backend) *CountingBackend { return &CountingBackend{inner: b} }

// Name implements Backend.
func (c *CountingBackend) Name() string { return c.inner.Name() }

// Slots implements Backend.
func (c *CountingBackend) Slots() int { return c.inner.Slots() }

// PlainModulus implements Backend.
func (c *CountingBackend) PlainModulus() uint64 { return c.inner.PlainModulus() }

// Encrypt implements Backend.
func (c *CountingBackend) Encrypt(vals []uint64) (Ciphertext, error) {
	ct, err := c.inner.Encrypt(vals)
	if err == nil {
		c.CountEncrypt()
	}
	return ct, err
}

// Decrypt implements Backend.
func (c *CountingBackend) Decrypt(ct Ciphertext) ([]uint64, error) { return c.inner.Decrypt(ct) }

// EncodePlain implements Backend.
func (c *CountingBackend) EncodePlain(vals []uint64) (Plain, error) {
	return c.inner.EncodePlain(vals)
}

// Add implements Backend.
func (c *CountingBackend) Add(a, b Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Add(a, b)
	if err == nil {
		c.CountAdd()
	}
	return ct, err
}

// Sub implements Backend.
func (c *CountingBackend) Sub(a, b Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Sub(a, b)
	if err == nil {
		c.CountAdd()
	}
	return ct, err
}

// Neg implements Backend.
func (c *CountingBackend) Neg(a Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Neg(a)
	if err == nil {
		c.CountAdd()
	}
	return ct, err
}

// AddPlain implements Backend.
func (c *CountingBackend) AddPlain(a Ciphertext, p Plain) (Ciphertext, error) {
	ct, err := c.inner.AddPlain(a, p)
	if err == nil {
		c.CountConstAdd()
	}
	return ct, err
}

// MulPlain implements Backend.
func (c *CountingBackend) MulPlain(a Ciphertext, p Plain) (Ciphertext, error) {
	ct, err := c.inner.MulPlain(a, p)
	if err == nil {
		c.CountConstMul()
	}
	return ct, err
}

// Mul implements Backend.
func (c *CountingBackend) Mul(a, b Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Mul(a, b)
	if err == nil {
		c.CountMul()
		c.NoteDepth(ct.Depth())
	}
	return ct, err
}

// MulLazy implements Backend.
func (c *CountingBackend) MulLazy(a, b Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.MulLazy(a, b)
	if err == nil {
		c.CountMul()
		c.NoteDepth(ct.Depth())
	}
	return ct, err
}

// Relinearize implements Backend. Pass-through results (already degree
// 1, or backends without relinearization) are not counted, matching the
// inner backends.
func (c *CountingBackend) Relinearize(a Ciphertext) (Ciphertext, error) {
	ct, err := c.inner.Relinearize(a)
	if err == nil && ct != a {
		c.CountRelin()
	}
	return ct, err
}

// Rotate implements Backend.
func (c *CountingBackend) Rotate(a Ciphertext, k int) (Ciphertext, error) {
	ct, err := c.inner.Rotate(a, k)
	if err == nil {
		c.CountRotate()
	}
	return ct, err
}

// RotateHoisted implements Backend.
func (c *CountingBackend) RotateHoisted(a Ciphertext, steps []int) ([]Ciphertext, error) {
	cts, err := c.inner.RotateHoisted(a, steps)
	if err == nil {
		slots := c.inner.Slots()
		n := 0
		for _, s := range steps {
			if ((s%slots)+slots)%slots != 0 {
				n++
			}
		}
		c.CountRotateHoisted(n)
	}
	return cts, err
}

// Counter is an embeddable atomic operation counter for backends.
type Counter struct {
	encrypt, rotate, add, constAdd, mul, constMul atomic.Int64
	maxDepth, rotateHoisted, relin                atomic.Int64
}

// CountEncrypt records one encryption.
func (c *Counter) CountEncrypt() { c.encrypt.Add(1) }

// CountRotate records one rotation.
func (c *Counter) CountRotate() { c.rotate.Add(1) }

// CountRotateHoisted records n rotations performed through hoisted key
// switching. They count toward the Rotate total and are additionally
// tracked in RotateHoisted.
func (c *Counter) CountRotateHoisted(n int) {
	c.rotate.Add(int64(n))
	c.rotateHoisted.Add(int64(n))
}

// CountAdd records one ciphertext addition.
func (c *Counter) CountAdd() { c.add.Add(1) }

// CountConstAdd records one plaintext addition.
func (c *Counter) CountConstAdd() { c.constAdd.Add(1) }

// CountMul records one ciphertext multiplication.
func (c *Counter) CountMul() { c.mul.Add(1) }

// CountRelin records one explicit relinearization.
func (c *Counter) CountRelin() { c.relin.Add(1) }

// CountConstMul records one plaintext multiplication.
func (c *Counter) CountConstMul() { c.constMul.Add(1) }

// NoteDepth records an observed multiplicative depth.
func (c *Counter) NoteDepth(d int) {
	for {
		cur := c.maxDepth.Load()
		if int64(d) <= cur || c.maxDepth.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Counts snapshots the counters.
func (c *Counter) Counts() OpCounts {
	return OpCounts{
		Encrypt:       c.encrypt.Load(),
		Rotate:        c.rotate.Load(),
		Add:           c.add.Load(),
		ConstAdd:      c.constAdd.Load(),
		Mul:           c.mul.Load(),
		ConstMul:      c.constMul.Load(),
		MaxDepth:      c.maxDepth.Load(),
		RotateHoisted: c.rotateHoisted.Load(),
		Relin:         c.relin.Load(),
	}
}

// ResetCounts zeroes all counters.
func (c *Counter) ResetCounts() {
	c.encrypt.Store(0)
	c.rotate.Store(0)
	c.add.Store(0)
	c.constAdd.Store(0)
	c.mul.Store(0)
	c.constMul.Store(0)
	c.maxDepth.Store(0)
	c.rotateHoisted.Store(0)
	c.relin.Store(0)
}
