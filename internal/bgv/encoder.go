package bgv

import (
	"fmt"

	"copse/internal/ring"
)

// Encoder maps vectors of Z_T values ("slots") to plaintext polynomials
// and back, such that ring addition and multiplication act slot-wise.
// This is BGV/BFV batching: the plaintext ring Z_T[x]/(x^N+1) splits into
// N linear factors because T ≡ 1 mod 2N, and the generator-3 index map
// orders the factors so that the Galois map x -> x^3 rotates slots
// cyclically within a row. We expose the first row (N/2 slots); the
// second row is left zero.
type Encoder struct {
	params   *Parameters
	tMod     *ring.Modulus // NTT tables modulo T
	indexMap []int         // slot index -> coefficient position (in NTT order)
}

// NewEncoder builds the batching encoder for params.
func NewEncoder(params *Parameters) (*Encoder, error) {
	n := params.N()
	tMod, err := ring.NewModulus(params.T, n)
	if err != nil {
		return nil, fmt.Errorf("bgv: plaintext modulus is not NTT-friendly: %w", err)
	}
	enc := &Encoder{params: params, tMod: tMod, indexMap: make([]int, n)}
	m := uint64(2 * n)
	pos := uint64(1)
	logN := params.LogN
	for i := 0; i < n/2; i++ {
		idx1 := (pos - 1) / 2
		idx2 := (m - pos - 1) / 2
		enc.indexMap[i] = int(bitrevInt(idx1, logN))
		enc.indexMap[i+n/2] = int(bitrevInt(idx2, logN))
		pos = (pos * slotGenerator) % m
	}
	return enc, nil
}

func bitrevInt(x uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// Encode packs up to Slots() values (each < T) into a plaintext.
func (e *Encoder) Encode(values []uint64) (*Plaintext, error) {
	n := e.params.N()
	if len(values) > e.params.Slots() {
		return nil, fmt.Errorf("bgv: %d values exceed %d slots", len(values), e.params.Slots())
	}
	buf := make([]uint64, n)
	for i, v := range values {
		if v >= e.params.T {
			return nil, fmt.Errorf("bgv: value %d at slot %d exceeds plaintext modulus %d", v, i, e.params.T)
		}
		buf[e.indexMap[i]] = v
	}
	e.tMod.INTT(buf)
	return NewPlaintext(buf), nil
}

// Decode unpacks a plaintext into its Slots() slot values.
func (e *Encoder) Decode(pt *Plaintext) []uint64 {
	n := e.params.N()
	buf := make([]uint64, n)
	copy(buf, pt.Coeffs)
	e.tMod.NTT(buf)
	out := make([]uint64, e.params.Slots())
	for i := range out {
		out[i] = buf[e.indexMap[i]]
	}
	return out
}
