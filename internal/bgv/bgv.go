package bgv

import (
	"fmt"
	"sync/atomic"

	"copse/internal/ring"
)

// Plaintext holds an encoded message: a polynomial with coefficients in
// [0, T). Lifting into the ciphertext ring at a given level is cached,
// since plaintext model components (matrix diagonals, masks) are reused
// across many homomorphic operations. The cache is a lock-free
// copy-on-write table: serving-time reads are a single atomic load, and
// PreLift lets model staging populate the scheduled levels up front so
// no query ever pays the embedding (SetLift + NTT) inline.
type Plaintext struct {
	Coeffs []uint64 // length N, values < T

	lifts atomic.Pointer[[]*ring.Poly] // level-indexed NTT-domain lifts
}

// NewPlaintext wraps encoded coefficients.
func NewPlaintext(coeffs []uint64) *Plaintext {
	return &Plaintext{Coeffs: coeffs}
}

// lift returns the NTT-domain embedding of the plaintext at the given
// level, caching the result. Concurrent first lifts at the same level
// may compute the embedding twice; one copy wins the publish and the
// other is dropped, so every caller sees a single canonical poly.
func (pt *Plaintext) lift(ctx *ring.Context, level int) *ring.Poly {
	if tab := pt.lifts.Load(); tab != nil && level < len(*tab) {
		if p := (*tab)[level]; p != nil {
			return p
		}
	}
	p := ctx.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := ctx.Moduli[i].Q
		pi := p.Coeffs[i]
		for j, c := range pt.Coeffs {
			pi[j] = c % q
		}
	}
	ctx.NTT(p)
	return publishAt(&pt.lifts, level, p)
}

// publishAt installs v at a level index of a lock-free copy-on-write
// table unless another goroutine won the race, returning the canonical
// entry either way. Shared by the plaintext lift cache and the
// switching-key view cache.
func publishAt[T any](tab *atomic.Pointer[[]*T], level int, v *T) *T {
	for {
		old := tab.Load()
		var next []*T
		if old != nil {
			if level < len(*old) && (*old)[level] != nil {
				return (*old)[level]
			}
			next = make([]*T, max(len(*old), level+1))
			copy(next, *old)
		} else {
			next = make([]*T, level+1)
		}
		next[level] = v
		if tab.CompareAndSwap(old, &next) {
			return v
		}
	}
}

// PreLift warms the lift cache at the given levels (negative levels are
// ignored) — model staging calls this so the scheduled consumption
// levels of diagonals, masks and thresholds are cache hits from the
// first query on.
func (pt *Plaintext) PreLift(ctx *ring.Context, levels ...int) {
	for _, level := range levels {
		if level >= 0 && level <= ctx.MaxLevel() {
			pt.lift(ctx, level)
		}
	}
}

// Ciphertext is a BGV ciphertext of degree len(C)-1 in the secret key,
// stored in NTT domain. NoiseBits is a running upper-bound estimate of
// log2 of the critical quantity |t·e + m|, used by the evaluator to drive
// automatic modulus switching (HElib does the same).
type Ciphertext struct {
	C         []*ring.Poly
	NoiseBits float64
}

// Level returns the ciphertext level.
func (ct *Ciphertext) Level() int { return ct.C[0].Level() }

// Degree returns the degree of the ciphertext in s (1 for fresh
// ciphertexts, 2 after an unrelinearized multiplication).
func (ct *Ciphertext) Degree() int { return len(ct.C) - 1 }

// Copy returns a deep copy.
func (ct *Ciphertext) Copy() *Ciphertext {
	out := &Ciphertext{NoiseBits: ct.NoiseBits}
	for _, c := range ct.C {
		out.C = append(out.C, c.Copy())
	}
	return out
}

// Encryptor encrypts plaintexts under a public key. Not safe for
// concurrent use (it owns a sampler).
type Encryptor struct {
	params  *Parameters
	pk      *PublicKey
	sampler *ring.Sampler
}

// NewEncryptor returns an encryptor seeded from system entropy.
func NewEncryptor(params *Parameters, pk *PublicKey) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.RingCtx)}
}

// NewSeededEncryptor returns a deterministic encryptor for tests.
func NewSeededEncryptor(params *Parameters, pk *PublicKey, seed uint64) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSeededSampler(params.RingCtx, seed)}
}

// Encrypt produces a fresh encryption of pt at the top level:
// (c0, c1) = (B·u + t·e0 + m, A·u + t·e1).
func (e *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	return e.EncryptAtLevel(pt, e.params.MaxLevel())
}

// EncryptAtLevel produces a fresh encryption directly at the given level
// (clamped to the chain top): the public key's unused top residues are
// simply not touched, which is the RLWE instance a freshly encrypted,
// then modulus-switched ciphertext would inhabit — minus the switches.
// Level scheduling uses this to land operands at their planned stage
// level for free.
func (e *Encryptor) EncryptAtLevel(pt *Plaintext, level int) *Ciphertext {
	ctx := e.params.RingCtx
	if level > e.params.MaxLevel() {
		level = e.params.MaxLevel()
	}
	if level < 0 {
		level = 0
	}

	u := e.sampler.TernaryPoly(level)
	ctx.NTT(u)

	c0 := ctx.NewPoly(level)
	ctx.MulCoeffs(e.pk.B, u, c0)
	c1 := ctx.NewPoly(level)
	ctx.MulCoeffs(e.pk.A, u, c1)

	e0 := e.sampler.ErrorPoly(level)
	ctx.MulScalar(e0, e.params.T, e0)
	ctx.NTT(e0)
	ctx.Add(c0, e0, c0)

	e1 := e.sampler.ErrorPoly(level)
	ctx.MulScalar(e1, e.params.T, e1)
	ctx.NTT(e1)
	ctx.Add(c1, e1, c1)

	ctx.Add(c0, pt.lift(ctx, level), c0)

	return &Ciphertext{
		C:         []*ring.Poly{c0, c1},
		NoiseBits: e.params.freshNoiseBits(),
	}
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// phase computes c0 + c1·s (+ c2·s²) in coefficient domain at the
// ciphertext's level.
func (d *Decryptor) phase(ct *Ciphertext) *ring.Poly {
	ctx := d.params.RingCtx
	level := ct.Level()
	s := restrict(d.sk.S, level)
	acc := ct.C[0].Copy()
	sPow := s.Copy()
	tmp := ctx.NewPoly(level)
	for i := 1; i < len(ct.C); i++ {
		ctx.MulCoeffs(ct.C[i], sPow, tmp)
		ctx.Add(acc, tmp, acc)
		if i+1 < len(ct.C) {
			ctx.MulCoeffs(sPow, s, sPow)
		}
	}
	ctx.INTT(acc)
	return acc
}

// Decrypt recovers the plaintext coefficients of ct.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	phi := d.phase(ct)
	return NewPlaintext(d.params.RingCtx.ToCenteredMod(phi, d.params.T))
}

// NoiseBudget returns the remaining noise budget of ct in bits: the
// number of modulus bits left before |t·e + m| reaches Q/2 and decryption
// fails. Negative budgets mean the ciphertext is already undecryptable.
func (d *Decryptor) NoiseBudget(ct *Ciphertext) int {
	phi := d.phase(ct)
	noiseBits := d.params.RingCtx.MaxCenteredBits(phi)
	return d.params.QBits(ct.Level()) - noiseBits - 1
}

// freshNoiseBits estimates log2|t·e + m| of a fresh public-key
// encryption: t · (e0 + e·u + e1·s) has canonical norm about
// t·B·sqrt(2N), padded generously.
func (p *Parameters) freshNoiseBits() float64 {
	return float64(bitsOf(p.T)) + float64(p.LogN)/2 + 8
}

func bitsOf(x uint64) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// errNotEnoughLevels is returned when an operation would need a level
// below zero.
var errNotEnoughLevels = fmt.Errorf("bgv: modulus chain exhausted (increase Params.Levels)")
