package bgv

import (
	"strings"
	"testing"
)

// leveledKit builds a BGV instance whose Galois key for step 3 is
// generated at the given level while the power-of-two ladder stays at
// the chain top — the shape GenEvaluationKeysAt produces for a
// level-scheduled back-half step.
func leveledKit(t *testing.T, levels, keyLevel int) *testKit {
	t.Helper()
	params, err := NewParameters(TestParams(levels))
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	kg := NewSeededKeyGenerator(params, 4321)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	steps := append(PowerOfTwoSteps(params.Slots()), 3)
	keys, err := kg.GenEvaluationKeysAt(sk, steps, map[int]int{3: keyLevel})
	if err != nil {
		t.Fatalf("GenEvaluationKeysAt: %v", err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	return &testKit{
		params: params,
		enc:    enc,
		encr:   NewSeededEncryptor(params, pk, 77),
		dec:    NewDecryptor(params, sk),
		eval:   NewEvaluator(params, keys),
		sk:     sk,
	}
}

// TestLeveledGaloisKeyServesScheduledLevel: a key generated at level 3
// rotates a level-3 ciphertext directly and produces the right slots.
func TestLeveledGaloisKeyServesScheduledLevel(t *testing.T) {
	const levels, keyLevel = 6, 3
	kit := leveledKit(t, levels, keyLevel)
	slots := kit.params.Slots()
	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = uint64(i % 97)
	}
	pt, err := kit.enc.Encode(vals)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	ct := kit.encr.EncryptAtLevel(pt, keyLevel)
	if ct.Level() != keyLevel {
		t.Fatalf("ciphertext at level %d, want %d", ct.Level(), keyLevel)
	}
	rot, err := kit.eval.Rotate(ct, 3)
	if err != nil {
		t.Fatalf("Rotate(3) at key level: %v", err)
	}
	got := kit.decryptVec(t, rot)
	for i := range got {
		if want := vals[(i+3)%slots]; got[i] != want {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want)
		}
	}
}

// TestLeveledGaloisKeyFallbackAboveLevel: the same rotation issued above
// the key's level cannot use the direct key and must fall back to the
// top-level power-of-two ladder — still correct, just composed.
func TestLeveledGaloisKeyFallbackAboveLevel(t *testing.T) {
	const levels, keyLevel = 6, 3
	kit := leveledKit(t, levels, keyLevel)
	slots := kit.params.Slots()
	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = uint64((3*i + 1) % 89)
	}
	ct := kit.encryptVec(t, vals) // top of the chain, above the step-3 key
	if ct.Level() <= keyLevel {
		t.Fatalf("test needs a ciphertext above level %d", keyLevel)
	}
	rot, err := kit.eval.Rotate(ct, 3)
	if err != nil {
		t.Fatalf("Rotate(3) above key level: %v", err)
	}
	got := kit.decryptVec(t, rot)
	for i := range got {
		if want := vals[(i+3)%slots]; got[i] != want {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want)
		}
	}
	// The hoisted path must take the same fallback.
	outs, err := kit.eval.RotateHoisted(ct, []int{3})
	if err != nil {
		t.Fatalf("RotateHoisted(3) above key level: %v", err)
	}
	got = kit.decryptVec(t, outs[0])
	for i := range got {
		if want := vals[(i+3)%slots]; got[i] != want {
			t.Fatalf("hoisted slot %d: got %d want %d", i, got[i], want)
		}
	}
}

// TestLeveledGaloisKeyDirectUseAboveLevelRejected: forcing the direct
// path above the key's level must fail loudly, not corrupt.
func TestLeveledGaloisKeyDirectUseAboveLevelRejected(t *testing.T) {
	const levels, keyLevel = 6, 3
	kit := leveledKit(t, levels, keyLevel)
	ct := kit.encryptVec(t, make([]uint64, kit.params.Slots()))
	elt := kit.params.GaloisElt(3)
	if _, err := kit.eval.applyGalois(ct, elt); err == nil || !strings.Contains(err.Error(), "cannot serve") {
		t.Fatalf("applyGalois above key level: got err %v, want level error", err)
	}
}

// TestLeveledKeyMaterialShrinks pins the byte accounting: a key at
// level 3 of an 6-prime chain holds fewer digits × fewer limbs than a
// top-level key, and MaterialBytes/TopLevelBytes see the difference.
func TestLeveledKeyMaterialShrinks(t *testing.T) {
	const levels, keyLevel = 6, 3
	kit := leveledKit(t, levels, keyLevel)
	key := kit.eval.keys.Galois[kit.params.GaloisElt(3)]
	if key.Level() != keyLevel {
		t.Fatalf("step-3 key at level %d, want %d", key.Level(), keyLevel)
	}
	if got, want := key.MaterialBytes(), kit.params.SwitchingKeyBytes(keyLevel); got != want {
		t.Fatalf("leveled key bytes %d, want %d", got, want)
	}
	ek := kit.eval.keys
	if ek.MaterialBytes() >= ek.TopLevelBytes(kit.params) {
		t.Fatalf("leveled key set (%d bytes) not smaller than all-top baseline (%d bytes)",
			ek.MaterialBytes(), ek.TopLevelBytes(kit.params))
	}
}
