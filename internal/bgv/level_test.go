package bgv

import (
	"sync"
	"testing"
)

// TestEncryptAtLevel: a fresh encryption landed directly at a lower
// level decrypts exactly, supports arithmetic, and matches the RLWE
// instance a top-level encryption reaches after modulus switching.
func TestEncryptAtLevel(t *testing.T) {
	kit := newTestKit(t, 6, []int{3})
	vals := ramp(kit.params.Slots())
	pt, err := kit.enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []int{0, 1, 3, kit.params.MaxLevel(), kit.params.MaxLevel() + 5} {
		ct := kit.encr.EncryptAtLevel(pt, level)
		want := min(level, kit.params.MaxLevel())
		if want < 0 {
			want = 0
		}
		if ct.Level() != want {
			t.Fatalf("EncryptAtLevel(%d): level %d, want %d", level, ct.Level(), want)
		}
		got := kit.enc.Decode(kit.dec.Decrypt(ct))
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("EncryptAtLevel(%d): slot %d = %d, want %d", level, i, got[i], vals[i])
			}
		}
	}

	// Arithmetic at a dropped level: rotate (exercising the truncated
	// switching-key views) and multiply.
	ct := kit.encr.EncryptAtLevel(pt, 2)
	rot, err := kit.eval.Rotate(ct, 3)
	if err != nil {
		t.Fatalf("Rotate at level 2: %v", err)
	}
	got := kit.enc.Decode(kit.dec.Decrypt(rot))
	slots := kit.params.Slots()
	for i := 0; i < slots; i++ {
		if got[i] != vals[(i+3)%slots] {
			t.Fatalf("rotated slot %d = %d, want %d", i, got[i], vals[(i+3)%slots])
		}
	}
	prod, err := kit.eval.Mul(ct, ct)
	if err != nil {
		t.Fatalf("Mul at level 2: %v", err)
	}
	got = kit.enc.Decode(kit.dec.Decrypt(prod))
	tMod := kit.params.T
	for i := range vals {
		if got[i] != vals[i]*vals[i]%tMod {
			t.Fatalf("squared slot %d = %d, want %d", i, got[i], vals[i]*vals[i]%tMod)
		}
	}
}

// TestDropToLevelThenRotate: rotations after a deep proactive drop use
// the level-truncated key views (fewer digits, fewer limbs) and must
// stay exact all the way down to level 1.
func TestDropToLevelThenRotate(t *testing.T) {
	kit := newTestKit(t, 8, []int{1})
	vals := ramp(kit.params.Slots())
	pt, err := kit.enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	slots := kit.params.Slots()
	for _, level := range []int{5, 2, 1} {
		ct := kit.encr.Encrypt(pt)
		if err := kit.eval.DropToLevel(ct, level); err != nil {
			t.Fatalf("DropToLevel(%d): %v", level, err)
		}
		if ct.Level() != level {
			t.Fatalf("DropToLevel(%d): level %d", level, ct.Level())
		}
		rot, err := kit.eval.Rotate(ct, 1)
		if err != nil {
			t.Fatalf("Rotate at level %d: %v", level, err)
		}
		got := kit.enc.Decode(kit.dec.Decrypt(rot))
		for i := 0; i < slots; i++ {
			if got[i] != vals[(i+1)%slots] {
				t.Fatalf("level %d: rotated slot %d = %d, want %d", level, i, got[i], vals[(i+1)%slots])
			}
		}
	}
}

// TestSwitchingKeyViews: the truncated view shares the full key's
// backing arrays, keeps exactly the digits the level's modulus needs,
// and is cached.
func TestSwitchingKeyViews(t *testing.T) {
	kit := newTestKit(t, 6, nil)
	key := kit.eval.keys.Relin
	ctx := kit.params.RingCtx
	w := kit.params.DigitBits

	top := key.AtLevel(ctx, w, kit.params.MaxLevel())
	if top != key {
		t.Error("top-level view is not the key itself")
	}
	v := key.AtLevel(ctx, w, 1)
	if len(v.B) != ctx.NumDigits(1, w) {
		t.Errorf("level-1 view keeps %d digits, want %d", len(v.B), ctx.NumDigits(1, w))
	}
	if v.B[0].Level() != 1 || len(v.BS[0].S) != 2 {
		t.Errorf("level-1 view not truncated to 2 limbs")
	}
	if &v.B[0].Coeffs[0][0] != &key.B[0].Coeffs[0][0] {
		t.Error("view copied the key data instead of sharing it")
	}
	if again := key.AtLevel(ctx, w, 1); again != v {
		t.Error("view not cached")
	}
}

// TestPlaintextPreLiftConcurrent: the lock-free lift cache returns one
// canonical poly per level under concurrent first use.
func TestPlaintextPreLiftConcurrent(t *testing.T) {
	kit := newTestKit(t, 5, nil)
	ctx := kit.params.RingCtx
	pt, err := kit.enc.Encode(ramp(kit.params.Slots()))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([][]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for level := 0; level <= kit.params.MaxLevel(); level++ {
				results[g] = append(results[g], pt.lift(ctx, level))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d saw a different lift at level %d", g, i)
			}
		}
	}
	// PreLift warms the scheduled levels (and tolerates out-of-range).
	pt2, _ := kit.enc.Encode(ramp(kit.params.Slots()))
	pt2.PreLift(ctx, 2, 1, -1, 99)
	if tab := pt2.lifts.Load(); tab == nil || (*tab)[2] == nil || (*tab)[1] == nil {
		t.Error("PreLift did not populate the cache")
	}
}

// ramp returns 0,1,2,... mod a small bound, sized to n.
func ramp(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i % 251)
	}
	return out
}
