package bgv

import (
	"fmt"
	"math"

	"copse/internal/ring"
)

// Evaluator performs homomorphic operations. It holds only read-only key
// material, so a single Evaluator is safe for concurrent use across
// goroutines as long as distinct ciphertexts are operated on.
type Evaluator struct {
	params *Parameters
	keys   *EvaluationKeys
}

// NewEvaluator returns an evaluator using the given evaluation keys. The
// keys may be nil for purely additive workloads.
func NewEvaluator(params *Parameters, keys *EvaluationKeys) *Evaluator {
	return &Evaluator{params: params, keys: keys}
}

// msFloorBits is the noise level right after a modulus switch:
// roughly t·(1 + ||s||_1) plus rounding, padded.
func (ev *Evaluator) msFloorBits() float64 {
	return float64(bitsOf(ev.params.T)) + float64(ev.params.LogN) + 4
}

// ksNoiseBits is the additive noise of one key switch: the digits are
// bounded by 2^w and the key errors by t·B, so the added term is about
// D·2^w·N·t·B.
func (ev *Evaluator) ksNoiseBits(level int) float64 {
	d := ev.params.RingCtx.NumDigits(level, ev.params.DigitBits)
	return float64(ev.params.DigitBits) + float64(ev.params.LogN) +
		float64(bitsOf(ev.params.T)) + math.Log2(float64(d)) + 6
}

// manage drops levels while the noise estimate gets too close to the
// current modulus, mirroring HElib's automatic modulus switching. The
// policy is lazy: it only switches when the decryption margin is at risk,
// because key-switching operations (rotations, relinearization) need a
// modulus comfortably above the key-switch noise and so benefit from
// staying at higher levels.
func (ev *Evaluator) manage(ct *Ciphertext) error {
	margin := float64(bitsOf(ev.params.T)) + 10
	for ct.Level() > 0 && ct.NoiseBits > float64(ev.params.QBits(ct.Level()))-margin {
		if err := ev.ModSwitch(ct); err != nil {
			return err
		}
	}
	if ct.NoiseBits > float64(ev.params.QBits(ct.Level()))-float64(bitsOf(ev.params.T))-2 {
		return fmt.Errorf("bgv: noise estimate %.0f bits exceeds modulus at level %d: %w",
			ct.NoiseBits, ct.Level(), errNotEnoughLevels)
	}
	return nil
}

// alignLevels switches the higher-level operand down so both share a
// level, returning (possibly shallow-copied) aligned ciphertexts.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext, error) {
	for a.Level() > b.Level() {
		a = a.Copy()
		for a.Level() > b.Level() {
			if err := ev.ModSwitch(a); err != nil {
				return nil, nil, err
			}
		}
	}
	for b.Level() > a.Level() {
		b = b.Copy()
		for b.Level() > a.Level() {
			if err := ev.ModSwitch(b); err != nil {
				return nil, nil, err
			}
		}
	}
	return a, b, nil
}

// Add returns a + b.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	a, b, err := ev.alignLevels(a, b)
	if err != nil {
		return nil, err
	}
	ctx := ev.params.RingCtx
	level := a.Level()
	out := &Ciphertext{NoiseBits: math.Max(a.NoiseBits, b.NoiseBits) + 1}
	for i := 0; i < max(len(a.C), len(b.C)); i++ {
		var c *ring.Poly
		switch {
		case i < len(a.C) && i < len(b.C):
			c = ctx.NewPoly(level)
			ctx.Add(a.C[i], b.C[i], c)
		case i < len(a.C):
			c = a.C[i].Copy()
		default:
			c = b.C[i].Copy()
		}
		out.C = append(out.C, c)
	}
	return out, ev.manage(out)
}

// Sub returns a - b, subtracting coefficient-wise in one pass.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	a, b, err := ev.alignLevels(a, b)
	if err != nil {
		return nil, err
	}
	ctx := ev.params.RingCtx
	level := a.Level()
	out := &Ciphertext{NoiseBits: math.Max(a.NoiseBits, b.NoiseBits) + 1}
	for i := 0; i < max(len(a.C), len(b.C)); i++ {
		var c *ring.Poly
		switch {
		case i < len(a.C) && i < len(b.C):
			c = ctx.NewPoly(level)
			ctx.Sub(a.C[i], b.C[i], c)
		case i < len(a.C):
			c = a.C[i].Copy()
		default:
			c = ctx.NewPoly(level)
			ctx.Neg(b.C[i], c)
		}
		out.C = append(out.C, c)
	}
	return out, ev.manage(out)
}

// Neg returns -a. The output polys come from the ring pool (fully
// overwritten), keeping the serving hot path allocation-free.
func (ev *Evaluator) Neg(a *Ciphertext) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	out := &Ciphertext{NoiseBits: a.NoiseBits}
	for _, c := range a.C {
		n := ctx.GetPoly(a.Level())
		ctx.Neg(c, n)
		out.C = append(out.C, n)
	}
	return out, nil
}

// AddPlain returns a + pt. The copy of a runs through the ring pool
// (GetPoly + CopyInto) instead of a fresh Poly.Copy.
func (ev *Evaluator) AddPlain(a *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	out := &Ciphertext{NoiseBits: a.NoiseBits + 1}
	for _, c := range a.C {
		p := ctx.GetPoly(a.Level())
		ctx.CopyInto(c, p)
		out.C = append(out.C, p)
	}
	ctx.Add(out.C[0], pt.lift(ctx, a.Level()), out.C[0])
	return out, ev.manage(out)
}

// MulPlain returns a · pt (slot-wise).
func (ev *Evaluator) MulPlain(a *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	p := pt.lift(ctx, a.Level())
	out := &Ciphertext{
		NoiseBits: a.NoiseBits + float64(bitsOf(ev.params.T)) + float64(ev.params.LogN)/2 + 1,
	}
	for _, c := range a.C {
		m := ctx.NewPoly(a.Level())
		ctx.MulCoeffs(c, p, m)
		out.C = append(out.C, m)
	}
	return out, ev.manage(out)
}

// MulScalar returns a · c for a scalar c < T (the same value in every
// slot). Scalars embed as constant polynomials, so no encoding is
// needed. Output polys come from the ring pool (fully overwritten).
func (ev *Evaluator) MulScalar(a *Ciphertext, c uint64) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	out := &Ciphertext{NoiseBits: a.NoiseBits + float64(bitsOf(c)) + 1}
	for _, p := range a.C {
		m := ctx.GetPoly(a.Level())
		ctx.MulScalar(p, c, m)
		out.C = append(out.C, m)
	}
	return out, ev.manage(out)
}

// tensorProduct computes the degree-2 tensor (d0, d1, d2) of a·b after
// the BGV switch-down discipline (drop levels first so the tensor noise,
// the product of the operand noises, stays small).
func (ev *Evaluator) tensorProduct(a, b *Ciphertext) (*Ciphertext, error) {
	if len(a.C) != 2 || len(b.C) != 2 {
		return nil, fmt.Errorf("bgv: Mul requires degree-1 ciphertexts")
	}
	a, b, err := ev.alignLevels(a, b)
	if err != nil {
		return nil, err
	}
	floor := ev.msFloorBits()
	for a.Level() > 0 && a.NoiseBits >= floor+float64(ev.params.PrimeBits) {
		a = a.Copy()
		if err := ev.ModSwitch(a); err != nil {
			return nil, err
		}
	}
	for b.Level() > a.Level() {
		b = b.Copy()
		if err := ev.ModSwitch(b); err != nil {
			return nil, err
		}
	}
	ctx := ev.params.RingCtx
	level := a.Level()
	if level == 0 {
		return nil, errNotEnoughLevels
	}

	d0 := ctx.NewPoly(level)
	ctx.MulCoeffs(a.C[0], b.C[0], d0)
	d1 := ctx.NewPoly(level)
	tmp := ctx.GetPoly(level)
	ctx.MulCoeffs(a.C[0], b.C[1], d1)
	ctx.MulCoeffs(a.C[1], b.C[0], tmp)
	ctx.Add(d1, tmp, d1)
	d2 := ctx.NewPoly(level)
	ctx.MulCoeffs(a.C[1], b.C[1], d2)
	ctx.PutPoly(tmp)

	return &Ciphertext{
		C:         []*ring.Poly{d0, d1, d2},
		NoiseBits: a.NoiseBits + b.NoiseBits + float64(ev.params.LogN) + 1,
	}, nil
}

// Mul returns a·b, relinearized and modulus-switched: it consumes one
// level.
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	out, err := ev.MulNoRelin(a, b)
	if err != nil {
		return nil, err
	}
	return ev.Relinearize(out)
}

// MulNoRelin returns the degree-2 product a·b without relinearizing.
// Degree-2 ciphertexts support Add/Sub/Neg, so a sum of products can be
// accumulated first and key-switched once with Relinearize — amortizing
// the dominant digit-decomposition cost across the whole inner product
// (lazy relinearization).
func (ev *Evaluator) MulNoRelin(a, b *Ciphertext) (*Ciphertext, error) {
	out, err := ev.tensorProduct(a, b)
	if err != nil {
		return nil, err
	}
	return out, ev.manage(out)
}

// Relinearize reduces a degree-2 ciphertext back to degree 1 and
// modulus-switches. Degree-1 inputs pass through unchanged.
func (ev *Evaluator) Relinearize(ct *Ciphertext) (*Ciphertext, error) {
	if len(ct.C) == 2 {
		return ct, nil
	}
	if len(ct.C) != 3 {
		return nil, fmt.Errorf("bgv: Relinearize requires a ciphertext of degree at most 2")
	}
	if ev.keys == nil || ev.keys.Relin == nil {
		return nil, fmt.Errorf("bgv: Mul requires a relinearization key")
	}
	ctx := ev.params.RingCtx
	level := ct.Level()

	d2 := ctx.GetPoly(level)
	ctx.CopyInto(ct.C[2], d2)
	ctx.INTT(d2)
	acc0, acc1 := ev.keySwitch(d2, ev.keys.Relin, level)
	ctx.PutPoly(d2)
	d0 := ctx.NewPoly(level)
	ctx.Add(ct.C[0], acc0, d0)
	d1 := ctx.NewPoly(level)
	ctx.Add(ct.C[1], acc1, d1)
	ctx.PutPoly(acc0)
	ctx.PutPoly(acc1)

	out := &Ciphertext{C: []*ring.Poly{d0, d1}}
	out.NoiseBits = math.Max(ct.NoiseBits, ev.ksNoiseBits(level)) + 1
	if err := ev.ModSwitch(out); err != nil {
		return nil, err
	}
	return out, ev.manage(out)
}

// keySwitch computes Σ_k digit_k ⊙ key_k for a coefficient-domain
// polynomial d, returning NTT-domain accumulators (b-side, a-side). The
// key is accessed through its level-truncated view, so a switch at a
// scheduled-down level runs over exactly the digits and limbs that level
// needs. The accumulators come from the ring pool; callers that consume
// them into a longer-lived sum should PutPoly them afterwards.
func (ev *Evaluator) keySwitch(d *ring.Poly, key *SwitchingKey, level int) (*ring.Poly, *ring.Poly) {
	ctx := ev.params.RingCtx
	key = key.AtLevel(ctx, ev.params.DigitBits, level)
	digits := ctx.DecomposeBase2w(d, ev.params.DigitBits)
	acc0 := ctx.GetPolyZero(level)
	acc0.IsNTT = true
	acc1 := ctx.GetPolyZero(level)
	acc1.IsNTT = true
	for k, dig := range digits {
		ctx.MulCoeffsShoupAdd(dig, key.B[k], key.BS[k], acc0)
		ctx.MulCoeffsShoupAdd(dig, key.A[k], key.AS[k], acc1)
	}
	ctx.PutPolys(digits)
	return acc0, acc1
}

// ModSwitch drops one prime from ct's modulus chain in place, reducing
// the noise by roughly PrimeBits.
func (ev *Evaluator) ModSwitch(ct *Ciphertext) error {
	if ct.Level() == 0 {
		return errNotEnoughLevels
	}
	ctx := ev.params.RingCtx
	for _, c := range ct.C {
		ctx.ModSwitchDown(c)
	}
	ct.NoiseBits = math.Max(ct.NoiseBits-float64(ev.params.PrimeBits), ev.msFloorBits())
	return nil
}

// DropToLevel switches ct down to the given level in place.
func (ev *Evaluator) DropToLevel(ct *Ciphertext, level int) error {
	for ct.Level() > level {
		if err := ev.ModSwitch(ct); err != nil {
			return err
		}
	}
	return nil
}

// Rotate returns ct with slots rotated left by step: out[i] = in[i+step].
// If no Galois key exists for the exact step, the rotation is composed
// from available power-of-two steps.
func (ev *Evaluator) Rotate(ct *Ciphertext, step int) (*Ciphertext, error) {
	if ev.keys == nil {
		return nil, fmt.Errorf("bgv: Rotate requires Galois keys")
	}
	slots := ev.params.Slots()
	s := ((step % slots) + slots) % slots
	if s == 0 {
		return ct.Copy(), nil
	}
	// A direct key is only usable if it covers the ciphertext's level:
	// keys for back-half rotation steps are generated at their scheduled
	// stage level (GenEvaluationKeysAt), and a rotation arriving above
	// that — a second registered model with a different schedule, or a
	// reactive caller — falls back to the composed path, whose
	// power-of-two ladder keys always live at the chain top.
	if elt := ev.params.GaloisElt(s); ev.keys.Galois[elt] != nil && ev.keys.Galois[elt].Level() >= ct.Level() {
		return ev.applyGalois(ct, elt)
	}
	// Compose from power-of-two hops.
	out := ct
	for bit := 0; s != 0; bit++ {
		if s&1 == 1 {
			hop := 1 << bit
			elt := ev.params.GaloisElt(hop)
			key := ev.keys.Galois[elt]
			if key == nil {
				return nil, fmt.Errorf("bgv: no Galois key for step %d (needed to compose rotation by %d)", hop, step)
			}
			var err error
			out, err = ev.applyGalois(out, elt)
			if err != nil {
				return nil, err
			}
		}
		s >>= 1
	}
	return out, nil
}

// applyGalois applies the automorphism x -> x^elt and key-switches back
// to the original secret.
func (ev *Evaluator) applyGalois(ct *Ciphertext, elt uint64) (*Ciphertext, error) {
	if err := ev.checkGalois(ct, elt); err != nil {
		return nil, err
	}
	ctx := ev.params.RingCtx
	level := ct.Level()
	c0, digits := ev.hoistPrep(ct, level)
	out, err := ev.galoisFromDigits(ct, c0, digits, elt)
	ctx.PutPoly(c0)
	ctx.PutPolys(digits)
	return out, err
}

// checkGalois validates ct and the headroom for one key switch. A key
// switch adds ~ksNoiseBits of absolute noise; refuse to rotate when the
// current modulus cannot absorb it.
func (ev *Evaluator) checkGalois(ct *Ciphertext, elt uint64) error {
	key := ev.keys.Galois[elt]
	if key == nil {
		return fmt.Errorf("bgv: no Galois key for element %d", elt)
	}
	if key.Level() < ct.Level() {
		return fmt.Errorf("bgv: Galois key for element %d generated at level %d cannot serve a rotation at level %d",
			elt, key.Level(), ct.Level())
	}
	if len(ct.C) != 2 {
		return fmt.Errorf("bgv: rotation requires a degree-1 ciphertext")
	}
	level := ct.Level()
	if float64(ev.params.QBits(level)) < ev.ksNoiseBits(level)+float64(bitsOf(ev.params.T))+4 {
		return fmt.Errorf("bgv: rotation at level %d lacks key-switch headroom: %w", level, errNotEnoughLevels)
	}
	return nil
}

// hoistPrep computes the shared, rotation-independent half of a Galois
// key switch: c0 in coefficient domain and the base-2^w digit
// decomposition of c1 (also in coefficient domain). This is the dominant
// cost of a rotation — one INTT pair plus a full CRT reconstruction per
// coefficient — and it can be amortized across every rotation of the same
// ciphertext. All returned polys belong to the ring pool.
func (ev *Evaluator) hoistPrep(ct *Ciphertext, level int) (c0 *ring.Poly, digits []*ring.Poly) {
	ctx := ev.params.RingCtx
	c0 = ctx.GetPoly(level)
	ctx.CopyInto(ct.C[0], c0)
	ctx.INTT(c0)
	c1 := ctx.GetPoly(level)
	ctx.CopyInto(ct.C[1], c1)
	ctx.INTT(c1)
	digits = ctx.DecomposeBase2wCoeff(c1, ev.params.DigitBits)
	ctx.PutPoly(c1)
	return c0, digits
}

// galoisFromDigits finishes a rotation from the hoisted state: it applies
// the automorphism to c0 and to each shared digit, then multiplies the
// digits against the Galois key. Applying the automorphism after the
// decomposition is sound because Σ_k σ(d_k)·2^{kw} = σ(c1) and the
// automorphism permutes (and sign-flips) coefficients, preserving their
// digit-sized magnitude.
func (ev *Evaluator) galoisFromDigits(ct *Ciphertext, c0 *ring.Poly, digits []*ring.Poly, elt uint64) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	level := ct.Level()
	key := ev.keys.Galois[elt].AtLevel(ctx, ev.params.DigitBits, level)

	sc0 := ctx.GetPoly(level)
	ctx.Automorphism(c0, elt, sc0)
	ctx.NTT(sc0)

	acc0 := ctx.GetPolyZero(level)
	acc0.IsNTT = true
	acc1 := ctx.GetPolyZero(level)
	acc1.IsNTT = true
	tmp := ctx.GetPoly(level)
	for k, dig := range digits {
		ctx.Automorphism(dig, elt, tmp)
		ctx.NTT(tmp)
		ctx.MulCoeffsShoupAdd(tmp, key.B[k], key.BS[k], acc0)
		ctx.MulCoeffsShoupAdd(tmp, key.A[k], key.AS[k], acc1)
		tmp.IsNTT = false
	}
	ctx.PutPoly(tmp)
	ctx.Add(sc0, acc0, sc0)
	ctx.PutPoly(acc0)

	out := &Ciphertext{
		C:         []*ring.Poly{sc0, acc1},
		NoiseBits: math.Max(ct.NoiseBits, ev.ksNoiseBits(level)) + 1,
	}
	return out, ev.manage(out)
}

// HoistableStepAt classifies a rotation step at a level for op
// accounting: it returns (false, false) for a no-op step (0 mod slots),
// (true, true) when a direct Galois key exists covering the level so
// the step rides the hoisted path, and (true, false) when the step must
// be composed from power-of-two hops instead.
func (ev *Evaluator) HoistableStepAt(step, level int) (rotates, hoisted bool) {
	slots := ev.params.Slots()
	s := ((step % slots) + slots) % slots
	if s == 0 {
		return false, false
	}
	if ev.keys == nil {
		return true, false
	}
	key := ev.keys.Galois[ev.params.GaloisElt(s)]
	return true, key != nil && key.Level() >= level
}

// RotateHoisted rotates ct left by every step in steps with hoisted key
// switching (Halevi–Shoup 2018): the c1 component is decomposed into
// key-switching digits once, in coefficient domain, and each Galois
// automorphism is applied to the shared digits — amortizing the dominant
// INTT + CRT-decompose cost across all requested rotations. The result
// slice is parallel to steps; step 0 returns a copy. Steps lacking a
// direct Galois key fall back to the composed Rotate path (no hoisting
// for those steps).
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, steps []int) ([]*Ciphertext, error) {
	if ev.keys == nil {
		return nil, fmt.Errorf("bgv: RotateHoisted requires Galois keys")
	}
	if len(steps) == 0 {
		return nil, nil
	}
	if len(ct.C) != 2 {
		return nil, fmt.Errorf("bgv: rotation requires a degree-1 ciphertext")
	}
	ctx := ev.params.RingCtx
	slots := ev.params.Slots()
	level := ct.Level()

	outs := make([]*Ciphertext, len(steps))
	var c0 *ring.Poly
	var digits []*ring.Poly
	var err error
	for i, step := range steps {
		s := ((step % slots) + slots) % slots
		if s == 0 {
			outs[i] = ct.Copy()
			continue
		}
		elt := ev.params.GaloisElt(s)
		if key := ev.keys.Galois[elt]; key == nil || key.Level() < level {
			outs[i], err = ev.Rotate(ct, s)
		} else if err = ev.checkGalois(ct, elt); err == nil {
			if digits == nil {
				c0, digits = ev.hoistPrep(ct, level)
			}
			outs[i], err = ev.galoisFromDigits(ct, c0, digits, elt)
		}
		if err != nil {
			break
		}
	}
	if digits != nil {
		ctx.PutPoly(c0)
		ctx.PutPolys(digits)
	}
	if err != nil {
		return nil, err
	}
	return outs, nil
}
