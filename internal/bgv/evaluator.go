package bgv

import (
	"fmt"
	"math"

	"copse/internal/ring"
)

// Evaluator performs homomorphic operations. It holds only read-only key
// material, so a single Evaluator is safe for concurrent use across
// goroutines as long as distinct ciphertexts are operated on.
type Evaluator struct {
	params *Parameters
	keys   *EvaluationKeys
}

// NewEvaluator returns an evaluator using the given evaluation keys. The
// keys may be nil for purely additive workloads.
func NewEvaluator(params *Parameters, keys *EvaluationKeys) *Evaluator {
	return &Evaluator{params: params, keys: keys}
}

// msFloorBits is the noise level right after a modulus switch:
// roughly t·(1 + ||s||_1) plus rounding, padded.
func (ev *Evaluator) msFloorBits() float64 {
	return float64(bitsOf(ev.params.T)) + float64(ev.params.LogN) + 4
}

// ksNoiseBits is the additive noise of one key switch: the digits are
// bounded by 2^w and the key errors by t·B, so the added term is about
// D·2^w·N·t·B.
func (ev *Evaluator) ksNoiseBits(level int) float64 {
	d := ev.params.RingCtx.NumDigits(level, ev.params.DigitBits)
	return float64(ev.params.DigitBits) + float64(ev.params.LogN) +
		float64(bitsOf(ev.params.T)) + math.Log2(float64(d)) + 6
}

// manage drops levels while the noise estimate gets too close to the
// current modulus, mirroring HElib's automatic modulus switching. The
// policy is lazy: it only switches when the decryption margin is at risk,
// because key-switching operations (rotations, relinearization) need a
// modulus comfortably above the key-switch noise and so benefit from
// staying at higher levels.
func (ev *Evaluator) manage(ct *Ciphertext) error {
	margin := float64(bitsOf(ev.params.T)) + 10
	for ct.Level() > 0 && ct.NoiseBits > float64(ev.params.QBits(ct.Level()))-margin {
		if err := ev.ModSwitch(ct); err != nil {
			return err
		}
	}
	if ct.NoiseBits > float64(ev.params.QBits(ct.Level()))-float64(bitsOf(ev.params.T))-2 {
		return fmt.Errorf("bgv: noise estimate %.0f bits exceeds modulus at level %d: %w",
			ct.NoiseBits, ct.Level(), errNotEnoughLevels)
	}
	return nil
}

// alignLevels switches the higher-level operand down so both share a
// level, returning (possibly shallow-copied) aligned ciphertexts.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext, error) {
	for a.Level() > b.Level() {
		a = a.Copy()
		for a.Level() > b.Level() {
			if err := ev.ModSwitch(a); err != nil {
				return nil, nil, err
			}
		}
	}
	for b.Level() > a.Level() {
		b = b.Copy()
		for b.Level() > a.Level() {
			if err := ev.ModSwitch(b); err != nil {
				return nil, nil, err
			}
		}
	}
	return a, b, nil
}

// Add returns a + b.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	a, b, err := ev.alignLevels(a, b)
	if err != nil {
		return nil, err
	}
	ctx := ev.params.RingCtx
	level := a.Level()
	out := &Ciphertext{NoiseBits: math.Max(a.NoiseBits, b.NoiseBits) + 1}
	for i := 0; i < max(len(a.C), len(b.C)); i++ {
		c := ctx.NewPoly(level)
		switch {
		case i < len(a.C) && i < len(b.C):
			ctx.Add(a.C[i], b.C[i], c)
		case i < len(a.C):
			c = a.C[i].Copy()
		default:
			c = b.C[i].Copy()
		}
		out.C = append(out.C, c)
	}
	return out, ev.manage(out)
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	nb, err := ev.Neg(b)
	if err != nil {
		return nil, err
	}
	return ev.Add(a, nb)
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	out := &Ciphertext{NoiseBits: a.NoiseBits}
	for _, c := range a.C {
		n := ctx.NewPoly(a.Level())
		ctx.Neg(c, n)
		out.C = append(out.C, n)
	}
	return out, nil
}

// AddPlain returns a + pt.
func (ev *Evaluator) AddPlain(a *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	out := a.Copy()
	ctx.Add(out.C[0], pt.lift(ctx, a.Level()), out.C[0])
	out.NoiseBits = a.NoiseBits + 1
	return out, ev.manage(out)
}

// MulPlain returns a · pt (slot-wise).
func (ev *Evaluator) MulPlain(a *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	p := pt.lift(ctx, a.Level())
	out := &Ciphertext{
		NoiseBits: a.NoiseBits + float64(bitsOf(ev.params.T)) + float64(ev.params.LogN)/2 + 1,
	}
	for _, c := range a.C {
		m := ctx.NewPoly(a.Level())
		ctx.MulCoeffs(c, p, m)
		out.C = append(out.C, m)
	}
	return out, ev.manage(out)
}

// MulScalar returns a · c for a scalar c < T (the same value in every
// slot). Scalars embed as constant polynomials, so no encoding is needed.
func (ev *Evaluator) MulScalar(a *Ciphertext, c uint64) (*Ciphertext, error) {
	ctx := ev.params.RingCtx
	out := &Ciphertext{NoiseBits: a.NoiseBits + float64(bitsOf(c)) + 1}
	for _, p := range a.C {
		m := ctx.NewPoly(a.Level())
		ctx.MulScalar(p, c, m)
		out.C = append(out.C, m)
	}
	return out, ev.manage(out)
}

// Mul returns a·b, relinearized and modulus-switched: it consumes one
// level.
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	if ev.keys == nil || ev.keys.Relin == nil {
		return nil, fmt.Errorf("bgv: Mul requires a relinearization key")
	}
	if len(a.C) != 2 || len(b.C) != 2 {
		return nil, fmt.Errorf("bgv: Mul requires degree-1 ciphertexts")
	}
	a, b, err := ev.alignLevels(a, b)
	if err != nil {
		return nil, err
	}
	// BGV discipline: switch down first so the tensor noise (product of
	// the operand noises) stays small.
	floor := ev.msFloorBits()
	for a.Level() > 0 && a.NoiseBits >= floor+float64(ev.params.PrimeBits) {
		a = a.Copy()
		if err := ev.ModSwitch(a); err != nil {
			return nil, err
		}
	}
	for b.Level() > a.Level() {
		b = b.Copy()
		if err := ev.ModSwitch(b); err != nil {
			return nil, err
		}
	}
	ctx := ev.params.RingCtx
	level := a.Level()
	if level == 0 {
		return nil, errNotEnoughLevels
	}

	d0 := ctx.NewPoly(level)
	ctx.MulCoeffs(a.C[0], b.C[0], d0)
	d1 := ctx.NewPoly(level)
	tmp := ctx.NewPoly(level)
	ctx.MulCoeffs(a.C[0], b.C[1], d1)
	ctx.MulCoeffs(a.C[1], b.C[0], tmp)
	ctx.Add(d1, tmp, d1)
	d2 := ctx.NewPoly(level)
	ctx.MulCoeffs(a.C[1], b.C[1], d2)

	ctx.INTT(d2)
	acc0, acc1 := ev.keySwitch(d2, ev.keys.Relin, level)
	ctx.Add(d0, acc0, d0)
	ctx.Add(d1, acc1, d1)

	out := &Ciphertext{C: []*ring.Poly{d0, d1}}
	tensor := a.NoiseBits + b.NoiseBits + float64(ev.params.LogN) + 1
	out.NoiseBits = math.Max(tensor, ev.ksNoiseBits(level)) + 1
	if err := ev.ModSwitch(out); err != nil {
		return nil, err
	}
	return out, ev.manage(out)
}

// keySwitch computes Σ_k digit_k ⊙ key_k for a coefficient-domain
// polynomial d, returning NTT-domain accumulators (b-side, a-side).
func (ev *Evaluator) keySwitch(d *ring.Poly, key *SwitchingKey, level int) (*ring.Poly, *ring.Poly) {
	ctx := ev.params.RingCtx
	digits := ctx.DecomposeBase2w(d, ev.params.DigitBits)
	acc0 := ctx.NewPoly(level)
	acc0.IsNTT = true
	acc1 := ctx.NewPoly(level)
	acc1.IsNTT = true
	for k, dig := range digits {
		ctx.MulCoeffsAdd(dig, restrict(key.B[k], level), acc0)
		ctx.MulCoeffsAdd(dig, restrict(key.A[k], level), acc1)
	}
	return acc0, acc1
}

// ModSwitch drops one prime from ct's modulus chain in place, reducing
// the noise by roughly PrimeBits.
func (ev *Evaluator) ModSwitch(ct *Ciphertext) error {
	if ct.Level() == 0 {
		return errNotEnoughLevels
	}
	ctx := ev.params.RingCtx
	for _, c := range ct.C {
		ctx.ModSwitchDown(c)
	}
	ct.NoiseBits = math.Max(ct.NoiseBits-float64(ev.params.PrimeBits), ev.msFloorBits())
	return nil
}

// DropToLevel switches ct down to the given level in place.
func (ev *Evaluator) DropToLevel(ct *Ciphertext, level int) error {
	for ct.Level() > level {
		if err := ev.ModSwitch(ct); err != nil {
			return err
		}
	}
	return nil
}

// Rotate returns ct with slots rotated left by step: out[i] = in[i+step].
// If no Galois key exists for the exact step, the rotation is composed
// from available power-of-two steps.
func (ev *Evaluator) Rotate(ct *Ciphertext, step int) (*Ciphertext, error) {
	if ev.keys == nil {
		return nil, fmt.Errorf("bgv: Rotate requires Galois keys")
	}
	slots := ev.params.Slots()
	s := ((step % slots) + slots) % slots
	if s == 0 {
		return ct.Copy(), nil
	}
	if elt := ev.params.GaloisElt(s); ev.keys.Galois[elt] != nil {
		return ev.applyGalois(ct, elt)
	}
	// Compose from power-of-two hops.
	out := ct
	for bit := 0; s != 0; bit++ {
		if s&1 == 1 {
			hop := 1 << bit
			elt := ev.params.GaloisElt(hop)
			key := ev.keys.Galois[elt]
			if key == nil {
				return nil, fmt.Errorf("bgv: no Galois key for step %d (needed to compose rotation by %d)", hop, step)
			}
			var err error
			out, err = ev.applyGalois(out, elt)
			if err != nil {
				return nil, err
			}
		}
		s >>= 1
	}
	return out, nil
}

// applyGalois applies the automorphism x -> x^elt and key-switches back
// to the original secret.
func (ev *Evaluator) applyGalois(ct *Ciphertext, elt uint64) (*Ciphertext, error) {
	key := ev.keys.Galois[elt]
	if key == nil {
		return nil, fmt.Errorf("bgv: no Galois key for element %d", elt)
	}
	if len(ct.C) != 2 {
		return nil, fmt.Errorf("bgv: rotation requires a degree-1 ciphertext")
	}
	ctx := ev.params.RingCtx
	level := ct.Level()
	// A key switch adds ~ksNoiseBits of absolute noise; refuse to rotate
	// when the current modulus cannot absorb it.
	if float64(ev.params.QBits(level)) < ev.ksNoiseBits(level)+float64(bitsOf(ev.params.T))+4 {
		return nil, fmt.Errorf("bgv: rotation at level %d lacks key-switch headroom: %w", level, errNotEnoughLevels)
	}

	c0 := ct.C[0].Copy()
	ctx.INTT(c0)
	sc0 := ctx.NewPoly(level)
	ctx.Automorphism(c0, elt, sc0)
	ctx.NTT(sc0)

	c1 := ct.C[1].Copy()
	ctx.INTT(c1)
	sc1 := ctx.NewPoly(level)
	ctx.Automorphism(c1, elt, sc1)

	acc0, acc1 := ev.keySwitch(sc1, key, level)
	ctx.Add(sc0, acc0, sc0)

	out := &Ciphertext{
		C:         []*ring.Poly{sc0, acc1},
		NoiseBits: math.Max(ct.NoiseBits, ev.ksNoiseBits(level)) + 1,
	}
	return out, ev.manage(out)
}
