package bgv

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

type testKit struct {
	params *Parameters
	enc    *Encoder
	encr   *Encryptor
	dec    *Decryptor
	eval   *Evaluator
	sk     *SecretKey
}

// newTestKit builds a full BGV instance with Galois keys for the given
// rotation steps (power-of-two steps are always included).
func newTestKit(t *testing.T, levels int, steps []int) *testKit {
	t.Helper()
	params, err := NewParameters(TestParams(levels))
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	kg := NewSeededKeyGenerator(params, 1234)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	allSteps := append(PowerOfTwoSteps(params.Slots()), steps...)
	keys, err := kg.GenEvaluationKeys(sk, allSteps)
	if err != nil {
		t.Fatalf("GenEvaluationKeys: %v", err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	return &testKit{
		params: params,
		enc:    enc,
		encr:   NewSeededEncryptor(params, pk, 99),
		dec:    NewDecryptor(params, sk),
		eval:   NewEvaluator(params, keys),
		sk:     sk,
	}
}

func (k *testKit) encryptVec(t *testing.T, vals []uint64) *Ciphertext {
	t.Helper()
	pt, err := k.enc.Encode(vals)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return k.encr.Encrypt(pt)
}

func (k *testKit) decryptVec(t *testing.T, ct *Ciphertext) []uint64 {
	t.Helper()
	return k.enc.Decode(k.dec.Decrypt(ct))
}

func randVec(r *rand.Rand, n int, t uint64) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = r.Uint64N(t)
	}
	return v
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	params, err := NewParameters(TestParams(2))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 10; trial++ {
		vals := randVec(r, params.Slots(), params.T)
		pt, err := enc.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		got := enc.Decode(pt)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("slot %d: got %d want %d", i, got[i], vals[i])
			}
		}
	}
}

// TestEncodeIsSlotwise: products/sums of plaintexts act slot-wise.
func TestEncodeIsSlotwise(t *testing.T) {
	kit := newTestKit(t, 3, nil)
	r := rand.New(rand.NewPCG(2, 2))
	a := randVec(r, kit.params.Slots(), kit.params.T)
	b := randVec(r, kit.params.Slots(), kit.params.T)
	cta := kit.encryptVec(t, a)
	ptb, err := kit.enc.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := kit.eval.MulPlain(cta, ptb)
	if err != nil {
		t.Fatal(err)
	}
	got := kit.decryptVec(t, prod)
	for i := range a {
		want := a[i] * b[i] % kit.params.T
		if got[i] != want {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want)
		}
	}
}

func TestEncryptDecrypt(t *testing.T) {
	kit := newTestKit(t, 2, nil)
	r := rand.New(rand.NewPCG(3, 3))
	vals := randVec(r, kit.params.Slots(), kit.params.T)
	ct := kit.encryptVec(t, vals)
	if budget := kit.dec.NoiseBudget(ct); budget <= 0 {
		t.Fatalf("fresh ciphertext has no noise budget: %d", budget)
	}
	got := kit.decryptVec(t, ct)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], vals[i])
		}
	}
}

func TestHomomorphicAddSubNeg(t *testing.T) {
	kit := newTestKit(t, 2, nil)
	r := rand.New(rand.NewPCG(4, 4))
	a := randVec(r, kit.params.Slots(), kit.params.T)
	b := randVec(r, kit.params.Slots(), kit.params.T)
	cta, ctb := kit.encryptVec(t, a), kit.encryptVec(t, b)

	sum, err := kit.eval.Add(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := kit.eval.Sub(sum, ctb)
	if err != nil {
		t.Fatal(err)
	}
	gotSum := kit.decryptVec(t, sum)
	gotDiff := kit.decryptVec(t, diff)
	T := kit.params.T
	for i := range a {
		if gotSum[i] != (a[i]+b[i])%T {
			t.Fatalf("add slot %d: got %d want %d", i, gotSum[i], (a[i]+b[i])%T)
		}
		if gotDiff[i] != a[i] {
			t.Fatalf("a+b-b slot %d: got %d want %d", i, gotDiff[i], a[i])
		}
	}

	neg, err := kit.eval.Neg(cta)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := kit.eval.Add(cta, neg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range kit.decryptVec(t, zero) {
		if v != 0 {
			t.Fatalf("a + (-a) slot %d = %d", i, v)
		}
	}
}

func TestHomomorphicAddPlainMulScalar(t *testing.T) {
	kit := newTestKit(t, 2, nil)
	r := rand.New(rand.NewPCG(5, 5))
	a := randVec(r, kit.params.Slots(), kit.params.T)
	b := randVec(r, kit.params.Slots(), kit.params.T)
	cta := kit.encryptVec(t, a)
	ptb, err := kit.enc.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := kit.eval.AddPlain(cta, ptb)
	if err != nil {
		t.Fatal(err)
	}
	T := kit.params.T
	for i, v := range kit.decryptVec(t, sum) {
		if v != (a[i]+b[i])%T {
			t.Fatalf("addplain slot %d: got %d want %d", i, v, (a[i]+b[i])%T)
		}
	}
	scaled, err := kit.eval.MulScalar(cta, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range kit.decryptVec(t, scaled) {
		if v != a[i]*7%T {
			t.Fatalf("mulscalar slot %d: got %d want %d", i, v, a[i]*7%T)
		}
	}
}

func TestHomomorphicMul(t *testing.T) {
	kit := newTestKit(t, 3, nil)
	r := rand.New(rand.NewPCG(6, 6))
	a := randVec(r, kit.params.Slots(), kit.params.T)
	b := randVec(r, kit.params.Slots(), kit.params.T)
	cta, ctb := kit.encryptVec(t, a), kit.encryptVec(t, b)
	prod, err := kit.eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	if budget := kit.dec.NoiseBudget(prod); budget <= 0 {
		t.Fatalf("product has no noise budget: %d", budget)
	}
	T := kit.params.T
	for i, v := range kit.decryptVec(t, prod) {
		want := a[i] * b[i] % T
		if v != want {
			t.Fatalf("mul slot %d: got %d want %d", i, v, want)
		}
	}
}

// TestMulChain multiplies to the depth the chain supports and checks
// correctness at every step, then verifies that exceeding the chain
// fails cleanly.
func TestMulChain(t *testing.T) {
	const levels = 5
	kit := newTestKit(t, levels, nil)
	slots := kit.params.Slots()
	T := kit.params.T

	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = uint64(i%5 + 1)
	}
	want := make([]uint64, slots)
	copy(want, vals)
	ct := kit.encryptVec(t, vals)

	depth := 0
	for {
		next, err := kit.eval.Mul(ct, ct)
		if err != nil {
			break
		}
		ct = next
		depth++
		for i := range want {
			want[i] = want[i] * want[i] % T
		}
		got := kit.decryptVec(t, ct)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("depth %d slot %d: got %d want %d", depth, i, got[i], want[i])
			}
		}
		if depth > levels {
			t.Fatalf("chain supported %d multiplications with only %d levels", depth, levels)
		}
	}
	if depth < levels-2 {
		t.Errorf("chain supported only %d multiplications with %d levels", depth, levels)
	}
}

func TestRotate(t *testing.T) {
	kit := newTestKit(t, 2, []int{1, 3, 7})
	slots := kit.params.Slots()
	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = uint64(i)
	}
	ct := kit.encryptVec(t, vals)
	for _, step := range []int{0, 1, 3, 7, -1, 100, slots - 1} {
		rot, err := kit.eval.Rotate(ct, step)
		if err != nil {
			t.Fatalf("Rotate(%d): %v", step, err)
		}
		got := kit.decryptVec(t, rot)
		for i := range got {
			want := vals[((i+step)%slots+slots)%slots]
			if got[i] != want {
				t.Fatalf("Rotate(%d) slot %d: got %d want %d", step, i, got[i], want)
			}
		}
	}
}

// TestRotateComposed exercises rotations that have no dedicated key and
// must be composed from power-of-two hops.
func TestRotateComposed(t *testing.T) {
	kit := newTestKit(t, 2, nil) // only power-of-two keys
	slots := kit.params.Slots()
	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = uint64(i * 3 % 1000)
	}
	ct := kit.encryptVec(t, vals)
	for _, step := range []int{5, 11, 37, slots/2 + 1} {
		rot, err := kit.eval.Rotate(ct, step)
		if err != nil {
			t.Fatalf("Rotate(%d): %v", step, err)
		}
		got := kit.decryptVec(t, rot)
		for i := range got {
			want := vals[(i+step)%slots]
			if got[i] != want {
				t.Fatalf("composed Rotate(%d) slot %d: got %d want %d", step, i, got[i], want)
			}
		}
	}
}

func TestModSwitchPreservesPlaintext(t *testing.T) {
	kit := newTestKit(t, 4, nil)
	r := rand.New(rand.NewPCG(7, 7))
	vals := randVec(r, kit.params.Slots(), kit.params.T)
	ct := kit.encryptVec(t, vals)
	for ct.Level() > 0 {
		if err := kit.eval.ModSwitch(ct); err != nil {
			t.Fatal(err)
		}
		got := kit.decryptVec(t, ct)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("level %d slot %d: got %d want %d", ct.Level(), i, got[i], vals[i])
			}
		}
	}
	if err := kit.eval.ModSwitch(ct); err == nil {
		t.Error("ModSwitch at level 0 should fail")
	}
}

// TestNoiseEstimateIsUpperBound: the evaluator's noise estimate must
// dominate the measured noise, otherwise auto mod-switching is unsound.
func TestNoiseEstimateIsUpperBound(t *testing.T) {
	kit := newTestKit(t, 4, []int{1})
	r := rand.New(rand.NewPCG(8, 8))
	a := kit.encryptVec(t, randVec(r, kit.params.Slots(), kit.params.T))
	b := kit.encryptVec(t, randVec(r, kit.params.Slots(), kit.params.T))

	check := func(ct *Ciphertext, opName string) {
		measured := kit.params.QBits(ct.Level()) - kit.dec.NoiseBudget(ct) - 1
		if float64(measured) > ct.NoiseBits {
			t.Errorf("%s: measured noise %d bits exceeds estimate %.1f", opName, measured, ct.NoiseBits)
		}
	}
	check(a, "fresh")
	sum, err := kit.eval.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	check(sum, "add")
	prod, err := kit.eval.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	check(prod, "mul")
	rot, err := kit.eval.Rotate(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	check(rot, "rotate")
	prod2, err := kit.eval.Mul(prod, rot)
	if err != nil {
		t.Fatal(err)
	}
	check(prod2, "mul2")
}

// TestHomomorphicPropertyQuick is a property test: for random vectors,
// Dec(Enc(a) ⊕ Enc(b)) == a ⊕ b for ⊕ ∈ {+, ·}.
func TestHomomorphicPropertyQuick(t *testing.T) {
	kit := newTestKit(t, 3, nil)
	slots := kit.params.Slots()
	T := kit.params.T
	f := func(seed uint64, useMul bool) bool {
		r := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		a := randVec(r, slots, T)
		b := randVec(r, slots, T)
		cta, ctb := kit.encryptVec(t, a), kit.encryptVec(t, b)
		var res *Ciphertext
		var err error
		if useMul {
			res, err = kit.eval.Mul(cta, ctb)
		} else {
			res, err = kit.eval.Add(cta, ctb)
		}
		if err != nil {
			return false
		}
		got := kit.decryptVec(t, res)
		for i := range a {
			want := (a[i] + b[i]) % T
			if useMul {
				want = a[i] * b[i] % T
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParamsValidate(t *testing.T) {
	good := TestParams(3)
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{LogN: 2, T: 65537, PrimeBits: 55, Levels: 2, DigitBits: 30},
		{LogN: 11, T: 100, PrimeBits: 55, Levels: 2, DigitBits: 30},
		{LogN: 11, T: 65537, PrimeBits: 10, Levels: 2, DigitBits: 30},
		{LogN: 11, T: 65537, PrimeBits: 55, Levels: 0, DigitBits: 30},
		{LogN: 11, T: 65537, PrimeBits: 55, Levels: 2, DigitBits: 60},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	params, err := NewParameters(TestParams(1))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(make([]uint64, params.Slots()+1)); err == nil {
		t.Error("oversized vector accepted")
	}
	if _, err := enc.Encode([]uint64{params.T}); err == nil {
		t.Error("out-of-range value accepted")
	}
}
