package bgv

import "testing"

func benchKit(b *testing.B, levels int) (*Parameters, *Encoder, *Encryptor, *Evaluator) {
	b.Helper()
	params, err := NewParameters(TestParams(levels))
	if err != nil {
		b.Fatal(err)
	}
	kg := NewSeededKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys, err := kg.GenEvaluationKeys(sk, []int{1})
	if err != nil {
		b.Fatal(err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		b.Fatal(err)
	}
	return params, enc, NewSeededEncryptor(params, pk, 2), NewEvaluator(params, keys)
}

// BenchmarkHomomorphicOps measures the primitive BGV operations the
// COPSE complexity model counts (paper §6).
func BenchmarkHomomorphicOps(b *testing.B) {
	params, enc, encryptor, eval := benchKit(b, 6)
	vals := make([]uint64, params.Slots())
	for i := range vals {
		vals[i] = uint64(i % 2)
	}
	pt, err := enc.Encode(vals)
	if err != nil {
		b.Fatal(err)
	}
	ct := encryptor.Encrypt(pt)

	b.Run("encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			encryptor.Encrypt(pt)
		}
	})
	b.Run("add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Add(ct, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mul-plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.MulPlain(ct, pt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mul-relin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Mul(ct, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rotate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Rotate(ct, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
