package bgv

import (
	"fmt"
	"sync/atomic"

	"copse/internal/ring"
)

// SecretKey is a ternary RLWE secret, stored in NTT domain at the top
// level.
type SecretKey struct {
	S *ring.Poly
}

// PublicKey is an RLWE encryption of zero: B = -(A·s + t·e).
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey re-encrypts a "foreign" secret (s², or an automorphism
// image of s) under s, one entry per base-2^w gadget digit:
// B[k] = -(A[k]·s + t·e_k) + 2^{kw}·target. A key generated at level ℓ
// serves every level ≤ ℓ (the gadget digits are level-independent; at
// lower levels the unused prime residues are simply ignored) but cannot
// serve levels above ℓ — it has no residues for those primes. Keys for
// rotation steps used only by the scheduled back half of the pipeline
// are therefore generated directly at their stage level, cutting key
// material (GenEvaluationKeysAt).
// BS and AS are the Shoup companion tables of B and A, letting the
// evaluator's digit ⊙ key inner products run division-free.
type SwitchingKey struct {
	B, A   []*ring.Poly
	BS, AS []*ring.PolyShoup

	views atomic.Pointer[[]*SwitchingKey] // level-indexed truncated views
}

// Level returns the highest level this key can serve (the level it was
// generated at).
func (k *SwitchingKey) Level() int { return k.B[0].Level() }

// MaterialBytes returns the in-memory size of the key's polynomials
// (B, A and their Shoup companions).
func (k *SwitchingKey) MaterialBytes() int64 {
	var total int64
	for d := range k.B {
		total += int64(len(k.B[d].Coeffs)) * int64(len(k.B[d].Coeffs[0])) * 8 * 4
	}
	return total
}

// AtLevel returns a view of k truncated to the given level for base-2^w
// key switching: only the digits that exist at that level's modulus are
// kept, and each retained key poly (and its Shoup companion) is
// restricted to the active primes. A key switch at a scheduled-down
// level therefore decomposes into fewer digits and multiplies fewer
// limbs than the top-level key would suggest. Views share the full key's
// backing arrays (no copying) and are cached per level; the top level
// returns k itself.
func (k *SwitchingKey) AtLevel(ctx *ring.Context, w, level int) *SwitchingKey {
	if level >= k.B[0].Level() {
		return k
	}
	if tab := k.views.Load(); tab != nil && level < len(*tab) {
		if v := (*tab)[level]; v != nil {
			return v
		}
	}
	digits := min(ctx.NumDigits(level, w), len(k.B))
	v := &SwitchingKey{
		B:  make([]*ring.Poly, digits),
		A:  make([]*ring.Poly, digits),
		BS: make([]*ring.PolyShoup, digits),
		AS: make([]*ring.PolyShoup, digits),
	}
	for d := 0; d < digits; d++ {
		v.B[d] = restrict(k.B[d], level)
		v.A[d] = restrict(k.A[d], level)
		v.BS[d] = &ring.PolyShoup{S: k.BS[d].S[:level+1]}
		v.AS[d] = &ring.PolyShoup{S: k.AS[d].S[:level+1]}
	}
	return publishAt(&k.views, level, v)
}

// EvaluationKeys bundles everything the evaluator (Sally) needs: the
// relinearization key and one switching key per Galois element used for
// rotations.
type EvaluationKeys struct {
	Relin  *SwitchingKey
	Galois map[uint64]*SwitchingKey
}

// MaterialBytes returns the total in-memory key material (relin + all
// Galois keys, Shoup companions included).
func (ek *EvaluationKeys) MaterialBytes() int64 {
	var total int64
	if ek.Relin != nil {
		total += ek.Relin.MaterialBytes()
	}
	for _, k := range ek.Galois {
		total += k.MaterialBytes()
	}
	return total
}

// TopLevelBytes returns the key material the same key set would occupy
// had every key been generated at the chain top — the pre-level-budget
// baseline the -nttjson report compares against.
func (ek *EvaluationKeys) TopLevelBytes(p *Parameters) int64 {
	per := p.SwitchingKeyBytes(p.MaxLevel())
	n := int64(len(ek.Galois))
	if ek.Relin != nil {
		n++
	}
	return n * per
}

// KeyGenerator produces key material. It is not safe for concurrent use.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator returns a generator seeded from the system entropy
// source.
func NewKeyGenerator(params *Parameters) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(params.RingCtx)}
}

// NewSeededKeyGenerator returns a deterministic generator for tests and
// reproducible experiments.
func NewSeededKeyGenerator(params *Parameters, seed uint64) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSeededSampler(params.RingCtx, seed)}
}

// GenSecretKey samples a fresh ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	ctx := kg.params.RingCtx
	s := kg.sampler.TernaryPoly(kg.params.MaxLevel())
	ctx.NTT(s)
	return &SecretKey{S: s}
}

// GenPublicKey returns a public encryption key for sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	ctx := kg.params.RingCtx
	level := kg.params.MaxLevel()
	a := kg.sampler.UniformPoly(level, true)
	e := kg.sampler.ErrorPoly(level)
	ctx.MulScalar(e, kg.params.T, e)
	ctx.NTT(e)
	b := ctx.NewPoly(level)
	ctx.MulCoeffs(a, sk.S, b)
	ctx.Add(b, e, b)
	ctx.Neg(b, b)
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey builds a key switching key from `target` (NTT domain,
// top level) to sk.
func (kg *KeyGenerator) genSwitchingKey(target *ring.Poly, sk *SecretKey) *SwitchingKey {
	return kg.genSwitchingKeyAt(target, sk, kg.params.MaxLevel())
}

// genSwitchingKeyAt builds the key at the given level: fewer digits and
// fewer residues per digit than a top-level key. target and sk may live
// at the top; only their first level+1 limbs are read.
func (kg *KeyGenerator) genSwitchingKeyAt(target *ring.Poly, sk *SecretKey, level int) *SwitchingKey {
	ctx := kg.params.RingCtx
	w := kg.params.DigitBits
	numDigits := ctx.NumDigits(level, w)
	tgt := restrict(target, level)
	s := restrict(sk.S, level)
	swk := &SwitchingKey{}
	scaled := ctx.NewPoly(level)
	factors := make([]uint64, level+1)
	for k := 0; k < numDigits; k++ {
		a := kg.sampler.UniformPoly(level, true)
		e := kg.sampler.ErrorPoly(level)
		ctx.MulScalar(e, kg.params.T, e)
		ctx.NTT(e)
		b := ctx.NewPoly(level)
		ctx.MulCoeffs(a, s, b)
		ctx.Add(b, e, b)
		ctx.Neg(b, b)
		// b += 2^{kw} * target, with the gadget factor reduced per prime.
		for i := 0; i <= level; i++ {
			factors[i] = ring.PowMod(2, uint64(k*w), ctx.Moduli[i].Q)
		}
		ctx.MulScalarVec(tgt, factors, scaled)
		ctx.Add(b, scaled, b)
		swk.B = append(swk.B, b)
		swk.A = append(swk.A, a)
		swk.BS = append(swk.BS, ctx.ShoupPoly(b))
		swk.AS = append(swk.AS, ctx.ShoupPoly(a))
	}
	return swk
}

// GenRelinKey builds the relinearization key (switching s² to s).
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) *SwitchingKey {
	ctx := kg.params.RingCtx
	s2 := ctx.NewPoly(kg.params.MaxLevel())
	ctx.MulCoeffs(sk.S, sk.S, s2)
	return kg.genSwitchingKey(s2, sk)
}

// GenGaloisKey builds the switching key for the Galois element g
// (switching σ_g(s) to s) at the chain top.
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, g uint64) *SwitchingKey {
	return kg.GenGaloisKeyAt(sk, g, kg.params.MaxLevel())
}

// GenGaloisKeyAt builds the Galois key at the given level. The key can
// serve rotations at any level ≤ its own; the evaluator falls back to
// composed power-of-two rotations (whose ladder keys stay at the top)
// when asked to rotate above a key's level.
func (kg *KeyGenerator) GenGaloisKeyAt(sk *SecretKey, g uint64, level int) *SwitchingKey {
	ctx := kg.params.RingCtx
	sCoeff := restrict(sk.S, level).Copy()
	ctx.INTT(sCoeff)
	sg := ctx.NewPoly(level)
	ctx.Automorphism(sCoeff, g, sg)
	ctx.NTT(sg)
	return kg.genSwitchingKeyAt(sg, sk, level)
}

// GenEvaluationKeys builds the relinearization key plus Galois keys for
// the given rotation steps, all at the chain top. Step 0 is ignored.
func (kg *KeyGenerator) GenEvaluationKeys(sk *SecretKey, steps []int) (*EvaluationKeys, error) {
	return kg.GenEvaluationKeysAt(sk, steps, nil)
}

// GenEvaluationKeysAt is GenEvaluationKeys under a per-step level
// budget: a step with an entry in stepLevels gets its Galois key
// generated at that level (clamped to the chain) instead of the top —
// the right choice for steps a static level schedule proves are only
// ever rotated in the scheduled-down back half of a pipeline. Steps
// without an entry (and the relinearization key, which serves every
// stage) stay at the top. When two steps share a Galois element the
// deeper requirement wins.
func (kg *KeyGenerator) GenEvaluationKeysAt(sk *SecretKey, steps []int, stepLevels map[int]int) (*EvaluationKeys, error) {
	top := kg.params.MaxLevel()
	ek := &EvaluationKeys{Galois: make(map[uint64]*SwitchingKey)}
	ek.Relin = kg.GenRelinKey(sk)
	want := make(map[uint64]int)
	var order []uint64 // deterministic generation order for seeded runs
	for _, s := range steps {
		if s%kg.params.Slots() == 0 {
			continue
		}
		lvl := top
		if l, ok := stepLevels[s]; ok {
			lvl = min(max(l, 0), top)
		}
		g := kg.params.GaloisElt(s)
		if cur, seen := want[g]; !seen {
			want[g] = lvl
			order = append(order, g)
		} else if lvl > cur {
			want[g] = lvl
		}
	}
	for _, g := range order {
		ek.Galois[g] = kg.GenGaloisKeyAt(sk, g, want[g])
	}
	return ek, nil
}

// PowerOfTwoSteps returns the rotation steps ±1, ±2, ±4, ... up to
// slots/2, from which any rotation can be composed.
func PowerOfTwoSteps(slots int) []int {
	var steps []int
	for s := 1; s < slots; s <<= 1 {
		steps = append(steps, s, -s)
	}
	return steps
}

// restrict returns a view of p at the given (lower or equal) level,
// sharing the underlying residues.
func restrict(p *ring.Poly, level int) *ring.Poly {
	if p.Level() < level {
		panic(fmt.Sprintf("bgv: cannot restrict level-%d poly to level %d", p.Level(), level))
	}
	return &ring.Poly{Coeffs: p.Coeffs[:level+1], IsNTT: p.IsNTT}
}
