// Package bgv implements a leveled BGV homomorphic encryption scheme over
// power-of-two cyclotomic rings, with ciphertext packing (SIMD slots),
// relinearization, Galois-automorphism slot rotations, and exact BGV
// modulus switching. It is the pure-Go stand-in for HElib used by the
// COPSE runtime: same scheme family, same packing and noise-management
// model.
package bgv

import (
	"fmt"

	"copse/internal/ring"
)

// Params describes a BGV parameter set.
type Params struct {
	// LogN is the log2 of the ring degree N. The scheme packs N/2 usable
	// SIMD slots (one "row" of the batching layout).
	LogN int
	// T is the plaintext modulus. It must be prime and ≡ 1 mod 2N so the
	// batching encoder exists.
	T uint64
	// PrimeBits is the bit size of each ciphertext prime in the chain.
	PrimeBits int
	// Levels is the number of primes in the modulus chain; roughly one
	// prime is consumed per ciphertext-ciphertext multiplication.
	Levels int
	// DigitBits is the base-2^w digit width used for key switching.
	DigitBits int
	// IntraOpWorkers is the ring-layer limb parallelism: 0 or 1 runs
	// every op's per-limb loop serially; n ≥ 2 attaches an n-way
	// ring.Workers pool to the context so NTTs, key switches and modulus
	// switches fan their limbs across cores. Results are bit-identical
	// either way. Callers that tear backends down repeatedly should
	// release the pool via RingCtx.CloseWorkers.
	IntraOpWorkers int
	// DisableVectorKernels pins the ring layer to the scalar kernels even
	// on hosts with a vector backend (the copse-bench -novec ablation and
	// the copse.WithVectorKernels(false) option). Results are
	// bit-identical either way; the default (false) selects the vector
	// kernels wherever the host and the prime chain allow.
	DisableVectorKernels bool
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.LogN < 4 || p.LogN > 15 {
		return fmt.Errorf("bgv: LogN %d out of range [4,15]", p.LogN)
	}
	if p.T < 2 || (p.T-1)%uint64(2<<p.LogN) != 0 {
		return fmt.Errorf("bgv: plaintext modulus %d is not ≡ 1 mod 2N", p.T)
	}
	if p.PrimeBits < 30 || p.PrimeBits > 61 {
		return fmt.Errorf("bgv: PrimeBits %d out of range [30,61]", p.PrimeBits)
	}
	if p.Levels < 1 {
		return fmt.Errorf("bgv: need at least one level")
	}
	if p.DigitBits < 10 || p.DigitBits > p.PrimeBits {
		return fmt.Errorf("bgv: DigitBits %d out of range [10,PrimeBits]", p.DigitBits)
	}
	if p.IntraOpWorkers < 0 {
		return fmt.Errorf("bgv: IntraOpWorkers %d is negative", p.IntraOpWorkers)
	}
	return nil
}

// N returns the ring degree.
func (p Params) N() int { return 1 << p.LogN }

// Slots returns the number of usable SIMD slots (N/2).
func (p Params) Slots() int { return 1 << (p.LogN - 1) }

// TestParams returns a small, fast parameter set for unit tests. The
// lattice dimension is far below the 128-bit-security requirement; it is
// functionally faithful only.
func TestParams(levels int) Params {
	return Params{LogN: 11, T: 65537, PrimeBits: 55, Levels: levels, DigitBits: 45}
}

// DemoParams returns a mid-sized set used by the examples and benchmark
// harness: N=4096 (2048 slots), enough for the paper's real-world models.
// Security is still below 128 bits at the depths COPSE uses; see DESIGN.md.
func DemoParams(levels int) Params {
	return Params{LogN: 12, T: 65537, PrimeBits: 55, Levels: levels, DigitBits: 45}
}

// Secure128Params returns a parameter set whose dimension matches the
// paper's security parameter of 128 at the multiplicative depths COPSE
// produces. It is expensive in pure Go and intended for offline runs.
func Secure128Params(levels int) Params {
	return Params{LogN: 15, T: 65537, PrimeBits: 55, Levels: levels, DigitBits: 45}
}

// Parameters is an instantiated parameter set: the ring context plus
// derived constants.
type Parameters struct {
	Params
	RingCtx *ring.Context
}

// NewParameters generates the prime chain and ring context for p.
func NewParameters(p Params) (*Parameters, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Primes must be ≡ 1 mod 2N (NTT) and ≡ 1 mod T (scale-free modulus
	// switching). T is prime and 2N a power of two, so lcm = 2N·T.
	step := uint64(2*p.N()) * p.T
	primes, err := ring.GeneratePrimes(p.PrimeBits, step, p.Levels)
	if err != nil {
		return nil, err
	}
	ctx, err := ring.NewContext(p.LogN, primes, p.T)
	if err != nil {
		return nil, err
	}
	if p.IntraOpWorkers > 1 {
		ctx.SetWorkers(ring.NewWorkers(p.IntraOpWorkers))
	}
	if p.DisableVectorKernels {
		ctx.SetVectorKernels(false)
	}
	return &Parameters{Params: p, RingCtx: ctx}, nil
}

// MaxLevel returns the top level index (Levels-1).
func (p *Parameters) MaxLevel() int { return p.Levels - 1 }

// QBits returns the bit length of the ciphertext modulus at the given
// level.
func (p *Parameters) QBits(level int) int { return p.RingCtx.BigQ(level).BitLen() }

// SwitchingKeyBytes returns the in-memory size of one switching key
// generated at the given level: NumDigits(level) digit pairs (B, A),
// each an (level+1)-limb poly of N uint64 residues, plus the two Shoup
// companion tables of the same shape.
func (p *Parameters) SwitchingKeyBytes(level int) int64 {
	digits := int64(p.RingCtx.NumDigits(level, p.DigitBits))
	return digits * int64(level+1) * int64(p.N()) * 8 * 4
}

// GaloisElt returns the Galois group element implementing a cyclic slot
// rotation by `step` (positive = toward lower slot indices, i.e.
// out[i] = in[i+step]). The generator below is fixed by the batching
// encoder's index map; see encoder.go.
func (p *Parameters) GaloisElt(step int) uint64 {
	m := uint64(2 * p.N())
	slots := uint64(p.Slots())
	s := ((int64(step) % int64(slots)) + int64(slots)) % int64(slots)
	elt := uint64(1)
	for i := int64(0); i < s; i++ {
		elt = (elt * slotGenerator) % m
	}
	return elt
}

// slotGenerator is the multiplicative generator whose powers enumerate the
// slot positions of one batching row; 3 matches the index map built in
// encoder.go.
const slotGenerator = 3
