package bgv

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// restrictedKit builds a BGV instance whose Galois keys cover exactly
// the given steps — no implicit power-of-two ladder — to exercise the
// composed-rotation fallback and its missing-key error path.
func restrictedKit(t *testing.T, levels int, steps []int) *testKit {
	t.Helper()
	params, err := NewParameters(TestParams(levels))
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	kg := NewSeededKeyGenerator(params, 4321)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys, err := kg.GenEvaluationKeys(sk, steps)
	if err != nil {
		t.Fatalf("GenEvaluationKeys: %v", err)
	}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	return &testKit{
		params: params,
		enc:    enc,
		encr:   NewSeededEncryptor(params, pk, 77),
		dec:    NewDecryptor(params, sk),
		eval:   NewEvaluator(params, keys),
		sk:     sk,
	}
}

// TestRotateComposedFromPartialLadder: with keys for steps {1, 2} only,
// a rotation by 3 has no direct key and must compose 1+2.
func TestRotateComposedFromPartialLadder(t *testing.T) {
	kit := restrictedKit(t, 2, []int{1, 2})
	slots := kit.params.Slots()
	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = uint64(i % 97)
	}
	ct := kit.encryptVec(t, vals)
	rot, err := kit.eval.Rotate(ct, 3)
	if err != nil {
		t.Fatalf("Rotate(3): %v", err)
	}
	got := kit.decryptVec(t, rot)
	for i := range got {
		if want := vals[(i+3)%slots]; got[i] != want {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want)
		}
	}
}

// TestRotateMissingKeyError: composing a rotation whose binary expansion
// needs an absent power-of-two key must fail with a clear error, as must
// rotating with no keys at all.
func TestRotateMissingKeyError(t *testing.T) {
	kit := restrictedKit(t, 2, []int{2}) // no step-1 key
	ct := kit.encryptVec(t, make([]uint64, kit.params.Slots()))
	if _, err := kit.eval.Rotate(ct, 3); err == nil {
		t.Fatal("Rotate(3) without a step-1 key succeeded")
	} else if !strings.Contains(err.Error(), "no Galois key") {
		t.Errorf("unexpected error: %v", err)
	}
	// Step 2 still works directly.
	if _, err := kit.eval.Rotate(ct, 2); err != nil {
		t.Fatalf("Rotate(2): %v", err)
	}
	noKeys := NewEvaluator(kit.params, nil)
	if _, err := noKeys.Rotate(ct, 1); err == nil {
		t.Fatal("Rotate without evaluation keys succeeded")
	}
	if _, err := noKeys.RotateHoisted(ct, []int{1}); err == nil {
		t.Fatal("RotateHoisted without evaluation keys succeeded")
	}
}

// TestRotateHoistedMatchesRotate: hoisted rotations must decrypt to the
// same slot permutations as the per-step path, including step 0 and
// steps that fall back to composition.
func TestRotateHoistedMatchesRotate(t *testing.T) {
	kit := newTestKit(t, 3, []int{1, 3, 5, 12})
	slots := kit.params.Slots()
	r := rand.New(rand.NewPCG(11, 11))
	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = r.Uint64N(kit.params.T)
	}
	ct := kit.encryptVec(t, vals)
	steps := []int{0, 1, 3, 5, 12, 7 /* composed: no direct key */, slots - 1}
	outs, err := kit.eval.RotateHoisted(ct, steps)
	if err != nil {
		t.Fatalf("RotateHoisted: %v", err)
	}
	if len(outs) != len(steps) {
		t.Fatalf("got %d outputs for %d steps", len(outs), len(steps))
	}
	for si, step := range steps {
		got := kit.decryptVec(t, outs[si])
		for i := range got {
			want := vals[(i+step)%slots]
			if got[i] != want {
				t.Fatalf("step %d slot %d: got %d want %d", step, i, got[i], want)
			}
		}
	}
	// The source ciphertext must be untouched by the batch.
	got := kit.decryptVec(t, ct)
	for i := range got {
		if got[i] != vals[i] {
			t.Fatalf("RotateHoisted mutated its input at slot %d", i)
		}
	}
}

// TestRotateHoistedEmpty: an empty batch is a no-op.
func TestRotateHoistedEmpty(t *testing.T) {
	kit := newTestKit(t, 2, nil)
	ct := kit.encryptVec(t, make([]uint64, kit.params.Slots()))
	outs, err := kit.eval.RotateHoisted(ct, nil)
	if err != nil {
		t.Fatalf("RotateHoisted(nil): %v", err)
	}
	if len(outs) != 0 {
		t.Fatalf("got %d outputs for empty steps", len(outs))
	}
}
