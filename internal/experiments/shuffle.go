package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"time"

	"copse"
	"copse/internal/bgv"
	"copse/internal/core"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/he/heclear"
)

// ShuffleBench is the machine-readable result-shuffle record emitted by
// copse-bench -shufflejson (BENCH_shuffle.json): per-query shuffle cost
// at B=1 versus one block-diagonal pass over the full batch, on the
// clear and BGV backends, with the rotation bill of the batched kernel
// checked against its 2·√P+1 budget — so successive PRs can diff the
// cost of leakage-hardened (shuffled) serving.
type ShuffleBench struct {
	Queries int           `json:"queries"`
	Seed    uint64        `json:"seed"`
	Cases   []ShuffleCase `json:"cases"`
}

// ShuffleCase is one model × backend record.
type ShuffleCase struct {
	Name     string `json:"name"`
	Backend  string `json:"backend"`
	Slots    int    `json:"slots"`
	Capacity int    `json:"batch_capacity"`
	// Period is the padded leaf count — the BSGS period of the
	// permutation kernel; RotationBound is its 2·√Period+1 budget.
	Period        int `json:"period"`
	RotationBound int `json:"rotation_bound"`

	// Single is one single-query shuffle (the per-query cost at B=1).
	Single ShufflePoint `json:"single"`
	// SingleLoop shuffles a full batch the pre-batching way: Capacity
	// sequential single-query ShuffleResult calls.
	SingleLoop ShufflePoint `json:"single_loop"`
	// Batched is one ShuffleResultBatch pass over the full batch.
	Batched ShufflePoint `json:"batched"`

	// PerQuerySpeedup is SingleLoop per-query cost over Batched
	// per-query cost at full batch.
	PerQuerySpeedup float64 `json:"per_query_speedup"`
}

// ShufflePoint is one configuration's cost.
type ShufflePoint struct {
	Queries    int     `json:"queries"`
	TotalMS    float64 `json:"total_ms"` // median over repetitions
	PerQueryMS float64 `json:"per_query_ms"`
	// Rotations is the Galois-rotation bill of one pass (for
	// SingleLoop: of the whole loop).
	Rotations int64 `json:"rotations"`
}

// WriteJSON writes the report, indented for diff-friendliness.
func (r *ShuffleBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ShuffleReport measures the result shuffle on every configured model,
// on both backends: it stages a PlanShuffle-compiled model (scheduled
// chain, leveled Galois keys on BGV — the batched kernel must run off
// the same key budget the compiler emitted), classifies one full batch
// and one single query, then times the single-query shuffle, the
// sequential single-query loop over the batch, and the batched
// block-diagonal pass. Every shuffled result is decoded through its
// codebook and verified against the plaintext walk.
func ShuffleReport(cfg Config) (*ShuffleBench, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	report := &ShuffleBench{Queries: cfg.Queries, Seed: cfg.Seed}
	for _, cs := range cases {
		for _, backend := range []string{"clear", "bgv"} {
			sc, err := shuffleCase(cs, backend, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: shuffle %s/%s: %w", cs.Name, backend, err)
			}
			report.Cases = append(report.Cases, sc)
		}
	}
	return report, nil
}

func shuffleBackend(cs Case, backend string, meta *core.Meta, seed uint64) (he.Backend, error) {
	switch backend {
	case "clear":
		return heclear.New(cs.Slots, 65537), nil
	case "bgv":
		plan := meta.LevelPlan
		if plan == nil {
			return nil, fmt.Errorf("no level plan (PlanShuffle compile failed?)")
		}
		levels := plan.ChainLevels(true)
		var params bgv.Params
		switch cs.Slots {
		case 1024:
			params = bgv.TestParams(levels)
		case 2048:
			params = bgv.DemoParams(levels)
		default:
			return nil, fmt.Errorf("no BGV preset for %d slots", cs.Slots)
		}
		return hebgv.New(hebgv.Config{
			Params:             params,
			RotationSteps:      meta.RotationSteps,
			RotationStepLevels: meta.RotationStepLevels(true),
			Seed:               seed,
		})
	}
	return nil, fmt.Errorf("unknown backend %q", backend)
}

func shuffleCase(cs Case, backend string, cfg Config) (ShuffleCase, error) {
	compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots, PlanShuffle: true})
	if err != nil {
		return ShuffleCase{}, err
	}
	b, err := shuffleBackend(cs, backend, &compiled.Meta, cfg.Seed+200)
	if err != nil {
		return ShuffleCase{}, err
	}
	defer func() {
		if c, ok := b.(interface{ Close() error }); ok {
			c.Close()
		}
	}()
	m, err := core.Prepare(b, compiled, true)
	if err != nil {
		return ShuffleCase{}, err
	}
	e := &core.Engine{Backend: b, Workers: defaultWorkers(cfg)}
	meta := &m.Meta
	capacity := meta.BatchCapacity()
	nPad := meta.LPad()
	sc := ShuffleCase{
		Name:          cs.Name,
		Backend:       backend,
		Slots:         cs.Slots,
		Capacity:      capacity,
		Period:        nPad,
		RotationBound: 2*int(math.Sqrt(float64(nPad))) + 1,
	}

	// One full batch and one single query, classified outside the timed
	// windows (the shuffle is the unit under measurement).
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5f))
	limit := uint64(1) << uint(cs.Forest.Precision)
	batch := make([][]uint64, capacity)
	for i := range batch {
		batch[i] = make([]uint64, cs.Forest.NumFeatures)
		for j := range batch[i] {
			batch[i][j] = rng.Uint64N(limit)
		}
	}
	classify := func(qs [][]uint64) (he.Operand, error) {
		q, err := core.PrepareQueryBatch(b, meta, qs, true)
		if err != nil {
			return he.Operand{}, err
		}
		out, _, err := e.Classify(m, q)
		return out, err
	}
	batchOut, err := classify(batch)
	if err != nil {
		return ShuffleCase{}, err
	}
	singleOut, err := classify(batch[:1])
	if err != nil {
		return ShuffleCase{}, err
	}

	reps := 3
	if backend == "clear" {
		reps = 9
	}

	// B=1: one single-query shuffle per pass.
	singles := make([]time.Duration, reps)
	counting := he.WithCounts(b)
	for r := range singles {
		start := time.Now()
		if _, _, err := core.ShuffleResult(counting, meta, singleOut, 0, cfg.Seed+uint64(r)+1); err != nil {
			return ShuffleCase{}, err
		}
		singles[r] = time.Since(start)
	}
	singleRots := counting.Counts().Rotate / int64(reps)
	ms := medianMS(singles)
	sc.Single = ShufflePoint{Queries: 1, TotalMS: ms, PerQueryMS: ms, Rotations: singleRots}

	// B=max, the pre-batching way: capacity sequential single shuffles.
	loops := make([]time.Duration, reps)
	counting = he.WithCounts(b)
	for r := range loops {
		start := time.Now()
		for q := 0; q < capacity; q++ {
			if _, _, err := core.ShuffleResult(counting, meta, singleOut, 0, cfg.Seed+uint64(r*capacity+q)+1); err != nil {
				return ShuffleCase{}, err
			}
		}
		loops[r] = time.Since(start)
	}
	ms = medianMS(loops)
	sc.SingleLoop = ShufflePoint{
		Queries:    capacity,
		TotalMS:    ms,
		PerQueryMS: ms / float64(capacity),
		Rotations:  counting.Counts().Rotate / int64(reps),
	}

	// B=max, batched: one block-diagonal pass shuffles every query. The
	// kernel runs with workers=1 so the comparison isolates the batching
	// win — the single-query loop above is serial too (thread
	// parallelism is §9's axis, not this record's).
	batches := make([]time.Duration, reps)
	counting = he.WithCounts(b)
	var shuffled he.Operand
	var cbs []*core.ShuffledCodebook
	for r := range batches {
		start := time.Now()
		shuffled, cbs, err = core.ShuffleResultBatch(counting, meta, batchOut, capacity, 0, cfg.Seed+uint64(r)+1, 1)
		if err != nil {
			return ShuffleCase{}, err
		}
		batches[r] = time.Since(start)
	}
	batchedRots := counting.Counts().Rotate / int64(reps)
	if batchedRots > int64(sc.RotationBound) {
		return ShuffleCase{}, fmt.Errorf("batched shuffle used %d rotations, budget 2·√%d+1 = %d", batchedRots, nPad, sc.RotationBound)
	}
	ms = medianMS(batches)
	sc.Batched = ShufflePoint{
		Queries:    capacity,
		TotalMS:    ms,
		PerQueryMS: ms / float64(capacity),
		Rotations:  batchedRots,
	}
	if sc.Batched.PerQueryMS > 0 {
		sc.PerQuerySpeedup = sc.SingleLoop.PerQueryMS / sc.Batched.PerQueryMS
	}

	// Verify the last batched pass end to end (the harness doubles as an
	// integration test).
	slots, err := he.Reveal(b, shuffled)
	if err != nil {
		return ShuffleCase{}, err
	}
	results, err := core.DecodeShuffledBatch(cbs, len(cs.Forest.Labels), slots, meta.BatchBlock())
	if err != nil {
		return ShuffleCase{}, err
	}
	for k, feats := range batch {
		wantVotes := make([]int, len(cs.Forest.Labels))
		for _, lbl := range cs.Forest.Classify(feats) {
			wantVotes[lbl]++
		}
		for lbl, v := range results[k].Votes {
			if v != wantVotes[lbl] {
				return ShuffleCase{}, fmt.Errorf("batch entry %d: votes %v, want %v", k, results[k].Votes, wantVotes)
			}
		}
	}
	return sc, nil
}
