package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"copse"
	"copse/internal/ring"
)

// NTTBench is the machine-readable intra-op parallelism record emitted
// by copse-bench -nttjson (BENCH_ntt.json): ring-kernel ablations
// (serial layer-at-a-time sweeps vs the fused radix-4-style passes vs
// the fused kernel on the limb worker pool), the end-to-end classify
// ablation with bit-exactness between the serial and parallel paths,
// the Galois-key material before/after the level budget, and — when the
// offline flag is set — the Security128 (N=32768) end-to-end record.
type NTTBench struct {
	// Provenance: the record is meaningless without the machine it was
	// measured on. KernelVariant names the transform backend the package
	// default selected ("avx2" or "scalar-fused"); WorkersExceedCPUs
	// flags pool settings that oversubscribe the host, where the
	// parallel columns measure contention rather than speedup.
	CPUs              int    `json:"cpus"`
	GOMAXPROCS        int    `json:"gomaxprocs"`
	CPUModel          string `json:"cpu_model,omitempty"`
	KernelVariant     string `json:"kernel_variant"`
	Workers           int    `json:"workers"` // pool concurrency used for the parallel ablations
	WorkersExceedCPUs bool   `json:"workers_exceed_cpus,omitempty"`

	// Kernels are the ring microbenchmarks, per LogN × limb count.
	Kernels []NTTKernelCase `json:"kernels"`

	// Classify is the end-to-end serial-vs-parallel ablation.
	Classify NTTClassify `json:"classify"`

	// KeyMaterial is the Galois-key budget record.
	KeyMaterial NTTKeyMaterial `json:"key_material"`

	// Secure128 is the offline N=32768 record; nil unless -secure128.
	Secure128 *Secure128Run `json:"secure128,omitempty"`
}

// NTTKernelCase times one full-poly forward+inverse transform pair.
type NTTKernelCase struct {
	LogN  int `json:"logN"`
	Limbs int `json:"limbs"`
	// SerialUS is the unfused layer-at-a-time reference
	// (NTTGeneric/INTTGeneric), FusedUS the fused-pass scalar kernel,
	// VectorUS the SIMD kernel where the host has one (equal to the
	// fused scalar path otherwise), ParallelUS the default kernel with
	// limbs fanned across the pool. The harness asserts the vector and
	// scalar transforms are bit-identical before timing them.
	SerialUS   float64 `json:"serial_us"`
	FusedUS    float64 `json:"fused_us"`
	VectorUS   float64 `json:"vector_us"`
	ParallelUS float64 `json:"parallel_us"`
	// FusedSpeedup is serial/fused, VectorSpeedup fused/vector (the
	// SIMD win over the scalar fused kernel), ParallelSpeedup
	// serial/parallel.
	FusedSpeedup    float64 `json:"fused_speedup"`
	VectorSpeedup   float64 `json:"vector_speedup"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// NTTClassify compares one BGV model's classification latency between
// the serial and pool-attached ring layer, and records that the two
// paths decrypt to bit-identical leaf vectors for every query.
type NTTClassify struct {
	Model   string `json:"model"`
	Queries int    `json:"queries"`
	// SerialMS is a single-threaded ring layer with the default kernel
	// variant; NoVecMS the same run with the vector kernels disabled
	// (the -novec ablation; equal to SerialMS on scalar-only hosts);
	// ParallelMS the default kernels with the limb pool attached.
	SerialMS        float64 `json:"serial_ms"`
	NoVecMS         float64 `json:"novec_ms"`
	ParallelMS      float64 `json:"parallel_ms"`
	ParallelWorkers int     `json:"parallel_workers"`
	KernelVariant   string  `json:"kernel_variant"`
	// VectorSpeedup is NoVecMS/SerialMS: the end-to-end classify win
	// from the vector kernels alone.
	VectorSpeedup float64 `json:"vector_speedup"`
	Identical     bool    `json:"identical"` // leaf bitvectors bit-exact across paths
}

// NTTKeyMaterial reports evaluation-key bytes with the level budget
// (back-half steps generated at their stage level) against the all-at-
// top baseline.
type NTTKeyMaterial struct {
	Model        string  `json:"model"`
	LeveledBytes int64   `json:"leveled_bytes"`
	TopBytes     int64   `json:"top_bytes"`
	Savings      float64 `json:"savings"` // 1 − leveled/top
}

// Secure128Run is the scheduled/offline Security128 (N=32768)
// end-to-end record the ROADMAP has carried as untimed.
type Secure128Run struct {
	Model      string  `json:"model"`
	LogN       int     `json:"logN"`
	Levels     int     `json:"levels"`
	Workers    int     `json:"workers"`
	KeygenMS   float64 `json:"keygen_ms"`
	ClassifyMS float64 `json:"classify_ms"`
	Correct    bool    `json:"correct"`
}

// keyMaterialBackend is the diagnostic surface hebgv.Backend exposes.
type keyMaterialBackend interface {
	KeyMaterial() (actual, topLevel int64)
}

// NTTReport measures the intra-op parallelism record. workers sets the
// pool concurrency for the parallel ablations (0 picks
// max(2, NumCPU) so the pool machinery is exercised even on small
// hosts); secure128 additionally runs the offline N=32768 case.
func NTTReport(cfg Config, workers int, secure128 bool) (*NTTBench, error) {
	cfg = cfg.withDefaults()
	if workers <= 0 {
		workers = max(2, runtime.NumCPU())
	}
	report := &NTTBench{
		CPUs:              runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		CPUModel:          cpuModelName(),
		KernelVariant:     ring.KernelVariant(),
		Workers:           workers,
		WorkersExceedCPUs: workers > runtime.NumCPU(),
	}

	if err := nttKernelBench(report, workers); err != nil {
		return nil, err
	}
	if err := nttClassifyBench(report, cfg, workers); err != nil {
		return nil, err
	}
	if secure128 {
		run, err := secure128Bench(cfg)
		if err != nil {
			return nil, err
		}
		report.Secure128 = run
	}
	return report, nil
}

// nttKernelBench times the four kernel configurations per LogN × limbs:
// unfused scalar, fused scalar, vector (where the host has one), and
// the default kernel on the limb pool. Before timing, it asserts the
// vector and scalar transforms agree bit-for-bit on the benchmark
// input.
func nttKernelBench(report *NTTBench, workers int) error {
	const t = 65537
	for _, logN := range []int{11, 12, 13, 15} {
		n := 1 << logN
		for _, limbs := range []int{2, 8, 12} {
			primes, err := ring.GeneratePrimes(55, uint64(2*n)*t, limbs)
			if err != nil {
				return fmt.Errorf("experiments: primes for logN=%d: %w", logN, err)
			}
			// scalarCtx pins the fused scalar kernels; vecCtx keeps the
			// package default (the vector backend where the host has
			// one); parCtx attaches the limb pool to the default kernels.
			scalarCtx, err := ring.NewContext(logN, primes, t)
			if err != nil {
				return err
			}
			scalarCtx.SetVectorKernels(false)
			vecCtx, err := ring.NewContext(logN, primes, t)
			if err != nil {
				return err
			}
			parCtx, err := ring.NewContext(logN, primes, t)
			if err != nil {
				return err
			}
			parCtx.SetWorkers(ring.NewWorkers(workers))
			src := ring.NewSeededSampler(scalarCtx, 42).UniformPoly(limbs-1, false)

			// Bit-identity gate: the vector path must reproduce the
			// scalar transform exactly before its timings mean anything.
			want, got := src.Copy(), src.Copy()
			scalarCtx.NTT(want)
			vecCtx.NTT(got)
			for i := range want.Coeffs {
				for j := range want.Coeffs[i] {
					if want.Coeffs[i][j] != got.Coeffs[i][j] {
						return fmt.Errorf("experiments: vector NTT diverges from scalar at logN=%d limb=%d coeff=%d", logN, i, j)
					}
				}
			}
			scalarCtx.INTT(want)
			vecCtx.INTT(got)
			for i := range want.Coeffs {
				for j := range want.Coeffs[i] {
					if want.Coeffs[i][j] != got.Coeffs[i][j] {
						return fmt.Errorf("experiments: vector INTT diverges from scalar at logN=%d limb=%d coeff=%d", logN, i, j)
					}
				}
			}

			serial := medianTransformUS(src, func(p *ring.Poly) {
				for i := range p.Coeffs {
					scalarCtx.Moduli[i].NTTGeneric(p.Coeffs[i])
				}
				for i := range p.Coeffs {
					scalarCtx.Moduli[i].INTTGeneric(p.Coeffs[i])
				}
			})
			fused := medianTransformUS(src, func(p *ring.Poly) {
				for i := range p.Coeffs {
					scalarCtx.Moduli[i].NTT(p.Coeffs[i])
				}
				for i := range p.Coeffs {
					scalarCtx.Moduli[i].INTT(p.Coeffs[i])
				}
			})
			vector := medianTransformUS(src, func(p *ring.Poly) {
				for i := range p.Coeffs {
					vecCtx.Moduli[i].NTT(p.Coeffs[i])
				}
				for i := range p.Coeffs {
					vecCtx.Moduli[i].INTT(p.Coeffs[i])
				}
			})
			parallel := medianTransformUS(src, func(p *ring.Poly) {
				parCtx.NTT(p)
				parCtx.INTT(p)
			})
			parCtx.CloseWorkers()
			report.Kernels = append(report.Kernels, NTTKernelCase{
				LogN:            logN,
				Limbs:           limbs,
				SerialUS:        serial,
				FusedUS:         fused,
				VectorUS:        vector,
				ParallelUS:      parallel,
				FusedSpeedup:    serial / fused,
				VectorSpeedup:   fused / vector,
				ParallelSpeedup: serial / parallel,
			})
		}
	}
	return nil
}

// cpuModelName reads the host CPU model string from /proc/cpuinfo
// (empty on platforms without one); benchmark provenance only.
func cpuModelName() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, found := strings.Cut(rest, ":"); found {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// medianTransformUS times fn over fresh copies of src, returning the
// median in microseconds.
func medianTransformUS(src *ring.Poly, fn func(*ring.Poly)) float64 {
	const reps = 9
	times := make([]time.Duration, reps)
	for r := 0; r < reps; r++ {
		p := src.Copy()
		start := time.Now()
		fn(p)
		times[r] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return float64(times[reps/2].Nanoseconds()) / 1e3
}

// nttClassifyBench runs the end-to-end serial/parallel ablation on the
// depth4 micro model (BGV backend) and records key-material bytes.
func nttClassifyBench(report *NTTBench, cfg Config, workers int) error {
	const model = "depth4"
	queries := min(cfg.Queries, 8)
	cases, err := MicroCases()
	if err != nil {
		return err
	}
	var cs *Case
	for i := range cases {
		if cases[i].Name == model {
			cs = &cases[i]
			break
		}
	}
	if cs == nil {
		return fmt.Errorf("experiments: micro case %q not found", model)
	}
	compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots})
	if err != nil {
		return err
	}
	security, err := securityFor(cs.Slots)
	if err != nil {
		return err
	}

	run := func(intra int, novec bool) (float64, [][]uint64, error) {
		sys, err := copse.NewSystem(compiled, copse.SystemConfig{
			Backend:              copse.BackendBGV,
			Scenario:             copse.ScenarioOffload,
			Security:             security,
			IntraOpWorkers:       intra,
			DisableVectorKernels: novec,
			Seed:                 cfg.Seed + 100,
		})
		if err != nil {
			return 0, nil, err
		}
		defer sys.Service().Close()
		if intra > 1 {
			if km, ok := sys.Backend().(keyMaterialBackend); ok {
				actual, top := km.KeyMaterial()
				report.KeyMaterial = NTTKeyMaterial{
					Model:        model,
					LeveledBytes: actual,
					TopBytes:     top,
					Savings:      1 - float64(actual)/float64(top),
				}
			}
		}
		rng := rand.New(rand.NewPCG(cfg.Seed, 0xf00d))
		var times []time.Duration
		var leafBits [][]uint64
		for qi := 0; qi < queries; qi++ {
			feats := randomFeatures(rng, cs.Forest.NumFeatures, cs.Forest.Precision)
			query, err := sys.Diane.EncryptQuery(feats)
			if err != nil {
				return 0, nil, err
			}
			start := time.Now()
			enc, _, err := sys.Sally.Classify(query)
			if err != nil {
				return 0, nil, fmt.Errorf("experiments: %s query %d: %w", model, qi, err)
			}
			times = append(times, time.Since(start))
			res, err := sys.Diane.DecryptResult(enc)
			if err != nil {
				return 0, nil, err
			}
			leafBits = append(leafBits, res.LeafBits)
			want := cs.Forest.Classify(feats)
			for ti := range want {
				if res.PerTree[ti] != want[ti] {
					return 0, nil, fmt.Errorf("experiments: %s query %d tree %d: secure %d != plaintext %d",
						model, qi, ti, res.PerTree[ti], want[ti])
				}
			}
		}
		return medianMS(times), leafBits, nil
	}

	serialMS, serialBits, err := run(1, false)
	if err != nil {
		return err
	}
	novecMS, novecBits, err := run(1, true)
	if err != nil {
		return err
	}
	parallelMS, parallelBits, err := run(workers, false)
	if err != nil {
		return err
	}
	sameBits := func(a, b [][]uint64) bool {
		if len(a) != len(b) {
			return false
		}
		for qi := range a {
			if len(a[qi]) != len(b[qi]) {
				return false
			}
			for j := range a[qi] {
				if a[qi][j] != b[qi][j] {
					return false
				}
			}
		}
		return true
	}
	identical := sameBits(serialBits, parallelBits) && sameBits(serialBits, novecBits)
	report.Classify = NTTClassify{
		Model:           model,
		Queries:         queries,
		SerialMS:        serialMS,
		NoVecMS:         novecMS,
		ParallelMS:      parallelMS,
		ParallelWorkers: workers,
		KernelVariant:   ring.KernelVariant(),
		VectorSpeedup:   novecMS / serialMS,
		Identical:       identical,
	}
	if !identical {
		return fmt.Errorf("experiments: serial, no-vector and parallel classifications are not bit-identical")
	}
	return nil
}

// secure128Bench runs the long-untimed Security128 (N=32768) case once:
// key generation plus one end-to-end classify, verified against the
// plaintext walk.
func secure128Bench(cfg Config) (*Secure128Run, error) {
	const model = "depth4"
	cases, err := MicroCases()
	if err != nil {
		return nil, err
	}
	var forest *Case
	for i := range cases {
		if cases[i].Name == model {
			forest = &cases[i]
			break
		}
	}
	if forest == nil {
		return nil, fmt.Errorf("experiments: micro case %q not found", model)
	}
	const slots = 16384
	compiled, err := copse.Compile(forest.Forest, copse.CompileOptions{Slots: slots})
	if err != nil {
		return nil, err
	}
	workers := max(2, runtime.NumCPU())
	start := time.Now()
	sys, err := copse.NewSystem(compiled, copse.SystemConfig{
		Backend:        copse.BackendBGV,
		Scenario:       copse.ScenarioOffload,
		Security:       copse.Security128,
		IntraOpWorkers: workers,
		Seed:           cfg.Seed + 100,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Service().Close()
	keygenMS := float64(time.Since(start).Nanoseconds()) / 1e6

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5128))
	feats := randomFeatures(rng, forest.Forest.NumFeatures, forest.Forest.Precision)
	query, err := sys.Diane.EncryptQuery(feats)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	enc, _, err := sys.Sally.Classify(query)
	if err != nil {
		return nil, fmt.Errorf("experiments: secure128 classify: %w", err)
	}
	classifyMS := float64(time.Since(start).Nanoseconds()) / 1e6
	res, err := sys.Diane.DecryptResult(enc)
	if err != nil {
		return nil, err
	}
	correct := true
	for ti, want := range forest.Forest.Classify(feats) {
		if res.PerTree[ti] != want {
			correct = false
		}
	}
	levels := compiled.Meta.RecommendedLevels
	if compiled.Meta.LevelPlan != nil {
		levels = compiled.Meta.LevelPlan.ChainLevels(true)
	}
	return &Secure128Run{
		Model:      model,
		LogN:       15,
		Levels:     levels,
		Workers:    workers,
		KeygenMS:   keygenMS,
		ClassifyMS: classifyMS,
		Correct:    correct,
	}, nil
}

// WriteJSON writes the report, indented for diff-friendliness.
func (r *NTTBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
