package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"copse"
)

// ServingBench is the machine-readable serving-throughput record
// emitted by copse-bench -servejson (BENCH_serving.json): queries/sec
// at batch sizes 1, 4 and the model's full slot-packed capacity, so
// successive PRs can diff the serving layer's throughput trajectory.
type ServingBench struct {
	Backend string        `json:"backend"`
	Queries int           `json:"queries"`
	Seed    uint64        `json:"seed"`
	Cases   []ServingCase `json:"cases"`
}

// ServingCase is one model's record.
type ServingCase struct {
	Name          string         `json:"name"`
	Slots         int            `json:"slots"`
	QPad          int            `json:"q_pad"`
	BPad          int            `json:"b_pad"`
	BatchCapacity int            `json:"batch_capacity"`
	Points        []ServingPoint `json:"points"`
}

// ServingPoint is the throughput at one batch size.
type ServingPoint struct {
	Batch         int     `json:"batch"`
	Passes        int     `json:"passes"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	MeanPassMS    float64 `json:"mean_pass_ms"`
	// SpeedupVsSingle is this point's queries/sec over the sequential
	// single-query (batch=1) baseline of the same model and backend.
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
}

// WriteJSON writes the report.
func (s *ServingBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// servingBatchSizes returns the benchmarked batch sizes for a capacity:
// 1, 4 and the full capacity, deduplicated and clipped.
func servingBatchSizes(capacity int) []int {
	sizes := []int{1}
	if capacity >= 4 {
		sizes = append(sizes, 4)
	}
	if capacity > 1 && capacity != 4 {
		sizes = append(sizes, capacity)
	}
	return sizes
}

// ServingReport benchmarks the slot-packed serving layer: for each
// model it stages a Service and answers cfg.Queries random queries at
// each batch size, verifying every answer against the plaintext walk
// and recording queries/sec. The batch=1 row is the sequential
// single-query baseline the speedups are relative to.
func ServingReport(cfg Config) (*ServingBench, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	kind, err := backendKind(cfg)
	if err != nil {
		return nil, err
	}
	report := &ServingBench{Backend: cfg.Backend, Queries: cfg.Queries, Seed: cfg.Seed}
	for _, cs := range cases {
		compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots})
		if err != nil {
			return nil, fmt.Errorf("experiments: compiling %s: %w", cs.Name, err)
		}
		opts := []copse.Option{
			copse.WithBackend(kind),
			copse.WithScenario(copse.ScenarioOffload),
			copse.WithWorkers(defaultWorkers(cfg)),
			copse.WithSeed(cfg.Seed + 100),
		}
		if kind == copse.BackendBGV {
			preset, err := securityFor(cs.Slots)
			if err != nil {
				return nil, err
			}
			opts = append(opts, copse.WithSecurity(preset))
		}
		svc := copse.NewService(opts...)
		if err := svc.Register(cs.Name, compiled); err != nil {
			return nil, fmt.Errorf("experiments: staging %s: %w", cs.Name, err)
		}
		capacity := compiled.Meta.BatchCapacity()
		sc := ServingCase{
			Name:          cs.Name,
			Slots:         cs.Slots,
			QPad:          compiled.Meta.QPad,
			BPad:          compiled.Meta.BPad,
			BatchCapacity: capacity,
		}
		var baseline float64
		for _, batch := range servingBatchSizes(capacity) {
			point, err := servingPoint(svc, cs, batch, cfg)
			if err != nil {
				return nil, err
			}
			if batch == 1 {
				baseline = point.QueriesPerSec
			}
			if baseline > 0 {
				point.SpeedupVsSingle = point.QueriesPerSec / baseline
			}
			sc.Points = append(sc.Points, point)
		}
		report.Cases = append(report.Cases, sc)
	}
	return report, nil
}

// servingPoint answers cfg.Queries random queries in batches of `batch`
// and measures the realized throughput. Query generation and plaintext
// verification happen outside the timed window, so the metric is the
// homomorphic serving path only.
func servingPoint(svc *copse.Service, cs Case, batch int, cfg Config) (ServingPoint, error) {
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(batch)<<8|0xbead))
	limit := uint64(1) << uint(cs.Forest.Precision)
	total := max(cfg.Queries, batch)
	var batches [][][]uint64
	for answered := 0; answered < total; {
		n := min(batch, total-answered)
		queries := make([][]uint64, n)
		for i := range queries {
			queries[i] = make([]uint64, cs.Forest.NumFeatures)
			for j := range queries[i] {
				queries[i][j] = rng.Uint64N(limit)
			}
		}
		batches = append(batches, queries)
		answered += n
	}

	allResults := make([][]*copse.Result, len(batches))
	start := time.Now()
	for bi, queries := range batches {
		results, err := svc.ClassifyBatch(context.Background(), cs.Name, queries)
		if err != nil {
			return ServingPoint{}, fmt.Errorf("experiments: %s batch=%d: %w", cs.Name, batch, err)
		}
		allResults[bi] = results
	}
	elapsed := time.Since(start)

	for bi, queries := range batches {
		for i, feats := range queries {
			want := cs.Forest.Classify(feats)
			for ti, lbl := range allResults[bi][i].PerTree {
				if lbl != want[ti] {
					return ServingPoint{}, fmt.Errorf("experiments: %s batch=%d query %v tree %d: L%d, want L%d",
						cs.Name, batch, feats, ti, lbl, want[ti])
				}
			}
		}
	}
	return ServingPoint{
		Batch:         batch,
		Passes:        len(batches),
		QueriesPerSec: float64(total) / elapsed.Seconds(),
		MeanPassMS:    float64(elapsed.Microseconds()) / 1000 / float64(len(batches)),
	}, nil
}
