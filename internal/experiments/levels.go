package experiments

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"copse"
	"copse/internal/he"
)

// LevelBench is the machine-readable level-scheduling record emitted by
// copse-bench -leveljson (BENCH_levels.json): per-model chain lengths,
// per-stage execution levels and limb·op integrals, with the static
// schedule active and with the -nolevelplan ablation — so successive PRs
// can diff how much of the modulus chain the pipeline actually touches.
type LevelBench struct {
	Backend string      `json:"backend"`
	Queries int         `json:"queries"`
	Seed    uint64      `json:"seed"`
	Cases   []LevelCase `json:"cases"`
}

// LevelCase is one model's record.
type LevelCase struct {
	Name  string `json:"name"`
	Depth int    `json:"depth"`

	// PlanLevels is the scheduled chain length; ReactiveLevels the
	// compiler's reactive recommendation the ablation runs on.
	PlanLevels     int `json:"plan_levels"`
	ReactiveLevels int `json:"reactive_levels"`

	// Plan echoes the compiled schedule for the benchmarked scenario
	// (encrypted model).
	Plan LevelPlanRecord `json:"plan"`

	Planned  LevelRun `json:"planned"`
	Reactive LevelRun `json:"reactive"`

	// Speedup is reactive/planned median latency.
	Speedup float64 `json:"speedup"`
}

// LevelPlanRecord is the compiled schedule in JSON form.
type LevelPlanRecord struct {
	Compare    int `json:"compare"`
	Reshuffle  int `json:"reshuffle"`
	Level      int `json:"level"`
	Accumulate int `json:"accumulate"`
	Final      int `json:"final"`
	// CompareRounds are the per-round drop levels of the Sklansky
	// prefix tree inside the compare stage.
	CompareRounds []int `json:"compare_rounds,omitempty"`
}

// LevelRun is one configuration's measurements.
type LevelRun struct {
	TotalMS float64      `json:"total_ms"` // median over queries
	Stages  []LevelStage `json:"stages"`
}

// LevelStage is one pipeline stage's record: the limb count the stage
// entered at, its limb·op integral (Σ over ops of active limbs), and
// the decrypt-side measured noise margin at the same boundary.
type LevelStage struct {
	Name     string  `json:"name"`
	MedianMS float64 `json:"median_ms"`
	Limbs    int     `json:"limbs"`
	LimbOps  int64   `json:"limb_ops"`
	// NoiseBudget is the median measured remaining noise budget (bits)
	// of the carrier ciphertext at this stage boundary over the corpus —
	// the margin the planner's flat slack (core/levelplan.go) actually
	// leaves, and the groundwork for shrinking it per stage.
	NoiseBudget int `json:"noise_budget"`
}

// LevelReport measures every configured model with the level schedule
// active and with reactive management, on the BGV backend (the clear
// backend has no levels to schedule). The report doubles as the
// measured-noise corpus — per-stage NoiseBudget margins over the suite
// — collected in a *separate* measuring pass per configuration, so the
// timed corpus (total_ms, Speedup) never absorbs the measurement
// decryptions.
func LevelReport(cfg Config) (*LevelBench, error) {
	cfg = cfg.withDefaults()
	cfg.Backend = "bgv"
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	report := &LevelBench{Backend: cfg.Backend, Queries: cfg.Queries, Seed: cfg.Seed}
	for _, cs := range cases {
		lc := LevelCase{Name: cs.Name}
		for _, reactive := range []bool{false, true} {
			runCfg := cfg
			runCfg.NoLevelPlan = reactive
			r, err := newCopseRunner(cs, runCfg, defaultWorkers(cfg), copse.ScenarioOffload)
			if err != nil {
				return nil, err
			}
			times, traces, err := r.run(cfg.Queries, cfg.Seed)
			if err != nil {
				r.close()
				return nil, err
			}
			meta := r.sys.Sally.Meta()
			lc.Depth = meta.D
			r.close()
			// The noise corpus comes from its own measured pass over the
			// same queries.
			noiseCfg := runCfg
			noiseCfg.MeasureNoise = true
			nr, err := newCopseRunner(cs, noiseCfg, defaultWorkers(cfg), copse.ScenarioOffload)
			if err != nil {
				return nil, err
			}
			_, noiseTraces, err := nr.run(cfg.Queries, cfg.Seed)
			nr.close()
			if err != nil {
				return nil, err
			}
			run := levelRun(times, traces, noiseTraces)
			if reactive {
				lc.ReactiveLevels = meta.RecommendedLevels
				lc.Reactive = run
			} else {
				if plan := meta.LevelPlan; plan != nil {
					lc.PlanLevels = plan.Levels
					lc.Plan = LevelPlanRecord{
						Compare:       plan.Cipher.Compare,
						Reshuffle:     plan.Cipher.Reshuffle,
						Level:         plan.Cipher.Level,
						Accumulate:    plan.Cipher.Accumulate,
						Final:         plan.Cipher.Final,
						CompareRounds: plan.Cipher.CompareRounds,
					}
				}
				lc.Planned = run
			}
		}
		if lc.Planned.TotalMS > 0 {
			lc.Speedup = lc.Reactive.TotalMS / lc.Planned.TotalMS
		}
		report.Cases = append(report.Cases, lc)
	}
	return report, nil
}

// levelRun condenses one configuration's traces: timings and limb
// counts from the timed pass, noise margins from the measuring pass
// (their decryptions must not contaminate the timings).
func levelRun(times []time.Duration, traces, noiseTraces []*copse.Trace) LevelRun {
	run := LevelRun{TotalMS: medianMS(times)}
	if len(traces) == 0 {
		return run
	}
	last := traces[len(traces)-1]
	medianNoise := func(noise func(*copse.Trace) int) int {
		budgets := make([]int, len(noiseTraces))
		for i, tr := range noiseTraces {
			budgets[i] = noise(tr)
		}
		return medianInt(budgets)
	}
	stage := func(name string, limbs int, noise func(*copse.Trace) int, pick func(*copse.Trace) (time.Duration, he.OpCounts)) {
		durs := make([]time.Duration, len(traces))
		var ops he.OpCounts
		for i, tr := range traces {
			durs[i], ops = pick(tr)
		}
		run.Stages = append(run.Stages, LevelStage{
			Name:        name,
			MedianMS:    medianMS(durs),
			Limbs:       limbs,
			LimbOps:     ops.LimbOps,
			NoiseBudget: medianNoise(noise),
		})
	}
	stage("compare", last.Limbs.Query,
		func(tr *copse.Trace) int { return tr.Noise.Query },
		func(tr *copse.Trace) (time.Duration, he.OpCounts) { return tr.Compare, tr.CompareOps })
	stage("reshuffle", last.Limbs.Decisions,
		func(tr *copse.Trace) int { return tr.Noise.Decisions },
		func(tr *copse.Trace) (time.Duration, he.OpCounts) { return tr.Reshuffle, tr.ReshuffleOps })
	stage("levels", last.Limbs.BranchVec,
		func(tr *copse.Trace) int { return tr.Noise.BranchVec },
		func(tr *copse.Trace) (time.Duration, he.OpCounts) { return tr.Levels, tr.LevelOps })
	stage("accumulate", last.Limbs.LevelResult,
		func(tr *copse.Trace) int { return tr.Noise.LevelResult },
		func(tr *copse.Trace) (time.Duration, he.OpCounts) { return tr.Accumulate, tr.AccumulateOps })
	run.Stages = append(run.Stages, LevelStage{
		Name: "result", Limbs: last.Limbs.Result,
		NoiseBudget: medianNoise(func(tr *copse.Trace) int { return tr.Noise.Result }),
	})
	return run
}

// medianInt returns the median of a small int sample (ties break low).
func medianInt(vals []int) int {
	if len(vals) == 0 {
		return 0
	}
	s := append([]int(nil), vals...)
	sort.Ints(s)
	return s[len(s)/2]
}

// WriteJSON writes the report, indented for diff-friendliness.
func (r *LevelBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
