package experiments

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"text/template"

	"copse"
)

// GenBench is the specialization record emitted by copse-bench -genjson
// (BENCH_gen.json): per-model latency of the specialized op-program
// executor against the generic interpreter on the *same* query corpus,
// with bit-identity of the decrypted results asserted, plus one
// compile-and-run probe of a `copse-compile -gen` generated kernel
// package (DESIGN.md §13).
type GenBench struct {
	Backend string    `json:"backend"`
	Queries int       `json:"queries"`
	Seed    uint64    `json:"seed"`
	Cases   []GenCase `json:"cases"`
	// GeneratedKernel records the codegen probe: a temporary module
	// holding the first case's emitted kernel package, compiled and run
	// against the same artifact.
	GeneratedKernel *GenKernelProbe `json:"generated_kernel,omitempty"`
}

// GenCase is one model's specialized-vs-generic measurement.
type GenCase struct {
	Name string `json:"name"`
	// ArtifactHash keys the model into the kernel registry.
	ArtifactHash string `json:"artifact_hash"`
	// Executor is the dispatch the specialized leg actually took
	// ("program", or "kernel" when a generated package is linked).
	Executor string `json:"executor"`
	// Median Classify latency per leg, identical query corpus.
	GenericMS     float64 `json:"generic_ms"`
	SpecializedMS float64 `json:"specialized_ms"`
	// Speedup is generic/specialized median latency.
	Speedup float64 `json:"speedup"`
	// BitIdentical: every query decrypted to the same per-tree labels
	// under both executors (and matched the plaintext tree walk — the
	// runner asserts that on every leg). Always true in an emitted
	// report; a mismatch fails the report instead.
	BitIdentical bool `json:"bit_identical"`
}

// GenKernelProbe is the result of building and running one generated
// kernel package in a scratch module.
type GenKernelProbe struct {
	Model        string `json:"model"`
	ArtifactHash string `json:"artifact_hash"`
	// KernelRuns is the subprocess's copse.KernelRuns() after its
	// queries: > 0 proves the engine dispatched to the generated
	// kernels, not the interpreter.
	KernelRuns int64 `json:"kernel_runs"`
	// Matched: the subprocess's decrypted per-tree labels equalled the
	// plaintext tree walk on every query.
	Matched bool `json:"matched"`
}

// GenReport measures every configured model under both executors and
// probes one generated kernel end to end. Any bit divergence between
// the legs — or between either leg and the plaintext walk — is an
// error, not a report entry.
func GenReport(cfg Config) (*GenBench, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	report := &GenBench{Backend: cfg.Backend, Queries: cfg.Queries, Seed: cfg.Seed}
	for _, cs := range cases {
		gc := GenCase{Name: cs.Name}
		compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots})
		if err != nil {
			return nil, err
		}
		if gc.ArtifactHash, err = copse.ArtifactHash(compiled); err != nil {
			return nil, err
		}
		var results [2][][]int
		var medians [2]float64
		for leg, noSpec := range []bool{true, false} {
			runCfg := cfg
			runCfg.NoSpecialize = noSpec
			r, err := newCopseRunner(cs, runCfg, defaultWorkers(cfg), copse.ScenarioOffload)
			if err != nil {
				return nil, err
			}
			times, traces, res, err := r.runCollect(cfg.Queries, cfg.Seed)
			r.close()
			if err != nil {
				return nil, err
			}
			medians[leg] = medianMS(times)
			results[leg] = res
			if !noSpec && len(traces) > 0 {
				gc.Executor = traces[len(traces)-1].Executor
			}
		}
		if len(results[0]) != len(results[1]) {
			return nil, fmt.Errorf("experiments: %s: leg corpus sizes diverge", cs.Name)
		}
		for qi := range results[0] {
			for ti := range results[0][qi] {
				if results[0][qi][ti] != results[1][qi][ti] {
					return nil, fmt.Errorf("experiments: %s query %d tree %d: generic %d != specialized %d",
						cs.Name, qi, ti, results[0][qi][ti], results[1][qi][ti])
				}
			}
		}
		gc.BitIdentical = true
		gc.GenericMS, gc.SpecializedMS = medians[0], medians[1]
		if gc.SpecializedMS > 0 {
			gc.Speedup = gc.GenericMS / gc.SpecializedMS
		}
		report.Cases = append(report.Cases, gc)
	}
	if len(cases) > 0 {
		probe, err := GenKernelRun(cases[0], cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: generated-kernel probe (%s): %w", cases[0].Name, err)
		}
		report.GeneratedKernel = probe
	}
	return report, nil
}

// GenKernelRun emits the case's kernel package with copse.GenerateKernel
// into a scratch module next to a generated driver, builds it against
// this repository, and runs a handful of queries: the driver asserts the
// decrypted labels match the embedded plaintext expectations and that
// copse.KernelRuns() advanced (kernel dispatch, not interpreter).
func GenKernelRun(cs Case, cfg Config) (*GenKernelProbe, error) {
	cfg = cfg.withDefaults()
	compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots})
	if err != nil {
		return nil, err
	}
	hash, err := copse.ArtifactHash(compiled)
	if err != nil {
		return nil, err
	}
	repoRoot, err := moduleRoot()
	if err != nil {
		return nil, err
	}

	queries := min(cfg.Queries, 3)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xf00d))
	var feats [][]uint64
	var want [][]int
	for qi := 0; qi < queries; qi++ {
		f := randomFeatures(rng, cs.Forest.NumFeatures, cs.Forest.Precision)
		feats = append(feats, f)
		want = append(want, cs.Forest.Classify(f))
	}

	dir, err := os.MkdirTemp("", "copse-genkernel-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := os.Mkdir(filepath.Join(dir, "kernels"), 0o755); err != nil {
		return nil, err
	}
	var kernelSrc bytes.Buffer
	if err := copse.GenerateKernel(&kernelSrc, compiled, "kernels"); err != nil {
		return nil, err
	}
	var artifact bytes.Buffer
	if err := copse.WriteArtifact(&artifact, compiled); err != nil {
		return nil, err
	}
	var driver bytes.Buffer
	if err := genDriverTemplate.Execute(&driver, genDriverData{
		Artifact: base64.StdEncoding.EncodeToString(artifact.Bytes()),
		Backend:  cfg.Backend,
		Slots:    cs.Slots,
		Features: jsonLiteral(feats),
		Want:     jsonLiteral(want),
	}); err != nil {
		return nil, err
	}
	files := map[string]string{
		"go.mod":                 "module generated\n\ngo 1.23\n\nrequire copse v0.0.0\n\nreplace copse => " + repoRoot + "\n",
		"kernels/kernels_gen.go": kernelSrc.String(),
		"main.go":                driver.String(),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return nil, err
		}
	}
	tidy := exec.Command("go", "mod", "tidy")
	tidy.Dir = dir
	tidy.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off")
	if out, err := tidy.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("go mod tidy: %v\n%s", err, out)
	}
	run := exec.Command("go", "run", ".")
	run.Dir = dir
	run.Env = append(os.Environ(), "GOPROXY=off")
	out, err := run.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go run: %v\n%s", err, out)
	}
	m := genOKPattern.FindSubmatch(out)
	if m == nil {
		return nil, fmt.Errorf("generated driver did not report success:\n%s", out)
	}
	runs, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil || runs <= 0 {
		return nil, fmt.Errorf("generated driver reported no kernel dispatches:\n%s", out)
	}
	return &GenKernelProbe{Model: cs.Name, ArtifactHash: hash, KernelRuns: runs, Matched: true}, nil
}

var genOKPattern = regexp.MustCompile(`GENKERNEL OK runs=(\d+)`)

// moduleRoot resolves the repository root from this source file's
// compile-time path (internal/experiments/gen.go → two directories up),
// for the scratch module's replace directive.
func moduleRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("experiments: cannot locate module root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("experiments: module root %s: %w", root, err)
	}
	return root, nil
}

func jsonLiteral(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

type genDriverData struct {
	Artifact string
	Backend  string
	Slots    int
	Features string
	Want     string
}

var genDriverTemplate = template.Must(template.New("gendriver").Parse(
	`// Scratch driver for the generated-kernel probe. DO NOT EDIT.
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"log"

	"copse"

	_ "generated/kernels"
)

const artifactB64 = "{{.Artifact}}"

func main() {
	raw, err := base64.StdEncoding.DecodeString(artifactB64)
	if err != nil {
		log.Fatalf("decoding artifact: %v", err)
	}
	compiled, err := copse.ReadArtifact(bytes.NewReader(raw))
	if err != nil {
		log.Fatalf("reading artifact: %v", err)
	}
	cfg := copse.SystemConfig{Scenario: copse.ScenarioOffload}
	switch {{printf "%q" .Backend}} {
	case "bgv":
		cfg.Backend = copse.BackendBGV
		if cfg.Security, err = copse.SecurityForSlots({{.Slots}}); err != nil {
			log.Fatalf("security preset: %v", err)
		}
	default:
		cfg.Backend = copse.BackendClear
	}
	var features [][]uint64
	var want [][]int
	if err := json.Unmarshal([]byte(` + "`{{.Features}}`" + `), &features); err != nil {
		log.Fatalf("features: %v", err)
	}
	if err := json.Unmarshal([]byte(` + "`{{.Want}}`" + `), &want); err != nil {
		log.Fatalf("want: %v", err)
	}
	sys, err := copse.NewSystem(compiled, cfg)
	if err != nil {
		log.Fatalf("system: %v", err)
	}
	for qi, f := range features {
		query, err := sys.Diane.EncryptQuery(f)
		if err != nil {
			log.Fatalf("query %d: %v", qi, err)
		}
		enc, trace, err := sys.Sally.Classify(query)
		if err != nil {
			log.Fatalf("classify %d: %v", qi, err)
		}
		if trace.Executor != "kernel" {
			log.Fatalf("query %d ran on %q, not the generated kernel", qi, trace.Executor)
		}
		res, err := sys.Diane.DecryptResult(enc)
		if err != nil {
			log.Fatalf("decrypt %d: %v", qi, err)
		}
		for ti := range want[qi] {
			if res.PerTree[ti] != want[qi][ti] {
				log.Fatalf("query %d tree %d: kernel %d != plaintext %d", qi, ti, res.PerTree[ti], want[qi][ti])
			}
		}
	}
	fmt.Printf("GENKERNEL OK runs=%d\n", copse.KernelRuns())
}
`))

// WriteJSON writes the report, indented for diff-friendliness.
func (r *GenBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
