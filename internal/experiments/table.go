package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", max(total-2, 4)) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	sb.WriteString("\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// speedup formats a ratio.
func speedup(base, improved time.Duration) string {
	if improved <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(improved))
}

// median returns the median of the samples.
func median(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// geomean returns the geometric mean of positive ratios.
func geomean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	logSum := 0.0
	for _, r := range ratios {
		if r <= 0 {
			return 0
		}
		logSum += math.Log(r)
	}
	return math.Exp(logSum / float64(len(ratios)))
}
