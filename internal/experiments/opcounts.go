package experiments

import (
	"fmt"

	"copse"
	"copse/internal/he"
)

// Table1 reproduces the paper's Table 1: per-stage FHE operation counts
// and multiplicative depth. It prints the paper's analytic formulas
// (evaluated at the model's p, q, b, d) next to the counts measured by
// the backend's instrumentation. Exact matches are not expected — the
// paper's GF(2) plaintext space makes XOR a free addition, while the
// power-of-two-ring encoding costs extra multiplications (DESIGN.md §3)
// and the padded widths q̂ = QPad, b̂ = BPad replace q and b — but the
// *scaling* in each parameter must agree.
func Table1(cfg Config, caseName string) (*Table, error) {
	cfg = cfg.withDefaults()
	cs, trace, meta, err := tracedRun(cfg, caseName)
	if err != nil {
		return nil, err
	}
	p, b, d := meta.Precision, meta.B, meta.D
	logp := log2Ceil(p)
	logd := log2Ceil(max(d, 1))

	t := &Table{
		Title:  fmt.Sprintf("Table 1: operation counts per stage (model %s: p=%d q=%d b=%d d=%d)", cs.Name, p, meta.Q, b, d),
		Header: []string{"stage", "op", "paper formula", "paper value", "measured"},
	}
	add := func(stage, op, formula string, paperVal int, measured int64) {
		t.Rows = append(t.Rows, []string{stage, op, formula, fmt.Sprint(paperVal), fmt.Sprint(measured)})
	}
	// Table 1a: secure comparison.
	add("compare", "Add", "4p-2", 4*p-2, trace.CompareOps.Add)
	add("compare", "ConstAdd", "p", p, trace.CompareOps.ConstAdd)
	add("compare", "Multiply", "p·log p + 3p - 2", p*logp+3*p-2, trace.CompareOps.Mul)
	add("compare", "ConstMul", "- (encoding artifact)", 0, trace.CompareOps.ConstMul)
	// Table 1b: level processing, d repetitions.
	add("levels(xd)", "Rotate", "d·b", d*b, trace.LevelOps.Rotate)
	add("levels(xd)", "Add", "d·(b+1)", d*(b+1), trace.LevelOps.Add)
	add("levels(xd)", "Multiply", "d·b", d*b, trace.LevelOps.Mul)
	// Table 1c: accumulation.
	add("accumulate", "Multiply", "2d-2", 2*d-2, trace.AccumulateOps.Mul)
	// Reshuffle (folded into Table 2's q terms in the paper).
	add("reshuffle", "Rotate", "q", meta.Q, trace.ReshuffleOps.Rotate)
	add("reshuffle", "Multiply", "q", meta.Q, trace.ReshuffleOps.Mul)

	t.Notes = append(t.Notes,
		fmt.Sprintf("paper multiplicative depth: 2·log p + log d + 2 = %d; measured: %d", 2*logp+logd+2, measuredDepth(trace)),
		fmt.Sprintf("padded widths actually processed: q̂=%d (q=%d), b̂=%d (b=%d)", meta.QPad, meta.Q, meta.BPad, b),
	)
	return t, nil
}

// Table2 reproduces the paper's Table 2: total evaluation complexity.
func Table2(cfg Config, caseName string) (*Table, error) {
	cfg = cfg.withDefaults()
	cs, trace, meta, err := tracedRun(cfg, caseName)
	if err != nil {
		return nil, err
	}
	p, q, b, d := meta.Precision, meta.Q, meta.B, meta.D
	logp := log2Ceil(p)
	logd := log2Ceil(max(d, 1))
	total := totalOps(trace)

	t := &Table{
		Title:  fmt.Sprintf("Table 2: total evaluation complexity (model %s)", cs.Name),
		Header: []string{"op", "paper formula", "paper value", "measured"},
	}
	row := func(op, formula string, paperVal int, measured int64) {
		t.Rows = append(t.Rows, []string{op, formula, fmt.Sprint(paperVal), fmt.Sprint(measured)})
	}
	row("Rotate", "q + d·b", q+d*b, total.Rotate)
	row("Add", "4p-2 + q + d(b+1)", 4*p-2+q+d*(b+1), total.Add)
	row("ConstAdd", "p", p, total.ConstAdd)
	row("Multiply", "p·log p + 3p + q + d·b + 2d - 4", p*logp+3*p+q+d*b+2*d-4, total.Mul)
	row("ConstMul", "- (encoding artifact)", 0, total.ConstMul)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper multiplicative depth 2·log p + log d + 2 = %d; measured %d (our comparison circuit is shallower: log p + 2)",
			2*logp+logd+2, measuredDepth(trace)),
	)
	return t, nil
}

func tracedRun(cfg Config, caseName string) (Case, *copse.Trace, *copse.Meta, error) {
	cases, err := AllCases(cfg)
	if err != nil {
		return Case{}, nil, nil, err
	}
	for _, cs := range cases {
		if cs.Name != caseName {
			continue
		}
		r, err := newCopseRunner(cs, cfg, 1, copse.ScenarioOffload)
		if err != nil {
			return Case{}, nil, nil, err
		}
		_, traces, err := r.run(1, cfg.Seed)
		r.close()
		if err != nil {
			return Case{}, nil, nil, err
		}
		return cs, traces[0], r.sys.Sally.Meta(), nil
	}
	return Case{}, nil, nil, fmt.Errorf("experiments: no case named %q", caseName)
}

func totalOps(tr *copse.Trace) he.OpCounts {
	sum := func(a, b he.OpCounts) he.OpCounts {
		return he.OpCounts{
			Encrypt:  a.Encrypt + b.Encrypt,
			Rotate:   a.Rotate + b.Rotate,
			Add:      a.Add + b.Add,
			ConstAdd: a.ConstAdd + b.ConstAdd,
			Mul:      a.Mul + b.Mul,
			ConstMul: a.ConstMul + b.ConstMul,
		}
	}
	t := sum(tr.CompareOps, tr.ReshuffleOps)
	t = sum(t, tr.LevelOps)
	return sum(t, tr.AccumulateOps)
}

func measuredDepth(tr *copse.Trace) int64 {
	d := tr.CompareOps.MaxDepth
	for _, ops := range []he.OpCounts{tr.ReshuffleOps, tr.LevelOps, tr.AccumulateOps} {
		if ops.MaxDepth > d {
			d = ops.MaxDepth
		}
	}
	return d
}
