package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"reflect"
	"sync"
	"time"

	"copse"
)

// AggBench is the machine-readable dynamic-batching record emitted by
// copse-bench -aggjson (BENCH_agg.json): closed-loop throughput of N
// uncoordinated single-query clients against one copse.Service, with
// the cross-request batcher on vs off. Every on-mode answer is verified
// bit-identical to the same client's off-mode answer and to the
// plaintext tree walk, so the speedup column is also a correctness
// witness for cross-user coalescing.
type AggBench struct {
	Clients          int       `json:"clients"`
	QueriesPerClient int       `json:"queries_per_client"`
	WindowMS         float64   `json:"window_ms"`
	Seed             uint64    `json:"seed"`
	Cases            []AggCase `json:"cases"`
}

// AggCase is one model × backend record.
type AggCase struct {
	Name          string  `json:"name"`
	Backend       string  `json:"backend"`
	Slots         int     `json:"slots"`
	BatchCapacity int     `json:"batch_capacity"`
	Off           AggMode `json:"batcher_off"`
	On            AggMode `json:"batcher_on"`
	// Speedup is On.QueriesPerSec / Off.QueriesPerSec — the realized
	// cross-user batching win at this client count.
	Speedup float64 `json:"speedup"`
}

// AggMode is the closed-loop measurement of one batcher setting.
type AggMode struct {
	QueriesPerSec float64 `json:"queries_per_sec"`
	// Passes is how many homomorphic passes answered the run's queries
	// (requests observed by the service; coalesced passes count once).
	Passes int64 `json:"passes"`
	// MeanLatencyMS is the mean client-observed per-query wall time,
	// including linger and queueing.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	// BatchFill is the batcher's mean pass fill ratio (0 when off).
	BatchFill float64 `json:"batch_fill"`
	// MeanBatchWaitMS is the mean per-query linger in the batcher
	// (0 when off).
	MeanBatchWaitMS float64 `json:"mean_batch_wait_ms"`
}

// WriteJSON writes the report.
func (a *AggBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// aggClients is the fixed closed-loop client count: the acceptance
// scenario of 16 concurrent single-query users.
const aggClients = 16

// aggWindow is the linger deadline of the on-mode batcher. It only
// bounds how long a lone query waits for co-riders; under closed-loop
// load passes fire at capacity, so the window never sits on the
// critical path of the throughput measurement.
const aggWindow = 25 * time.Millisecond

// AggReport benchmarks the dynamic cross-user batcher: for each model
// it runs aggClients concurrent single-query clients in closed loop —
// each client fires its next query as soon as its previous answer lands
// — first with the batcher off, then with WithBatchWindow on, and
// reports the throughput ratio. Both modes run under WithMaxInFlight(1)
// so they spend the same core budget per pass and the ratio isolates
// the batching win (queries answered per pass) from mere pass-level
// parallelism. The clear backend always runs; -backend bgv adds the
// real-ciphertext rows.
func AggReport(cfg Config) (*AggBench, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	report := &AggBench{
		Clients:          aggClients,
		QueriesPerClient: max(1, cfg.Queries/aggClients),
		WindowMS:         float64(aggWindow.Microseconds()) / 1000,
		Seed:             cfg.Seed,
	}
	backends := []string{"clear"}
	if cfg.Backend == "bgv" {
		backends = append(backends, "bgv")
	}
	for _, cs := range cases {
		for _, backend := range backends {
			ac, err := aggCase(cs, backend, cfg, report.QueriesPerClient)
			if err != nil {
				return nil, err
			}
			report.Cases = append(report.Cases, ac)
		}
	}
	return report, nil
}

// aggCase measures one model on one backend, batcher off then on.
func aggCase(cs Case, backend string, cfg Config, perClient int) (AggCase, error) {
	compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots})
	if err != nil {
		return AggCase{}, fmt.Errorf("experiments: compiling %s: %w", cs.Name, err)
	}
	ac := AggCase{
		Name:          cs.Name,
		Backend:       backend,
		Slots:         cs.Slots,
		BatchCapacity: compiled.Meta.BatchCapacity(),
	}
	// Same per-client query streams in both modes: the off-mode answers
	// double as the bit-equivalence reference for the on-mode.
	queries := make([][][]uint64, aggClients)
	for c := range queries {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(c)<<8|0xa66))
		queries[c] = make([][]uint64, perClient)
		for q := range queries[c] {
			queries[c][q] = randomFeatures(rng, cs.Forest.NumFeatures, cs.Forest.Precision)
		}
	}
	off, offResults, err := aggMode(cs, compiled, backend, cfg, queries, 0)
	if err != nil {
		return AggCase{}, err
	}
	on, onResults, err := aggMode(cs, compiled, backend, cfg, queries, aggWindow)
	if err != nil {
		return AggCase{}, err
	}
	for c := range queries {
		for q, feats := range queries[c] {
			want := cs.Forest.Classify(feats)
			for ti, lbl := range offResults[c][q].PerTree {
				if lbl != want[ti] {
					return AggCase{}, fmt.Errorf("experiments: %s/%s client %d query %d tree %d: off-mode L%d, want L%d",
						cs.Name, backend, c, q, ti, lbl, want[ti])
				}
			}
			if !reflect.DeepEqual(onResults[c][q], offResults[c][q]) {
				return AggCase{}, fmt.Errorf("experiments: %s/%s client %d query %d: coalesced result differs from single-query result",
					cs.Name, backend, c, q)
			}
		}
	}
	ac.Off, ac.On = off, on
	if off.QueriesPerSec > 0 {
		ac.Speedup = on.QueriesPerSec / off.QueriesPerSec
	}
	return ac, nil
}

// aggMode stages a fresh Service (window > 0 turns the batcher on) and
// runs the closed-loop clients, returning the measurement and every
// client's decoded results in stream order.
func aggMode(cs Case, compiled *copse.Compiled, backend string, cfg Config, queries [][][]uint64, window time.Duration) (AggMode, [][]*copse.Result, error) {
	kind, err := copse.ParseBackend(backend)
	if err != nil {
		return AggMode{}, nil, err
	}
	opts := []copse.Option{
		copse.WithBackend(kind),
		copse.WithScenario(copse.ScenarioOffload),
		copse.WithWorkers(defaultWorkers(cfg)),
		copse.WithIntraOpWorkers(cfg.IntraOp),
		copse.WithMaxInFlight(1),
		copse.WithSeed(cfg.Seed + 100),
		copse.WithBatchPolicy(copse.BatchPolicy{Window: window}),
	}
	if kind == copse.BackendBGV {
		preset, err := securityFor(cs.Slots)
		if err != nil {
			return AggMode{}, nil, err
		}
		opts = append(opts, copse.WithSecurity(preset))
	}
	svc := copse.NewService(opts...)
	defer svc.Close()
	if err := svc.Register(cs.Name, compiled); err != nil {
		return AggMode{}, nil, fmt.Errorf("experiments: staging %s: %w", cs.Name, err)
	}

	results := make([][]*copse.Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	start := time.Now()
	for c := range queries {
		results[c] = make([]*copse.Result, len(queries[c]))
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q, feats := range queries[c] {
				rs, err := svc.ClassifyBatch(context.Background(), cs.Name, [][]uint64{feats})
				if err != nil {
					errs[c] = fmt.Errorf("experiments: %s/%s client %d query %d: %w", cs.Name, backend, c, q, err)
					return
				}
				results[c][q] = rs[0]
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return AggMode{}, nil, err
		}
	}
	st := svc.Stats()
	total := len(queries) * len(queries[0])
	return AggMode{
		QueriesPerSec:   float64(total) / elapsed.Seconds(),
		Passes:          st.Requests,
		MeanLatencyMS:   float64(elapsed.Microseconds()) / 1000 * float64(len(queries)) / float64(total),
		BatchFill:       st.BatchFill,
		MeanBatchWaitMS: float64(st.MeanBatchWait().Microseconds()) / 1000,
	}, results, nil
}
