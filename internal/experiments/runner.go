package experiments

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"time"

	"copse"
	"copse/internal/baseline"
	"copse/internal/bgv"
	"copse/internal/he"
	"copse/internal/he/hebgv"
	"copse/internal/he/heclear"
)

// copseRunner owns one instantiated COPSE system for a benchmark case.
type copseRunner struct {
	cs  Case
	sys *copse.System
}

func newCopseRunner(cs Case, cfg Config, workers int, scenario copse.Scenario) (*copseRunner, error) {
	cfg = cfg.withDefaults()
	compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots})
	if err != nil {
		return nil, fmt.Errorf("experiments: compiling %s: %w", cs.Name, err)
	}
	kind, err := backendKind(cfg)
	if err != nil {
		return nil, err
	}
	sysCfg := copse.SystemConfig{
		Backend:               kind,
		Scenario:              scenario,
		Workers:               workers,
		IntraOpWorkers:        cfg.IntraOp,
		Seed:                  cfg.Seed + 100,
		DisableLevelPlan:      cfg.NoLevelPlan,
		MeasureNoise:          cfg.MeasureNoise,
		DisableSpecialization: cfg.NoSpecialize,
	}
	if kind == copse.BackendBGV {
		sysCfg.Security, err = securityFor(cs.Slots)
		if err != nil {
			return nil, err
		}
	}
	sys, err := copse.NewSystem(compiled, sysCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: system for %s: %w", cs.Name, err)
	}
	return &copseRunner{cs: cs, sys: sys}, nil
}

// close releases the system's backend resources (the ring worker pool,
// when IntraOp enabled one). Harness loops create one runner per case ×
// configuration, so leaving pools attached would accumulate resident
// goroutines across a full copse-bench run.
func (r *copseRunner) close() {
	_ = r.sys.Service().Close()
}

// run executes `queries` random inference queries, returning the Classify
// wall times and stage traces. Every result is verified against the
// plaintext tree walk; a mismatch is an error (the harness doubles as an
// integration test).
func (r *copseRunner) run(queries int, seed uint64) ([]time.Duration, []*copse.Trace, error) {
	times, traces, _, err := r.runCollect(queries, seed)
	return times, traces, err
}

// runCollect is run plus each query's decrypted per-tree labels — the
// corpus the specialized-vs-generic report compares bit-for-bit.
func (r *copseRunner) runCollect(queries int, seed uint64) ([]time.Duration, []*copse.Trace, [][]int, error) {
	rng := rand.New(rand.NewPCG(seed, 0xf00d))
	var times []time.Duration
	var traces []*copse.Trace
	var results [][]int
	for qi := 0; qi < queries; qi++ {
		feats := randomFeatures(rng, r.cs.Forest.NumFeatures, r.cs.Forest.Precision)
		query, err := r.sys.Diane.EncryptQuery(feats)
		if err != nil {
			return nil, nil, nil, err
		}
		start := time.Now()
		enc, trace, err := r.sys.Sally.Classify(query)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("experiments: %s query %d: %w", r.cs.Name, qi, err)
		}
		times = append(times, time.Since(start))
		traces = append(traces, trace)
		res, err := r.sys.Diane.DecryptResult(enc)
		if err != nil {
			return nil, nil, nil, err
		}
		want := r.cs.Forest.Classify(feats)
		for ti := range want {
			if res.PerTree[ti] != want[ti] {
				return nil, nil, nil, fmt.Errorf("experiments: %s query %d tree %d: secure %d != plaintext %d",
					r.cs.Name, qi, ti, res.PerTree[ti], want[ti])
			}
		}
		results = append(results, append([]int(nil), res.PerTree...))
	}
	return times, traces, results, nil
}

// baselineRunner owns one instantiated Aloufi-et-al. system.
type baselineRunner struct {
	cs      Case
	backend he.Backend
	model   *baseline.Model
	workers int
}

func newBaselineRunner(cs Case, cfg Config, workers int) (*baselineRunner, error) {
	cfg = cfg.withDefaults()
	var backend he.Backend
	switch cfg.Backend {
	case "clear":
		backend = heclear.New(cs.Slots, 65537)
	case "bgv":
		levels := baselineLevels(cs)
		var params bgv.Params
		switch cs.Slots {
		case 1024:
			params = bgv.TestParams(levels)
		case 2048:
			params = bgv.DemoParams(levels)
		default:
			return nil, fmt.Errorf("experiments: no baseline BGV preset for %d slots", cs.Slots)
		}
		b, err := hebgv.New(hebgv.Config{Params: params, PowerOfTwoOnly: true, Seed: cfg.Seed + 7})
		if err != nil {
			return nil, err
		}
		backend = b
	default:
		return nil, fmt.Errorf("experiments: unknown backend %q", cfg.Backend)
	}
	m, err := baseline.Prepare(backend, cs.Forest, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline prepare %s: %w", cs.Name, err)
	}
	return &baselineRunner{cs: cs, backend: backend, model: m, workers: workers}, nil
}

// baselineLevels sizes the BGV chain for the baseline circuit: the
// comparison depth plus the log-depth path products.
func baselineLevels(cs Case) int {
	logp := log2Ceil(cs.Forest.Precision)
	logPath := log2Ceil(cs.Forest.Depth() + 2)
	return (logp + 2) + logPath + 1 + 4
}

func (r *baselineRunner) run(queries int, seed uint64) ([]time.Duration, error) {
	rng := rand.New(rand.NewPCG(seed, 0xbead))
	e := &baseline.Engine{Backend: r.backend, Workers: r.workers}
	var times []time.Duration
	for qi := 0; qi < queries; qi++ {
		feats := randomFeatures(rng, r.cs.Forest.NumFeatures, r.cs.Forest.Precision)
		query, err := baseline.PrepareQuery(r.backend, &r.model.Meta, feats, true)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		outs, err := e.Classify(r.model, query)
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s query %d: %w", r.cs.Name, qi, err)
		}
		times = append(times, time.Since(start))
		var perTree [][]uint64
		for _, op := range outs {
			slots, err := he.Reveal(r.backend, op)
			if err != nil {
				return nil, err
			}
			perTree = append(perTree, slots)
		}
		got, err := baseline.DecodeResult(&r.model.Meta, perTree)
		if err != nil {
			return nil, err
		}
		want := r.cs.Forest.Classify(feats)
		for ti := range want {
			if got[ti] != want[ti] {
				return nil, fmt.Errorf("experiments: baseline %s query %d tree %d: %d != %d",
					r.cs.Name, qi, ti, got[ti], want[ti])
			}
		}
	}
	return times, nil
}

func randomFeatures(r *rand.Rand, n, precision int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64N(1 << uint(precision))
	}
	return out
}

func log2Ceil(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}

func defaultWorkers(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}
