package experiments

import (
	"fmt"
	"time"

	"copse"
	"copse/internal/bgv"
	"copse/internal/synth"
)

// Table3 renders the two-party leakage table (paper Table 3) from the
// executable leakage model.
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: data revealed to each notional party, two-party configurations",
		Header: []string{"scenario", "revealed to S", "revealed to M", "revealed to D"},
	}
	rows := []struct {
		name string
		s    copse.Scenario
	}{
		{"S, M=D (offload)", copse.ScenarioOffload},
		{"S=M, D (server model)", copse.ScenarioServerModel},
		{"S=D, M (client eval)", copse.ScenarioClientEval},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.name,
			leakString(copse.Revealed(r.s, copse.PartyServer)),
			leakString(copse.Revealed(r.s, copse.PartyModelOwner)),
			leakString(copse.Revealed(r.s, copse.PartyDataOwner)),
		})
	}
	return t
}

// Table4 renders the three-party leakage table (paper Table 4).
func Table4() *Table {
	t := &Table{
		Title:  "Table 4: data revealed to each party, three-party configurations",
		Header: []string{"scenario", "revealed to S", "revealed to M", "revealed to D"},
	}
	rows := []struct {
		name string
		s    copse.Scenario
	}{
		{"no collusion", copse.ScenarioThreeParty},
		{"S colludes with M", copse.ScenarioColludeSM},
		{"S colludes with D", copse.ScenarioColludeSD},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.name,
			leakString(copse.Revealed(r.s, copse.PartyServer)),
			leakString(copse.Revealed(r.s, copse.PartyModelOwner)),
			leakString(copse.Revealed(r.s, copse.PartyDataOwner)),
		})
	}
	return t
}

func leakString(l copse.Leakage) string {
	if l.Everything {
		return "everything"
	}
	out := ""
	appendIf := func(cond bool, s string) {
		if cond {
			if out != "" {
				out += ", "
			}
			out += s
		}
	}
	appendIf(l.Q, "q")
	appendIf(l.B, "b")
	appendIf(l.K, "K")
	appendIf(l.D, "d")
	if out == "" {
		return "∅"
	}
	return out
}

// Table5 reinterprets the paper's encryption-parameter study (Table 5:
// security parameter 128, 400 modulus bits, 3 key-switching columns in
// HElib) for the pure-Go BGV substrate: it sweeps the chain length
// around the compiler's recommendation and reports timing and remaining
// noise budget, identifying the smallest working chain.
func Table5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	micro, err := MicroCases()
	if err != nil {
		return nil, err
	}
	cs := micro[0] // depth4
	compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		return nil, err
	}
	rec := compiled.Meta.RecommendedLevels
	t := &Table{
		Title:  fmt.Sprintf("Table 5: BGV parameter sweep on %s (recommended levels = %d)", cs.Name, rec),
		Header: []string{"levels", "logN", "modulus bits", "median(ms)", "status"},
	}
	for _, levels := range []int{rec - 4, rec - 2, rec, rec + 2} {
		if levels < 2 {
			continue
		}
		status := "ok"
		var med time.Duration
		sys, err := copse.NewSystem(compiled, copse.SystemConfig{
			Backend:  copse.BackendBGV,
			Scenario: copse.ScenarioOffload,
			Security: copse.SecurityTest,
			Levels:   levels,
			Workers:  defaultWorkers(cfg),
			Seed:     cfg.Seed + 3,
		})
		if err != nil {
			status = "setup failed: " + err.Error()
		} else {
			r := &copseRunner{cs: cs, sys: sys}
			times, _, err := r.run(min(cfg.Queries, 3), cfg.Seed)
			if err != nil {
				status = "failed: " + truncate(err.Error(), 40)
			} else {
				med = median(times)
			}
		}
		params := bgv.TestParams(levels)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(levels),
			fmt.Sprint(params.LogN),
			fmt.Sprint(levels * params.PrimeBits),
			ms(med),
			status,
		})
	}
	t.Notes = append(t.Notes,
		"paper Table 5 (HElib): security 128, 400 modulus bits, 3 key-switching columns",
		"our substrate needs deeper chains because the Z_t bit encoding adds multiplications (DESIGN.md §3)",
	)
	return t, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Table6 regenerates the microbenchmark specification table.
func Table6() (*Table, error) {
	t := &Table{
		Title:  "Table 6: microbenchmark specifications",
		Header: []string{"model", "max depth", "precision", "trees", "branches", "q", "leaves"},
	}
	for _, mb := range synth.Microbenchmarks() {
		f, err := synth.Generate(mb.Spec)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			mb.Name,
			fmt.Sprint(f.Depth()),
			fmt.Sprint(f.Precision),
			fmt.Sprint(len(f.Trees)),
			fmt.Sprint(f.Branches()),
			fmt.Sprint(f.QuantizedBranching()),
			fmt.Sprint(f.Leaves()),
		})
	}
	t.Notes = append(t.Notes, "paper Table 6: every forest has 2 features and 3 distinct labels")
	return t, nil
}

// Ablation runs the COPSE-Go design-choice ablations called out in
// DESIGN.md §6: the diagonal kernel (naive vs baby-step/giant-step) and
// hoisted key switching.
func Ablation(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	micro, err := MicroCases()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: diagonal kernel (naive vs BSGS) and hoisted key switching",
		Header: []string{"model", "naive(ms)", "naive+reuse(ms)", "bsgs no-hoist(ms)", "bsgs(ms)", "naive→bsgs"},
	}
	kind, err := backendKind(cfg)
	if err != nil {
		return nil, err
	}
	for _, cs := range []Case{micro[2], micro[5]} { // depth6, width677: most levels/branches
		naiveModel, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots, NoBSGS: true})
		if err != nil {
			return nil, err
		}
		bsgsModel, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots})
		if err != nil {
			return nil, err
		}
		timeWith := func(compiled *copse.Compiled, reuse, disableHoist bool) (time.Duration, error) {
			sysCfg := copse.SystemConfig{
				Backend: kind, Scenario: copse.ScenarioOffload,
				Workers: 1, ReuseRotations: reuse, DisableHoisting: disableHoist,
				Seed: cfg.Seed + 9,
			}
			if kind == copse.BackendBGV {
				sysCfg.Security, err = securityFor(cs.Slots)
				if err != nil {
					return 0, err
				}
			}
			sys, err := copse.NewSystem(compiled, sysCfg)
			if err != nil {
				return 0, err
			}
			r := &copseRunner{cs: cs, sys: sys}
			times, _, err := r.run(cfg.Queries, cfg.Seed)
			if err != nil {
				return 0, err
			}
			return median(times), nil
		}
		naive, err := timeWith(naiveModel, false, true)
		if err != nil {
			return nil, err
		}
		naiveReuse, err := timeWith(naiveModel, true, true)
		if err != nil {
			return nil, err
		}
		bsgsNoHoist, err := timeWith(bsgsModel, false, true)
		if err != nil {
			return nil, err
		}
		bsgs, err := timeWith(bsgsModel, false, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cs.Name, ms(naive), ms(naiveReuse), ms(bsgsNoHoist), ms(bsgs), speedup(naive, bsgs),
		})
	}
	t.Notes = append(t.Notes,
		"BSGS cuts each matrix product from period−1 to ~2·√period rotations and shares baby steps across levels",
		"hoisting amortizes the key-switch digit decomposition across a batch of rotations (BGV backend only)",
	)
	return t, nil
}
