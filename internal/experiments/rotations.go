package experiments

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"copse"
	"copse/internal/he"
)

// RotationBench is the machine-readable perf-trajectory record emitted
// by copse-bench -rotjson (BENCH_rotations.json): per-model stage
// timings and primitive operation counts, so successive PRs can diff the
// rotation bill and stage breakdown without re-parsing rendered tables.
type RotationBench struct {
	Backend string         `json:"backend"`
	Queries int            `json:"queries"`
	Seed    uint64         `json:"seed"`
	Cases   []RotationCase `json:"cases"`
}

// RotationCase is one model's record.
type RotationCase struct {
	Name    string  `json:"name"`
	QPad    int     `json:"q_pad"`
	BPad    int     `json:"b_pad"`
	Depth   int     `json:"depth"`
	UseBSGS bool    `json:"use_bsgs"`
	TotalMS float64 `json:"total_ms"` // median over queries

	Stages []RotationStage `json:"stages"`
}

// RotationStage is one pipeline stage's record.
type RotationStage struct {
	Name          string  `json:"name"`
	MedianMS      float64 `json:"median_ms"`
	Rotate        int64   `json:"rotate"`
	RotateHoisted int64   `json:"rotate_hoisted"`
	Add           int64   `json:"add"`
	ConstAdd      int64   `json:"const_add"`
	Mul           int64   `json:"mul"`
	ConstMul      int64   `json:"const_mul"`
}

// RotationReport runs every configured model once per query and collects
// the stage-level timings and op counts.
func RotationReport(cfg Config) (*RotationBench, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	report := &RotationBench{Backend: cfg.Backend, Queries: cfg.Queries, Seed: cfg.Seed}
	for _, cs := range cases {
		r, err := newCopseRunner(cs, cfg, defaultWorkers(cfg), copse.ScenarioOffload)
		if err != nil {
			return nil, err
		}
		times, traces, err := r.run(cfg.Queries, cfg.Seed)
		if err != nil {
			r.close()
			return nil, err
		}
		meta := r.sys.Sally.Meta()
		rc := RotationCase{
			Name:    cs.Name,
			QPad:    meta.QPad,
			BPad:    meta.BPad,
			Depth:   meta.D,
			UseBSGS: meta.UseBSGS,
			TotalMS: medianMS(times),
		}
		stage := func(name string, pick func(*copse.Trace) (time.Duration, he.OpCounts)) {
			durs := make([]time.Duration, len(traces))
			var ops he.OpCounts
			for i, tr := range traces {
				durs[i], ops = pick(tr)
			}
			rc.Stages = append(rc.Stages, RotationStage{
				Name:          name,
				MedianMS:      medianMS(durs),
				Rotate:        ops.Rotate,
				RotateHoisted: ops.RotateHoisted,
				Add:           ops.Add,
				ConstAdd:      ops.ConstAdd,
				Mul:           ops.Mul,
				ConstMul:      ops.ConstMul,
			})
		}
		stage("compare", func(tr *copse.Trace) (time.Duration, he.OpCounts) { return tr.Compare, tr.CompareOps })
		stage("reshuffle", func(tr *copse.Trace) (time.Duration, he.OpCounts) { return tr.Reshuffle, tr.ReshuffleOps })
		stage("levels", func(tr *copse.Trace) (time.Duration, he.OpCounts) { return tr.Levels, tr.LevelOps })
		stage("accumulate", func(tr *copse.Trace) (time.Duration, he.OpCounts) { return tr.Accumulate, tr.AccumulateOps })
		r.close()
		report.Cases = append(report.Cases, rc)
	}
	return report, nil
}

// WriteJSON writes the report, indented for diff-friendliness.
func (r *RotationBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func medianMS(durs []time.Duration) float64 {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[len(s)/2].Microseconds()) / 1000
}
