// Package experiments implements the reproduction harness: one runner
// per table and figure of the paper's evaluation section (§8). The same
// runners back the `copse-bench` command and the benchmarks in
// bench_test.go; EXPERIMENTS.md records their output against the paper.
package experiments

import (
	"fmt"

	"copse"
	"copse/internal/model"
	"copse/internal/synth"
	"copse/internal/train"
)

// Case is one benchmark model.
type Case struct {
	Name      string
	Forest    *model.Forest
	Slots     int
	RealWorld bool
}

// Config controls a harness run.
type Config struct {
	// Backend: "clear" (noise-free reference; default) or "bgv" (real
	// ciphertexts; slow in pure Go — used for the micro models).
	Backend string
	// Queries per model; the paper uses 27 and reports medians.
	Queries int
	// Workers for the multithreaded runs; 0 means GOMAXPROCS.
	Workers int
	// IntraOp is the ring-layer limb parallelism of BGV runs (see
	// copse.WithIntraOpWorkers). The harness default is serial (the
	// paper's tables and the single-vs-multithreaded ablations assume a
	// serial ring layer; the Service's auto budget would silently hand
	// the "single-threaded" runs all the cores); pass n ≥ 2 — e.g.
	// copse-bench -intraop — to enable the pool.
	IntraOp int
	// Seed drives model generation, training and query sampling.
	Seed uint64
	// RealWorldScale shrinks the trained models when < 1 (their size is
	// otherwise tuned to the paper's, which is slow on the BGV backend).
	RealWorldScale float64
	// NoLevelPlan disables static level scheduling (the -nolevelplan
	// ablation): reactive noise management on the reactive chain length.
	NoLevelPlan bool
	// NoSpecialize disables the specialized op-program executor (the
	// -nospecialize ablation): Classify re-derives the pipeline from the
	// model structure on every call (DESIGN.md §13).
	NoSpecialize bool
	// MeasureNoise records decrypt-side noise-budget margins at every
	// stage boundary of each classify (Trace.Noise) — the -leveljson
	// margin corpus. BGV only; costs one decryption per stage.
	MeasureNoise bool
	// Models, when non-empty, restricts the suite to the named cases.
	Models []string
}

// filterCases applies cfg.Models.
func filterCases(cfg Config, cases []Case) []Case {
	if len(cfg.Models) == 0 {
		return cases
	}
	keep := map[string]bool{}
	for _, m := range cfg.Models {
		keep[m] = true
	}
	var out []Case
	for _, c := range cases {
		if keep[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = "clear"
	}
	if c.IntraOp == 0 {
		c.IntraOp = 1 // serial ring layer unless explicitly enabled
	}
	if c.Queries == 0 {
		c.Queries = 27
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RealWorldScale == 0 {
		c.RealWorldScale = 1
	}
	return c
}

// MicroCases generates the eight Table 6 microbenchmark models.
func MicroCases() ([]Case, error) {
	var out []Case
	for _, mb := range synth.Microbenchmarks() {
		f, err := synth.Generate(mb.Spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", mb.Name, err)
		}
		out = append(out, Case{Name: mb.Name, Forest: f, Slots: 1024})
	}
	return out, nil
}

// RealWorldCases trains the soccer5/income5/soccer15/income15 models of
// §8.1 on the synthetic dataset stand-ins.
func RealWorldCases(cfg Config) ([]Case, error) {
	cfg = cfg.withDefaults()
	rows := int(3000 * cfg.RealWorldScale)
	if rows < 200 {
		rows = 200
	}
	maxDepth := 7
	minLeaf := max(int(float64(rows)*0.008), 4)
	type spec struct {
		name  string
		ds    *synth.Dataset
		trees int
	}
	specs := []spec{
		{"soccer5", synth.Soccer(rows, cfg.Seed), 5},
		{"income5", synth.Income(rows, cfg.Seed), 5},
		{"soccer15", synth.Soccer(rows, cfg.Seed+1), 15},
		{"income15", synth.Income(rows, cfg.Seed+1), 15},
	}
	var out []Case
	for _, s := range specs {
		tm, err := train.Fit(s.ds.X, s.ds.Y, s.ds.Labels, train.Config{
			NumTrees:  s.trees,
			MaxDepth:  maxDepth,
			MinLeaf:   minLeaf,
			Precision: 8,
			Seed:      cfg.Seed + 17,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: training %s: %w", s.name, err)
		}
		slots := 1024
		if q := tm.Forest.QuantizedBranching(); q > 512 || tm.Forest.Branches() > 512 || tm.Forest.Leaves() > 1024 {
			slots = 2048
		}
		out = append(out, Case{Name: s.name, Forest: tm.Forest, Slots: slots, RealWorld: true})
	}
	return out, nil
}

// AllCases returns micro + real-world cases, the paper's full suite,
// restricted by cfg.Models when set.
func AllCases(cfg Config) ([]Case, error) {
	micro, err := MicroCases()
	if err != nil {
		return nil, err
	}
	// Skip the (training-heavy) real-world cases when the filter keeps
	// none of them.
	all := micro
	needRW := len(cfg.Models) == 0
	for _, m := range cfg.Models {
		switch m {
		case "soccer5", "income5", "soccer15", "income15":
			needRW = true
		}
	}
	if needRW {
		rw, err := RealWorldCases(cfg)
		if err != nil {
			return nil, err
		}
		all = append(all, rw...)
	}
	return filterCases(cfg, all), nil
}

// backendKind maps the config string.
func backendKind(cfg Config) (copse.BackendKind, error) {
	switch cfg.Backend {
	case "clear":
		return copse.BackendClear, nil
	case "bgv":
		return copse.BackendBGV, nil
	}
	return 0, fmt.Errorf("experiments: unknown backend %q", cfg.Backend)
}

// securityFor picks the BGV preset matching a case's slot count.
func securityFor(slots int) (copse.SecurityPreset, error) {
	return copse.SecurityForSlots(slots)
}
