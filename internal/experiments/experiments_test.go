package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fastCfg keeps harness tests quick: clear backend, few queries, small
// real-world models.
func fastCfg() Config {
	return Config{Backend: "clear", Queries: 3, Seed: 2, RealWorldScale: 0.15, Workers: 4}
}

func TestCases(t *testing.T) {
	micro, err := MicroCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(micro) != 8 {
		t.Errorf("%d micro cases, want 8", len(micro))
	}
	rw, err := RealWorldCases(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rw) != 4 {
		t.Errorf("%d real-world cases, want 4", len(rw))
	}
	names := map[string]bool{}
	for _, c := range rw {
		names[c.Name] = true
		if c.Forest.Branches() == 0 {
			t.Errorf("%s: empty forest", c.Name)
		}
		if !c.RealWorld {
			t.Errorf("%s: not flagged real-world", c.Name)
		}
	}
	for _, want := range []string{"soccer5", "income5", "soccer15", "income15"} {
		if !names[want] {
			t.Errorf("missing case %s", want)
		}
	}
	// The -15 models must be larger than the -5 models (the paper's
	// scaling argument depends on it).
	byName := map[string]Case{}
	for _, c := range rw {
		byName[c.Name] = c
	}
	if byName["income15"].Forest.Branches() <= byName["income5"].Forest.Branches() {
		t.Error("income15 not larger than income5")
	}
}

// TestFig6ShapeHolds runs the headline comparison and asserts the
// paper's qualitative claim: COPSE beats the baseline on every model.
func TestFig6ShapeHolds(t *testing.T) {
	tbl, err := Fig6(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, tbl)
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "geomean") {
			continue
		}
		sp := parseSpeedup(t, row[3])
		if sp <= 1 {
			t.Errorf("%s: COPSE slower than baseline (%.2fx)", row[0], sp)
		}
	}
}

// TestFig9ShapeHolds: plaintext models must not be meaningfully slower
// than encrypted ones. The clear backend's margin here is small (the
// strict operation-count claim is asserted in the core package), so the
// timing threshold tolerates scheduler noise; the geomean must still
// favor the plaintext model.
func TestFig9ShapeHolds(t *testing.T) {
	cfg := fastCfg()
	cfg.Queries = 7
	tbl, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, tbl)
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "geomean") {
			if sp := parseSpeedup(t, row[3]); sp < 0.95 {
				t.Errorf("geomean: plaintext models slower than encrypted (%.2fx)", sp)
			}
			continue
		}
		if sp := parseSpeedup(t, row[3]); sp < 0.7 {
			t.Errorf("%s: plaintext model much slower than encrypted (%.2fx)", row[0], sp)
		}
	}
}

// TestFig10ShapesHold checks the three sensitivity claims of §8.4 on
// operation structure via the stage timers.
func TestFig10ShapesHold(t *testing.T) {
	cfg := fastCfg()
	for _, variant := range []string{"a", "b", "c"} {
		tbl, err := Fig10(cfg, variant)
		if err != nil {
			t.Fatalf("Fig10%s: %v", variant, err)
		}
		checkRendered(t, tbl)
		if len(tbl.Rows) < 2 {
			t.Fatalf("Fig10%s: only %d rows", variant, len(tbl.Rows))
		}
	}
	if _, err := Fig10(cfg, "z"); err == nil {
		t.Error("bogus Fig10 variant accepted")
	}
}

func TestTables1And2(t *testing.T) {
	cfg := fastCfg()
	t1, err := Table1(cfg, "width78")
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, t1)
	t2, err := Table2(cfg, "width78")
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, t2)
	if _, err := Table1(cfg, "nonexistent"); err == nil {
		t.Error("unknown case accepted")
	}
	// The BSGS kernel must beat the paper's naive d·b rotation count:
	// the baby steps are shared across levels and each level only pays
	// its giant steps, so the measured count sits well below d·b.
	for _, row := range t1.Rows {
		if row[0] == "levels(xd)" && row[1] == "Rotate" {
			paperVal, err1 := strconv.Atoi(row[3])
			measured, err2 := strconv.Atoi(row[4])
			if err1 != nil || err2 != nil {
				t.Fatalf("bad row %v", row)
			}
			if measured <= 0 || measured >= paperVal {
				t.Errorf("BSGS level rotations %d not below the paper's naive %d", measured, paperVal)
			}
		}
	}
}

func TestTable3And4(t *testing.T) {
	t3 := Table3()
	checkRendered(t, t3)
	if len(t3.Rows) != 3 {
		t.Errorf("Table 3 rows: %d", len(t3.Rows))
	}
	if t3.Rows[0][1] != "q, b, d" {
		t.Errorf("Table 3 offload server column: %q", t3.Rows[0][1])
	}
	if t3.Rows[1][3] != "b, K" && t3.Rows[1][3] != "K, b" {
		t.Errorf("Table 3 server-model D column: %q", t3.Rows[1][3])
	}
	t4 := Table4()
	checkRendered(t, t4)
	if t4.Rows[1][1] != "everything" || t4.Rows[2][3] != "everything" {
		t.Errorf("Table 4 collusion columns wrong: %v", t4.Rows)
	}
}

func TestTable6(t *testing.T) {
	tbl, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, tbl)
	if len(tbl.Rows) != 8 {
		t.Fatalf("Table 6 rows: %d", len(tbl.Rows))
	}
	want := map[string][2]string{ // name -> {depth, branches}
		"depth4":   {"4", "15"},
		"depth6":   {"6", "15"},
		"width55":  {"5", "10"},
		"width677": {"5", "20"},
		"prec16":   {"5", "15"},
	}
	for _, row := range tbl.Rows {
		if w, ok := want[row[0]]; ok {
			if row[1] != w[0] || row[4] != w[1] {
				t.Errorf("%s: depth=%s branches=%s, want %v", row[0], row[1], row[4], w)
			}
		}
	}
}

func TestAblation(t *testing.T) {
	tbl, err := Ablation(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkRendered(t, tbl)
	if len(tbl.Rows) != 2 {
		t.Errorf("ablation rows: %d", len(tbl.Rows))
	}
}

func TestMedianAndGeomean(t *testing.T) {
	if m := median([]time.Duration{3, 1, 2}); m != 2 {
		t.Errorf("median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median(nil) = %v", m)
	}
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean = %v", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
}

func checkRendered(t *testing.T, tbl *Table) {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, tbl.Title) {
		t.Errorf("render missing title:\n%s", out)
	}
	for _, h := range tbl.Header {
		if !strings.Contains(out, h) {
			t.Errorf("render missing header %q", h)
		}
	}
}

func parseSpeedup(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup %q", s)
	}
	return v
}
