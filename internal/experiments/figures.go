package experiments

import (
	"fmt"
	"time"

	"copse"
)

// Fig6 reproduces Figure 6: single-threaded COPSE vs the Aloufi et al.
// baseline across the full model suite, reporting the median inference
// time of each and the speedup. The paper reports 5–7× with a geometric
// mean near 6×.
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 6: COPSE vs Aloufi et al., both single-threaded",
		Header: []string{"model", "copse(ms)", "baseline(ms)", "speedup"},
	}
	var microRatios, rwRatios []float64
	for _, cs := range cases {
		cr, err := newCopseRunner(cs, cfg, 1, copse.ScenarioOffload)
		if err != nil {
			return nil, err
		}
		copseTimes, _, err := cr.run(cfg.Queries, cfg.Seed)
		cr.close()
		if err != nil {
			return nil, err
		}
		br, err := newBaselineRunner(cs, cfg, 1)
		if err != nil {
			return nil, err
		}
		baseTimes, err := br.run(cfg.Queries, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cm, bm := median(copseTimes), median(baseTimes)
		ratio := float64(bm) / float64(cm)
		if cs.RealWorld {
			rwRatios = append(rwRatios, ratio)
		} else {
			microRatios = append(microRatios, ratio)
		}
		t.Rows = append(t.Rows, []string{cs.Name, ms(cm), ms(bm), speedup(bm, cm)})
	}
	if len(microRatios) > 0 {
		t.Rows = append(t.Rows, []string{"geomean micro", "", "", fmt.Sprintf("%.2fx", geomean(microRatios))})
	}
	if len(rwRatios) > 0 {
		t.Rows = append(t.Rows, []string{"geomean real-world", "", "", fmt.Sprintf("%.2fx", geomean(rwRatios))})
	}
	t.Notes = append(t.Notes, "paper: 5-7x speedups, geomean ~6x (Fig 6)")
	return t, nil
}

// Fig7 reproduces Figure 7: multithreaded COPSE vs single-threaded
// COPSE. The paper reports ~2.5× on micro models and ~5× on the larger
// real-world models.
func Fig7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	workers := defaultWorkers(cfg)
	t := &Table{
		Title:  fmt.Sprintf("Figure 7: COPSE multithreaded (%d workers) vs single-threaded", workers),
		Header: []string{"model", "1-thread(ms)", "multi(ms)", "speedup"},
	}
	var microRatios, rwRatios []float64
	for _, cs := range cases {
		single, err := medianCopseTime(cs, cfg, 1, copse.ScenarioOffload)
		if err != nil {
			return nil, err
		}
		multi, err := medianCopseTime(cs, cfg, workers, copse.ScenarioOffload)
		if err != nil {
			return nil, err
		}
		ratio := float64(single) / float64(multi)
		if cs.RealWorld {
			rwRatios = append(rwRatios, ratio)
		} else {
			microRatios = append(microRatios, ratio)
		}
		t.Rows = append(t.Rows, []string{cs.Name, ms(single), ms(multi), speedup(single, multi)})
	}
	if len(microRatios) > 0 {
		t.Rows = append(t.Rows, []string{"geomean micro", "", "", fmt.Sprintf("%.2fx", geomean(microRatios))})
	}
	if len(rwRatios) > 0 {
		t.Rows = append(t.Rows, []string{"geomean real-world", "", "", fmt.Sprintf("%.2fx", geomean(rwRatios))})
	}
	t.Notes = append(t.Notes, "paper: ~2.5x on micro models, ~5x on real-world models (Fig 7)")
	return t, nil
}

// Fig8 reproduces Figure 8: COPSE vs the baseline with both
// multithreaded. The paper's speedups here are smaller than Figure 6's
// because packing already consumed parallel work COPSE would otherwise
// give to threads.
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	workers := defaultWorkers(cfg)
	t := &Table{
		Title:  fmt.Sprintf("Figure 8: COPSE vs Aloufi et al., both multithreaded (%d workers)", workers),
		Header: []string{"model", "copse(ms)", "baseline(ms)", "speedup"},
	}
	var ratios []float64
	for _, cs := range cases {
		cm, err := medianCopseTime(cs, cfg, workers, copse.ScenarioOffload)
		if err != nil {
			return nil, err
		}
		br, err := newBaselineRunner(cs, cfg, workers)
		if err != nil {
			return nil, err
		}
		baseTimes, err := br.run(cfg.Queries, cfg.Seed)
		if err != nil {
			return nil, err
		}
		bm := median(baseTimes)
		ratios = append(ratios, float64(bm)/float64(cm))
		t.Rows = append(t.Rows, []string{cs.Name, ms(cm), ms(bm), speedup(bm, cm)})
	}
	t.Rows = append(t.Rows, []string{"geomean", "", "", fmt.Sprintf("%.2fx", geomean(ratios))})
	t.Notes = append(t.Notes,
		"paper: smaller speedups than Fig 6 — ciphertext packing already consumed parallel work (Fig 8)")
	return t, nil
}

// Fig9 reproduces Figure 9: inference on plaintext models (server owns
// the model, M=S) vs encrypted models (M=D). The paper reports ~1.4×.
func Fig9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cases, err := AllCases(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 9: plaintext model (M=S) vs encrypted model (M=D), single-threaded",
		Header: []string{"model", "plain-model(ms)", "enc-model(ms)", "speedup"},
	}
	var ratios []float64
	for _, cs := range cases {
		encrypted, err := medianCopseTime(cs, cfg, 1, copse.ScenarioOffload)
		if err != nil {
			return nil, err
		}
		plain, err := medianCopseTime(cs, cfg, 1, copse.ScenarioServerModel)
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, float64(encrypted)/float64(plain))
		t.Rows = append(t.Rows, []string{cs.Name, ms(plain), ms(encrypted), speedup(encrypted, plain)})
	}
	t.Rows = append(t.Rows, []string{"geomean", "", "", fmt.Sprintf("%.2fx", geomean(ratios))})
	t.Notes = append(t.Notes, "paper: ~1.4x from plaintext models (Fig 9)")
	return t, nil
}

func medianCopseTime(cs Case, cfg Config, workers int, scenario copse.Scenario) (time.Duration, error) {
	r, err := newCopseRunner(cs, cfg, workers, scenario)
	if err != nil {
		return 0, err
	}
	times, _, err := r.run(cfg.Queries, cfg.Seed)
	r.close()
	if err != nil {
		return 0, err
	}
	return median(times), nil
}

// Fig10 reproduces the Figure 10 stage breakdowns: per-stage median
// times for a group of models differing in one parameter.
func Fig10(cfg Config, which string) (*Table, error) {
	cfg = cfg.withDefaults()
	var names []string
	var title string
	switch which {
	case "a":
		names, title = []string{"depth4", "depth5", "depth6"}, "Figure 10a: run time vs max depth"
	case "b":
		names, title = []string{"width55", "width78", "width677"}, "Figure 10b: run time vs branches"
	case "c":
		names, title = []string{"prec8", "prec16"}, "Figure 10c: run time vs precision"
	default:
		return nil, fmt.Errorf("experiments: unknown Fig10 variant %q", which)
	}
	micro, err := MicroCases()
	if err != nil {
		return nil, err
	}
	byName := map[string]Case{}
	for _, cs := range micro {
		byName[cs.Name] = cs
	}
	t := &Table{
		Title:  title,
		Header: []string{"model", "compare(ms)", "reshuffle(ms)", "levels(ms)", "accumulate(ms)", "total(ms)"},
	}
	for _, name := range names {
		cs, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("experiments: no micro case %q", name)
		}
		r, err := newCopseRunner(cs, cfg, 1, copse.ScenarioOffload)
		if err != nil {
			return nil, err
		}
		_, traces, err := r.run(cfg.Queries, cfg.Seed)
		r.close()
		if err != nil {
			return nil, err
		}
		var compare, reshuffle, levels, accumulate, total []time.Duration
		for _, tr := range traces {
			compare = append(compare, tr.Compare)
			reshuffle = append(reshuffle, tr.Reshuffle)
			levels = append(levels, tr.Levels)
			accumulate = append(accumulate, tr.Accumulate)
			total = append(total, tr.Total)
		}
		t.Rows = append(t.Rows, []string{
			name, ms(median(compare)), ms(median(reshuffle)),
			ms(median(levels)), ms(median(accumulate)), ms(median(total)),
		})
	}
	switch which {
	case "a":
		t.Notes = append(t.Notes, "paper: compare/reshuffle flat in depth; level time grows ~linearly; accumulation logarithmic (Fig 10a)")
	case "b":
		t.Notes = append(t.Notes, "paper: compare flat in branches; reshuffle and level time grow ~linearly (Fig 10b)")
	case "c":
		t.Notes = append(t.Notes, "paper: only compare time grows (superlinearly) with precision (Fig 10c)")
	}
	return t, nil
}
