package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http/httptest"
	"reflect"
	"time"

	"copse"
	"copse/internal/cluster"
	"copse/internal/synth"
)

// ClusterBench is the machine-readable sharded-serving record emitted
// by copse-bench -clusterjson (BENCH_cluster.json): the same BGV
// query batch classified on one single-node service and through a
// 2-worker gateway/worker cluster (tree-wise shards, encrypted
// vote-sum merge, DESIGN.md §12). BitIdentical witnesses that the
// sharded path reproduces the single-node leaf bits, votes, and
// per-tree labels exactly; the latency columns price the fan-out and
// merge overhead the cluster pays for horizontal scale.
type ClusterBench struct {
	Model   string `json:"model"`
	Trees   int    `json:"trees"`
	Slots   int    `json:"slots"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`
	Queries int    `json:"queries"`
	Rounds  int    `json:"rounds"`
	Seed    uint64 `json:"seed"`
	// BitIdentical is true when every cluster result matched the
	// single-node reference bit for bit (leaf bits, votes, per-tree
	// labels, plurality label).
	BitIdentical bool        `json:"bit_identical"`
	SingleNode   ClusterMode `json:"single_node"`
	Cluster      ClusterMode `json:"cluster"`
	// Per-round mean of the gateway's internal stage timings.
	EncryptMS float64 `json:"encrypt_ms"`
	FanoutMS  float64 `json:"fanout_ms"`
	MergeMS   float64 `json:"merge_ms"`
	DecodeMS  float64 `json:"decode_ms"`
	// OverheadRatio is Cluster.MeanLatencyMS / SingleNode.MeanLatencyMS:
	// the end-to-end price of sharding at this query batch size.
	OverheadRatio float64 `json:"overhead_ratio"`
}

// ClusterMode is the measurement of one serving topology.
type ClusterMode struct {
	QueriesPerSec float64 `json:"queries_per_sec"`
	// MeanLatencyMS is the mean wall time of one full batch round.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
}

// WriteJSON writes the report.
func (c *ClusterBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// clusterRounds is how many times the batch is classified per
// topology; the report averages over them.
const clusterRounds = 3

// ClusterReport benchmarks sharded multi-node serving: it splits a
// 5-tree forest into 2 shards, stages each on its own in-process
// worker (shared seed, so one key set), fronts them with a gateway
// over real HTTP on loopback, and classifies the same query batch
// there and on a single-node reference service. Results must be
// bit-identical; the timings price the fan-out/merge overhead. BGV
// only — the cluster wire protocol ships real ciphertexts.
func ClusterReport(cfg Config) (*ClusterBench, error) {
	cfg = cfg.withDefaults()
	forest, err := synth.Generate(synth.ForestSpec{
		NumFeatures:     3,
		NumLabels:       3,
		Precision:       4,
		MaxDepth:        3,
		BranchesPerTree: []int{5, 3, 6, 3, 4},
		Seed:            cfg.Seed + 50,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: generating cluster forest: %w", err)
	}
	const slots = 1024
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: slots})
	if err != nil {
		return nil, fmt.Errorf("experiments: compiling cluster forest: %w", err)
	}
	shards, manifest, err := copse.ShardForest(compiled, 2)
	if err != nil {
		return nil, err
	}

	report := &ClusterBench{
		Model:   "cluster5",
		Trees:   len(forest.Trees),
		Slots:   slots,
		Shards:  manifest.Shards,
		Workers: 2,
		Queries: cfg.Queries,
		Rounds:  clusterRounds,
		Seed:    cfg.Seed,
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc105))
	batch := make([][]uint64, cfg.Queries)
	for i := range batch {
		batch[i] = randomFeatures(rng, forest.NumFeatures, forest.Precision)
	}

	// Single-node reference: one service holding the unsharded model.
	ref := copse.NewService(
		copse.WithScenario(copse.ScenarioServerModel),
		copse.WithWorkers(defaultWorkers(cfg)),
		copse.WithIntraOpWorkers(cfg.IntraOp),
		copse.WithSeed(cfg.Seed+7),
	)
	defer ref.Close()
	if err := ref.Register("forest", compiled); err != nil {
		return nil, fmt.Errorf("experiments: staging single-node reference: %w", err)
	}
	var want []*copse.Result
	singleStart := time.Now()
	for round := 0; round < clusterRounds; round++ {
		want, err = ref.ClassifyBatch(context.Background(), "forest", batch)
		if err != nil {
			return nil, fmt.Errorf("experiments: single-node classify: %w", err)
		}
	}
	singleElapsed := time.Since(singleStart)

	// 2-worker cluster over loopback HTTP, one shard per worker.
	workers := make([]*cluster.Worker, 2)
	servers := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range workers {
		workers[i] = cluster.NewWorker(cluster.WorkerConfig{
			Seed:           cfg.Seed + 11,
			Workers:        defaultWorkers(cfg),
			IntraOpWorkers: cfg.IntraOp,
		})
		defer workers[i].Close()
		if err := workers[i].AddShard("forest", manifest, shards[i]); err != nil {
			return nil, fmt.Errorf("experiments: staging shard %d: %w", i, err)
		}
		servers[i] = httptest.NewServer(workers[i].Handler())
		defer servers[i].Close()
		urls[i] = servers[i].URL
	}
	gw := cluster.NewGateway(cluster.GatewayConfig{Workers: urls, RequestTimeout: 5 * time.Minute})
	defer gw.Close()
	if err := gw.Refresh(context.Background()); err != nil {
		return nil, fmt.Errorf("experiments: gateway refresh: %w", err)
	}

	report.BitIdentical = true
	var fanout, merge, encrypt, decode time.Duration
	clusterStart := time.Now()
	for round := 0; round < clusterRounds; round++ {
		got, trace, err := gw.Classify(context.Background(), "forest", batch)
		if err != nil {
			return nil, fmt.Errorf("experiments: cluster classify: %w", err)
		}
		encrypt += trace.Encrypt
		fanout += trace.Fanout
		merge += trace.Merge
		decode += trace.Decode
		for i, res := range got {
			if !reflect.DeepEqual(res.LeafBits, want[i].LeafBits) ||
				!reflect.DeepEqual(res.Votes, want[i].Votes) ||
				!reflect.DeepEqual(res.PerTree, want[i].PerTree) ||
				res.Label != want[i].Plurality() {
				report.BitIdentical = false
			}
		}
	}
	clusterElapsed := time.Since(clusterStart)

	total := float64(cfg.Queries * clusterRounds)
	report.SingleNode = ClusterMode{
		QueriesPerSec: total / singleElapsed.Seconds(),
		MeanLatencyMS: float64(singleElapsed.Microseconds()) / 1000 / clusterRounds,
	}
	report.Cluster = ClusterMode{
		QueriesPerSec: total / clusterElapsed.Seconds(),
		MeanLatencyMS: float64(clusterElapsed.Microseconds()) / 1000 / clusterRounds,
	}
	report.EncryptMS = float64(encrypt.Microseconds()) / 1000 / clusterRounds
	report.FanoutMS = float64(fanout.Microseconds()) / 1000 / clusterRounds
	report.MergeMS = float64(merge.Microseconds()) / 1000 / clusterRounds
	report.DecodeMS = float64(decode.Microseconds()) / 1000 / clusterRounds
	if report.SingleNode.MeanLatencyMS > 0 {
		report.OverheadRatio = report.Cluster.MeanLatencyMS / report.SingleNode.MeanLatencyMS
	}
	return report, nil
}
