// Benchmarks regenerating the paper's evaluation (§8): one benchmark per
// table and figure. The clear backend is used for the scaling figures
// (its timing tracks the operation structure; see DESIGN.md §5), and
// real BGV ciphertexts for the absolute-cost benchmarks. The
// copse-bench command runs the same harness with the paper's full query
// counts and renders the tables; EXPERIMENTS.md records a full run.
package copse_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"copse"
	"copse/internal/baseline"
	"copse/internal/experiments"
	"copse/internal/he"
	"copse/internal/he/heclear"
	"copse/internal/model"
	"copse/internal/synth"
)

// benchCfg shrinks the real-world models so the full suite stays
// laptop-sized; copse-bench -scale 1 runs the paper-sized ones.
var benchCfg = experiments.Config{Backend: "clear", Queries: 3, Seed: 1, RealWorldScale: 0.25}

var caseOnce = sync.OnceValues(func() ([]experiments.Case, error) {
	return experiments.AllCases(benchCfg)
})

func benchCases(b *testing.B) []experiments.Case {
	b.Helper()
	cases, err := caseOnce()
	if err != nil {
		b.Fatal(err)
	}
	return cases
}

// copseSystem builds (and caches per call-site) a COPSE system for a case.
func copseSystem(b *testing.B, cs experiments.Case, workers int, scenario copse.Scenario) *copse.System {
	b.Helper()
	compiled, err := copse.Compile(cs.Forest, copse.CompileOptions{Slots: cs.Slots})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := copse.NewSystem(compiled, copse.SystemConfig{
		Backend: copse.BackendClear, Scenario: scenario, Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// benchQueries runs one encrypted query per iteration.
func benchQueries(b *testing.B, sys *copse.System, forest *model.Forest) *copse.Trace {
	b.Helper()
	query, err := sys.Diane.EncryptQuery(make([]uint64, forest.NumFeatures))
	if err != nil {
		b.Fatal(err)
	}
	var last *copse.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, trace, err := sys.Sally.Classify(query)
		if err != nil {
			b.Fatal(err)
		}
		last = trace
	}
	b.StopTimer()
	return last
}

func benchBaselineQueries(b *testing.B, cs experiments.Case, workers int) {
	b.Helper()
	backend := heclear.New(cs.Slots, 65537)
	m, err := baseline.Prepare(backend, cs.Forest, true)
	if err != nil {
		b.Fatal(err)
	}
	query, err := baseline.PrepareQuery(backend, &m.Meta, make([]uint64, cs.Forest.NumFeatures), true)
	if err != nil {
		b.Fatal(err)
	}
	e := &baseline.Engine{Backend: backend, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Classify(m, query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6SingleThread: COPSE vs the Aloufi et al. baseline, both
// single-threaded, across the model suite (paper Figure 6: 5–7×).
func BenchmarkFig6SingleThread(b *testing.B) {
	for _, cs := range benchCases(b) {
		b.Run("copse/"+cs.Name, func(b *testing.B) {
			sys := copseSystem(b, cs, 1, copse.ScenarioOffload)
			benchQueries(b, sys, cs.Forest)
		})
		b.Run("baseline/"+cs.Name, func(b *testing.B) {
			benchBaselineQueries(b, cs, 1)
		})
	}
}

// BenchmarkFig7Multithread: COPSE single- vs multi-threaded
// (paper Figure 7: ~2.5× micro, ~5× real-world).
func BenchmarkFig7Multithread(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, cs := range benchCases(b) {
		b.Run("threads=1/"+cs.Name, func(b *testing.B) {
			sys := copseSystem(b, cs, 1, copse.ScenarioOffload)
			benchQueries(b, sys, cs.Forest)
		})
		b.Run(fmt.Sprintf("threads=%d/%s", workers, cs.Name), func(b *testing.B) {
			sys := copseSystem(b, cs, workers, copse.ScenarioOffload)
			benchQueries(b, sys, cs.Forest)
		})
	}
}

// BenchmarkFig8MultithreadVsBaseline: both systems multithreaded
// (paper Figure 8).
func BenchmarkFig8MultithreadVsBaseline(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, cs := range benchCases(b) {
		b.Run("copse/"+cs.Name, func(b *testing.B) {
			sys := copseSystem(b, cs, workers, copse.ScenarioOffload)
			benchQueries(b, sys, cs.Forest)
		})
		b.Run("baseline/"+cs.Name, func(b *testing.B) {
			benchBaselineQueries(b, cs, workers)
		})
	}
}

// BenchmarkFig9PlaintextModel: encrypted-model (M=D) vs plaintext-model
// (M=S) configurations (paper Figure 9: ~1.4×).
func BenchmarkFig9PlaintextModel(b *testing.B) {
	for _, cs := range benchCases(b) {
		b.Run("encrypted/"+cs.Name, func(b *testing.B) {
			sys := copseSystem(b, cs, 1, copse.ScenarioOffload)
			benchQueries(b, sys, cs.Forest)
		})
		b.Run("plaintext/"+cs.Name, func(b *testing.B) {
			sys := copseSystem(b, cs, 1, copse.ScenarioServerModel)
			benchQueries(b, sys, cs.Forest)
		})
	}
}

// fig10 runs the named microbenchmarks, reporting per-stage times as
// custom metrics (paper Figure 10 breakdowns).
func fig10(b *testing.B, names []string) {
	cases := benchCases(b)
	byName := map[string]experiments.Case{}
	for _, cs := range cases {
		byName[cs.Name] = cs
	}
	for _, name := range names {
		cs, ok := byName[name]
		if !ok {
			b.Fatalf("no case %q", name)
		}
		b.Run(name, func(b *testing.B) {
			sys := copseSystem(b, cs, 1, copse.ScenarioOffload)
			trace := benchQueries(b, sys, cs.Forest)
			if trace != nil {
				msPer := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
				b.ReportMetric(msPer(trace.Compare), "compare-ms")
				b.ReportMetric(msPer(trace.Reshuffle), "reshuffle-ms")
				b.ReportMetric(msPer(trace.Levels), "levels-ms")
				b.ReportMetric(msPer(trace.Accumulate), "accumulate-ms")
			}
		})
	}
}

// BenchmarkFig10aDepth: stage times vs maximum depth (paper Figure 10a).
func BenchmarkFig10aDepth(b *testing.B) { fig10(b, []string{"depth4", "depth5", "depth6"}) }

// BenchmarkFig10bBranches: stage times vs branch count (paper Figure 10b).
func BenchmarkFig10bBranches(b *testing.B) { fig10(b, []string{"width55", "width78", "width677"}) }

// BenchmarkFig10cPrecision: stage times vs precision (paper Figure 10c).
func BenchmarkFig10cPrecision(b *testing.B) { fig10(b, []string{"prec8", "prec16"}) }

// BenchmarkTable1OpCounts: per-stage operation counts as metrics
// (paper Table 1); the analytic comparison is in copse-bench -exp table1.
func BenchmarkTable1OpCounts(b *testing.B) {
	cases := benchCases(b)
	for _, cs := range cases {
		if cs.Name != "width78" {
			continue
		}
		sys := copseSystem(b, cs, 1, copse.ScenarioOffload)
		trace := benchQueries(b, sys, cs.Forest)
		if trace != nil {
			b.ReportMetric(float64(trace.CompareOps.Mul), "compare-muls")
			b.ReportMetric(float64(trace.LevelOps.Mul), "level-muls")
			b.ReportMetric(float64(trace.LevelOps.Rotate), "level-rotates")
			b.ReportMetric(float64(trace.AccumulateOps.Mul), "accumulate-muls")
		}
	}
}

// BenchmarkTable2TotalComplexity: total multiplicative depth and op
// counts (paper Table 2).
func BenchmarkTable2TotalComplexity(b *testing.B) {
	cases := benchCases(b)
	for _, cs := range cases {
		if cs.Name != "width78" {
			continue
		}
		sys := copseSystem(b, cs, 1, copse.ScenarioOffload)
		sys.Backend().ResetCounts()
		benchQueries(b, sys, cs.Forest)
		counts := sys.Backend().Counts()
		b.ReportMetric(float64(counts.MaxDepth), "mult-depth")
	}
}

// BenchmarkTable5ParamSweep: BGV chain-length sweep on the smallest
// micro model (paper Table 5's encryption-parameter study).
func BenchmarkTable5ParamSweep(b *testing.B) {
	forest, err := synth.Generate(synth.Microbenchmarks()[0].Spec)
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := copse.Compile(forest, copse.CompileOptions{Slots: 1024})
	if err != nil {
		b.Fatal(err)
	}
	for _, levels := range []int{compiled.Meta.RecommendedLevels, compiled.Meta.RecommendedLevels + 2} {
		b.Run(fmt.Sprintf("levels=%d", levels), func(b *testing.B) {
			sys, err := copse.NewSystem(compiled, copse.SystemConfig{
				Backend: copse.BackendBGV, Scenario: copse.ScenarioOffload,
				Security: copse.SecurityTest, Levels: levels,
				Workers: runtime.GOMAXPROCS(0), Seed: 9,
			})
			if err != nil {
				b.Fatal(err)
			}
			benchQueries(b, sys, forest)
		})
	}
}

// BenchmarkTable6Generate: microbenchmark model generation (Table 6).
func BenchmarkTable6Generate(b *testing.B) {
	specs := synth.Microbenchmarks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mb := range specs {
			if _, err := synth.Generate(mb.Spec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClassify: the BGV hot path end to end, across the rotation
// and level-scheduling optimizations — the gauge for the BSGS + hoisting
// + level-plan line of work. Run with -benchmem to see the allocation
// reduction from ring pooling.
//
//	naive            pre-optimization kernel: one rotation per diagonal,
//	                 no hoisting, reactive noise management
//	bsgs             baby-step/giant-step kernel, hoisting disabled,
//	                 reactive
//	bsgs+hoist       hoisted rotations, reactive noise management (the
//	                 PR 1 configuration — the 0.80 s/query baseline)
//	bsgs+hoist+plan  the default configuration: static level schedule,
//	                 operands staged at stage levels, chain sized to the
//	                 plan
func BenchmarkClassify(b *testing.B) {
	modes := []struct {
		name                    string
		noBSGS, noHoist, noPlan bool
	}{
		{"naive", true, true, true},
		{"bsgs", false, true, true},
		{"bsgs+hoist", false, false, true},
		{"bsgs+hoist+plan", false, false, false},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			compiled, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: 1024, NoBSGS: mode.noBSGS})
			if err != nil {
				b.Fatal(err)
			}
			sys, err := copse.NewSystem(compiled, copse.SystemConfig{
				Backend: copse.BackendBGV, Scenario: copse.ScenarioOffload,
				Security: copse.SecurityTest, Workers: runtime.GOMAXPROCS(0),
				DisableHoisting: mode.noHoist, DisableLevelPlan: mode.noPlan, Seed: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			sys.Backend().ResetCounts()
			trace := benchQueries(b, sys, copse.ExampleForest())
			counts := sys.Backend().Counts()
			iters := int64(b.N)
			b.ReportMetric(float64(counts.Rotate/iters), "rotations/op")
			b.ReportMetric(float64(counts.RotateHoisted/iters), "hoisted-rot/op")
			b.ReportMetric(float64(counts.LimbOps/iters), "limb-ops/op")
			if trace != nil {
				b.ReportMetric(float64(trace.Limbs.Result), "result-limbs")
			}
		})
	}
}

// BenchmarkBGVInference: the quickstart model end to end on real BGV
// ciphertexts — the repository's absolute-cost reference number.
func BenchmarkBGVInference(b *testing.B) {
	compiled, err := copse.Compile(copse.ExampleForest(), copse.CompileOptions{Slots: 1024})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := copse.NewSystem(compiled, copse.SystemConfig{
		Backend: copse.BackendBGV, Scenario: copse.ScenarioOffload,
		Security: copse.SecurityTest, Workers: runtime.GOMAXPROCS(0), Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchQueries(b, sys, copse.ExampleForest())
}

// BenchmarkClearBackendOps: the reference backend's raw op cost, for
// calibrating the structural timings above.
func BenchmarkClearBackendOps(b *testing.B) {
	backend := heclear.New(1024, 65537)
	x, err := backend.Encrypt(make([]uint64, 1024))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := backend.Mul(x, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rotate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := backend.Rotate(x, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	var _ he.Backend = backend
}
