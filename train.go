package copse

import "copse/internal/train"

// Training types, re-exported from the train package (the library's
// scikit-learn stand-in).
type (
	// TrainConfig controls random-forest training.
	TrainConfig = train.Config
	// TrainedModel is a quantized forest plus the public per-feature
	// quantizers data owners use to encode queries.
	TrainedModel = train.Trained
)

// Train fits a bagged CART random forest on float feature rows x with
// label indices y, quantized to the fixed-point grid COPSE compiles.
func Train(x [][]float64, y []int, labels []string, cfg TrainConfig) (*TrainedModel, error) {
	return train.Fit(x, y, labels, cfg)
}
